package ptm

// City-scale integration test: the mobility model drives vehicles through
// the full protocol stack — signed beacons over lossy radio, vehicle-side
// verification, anonymous reports, period rotation — and records travel
// to the central server over TLS; queries are checked against exact
// mobility ground truth.

import (
	"context"
	"crypto/tls"
	"math"
	"net"
	"sync"
	"testing"
	"time"
)

func TestCityIntegrationTLS(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack integration is slow")
	}
	// crypto/tls verifies certificates against the real clock, so the
	// whole test runs on real time.
	now := time.Now()
	clock := func() time.Time { return now }

	// Road network: two commuter corridors crossing at (2,2).
	grid, err := NewRoadGrid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	world, err := NewTrafficWorld(grid, DefaultS, 404)
	if err != nil {
		t.Fatal(err)
	}
	if err := world.AddCommuters(250, GridTrip{From: GridPoint{X: 0, Y: 2}, To: GridPoint{X: 4, Y: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := world.AddCommuters(150, GridTrip{From: GridPoint{X: 2, Y: 0}, To: GridPoint{X: 2, Y: 4}}); err != nil {
		t.Fatal(err)
	}
	if err := world.SetBackgroundTrips(600); err != nil {
		t.Fatal(err)
	}

	// PKI + central server behind TLS.
	authority, err := NewAuthority(now, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	serverCert, err := authority.IssueTLSServer("127.0.0.1", now, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewCentralServer(DefaultS)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewTransportServer(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	tcpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := tls.NewListener(tcpLn, ServerTLSConfig(serverCert))
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })

	client, err := DialTLS(ln.Addr().String(), authority.ClientTLSConfig(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })

	// Two instrumented intersections on the east-west corridor.
	locA, err := grid.Loc(GridPoint{X: 1, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	locB, err := grid.Loc(GridPoint{X: 3, Y: 2})
	if err != nil {
		t.Fatal(err)
	}

	type site struct {
		loc LocationID
		ch  *Channel
		rsu *RSU
	}
	var sites []*site
	for i, loc := range []LocationID{locA, locB} {
		cred, err := authority.IssueRSU(loc, now, 24*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := NewChannel(ChannelConfig{BeaconLoss: 0.3, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		unit, err := NewRSU(cred, ch, DefaultF, clock)
		if err != nil {
			t.Fatal(err)
		}
		sites = append(sites, &site{loc: loc, ch: ch, rsu: unit})
	}

	const days = 4
	for day := 1; day <= days; day++ {
		visits, err := world.Day()
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sites {
			vehicles := visits[s.loc]
			if err := s.rsu.StartPeriod(PeriodID(day), float64(len(vehicles))); err != nil {
				t.Fatal(err)
			}
			var leaves []func()
			for _, id := range vehicles {
				v, err := NewVehicle(id, authority, clock)
				if err != nil {
					t.Fatal(err)
				}
				leave, err := v.PassThrough(s.ch)
				if err != nil {
					t.Fatal(err)
				}
				leaves = append(leaves, leave)
			}
			// 30% beacon loss: 12 rounds make a miss vanishingly rare.
			for round := 0; round < 12; round++ {
				if err := s.rsu.Beacon(); err != nil {
					t.Fatal(err)
				}
			}
			for _, leave := range leaves {
				leave()
			}
			rec, err := s.rsu.EndPeriod()
			if err != nil {
				t.Fatal(err)
			}
			if err := client.Upload(rec); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Server-side bookkeeping.
	locs, err := client.ListLocations()
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 2 {
		t.Fatalf("locations = %v", locs)
	}
	periods := []PeriodID{1, 2, 3, 4}

	// Point persistent at each site vs. mobility ground truth.
	for _, s := range sites {
		truth := float64(world.CommutersThrough(s.loc))
		got, err := client.QueryPointPersistent(s.loc, periods)
		if err != nil {
			t.Fatal(err)
		}
		if re := math.Abs(got-truth) / truth; re > 0.25 {
			t.Errorf("site %d persistent %v vs truth %v (rel err %.3f)", s.loc, got, truth, re)
		}
	}
	// Point-to-point persistent along the corridor.
	truthBoth := float64(world.CommutersThroughBoth(locA, locB))
	got, err := client.QueryPointToPointPersistent(locA, locB, periods)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(got-truthBoth) / truthBoth; re > 0.3 {
		t.Errorf("corridor persistent %v vs truth %v (rel err %.3f)", got, truthBoth, re)
	}
}

// TestScheduledRSUIntegration runs an RSU on the real clock at compressed
// timescales: the controller rotates periods, beacons reach a standing
// fleet, and records are uploaded automatically through the backhaul.
func TestScheduledRSUIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based integration")
	}
	now := time.Now()
	authority, err := NewAuthority(now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := authority.IssueRSU(55, now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(ChannelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	unit, err := NewRSU(cred, ch, DefaultF, nil)
	if err != nil {
		t.Fatal(err)
	}

	// A standing fleet remains in radio range for the whole test; each
	// vehicle reports once per period (dedup is per period).
	const fleetSize = 40
	for i := 0; i < fleetSize; i++ {
		id, err := NewSeededVehicleIdentity(VehicleID(i), DefaultS, 123)
		if err != nil {
			t.Fatal(err)
		}
		v, err := NewVehicle(id, authority, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.PassThrough(ch); err != nil {
			t.Fatal(err)
		}
	}

	var (
		mu      sync.Mutex
		uploads []*Record
	)
	upload := func(rec *Record) error {
		mu.Lock()
		defer mu.Unlock()
		uploads = append(uploads, rec)
		return nil
	}
	ctl, err := NewRSUController(unit, RSUSchedule{
		PeriodLength:   250 * time.Millisecond,
		BeaconInterval: 40 * time.Millisecond,
		FirstPeriod:    1,
	}, upload, func(PeriodID) float64 { return fleetSize }, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 650*time.Millisecond)
	defer cancel()
	if err := ctl.Run(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Run returned %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	// Two full periods plus the partial one at cancellation.
	if len(uploads) < 2 {
		t.Fatalf("uploads = %d, want >= 2", len(uploads))
	}
	for i, rec := range uploads {
		if rec.Period != PeriodID(i+1) || rec.Location != 55 {
			t.Errorf("upload %d: loc=%d period=%d", i, rec.Location, rec.Period)
		}
	}
	// Full periods captured the whole standing fleet (bit collisions are
	// expected at m=128; the linear-counting estimate inverts them).
	vol, err := EstimateVolume(uploads[0])
	if err != nil {
		t.Fatal(err)
	}
	if vol < fleetSize*0.7 || vol > fleetSize*1.3 {
		t.Errorf("period 1 volume estimate = %.1f, want ~%d", vol, fleetSize)
	}
}
