package ptm

// One testing.B benchmark per table and figure of the paper's evaluation
// (Section VI), plus the ablation benches called out in DESIGN.md. Each
// benchmark regenerates its artifact (at one simulation run per iteration;
// cmd/ptmbench runs the full multi-run protocol) and reports the achieved
// mean relative error as a custom metric, so `go test -bench=.` doubles as
// a reproduction smoke test:
//
//	go test -bench=. -benchmem
//
// Paper-vs-measured numbers are recorded in EXPERIMENTS.md.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ptm/internal/bitmap"
	"ptm/internal/core"
	"ptm/internal/lpc"
	"ptm/internal/mrbitmap"
	"ptm/internal/privacy"
	"ptm/internal/sim"
	"ptm/internal/stats"
	"ptm/internal/synth"
	"ptm/internal/trips"
)

// BenchmarkTable1SiouxFalls regenerates Table I: point-to-point persistent
// traffic error across eight Sioux Falls locations at t = 3, 5, 7, 10 plus
// the same-size baseline. One full table per iteration (1 run per cell).
func BenchmarkTable1SiouxFalls(b *testing.B) {
	tab := trips.NewSiouxFalls()
	var last *sim.Table1Result
	for i := 0; i < b.N; i++ {
		res, err := sim.RunTable1(tab, nil, nil, sim.Options{Runs: 1, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	var sum, n float64
	for _, col := range last.Columns {
		for _, re := range col.RelErrByT {
			sum += re
			n++
		}
	}
	b.ReportMetric(sum/n, "mean-relerr")
	b.ReportMetric(last.Columns[len(last.Columns)-1].SameSizeRelErr, "same-size-relerr-L8")
}

// BenchmarkTable2Privacy regenerates Table II: the analytical
// noise-to-information sweep over (f, s).
func BenchmarkTable2Privacy(b *testing.B) {
	var grid []privacy.Profile
	for i := 0; i < b.N; i++ {
		var err error
		grid, err = privacy.Sweep(privacy.TableIIFs, privacy.TableIISs)
		if err != nil {
			b.Fatal(err)
		}
	}
	// ratio at (f=2, s=3): the paper's recommended operating point.
	for _, p := range grid {
		if p.F == 2 && p.S == 3 {
			b.ReportMetric(p.Ratio, "ratio-f2-s3")
		}
	}
}

// BenchmarkFig4PointError regenerates Figure 4: point persistent relative
// error versus actual volume, proposed vs benchmark, for t = 5 and t = 10.
func BenchmarkFig4PointError(b *testing.B) {
	for _, t := range []int{5, 10} {
		t := t
		b.Run(map[int]string{5: "t=5", 10: "t=10"}[t], func(b *testing.B) {
			var pts []sim.Fig4Point
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = sim.RunFig4(t, sim.Options{Runs: 1, Seed: uint64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
			}
			var prop, bench float64
			for _, p := range pts {
				prop += p.Proposed
				bench += p.Benchmark
			}
			b.ReportMetric(prop/float64(len(pts)), "proposed-relerr")
			b.ReportMetric(bench/float64(len(pts)), "benchmark-relerr")
		})
	}
}

func scatterBench(b *testing.B, f float64) {
	b.Helper()
	for _, panel := range []string{"point", "p2p"} {
		panel := panel
		b.Run(panel, func(b *testing.B) {
			var pts []sim.ScatterPoint
			for i := 0; i < b.N; i++ {
				var err error
				opts := sim.Options{Runs: 1, Seed: uint64(i + 1), F: f}
				if panel == "point" {
					pts, err = sim.RunFigScatterPoint(5, opts)
				} else {
					pts, err = sim.RunFigScatterP2P(5, opts)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			var dev, n float64
			for _, p := range pts {
				if p.Actual >= 100 {
					re, err := stats.RelativeError(p.Estimated, p.Actual)
					if err != nil {
						b.Fatal(err)
					}
					dev += re
					n++
				}
			}
			b.ReportMetric(dev/n, "mean-relerr")
		})
	}
}

// BenchmarkFig5Scatter regenerates Figure 5 (f = 2): estimated vs actual
// persistent volume, point (left) and point-to-point (right).
func BenchmarkFig5Scatter(b *testing.B) { scatterBench(b, 2) }

// BenchmarkFig6Scatter regenerates Figure 6 (f = 3).
func BenchmarkFig6Scatter(b *testing.B) { scatterBench(b, 3) }

// --- ablations (DESIGN.md §5) ---

// BenchmarkAblationSplit compares the paper's contiguous-halves split of Π
// against an interleaved split and the k=3 generalization.
func BenchmarkAblationSplit(b *testing.B) {
	cases := []struct {
		name string
		est  func(w *synth.PointWorkload) (float64, error)
	}{
		{"halves", func(w *synth.PointWorkload) (float64, error) {
			r, err := core.EstimatePointOpts(w.Set, core.SplitHalves)
			if err != nil {
				return 0, err
			}
			return r.Estimate, nil
		}},
		{"interleaved", func(w *synth.PointWorkload) (float64, error) {
			r, err := core.EstimatePointOpts(w.Set, core.SplitInterleaved)
			if err != nil {
				return 0, err
			}
			return r.Estimate, nil
		}},
		{"kway3", func(w *synth.PointWorkload) (float64, error) {
			r, err := core.EstimatePointKWay(w.Set, 3)
			if err != nil {
				return 0, err
			}
			return r.Estimate, nil
		}},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var sum float64
			for i := 0; i < b.N; i++ {
				g, err := synth.NewGenerator(uint64(i+1), 3)
				if err != nil {
					b.Fatal(err)
				}
				vols, err := g.Volumes(6, 2000, 10000)
				if err != nil {
					b.Fatal(err)
				}
				w, err := g.Point(synth.PointConfig{Loc: 1, Volumes: vols, NCommon: 500})
				if err != nil {
					b.Fatal(err)
				}
				est, err := tc.est(w)
				if err != nil {
					b.Fatal(err)
				}
				re, err := stats.RelativeError(est, 500)
				if err != nil {
					b.Fatal(err)
				}
				sum += re
			}
			b.ReportMetric(sum/float64(b.N), "mean-relerr")
		})
	}
}

// BenchmarkAblationPerPeriodSizing demonstrates a sensitivity this
// reproduction surfaced: Eq. (2) sizes records from the *historical
// average* volume, so one location's records share a size across periods.
// Re-sizing each period from its own volume leaves partial common-vehicle
// replicas correlated between the two subset joins, inflating V*_1 and
// biasing the point estimator upward by ~10-25%.
func BenchmarkAblationPerPeriodSizing(b *testing.B) {
	run := func(b *testing.B, perPeriod bool) {
		var sum float64
		for i := 0; i < b.N; i++ {
			g, err := synth.NewGenerator(uint64(i+1), 3)
			if err != nil {
				b.Fatal(err)
			}
			vols, err := g.Volumes(6, 2000, 10000)
			if err != nil {
				b.Fatal(err)
			}
			w, err := g.Point(synth.PointConfig{
				Loc: 1, Volumes: vols, NCommon: 500, PerPeriodSizing: perPeriod,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.EstimatePoint(w.Set)
			if err != nil {
				b.Fatal(err)
			}
			sum += (res.Estimate - 500) / 500
		}
		b.ReportMetric(sum/float64(b.N), "signed-bias")
	}
	b.Run("historical-average", func(b *testing.B) { run(b, false) })
	b.Run("per-period", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationSecondLevel compares the paper's OR second-level join
// (Eq. 21) against the naive AND + linear-counting design it rejects in
// Section IV-A.
func BenchmarkAblationSecondLevel(b *testing.B) {
	run := func(b *testing.B, andJoin bool) {
		var sum float64
		for i := 0; i < b.N; i++ {
			g, err := synth.NewGenerator(uint64(i+1), 3)
			if err != nil {
				b.Fatal(err)
			}
			volsA, err := g.Volumes(5, 2000, 10000)
			if err != nil {
				b.Fatal(err)
			}
			volsB, err := g.Volumes(5, 2000, 10000)
			if err != nil {
				b.Fatal(err)
			}
			w, err := g.Pair(synth.PairConfig{LocA: 1, LocB: 2, VolumesA: volsA, VolumesB: volsB, NCommon: 500})
			if err != nil {
				b.Fatal(err)
			}
			var est float64
			if andJoin {
				est, err = core.EstimatePointToPointBaselineAND(w.SetA, w.SetB)
			} else {
				var res *core.PointToPointResult
				res, err = core.EstimatePointToPoint(w.SetA, w.SetB, 3)
				if err == nil {
					est = res.Estimate
				}
			}
			if err != nil {
				b.Fatal(err)
			}
			re, err := stats.RelativeError(est, 500)
			if err != nil {
				b.Fatal(err)
			}
			sum += re
		}
		b.ReportMetric(sum/float64(b.N), "mean-relerr")
	}
	b.Run("or-join", func(b *testing.B) { run(b, false) })
	b.Run("and-join", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationCountingSubstrate compares the paper's Eq. (2)-sized
// plain bitmap against the multiresolution bitmap (paper ref [21]) at
// equal memory, for plain volume estimation when the true volume varies
// over two orders of magnitude. The plain bitmap (sized for the expected
// 5,000) saturates at 100x the expectation; the multiresolution sketch
// holds accuracy everywhere at fixed memory.
func BenchmarkAblationCountingSubstrate(b *testing.B) {
	for _, n := range []int{5000, 500000} {
		n := n
		b.Run(fmt.Sprintf("plain-n=%d", n), func(b *testing.B) {
			var lastErr float64
			failed := 0
			for i := 0; i < b.N; i++ {
				bm := bitmap.MustNew(1 << 14) // Eq. (2) for expected 5000, f=2
				rng := rand.New(rand.NewSource(int64(i + 1)))
				for k := 0; k < n; k++ {
					bm.Set(rng.Uint64())
				}
				est, err := lpc.Estimate(bm.Size(), bm.FractionZero())
				if err != nil {
					failed++
					continue
				}
				lastErr = math.Abs(est-float64(n)) / float64(n)
			}
			b.ReportMetric(lastErr, "relerr")
			b.ReportMetric(float64(failed)/float64(b.N), "saturated-frac")
		})
		b.Run(fmt.Sprintf("mrb-n=%d", n), func(b *testing.B) {
			var lastErr float64
			for i := 0; i < b.N; i++ {
				sk, err := mrbitmap.New(16, 1<<10) // same 2^14 bits total
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(int64(i + 1)))
				for k := 0; k < n; k++ {
					sk.Add(rng.Uint64())
				}
				est, err := sk.Estimate(0)
				if err != nil {
					b.Fatal(err)
				}
				lastErr = math.Abs(est-float64(n)) / float64(n)
			}
			b.ReportMetric(lastErr, "relerr")
		})
	}
}

// BenchmarkConfidenceInterval measures the bootstrap interval cost at the
// default replicate count.
func BenchmarkConfidenceInterval(b *testing.B) {
	g, err := synth.NewGenerator(1, 3)
	if err != nil {
		b.Fatal(err)
	}
	w, err := g.Point(synth.PointConfig{Loc: 1, Volumes: []int{6000, 7000, 5500, 6500}, NCommon: 800})
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.EstimatePoint(w.Set)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PointConfidence(res, 0.95, 0, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeThroughput measures the vehicle-side encoding cost: one
// hash per passing vehicle (the entire per-vehicle protocol work).
func BenchmarkEncodeThroughput(b *testing.B) {
	v, err := NewSeededVehicleIdentity(1, DefaultS, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.Index(LocationID(i&1023), 1<<20)
	}
}

// BenchmarkEstimatorThroughput measures the server-side estimation cost on
// Table I-scale records (m' = 2^20, t = 10).
func BenchmarkEstimatorThroughput(b *testing.B) {
	g, err := synth.NewGenerator(1, 3)
	if err != nil {
		b.Fatal(err)
	}
	w, err := g.Pair(synth.PairConfig{
		LocA: 1, LocB: 2,
		VolumesA: repeat(28000, 10), VolumesB: repeat(451000, 10),
		NCommon: 3000,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimatePointToPoint(w.SetA, w.SetB, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func repeat(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}
