#!/bin/sh
# crashsmoke.sh — end-to-end crash-recovery smoke for the durability
# plane (run standalone or via scripts/check.sh).
#
# The scenario, mirroring DESIGN.md §10:
#   1. centrald starts with a WAL; rsud streams periods at it, spooling
#      to disk (-spool) and pacing so there is a mid-stream to crash in.
#   2. centrald is killed with SIGKILL after the first uploads are acked
#      — no shutdown path runs, recovery is pure WAL replay.
#   3. centrald restarts on the same WAL dir; rsud's drainer retries and
#      delivers the periods that failed during the outage.
#   4. The recovered store's census is diffed against ground truth:
#      every period rsud produced, exactly once, no extras.
set -eu

cd "$(dirname "$0")/.."

TMP="$(mktemp -d "${TMPDIR:-/tmp}/ptm-crashsmoke.XXXXXX")"
CPID=""
cleanup() {
	[ -n "$CPID" ] && kill "$CPID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

say() { printf 'crashsmoke: %s\n' "$*"; }

say "building binaries"
go build -o "$TMP/centrald" ./cmd/centrald
go build -o "$TMP/rsud" ./cmd/rsud
go build -o "$TMP/ptmquery" ./cmd/ptmquery

PORT=$((17400 + $$ % 2000))
ADDR="127.0.0.1:$PORT"
WAL="$TMP/wal"
SPOOL="$TMP/spool"
LOC=11
PERIODS=6

start_centrald() {
	"$TMP/centrald" -listen "$ADDR" -wal "$WAL" -sync always -checkpoint-every 3 2>>"$TMP/centrald.log" &
	CPID=$!
	i=0
	while ! "$TMP/ptmquery" -central "$ADDR" locations >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			say "centrald did not come up (log follows)"; cat "$TMP/centrald.log"; exit 1
		fi
		sleep 0.1
	done
}

say "starting centrald (WAL at $WAL) on $ADDR"
start_centrald

say "starting rsud: $PERIODS paced periods, spooling to $SPOOL"
"$TMP/rsud" -central "$ADDR" -loc "$LOC" -periods "$PERIODS" \
	-fleet 60 -transients 200 -spool "$SPOOL" -pace 300ms \
	-drain-attempts 12 -drain-base 250ms \
	>"$TMP/rsud.out" 2>"$TMP/rsud.log" &
RPID=$!

# Wait until at least two periods are acked, so the crash provably loses
# in-flight work *after* durable acks exist.
i=0
while [ "$(grep -c 'uploaded$' "$TMP/rsud.log" 2>/dev/null || true)" -lt 2 ]; do
	i=$((i + 1))
	if [ "$i" -gt 150 ]; then
		say "rsud never acked two periods (log follows)"; cat "$TMP/rsud.log"; exit 1
	fi
	sleep 0.1
done

say "kill -9 centrald mid-stream (pid $CPID)"
kill -9 "$CPID"
wait "$CPID" 2>/dev/null || true
CPID=""

# Let rsud hit the outage and spool at least one period before recovery.
sleep 1

say "restarting centrald on the same WAL"
start_centrald

say "waiting for rsud to drain its spool and exit"
if ! wait "$RPID"; then
	say "rsud failed (log follows)"; cat "$TMP/rsud.log"; exit 1
fi
grep -q "uploaded $PERIODS periods" "$TMP/rsud.out" || {
	say "unexpected rsud summary:"; cat "$TMP/rsud.out"; exit 1
}

say "diffing recovered census against ground truth"
"$TMP/ptmquery" -central "$ADDR" periods -loc "$LOC" >"$TMP/census.got"
want="location $LOC: ["
p=1
while [ "$p" -le "$PERIODS" ]; do
	want="$want$p"
	[ "$p" -lt "$PERIODS" ] && want="$want "
	p=$((p + 1))
done
want="$want]"
printf '%s\n' "$want" >"$TMP/census.want"
if ! diff -u "$TMP/census.want" "$TMP/census.got"; then
	say "recovered store diverges from ground truth"
	say "rsud log:"; cat "$TMP/rsud.log"
	say "centrald log:"; cat "$TMP/centrald.log"
	exit 1
fi

# The outage is only proven if at least one period actually took the
# spool path.
grep -q 'spooling' "$TMP/rsud.log" || {
	say "no period was ever spooled — the crash window missed; logs:"
	cat "$TMP/rsud.log"; exit 1
}

kill "$CPID" 2>/dev/null || true
wait "$CPID" 2>/dev/null || true
CPID=""

say "ok: $PERIODS periods survived a kill -9 (census byte-identical to ground truth)"
