#!/bin/sh
# check.sh — the full verification gauntlet for the ptm repo.
#
# Runs, in order:
#   1. gofmt -l            (every tracked .go file is gofmt-clean)
#   2. go build            (everything compiles)
#   3. go vet              (toolchain static checks)
#   4. ptmlint             (repo-specific invariants; see DESIGN.md),
#                          archiving a SARIF 2.1.0 report for CI surfaces
#   5. concguard           (the four concurrency-contract rules alone,
#                          archiving their SARIF report separately so the
#                          lock-discipline gate is auditable on its own)
#   6. perfguard           (the three hot-path performance-contract rules
#                          alone — noalloc, inline, bce — archiving their
#                          SARIF report, escape-flow codeFlows included,
#                          so the allocation gate is auditable on its own)
#   7. go test -race       (unit + integration tests under the race
#                          detector, -shuffle=on to surface order
#                          dependence between tests)
#   8. race stress smoke   (the WAL, RSU, estimate-cache, and tiered-store
#                          concurrency stress tests again under -race
#                          -count=2 — the dynamic complement of the static
#                          concguard contracts)
#   9. fuzz smoke          (a few seconds per fuzz target, seeds + mutation)
#  10. crash smoke         (kill -9 a WAL-backed centrald mid-stream)
#  11. out-of-core smoke   (tiered centrald over a 10x-budget dataset:
#                          peak-RSS bound + estimates identical to the
#                          all-resident daemon)
#  12. cluster smoke       (3-node cluster, R=2: kill -9 the partition
#                          leader mid-ingest, fail over, revive, join,
#                          drain — zero acked-record loss and estimates
#                          byte-identical to a single-node reference)
#
# Usage: scripts/check.sh [fuzztime]
#   fuzztime  per-target fuzzing budget for the smoke stage (default 5s)
#
# The SARIF report lands in $ARTIFACT_DIR/ptmlint.sarif (default:
# a .artifacts directory at the repo root, git-ignored).
set -eu

cd "$(dirname "$0")/.."
FUZZTIME="${1:-5s}"

step() {
	printf '==> %s\n' "$*"
}

step "gofmt -l cmd internal"
unformatted="$(gofmt -l cmd internal)"
if [ -n "$unformatted" ]; then
	printf 'gofmt: the following files need formatting:\n%s\n' "$unformatted" >&2
	exit 1
fi

step "go build ./..."
go build ./...

step "go vet ./..."
go vet ./...

step "ptmlint ./..."
ARTIFACT_DIR="${ARTIFACT_DIR:-.artifacts}"
mkdir -p "$ARTIFACT_DIR"
# The SARIF report is written even when findings exist (exit 1), so the
# artifact documents exactly what failed the gate.
if ! go run ./cmd/ptmlint -format=sarif ./... > "$ARTIFACT_DIR/ptmlint.sarif"; then
	status=$?
	step "ptmlint findings (see $ARTIFACT_DIR/ptmlint.sarif)"
	go run ./cmd/ptmlint ./... || true
	exit "$status"
fi

step "concguard (lockorder, guardedby, atomicmix, rcu)"
if ! go run ./cmd/ptmlint -rules=lockorder,guardedby,atomicmix,rcu -format=sarif ./... > "$ARTIFACT_DIR/concguard.sarif"; then
	status=$?
	step "concguard findings (see $ARTIFACT_DIR/concguard.sarif)"
	go run ./cmd/ptmlint -rules=lockorder,guardedby,atomicmix,rcu ./... || true
	exit "$status"
fi

step "perfguard (noalloc, inline, bce)"
if ! go run ./cmd/ptmlint -rules=noalloc,inline,bce -format=sarif ./... > "$ARTIFACT_DIR/perfguard.sarif"; then
	status=$?
	step "perfguard findings (see $ARTIFACT_DIR/perfguard.sarif)"
	go run ./cmd/ptmlint -rules=noalloc,inline,bce ./... || true
	exit "$status"
fi

step "go test -race -shuffle=on ./..."
go test -race -shuffle=on ./...

step "race stress smoke (-race -count=2, WAL group commit + RSU ingest + estimate cache)"
go test -race -count=2 -run '^TestGroupCommitConcurrentAppends$' ./internal/wal/
go test -race -count=2 -run '^(TestConcurrentReportStorm|TestReportsRaceRotation|TestDifferentialAtomicVsSequential)$' ./internal/rsu/
go test -race -count=2 -run '^TestEstCacheConcurrentQueryIngest$' ./internal/central/
go test -race -count=2 -run '^TestTieredConcurrentSoak$' ./internal/store/

# Archive the committed benchmark baselines (regenerate with `make
# bench-json` / `make bench-ingest`) next to the lint report so CI
# surfaces them all.
for bench in BENCH_*.json; do
	[ -f "$bench" ] || continue
	step "archiving $bench -> $ARTIFACT_DIR/"
	cp "$bench" "$ARTIFACT_DIR/$bench"
done

step "fuzz smoke ($FUZZTIME per target)"
# Each fuzz target runs alone: `go test -fuzz` accepts a single match.
go test -run=NONE -fuzz='^FuzzUnmarshal$' -fuzztime="$FUZZTIME" ./internal/bitmap/
go test -run=NONE -fuzz='^FuzzFusedJoin$' -fuzztime="$FUZZTIME" ./internal/bitmap/
go test -run=NONE -fuzz='^FuzzFusedJoinWide$' -fuzztime="$FUZZTIME" ./internal/bitmap/
go test -run=NONE -fuzz='^FuzzUnmarshal$' -fuzztime="$FUZZTIME" ./internal/record/
go test -run=NONE -fuzz='^FuzzRoundTrip$' -fuzztime="$FUZZTIME" ./internal/record/
go test -run=NONE -fuzz='^FuzzIndex$' -fuzztime="$FUZZTIME" ./internal/vhash/
go test -run=NONE -fuzz='^FuzzReadFrame$' -fuzztime="$FUZZTIME" ./internal/transport/
go test -run=NONE -fuzz='^FuzzUploadBatch$' -fuzztime="$FUZZTIME" ./internal/transport/
go test -run=NONE -fuzz='^FuzzReplay$' -fuzztime="$FUZZTIME" ./internal/wal/
go test -run=NONE -fuzz='^FuzzSnapshotLoad$' -fuzztime="$FUZZTIME" ./internal/central/
go test -run=NONE -fuzz='^FuzzSegmentLoad$' -fuzztime="$FUZZTIME" ./internal/store/

step "crash-recovery smoke (WAL-backed centrald, kill -9 mid-stream)"
scripts/crashsmoke.sh

step "out-of-core smoke (tiered centrald, 10x-budget dataset, RSS bound + estimate equality)"
scripts/oocsmoke.sh

step "cluster smoke (3-node cluster, kill -9 + failover + revive + join + drain)"
scripts/clustersmoke.sh

step "all checks passed"
