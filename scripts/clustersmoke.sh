#!/bin/sh
# clustersmoke.sh — docker-free end-to-end smoke for the cluster plane
# (run standalone or via scripts/check.sh).
#
# The scenario, mirroring DESIGN.md §15:
#   1. A single-node reference centrald and a 3-node cluster (R=2) start
#      side by side; ptmcluster init installs the ring.
#   2. The same deterministic workload is uploaded to both; a second,
#      paced workload drips into the cluster while the leader of its
#      partition is killed with SIGKILL mid-ingest.
#   3. ptmcluster failover promotes the most-caught-up survivor; the
#      paced uploader retries through the router and finishes without
#      losing a single acked record.
#   4. The victim restarts on its own WAL, is revived, and re-ships;
#      ptmcluster wait proves every owning replica converged.
#   5. Every estimator (volume, point, p2p same- and cross-partition) is
#      diffed byte-for-byte against the single-node reference.
#   6. A fourth node joins, an original node drains, and the diff is
#      re-run: rebalancing moved partitions without moving estimates.
set -eu

cd "$(dirname "$0")/.."

TMP="$(mktemp -d "${TMPDIR:-/tmp}/ptm-clustersmoke.XXXXXX")"
PID_ref="" PID_a="" PID_b="" PID_c="" PID_d=""
cleanup() {
	for p in "$PID_ref" "$PID_a" "$PID_b" "$PID_c" "$PID_d"; do
		[ -n "$p" ] && kill "$p" 2>/dev/null || true
	done
	for p in "$PID_ref" "$PID_a" "$PID_b" "$PID_c" "$PID_d"; do
		[ -n "$p" ] && wait "$p" 2>/dev/null || true
	done
	rm -rf "$TMP" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

say() { printf 'clustersmoke: %s\n' "$*"; }

say "building binaries"
go build -o "$TMP/centrald" ./cmd/centrald
go build -o "$TMP/ptmcluster" ./cmd/ptmcluster
go build -o "$TMP/ptmquery" ./cmd/ptmquery
go build -o "$TMP/trafficgen" ./cmd/trafficgen

BASE=$((18400 + $$ % 2000))
ADDR_ref="127.0.0.1:$BASE"
ADDR_a="127.0.0.1:$((BASE + 1))"
ADDR_b="127.0.0.1:$((BASE + 2))"
ADDR_c="127.0.0.1:$((BASE + 3))"
ADDR_d="127.0.0.1:$((BASE + 4))"
SEEDS="$ADDR_a,$ADDR_b,$ADDR_c"
PERIODS=6

addr_of() { eval "printf '%s' \"\$ADDR_$1\""; }
pid_of() { eval "printf '%s' \"\$PID_$1\""; }

# start_node id — start (or restart) a cluster member on its own WAL.
start_node() {
	id="$1"
	"$TMP/centrald" -listen "$(addr_of "$id")" -wal "$TMP/wal-$id" -sync always \
		-cluster-node "$id" -ship-interval 100ms 2>>"$TMP/$id.log" &
	eval "PID_$id=$!"
	wait_up "$(addr_of "$id")" "$id"
}

wait_up() {
	i=0
	while ! "$TMP/ptmquery" -central "$1" locations >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			say "$2 did not come up (log follows)"; cat "$TMP/$2.log"; exit 1
		fi
		sleep 0.1
	done
}

# query_all clientargs outfile — every estimator over the whole dataset.
# clientargs is intentionally word-split: it is "-central ADDR" or
# "-cluster SEEDS".
query_all() {
	ca="$1"
	out="$2"
	{
		# shellcheck disable=SC2086
		"$TMP/ptmquery" $ca locations
		for loc in 1 2 3 4; do
			"$TMP/ptmquery" $ca periods -loc "$loc"
			p=1
			while [ "$p" -le "$PERIODS" ]; do
				"$TMP/ptmquery" $ca volume -loc "$loc" -period "$p"
				p=$((p + 1))
			done
			"$TMP/ptmquery" $ca point -loc "$loc" -periods 1,2,3,4,5,6
		done
		for pair in "1:2" "3:4" "1:3" "2:4"; do
			la="${pair%:*}"
			lb="${pair#*:}"
			"$TMP/ptmquery" $ca p2p -loc "$la" -loc2 "$lb" -periods 1,2,3,4,5,6
		done
	} >"$out"
}

diff_estimates() {
	query_all "-central $ADDR_ref" "$TMP/ref.out"
	query_all "-cluster $SEEDS" "$TMP/cluster.out"
	if ! diff -u "$TMP/ref.out" "$TMP/cluster.out"; then
		say "cluster estimates diverge from the single-node reference ($1)"
		for id in a b c d; do
			[ -f "$TMP/$id.log" ] && { say "$id log:"; cat "$TMP/$id.log"; }
		done
		exit 1
	fi
	say "estimates bit-identical to single-node reference ($1)"
}

say "starting single-node reference on $ADDR_ref"
"$TMP/centrald" -listen "$ADDR_ref" -wal "$TMP/wal-ref" -sync always 2>>"$TMP/ref.log" &
PID_ref=$!
wait_up "$ADDR_ref" "ref"

say "starting 3-node cluster: a=$ADDR_a b=$ADDR_b c=$ADDR_c"
start_node a
start_node b
start_node c

say "installing ring (R=2)"
"$TMP/ptmcluster" init -replicas 2 \
	-node "a=$ADDR_a" -node "b=$ADDR_b" -node "c=$ADDR_c"

say "phase 1: base workload (locs 1,2) to reference and cluster"
"$TMP/trafficgen" -central "$ADDR_ref" -locA 1 -locB 2 -periods "$PERIODS" -common 300 -seed 1 >/dev/null
"$TMP/trafficgen" -cluster "$SEEDS" -locA 1 -locB 2 -periods "$PERIODS" -common 300 -seed 1 >/dev/null
"$TMP/ptmcluster" wait -seed "$ADDR_a"

VICTIM="$("$TMP/ptmcluster" locate -seed "$ADDR_a" -loc 3 |
	sed -n 's/^location 3: leader \([a-z]*\)@.*/\1/p')"
[ -n "$VICTIM" ] || { say "could not locate the leader of loc 3"; exit 1; }
SURVIVOR_SEED="$ADDR_a"
[ "$VICTIM" = "a" ] && SURVIVOR_SEED="$ADDR_b"

say "phase 2: paced workload (locs 3,4) dripping into the cluster; leader of loc 3 is $VICTIM"
"$TMP/trafficgen" -central "$ADDR_ref" -locA 3 -locB 4 -periods "$PERIODS" -common 300 -seed 2 >/dev/null
"$TMP/trafficgen" -cluster "$SEEDS" -locA 3 -locB 4 -periods "$PERIODS" -common 300 -seed 2 \
	-pace 150ms >"$TMP/paced.out" 2>"$TMP/paced.log" &
GPID=$!

sleep 0.6
say "kill -9 $VICTIM (pid $(pid_of "$VICTIM")) mid-ingest"
kill -9 "$(pid_of "$VICTIM")"
wait "$(pid_of "$VICTIM")" 2>/dev/null || true
eval "PID_$VICTIM=''"

say "failing over: promoting the most-caught-up survivor"
"$TMP/ptmcluster" failover -seed "$SURVIVOR_SEED" -down "$VICTIM"

say "waiting for the paced uploader to finish through the failover"
if ! wait "$GPID"; then
	say "paced uploader failed (log follows)"; cat "$TMP/paced.log"; exit 1
fi
grep -q "uploaded $((2 * PERIODS)) records" "$TMP/paced.out" || {
	say "unexpected uploader summary:"; cat "$TMP/paced.out"; exit 1
}

say "restarting $VICTIM on its own WAL and reviving it"
start_node "$VICTIM"
"$TMP/ptmcluster" revive -seed "$SURVIVOR_SEED" -id "$VICTIM"
"$TMP/ptmcluster" wait -seed "$SURVIVOR_SEED"

diff_estimates "after kill -9 + failover + revive"

say "join: adding node d at $ADDR_d"
start_node d
"$TMP/ptmcluster" join -seed "$ADDR_a" -id d -addr "$ADDR_d"
"$TMP/ptmcluster" wait -seed "$ADDR_a"
"$TMP/ptmcluster" promote -seed "$ADDR_a" -id d

say "drain: emptying node a"
"$TMP/ptmcluster" drain -seed "$ADDR_b" -id a
"$TMP/ptmcluster" wait -seed "$ADDR_b"

SEEDS="$ADDR_b,$ADDR_c,$ADDR_d"
diff_estimates "after join d + drain a"

say "ok: kill -9 lost no acked records; estimates bit-identical through failover, revive, join, and drain"
