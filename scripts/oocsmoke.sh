#!/bin/sh
# oocsmoke.sh — end-to-end out-of-core smoke for the tiered record store
# (run standalone or via scripts/check.sh).
#
# The scenario, mirroring DESIGN.md §14:
#   1. Two centralds start: one all-resident (-store mem), one tiered
#      with a resident budget a small fraction of the dataset
#      (-store tiered -resident-budget), its block cache capped via
#      PTM_BLOCKCACHE_BYTES and its heap fenced with GOMEMLIMIT.
#   2. trafficgen streams the identical seeded two-location workload at
#      both daemons; the tiered one must freeze segments mid-stream.
#   3. Every estimator surface (volume, point, p2p) is queried on both
#      daemons and diffed — the tiers must be invisible in the answers.
#   4. /stats must show a dataset >= 10x the resident budget, frozen
#      segments, cold records, and block-cache traffic.
#   5. The tiered daemon's peak RSS (VmHWM from /proc, the measurement
#      ulimit -v cannot provide for a Go runtime that reserves address
#      space up front) must stay under budget + cache + runtime slack.
set -eu

cd "$(dirname "$0")/.."

TMP="$(mktemp -d "${TMPDIR:-/tmp}/ptm-oocsmoke.XXXXXX")"
MPID=""
TPID=""
cleanup() {
	[ -n "$MPID" ] && kill "$MPID" 2>/dev/null || true
	[ -n "$TPID" ] && kill "$TPID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

say() { printf 'oocsmoke: %s\n' "$*"; }

say "building binaries"
go build -o "$TMP/centrald" ./cmd/centrald
go build -o "$TMP/ptmquery" ./cmd/ptmquery
go build -o "$TMP/trafficgen" ./cmd/trafficgen

BUDGET=$((512 << 10))    # 512 KiB resident budget
CACHE=$((2 << 20))       # 2 MiB block cache
RSS_CEILING_KB=$((96 << 10)) # budget + cache + Go runtime slack, in KiB

PORT=$((18400 + $$ % 2000))
ADDR_MEM="127.0.0.1:$PORT"
ADDR_TIER="127.0.0.1:$((PORT + 1))"
HTTP_TIER="127.0.0.1:$((PORT + 2))"
COLD="$TMP/cold"

wait_up() {
	i=0
	while ! "$TMP/ptmquery" -central "$1" locations >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			say "centrald on $1 did not come up (logs follow)"
			cat "$TMP"/centrald-*.log
			exit 1
		fi
		sleep 0.1
	done
}

say "starting resident centrald on $ADDR_MEM"
"$TMP/centrald" -listen "$ADDR_MEM" 2>>"$TMP/centrald-mem.log" &
MPID=$!

say "starting tiered centrald on $ADDR_TIER (budget $BUDGET, cache $CACHE, cold $COLD)"
GOMEMLIMIT=48MiB PTM_BLOCKCACHE_BYTES=$CACHE \
	"$TMP/centrald" -listen "$ADDR_TIER" -http "$HTTP_TIER" \
	-store tiered -cold "$COLD" -resident-budget 512K \
	2>>"$TMP/centrald-tier.log" &
TPID=$!

wait_up "$ADDR_MEM"
wait_up "$ADDR_TIER"

# The identical seeded workload into both daemons: 12 periods of ~1M
# vehicles at two locations, 20k of them persistent through every
# period. Eq. (2) sizes each bitmap from its volume, so the payload is
# ~6 MiB against the 512 KiB budget.
PERIODS=12
gen() {
	"$TMP/trafficgen" -central "$1" -locA 1 -locB 2 -periods "$PERIODS" \
		-common 20000 -vol-min 950000 -vol-max 1000000 -seed 7 >/dev/null
}
say "streaming seeded workload into the resident daemon"
gen "$ADDR_MEM"
say "streaming the same workload into the tiered daemon"
gen "$ADDR_TIER"

PLIST="$(seq -s, 1 $PERIODS)"
say "diffing estimates (volume, point, p2p) across the tier boundary"
query_all() {
	"$TMP/ptmquery" -central "$1" volume -loc 1 -period 1
	"$TMP/ptmquery" -central "$1" volume -loc 2 -period "$PERIODS"
	"$TMP/ptmquery" -central "$1" point -loc 1 -periods "$PLIST"
	"$TMP/ptmquery" -central "$1" point -loc 2 -periods "$PLIST"
	"$TMP/ptmquery" -central "$1" p2p -loc 1 -loc2 2 -periods "$PLIST"
}
query_all "$ADDR_MEM" >"$TMP/est.mem"
query_all "$ADDR_TIER" >"$TMP/est.tier"
if ! diff -u "$TMP/est.mem" "$TMP/est.tier"; then
	say "estimates diverge across the tier boundary"
	exit 1
fi

say "checking /stats: 10x dataset, frozen segments, cache traffic"
STATS="$(curl -sf "http://$HTTP_TIER/stats" 2>/dev/null || wget -qO- "http://$HTTP_TIER/stats")"
json_field() {
	printf '%s\n' "$STATS" | tr -d ' \n' | sed -n "s/.*\"$1\":\([0-9][0-9]*\).*/\1/p"
}
payload_bits="$(json_field payload_bits)"
segments="$(json_field segments)"
cold_records="$(json_field cold_records)"
if [ -z "$payload_bits" ] || [ "$payload_bits" -lt $((BUDGET * 8 * 10)) ]; then
	say "dataset too small to prove anything: payload_bits=$payload_bits (want >= $((BUDGET * 8 * 10)))"
	exit 1
fi
if [ -z "$segments" ] || [ "$segments" -lt 1 ] || [ -z "$cold_records" ] || [ "$cold_records" -lt 1 ]; then
	say "tiered daemon never froze: segments=$segments cold_records=$cold_records"
	printf '%s\n' "$STATS"
	exit 1
fi
seg_count="$(ls "$COLD"/*.seg 2>/dev/null | wc -l)"
if [ "$seg_count" -lt 1 ]; then
	say "no .seg files under $COLD"
	exit 1
fi

say "checking peak RSS of the tiered daemon (VmHWM <= ${RSS_CEILING_KB} KiB)"
vmhwm_kb="$(awk '/^VmHWM:/ {print $2}' "/proc/$TPID/status")"
if [ -z "$vmhwm_kb" ] || [ "$vmhwm_kb" -gt "$RSS_CEILING_KB" ]; then
	say "tiered daemon peak RSS $vmhwm_kb KiB exceeds ceiling $RSS_CEILING_KB KiB"
	exit 1
fi

kill "$MPID" "$TPID" 2>/dev/null || true
wait "$MPID" 2>/dev/null || true
wait "$TPID" 2>/dev/null || true
MPID=""
TPID=""

say "ok: $((payload_bits / 8 / 1024)) KiB dataset over a $((BUDGET / 1024)) KiB budget, $segments segment(s), $cold_records cold record(s), peak RSS $vmhwm_kb KiB, estimates identical"
