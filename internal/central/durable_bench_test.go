package central

import (
	"fmt"
	"sync/atomic"
	"testing"

	"ptm/internal/record"
	"ptm/internal/vhash"
	"ptm/internal/wal"
)

// The durable/memory pair quantifies the ingest-plane cost of the
// durability promise per sync policy — the EXPERIMENTS.md §WAL table.
// Run via `make bench-wal`; the committed baseline is BENCH_pr5.json.

// benchRecords pre-builds b.N distinct records so the measured loop is
// pure Ingest (marshalling is charged to both stores identically).
func benchRecords(b *testing.B) []*record.Record {
	b.Helper()
	recs := make([]*record.Record, b.N)
	for i := range recs {
		rec, err := record.New(vhash.LocationID(i%1024+1), record.PeriodID(i/1024+1), 256)
		if err != nil {
			b.Fatal(err)
		}
		rec.Bitmap.Set(uint64(i) % 256)
		recs[i] = rec
	}
	return recs
}

func BenchmarkIngestMemory(b *testing.B) {
	srv, err := NewServerSharded(3, DefaultShards)
	if err != nil {
		b.Fatal(err)
	}
	recs := benchRecords(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.Ingest(recs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestDurable(b *testing.B) {
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncNever} {
		b.Run(fmt.Sprintf("sync=%v", policy), func(b *testing.B) {
			d, err := OpenDurable(b.TempDir(), 3, DefaultShards, wal.Options{Sync: policy}, 0)
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			recs := benchRecords(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.Ingest(recs[i]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIngestDurableParallel is the group-commit story at the store
// level: concurrent uploaders under SyncAlways share fsyncs, so
// per-record latency falls as parallelism rises (-cpu=1,4,8).
func BenchmarkIngestDurableParallel(b *testing.B) {
	d, err := OpenDurable(b.TempDir(), 3, DefaultShards, wal.Options{Sync: wal.SyncAlways}, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	var next int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := atomic.AddInt64(&next, 1)
			rec, err := record.New(vhash.LocationID(i%1024+1), record.PeriodID(i/1024+1), 256)
			if err != nil {
				b.Fatal(err)
			}
			rec.Bitmap.Set(uint64(i) % 256)
			if err := d.Ingest(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	st := d.LogStats()
	if st.Appends > 0 {
		b.ReportMetric(float64(st.Syncs)/float64(st.Appends), "syncs/append")
	}
}
