package central

import (
	"math/rand"
	"sync"
	"testing"

	"ptm/internal/core"
	"ptm/internal/record"
	"ptm/internal/vhash"
)

// seedLocation ingests nPeriods random records of m bits at loc.
func seedLocation(t *testing.T, s *Server, loc vhash.LocationID, nPeriods, m int, rng *rand.Rand) []record.PeriodID {
	t.Helper()
	periods := make([]record.PeriodID, nPeriods)
	for j := 0; j < nPeriods; j++ {
		rec := mustRecord(t, loc, record.PeriodID(j+1), m)
		for k := 0; k < m/2; k++ {
			rec.Bitmap.Set(rng.Uint64())
		}
		if err := s.Ingest(rec); err != nil {
			t.Fatal(err)
		}
		periods[j] = rec.Period
	}
	return periods
}

// TestServerEstCacheHitsAndIngestInvalidation: repeated queries hit the
// cache, results stay bit-identical, and an ingest at the location
// fences the cached entry so the next query recomputes against the new
// record set.
func TestServerEstCacheHitsAndIngestInvalidation(t *testing.T) {
	s := newServer(t)
	rng := rand.New(rand.NewSource(81))
	periods := seedLocation(t, s, 5, 4, 1<<10, rng)

	first, err := s.PointPersistent(5, periods)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.PointPersistent(5, periods)
	if err != nil {
		t.Fatal(err)
	}
	if *first != *second {
		t.Fatalf("cached query diverges: %+v vs %+v", first, second)
	}
	st := s.EstCacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats after warm query: %+v", st)
	}

	// New period at the same location: epoch bumps, entry is fenced.
	// (Seeding already counted invalidations — every ingest after a
	// location's first one does — so check the delta.)
	invBefore := st.Invalidations
	rec := mustRecord(t, 5, 99, 1<<10)
	for k := 0; k < 200; k++ {
		rec.Bitmap.Set(rng.Uint64())
	}
	if err := s.Ingest(rec); err != nil {
		t.Fatal(err)
	}
	st = s.EstCacheStats()
	if st.Invalidations != invBefore+1 {
		t.Fatalf("ingest at live location must count an invalidation: %+v (before: %d)", st, invBefore)
	}

	// Same periods as before — but the epoch changed, so this must be a
	// recompute, not a stale hit.
	third, err := s.PointPersistent(5, periods)
	if err != nil {
		t.Fatal(err)
	}
	if *third != *first {
		t.Fatalf("query over unchanged periods must still be deterministic: %+v vs %+v", third, first)
	}
	st = s.EstCacheStats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("post-ingest query must miss: %+v", st)
	}

	// Querying with the new period included is its own key.
	wider := append(append([]record.PeriodID{}, periods...), 99)
	if _, err := s.PointPersistent(5, wider); err != nil {
		t.Fatal(err)
	}
	if st := s.EstCacheStats(); st.Misses != 3 {
		t.Fatalf("wider period set should miss: %+v", st)
	}
}

// TestServerEstCacheP2P: the point-to-point path caches too, and an
// ingest at either endpoint fences the pair entry.
func TestServerEstCacheP2P(t *testing.T) {
	s := newServer(t)
	rng := rand.New(rand.NewSource(82))
	periods := seedLocation(t, s, 7, 3, 1<<10, rng)
	for j, p := range periods {
		rec := mustRecord(t, 8, p, 1<<10)
		for k := 0; k < 300+j; k++ {
			rec.Bitmap.Set(rng.Uint64())
		}
		if err := s.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}

	first, err := s.PointToPointPersistent(7, 8, periods)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.PointToPointPersistent(7, 8, periods)
	if err != nil {
		t.Fatal(err)
	}
	if *first != *second {
		t.Fatalf("cached p2p diverges: %+v vs %+v", first, second)
	}
	if st := s.EstCacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("p2p stats: %+v", st)
	}

	// Ingest at the B endpoint only: the pair key's epochB changes.
	rec := mustRecord(t, 8, 50, 1<<10)
	if err := s.Ingest(rec); err != nil {
		t.Fatal(err)
	}
	third, err := s.PointToPointPersistent(7, 8, periods)
	if err != nil {
		t.Fatal(err)
	}
	if *third != *first {
		t.Fatalf("p2p over unchanged periods changed: %+v vs %+v", third, first)
	}
	if st := s.EstCacheStats(); st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("p2p post-ingest stats: %+v", st)
	}
}

// TestServerEstCacheDisabled: SetEstimateCache(0) turns caching off
// without changing results.
func TestServerEstCacheDisabled(t *testing.T) {
	s := newServer(t)
	rng := rand.New(rand.NewSource(83))
	periods := seedLocation(t, s, 9, 3, 1<<9, rng)

	cached, err := s.PointPersistent(9, periods)
	if err != nil {
		t.Fatal(err)
	}
	s.SetEstimateCache(0)
	uncached, err := s.PointPersistent(9, periods)
	if err != nil {
		t.Fatal(err)
	}
	if *cached != *uncached {
		t.Fatalf("disabling the cache changed the estimate: %+v vs %+v", cached, uncached)
	}
	if st := s.EstCacheStats(); st != (core.EstCacheStats{}) {
		t.Fatalf("disabled cache must report zero stats: %+v", st)
	}
}

// TestEstCacheConcurrentQueryIngest is the -race soak: readers hammer
// point and p2p queries over a fixed window while a writer keeps
// ingesting fresh periods at the same locations (fencing the cache under
// the readers' feet). Run by check.sh's race stress stage with -count=2.
func TestEstCacheConcurrentQueryIngest(t *testing.T) {
	s := newServer(t)
	rng := rand.New(rand.NewSource(84))
	const m = 1 << 9
	periods := seedLocation(t, s, 1, 4, m, rng)
	for _, p := range periods {
		rec := mustRecord(t, 2, p, m)
		for k := 0; k < m/3; k++ {
			rec.Bitmap.Set(rng.Uint64())
		}
		if err := s.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}

	// The fixed window's records never change after seeding, so every
	// read — cached or recomputed, before or after any ingest — must
	// produce this exact result.
	wantPoint, err := s.PointPersistent(1, periods)
	if err != nil {
		t.Fatal(err)
	}
	wantP2P, err := s.PointToPointPersistent(1, 2, periods)
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers       = 4
		readsPerGo    = 200
		writerPeriods = 120
	)
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(85))
		for j := 0; j < writerPeriods; j++ {
			loc := vhash.LocationID(1 + j%2)
			rec, err := record.New(loc, record.PeriodID(1000+j), m)
			if err != nil {
				errc <- err
				return
			}
			for k := 0; k < m/4; k++ {
				rec.Bitmap.Set(wrng.Uint64())
			}
			if err := s.Ingest(rec); err != nil {
				errc <- err
				return
			}
		}
	}()

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < readsPerGo; j++ {
				if j%2 == g%2 {
					got, err := s.PointPersistent(1, periods)
					if err != nil {
						errc <- err
						return
					}
					if *got != *wantPoint {
						errc <- errDrift
						return
					}
				} else {
					got, err := s.PointToPointPersistent(1, 2, periods)
					if err != nil {
						errc <- err
						return
					}
					if *got != *wantP2P {
						errc <- errDrift
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := s.EstCacheStats()
	if st.Hits+st.Misses != readers*readsPerGo+2 {
		t.Fatalf("every read must count exactly once: %+v", st)
	}
	if st.Invalidations == 0 {
		t.Fatal("writer ingests at live locations must record invalidations")
	}
}

var errDrift = &driftError{}

type driftError struct{}

func (*driftError) Error() string {
	return "concurrent cached query diverged from the fixed-window result"
}
