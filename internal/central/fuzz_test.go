package central

import (
	"bytes"
	"testing"

	"ptm/internal/record"
)

// FuzzSnapshotLoad feeds arbitrary bytes to LoadFrom: it must error
// cleanly on garbage (no panic, no runaway allocation) and round-trip
// anything SaveTo produced. Truncating a valid snapshot must error, not
// silently load a partial store — a snapshot is all-or-nothing, unlike
// the WAL's torn tail.
func FuzzSnapshotLoad(f *testing.F) {
	// Seed with a genuine snapshot so the fuzzer starts from the valid
	// format, plus the classic liars: bad magic, bad version, a count
	// promising records the body doesn't hold, and a record length far
	// past the data.
	srv, err := NewServer(3)
	if err != nil {
		f.Fatal(err)
	}
	rec, err := record.New(7, 1, 64)
	if err != nil {
		f.Fatal(err)
	}
	rec.Bitmap.Set(3)
	if err := srv.Ingest(rec); err != nil {
		f.Fatal(err)
	}
	var snap bytes.Buffer
	if err := srv.SaveTo(&snap); err != nil {
		f.Fatal(err)
	}
	f.Add(snap.Bytes())
	f.Add([]byte{})
	f.Add([]byte("PTMS"))
	f.Add([]byte{0x50, 0x54, 0x4d, 0x53, 0x01, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Add(append(append([]byte{}, snap.Bytes()[:12]...), 0xff, 0xff, 0xff, 0x0f))

	f.Fuzz(func(t *testing.T, data []byte) {
		fresh, err := NewServer(3)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.LoadFrom(bytes.NewReader(data)); err != nil {
			return // rejected cleanly
		}
		// Accepted input: the store must be internally consistent enough
		// to snapshot again.
		var out bytes.Buffer
		if err := fresh.SaveTo(&out); err != nil {
			t.Fatalf("loaded snapshot cannot be re-saved: %v", err)
		}

		// And a strict prefix of the canonical re-save must never load:
		// LoadFrom tolerates trailing garbage in data, so truncate the
		// canonical bytes, where every byte is load-bearing.
		if len(fresh.Locations()) > 0 {
			trunc, err := NewServer(3)
			if err != nil {
				t.Fatal(err)
			}
			canon := out.Bytes()
			if err := trunc.LoadFrom(bytes.NewReader(canon[:len(canon)-1])); err == nil {
				t.Fatal("truncated snapshot loaded without error")
			}
		}
	})
}
