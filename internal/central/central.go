// Package central implements the central server of Section II-A: it
// collects the traffic records uploaded by all RSUs at period end, stores
// them by (location, period), and answers the authority's queries — plain
// per-period volume (Eq. 1), point persistent traffic (Eq. 12), and
// point-to-point persistent traffic (Eq. 21). Because records are
// privacy-preserving bitmaps, the server never holds per-vehicle data.
package central

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"ptm/internal/core"
	"ptm/internal/record"
	"ptm/internal/vhash"
)

// Errors.
var (
	ErrDuplicate = errors.New("central: record for this location and period already stored")
	ErrNotFound  = errors.New("central: no record for requested location/period")
	ErrNoPeriods = errors.New("central: query names no periods")
)

// Server is the in-memory record store and query engine. The zero value
// is not usable; construct with NewServer.
type Server struct {
	mu sync.RWMutex
	// byLoc[loc][period] holds the stored records.
	byLoc map[vhash.LocationID]map[record.PeriodID]*record.Record
	s     int // system-wide representative-bit count, needed by Eq. (21)
}

// NewServer creates an empty server configured with the system-wide
// representative-bit parameter s (Section II-D).
func NewServer(s int) (*Server, error) {
	if s < vhash.MinS || s > vhash.MaxS {
		return nil, fmt.Errorf("central: %w", vhash.ErrInvalidS)
	}
	return &Server{
		byLoc: make(map[vhash.LocationID]map[record.PeriodID]*record.Record),
		s:     s,
	}, nil
}

// S returns the configured representative-bit count.
func (s *Server) S() int { return s.s }

// Ingest stores one uploaded record. Duplicate (location, period) pairs
// are rejected: an RSU reports each period exactly once, so a duplicate
// indicates a replay or a misconfigured deployment.
func (s *Server) Ingest(rec *record.Record) error {
	if rec == nil {
		return record.ErrNilBitmap
	}
	if err := rec.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	byPeriod, ok := s.byLoc[rec.Location]
	if !ok {
		byPeriod = make(map[record.PeriodID]*record.Record)
		s.byLoc[rec.Location] = byPeriod
	}
	if _, dup := byPeriod[rec.Period]; dup {
		return fmt.Errorf("%w: loc=%d period=%d", ErrDuplicate, rec.Location, rec.Period)
	}
	byPeriod[rec.Period] = rec
	return nil
}

// Locations returns all locations with stored records, sorted.
func (s *Server) Locations() []vhash.LocationID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]vhash.LocationID, 0, len(s.byLoc))
	for loc := range s.byLoc {
		out = append(out, loc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Periods returns the sorted periods stored for a location.
func (s *Server) Periods(loc vhash.LocationID) []record.PeriodID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	byPeriod := s.byLoc[loc]
	out := make([]record.PeriodID, 0, len(byPeriod))
	for p := range byPeriod {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// get assembles the record set Π for (loc, periods).
func (s *Server) get(loc vhash.LocationID, periods []record.PeriodID) (*record.Set, error) {
	if len(periods) == 0 {
		return nil, ErrNoPeriods
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	byPeriod := s.byLoc[loc]
	recs := make([]*record.Record, 0, len(periods))
	for _, p := range periods {
		rec, ok := byPeriod[p]
		if !ok {
			return nil, fmt.Errorf("%w: loc=%d period=%d", ErrNotFound, loc, p)
		}
		recs = append(recs, rec)
	}
	return record.NewSet(recs)
}

// Volume estimates the plain traffic volume at loc in one period (Eq. 1).
func (s *Server) Volume(loc vhash.LocationID, p record.PeriodID) (float64, error) {
	s.mu.RLock()
	rec, ok := s.byLoc[loc][p]
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: loc=%d period=%d", ErrNotFound, loc, p)
	}
	return core.EstimateVolume(rec)
}

// PointPersistent estimates the point persistent traffic at loc over the
// given periods (Eq. 12).
func (s *Server) PointPersistent(loc vhash.LocationID, periods []record.PeriodID) (*core.PointResult, error) {
	set, err := s.get(loc, periods)
	if err != nil {
		return nil, err
	}
	return core.EstimatePoint(set)
}

// WindowResult is one sliding-window persistent estimate.
type WindowResult struct {
	// Periods are the window's measurement periods, in order.
	Periods []record.PeriodID
	// Estimate is the persistent volume over exactly those periods.
	Estimate float64
}

// PointPersistentSliding estimates the point persistent traffic over
// every window of `window` consecutive stored periods at loc — e.g. the
// week-over-week stability series the paper's introduction motivates
// ("over the workdays of a week, over the Saturdays of several weeks").
// window must be >= 2; there must be at least `window` stored periods.
func (s *Server) PointPersistentSliding(loc vhash.LocationID, window int) ([]WindowResult, error) {
	if window < 2 {
		return nil, fmt.Errorf("central: window must be >= 2, got %d", window)
	}
	periods := s.Periods(loc)
	if len(periods) < window {
		return nil, fmt.Errorf("%w: %d periods stored at loc %d, window %d", ErrNotFound, len(periods), loc, window)
	}
	out := make([]WindowResult, 0, len(periods)-window+1)
	for i := 0; i+window <= len(periods); i++ {
		ps := periods[i : i+window]
		res, err := s.PointPersistent(loc, ps)
		if err != nil {
			return nil, fmt.Errorf("central: window %v: %w", ps, err)
		}
		win := WindowResult{Periods: append([]record.PeriodID{}, ps...), Estimate: res.Estimate}
		out = append(out, win)
	}
	return out, nil
}

// PointToPointPersistent estimates the point-to-point persistent traffic
// between locA and locB over the given periods (Eq. 21).
func (s *Server) PointToPointPersistent(locA, locB vhash.LocationID, periods []record.PeriodID) (*core.PointToPointResult, error) {
	setA, err := s.get(locA, periods)
	if err != nil {
		return nil, err
	}
	setB, err := s.get(locB, periods)
	if err != nil {
		return nil, err
	}
	return core.EstimatePointToPoint(setA, setB, s.s)
}

// ODVolume estimates the single-period point-to-point volume between two
// locations: the number of vehicles that passed both during period p.
func (s *Server) ODVolume(locA, locB vhash.LocationID, p record.PeriodID) (float64, error) {
	s.mu.RLock()
	recA, okA := s.byLoc[locA][p]
	recB, okB := s.byLoc[locB][p]
	s.mu.RUnlock()
	if !okA {
		return 0, fmt.Errorf("%w: loc=%d period=%d", ErrNotFound, locA, p)
	}
	if !okB {
		return 0, fmt.Errorf("%w: loc=%d period=%d", ErrNotFound, locB, p)
	}
	res, err := core.EstimateODVolume(recA, recB, s.s)
	if err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

// Snapshot serialization: a versioned stream of length-prefixed marshaled
// records, so deployments can persist and restore the store.
const (
	snapMagic   = 0x534d5450 // "PTMS"
	snapVersion = 1
)

// SaveTo writes a snapshot of all stored records.
func (s *Server) SaveTo(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], snapMagic)
	hdr[4] = snapVersion

	s.mu.RLock()
	var recs []*record.Record
	for _, byPeriod := range s.byLoc {
		for _, rec := range byPeriod {
			recs = append(recs, rec)
		}
	}
	s.mu.RUnlock()
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Location != recs[j].Location {
			return recs[i].Location < recs[j].Location
		}
		return recs[i].Period < recs[j].Period
	})

	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(recs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("central: writing snapshot header: %w", err)
	}
	for _, rec := range recs {
		blob, err := rec.MarshalBinary()
		if err != nil {
			return err
		}
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(blob)))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			return fmt.Errorf("central: writing record length: %w", err)
		}
		if _, err := bw.Write(blob); err != nil {
			return fmt.Errorf("central: writing record: %w", err)
		}
	}
	return bw.Flush()
}

// LoadFrom ingests every record from a snapshot produced by SaveTo.
func (s *Server) LoadFrom(r io.Reader) error {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("central: reading snapshot header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != snapMagic {
		return errors.New("central: bad snapshot magic")
	}
	if hdr[4] != snapVersion {
		return fmt.Errorf("central: unsupported snapshot version %d", hdr[4])
	}
	count := binary.LittleEndian.Uint32(hdr[8:12])
	for i := uint32(0); i < count; i++ {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return fmt.Errorf("central: reading record %d length: %w", i, err)
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > 1<<28 {
			return fmt.Errorf("central: record %d implausibly large (%d bytes)", i, n)
		}
		blob := make([]byte, n)
		if _, err := io.ReadFull(br, blob); err != nil {
			return fmt.Errorf("central: reading record %d: %w", i, err)
		}
		rec, err := record.Unmarshal(blob)
		if err != nil {
			return fmt.Errorf("central: decoding record %d: %w", i, err)
		}
		if err := s.Ingest(rec); err != nil {
			return fmt.Errorf("central: restoring record %d: %w", i, err)
		}
	}
	return nil
}
