// Package central implements the central server of Section II-A: it
// collects the traffic records uploaded by all RSUs at period end, stores
// them by (location, period), and answers the authority's queries — plain
// per-period volume (Eq. 1), point persistent traffic (Eq. 12), and
// point-to-point persistent traffic (Eq. 21). Because records are
// privacy-preserving bitmaps, the server never holds per-vehicle data.
//
// # Storage
//
// The server runs on a store.Store: fully resident (store.Mem, the
// default), tiered with an out-of-core cold tier of mapped checkpoint
// segments (store.Tiered), or read-only over a segment directory
// (store.Mmap). The query plane is tier-oblivious — a record served off
// a mapped segment page is bit-identical to a resident one, so every
// estimate is too (proven by the differential tests in store). Cold
// reads hand out records that view mapped pages; the server holds their
// pins exactly for the duration of the estimator call.
//
// All methods are safe for concurrent use; consistency guarantees (the
// (records, epoch) snapshot that fences the estimate cache) are the
// store's contract.
package central

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"ptm/internal/core"
	"ptm/internal/record"
	"ptm/internal/store"
	"ptm/internal/vhash"
)

// Errors. ErrDuplicate and ErrNotFound alias the store's sentinels so
// transport handlers and WAL replay match them with errors.Is no matter
// which tier produced them.
var (
	ErrDuplicate = store.ErrDuplicate
	ErrNotFound  = store.ErrNotFound
	ErrNoPeriods = errors.New("central: query names no periods")
)

// DefaultShards is the resident store's shard count used by NewServer:
// enough that a city's worth of RSUs uploading at period end rarely
// collide on a lock, small enough that cross-shard iteration stays cheap.
const DefaultShards = store.DefaultShards

// Server is the record store and query engine. The zero value is not
// usable; construct with NewServer, NewServerSharded, or
// NewServerWithStore.
type Server struct {
	st store.Store
	s  int // system-wide representative-bit count, needed by Eq. (21)

	// cache memoizes estimator results keyed by location epochs. Set at
	// construction (SetEstimateCache reconfigures it for tests and
	// benchmarks); nil disables caching — every query computes.
	cache *core.EstCache
}

// NewServer creates an empty resident server configured with the
// system-wide representative-bit parameter s (Section II-D) and
// DefaultShards lock shards.
func NewServer(s int) (*Server, error) {
	return NewServerSharded(s, DefaultShards)
}

// NewServerSharded creates an empty resident server with an explicit
// shard count, which must be a power of two in [1, 1<<12]. More shards
// admit more concurrent uploads at the cost of slower cross-shard
// iteration.
//
//ptm:exclusive constructor: the Server is not shared until it returns
func NewServerSharded(s, nShards int) (*Server, error) {
	if nShards == 0 {
		// store.NewMem treats 0 as "default"; this constructor's contract
		// predates that and rejects it.
		return nil, fmt.Errorf("central: shard count 0 is not a power of two in [1, 4096]")
	}
	st, err := store.NewMem(nShards)
	if err != nil {
		return nil, err
	}
	return NewServerWithStore(s, st)
}

// NewServerWithStore wraps an existing store — how centrald mounts the
// tiered and read-only mmap stores. The server takes over the store's
// lifecycle (CloseStore).
//
//ptm:exclusive constructor: the Server is not shared until it returns
func NewServerWithStore(s int, st store.Store) (*Server, error) {
	if s < vhash.MinS || s > vhash.MaxS {
		return nil, fmt.Errorf("central: %w", vhash.ErrInvalidS)
	}
	if st == nil {
		return nil, errors.New("central: nil store")
	}
	return &Server{
		st:    st,
		s:     s,
		cache: core.NewEstCache(core.DefaultEstCacheEntries),
	}, nil
}

// SetEstimateCache replaces the server's estimate cache with one bounded
// to capacity entries (capacity <= 0 disables caching). Counters restart
// from zero. Not synchronized with in-flight queries: call it during
// setup, before the server is shared.
//
//ptm:exclusive configuration: callers reconfigure before serving
func (s *Server) SetEstimateCache(capacity int) {
	s.cache = core.NewEstCache(capacity)
}

// EstCacheStats returns a snapshot of the estimate cache's counters
// (zeros when caching is disabled).
func (s *Server) EstCacheStats() core.EstCacheStats {
	return s.cache.Stats()
}

// S returns the configured representative-bit count.
func (s *Server) S() int { return s.s }

// Store returns the underlying record store (for stats surfaces that
// need store-specific interfaces, e.g. the block-cache counters).
func (s *Server) Store() store.Store { return s.st }

// Shards returns the resident tier's shard count (1 when the store does
// not shard).
func (s *Server) Shards() int {
	if sh, ok := s.st.(interface{ Shards() int }); ok {
		return sh.Shards()
	}
	return 1
}

// CloseStore releases the store's OS resources (mappings, files). The
// server must not be used afterwards.
func (s *Server) CloseStore() error { return s.st.Close() }

// Ingest stores one uploaded record. Duplicate (location, period) pairs
// are rejected: an RSU reports each period exactly once, so a duplicate
// indicates a replay or a misconfigured deployment.
func (s *Server) Ingest(rec *record.Record) error {
	prior, err := s.st.Ingest(rec)
	if err != nil {
		return err
	}
	if prior > 0 {
		// The location already had records, so cached estimates for it may
		// exist; the epoch bump inside the store just fenced them.
		s.cache.NoteInvalidation()
	}
	return nil
}

// Locations returns all locations with stored records, sorted.
func (s *Server) Locations() []vhash.LocationID { return s.st.Locations() }

// Periods returns the sorted periods stored for a location.
func (s *Server) Periods(loc vhash.LocationID) []record.PeriodID { return s.st.Periods(loc) }

// RecordBlobs returns the marshaled form of every record stored at loc,
// sorted by period. Cold-tier records are pinned only for the duration
// of the marshal — the returned blobs are heap copies, safe to hold and
// send. The cluster subsystem uses this for record-fetch frames and for
// full-state resync when a follower's WAL watermark predates checkpoint
// compaction.
func (s *Server) RecordBlobs(loc vhash.LocationID) ([][]byte, error) {
	periods := s.st.Periods(loc)
	if len(periods) == 0 {
		return nil, fmt.Errorf("%w: loc=%d", ErrNotFound, loc)
	}
	recs, _, unpin, err := s.st.Collect(loc, periods)
	if err != nil {
		return nil, err
	}
	defer unpin()
	blobs := make([][]byte, len(recs))
	for i, rec := range recs {
		blob, err := rec.MarshalBinary()
		if err != nil {
			return nil, err
		}
		blobs[i] = blob
	}
	return blobs, nil
}

// get assembles the record set Π for (loc, periods) together with the
// location's ingest epoch; the store reads the pair atomically, which is
// what makes the epoch a sound cache fence. The caller must call unpin
// after its last use of the set — cold-tier records view mapped pages
// that stay valid only while pinned.
func (s *Server) get(loc vhash.LocationID, periods []record.PeriodID) (*record.Set, uint64, func(), error) {
	if len(periods) == 0 {
		return nil, 0, nil, ErrNoPeriods
	}
	recs, epoch, unpin, err := s.st.Collect(loc, periods)
	if err != nil {
		return nil, 0, nil, err
	}
	set, err := record.NewSet(recs)
	if err != nil {
		unpin()
		return nil, 0, nil, err
	}
	return set, epoch, unpin, nil
}

// Volume estimates the plain traffic volume at loc in one period (Eq. 1).
func (s *Server) Volume(loc vhash.LocationID, p record.PeriodID) (float64, error) {
	rec, unpin, ok := s.st.Lookup(loc, p)
	if !ok {
		return 0, fmt.Errorf("%w: loc=%d period=%d", ErrNotFound, loc, p)
	}
	defer unpin()
	return core.EstimateVolume(rec)
}

// PointPersistent estimates the point persistent traffic at loc over the
// given periods (Eq. 12). Results are served from the estimate cache
// when the location has not ingested since they were computed; a hit is
// bit-identical to the cold computation.
func (s *Server) PointPersistent(loc vhash.LocationID, periods []record.PeriodID) (*core.PointResult, error) {
	set, epoch, unpin, err := s.get(loc, periods)
	if err != nil {
		return nil, err
	}
	defer unpin()
	return s.cache.Point(epoch, set, core.SplitHalves)
}

// WindowResult is one sliding-window persistent estimate.
type WindowResult struct {
	// Periods are the window's measurement periods, in order.
	Periods []record.PeriodID
	// Estimate is the persistent volume over exactly those periods.
	Estimate float64
}

// PointPersistentSliding estimates the point persistent traffic over
// every window of `window` consecutive stored periods at loc — e.g. the
// week-over-week stability series the paper's introduction motivates
// ("over the workdays of a week, over the Saturdays of several weeks").
// window must be >= 2; there must be at least `window` stored periods.
func (s *Server) PointPersistentSliding(loc vhash.LocationID, window int) ([]WindowResult, error) {
	if window < 2 {
		return nil, fmt.Errorf("central: window must be >= 2, got %d", window)
	}
	periods := s.Periods(loc)
	if len(periods) < window {
		return nil, fmt.Errorf("%w: %d periods stored at loc %d, window %d", ErrNotFound, len(periods), loc, window)
	}
	out := make([]WindowResult, 0, len(periods)-window+1)
	for i := 0; i+window <= len(periods); i++ {
		ps := periods[i : i+window]
		res, err := s.PointPersistent(loc, ps)
		if err != nil {
			return nil, fmt.Errorf("central: window %v: %w", ps, err)
		}
		win := WindowResult{Periods: append([]record.PeriodID{}, ps...), Estimate: res.Estimate}
		out = append(out, win)
	}
	return out, nil
}

// PointToPointPersistent estimates the point-to-point persistent traffic
// between locA and locB over the given periods (Eq. 21).
func (s *Server) PointToPointPersistent(locA, locB vhash.LocationID, periods []record.PeriodID) (*core.PointToPointResult, error) {
	setA, epochA, unpinA, err := s.get(locA, periods)
	if err != nil {
		return nil, err
	}
	defer unpinA()
	setB, epochB, unpinB, err := s.get(locB, periods)
	if err != nil {
		return nil, err
	}
	defer unpinB()
	return s.cache.PointToPoint(epochA, epochB, setA, setB, s.s)
}

// ODVolume estimates the single-period point-to-point volume between two
// locations: the number of vehicles that passed both during period p.
func (s *Server) ODVolume(locA, locB vhash.LocationID, p record.PeriodID) (float64, error) {
	recA, unpinA, okA := s.st.Lookup(locA, p)
	if !okA {
		return 0, fmt.Errorf("%w: loc=%d period=%d", ErrNotFound, locA, p)
	}
	defer unpinA()
	recB, unpinB, okB := s.st.Lookup(locB, p)
	if !okB {
		return 0, fmt.Errorf("%w: loc=%d period=%d", ErrNotFound, locB, p)
	}
	defer unpinB()
	res, err := core.EstimateODVolume(recA, recB, s.s)
	if err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

// Snapshot serialization: a versioned stream of length-prefixed marshaled
// records, so deployments can persist and restore the store.
const (
	snapMagic   = 0x534d5450 // "PTMS"
	snapVersion = 1
)

// SaveTo writes a snapshot of all stored records. The records are sorted
// by (location, period), so the snapshot bytes do not depend on shard
// count, tiering state, or map iteration order. Each record is encoded
// into one reused scratch buffer and written out immediately — the
// writer streams, it does not materialize the store (cold records are
// pinned one at a time).
func (s *Server) SaveTo(w io.Writer) error {
	bw := bufio.NewWriter(w)
	scratch := make([]byte, 0, 64<<10)
	err := s.st.ForEachSorted(
		func(count int) error {
			var hdr [12]byte
			binary.LittleEndian.PutUint32(hdr[0:4], snapMagic)
			hdr[4] = snapVersion
			binary.LittleEndian.PutUint32(hdr[8:12], uint32(count))
			if _, err := bw.Write(hdr[:]); err != nil {
				return fmt.Errorf("central: writing snapshot header: %w", err)
			}
			return nil
		},
		func(rec *record.Record) error {
			// Reserve the 4-byte length prefix, append the record behind
			// it, then patch the prefix — one buffered write per record,
			// zero per-record allocations once scratch has grown.
			scratch = append(scratch[:0], 0, 0, 0, 0)
			blob, err := rec.AppendBinary(scratch)
			if err != nil {
				return err
			}
			scratch = blob
			binary.LittleEndian.PutUint32(scratch[0:4], uint32(len(scratch)-4))
			if _, err := bw.Write(scratch); err != nil {
				return fmt.Errorf("central: writing record: %w", err)
			}
			return nil
		})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// LoadFrom restores records from a snapshot produced by SaveTo, or from
// a cold checkpoint segment (the on-disk format store.Tiered freezes —
// the first four bytes distinguish the two). Records already present are
// skipped: restore is idempotent, which is what lets a tiered store
// recover from a WAL checkpoint that includes its own frozen records.
func (s *Server) LoadFrom(r io.Reader) error {
	br := bufio.NewReader(r)
	magic, err := br.Peek(4)
	if err != nil {
		return fmt.Errorf("central: reading snapshot header: %w", err)
	}
	if binary.LittleEndian.Uint32(magic) == store.SegMagic {
		return s.loadSegment(br)
	}
	return s.loadSnapshot(br)
}

// loadSnapshot reads the native SaveTo stream.
func (s *Server) loadSnapshot(br *bufio.Reader) error {
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("central: reading snapshot header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != snapMagic {
		return errors.New("central: bad snapshot magic")
	}
	if hdr[4] != snapVersion {
		return fmt.Errorf("central: unsupported snapshot version %d", hdr[4])
	}
	count := binary.LittleEndian.Uint32(hdr[8:12])
	var blob bytes.Buffer
	for i := uint32(0); i < count; i++ {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return fmt.Errorf("central: reading record %d length: %w", i, err)
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > 1<<28 {
			return fmt.Errorf("central: record %d implausibly large (%d bytes)", i, n)
		}
		// Copy incrementally rather than allocating n bytes up front: the
		// length prefix is attacker-controlled (a corrupt or hostile
		// snapshot), and a lying prefix must fail at the truncation
		// point, not after a 256 MiB allocation.
		blob.Reset()
		if _, err := io.CopyN(&blob, br, int64(n)); err != nil {
			return fmt.Errorf("central: reading record %d: %w", i, err)
		}
		rec, err := record.Unmarshal(blob.Bytes())
		if err != nil {
			return fmt.Errorf("central: decoding record %d: %w", i, err)
		}
		if err := s.Ingest(rec); err != nil && !errors.Is(err, ErrDuplicate) {
			return fmt.Errorf("central: restoring record %d: %w", i, err)
		}
	}
	return nil
}

// loadSegment copy-ingests every record of a checkpoint segment: all
// CRCs are verified and the bitmaps are heap copies, so the source
// buffer is free once this returns.
func (s *Server) loadSegment(br *bufio.Reader) error {
	data, err := io.ReadAll(br)
	if err != nil {
		return fmt.Errorf("central: reading segment: %w", err)
	}
	return store.ParseSegmentRecords(data, func(rec *record.Record) error {
		if err := s.Ingest(rec); err != nil && !errors.Is(err, ErrDuplicate) {
			return fmt.Errorf("central: restoring segment record loc=%d period=%d: %w", rec.Location, rec.Period, err)
		}
		return nil
	})
}
