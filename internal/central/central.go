// Package central implements the central server of Section II-A: it
// collects the traffic records uploaded by all RSUs at period end, stores
// them by (location, period), and answers the authority's queries — plain
// per-period volume (Eq. 1), point persistent traffic (Eq. 12), and
// point-to-point persistent traffic (Eq. 21). Because records are
// privacy-preserving bitmaps, the server never holds per-vehicle data.
//
// # Concurrency
//
// The store is sharded by location: each shard holds a disjoint slice of
// the location space under its own RWMutex, so uploads for different
// locations (the common case — every RSU reports a distinct location)
// take disjoint locks and proceed in parallel. All methods are safe for
// concurrent use. Cross-shard operations (Locations, Stats, DropBefore,
// SaveTo) lock one shard at a time, so they see a per-shard-consistent
// — not globally atomic — view; that is fine because records are
// immutable once ingested and never modified in place.
package central

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"

	"ptm/internal/core"
	"ptm/internal/record"
	"ptm/internal/vhash"
)

// Errors.
var (
	ErrDuplicate = errors.New("central: record for this location and period already stored")
	ErrNotFound  = errors.New("central: no record for requested location/period")
	ErrNoPeriods = errors.New("central: query names no periods")
)

// DefaultShards is the shard count used by NewServer: enough that a
// city's worth of RSUs uploading at period end rarely collide on a lock,
// small enough that cross-shard iteration stays cheap.
const DefaultShards = 16

// shard is one lock domain of the store.
type shard struct {
	mu sync.RWMutex
	// byLoc[loc][period] holds the stored records for this shard's slice
	// of the location space (the guard covers the inner maps too).
	//ptm:guardedby mu
	byLoc map[vhash.LocationID]map[record.PeriodID]*record.Record
	// epoch[loc] counts accepted ingests at loc. It fences the estimate
	// cache: the epoch is part of every cache key, so bumping it makes
	// all cached estimates for the location unreachable (lazy
	// invalidation — see core.EstCache and DESIGN.md §13).
	//ptm:guardedby mu
	epoch map[vhash.LocationID]uint64
}

// Server is the in-memory record store and query engine. The zero value
// is not usable; construct with NewServer or NewServerSharded.
type Server struct {
	shards []shard // immutable slice; per-shard state under shard.mu
	mask   uint64  // len(shards)-1; len(shards) is a power of two
	s      int     // system-wide representative-bit count, needed by Eq. (21)

	// cache memoizes estimator results keyed by location epochs. Set at
	// construction (SetEstimateCache reconfigures it for tests and
	// benchmarks); nil disables caching — every query computes.
	cache *core.EstCache
}

// NewServer creates an empty server configured with the system-wide
// representative-bit parameter s (Section II-D) and DefaultShards lock
// shards.
func NewServer(s int) (*Server, error) {
	return NewServerSharded(s, DefaultShards)
}

// NewServerSharded creates an empty server with an explicit shard count,
// which must be a power of two in [1, 1<<12]. More shards admit more
// concurrent uploads at the cost of slower cross-shard iteration.
//
//ptm:exclusive constructor: the Server is not shared until it returns
func NewServerSharded(s, nShards int) (*Server, error) {
	if s < vhash.MinS || s > vhash.MaxS {
		return nil, fmt.Errorf("central: %w", vhash.ErrInvalidS)
	}
	if nShards < 1 || nShards > 1<<12 || bits.OnesCount(uint(nShards)) != 1 {
		return nil, fmt.Errorf("central: shard count %d is not a power of two in [1, 4096]", nShards)
	}
	srv := &Server{
		shards: make([]shard, nShards),
		mask:   uint64(nShards - 1),
		s:      s,
		cache:  core.NewEstCache(core.DefaultEstCacheEntries),
	}
	for i := range srv.shards {
		srv.shards[i].byLoc = make(map[vhash.LocationID]map[record.PeriodID]*record.Record)
		srv.shards[i].epoch = make(map[vhash.LocationID]uint64)
	}
	return srv, nil
}

// SetEstimateCache replaces the server's estimate cache with one bounded
// to capacity entries (capacity <= 0 disables caching). Counters restart
// from zero. Not synchronized with in-flight queries: call it during
// setup, before the server is shared.
//
//ptm:exclusive configuration: callers reconfigure before serving
func (s *Server) SetEstimateCache(capacity int) {
	s.cache = core.NewEstCache(capacity)
}

// EstCacheStats returns a snapshot of the estimate cache's counters
// (zeros when caching is disabled).
func (s *Server) EstCacheStats() core.EstCacheStats {
	return s.cache.Stats()
}

// S returns the configured representative-bit count.
func (s *Server) S() int { return s.s }

// Shards returns the shard count.
func (s *Server) Shards() int { return len(s.shards) }

// shardFor maps a location to its shard. Location IDs are operator
// assigned and often sequential, so they are mixed through a Fibonacci
// hash and the shard index taken from the high bits.
func (s *Server) shardFor(loc vhash.LocationID) *shard {
	h := uint64(loc) * 0x9e3779b97f4a7c15
	return &s.shards[(h>>32)&s.mask]
}

// Ingest stores one uploaded record. Duplicate (location, period) pairs
// are rejected: an RSU reports each period exactly once, so a duplicate
// indicates a replay or a misconfigured deployment.
func (s *Server) Ingest(rec *record.Record) error {
	if rec == nil {
		return record.ErrNilBitmap
	}
	if err := rec.Validate(); err != nil {
		return err
	}
	sh := s.shardFor(rec.Location)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	byPeriod, ok := sh.byLoc[rec.Location]
	if !ok {
		byPeriod = make(map[record.PeriodID]*record.Record)
		sh.byLoc[rec.Location] = byPeriod
	}
	if _, dup := byPeriod[rec.Period]; dup {
		return fmt.Errorf("%w: loc=%d period=%d", ErrDuplicate, rec.Location, rec.Period)
	}
	hadRecords := len(byPeriod) > 0
	byPeriod[rec.Period] = rec
	// Every accepted upload bumps the location's epoch, fencing off any
	// cached estimates built from the previous record set (WAL replay and
	// snapshot restore arrive through this same path). The bump happens
	// under the shard lock, so a query that assembled its set before this
	// record landed also read the pre-bump epoch — its cache entry stays
	// keyed to the old state, never mistaken for the new one.
	sh.epoch[rec.Location]++
	if hadRecords {
		s.cache.NoteInvalidation()
	}
	return nil
}

// Locations returns all locations with stored records, sorted.
func (s *Server) Locations() []vhash.LocationID {
	var out []vhash.LocationID
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for loc := range sh.byLoc {
			out = append(out, loc)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Periods returns the sorted periods stored for a location.
func (s *Server) Periods(loc vhash.LocationID) []record.PeriodID {
	sh := s.shardFor(loc)
	sh.mu.RLock()
	byPeriod := sh.byLoc[loc]
	out := make([]record.PeriodID, 0, len(byPeriod))
	for p := range byPeriod {
		out = append(out, p)
	}
	sh.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// get assembles the record set Π for (loc, periods) together with the
// location's ingest epoch, read under the same lock hold as the records
// — the (set, epoch) pair is mutually consistent by construction, which
// is what makes the epoch a sound cache fence.
func (s *Server) get(loc vhash.LocationID, periods []record.PeriodID) (*record.Set, uint64, error) {
	if len(periods) == 0 {
		return nil, 0, ErrNoPeriods
	}
	sh := s.shardFor(loc)
	sh.mu.RLock()
	byPeriod := sh.byLoc[loc]
	epoch := sh.epoch[loc]
	recs := make([]*record.Record, 0, len(periods))
	for _, p := range periods {
		rec, ok := byPeriod[p]
		if !ok {
			sh.mu.RUnlock()
			return nil, 0, fmt.Errorf("%w: loc=%d period=%d", ErrNotFound, loc, p)
		}
		recs = append(recs, rec)
	}
	sh.mu.RUnlock()
	set, err := record.NewSet(recs)
	if err != nil {
		return nil, 0, err
	}
	return set, epoch, nil
}

// lookup fetches one record under its shard's read lock. Records are
// immutable once stored, so the returned pointer is safe to use after the
// lock is released.
func (s *Server) lookup(loc vhash.LocationID, p record.PeriodID) (*record.Record, bool) {
	sh := s.shardFor(loc)
	sh.mu.RLock()
	rec, ok := sh.byLoc[loc][p]
	sh.mu.RUnlock()
	return rec, ok
}

// Volume estimates the plain traffic volume at loc in one period (Eq. 1).
func (s *Server) Volume(loc vhash.LocationID, p record.PeriodID) (float64, error) {
	rec, ok := s.lookup(loc, p)
	if !ok {
		return 0, fmt.Errorf("%w: loc=%d period=%d", ErrNotFound, loc, p)
	}
	return core.EstimateVolume(rec)
}

// PointPersistent estimates the point persistent traffic at loc over the
// given periods (Eq. 12). Results are served from the estimate cache
// when the location has not ingested since they were computed; a hit is
// bit-identical to the cold computation.
func (s *Server) PointPersistent(loc vhash.LocationID, periods []record.PeriodID) (*core.PointResult, error) {
	set, epoch, err := s.get(loc, periods)
	if err != nil {
		return nil, err
	}
	return s.cache.Point(epoch, set, core.SplitHalves)
}

// WindowResult is one sliding-window persistent estimate.
type WindowResult struct {
	// Periods are the window's measurement periods, in order.
	Periods []record.PeriodID
	// Estimate is the persistent volume over exactly those periods.
	Estimate float64
}

// PointPersistentSliding estimates the point persistent traffic over
// every window of `window` consecutive stored periods at loc — e.g. the
// week-over-week stability series the paper's introduction motivates
// ("over the workdays of a week, over the Saturdays of several weeks").
// window must be >= 2; there must be at least `window` stored periods.
func (s *Server) PointPersistentSliding(loc vhash.LocationID, window int) ([]WindowResult, error) {
	if window < 2 {
		return nil, fmt.Errorf("central: window must be >= 2, got %d", window)
	}
	periods := s.Periods(loc)
	if len(periods) < window {
		return nil, fmt.Errorf("%w: %d periods stored at loc %d, window %d", ErrNotFound, len(periods), loc, window)
	}
	out := make([]WindowResult, 0, len(periods)-window+1)
	for i := 0; i+window <= len(periods); i++ {
		ps := periods[i : i+window]
		res, err := s.PointPersistent(loc, ps)
		if err != nil {
			return nil, fmt.Errorf("central: window %v: %w", ps, err)
		}
		win := WindowResult{Periods: append([]record.PeriodID{}, ps...), Estimate: res.Estimate}
		out = append(out, win)
	}
	return out, nil
}

// PointToPointPersistent estimates the point-to-point persistent traffic
// between locA and locB over the given periods (Eq. 21).
func (s *Server) PointToPointPersistent(locA, locB vhash.LocationID, periods []record.PeriodID) (*core.PointToPointResult, error) {
	setA, epochA, err := s.get(locA, periods)
	if err != nil {
		return nil, err
	}
	setB, epochB, err := s.get(locB, periods)
	if err != nil {
		return nil, err
	}
	return s.cache.PointToPoint(epochA, epochB, setA, setB, s.s)
}

// ODVolume estimates the single-period point-to-point volume between two
// locations: the number of vehicles that passed both during period p.
func (s *Server) ODVolume(locA, locB vhash.LocationID, p record.PeriodID) (float64, error) {
	recA, okA := s.lookup(locA, p)
	recB, okB := s.lookup(locB, p)
	if !okA {
		return 0, fmt.Errorf("%w: loc=%d period=%d", ErrNotFound, locA, p)
	}
	if !okB {
		return 0, fmt.Errorf("%w: loc=%d period=%d", ErrNotFound, locB, p)
	}
	res, err := core.EstimateODVolume(recA, recB, s.s)
	if err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

// Snapshot serialization: a versioned stream of length-prefixed marshaled
// records, so deployments can persist and restore the store.
const (
	snapMagic   = 0x534d5450 // "PTMS"
	snapVersion = 1
)

// SaveTo writes a snapshot of all stored records. The records are sorted
// by (location, period), so the snapshot bytes do not depend on shard
// count or map iteration order.
func (s *Server) SaveTo(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], snapMagic)
	hdr[4] = snapVersion

	var recs []*record.Record
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, byPeriod := range sh.byLoc {
			for _, rec := range byPeriod {
				recs = append(recs, rec)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Location != recs[j].Location {
			return recs[i].Location < recs[j].Location
		}
		return recs[i].Period < recs[j].Period
	})

	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(recs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("central: writing snapshot header: %w", err)
	}
	for _, rec := range recs {
		blob, err := rec.MarshalBinary()
		if err != nil {
			return err
		}
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(blob)))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			return fmt.Errorf("central: writing record length: %w", err)
		}
		if _, err := bw.Write(blob); err != nil {
			return fmt.Errorf("central: writing record: %w", err)
		}
	}
	return bw.Flush()
}

// LoadFrom ingests every record from a snapshot produced by SaveTo.
func (s *Server) LoadFrom(r io.Reader) error {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("central: reading snapshot header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != snapMagic {
		return errors.New("central: bad snapshot magic")
	}
	if hdr[4] != snapVersion {
		return fmt.Errorf("central: unsupported snapshot version %d", hdr[4])
	}
	count := binary.LittleEndian.Uint32(hdr[8:12])
	var blob bytes.Buffer
	for i := uint32(0); i < count; i++ {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return fmt.Errorf("central: reading record %d length: %w", i, err)
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > 1<<28 {
			return fmt.Errorf("central: record %d implausibly large (%d bytes)", i, n)
		}
		// Copy incrementally rather than allocating n bytes up front: the
		// length prefix is attacker-controlled (a corrupt or hostile
		// snapshot), and a lying prefix must fail at the truncation
		// point, not after a 256 MiB allocation.
		blob.Reset()
		if _, err := io.CopyN(&blob, br, int64(n)); err != nil {
			return fmt.Errorf("central: reading record %d: %w", i, err)
		}
		rec, err := record.Unmarshal(blob.Bytes())
		if err != nil {
			return fmt.Errorf("central: decoding record %d: %w", i, err)
		}
		if err := s.Ingest(rec); err != nil {
			return fmt.Errorf("central: restoring record %d: %w", i, err)
		}
	}
	return nil
}
