package central

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ptm/internal/record"
	"ptm/internal/store"
	"ptm/internal/vhash"
	"ptm/internal/wal"
)

// seededRecord builds a deterministic ~25%-dense record.
func seededRecord(t testing.TB, rng *rand.Rand, loc vhash.LocationID, p record.PeriodID, m int) *record.Record {
	t.Helper()
	rec, err := record.New(loc, p, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m/4; i++ {
		rec.Bitmap.Set(rng.Uint64())
	}
	return rec
}

// newTieredServer mounts a Server over a tiered store rooted in a temp
// dir. budget <= 0 disables automatic freezing.
func newTieredServer(t *testing.T, budget int64) (*Server, *store.Tiered) {
	t.Helper()
	ts, err := store.OpenTiered(t.TempDir(), store.TieredOptions{ResidentBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServerWithStore(3, ts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		//ptmlint:allow errdrop -- test teardown; the assertions already ran
		_ = srv.CloseStore()
	})
	return srv, ts
}

// TestServerTieredDifferential: the same ingest stream through a
// resident server and a tiered server (with a budget small enough to
// force freezes mid-stream) must yield byte-identical snapshots and
// bit-identical estimates — the query plane cannot tell the tiers apart.
func TestServerTieredDifferential(t *testing.T) {
	mem := newServer(t)
	tiered, ts := newTieredServer(t, 4<<10) // 4 KiB: freezes every few records

	const m = 4096
	var locs []vhash.LocationID
	var periods []record.PeriodID
	for loc := 1; loc <= 3; loc++ {
		locs = append(locs, vhash.LocationID(loc))
	}
	for p := 1; p <= 8; p++ {
		periods = append(periods, record.PeriodID(p))
	}
	for _, loc := range locs {
		rng := rand.New(rand.NewSource(int64(loc)))
		for _, p := range periods {
			a := seededRecord(t, rng, loc, p, m)
			b := &record.Record{Location: a.Location, Period: a.Period, Bitmap: a.Bitmap.Clone()}
			if err := mem.Ingest(a); err != nil {
				t.Fatal(err)
			}
			if err := tiered.Ingest(b); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := ts.Stats(); st.Segments == 0 || st.ColdRecords == 0 {
		t.Fatalf("budget never froze anything: %+v", st)
	}

	var memSnap, tieredSnap bytes.Buffer
	if err := mem.SaveTo(&memSnap); err != nil {
		t.Fatal(err)
	}
	if err := tiered.SaveTo(&tieredSnap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(memSnap.Bytes(), tieredSnap.Bytes()) {
		t.Fatal("snapshot bytes differ between resident and tiered servers")
	}

	for _, loc := range locs {
		wantPoint, err := mem.PointPersistent(loc, periods)
		if err != nil {
			t.Fatal(err)
		}
		gotPoint, err := tiered.PointPersistent(loc, periods)
		if err != nil {
			t.Fatal(err)
		}
		if *wantPoint != *gotPoint {
			t.Fatalf("loc %d point estimate differs: %+v vs %+v", loc, wantPoint, gotPoint)
		}
		wantVol, err := mem.Volume(loc, periods[0])
		if err != nil {
			t.Fatal(err)
		}
		gotVol, err := tiered.Volume(loc, periods[0])
		if err != nil {
			t.Fatal(err)
		}
		if wantVol != gotVol {
			t.Fatalf("loc %d volume differs: %v vs %v", loc, wantVol, gotVol)
		}
	}
	wantP2P, err := mem.PointToPointPersistent(1, 2, periods)
	if err != nil {
		t.Fatal(err)
	}
	gotP2P, err := tiered.PointToPointPersistent(1, 2, periods)
	if err != nil {
		t.Fatal(err)
	}
	if *wantP2P != *gotP2P {
		t.Fatalf("p2p estimate differs: %+v vs %+v", wantP2P, gotP2P)
	}

	// Tier counters surface through the server's stats.
	st := tiered.Stats()
	if st.ColdRecords == 0 || st.Segments == 0 || st.HotRecords+st.ColdRecords != st.Records {
		t.Fatalf("tier stats inconsistent: %+v", st)
	}
}

// TestLoadFromSegment: LoadFrom sniffs the segment magic and restores a
// cold checkpoint segment like a snapshot; a second load of the same
// file is a no-op (restore is idempotent).
func TestLoadFromSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var recs []*record.Record
	for p := 1; p <= 4; p++ {
		recs = append(recs, seededRecord(t, rng, 9, record.PeriodID(p), 1024))
	}
	var seg bytes.Buffer
	if err := store.WriteSegment(&seg, recs); err != nil {
		t.Fatal(err)
	}

	s := newServer(t)
	if err := s.LoadFrom(bytes.NewReader(seg.Bytes())); err != nil {
		t.Fatalf("LoadFrom(segment): %v", err)
	}
	if st := s.Stats(); st.Records != len(recs) {
		t.Fatalf("restored %d records, want %d", st.Records, len(recs))
	}
	for _, rec := range recs {
		got, err := s.Volume(rec.Location, rec.Period)
		if err != nil {
			t.Fatal(err)
		}
		if got == 0 {
			t.Fatalf("restored record loc=%d p=%d estimates zero", rec.Location, rec.Period)
		}
	}
	// Idempotent: duplicates are skipped, not fatal.
	if err := s.LoadFrom(bytes.NewReader(seg.Bytes())); err != nil {
		t.Fatalf("second LoadFrom(segment): %v", err)
	}
	if st := s.Stats(); st.Records != len(recs) {
		t.Fatalf("idempotent reload changed the census: %+v", st)
	}

	// A corrupt segment still fails loudly.
	torn := append([]byte(nil), seg.Bytes()...)
	torn[len(torn)-1] ^= 0xff
	if err := newServer(t).LoadFrom(bytes.NewReader(torn)); err == nil {
		t.Fatal("corrupt segment accepted")
	}
}

// TestDurableOverTiered: a WAL-backed server over a tiered store
// recovers exactly, even when part of the data set is frozen cold —
// replay hits the cold duplicate check and skips, never double-ingests.
func TestDurableOverTiered(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	coldDir := filepath.Join(t.TempDir(), "cold")
	rng := rand.New(rand.NewSource(11))

	open := func() *Durable {
		ts, err := store.OpenTiered(coldDir, store.TieredOptions{ResidentBudget: 2 << 10})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServerWithStore(3, ts)
		if err != nil {
			t.Fatal(err)
		}
		d, err := OpenDurableServer(walDir, srv, wal.Options{Sync: wal.SyncAlways}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	d := open()
	var want []*record.Record
	for p := 1; p <= 12; p++ {
		rec := seededRecord(t, rng, 4, record.PeriodID(p), 4096)
		want = append(want, rec)
		if err := d.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	if st := d.Stats(); st.Segments == 0 {
		t.Fatalf("budget never froze: %+v", st)
	}
	wantEst, err := d.PointPersistent(4, []record.PeriodID{1, 5, 9, 12})
	if err != nil {
		t.Fatal(err)
	}
	var wantSnap bytes.Buffer
	if err := d.SaveTo(&wantSnap); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.CloseStore(); err != nil {
		t.Fatal(err)
	}

	// Reopen: cold segments are adopted from disk, the checkpoint's
	// duplicates of them are skipped, hot records replay.
	re := open()
	defer func() {
		//ptmlint:allow errdrop -- test teardown; the assertions already ran
		_ = re.Close()
		//ptmlint:allow errdrop -- test teardown; the assertions already ran
		_ = re.CloseStore()
	}()
	if st := re.Stats(); st.Records != len(want) {
		t.Fatalf("recovered %d records, want %d (%+v)", st.Records, len(want), st)
	}
	gotEst, err := re.PointPersistent(4, []record.PeriodID{1, 5, 9, 12})
	if err != nil {
		t.Fatal(err)
	}
	if *gotEst != *wantEst {
		t.Fatalf("recovered estimate differs: %+v vs %+v", gotEst, wantEst)
	}
	var gotSnap bytes.Buffer
	if err := re.SaveTo(&gotSnap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantSnap.Bytes(), gotSnap.Bytes()) {
		t.Fatal("recovered snapshot differs byte-for-byte")
	}
	// Re-ingesting an already-cold record is still a duplicate.
	if err := re.Ingest(want[0]); err == nil {
		t.Fatal("duplicate of a cold record accepted after recovery")
	}
}

// TestMmapServerReadOnly: a server mounted read-only over a segment
// directory answers queries but rejects mutations.
func TestMmapServerReadOnly(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(13))
	var recs []*record.Record
	for p := 1; p <= 4; p++ {
		recs = append(recs, seededRecord(t, rng, 2, record.PeriodID(p), 2048))
	}
	var seg bytes.Buffer
	if err := store.WriteSegment(&seg, recs); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "000000000000000001.seg"), seg.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	ms, err := store.OpenMmap(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServerWithStore(3, ms)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		//ptmlint:allow errdrop -- test teardown; the assertions already ran
		_ = srv.CloseStore()
	}()

	if got := srv.Periods(2); len(got) != 4 {
		t.Fatalf("periods = %v", got)
	}
	if _, err := srv.PointPersistent(2, []record.PeriodID{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Ingest(recs[0]); err == nil {
		t.Fatal("read-only server accepted an ingest")
	}
	if _, err := srv.DropBefore(10); err == nil {
		t.Fatal("read-only server accepted retention")
	}
}
