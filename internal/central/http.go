package central

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"ptm/internal/record"
	"ptm/internal/store"
	"ptm/internal/vhash"
)

// Handler returns a read-only HTTP admin surface for operators and
// monitoring (the binary protocol in internal/transport remains the data
// plane):
//
//	GET /healthz                     -> 200 "ok"
//	GET /stats                       -> store counters (JSON)
//	GET /locations                   -> locations with their periods (JSON)
//	GET /query/volume?loc=1&period=2 -> one period's volume estimate
//	GET /query/point?loc=1&periods=1,2,3
//	GET /query/p2p?loc=1&loc2=2&periods=1,2,3
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		//ptmlint:allow errdrop -- the response is committed; a failed write means the client hung up
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		cs := s.EstCacheStats()
		resp := map[string]any{
			"locations":    st.Locations,
			"records":      st.Records,
			"payload_bits": st.Bits,
			"hot_records":  st.HotRecords,
			"cold_records": st.ColdRecords,
			"segments":     st.Segments,
			"s":            s.S(),
			"estcache": map[string]any{
				"hits":          cs.Hits,
				"misses":        cs.Misses,
				"invalidations": cs.Invalidations,
				"entries":       cs.Entries,
				"capacity":      cs.Capacity,
			},
		}
		if bc, ok := s.st.(store.CacheStatser); ok {
			b := bc.CacheStats()
			resp["blockcache"] = map[string]any{
				"hits":           b.Hits,
				"misses":         b.Misses,
				"evictions":      b.Evictions,
				"pinned_bytes":   b.PinnedBytes,
				"cached_bytes":   b.CachedBytes,
				"capacity_bytes": b.CapacityBytes,
				"spans":          b.Spans,
			}
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /locations", func(w http.ResponseWriter, r *http.Request) {
		type locInfo struct {
			Location uint64            `json:"location"`
			Periods  []record.PeriodID `json:"periods"`
		}
		var out []locInfo
		for _, loc := range s.Locations() {
			out = append(out, locInfo{Location: uint64(loc), Periods: s.Periods(loc)})
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("GET /query/volume", func(w http.ResponseWriter, r *http.Request) {
		loc, err := queryLoc(r, "loc")
		if err != nil {
			httpError(w, err)
			return
		}
		period, err := strconv.ParseUint(r.URL.Query().Get("period"), 10, 32)
		if err != nil {
			httpError(w, badRequestf("bad period: %v", err))
			return
		}
		v, err := s.Volume(loc, record.PeriodID(period))
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, map[string]float64{"estimate": v})
	})
	mux.HandleFunc("GET /query/point", func(w http.ResponseWriter, r *http.Request) {
		loc, err := queryLoc(r, "loc")
		if err != nil {
			httpError(w, err)
			return
		}
		periods, err := queryPeriods(r)
		if err != nil {
			httpError(w, err)
			return
		}
		res, err := s.PointPersistent(loc, periods)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, map[string]any{"estimate": res.Estimate, "m": res.M, "t": res.T})
	})
	mux.HandleFunc("GET /query/od", func(w http.ResponseWriter, r *http.Request) {
		loc, err := queryLoc(r, "loc")
		if err != nil {
			httpError(w, err)
			return
		}
		loc2, err := queryLoc(r, "loc2")
		if err != nil {
			httpError(w, err)
			return
		}
		period, err := strconv.ParseUint(r.URL.Query().Get("period"), 10, 32)
		if err != nil {
			httpError(w, badRequestf("bad period: %v", err))
			return
		}
		v, err := s.ODVolume(loc, loc2, record.PeriodID(period))
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, map[string]float64{"estimate": v})
	})
	mux.HandleFunc("GET /query/p2p", func(w http.ResponseWriter, r *http.Request) {
		loc, err := queryLoc(r, "loc")
		if err != nil {
			httpError(w, err)
			return
		}
		loc2, err := queryLoc(r, "loc2")
		if err != nil {
			httpError(w, err)
			return
		}
		periods, err := queryPeriods(r)
		if err != nil {
			httpError(w, err)
			return
		}
		res, err := s.PointToPointPersistent(loc, loc2, periods)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, map[string]any{
			"estimate": res.Estimate, "m": res.M, "m_prime": res.MPrime, "t": res.T,
		})
	})
	return mux
}

type badRequestError struct{ msg string }

// Error implements error.
func (e *badRequestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

func queryLoc(r *http.Request, key string) (vhash.LocationID, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, &badRequestError{msg: "missing " + key}
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, &badRequestError{msg: "bad " + key}
	}
	return vhash.LocationID(n), nil
}

func queryPeriods(r *http.Request) ([]record.PeriodID, error) {
	raw := r.URL.Query().Get("periods")
	if raw == "" {
		return nil, &badRequestError{msg: "missing periods"}
	}
	parts := strings.Split(raw, ",")
	out := make([]record.PeriodID, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.ParseUint(strings.TrimSpace(p), 10, 32)
		if err != nil {
			return nil, &badRequestError{msg: "bad periods"}
		}
		out = append(out, record.PeriodID(n))
	}
	return out, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	//ptmlint:allow errdrop -- headers are sent; mid-body failures cannot be reported to the client
	_ = json.NewEncoder(w).Encode(v)
}

// httpError maps store errors to status codes.
func httpError(w http.ResponseWriter, err error) {
	var br *badRequestError
	switch {
	case errors.As(err, &br):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrNoPeriods):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
	}
}
