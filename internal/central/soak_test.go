package central

import (
	"testing"

	"ptm/internal/record"
	"ptm/internal/vhash"
)

// TestSoakCityScale exercises the store at deployment scale: 1000
// locations x 30 periods of ingest, enumeration, queries, retention, and
// bookkeeping consistency.
func TestSoakCityScale(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		locations = 1000
		periods   = 30
	)
	s := newServer(t)
	for loc := 1; loc <= locations; loc++ {
		for p := 1; p <= periods; p++ {
			rec := mustRecord(t, vhash.LocationID(loc), record.PeriodID(p), 64)
			rec.Bitmap.Set(uint64(loc*p) * 0x9e3779b97f4a7c15)
			if err := s.Ingest(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Stats()
	if st.Locations != locations || st.Records != locations*periods {
		t.Fatalf("stats = %+v", st)
	}
	if got := len(s.Locations()); got != locations {
		t.Fatalf("locations = %d", got)
	}
	// Queries work across the whole store.
	for _, loc := range []vhash.LocationID{1, 500, 1000} {
		if _, err := s.Volume(loc, 15); err != nil {
			t.Errorf("volume at %d: %v", loc, err)
		}
		if _, err := s.PointPersistent(loc, []record.PeriodID{1, 10, 20, 30}); err != nil {
			t.Errorf("point at %d: %v", loc, err)
		}
	}
	// Retention: keep only the newest 7 periods everywhere.
	total := 0
	for loc := 1; loc <= locations; loc++ {
		dropped, err := s.RetainLatest(vhash.LocationID(loc), 7)
		if err != nil {
			t.Fatal(err)
		}
		total += dropped
	}
	if want := locations * (periods - 7); total != want {
		t.Errorf("retention dropped %d, want %d", total, want)
	}
	st = s.Stats()
	if st.Records != locations*7 {
		t.Errorf("records after retention = %d", st.Records)
	}
	// Global cutoff wipes everything.
	if dropped, err := s.DropBefore(periods + 1); err != nil || dropped != locations*7 {
		t.Errorf("final drop = %d", dropped)
	}
	if st := s.Stats(); st.Locations != 0 || st.Records != 0 {
		t.Errorf("store not empty: %+v", st)
	}
}

// BenchmarkIngest measures store insertion of Table I-scale records.
func BenchmarkIngest(b *testing.B) {
	s, err := NewServer(3)
	if err != nil {
		b.Fatal(err)
	}
	rec, err := record.New(1, 1, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &record.Record{Location: vhash.LocationID(i), Period: 1, Bitmap: rec.Bitmap}
		if err := s.Ingest(r); err != nil {
			b.Fatal(err)
		}
	}
}
