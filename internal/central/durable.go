package central

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"ptm/internal/record"
	"ptm/internal/wal"
)

// Durable wraps a Server with a write-ahead log so that every ingested
// record is on disk before the upload is acknowledged: under
// wal.SyncAlways, the transport Ack becomes a durability promise, not
// just a parse receipt. Queries and retention pass through to the
// embedded Server unchanged — the replayed store is the same in-memory
// structure, so estimator outputs over recovered records are
// bit-identical to a never-crashed run (proven by the differential
// tests in durable_test.go).
//
// # Ingest ordering
//
// Ingest appends the record to the WAL first and only then inserts it
// into memory. The alternative order (memory first) would leave a
// record queryable but not durable if the append failed, and a retry of
// that upload would be rejected as a duplicate even though nothing is
// on disk — a silent hole in the durability contract. With WAL-first, a
// failed append leaves no trace and the RSU's retry starts clean.
// Losing the duplicate-insert race after a successful append leaves one
// redundant log entry; recovery tolerates duplicates, so that costs
// bytes, never correctness.
type Durable struct {
	*Server
	log *wal.Log

	// checkpointEvery triggers automatic compaction after that many
	// successful ingests (0 disables automatic checkpoints).
	checkpointEvery int

	mu        sync.Mutex
	sinceCkpt int //ptm:guardedby mu (successful ingests since the last checkpoint)
}

// OpenDurable opens (or creates) the WAL directory, creates a resident
// store, and recovers its contents: the newest checkpoint is loaded and
// newer log segments are replayed. checkpointEvery > 0 compacts the log
// automatically after that many ingested records; pass 0 to checkpoint
// only explicitly (e.g. on shutdown).
func OpenDurable(dir string, s, shards int, opts wal.Options, checkpointEvery int) (*Durable, error) {
	srv, err := NewServerSharded(s, shards)
	if err != nil {
		return nil, err
	}
	return OpenDurableServer(dir, srv, opts, checkpointEvery)
}

// OpenDurableServer wraps an existing server (for example one mounted
// over a tiered store) with a WAL and recovers into it. Recovery is
// idempotent against the server's current contents: records a tiered
// store already holds cold in its segment directory are skipped when the
// checkpoint or log replays them. Note that WAL checkpoints snapshot the
// whole store, cold tier included — the segments are the cold tier's own
// durability, the checkpoint is the log's compaction point.
func OpenDurableServer(dir string, srv *Server, opts wal.Options, checkpointEvery int) (*Durable, error) {
	if checkpointEvery < 0 {
		return nil, fmt.Errorf("central: negative checkpointEvery %d", checkpointEvery)
	}
	log, err := wal.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	d := &Durable{Server: srv, log: log, checkpointEvery: checkpointEvery}
	if err := log.Recover(srv.LoadFrom, d.applyEntry); err != nil {
		//ptmlint:allow errdrop -- the recovery error is what the caller sees; close is best-effort cleanup
		_ = log.Close()
		return nil, fmt.Errorf("central: recovering store: %w", err)
	}
	return d, nil
}

// applyEntry replays one WAL entry into the in-memory store. A record
// already present (the checkpoint included it, or an RSU double-logged
// a retried upload) is skipped: replay is idempotent.
func (d *Durable) applyEntry(payload []byte) error {
	rec, err := record.Unmarshal(payload)
	if err != nil {
		return fmt.Errorf("central: decoding WAL entry: %w", err)
	}
	if err := d.Server.Ingest(rec); err != nil && !errors.Is(err, ErrDuplicate) {
		return err
	}
	return nil
}

// Ingest logs the record, then stores it. It returns only after the
// WAL append completed under the log's sync policy, so a nil return
// means the record survives a crash (SyncAlways) or will within the
// flush interval (SyncInterval).
func (d *Durable) Ingest(rec *record.Record) error {
	if rec == nil {
		return record.ErrNilBitmap
	}
	if err := rec.Validate(); err != nil {
		return err
	}
	// Cheap duplicate pre-check: replayed uploads are common (an RSU
	// retries every un-acked record), and rejecting them before the
	// append keeps them out of the log entirely. Contains touches no
	// cold-tier data — the index alone answers. The racy window
	// between this check and the insert below only costs a redundant
	// log entry, which replay tolerates.
	if d.Server.st.Contains(rec.Location, rec.Period) {
		return fmt.Errorf("%w: loc=%d period=%d", ErrDuplicate, rec.Location, rec.Period)
	}
	blob, err := rec.MarshalBinary()
	if err != nil {
		return err
	}
	if err := d.log.Append(blob); err != nil {
		return fmt.Errorf("central: logging record: %w", err)
	}
	if err := d.Server.Ingest(rec); err != nil {
		return err
	}
	if d.checkpointEvery > 0 {
		d.mu.Lock()
		d.sinceCkpt++
		due := d.sinceCkpt >= d.checkpointEvery
		if due {
			d.sinceCkpt = 0
		}
		d.mu.Unlock()
		if due {
			if err := d.Checkpoint(); err != nil {
				// The record itself is durable (it is in the log);
				// compaction failing is an operational problem, not an
				// ingest failure.
				return fmt.Errorf("central: auto checkpoint: %w", err)
			}
		}
	}
	return nil
}

// Checkpoint writes a SaveTo-format snapshot of the store and drops the
// log segments it covers. Safe to call concurrently with ingest.
func (d *Durable) Checkpoint() error {
	return d.log.Checkpoint(func(w io.Writer) error { return d.Server.SaveTo(w) })
}

// Sync flushes the log to stable storage regardless of policy — called
// on graceful shutdown so SyncInterval/SyncNever deployments lose
// nothing when the process exits cleanly.
func (d *Durable) Sync() error { return d.log.Sync() }

// LogStats exposes the underlying WAL counters.
func (d *Durable) LogStats() wal.Stats { return d.log.Stats() }

// Log exposes the underlying write-ahead log. The cluster replication
// shipper uses it to Seal a stable prefix and replay sealed segments to
// followers; callers must not Close it (Close the Durable instead).
func (d *Durable) Log() *wal.Log { return d.log }

// Close flushes and closes the log. The in-memory store remains
// queryable but further Ingest calls fail.
func (d *Durable) Close() error { return d.log.Close() }
