package central

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"ptm/internal/record"
	"ptm/internal/vhash"
)

func TestNewServerShardedValidation(t *testing.T) {
	for _, n := range []int{0, -1, 3, 12, 1 << 13} {
		if _, err := NewServerSharded(3, n); err == nil {
			t.Errorf("shard count %d accepted", n)
		}
	}
	for _, n := range []int{1, 2, 16, 1 << 12} {
		srv, err := NewServerSharded(3, n)
		if err != nil {
			t.Errorf("shard count %d rejected: %v", n, err)
			continue
		}
		if srv.Shards() != n {
			t.Errorf("Shards() = %d, want %d", srv.Shards(), n)
		}
	}
	if srv, err := NewServer(3); err != nil || srv.Shards() != DefaultShards {
		t.Errorf("NewServer: %v, shards %d", err, srv.Shards())
	}
}

// TestSnapshotShardCountIndependent: SaveTo sorts globally, so the
// snapshot bytes must not depend on how the store is sharded.
func TestSnapshotShardCountIndependent(t *testing.T) {
	var snaps [][]byte
	for _, n := range []int{1, 4, 64} {
		srv, err := NewServerSharded(3, n)
		if err != nil {
			t.Fatal(err)
		}
		for loc := 1; loc <= 50; loc++ {
			for p := 1; p <= 4; p++ {
				rec := mustRecord(t, vhash.LocationID(loc), record.PeriodID(p), 64)
				rec.Bitmap.Set(uint64(loc * p))
				if err := srv.Ingest(rec); err != nil {
					t.Fatal(err)
				}
			}
		}
		var buf bytes.Buffer
		if err := srv.SaveTo(&buf); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, buf.Bytes())
	}
	if !bytes.Equal(snaps[0], snaps[1]) || !bytes.Equal(snaps[0], snaps[2]) {
		t.Error("snapshot bytes vary with shard count")
	}
}

// TestConcurrentUploadQuerySoak hammers the sharded store with parallel
// ingest, queries, listings, stats, and retention. Run under -race this
// is the store's memory-model check; the final census must be exact.
func TestConcurrentUploadQuerySoak(t *testing.T) {
	const (
		writers = 8
		perLoc  = 40
	)
	srv, err := NewServerSharded(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var ingested atomic.Int64

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for p := 1; p <= perLoc; p++ {
				for loc := w * 10; loc < w*10+10; loc++ {
					rec := mustRecord(t, vhash.LocationID(loc+1), record.PeriodID(p), 64)
					rec.Bitmap.Set(uint64(loc+p) * 0x9e3779b97f4a7c15)
					if err := srv.Ingest(rec); err != nil {
						t.Error(err)
						return
					}
					ingested.Add(1)
				}
			}
		}(w)
	}
	// Readers churn every cross-shard and per-shard read path while
	// writers run.
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = srv.Stats()
				for _, loc := range srv.Locations() {
					ps := srv.Periods(loc)
					if len(ps) == 0 {
						continue
					}
					//ptmlint:allow errdrop -- racing a concurrent writer, absence is expected
					_, _ = srv.Volume(loc, ps[0])
					if len(ps) >= 2 {
						//ptmlint:allow errdrop -- a period may be dropped mid-query by retention
						_, _ = srv.PointPersistent(loc, ps[:2])
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	want := int64(writers * 10 * perLoc)
	if got := ingested.Load(); got != want {
		t.Fatalf("ingested %d, want %d", got, want)
	}
	st := srv.Stats()
	if st.Locations != writers*10 || int64(st.Records) != want {
		t.Errorf("stats = %+v, want %d locations, %d records", st, writers*10, want)
	}
	// Retention still agrees with the census.
	if dropped, err := srv.DropBefore(perLoc + 1); err != nil || int64(dropped) != want {
		t.Errorf("dropped %d (%v), want %d", dropped, err, want)
	}
	if st := srv.Stats(); st.Records != 0 || st.Locations != 0 {
		t.Errorf("store not empty after drop: %+v", st)
	}
}

// benchParallelIngest drives concurrent ingest of Table I-scale records
// against a store; every goroutine writes distinct locations, the
// paper's deployment shape (one RSU per location).
func benchParallelIngest(b *testing.B, srv *Server) {
	b.Helper()
	tmpl, err := record.New(1, 1, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		loc := vhash.LocationID(next.Add(1) << 32)
		p := record.PeriodID(0)
		for pb.Next() {
			p++
			if p > 1<<20 {
				loc++
				p = 1
			}
			r := &record.Record{Location: loc, Period: p, Bitmap: tmpl.Bitmap}
			if err := srv.Ingest(r); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkStoreGlobal is the pre-sharding baseline: one shard, i.e. a
// single global RWMutex over the whole store.
func BenchmarkStoreGlobal(b *testing.B) {
	srv, err := NewServerSharded(3, 1)
	if err != nil {
		b.Fatal(err)
	}
	benchParallelIngest(b, srv)
}

// BenchmarkStoreSharded is the same workload over 64 shards.
func BenchmarkStoreSharded(b *testing.B) {
	srv, err := NewServerSharded(3, 64)
	if err != nil {
		b.Fatal(err)
	}
	benchParallelIngest(b, srv)
}
