package central

import (
	"strings"
	"testing"

	"ptm/internal/record"
	"ptm/internal/vhash"
)

func fill(t *testing.T, s *Server) {
	t.Helper()
	for loc := 1; loc <= 3; loc++ {
		for p := 1; p <= 5; p++ {
			if err := s.Ingest(mustRecord(t, vhashLoc(loc), record.PeriodID(p), 64)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func vhashLoc(i int) vhash.LocationID { return vhash.LocationID(i) } // keep call sites terse

func TestDropBefore(t *testing.T) {
	s := newServer(t)
	fill(t, s)
	dropped, err := s.DropBefore(4)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 9 { // 3 locations x periods {1,2,3}
		t.Errorf("dropped = %d, want 9", dropped)
	}
	for loc := 1; loc <= 3; loc++ {
		ps := s.Periods(vhashLoc(loc))
		if len(ps) != 2 || ps[0] != 4 || ps[1] != 5 {
			t.Errorf("loc %d periods = %v", loc, ps)
		}
	}
	// Dropping everything removes locations entirely.
	if dropped, err := s.DropBefore(100); err != nil || dropped != 6 {
		t.Errorf("final drop = %d (%v), want 6", dropped, err)
	}
	if len(s.Locations()) != 0 {
		t.Errorf("locations remain: %v", s.Locations())
	}
}

func TestRetainLatest(t *testing.T) {
	s := newServer(t)
	fill(t, s)
	if dropped, err := s.RetainLatest(1, 2); err != nil || dropped != 3 {
		t.Errorf("dropped = %d (%v), want 3", dropped, err)
	}
	ps := s.Periods(1)
	if len(ps) != 2 || ps[0] != 4 || ps[1] != 5 {
		t.Errorf("periods = %v", ps)
	}
	// Other locations untouched.
	if len(s.Periods(2)) != 5 {
		t.Errorf("loc 2 disturbed: %v", s.Periods(2))
	}
	// Retaining more than present is a no-op.
	if dropped, err := s.RetainLatest(2, 99); err != nil || dropped != 0 {
		t.Errorf("no-op dropped %d (%v)", dropped, err)
	}
	// n <= 0 clears the location.
	if dropped, err := s.RetainLatest(3, 0); err != nil || dropped != 5 {
		t.Errorf("clear dropped %d (%v), want 5", dropped, err)
	}
	for _, loc := range s.Locations() {
		if loc == 3 {
			t.Error("location 3 should be gone")
		}
	}
	// Unknown location is a no-op.
	if dropped, err := s.RetainLatest(99, 1); err != nil || dropped != 0 {
		t.Errorf("unknown loc dropped %d (%v)", dropped, err)
	}
}

func TestStoreStats(t *testing.T) {
	s := newServer(t)
	st := s.Stats()
	if st.Locations != 0 || st.Records != 0 || st.Bits != 0 {
		t.Errorf("empty stats = %+v", st)
	}
	fill(t, s)
	st = s.Stats()
	if st.Locations != 3 || st.Records != 15 || st.Bits != 15*64 {
		t.Errorf("stats = %+v", st)
	}
	if !strings.Contains(st.String(), "records=15") {
		t.Errorf("String() = %q", st.String())
	}
}
