package central

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"ptm/internal/record"
	"ptm/internal/synth"
)

func newHTTPFixture(t *testing.T) *httptest.Server {
	t.Helper()
	s := newServer(t)
	g, err := synth.NewGenerator(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := g.Pair(synth.PairConfig{
		LocA: 1, LocB: 2,
		VolumesA: []int{4000, 4200, 4100},
		VolumesB: []int{8000, 8200, 8100},
		NCommon:  600,
	})
	if err != nil {
		t.Fatal(err)
	}
	ingest := func(set *record.Set) {
		for i, b := range set.Bitmaps() {
			rec := &record.Record{Location: set.Location(), Period: set.Periods()[i], Bitmap: b}
			if err := s.Ingest(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	ingest(pair.SetA)
	ingest(pair.SetB)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHTTPHealthAndStats(t *testing.T) {
	ts := newHTTPFixture(t)
	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("healthz = %d %q", code, body)
	}
	code, body = get(t, ts, "/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st["locations"].(float64) != 2 || st["records"].(float64) != 6 || st["s"].(float64) != 3 {
		t.Errorf("stats = %v", st)
	}
}

func TestHTTPLocations(t *testing.T) {
	ts := newHTTPFixture(t)
	code, body := get(t, ts, "/locations")
	if code != http.StatusOK {
		t.Fatalf("locations = %d", code)
	}
	var locs []struct {
		Location uint64   `json:"location"`
		Periods  []uint32 `json:"periods"`
	}
	if err := json.Unmarshal([]byte(body), &locs); err != nil {
		t.Fatal(err)
	}
	if len(locs) != 2 || locs[0].Location != 1 || len(locs[0].Periods) != 3 {
		t.Errorf("locations = %+v", locs)
	}
}

func TestHTTPQueries(t *testing.T) {
	ts := newHTTPFixture(t)

	code, body := get(t, ts, "/query/volume?loc=1&period=1")
	if code != http.StatusOK {
		t.Fatalf("volume = %d %s", code, body)
	}
	var vol map[string]float64
	if err := json.Unmarshal([]byte(body), &vol); err != nil {
		t.Fatal(err)
	}
	if vol["estimate"] < 3500 || vol["estimate"] > 4500 {
		t.Errorf("volume estimate = %v", vol["estimate"])
	}

	code, body = get(t, ts, "/query/point?loc=1&periods=1,2,3")
	if code != http.StatusOK {
		t.Fatalf("point = %d %s", code, body)
	}
	var pt map[string]float64
	if err := json.Unmarshal([]byte(body), &pt); err != nil {
		t.Fatal(err)
	}
	if pt["estimate"] < 450 || pt["estimate"] > 750 {
		t.Errorf("point estimate = %v", pt["estimate"])
	}

	code, body = get(t, ts, "/query/od?loc=1&loc2=2&period=1")
	if code != http.StatusOK {
		t.Fatalf("od = %d %s", code, body)
	}
	var od map[string]float64
	if err := json.Unmarshal([]byte(body), &od); err != nil {
		t.Fatal(err)
	}
	// Single-period OD volume includes the 600 persistent commuters.
	if od["estimate"] < 450 || od["estimate"] > 900 {
		t.Errorf("od estimate = %v", od["estimate"])
	}

	code, body = get(t, ts, "/query/p2p?loc=1&loc2=2&periods=1,2,3")
	if code != http.StatusOK {
		t.Fatalf("p2p = %d %s", code, body)
	}
	var p2p map[string]float64
	if err := json.Unmarshal([]byte(body), &p2p); err != nil {
		t.Fatal(err)
	}
	if p2p["estimate"] < 450 || p2p["estimate"] > 750 {
		t.Errorf("p2p estimate = %v", p2p["estimate"])
	}
}

func TestHTTPErrors(t *testing.T) {
	ts := newHTTPFixture(t)
	cases := []struct {
		path string
		want int
	}{
		{"/query/volume?loc=1&period=99", http.StatusNotFound},
		{"/query/volume?loc=99&period=1", http.StatusNotFound},
		{"/query/volume?loc=1&period=bogus", http.StatusBadRequest},
		{"/query/volume?period=1", http.StatusBadRequest},
		{"/query/point?loc=1", http.StatusBadRequest},
		{"/query/point?loc=1&periods=a,b", http.StatusBadRequest},
		{"/query/point?loc=1&periods=1,99", http.StatusNotFound},
		{"/query/p2p?loc=1&periods=1", http.StatusBadRequest},
		{"/nope", http.StatusNotFound},
	}
	for _, tc := range cases {
		code, _ := get(t, ts, tc.path)
		if code != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, code, tc.want)
		}
	}
}
