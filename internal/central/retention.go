package central

import (
	"fmt"

	"ptm/internal/record"
	"ptm/internal/vhash"
)

// Retention and observability for the record store. Records are small
// (f × volume bits), but a city-scale deployment accumulates
// locations × periods of them indefinitely; the authority prunes what its
// analysis horizon no longer needs. On a tiered store, retention also
// releases disk: a cold segment whose records are all dropped is
// unlinked and its cache spans invalidated.

// DropBefore removes all records older than the cutoff period (exclusive)
// at every location and reports how many were dropped. The error is
// non-nil only for cold-tier stores whose segment files could not be
// deleted — the index entries are gone either way.
func (s *Server) DropBefore(cutoff record.PeriodID) (int, error) {
	return s.st.DropBefore(cutoff)
}

// RetainLatest keeps only the newest n periods at the given location and
// reports how many records were dropped. n <= 0 drops everything at the
// location.
func (s *Server) RetainLatest(loc vhash.LocationID, n int) (int, error) {
	return s.st.RetainLatest(loc, n)
}

// StoreStats summarizes the store's contents.
type StoreStats struct {
	Locations int
	Records   int
	// Bits is the total bitmap payload held, in bits, across tiers.
	Bits int64
	// HotRecords counts records resident in RAM; ColdRecords counts
	// records served from on-disk segments (zero for resident stores).
	HotRecords  int
	ColdRecords int
	// Segments is the number of live cold segment files.
	Segments int
}

// Stats returns a snapshot of store-level counters. Concurrent uploads
// may land between internal lock holds, so the totals are
// per-shard consistent.
func (s *Server) Stats() StoreStats {
	st := s.st.Stats()
	return StoreStats{
		Locations:   st.Locations,
		Records:     st.Records,
		Bits:        st.Bits,
		HotRecords:  st.HotRecords,
		ColdRecords: st.ColdRecords,
		Segments:    st.Segments,
	}
}

// String renders the stats compactly.
func (st StoreStats) String() string {
	s := fmt.Sprintf("central{locations=%d records=%d payload=%.1fMiB",
		st.Locations, st.Records, float64(st.Bits)/8/(1<<20))
	if st.Segments > 0 {
		s += fmt.Sprintf(" cold=%d segments=%d", st.ColdRecords, st.Segments)
	}
	return s + "}"
}
