package central

import (
	"fmt"

	"ptm/internal/record"
	"ptm/internal/vhash"
)

// Retention and observability for the record store. Records are small
// (f × volume bits), but a city-scale deployment accumulates
// locations × periods of them indefinitely; the authority prunes what its
// analysis horizon no longer needs.

// DropBefore removes all records older than the cutoff period (exclusive)
// at every location and reports how many were dropped. Shards are pruned
// one at a time, so uploads racing the prune land before or after their
// location's shard is visited, never mid-scan.
func (s *Server) DropBefore(cutoff record.PeriodID) int {
	dropped := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for loc, byPeriod := range sh.byLoc {
			for p := range byPeriod {
				if p < cutoff {
					delete(byPeriod, p)
					dropped++
				}
			}
			if len(byPeriod) == 0 {
				delete(sh.byLoc, loc)
			}
		}
		sh.mu.Unlock()
	}
	return dropped
}

// RetainLatest keeps only the newest n periods at the given location and
// reports how many records were dropped. n <= 0 drops everything at the
// location.
func (s *Server) RetainLatest(loc vhash.LocationID, n int) int {
	periods := s.Periods(loc)
	if len(periods) <= n {
		return 0
	}
	var cut record.PeriodID
	if n > 0 {
		cut = periods[len(periods)-n]
	} else {
		cut = periods[len(periods)-1] + 1
	}
	sh := s.shardFor(loc)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	byPeriod := sh.byLoc[loc]
	dropped := 0
	for p := range byPeriod {
		if p < cut {
			delete(byPeriod, p)
			dropped++
		}
	}
	if len(byPeriod) == 0 {
		delete(sh.byLoc, loc)
	}
	return dropped
}

// StoreStats summarizes the store's contents.
type StoreStats struct {
	Locations int
	Records   int
	// Bits is the total bitmap payload held, in bits.
	Bits int64
}

// Stats returns a snapshot of store-level counters. Each shard is
// counted under its own lock; concurrent uploads may land between shard
// visits, so the totals are per-shard consistent.
func (s *Server) Stats() StoreStats {
	var st StoreStats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		st.Locations += len(sh.byLoc)
		for _, byPeriod := range sh.byLoc {
			st.Records += len(byPeriod)
			for _, rec := range byPeriod {
				st.Bits += int64(rec.Size())
			}
		}
		sh.mu.RUnlock()
	}
	return st
}

// String renders the stats compactly.
func (st StoreStats) String() string {
	return fmt.Sprintf("central{locations=%d records=%d payload=%.1fMiB}",
		st.Locations, st.Records, float64(st.Bits)/8/(1<<20))
}
