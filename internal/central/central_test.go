package central

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"ptm/internal/record"
	"ptm/internal/synth"
	"ptm/internal/vhash"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer(3)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustRecord(t *testing.T, loc vhash.LocationID, p record.PeriodID, m int) *record.Record {
	t.Helper()
	r, err := record.New(loc, p, m)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewServerValidatesS(t *testing.T) {
	if _, err := NewServer(0); !errors.Is(err, vhash.ErrInvalidS) {
		t.Errorf("s=0 err = %v", err)
	}
	s := newServer(t)
	if s.S() != 3 {
		t.Errorf("S() = %d", s.S())
	}
}

func TestIngestAndEnumerate(t *testing.T) {
	s := newServer(t)
	for _, rec := range []*record.Record{
		mustRecord(t, 2, 1, 64),
		mustRecord(t, 1, 2, 64),
		mustRecord(t, 1, 1, 64),
	} {
		if err := s.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	locs := s.Locations()
	if len(locs) != 2 || locs[0] != 1 || locs[1] != 2 {
		t.Errorf("Locations = %v", locs)
	}
	ps := s.Periods(1)
	if len(ps) != 2 || ps[0] != 1 || ps[1] != 2 {
		t.Errorf("Periods(1) = %v", ps)
	}
	if got := s.Periods(99); len(got) != 0 {
		t.Errorf("Periods(unknown) = %v", got)
	}
}

func TestIngestRejectsDuplicatesAndNil(t *testing.T) {
	s := newServer(t)
	if err := s.Ingest(mustRecord(t, 1, 1, 64)); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(mustRecord(t, 1, 1, 128)); !errors.Is(err, ErrDuplicate) {
		t.Errorf("dup err = %v", err)
	}
	if err := s.Ingest(nil); !errors.Is(err, record.ErrNilBitmap) {
		t.Errorf("nil err = %v", err)
	}
	if err := s.Ingest(&record.Record{Location: 1, Period: 9}); !errors.Is(err, record.ErrNilBitmap) {
		t.Errorf("nil bitmap err = %v", err)
	}
}

func TestQueriesEndToEnd(t *testing.T) {
	s := newServer(t)
	g, err := synth.NewGenerator(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := g.Pair(synth.PairConfig{
		LocA: 7, LocB: 8,
		VolumesA: []int{4000, 4500, 4200, 4800, 4100},
		VolumesB: []int{9000, 9500, 9200, 9800, 9100},
		NCommon:  800,
	})
	if err != nil {
		t.Fatal(err)
	}
	ingestSet := func(set *record.Set) {
		for i, b := range set.Bitmaps() {
			rec := &record.Record{Location: set.Location(), Period: set.Periods()[i], Bitmap: b}
			if err := s.Ingest(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	ingestSet(pair.SetA)
	ingestSet(pair.SetB)

	periods := []record.PeriodID{1, 2, 3, 4, 5}

	vol, err := s.Volume(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(vol-4000) / 4000; re > 0.1 {
		t.Errorf("volume estimate %v vs 4000", vol)
	}

	pp, err := s.PointPersistent(7, periods)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(pp.Estimate-800) / 800; re > 0.15 {
		t.Errorf("point persistent %v vs 800", pp.Estimate)
	}

	p2p, err := s.PointToPointPersistent(7, 8, periods)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(p2p.Estimate-800) / 800; re > 0.15 {
		t.Errorf("p2p persistent %v vs 800", p2p.Estimate)
	}
}

func TestPointPersistentSliding(t *testing.T) {
	s := newServer(t)
	g, err := synth.NewGenerator(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A core fleet of 300 present in all six periods, plus 200 extra
	// "early" commuters present only in periods 1-3.
	core300, err := g.Identities(300)
	if err != nil {
		t.Fatal(err)
	}
	early200, err := g.Identities(200)
	if err != nil {
		t.Fatal(err)
	}
	const loc, m = 11, 1 << 13
	rng := struct{ next func() uint64 }{}
	seedCounter := uint64(0)
	rng.next = func() uint64 { seedCounter += 0x9e3779b97f4a7c15; return seedCounter * 0xbf58476d1ce4e5b9 }
	for p := record.PeriodID(1); p <= 6; p++ {
		rec := mustRecord(t, loc, p, m)
		for _, v := range core300 {
			rec.Bitmap.Set(v.Index(loc, m))
		}
		if p <= 3 {
			for _, v := range early200 {
				rec.Bitmap.Set(v.Index(loc, m))
			}
		}
		for i := 0; i < 3000; i++ { // transient noise
			rec.Bitmap.Set(rng.next())
		}
		if err := s.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	wins, err := s.PointPersistentSliding(loc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 4 {
		t.Fatalf("windows = %d, want 4", len(wins))
	}
	// Window [1,2,3] sees 500 persistent vehicles; later windows 300.
	if w := wins[0]; w.Estimate < 420 || w.Estimate > 580 {
		t.Errorf("window %v estimate = %v, want ~500", w.Periods, w.Estimate)
	}
	for _, w := range wins[1:] {
		if w.Estimate < 240 || w.Estimate > 370 {
			t.Errorf("window %v estimate = %v, want ~300", w.Periods, w.Estimate)
		}
	}

	if _, err := s.PointPersistentSliding(loc, 1); err == nil {
		t.Error("window=1 accepted")
	}
	if _, err := s.PointPersistentSliding(loc, 7); !errors.Is(err, ErrNotFound) {
		t.Errorf("oversized window err = %v", err)
	}
	if _, err := s.PointPersistentSliding(99, 2); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown loc err = %v", err)
	}
}

func TestQueryErrors(t *testing.T) {
	s := newServer(t)
	if err := s.Ingest(mustRecord(t, 1, 1, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Volume(1, 9); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing period err = %v", err)
	}
	if _, err := s.Volume(9, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing loc err = %v", err)
	}
	if _, err := s.PointPersistent(1, nil); !errors.Is(err, ErrNoPeriods) {
		t.Errorf("no periods err = %v", err)
	}
	if _, err := s.PointPersistent(1, []record.PeriodID{1, 2}); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing record err = %v", err)
	}
	if _, err := s.PointToPointPersistent(1, 2, []record.PeriodID{1}); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing p2p record err = %v", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := newServer(t)
	r1 := mustRecord(t, 3, 1, 128)
	r1.Bitmap.Set(5)
	r2 := mustRecord(t, 3, 2, 256)
	r2.Bitmap.Set(100)
	r3 := mustRecord(t, 4, 1, 64)
	for _, r := range []*record.Record{r1, r2, r3} {
		if err := s.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored := newServer(t)
	if err := restored.LoadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if len(restored.Locations()) != 2 {
		t.Errorf("restored locations = %v", restored.Locations())
	}
	if got := restored.Periods(3); len(got) != 2 {
		t.Errorf("restored periods = %v", got)
	}
	// Contents survived.
	vol1, err1 := s.Volume(3, 1)
	vol2, err2 := restored.Volume(3, 1)
	if err1 != nil || err2 != nil || vol1 != vol2 {
		t.Errorf("volume diverged after restore: %v/%v %v/%v", vol1, err1, vol2, err2)
	}
}

func TestLoadFromRejectsGarbage(t *testing.T) {
	s := newServer(t)
	if err := s.LoadFrom(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("short snapshot accepted")
	}
	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[0] ^= 0xff
	if err := s.LoadFrom(bytes.NewReader(data)); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestConcurrentIngestAndQuery(t *testing.T) {
	s := newServer(t)
	done := make(chan error, 2)
	go func() {
		for p := record.PeriodID(1); p <= 50; p++ {
			if err := s.Ingest(mustRecord(t, 1, p, 64)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < 50; i++ {
			s.Locations()
			s.Periods(1)
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
