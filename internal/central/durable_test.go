package central

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"ptm/internal/record"
	"ptm/internal/synth"
	"ptm/internal/vhash"
	"ptm/internal/wal"
)

// walSegments lists the .wal segment files in dir, sorted by name (and
// therefore by segment index: names are zero-padded).
func walSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".wal") {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// truncateBy chops n bytes off the end of path, simulating a crash that
// left a torn tail.
func truncateBy(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := fi.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// pairRecords builds a realistic two-location workload as a flat record
// list (deterministic: same seed, same bytes).
func pairRecords(t *testing.T) []*record.Record {
	t.Helper()
	g, err := synth.NewGenerator(11, 3)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := g.Pair(synth.PairConfig{
		LocA: 7, LocB: 8,
		VolumesA: []int{4000, 4500, 4200, 4800, 4100},
		VolumesB: []int{9000, 9500, 9200, 9800, 9100},
		NCommon:  800,
	})
	if err != nil {
		t.Fatal(err)
	}
	var recs []*record.Record
	for _, set := range []*record.Set{pair.SetA, pair.SetB} {
		for i, b := range set.Bitmaps() {
			recs = append(recs, &record.Record{
				Location: set.Location(), Period: set.Periods()[i], Bitmap: b,
			})
		}
	}
	return recs
}

// snapshotBytes serializes a store for bit-identity comparison.
func snapshotBytes(t *testing.T, s *Server) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// estimates evaluates every estimator the transport exposes, for exact
// comparison between stores.
func estimates(t *testing.T, s *Server) []float64 {
	t.Helper()
	periods := []record.PeriodID{1, 2, 3, 4, 5}
	vol, err := s.Volume(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := s.PointPersistent(7, periods)
	if err != nil {
		t.Fatal(err)
	}
	p2p, err := s.PointToPointPersistent(7, 8, periods)
	if err != nil {
		t.Fatal(err)
	}
	od, err := s.ODVolume(7, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	return []float64{vol, pp.Estimate, p2p.Estimate, od}
}

func openDurable(t *testing.T, dir string, every int) *Durable {
	t.Helper()
	d, err := OpenDurable(dir, 3, DefaultShards, wal.Options{Sync: wal.SyncAlways, SegmentSize: 1 << 16}, every)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDurableDifferential is the core bit-identity proof: ingesting
// through the WAL, crashing (abandoning the open handles), and
// recovering must yield a store whose snapshot bytes AND estimator
// outputs exactly equal the plain in-memory server fed the same
// records.
func TestDurableDifferential(t *testing.T) {
	recs := pairRecords(t)

	mem := newServer(t)
	for _, r := range recs {
		if err := mem.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	d := openDurable(t, dir, 0)
	for _, r := range recs {
		if err := d.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}

	// Live durable store matches memory bit for bit.
	wantSnap, wantEst := snapshotBytes(t, mem), estimates(t, mem)
	if got := snapshotBytes(t, d.Server); !bytes.Equal(got, wantSnap) {
		t.Fatal("durable snapshot differs from in-memory snapshot")
	}

	// "Crash": reopen the directory without closing; recovery replays
	// the log from scratch.
	recovered := openDurable(t, dir, 0)
	defer recovered.Close()
	if got := snapshotBytes(t, recovered.Server); !bytes.Equal(got, wantSnap) {
		t.Fatal("recovered snapshot differs from never-crashed snapshot")
	}
	gotEst := estimates(t, recovered.Server)
	for i := range wantEst {
		if gotEst[i] != wantEst[i] {
			t.Fatalf("estimator %d: recovered %v, want bit-identical %v", i, gotEst[i], wantEst[i])
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCheckpointRecovery: recovery through a checkpoint (plus
// newer segments) is equally bit-identical, and compaction actually
// dropped covered segments.
func TestDurableCheckpointRecovery(t *testing.T) {
	recs := pairRecords(t)
	mem := newServer(t)
	for _, r := range recs {
		if err := mem.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	d := openDurable(t, dir, 0)
	half := len(recs) / 2
	for _, r := range recs[:half] {
		if err := d.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[half:] {
		if err := d.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	preCrash := d.LogStats()
	if preCrash.Entries != 0 {
		// Entries counts what was on disk at Open; this run started
		// empty.
		t.Fatalf("unexpected pre-existing entries: %+v", preCrash)
	}

	recovered := openDurable(t, dir, 0)
	defer recovered.Close()
	if got, want := snapshotBytes(t, recovered.Server), snapshotBytes(t, mem); !bytes.Equal(got, want) {
		t.Fatal("checkpoint+replay recovery differs from in-memory store")
	}
	// The recovered log must hold fewer entries than were ingested:
	// the checkpoint swallowed the first half.
	if st := recovered.LogStats(); st.Entries >= int64(len(recs)) {
		t.Fatalf("log still holds %d entries after checkpoint of %d records", st.Entries, len(recs))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableAutoCheckpoint: checkpointEvery compacts without being
// asked and the store stays correct across recovery.
func TestDurableAutoCheckpoint(t *testing.T) {
	recs := pairRecords(t)
	dir := t.TempDir()
	d := openDurable(t, dir, 3) // compact every 3 ingests
	for _, r := range recs {
		if err := d.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	recovered := openDurable(t, dir, 3)
	defer recovered.Close()
	if got := len(recovered.Locations()); got != 2 {
		t.Fatalf("recovered %d locations, want 2", got)
	}
	st := recovered.Stats()
	if st.Records != len(recs) {
		t.Fatalf("recovered %d records, want %d", st.Records, len(recs))
	}
}

// TestDurableDuplicateHandling: duplicates are rejected before ever
// touching the log, and replayed duplicates (same record logged twice
// around a checkpoint) do not break recovery.
func TestDurableDuplicateHandling(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, 0)
	rec := mustRecord(t, 5, 1, 128)
	rec.Bitmap.Set(17)
	if err := d.Ingest(rec); err != nil {
		t.Fatal(err)
	}
	appends := d.LogStats().Appends
	if err := d.Ingest(mustRecord(t, 5, 1, 128)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate ingest err = %v", err)
	}
	if got := d.LogStats().Appends; got != appends {
		t.Fatalf("duplicate reached the log: %d appends, want %d", got, appends)
	}
	if err := d.Ingest(nil); !errors.Is(err, record.ErrNilBitmap) {
		t.Fatalf("nil ingest err = %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableConcurrentIngest exercises the WAL group commit under the
// race detector with many uploading goroutines, then proves recovery.
func TestDurableConcurrentIngest(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, 0)
	const workers, per = 8, 12
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec, err := record.New(vhash.LocationID(w+1), record.PeriodID(i+1), 256)
				if err != nil {
					errs <- err
					return
				}
				rec.Bitmap.Set(uint64(w*per + i))
				if err := d.Ingest(rec); err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := snapshotBytes(t, d.Server)

	recovered := openDurable(t, dir, 0)
	defer recovered.Close()
	if got := snapshotBytes(t, recovered.Server); !bytes.Equal(got, want) {
		t.Fatal("recovery after concurrent ingest differs")
	}
	if st := recovered.Stats(); st.Records != workers*per {
		t.Fatalf("recovered %d records, want %d", st.Records, workers*per)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableTornTailPrefix: cut the tail segment at an arbitrary point
// (a kill -9 mid-append) and require the recovered store to be a
// prefix-consistent subset: every record the cut spared is present and
// none are mangled.
func TestDurableTornTailPrefix(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, 0)
	var recs []*record.Record
	for i := 0; i < 10; i++ {
		rec := mustRecord(t, 3, record.PeriodID(i+1), 128)
		rec.Bitmap.Set(uint64(i))
		recs = append(recs, rec)
		if err := d.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon d (crash) and bite 100 bytes off the log tail.
	segs, err := walSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	tail := segs[len(segs)-1]
	if err := truncateBy(tail, 100); err != nil {
		t.Fatal(err)
	}
	recovered := openDurable(t, dir, 0)
	defer recovered.Close()
	got := recovered.Periods(3)
	if len(got) == 0 || len(got) >= 10 {
		t.Fatalf("torn tail recovered %d periods, want a strict non-empty prefix", len(got))
	}
	for i, p := range got {
		if p != record.PeriodID(i+1) {
			t.Fatalf("recovered periods %v are not a prefix", got)
		}
		if !recovered.Server.st.Contains(3, p) {
			t.Fatalf("period %d listed but not stored", p)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
