// Package mrbitmap implements a multiresolution bitmap in the style of
// Estan, Varghese and Fisk ("Bitmap Algorithms for Counting Active Flows",
// IEEE/ACM ToN 2006) — reference [21] of the paper.
//
// The paper's Eq. (2) sizes a plain bitmap from the location's historical
// average volume; a new RSU with no history (or a location whose volume
// swings by orders of magnitude) has no good m. A multiresolution bitmap
// solves this: vehicles are sampled into c components with geometrically
// decreasing probabilities, so some component always operates at a
// countable load no matter the true volume. The estimator combines every
// component at or above the finest unsaturated one.
//
// Note that a multiresolution record supports volume estimation only; the
// persistent-traffic joins of Sections III-IV need the plain bitmap's
// deterministic vehicle-to-bit mapping. This substrate is for the plain
// per-period measurements that feed AADT-style analyses when Eq. (2)
// cannot be applied.
package mrbitmap

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"ptm/internal/bitmap"
	"ptm/internal/lpc"
)

// Configuration limits.
const (
	MinComponents = 2
	MaxComponents = 32
)

// Errors.
var (
	ErrBadComponents = errors.New("mrbitmap: component count out of range")
	ErrSaturated     = errors.New("mrbitmap: all components saturated")
)

// DefaultSetMax is the saturation threshold fraction: a component whose
// ones-fraction exceeds this is considered too collision-heavy to anchor
// the estimate (Estan et al. use a comparable occupancy cutoff).
const DefaultSetMax = 0.9

// Sketch is a multiresolution bitmap with c components of b bits each.
// Component i receives a vehicle with probability 2^-(i+1), except the
// last, which absorbs the remaining tail probability 2^-(c-1).
type Sketch struct {
	comps []*bitmap.Bitmap
	b     int
}

// New creates a sketch with c components of b bits each. b must be a
// valid bitmap size (power of two >= 64).
func New(c, b int) (*Sketch, error) {
	if c < MinComponents || c > MaxComponents {
		return nil, fmt.Errorf("%w: %d not in [%d, %d]", ErrBadComponents, c, MinComponents, MaxComponents)
	}
	comps := make([]*bitmap.Bitmap, c)
	for i := range comps {
		bm, err := bitmap.New(b)
		if err != nil {
			return nil, err
		}
		comps[i] = bm
	}
	return &Sketch{comps: comps, b: b}, nil
}

// Components and Bits describe the sketch geometry.
func (s *Sketch) Components() int { return len(s.comps) }

// Bits returns the per-component bitmap size.
func (s *Sketch) Bits() int { return s.b }

// MemoryBits returns the total memory footprint in bits.
func (s *Sketch) MemoryBits() int { return len(s.comps) * s.b }

// component returns the component index a 64-bit hash selects: the number
// of trailing one bits, capped at the last component. P(i) = 2^-(i+1) for
// i < c-1 and 2^-(c-1) for the last.
func (s *Sketch) component(h uint64) int {
	i := bits.TrailingZeros64(^h) // trailing ones of h
	if i >= len(s.comps)-1 {
		return len(s.comps) - 1
	}
	return i
}

// probability returns the selection probability of component i.
func (s *Sketch) probability(i int) float64 {
	if i == len(s.comps)-1 {
		return math.Pow(2, -float64(len(s.comps)-1))
	}
	return math.Pow(2, -float64(i+1))
}

// Add records one vehicle from its full-width hash (e.g.
// vhash.Identity.Hash). The low bits choose the component; exactly the
// consumed bits are discarded, so the bit position within the component
// is independent of the selection.
//
//ptm:sink sketch write
func (s *Sketch) Add(h uint64) {
	i := s.component(h)
	consumed := i + 1 // i trailing ones plus the terminating zero
	if i == len(s.comps)-1 {
		consumed = len(s.comps) - 1
	}
	s.comps[i].Set(h >> consumed)
}

// Estimate returns the estimated number of distinct vehicles added.
//
// It finds the finest component whose occupancy is below setMax (0 means
// DefaultSetMax), then combines that component and all coarser ones:
// each contributes its linear-counting estimate, and the sum is scaled by
// the inverse of the combined selection probability.
func (s *Sketch) Estimate(setMax float64) (float64, error) {
	if setMax == 0 {
		setMax = DefaultSetMax
	}
	base := -1
	for i, c := range s.comps {
		if c.FractionOne() <= setMax {
			base = i
			break
		}
	}
	if base == -1 {
		return 0, ErrSaturated
	}
	var sum, pTail float64
	for i := base; i < len(s.comps); i++ {
		est, err := lpc.Estimate(s.b, s.comps[i].FractionZero())
		if err != nil {
			return 0, fmt.Errorf("mrbitmap: component %d: %w", i, err)
		}
		sum += est
		pTail += s.probability(i)
	}
	return sum / pTail, nil
}

// Reset clears every component.
func (s *Sketch) Reset() {
	for _, c := range s.comps {
		c.Reset()
	}
}
