package mrbitmap

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ptm/internal/vhash"
)

func TestNewValidation(t *testing.T) {
	for _, c := range []int{0, 1, 33} {
		if _, err := New(c, 512); !errors.Is(err, ErrBadComponents) {
			t.Errorf("c=%d err = %v", c, err)
		}
	}
	if _, err := New(8, 100); err == nil {
		t.Error("non-power-of-two component size accepted")
	}
	s, err := New(8, 512)
	if err != nil {
		t.Fatal(err)
	}
	if s.Components() != 8 || s.Bits() != 512 || s.MemoryBits() != 8*512 {
		t.Errorf("geometry: %d/%d/%d", s.Components(), s.Bits(), s.MemoryBits())
	}
}

func TestComponentProbabilities(t *testing.T) {
	s, err := New(6, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Empirical component selection over many uniform hashes.
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 6)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[s.component(rng.Uint64())]++
	}
	for i := 0; i < 6; i++ {
		want := s.probability(i)
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("component %d frequency %.4f, want %.4f", i, got, want)
		}
	}
	// Probabilities must sum to 1.
	var sum float64
	for i := 0; i < 6; i++ {
		sum += s.probability(i)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

// TestWideRangeAccuracy is the point of the structure: one fixed-memory
// sketch counts accurately across four orders of magnitude, where a plain
// bitmap of the same memory saturates.
func TestWideRangeAccuracy(t *testing.T) {
	for _, n := range []int{500, 5000, 50000, 500000} {
		s, err := New(16, 4096) // 8 KiB total
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < n; i++ {
			s.Add(rng.Uint64())
		}
		got, err := s.Estimate(0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if re := math.Abs(got-float64(n)) / float64(n); re > 0.1 {
			t.Errorf("n=%d estimate %.0f (rel err %.3f)", n, got, re)
		}
	}
}

// TestVehicleHashes: sketches fed from the real vehicle-encoding hash
// behave like sketches fed uniform randomness.
func TestVehicleHashes(t *testing.T) {
	s, err := New(12, 1024)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	for i := 0; i < n; i++ {
		v, err := vhash.NewSeededIdentity(vhash.VehicleID(i), 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		s.Add(v.Hash(9))
	}
	got, err := s.Estimate(0)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(got-n) / n; re > 0.1 {
		t.Errorf("estimate %.0f vs %d (rel err %.3f)", got, n, re)
	}
}

func TestDuplicatesNotDoubleCounted(t *testing.T) {
	s, err := New(8, 512)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	hashes := make([]uint64, 800)
	for i := range hashes {
		hashes[i] = rng.Uint64()
	}
	for rep := 0; rep < 5; rep++ { // each vehicle seen five times
		for _, h := range hashes {
			s.Add(h)
		}
	}
	got, err := s.Estimate(0)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(got-800) / 800; re > 0.12 {
		t.Errorf("estimate %.0f vs 800 distinct (rel err %.3f)", got, re)
	}
}

func TestEmptySketch(t *testing.T) {
	s, err := New(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Estimate(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("empty estimate = %v", got)
	}
}

func TestReset(t *testing.T) {
	s, err := New(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Add(uint64(i) * 0x9e3779b97f4a7c15)
	}
	s.Reset()
	got, err := s.Estimate(0)
	if err != nil || got != 0 {
		t.Errorf("after reset: %v, %v", got, err)
	}
}

func TestSaturation(t *testing.T) {
	s, err := New(2, 64) // tiny: easily saturated
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		s.Add(rng.Uint64())
	}
	if _, err := s.Estimate(0); !errors.Is(err, ErrSaturated) {
		t.Errorf("err = %v, want ErrSaturated", err)
	}
}

// BenchmarkMRBAdd measures per-vehicle insertion cost.
func BenchmarkMRBAdd(b *testing.B) {
	s, err := New(16, 4096)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i) * 0x9e3779b97f4a7c15)
	}
}
