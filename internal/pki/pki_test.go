package pki

import (
	"errors"
	"testing"
	"time"
)

var t0 = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

func newAuthority(t *testing.T) *Authority {
	t.Helper()
	a, err := NewAuthority(t0, 365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBeaconVerifyHappyPath(t *testing.T) {
	a := newAuthority(t)
	cred, err := a.IssueRSU(42, t0, 30*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := cred.SignBeacon(42, 1<<16, 7)
	if err != nil {
		t.Fatal(err)
	}
	v := a.TrustAnchor()
	cert, err := v.VerifyBeacon(cred.CertificateDER(), 42, 1<<16, 7, sig, t0.Add(time.Hour))
	if err != nil {
		t.Fatalf("VerifyBeacon: %v", err)
	}
	if cert.Subject.CommonName != "rsu-42" {
		t.Errorf("CommonName = %q", cert.Subject.CommonName)
	}
}

func TestRogueRSURejected(t *testing.T) {
	real := newAuthority(t)
	rogue := newAuthority(t) // a different, untrusted authority
	cred, err := rogue.IssueRSU(42, t0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := cred.SignBeacon(42, 1<<16, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = real.TrustAnchor().VerifyBeacon(cred.CertificateDER(), 42, 1<<16, 1, sig, t0)
	if !errors.Is(err, ErrUntrusted) {
		t.Errorf("err = %v, want ErrUntrusted", err)
	}
}

func TestExpiredCertificateRejected(t *testing.T) {
	a := newAuthority(t)
	cred, err := a.IssueRSU(1, t0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := cred.SignBeacon(1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.TrustAnchor().VerifyBeacon(cred.CertificateDER(), 1, 64, 1, sig, t0.Add(2*time.Hour))
	if !errors.Is(err, ErrExpired) {
		t.Errorf("err = %v, want ErrExpired", err)
	}
	// Also before NotBefore.
	_, err = a.TrustAnchor().VerifyBeacon(cred.CertificateDER(), 1, 64, 1, sig, t0.Add(-time.Hour))
	if !errors.Is(err, ErrExpired) {
		t.Errorf("early err = %v, want ErrExpired", err)
	}
}

func TestLocationMismatchRejected(t *testing.T) {
	a := newAuthority(t)
	cred, err := a.IssueRSU(5, t0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// A (hypothetically compromised) RSU replays its valid cert while
	// claiming another location in the beacon.
	sig, err := cred.SignBeacon(6, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.TrustAnchor().VerifyBeacon(cred.CertificateDER(), 6, 64, 1, sig, t0)
	if !errors.Is(err, ErrLocationMismatch) {
		t.Errorf("err = %v, want ErrLocationMismatch", err)
	}
}

func TestTamperedBeaconRejected(t *testing.T) {
	a := newAuthority(t)
	cred, err := a.IssueRSU(5, t0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := cred.SignBeacon(5, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Same location, altered bitmap size: signature must not verify.
	_, err = a.TrustAnchor().VerifyBeacon(cred.CertificateDER(), 5, 128, 1, sig, t0)
	if !errors.Is(err, ErrBadSignature) {
		t.Errorf("altered m err = %v, want ErrBadSignature", err)
	}
	// Altered period.
	_, err = a.TrustAnchor().VerifyBeacon(cred.CertificateDER(), 5, 64, 2, sig, t0)
	if !errors.Is(err, ErrBadSignature) {
		t.Errorf("altered period err = %v, want ErrBadSignature", err)
	}
	// Garbage signature.
	_, err = a.TrustAnchor().VerifyBeacon(cred.CertificateDER(), 5, 64, 1, []byte{1, 2, 3}, t0)
	if !errors.Is(err, ErrBadSignature) {
		t.Errorf("garbage sig err = %v, want ErrBadSignature", err)
	}
}

func TestGarbageCertificateRejected(t *testing.T) {
	a := newAuthority(t)
	if _, err := a.TrustAnchor().VerifyBeacon([]byte("not a cert"), 1, 64, 1, nil, t0); err == nil {
		t.Error("garbage DER accepted")
	}
}

func TestCredentialsAreDistinct(t *testing.T) {
	a := newAuthority(t)
	c1, err := a.IssueRSU(1, t0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := a.IssueRSU(1, t0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if string(c1.CertificateDER()) == string(c2.CertificateDER()) {
		t.Error("two issued certificates are identical")
	}
}
