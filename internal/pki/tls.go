package pki

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"time"
)

// TLS credentials for the RSU <-> central-server backhaul. The paper's
// model encrypts all exchanges; the backhaul carries traffic records and
// query results, so a deployment terminates it with TLS under the same
// transportation authority that vouches for RSUs.

// IssueTLSServer issues a TLS server certificate for the central server
// reachable at host (DNS name or IP literal), signed by the authority.
func (a *Authority) IssueTLSServer(host string, now time.Time, validity time.Duration) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("pki: generating TLS key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 64))
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("pki: drawing serial: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: "ptm-central"},
		NotBefore:    now,
		NotAfter:     now.Add(validity),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	if ip := net.ParseIP(host); ip != nil {
		tmpl.IPAddresses = []net.IP{ip}
	} else {
		tmpl.DNSNames = []string{host}
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, a.cert, &key.PublicKey, a.key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("pki: signing TLS cert: %w", err)
	}
	return tls.Certificate{
		Certificate: [][]byte{der},
		PrivateKey:  key,
	}, nil
}

// ServerTLSConfig wraps an issued certificate into a TLS config for
// tls.NewListener.
func ServerTLSConfig(cert tls.Certificate) *tls.Config {
	return &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS13,
	}
}

// ClientTLSConfig returns a TLS config that trusts servers certified by
// this authority.
func (a *Authority) ClientTLSConfig() *tls.Config {
	return &tls.Config{
		RootCAs:    a.pool.Clone(),
		MinVersion: tls.VersionTLS13,
	}
}
