package pki

import (
	"crypto/tls"
	"testing"
	"time"
)

func TestIssueTLSServerAndConfigs(t *testing.T) {
	a := newAuthority(t)
	cert, err := a.IssueTLSServer("127.0.0.1", t0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Certificate) != 1 || cert.PrivateKey == nil {
		t.Fatalf("certificate shape: %d chains", len(cert.Certificate))
	}
	srvCfg := ServerTLSConfig(cert)
	if srvCfg.MinVersion != tls.VersionTLS13 || len(srvCfg.Certificates) != 1 {
		t.Errorf("server config: %+v", srvCfg)
	}
	cliCfg := a.ClientTLSConfig()
	if cliCfg.MinVersion != tls.VersionTLS13 || cliCfg.RootCAs == nil {
		t.Errorf("client config: %+v", cliCfg)
	}

	// DNS-name variant.
	dnsCert, err := a.IssueTLSServer("central.example.com", t0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(dnsCert.Certificate) != 1 {
		t.Error("dns cert missing chain")
	}
}
