// Package pki simulates the trust infrastructure of Section II-B: a
// trusted third party issues public-key certificates to RSUs; vehicles
// hold the third party's public key pre-installed and verify an RSU's
// certificate before responding to its beacons. Rogue RSUs (whose
// certificates do not chain to the trusted party) fail verification and
// are ignored.
//
// The implementation uses ECDSA P-256 and x509 from the standard library.
// The specific certificate profile of a DSRC deployment is irrelevant to
// the measurement algorithms; what matters — and what this package
// enforces — is the trust decision and the authenticated binding between
// a beacon and a location.
package pki

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"time"

	"ptm/internal/vhash"
)

// Errors returned by verification.
var (
	ErrUntrusted        = errors.New("pki: certificate not signed by the trusted authority")
	ErrExpired          = errors.New("pki: certificate outside its validity window")
	ErrLocationMismatch = errors.New("pki: certificate issued for a different location")
	ErrBadSignature     = errors.New("pki: beacon signature invalid")
)

// Authority is the trusted third party. It signs RSU certificates; its
// public key ships pre-installed in every vehicle.
type Authority struct {
	key  *ecdsa.PrivateKey //ptm:source authority private key
	cert *x509.Certificate
	pool *x509.CertPool
}

// NewAuthority creates a self-signed root authority valid for the given
// duration starting at now.
func NewAuthority(now time.Time, validity time.Duration) (*Authority, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: generating authority key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "PTM Transportation Authority"},
		NotBefore:             now,
		NotAfter:              now.Add(validity),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("pki: self-signing authority: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("pki: parsing authority cert: %w", err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	return &Authority{key: key, cert: cert, pool: pool}, nil
}

// TrustAnchor returns the verifier vehicles pre-install.
func (a *Authority) TrustAnchor() *Verifier {
	return &Verifier{pool: a.pool}
}

// Credential is an RSU's signing credential: its certificate (bound to its
// location) and private key.
type Credential struct {
	Location vhash.LocationID
	certDER  []byte
	key      *ecdsa.PrivateKey //ptm:source credential private key
}

// IssueRSU issues a credential for an RSU at the given location, valid for
// the given window. The location is embedded in the certificate's common
// name and SerialNumber-adjacent extension so vehicles can bind beacons to
// locations.
func (a *Authority) IssueRSU(loc vhash.LocationID, now time.Time, validity time.Duration) (*Credential, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: generating RSU key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 64))
	if err != nil {
		return nil, fmt.Errorf("pki: drawing serial: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: fmt.Sprintf("rsu-%d", loc)},
		NotBefore:    now,
		NotAfter:     now.Add(validity),
		KeyUsage:     x509.KeyUsageDigitalSignature,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, a.cert, &key.PublicKey, a.key)
	if err != nil {
		return nil, fmt.Errorf("pki: signing RSU cert: %w", err)
	}
	return &Credential{Location: loc, certDER: der, key: key}, nil
}

// CertificateDER returns the credential's certificate in DER form, as
// broadcast in beacons.
func (c *Credential) CertificateDER() []byte { return c.certDER }

// SignBeacon signs the beacon fields (location, bitmap size, period) so a
// vehicle can verify that the beacon content is authentic, not just that
// some valid certificate was replayed alongside tampered fields.
func (c *Credential) SignBeacon(loc vhash.LocationID, m int, period uint32) ([]byte, error) {
	digest := beaconDigest(loc, m, period)
	sig, err := ecdsa.SignASN1(rand.Reader, c.key, digest[:])
	if err != nil {
		return nil, fmt.Errorf("pki: signing beacon: %w", err)
	}
	return sig, nil
}

func beaconDigest(loc vhash.LocationID, m int, period uint32) [32]byte {
	var buf [20]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(loc))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(m))
	binary.LittleEndian.PutUint32(buf[16:20], period)
	return sha256.Sum256(buf[:])
}

// Verifier is the vehicle-side trust anchor.
type Verifier struct {
	pool *x509.CertPool
}

// VerifyBeacon checks that certDER chains to the trusted authority, is
// valid at time now, matches the claimed location, and that sig covers the
// beacon fields. It returns the verified certificate on success.
func (v *Verifier) VerifyBeacon(certDER []byte, loc vhash.LocationID, m int, period uint32, sig []byte, now time.Time) (*x509.Certificate, error) {
	cert, err := x509.ParseCertificate(certDER)
	if err != nil {
		return nil, fmt.Errorf("pki: parsing beacon certificate: %w", err)
	}
	if _, err := cert.Verify(x509.VerifyOptions{
		Roots:       v.pool,
		CurrentTime: now,
		KeyUsages:   []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
	}); err != nil {
		var inv x509.CertificateInvalidError
		if errors.As(err, &inv) && inv.Reason == x509.Expired {
			return nil, fmt.Errorf("%w: %v", ErrExpired, err)
		}
		return nil, fmt.Errorf("%w: %v", ErrUntrusted, err)
	}
	if want := fmt.Sprintf("rsu-%d", loc); cert.Subject.CommonName != want {
		return nil, fmt.Errorf("%w: cert for %q, beacon claims %q", ErrLocationMismatch, cert.Subject.CommonName, want)
	}
	pub, ok := cert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("%w: unexpected key type %T", ErrBadSignature, cert.PublicKey)
	}
	digest := beaconDigest(loc, m, period)
	if !ecdsa.VerifyASN1(pub, digest[:], sig) {
		return nil, ErrBadSignature
	}
	return cert, nil
}
