package vhash

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewIdentityValidatesS(t *testing.T) {
	for _, s := range []int{0, -1, 65, 1000} {
		if _, err := NewIdentity(1, s); !errors.Is(err, ErrInvalidS) {
			t.Errorf("NewIdentity(s=%d) err = %v, want ErrInvalidS", s, err)
		}
		if _, err := NewSeededIdentity(1, s, 42); !errors.Is(err, ErrInvalidS) {
			t.Errorf("NewSeededIdentity(s=%d) err = %v, want ErrInvalidS", s, err)
		}
	}
	for _, s := range []int{MinS, 3, MaxS} {
		if _, err := NewIdentity(1, s); err != nil {
			t.Errorf("NewIdentity(s=%d): %v", s, err)
		}
	}
}

func TestSeededDeterminism(t *testing.T) {
	a, err := NewSeededIdentity(77, 3, 123)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSeededIdentity(77, 3, 123)
	if err != nil {
		t.Fatal(err)
	}
	for _, loc := range []LocationID{0, 1, 99} {
		if a.Hash(loc) != b.Hash(loc) {
			t.Errorf("same seed diverges at loc %d", loc)
		}
	}
	c, err := NewSeededIdentity(77, 3, 124)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash(5) == c.Hash(5) {
		t.Error("different seeds collide (suspicious)")
	}
}

func TestAccessors(t *testing.T) {
	v, err := NewSeededIdentity(42, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID() != 42 {
		t.Errorf("ID() = %d", v.ID())
	}
	if v.S() != 5 {
		t.Errorf("S() = %d", v.S())
	}
	if len(v.RepresentativeHashes()) != 5 {
		t.Errorf("len(RepresentativeHashes) = %d", len(v.RepresentativeHashes()))
	}
}

// TestSameLocationStable: the core persistence property — a vehicle maps to
// the same index at the same location in every period, regardless of the
// period's bitmap size (for power-of-two sizes, via mod compatibility).
func TestSameLocationStable(t *testing.T) {
	v, err := NewSeededIdentity(9, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	const loc = LocationID(4)
	h := v.Hash(loc)
	for i := 0; i < 10; i++ {
		if v.Hash(loc) != h {
			t.Fatal("Hash not deterministic")
		}
	}
	// Index at size l must equal Index at size m reduced mod l (l <= m).
	for _, m := range []int{64, 256, 1 << 16} {
		for _, l := range []int{64, 128} {
			if l > m {
				continue
			}
			if v.Index(loc, m)%uint64(l) != v.Index(loc, l) {
				t.Errorf("index mod-compatibility broken: m=%d l=%d", m, l)
			}
		}
	}
}

// TestIndexWithinRepresentatives: the transmitted index is always one of
// the vehicle's s representative bits (Section II-D).
func TestIndexWithinRepresentatives(t *testing.T) {
	v, err := NewSeededIdentity(13, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	reps := v.RepresentativeHashes()
	const m = 1 << 12
	for loc := LocationID(0); loc < 200; loc++ {
		idx := v.Index(loc, m)
		found := false
		for _, r := range reps {
			if r%uint64(m) == idx {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("index at loc %d not among representative bits", loc)
		}
	}
}

// TestLocationSlotCoverage: across many locations a vehicle should use all
// s representative slots, roughly uniformly (probability 1/s each).
func TestLocationSlotCoverage(t *testing.T) {
	const s = 4
	v, err := NewSeededIdentity(21, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[uint64]int)
	const trials = 8000
	for loc := LocationID(0); loc < trials; loc++ {
		counts[v.Hash(loc)]++
	}
	if len(counts) != s {
		t.Fatalf("vehicle used %d distinct hashes across locations, want %d", len(counts), s)
	}
	for h, n := range counts {
		frac := float64(n) / trials
		if math.Abs(frac-1.0/s) > 0.05 {
			t.Errorf("slot %x frequency %.3f, want ~%.3f", h, frac, 1.0/s)
		}
	}
}

// TestIndexUniformity: indices from many distinct vehicles should be close
// to uniform over the bitmap — the property Eq. (1) linear counting needs.
func TestIndexUniformity(t *testing.T) {
	const (
		m        = 1 << 8
		vehicles = 100000
	)
	var buckets [m]int
	for i := 0; i < vehicles; i++ {
		v, err := NewSeededIdentity(VehicleID(i), 3, 555)
		if err != nil {
			t.Fatal(err)
		}
		buckets[v.Index(7, m)]++
	}
	// Chi-square with m-1 dof; mean m-1=255, sd ~ sqrt(2*255)=22.6.
	// 340 is > +3.7 sd — loose enough to be robust, tight enough to catch
	// structural bias.
	expected := float64(vehicles) / m
	chi2 := 0.0
	for _, n := range buckets {
		d := float64(n) - expected
		chi2 += d * d / expected
	}
	if chi2 > 340 {
		t.Errorf("chi-square = %.1f over %d buckets: indices not uniform", chi2, m)
	}
}

// TestDistinctVehiclesDiffer: two vehicles almost never share all their
// representative bits; collision on a single index is allowed (that is the
// privacy mechanism) but full-state collision would break estimation.
func TestDistinctVehiclesDiffer(t *testing.T) {
	f := func(ida, idb uint64, seed uint64) bool {
		if ida == idb {
			return true
		}
		a, errA := NewSeededIdentity(VehicleID(ida), 3, seed)
		b, errB := NewSeededIdentity(VehicleID(idb), 3, seed)
		if errA != nil || errB != nil {
			return false
		}
		ra, rb := a.RepresentativeHashes(), b.RepresentativeHashes()
		for i := range ra {
			if ra[i] != rb[i] {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestCryptoIdentityDiffers: identities from crypto/rand differ between
// constructions even with equal IDs (fresh Kv and C).
func TestCryptoIdentityDiffers(t *testing.T) {
	a, err := NewIdentity(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewIdentity(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for loc := LocationID(0); loc < 64; loc++ {
		if a.Hash(loc) == b.Hash(loc) {
			same++
		}
	}
	if same == 64 {
		t.Error("two independently drawn identities hash identically everywhere")
	}
}

// TestAvalanche: flipping one input bit flips ~half the output bits of the
// mixer on average — the "good randomness" the paper assumes of H.
func TestAvalanche(t *testing.T) {
	const trials = 4096
	total := 0
	for i := uint64(0); i < trials; i++ {
		x := i * 0x2545f4914f6cdd1d
		for bit := uint(0); bit < 64; bit += 8 {
			d := hashH(x) ^ hashH(x^(1<<bit))
			total += popcount(d)
		}
	}
	avg := float64(total) / (trials * 8)
	if avg < 28 || avg > 36 {
		t.Errorf("avalanche average = %.2f flipped bits, want ~32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func BenchmarkIndex(b *testing.B) {
	v, err := NewSeededIdentity(1, 3, 42)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = v.Index(LocationID(i), 1<<20)
	}
}

func BenchmarkNewSeededIdentity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = NewSeededIdentity(VehicleID(i), 3, 42)
	}
}
