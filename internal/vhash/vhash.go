// Package vhash implements the privacy-preserving vehicle encoding of
// Section II-D of the paper.
//
// A vehicle v holds a private key Kv and a private array C of s random
// constants. Passing the RSU at location L during any measurement period it
// computes
//
//	h_v = H(v ⊕ Kv ⊕ C[H(L ⊕ v) mod s]) mod m
//
// and reports only h_v. The inner hash picks one of the vehicle's s
// "representative bits" as a function of the location, so the same vehicle
// sets the same bit at the same location in every period (which is what
// lets AND-joins isolate persistent traffic) but generally different bits
// at different locations (which is what frustrates trajectory tracking).
//
// The paper only requires H to "provide good randomness". We use a
// SplitMix64-style finalizer over the XOR-combined inputs, which passes
// avalanche tests and is deterministic across runs and machines.
package vhash

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
)

// Parameter bounds. s is the number of representative bits per vehicle
// (Section II-D); the paper evaluates s in [2,5] and recommends s=3.
const (
	MinS = 1
	MaxS = 64
)

// ErrInvalidS is returned for representative-bit counts outside [MinS, MaxS].
var ErrInvalidS = errors.New("vhash: s out of range")

// VehicleID identifies a vehicle. In a deployment this is the unique
// electronic vehicle identity; it never leaves the vehicle.
//
//ptm:source vehicle identity
type VehicleID uint64

// LocationID identifies an RSU location L. The paper folds the location's
// coordinates into the hash input; any stable 64-bit encoding works.
type LocationID uint64

// mix64 is the SplitMix64 finalizer: a bijective avalanche mixer used as
// the hash H of the paper.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashH is the paper's H over a single 64-bit input. The constant offset
// prevents H(0)=0 fixed points from aligning across call sites.
func hashH(x uint64) uint64 {
	return mix64(x + 0x9e3779b97f4a7c15)
}

// Identity is a vehicle's private encoding state: its ID, private key Kv,
// and constant array C. The RSU and central server never see any of it;
// only the final reduced index h_v is transmitted.
//
//ptm:source vehicle private state
type Identity struct {
	id VehicleID //ptm:source plaintext vehicle identity
	kv uint64    //ptm:source private key Kv
	c  []uint64  //ptm:source private constant array C
}

// NewIdentity creates an identity with s representative bits, drawing Kv
// and C from crypto/rand as the paper's "randomly selected constants".
func NewIdentity(id VehicleID, s int) (*Identity, error) {
	if s < MinS || s > MaxS {
		return nil, fmt.Errorf("%w: %d not in [%d, %d]", ErrInvalidS, s, MinS, MaxS)
	}
	buf := make([]byte, 8*(s+1))
	if _, err := rand.Read(buf); err != nil {
		return nil, fmt.Errorf("vhash: drawing secrets: %w", err)
	}
	c := make([]uint64, s)
	for i := range c {
		c[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return &Identity{
		id: id,
		kv: binary.LittleEndian.Uint64(buf[8*s:]),
		c:  c,
	}, nil
}

// NewSeededIdentity creates an identity whose secrets are derived
// deterministically from the given seed. Simulations use this to make
// experiment runs reproducible; real vehicles use NewIdentity.
func NewSeededIdentity(id VehicleID, s int, seed uint64) (*Identity, error) {
	if s < MinS || s > MaxS {
		return nil, fmt.Errorf("%w: %d not in [%d, %d]", ErrInvalidS, s, MinS, MaxS)
	}
	state := seed ^ mix64(uint64(id))
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		return mix64(state)
	}
	c := make([]uint64, s)
	for i := range c {
		c[i] = next()
	}
	return &Identity{id: id, kv: next(), c: c}, nil
}

// ID returns the vehicle's identifier.
func (v *Identity) ID() VehicleID { return v.id }

// S returns the number of representative bits.
func (v *Identity) S() int { return len(v.c) }

// locationSlot computes i = H(L ⊕ v) mod s, the location-dependent choice
// among the vehicle's representative bits.
func (v *Identity) locationSlot(loc LocationID) int {
	return int(hashH(uint64(loc)^uint64(v.id)) % uint64(len(v.c)))
}

// Hash returns the full 64-bit hash the vehicle derives at location loc,
// before reduction modulo a bitmap size. Because the RSU's bitmap size may
// differ between periods, the un-reduced value is the stable quantity: for
// power-of-two sizes m, Hash(loc) mod m is the transmitted index and the
// expansion property of Section III-A holds across sizes.
func (v *Identity) Hash(loc LocationID) uint64 {
	return hashH(uint64(v.id) ^ v.kv ^ v.c[v.locationSlot(loc)])
}

// Index returns h_v = Hash(loc) mod m, the value the vehicle transmits to
// the RSU at a location whose current bitmap has m bits. m must be a power
// of two (enforced by the bitmap package; reduced here by masking). This is
// the paper's sole declassifier: the only path by which private vehicle
// state may reach a public sink.
//
//ptm:sanitizer
func (v *Identity) Index(loc LocationID, m int) uint64 {
	return v.Hash(loc) & uint64(m-1)
}

// RepresentativeHashes returns the s full-width hashes H(v ⊕ Kv ⊕ C[i]),
// i in [0, s). Bit Hash mod m of each is a representative bit of the
// vehicle in an m-bit record (Section II-D). Exposed for analysis and
// tests; a deployment never transmits these.
func (v *Identity) RepresentativeHashes() []uint64 {
	out := make([]uint64, len(v.c))
	for i, ci := range v.c {
		out[i] = hashH(uint64(v.id) ^ v.kv ^ ci)
	}
	return out
}
