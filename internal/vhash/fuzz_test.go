package vhash

import "testing"

// FuzzIndex checks the invariants the transmitted index h_v must satisfy
// for arbitrary identities, locations, and bitmap sizes:
//
//   - the index is the full hash reduced modulo m (and therefore < m);
//   - it is deterministic for a fixed (identity, location, m);
//   - the replication-expansion property of Section III-A holds: for
//     power-of-two sizes l | m, the index in the small map is the index in
//     the large map reduced mod l, so records of different sizes stay
//     comparable after expansion;
//   - the index lands on one of the vehicle's s representative bits.
func FuzzIndex(f *testing.F) {
	f.Add(uint64(1), uint64(42), uint64(7), uint8(3), uint8(10))
	f.Add(uint64(0), uint64(0), uint64(0), uint8(0), uint8(0))
	f.Add(uint64(1<<63), uint64(999), uint64(1<<40), uint8(64), uint8(255))

	f.Fuzz(func(t *testing.T, id, seed, loc uint64, sRaw, eRaw uint8) {
		s := int(sRaw)%MaxS + MinS
		// m in [64, 1<<20]; doubling below stays well under MaxBits.
		m := 1 << (6 + int(eRaw)%15)

		v, err := NewSeededIdentity(VehicleID(id), s, seed)
		if err != nil {
			t.Fatalf("NewSeededIdentity(%d, %d, %d): %v", id, s, seed, err)
		}
		idx := v.Index(LocationID(loc), m)
		if idx >= uint64(m) {
			t.Fatalf("index %d escapes bitmap of %d bits", idx, m)
		}
		if want := v.Hash(LocationID(loc)) & uint64(m-1); idx != want {
			t.Fatalf("index %d is not the reduced hash %d", idx, want)
		}
		if again := v.Index(LocationID(loc), m); again != idx {
			t.Fatalf("index not deterministic: %d then %d", idx, again)
		}
		if big := v.Index(LocationID(loc), 2*m); big&uint64(m-1) != idx {
			t.Fatalf("expansion broken: index %d in %d bits, %d in %d bits", idx, m, big, 2*m)
		}
		onRep := false
		for _, h := range v.RepresentativeHashes() {
			if h&uint64(m-1) == idx {
				onRep = true
				break
			}
		}
		if !onRep {
			t.Fatalf("index %d is not any of the %d representative bits", idx, s)
		}
	})
}
