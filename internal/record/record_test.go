package record

import (
	"errors"
	"testing"

	"ptm/internal/vhash"
)

func mustRecord(t *testing.T, loc vhash.LocationID, p PeriodID, m int) *Record {
	t.Helper()
	r, err := New(loc, p, m)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNew(t *testing.T) {
	r := mustRecord(t, 7, 3, 128)
	if r.Location != 7 || r.Period != 3 || r.Size() != 128 {
		t.Errorf("unexpected record: %v", r)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewBadSize(t *testing.T) {
	if _, err := New(1, 1, 100); err == nil {
		t.Error("non-power-of-two size accepted")
	}
}

func TestValidateNilBitmap(t *testing.T) {
	r := &Record{Location: 1, Period: 1}
	if err := r.Validate(); !errors.Is(err, ErrNilBitmap) {
		t.Errorf("err = %v, want ErrNilBitmap", err)
	}
	if _, err := r.MarshalBinary(); !errors.Is(err, ErrNilBitmap) {
		t.Errorf("MarshalBinary err = %v, want ErrNilBitmap", err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := mustRecord(t, 42, 9, 256)
	r.Bitmap.Set(17)
	r.Bitmap.Set(200)
	data, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Location != r.Location || got.Period != r.Period {
		t.Errorf("header mismatch: %v vs %v", got, r)
	}
	if !got.Bitmap.Equal(r.Bitmap) {
		t.Error("bitmap mismatch after round trip")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	r := mustRecord(t, 1, 1, 64)
	r.Bitmap.Set(5)
	good, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func([]byte)) []byte {
		d := make([]byte, len(good))
		copy(d, good)
		f(d)
		return d
	}
	cases := map[string][]byte{
		"short":          good[:10],
		"empty":          {},
		"bad magic":      mutate(func(d []byte) { d[1] ^= 0xff }),
		"bad version":    mutate(func(d []byte) { d[4] = 9 }),
		"bad blob len":   mutate(func(d []byte) { d[20] ^= 0x01 }),
		"flipped bitmap": mutate(func(d []byte) { d[recHeader+20] ^= 0x01 }),
		"truncated":      good[:len(good)-1],
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestNewSetSortsAndValidates(t *testing.T) {
	recs := []*Record{
		mustRecord(t, 5, 3, 64),
		mustRecord(t, 5, 1, 128),
		mustRecord(t, 5, 2, 64),
	}
	s, err := NewSet(recs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Location() != 5 || s.Len() != 3 {
		t.Errorf("set loc/len = %d/%d", s.Location(), s.Len())
	}
	want := []PeriodID{1, 2, 3}
	for i, p := range s.Periods() {
		if p != want[i] {
			t.Errorf("Periods[%d] = %d, want %d", i, p, want[i])
		}
	}
	if s.MaxSize() != 128 {
		t.Errorf("MaxSize = %d, want 128", s.MaxSize())
	}
	if len(s.Bitmaps()) != 3 {
		t.Errorf("Bitmaps len = %d", len(s.Bitmaps()))
	}
	// Input order must be preserved in the caller's slice (copy semantics).
	if recs[0].Period != 3 {
		t.Error("NewSet mutated caller's slice order")
	}
}

func TestNewSetErrors(t *testing.T) {
	if _, err := NewSet(nil); !errors.Is(err, ErrEmptySet) {
		t.Errorf("empty err = %v", err)
	}
	mixed := []*Record{mustRecord(t, 1, 1, 64), mustRecord(t, 2, 2, 64)}
	if _, err := NewSet(mixed); !errors.Is(err, ErrMixedSet) {
		t.Errorf("mixed err = %v", err)
	}
	dup := []*Record{mustRecord(t, 1, 1, 64), mustRecord(t, 1, 1, 64)}
	if _, err := NewSet(dup); !errors.Is(err, ErrDupPeriod) {
		t.Errorf("dup err = %v", err)
	}
	bad := []*Record{{Location: 1, Period: 1}}
	if _, err := NewSet(bad); !errors.Is(err, ErrNilBitmap) {
		t.Errorf("nil-bitmap err = %v", err)
	}
}

func TestCheckAligned(t *testing.T) {
	a, err := NewSet([]*Record{mustRecord(t, 1, 1, 64), mustRecord(t, 1, 2, 64)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSet([]*Record{mustRecord(t, 2, 1, 64), mustRecord(t, 2, 2, 64)})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAligned(a, b); err != nil {
		t.Errorf("aligned sets rejected: %v", err)
	}

	c, err := NewSet([]*Record{mustRecord(t, 3, 1, 64)})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAligned(a, c); !errors.Is(err, ErrPeriodSkew) {
		t.Errorf("length skew err = %v", err)
	}
	d, err := NewSet([]*Record{mustRecord(t, 4, 1, 64), mustRecord(t, 4, 3, 64)})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAligned(a, d); !errors.Is(err, ErrPeriodSkew) {
		t.Errorf("period skew err = %v", err)
	}
}

func TestBitmapsShareUnderlying(t *testing.T) {
	r := mustRecord(t, 1, 1, 64)
	s, err := NewSet([]*Record{r})
	if err != nil {
		t.Fatal(err)
	}
	s.Bitmaps()[0].Set(3)
	if !r.Bitmap.Get(3) {
		t.Error("Bitmaps should expose the records' bitmaps, not copies")
	}
	// The slice itself is the set's own, built once: repeated calls must
	// not allocate (the estimator hot loops depend on this).
	if allocs := testing.AllocsPerRun(100, func() { _ = s.Bitmaps() }); allocs != 0 {
		t.Errorf("Bitmaps allocates %.0f per call, want 0", allocs)
	}
}
