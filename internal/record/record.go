// Package record defines the traffic record — the only artifact an RSU ever
// exports (Section II-D): a location, a measurement period, and a bitmap in
// which passing vehicles each set one pseudo-random bit. No per-vehicle
// identifying information exists in a record; estimation is purely
// statistical.
package record

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"ptm/internal/bitmap"
	"ptm/internal/vhash"
)

// PeriodID numbers measurement periods (e.g. days) monotonically. The
// authority chooses the period length; records only carry the ordinal.
type PeriodID uint32

// Record is one RSU's traffic record for one measurement period.
type Record struct {
	Location vhash.LocationID
	Period   PeriodID
	Bitmap   *bitmap.Bitmap
}

// Validation and codec errors.
var (
	ErrNilBitmap  = errors.New("record: nil bitmap")
	ErrCorrupt    = errors.New("record: corrupt serialized data")
	ErrEmptySet   = errors.New("record: empty record set")
	ErrMixedSet   = errors.New("record: records from different locations")
	ErrDupPeriod  = errors.New("record: duplicate period in set")
	ErrPeriodSkew = errors.New("record: period sets differ between locations")
)

// New creates a record with a fresh all-zero bitmap of m bits.
func New(loc vhash.LocationID, period PeriodID, m int) (*Record, error) {
	b, err := bitmap.New(m)
	if err != nil {
		return nil, fmt.Errorf("record: sizing bitmap: %w", err)
	}
	return &Record{Location: loc, Period: period, Bitmap: b}, nil
}

// Validate checks structural invariants.
func (r *Record) Validate() error {
	if r.Bitmap == nil {
		return ErrNilBitmap
	}
	return nil
}

// Size returns the record's bitmap size in bits.
func (r *Record) Size() int { return r.Bitmap.Size() }

// String summarizes the record.
func (r *Record) String() string {
	return fmt.Sprintf("record{loc=%d period=%d %v}", r.Location, r.Period, r.Bitmap)
}

// Serialized layout (little endian):
//
//	magic    uint32 "PTMR"
//	version  uint8  1
//	_        [3]byte
//	location uint64
//	period   uint32
//	blen     uint32  length of the bitmap blob
//	bitmap   blen bytes (bitmap.MarshalBinary, self-checksummed)
const (
	recMagic   = 0x524d5450 // "PTMR" little-endian
	recVersion = 1
	recHeader  = 4 + 1 + 3 + 8 + 4 + 4
)

// MarshalBinary serializes the record for upload to the central server.
//
//ptm:sink record serialization
func (r *Record) MarshalBinary() ([]byte, error) {
	return r.AppendBinary(nil)
}

// AppendBinary appends the MarshalBinary encoding to dst and returns the
// extended slice, reusing dst's capacity. The snapshot writer streams
// every record through one scratch buffer this way, so serializing a
// store costs O(1) allocations instead of one per record.
//
//ptm:sink record serialization
func (r *Record) AppendBinary(dst []byte) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	base := len(dst)
	var hdr [recHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], recMagic)
	hdr[4] = recVersion
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(r.Location))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(r.Period))
	dst = append(dst, hdr[:]...)
	dst, err := r.Bitmap.AppendBinary(dst)
	if err != nil {
		return nil, fmt.Errorf("record: marshaling bitmap: %w", err)
	}
	blen := len(dst) - base - recHeader
	binary.LittleEndian.PutUint32(dst[base+20:base+24], uint32(blen))
	return dst, nil
}

// Unmarshal parses a record serialized by MarshalBinary.
func Unmarshal(data []byte) (*Record, error) {
	if len(data) < recHeader {
		return nil, fmt.Errorf("%w: short buffer (%d bytes)", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data[0:4]) != recMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != recVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, data[4])
	}
	if data[5] != 0 || data[6] != 0 || data[7] != 0 {
		return nil, fmt.Errorf("%w: nonzero reserved bytes", ErrCorrupt)
	}
	blen := int(binary.LittleEndian.Uint32(data[20:24]))
	if len(data) != recHeader+blen {
		return nil, fmt.Errorf("%w: length %d, want %d", ErrCorrupt, len(data), recHeader+blen)
	}
	b, err := bitmap.Unmarshal(data[recHeader:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return &Record{
		Location: vhash.LocationID(binary.LittleEndian.Uint64(data[8:16])),
		Period:   PeriodID(binary.LittleEndian.Uint32(data[16:20])),
		Bitmap:   b,
	}, nil
}

// Set is the paper's Π: the records of interest from a single location,
// one per measurement period.
type Set struct {
	loc  vhash.LocationID
	recs []*Record
	bms  []*bitmap.Bitmap // recs' bitmaps in period order, built once
}

// NewSet validates and assembles a record set. All records must share one
// location, have distinct periods, and carry valid bitmaps. The records
// are sorted by period; the paper's Π_a/Π_b split (Section III-B) depends
// on a deterministic order.
func NewSet(recs []*Record) (*Set, error) {
	if len(recs) == 0 {
		return nil, ErrEmptySet
	}
	sorted := make([]*Record, len(recs))
	copy(sorted, recs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Period < sorted[j].Period })

	loc := sorted[0].Location
	seen := make(map[PeriodID]bool, len(sorted))
	for _, r := range sorted {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if r.Location != loc {
			return nil, fmt.Errorf("%w: %d and %d", ErrMixedSet, loc, r.Location)
		}
		if seen[r.Period] {
			return nil, fmt.Errorf("%w: period %d", ErrDupPeriod, r.Period)
		}
		seen[r.Period] = true
	}
	bms := make([]*bitmap.Bitmap, len(sorted))
	for i, r := range sorted {
		bms[i] = r.Bitmap
	}
	return &Set{loc: loc, recs: sorted, bms: bms}, nil
}

// Location returns the common location of the set.
//
//ptm:noalloc
//ptm:inline
func (s *Set) Location() vhash.LocationID { return s.loc }

// Len returns t, the number of measurement periods in the set.
//
//ptm:noalloc
//ptm:inline
func (s *Set) Len() int { return len(s.recs) }

// PeriodAt returns the i'th period ID in sorted order, without the copy
// Periods makes — the estimate cache compares candidate keys against a
// set's periods on every lookup, which must stay allocation-free.
//
//ptm:noalloc
//ptm:inline
func (s *Set) PeriodAt(i int) PeriodID { return s.recs[i].Period }

// Periods returns the sorted period IDs.
func (s *Set) Periods() []PeriodID {
	out := make([]PeriodID, len(s.recs))
	for i, r := range s.recs {
		out[i] = r.Period
	}
	return out
}

// Bitmaps returns the records' bitmaps in period order. The slice is the
// set's own (built once at construction so the estimator hot loops stay
// allocation-free); callers must treat both the slice and the bitmaps as
// read-only.
//
//ptm:noalloc
//ptm:inline
func (s *Set) Bitmaps() []*bitmap.Bitmap { return s.bms }

// MaxSize returns m, the largest bitmap size in the set (Section III).
//
//ptm:noalloc
func (s *Set) MaxSize() int {
	m := 0
	for _, r := range s.recs {
		if r.Size() > m {
			m = r.Size()
		}
	}
	return m
}

// CheckAligned verifies that two sets cover exactly the same measurement
// periods, the precondition for point-to-point persistent estimation
// (Section IV: "during the same measurement periods").
//
//ptm:noalloc
func CheckAligned(a, b *Set) error {
	if a.Len() != b.Len() {
		return fmt.Errorf("%w: %d vs %d periods", ErrPeriodSkew, a.Len(), b.Len())
	}
	for i := range a.recs {
		if pa, pb := a.recs[i].Period, b.recs[i].Period; pa != pb {
			return fmt.Errorf("%w: period %d vs %d at index %d", ErrPeriodSkew, pa, pb, i)
		}
	}
	return nil
}
