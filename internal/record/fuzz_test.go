package record

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal: the record parser faces data from the network; it must
// never panic and accepted inputs must round-trip byte-identically.
func FuzzUnmarshal(f *testing.F) {
	r, err := New(7, 3, 128)
	if err != nil {
		f.Fatal(err)
	}
	r.Bitmap.Set(19)
	good, err := r.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:recHeader])
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := rec.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("accepted record does not round-trip")
		}
	})
}
