package record

import (
	"bytes"
	"testing"

	"ptm/internal/vhash"
)

// FuzzRoundTrip builds records from fuzzed parameters and set bits, then
// checks marshal → unmarshal is the identity. Together with FuzzUnmarshal
// (hostile bytes in) this pins the wire format from both directions.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(7), uint32(3), uint8(1), uint64(19))
	f.Add(uint64(0), uint32(0), uint8(0), uint64(0))
	f.Add(uint64(1<<40), uint32(1<<31), uint8(255), uint64(1<<63))

	f.Fuzz(func(t *testing.T, loc uint64, period uint32, eRaw uint8, bits uint64) {
		m := 1 << (6 + int(eRaw)%10) // [64, 1<<15]
		r, err := New(vhash.LocationID(loc), PeriodID(period), m)
		if err != nil {
			t.Fatalf("New(%d, %d, %d): %v", loc, period, m, err)
		}
		// Scatter up to 64 bit positions derived from the fuzzed word.
		for i := 0; i < 64; i++ {
			if bits&(1<<i) != 0 {
				r.Bitmap.Set((bits >> i) % uint64(m))
			}
		}
		data, err := r.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("unmarshal of freshly marshaled record: %v", err)
		}
		if got.Location != r.Location || got.Period != r.Period || got.Size() != r.Size() {
			t.Fatalf("header mismatch: got (%d,%d,%d), want (%d,%d,%d)",
				got.Location, got.Period, got.Size(), r.Location, r.Period, r.Size())
		}
		out, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("marshal → unmarshal → marshal is not the identity")
		}
	})
}
