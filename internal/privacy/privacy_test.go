package privacy

import (
	"errors"
	"math"
	"testing"
)

func almost(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestNoise(t *testing.T) {
	// p = 1 - (1-1/m')^{n'}.
	p, err := Noise(0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("Noise(0) = %v, want 0", p)
	}
	p, err = Noise(1024, 1024)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Pow(1-1.0/1024, 1024) // ~ 1 - 1/e
	if !almost(p, want, 1e-12) {
		t.Errorf("Noise = %v, want %v", p, want)
	}
	if !almost(p, 1-1/math.E, 1e-3) {
		t.Errorf("Noise(m'=n') = %v, want ~%v", p, 1-1/math.E)
	}
}

func TestNoiseErrors(t *testing.T) {
	if _, err := Noise(10, 1); !errors.Is(err, ErrBadM) {
		t.Errorf("m=1 err = %v", err)
	}
	if _, err := Noise(-1, 64); !errors.Is(err, ErrBadN) {
		t.Errorf("n<0 err = %v", err)
	}
}

func TestInformation(t *testing.T) {
	pp, err := Information(0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(pp, 0.4+0.6/3, 1e-12) {
		t.Errorf("Information = %v", pp)
	}
	if _, err := Information(0.4, 0); !errors.Is(err, ErrBadS) {
		t.Errorf("s=0 err = %v", err)
	}
	if _, err := Information(1.5, 3); err == nil {
		t.Error("p>1 accepted")
	}
	if _, err := Information(-0.1, 3); err == nil {
		t.Error("p<0 accepted")
	}
}

func TestRatioConsistentWithParts(t *testing.T) {
	nPrime, mPrime, s := 451000.0, 1<<20, 3
	p, err := Noise(nPrime, mPrime)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := Information(p, s)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Ratio(nPrime, mPrime, s)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r, p/(pp-p), 1e-9) {
		t.Errorf("Ratio %v != p/(p'-p) %v", r, p/(pp-p))
	}
}

func TestRatioEdgeCases(t *testing.T) {
	if _, err := Ratio(10, 64, 0); !errors.Is(err, ErrBadS) {
		t.Errorf("s=0 err = %v", err)
	}
	if _, err := Ratio(10, 1, 3); !errors.Is(err, ErrBadM) {
		t.Errorf("m=1 err = %v", err)
	}
	// Overwhelming traffic: p -> 1, ratio -> inf.
	r, err := Ratio(1e9, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r, 1) {
		t.Errorf("saturated ratio = %v, want +Inf", r)
	}
}

// TestTableII pins the asymptotic formulas to the paper's Table II values.
func TestTableII(t *testing.T) {
	cases := []struct {
		s    int
		f    float64
		want float64
	}{
		{2, 1, 3.4368},
		{2, 2, 1.2975},
		{2, 4, 0.5681},
		{3, 1, 5.1553},
		{3, 2, 1.9462},
		{3, 3, 1.1869},
		{4, 2, 2.5950},
		{4, 2.5, 1.9673},
		{5, 1, 8.5921},
		{5, 4, 1.4201},
		{3, 1.5, 2.8433},
		{3, 3.5, 0.9922},
	}
	for _, tc := range cases {
		got, err := AsymptoticRatio(tc.f, tc.s)
		if err != nil {
			t.Fatal(err)
		}
		// The paper evidently evaluated Table II at a finite m' (its
		// entries sit ~1e-4 above the asymptotic limit), so pin to 1e-3.
		if !almost(got, tc.want, 1e-3) {
			t.Errorf("ratio(f=%v, s=%d) = %.4f, want %.4f", tc.f, tc.s, got, tc.want)
		}
	}
	noise := []struct {
		f    float64
		want float64
	}{
		{1, 0.6321}, {1.5, 0.4866}, {2, 0.3935}, {2.5, 0.3297},
		{3, 0.2835}, {3.5, 0.2485}, {4, 0.2212},
	}
	for _, tc := range noise {
		got, err := AsymptoticNoise(tc.f)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, tc.want, 5e-5) {
			t.Errorf("p(f=%v) = %.4f, want %.4f", tc.f, got, tc.want)
		}
	}
}

func TestAsymptoticErrors(t *testing.T) {
	if _, err := AsymptoticNoise(0); !errors.Is(err, ErrBadF) {
		t.Errorf("f=0 err = %v", err)
	}
	if _, err := AsymptoticRatio(-1, 3); !errors.Is(err, ErrBadF) {
		t.Errorf("f<0 err = %v", err)
	}
	if _, err := AsymptoticRatio(2, 0); !errors.Is(err, ErrBadS) {
		t.Errorf("s=0 err = %v", err)
	}
	if _, err := Evaluate(0, 3); err == nil {
		t.Error("Evaluate(f=0) accepted")
	}
	if _, err := Evaluate(2, 0); err == nil {
		t.Error("Evaluate(s=0) accepted")
	}
}

// TestFiniteApproachesAsymptotic: the finite-m ratio converges to the
// Table II limit as m' grows with m' = f·n'.
func TestFiniteApproachesAsymptotic(t *testing.T) {
	const f = 2.0
	const s = 3
	limit, err := AsymptoticRatio(f, s)
	if err != nil {
		t.Fatal(err)
	}
	prevGap := math.Inf(1)
	for _, mPrime := range []int{1 << 10, 1 << 14, 1 << 18} {
		nPrime := float64(mPrime) / f
		r, err := Ratio(nPrime, mPrime, s)
		if err != nil {
			t.Fatal(err)
		}
		gap := math.Abs(r - limit)
		if gap > prevGap {
			t.Errorf("gap grew at m'=%d: %v > %v", mPrime, gap, prevGap)
		}
		prevGap = gap
	}
	if prevGap > 1e-3 {
		t.Errorf("finite ratio still %.5f away from limit at m'=2^18", prevGap)
	}
}

func TestEvaluateAndSweep(t *testing.T) {
	p, err := Evaluate(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p.Noise, 0.3935, 1e-4) || !almost(p.Ratio, 1.9462, 1e-4) {
		t.Errorf("Evaluate(2,3) = %+v", p)
	}
	if !almost(p.Ratio, p.Noise/p.Info, 1e-9) {
		t.Errorf("profile inconsistent: ratio %v vs noise/info %v", p.Ratio, p.Noise/p.Info)
	}

	grid, err := Sweep(TableIIFs, TableIISs)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != len(TableIIFs)*len(TableIISs) {
		t.Fatalf("sweep size = %d", len(grid))
	}
	// Monotonicity the paper reports: ratio increases with s, decreases
	// with f.
	for i := 1; i < len(grid); i++ {
		a, b := grid[i-1], grid[i]
		if a.S == b.S && b.F > a.F && b.Ratio >= a.Ratio {
			t.Errorf("ratio should fall with f: %+v -> %+v", a, b)
		}
	}
	for s := 1; s < len(TableIISs); s++ {
		for fi := range TableIIFs {
			lo := grid[(s-1)*len(TableIIFs)+fi]
			hi := grid[s*len(TableIIFs)+fi]
			if hi.Ratio <= lo.Ratio {
				t.Errorf("ratio should rise with s at f=%v", lo.F)
			}
		}
	}
	if _, err := Sweep([]float64{0}, []int{3}); err == nil {
		t.Error("sweep with bad f accepted")
	}
}
