// Package privacy implements the paper's privacy analysis (Section V): the
// probabilistic noise p, the information p′, and the noise-to-information
// ratio p/(p′−p) that quantifies how questionable any tracking inference
// drawn from traffic records is. It also provides the asymptotic forms
// used to generate Table II and accuracy–privacy sweep helpers.
package privacy

import (
	"errors"
	"fmt"
	"math"
)

// Parameter errors.
var (
	ErrBadM = errors.New("privacy: bitmap size must be >= 2")
	ErrBadN = errors.New("privacy: vehicle count must be non-negative")
	ErrBadS = errors.New("privacy: s must be >= 1")
	ErrBadF = errors.New("privacy: load factor must be positive")
)

// Noise returns p (Eq. 22): the probability that bit B′[i] at another
// location is one even though vehicle v never passed there, because any of
// the n′ vehicles that did pass may have set it.
func Noise(nPrime float64, mPrime int) (float64, error) {
	if mPrime < 2 {
		return 0, fmt.Errorf("%w: %d", ErrBadM, mPrime)
	}
	if nPrime < 0 {
		return 0, fmt.Errorf("%w: %v", ErrBadN, nPrime)
	}
	return 1 - math.Pow(1-1/float64(mPrime), nPrime), nil
}

// Information returns p′ (Eq. 23): the probability that B′[i] is one when
// v did pass L′. The vehicle sets the observed index with probability 1/s
// (one of its s representative bits), on top of the ambient noise p.
func Information(p float64, s int) (float64, error) {
	if s < 1 {
		return 0, fmt.Errorf("%w: %d", ErrBadS, s)
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("privacy: p = %v outside [0,1]", p)
	}
	return p + (1-p)/float64(s), nil
}

// Ratio returns the probabilistic noise-to-information ratio p/(p′−p)
// (Eq. 24) for a location with n′ vehicles, an m′-bit record and s
// representative bits. Values above 1 mean the noise outweighs the
// tracking signal; the paper recommends parameters keeping it ≈ 2.
func Ratio(nPrime float64, mPrime int, s int) (float64, error) {
	p, err := Noise(nPrime, mPrime)
	if err != nil {
		return 0, err
	}
	if s < 1 {
		return 0, fmt.Errorf("%w: %d", ErrBadS, s)
	}
	if p >= 1 {
		return math.Inf(1), nil
	}
	// p / ((1-p)/s) = s·p/(1-p).
	return float64(s) * p / (1 - p), nil
}

// AsymptoticNoise returns the large-m′ limit of p when the record is sized
// by Eq. (2) with load factor f, i.e. m′ = f·n′:
//
//	p → 1 − e^{−1/f}.
//
// This is the quantity in the last row of Table II (p depends only on f).
func AsymptoticNoise(f float64) (float64, error) {
	if f <= 0 {
		return 0, fmt.Errorf("%w: %v", ErrBadF, f)
	}
	return 1 - math.Exp(-1/f), nil
}

// AsymptoticRatio returns the large-m′ limit of the noise-to-information
// ratio under load factor f and representative-bit count s:
//
//	ratio → s·(e^{1/f} − 1),
//
// the body of Table II.
func AsymptoticRatio(f float64, s int) (float64, error) {
	if f <= 0 {
		return 0, fmt.Errorf("%w: %v", ErrBadF, f)
	}
	if s < 1 {
		return 0, fmt.Errorf("%w: %d", ErrBadS, s)
	}
	return float64(s) * (math.Exp(1/f) - 1), nil
}

// Profile bundles the privacy numbers for one parameter point.
type Profile struct {
	F     float64 // load factor
	S     int     // representative bits
	Noise float64 // p
	Info  float64 // p′ − p
	Ratio float64 // p / (p′ − p)
}

// Evaluate computes the asymptotic privacy profile at (f, s).
func Evaluate(f float64, s int) (Profile, error) {
	p, err := AsymptoticNoise(f)
	if err != nil {
		return Profile{}, err
	}
	r, err := AsymptoticRatio(f, s)
	if err != nil {
		return Profile{}, err
	}
	return Profile{F: f, S: s, Noise: p, Info: (1 - p) / float64(s), Ratio: r}, nil
}

// Sweep evaluates the profile over the cartesian product of load factors
// and s values, in row-major (s-major) order — the shape of Table II.
func Sweep(fs []float64, ss []int) ([]Profile, error) {
	out := make([]Profile, 0, len(fs)*len(ss))
	for _, s := range ss {
		for _, f := range fs {
			p, err := Evaluate(f, s)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// TableIIFs and TableIISs are the parameter grids of the paper's Table II.
var (
	TableIIFs = []float64{1, 1.5, 2, 2.5, 3, 3.5, 4}
	TableIISs = []int{2, 3, 4, 5}
)
