// Package trips provides the Sioux Falls origin–destination trip table used
// by the paper's real-data evaluation (Section VI-A, citing LeBlanc, Morlok
// and Pierskalla 1975).
//
// The paper does not publish the scaling it applied to the 1975 table; it
// publishes, in Table I, exactly the aggregates its simulation consumes:
// the per-location total volumes n (8 locations), the maximum total volume
// n' = 451,000 at L', and the point-to-point volumes n” between each
// location and L'. This package therefore reconstructs a deterministic
// 24-zone table calibrated so that those nine published aggregates hold
// exactly; all remaining entries are synthesized with fixed weights (and
// documented as such in DESIGN.md). Every quantity the Table I experiment
// reads — n, n', n”, and the Eq. (2) bitmap sizes they induce — matches
// the paper precisely.
package trips

import (
	"errors"
	"fmt"
)

// NumZones is the number of traffic zones in the Sioux Falls network.
const NumZones = 24

// Zone identifies a traffic zone, 1-based as in the 1975 paper.
type Zone int

// ErrBadZone is returned for zones outside [1, NumZones].
var ErrBadZone = errors.New("trips: zone out of range")

// LPrime is the location with the largest total volume, the paper's L'.
const LPrime = Zone(10)

// TableILocations are the eight locations the paper pairs with L' in
// Table I, in column order.
var TableILocations = []Zone{1, 2, 3, 4, 5, 6, 7, 8}

// tableIVolumes are the published per-location totals n (Table I row 2).
var tableIVolumes = []float64{213000, 140000, 121000, 78000, 76000, 47000, 40000, 28000}

// tableIPairVolumes are the published point-to-point volumes n” between
// each location and L' (Table I row 5).
var tableIPairVolumes = []float64{40000, 20000, 19000, 8000, 8000, 7000, 6000, 3000}

// lPrimeVolume is the published total volume n' at L'.
const lPrimeVolume = 451000.0

// Table is a directional origin–destination trip table: entry (i, j) is
// the daily vehicle volume from zone i+1 to zone j+1. Tables of any size
// can be built with NewEmpty or LoadCSV; NewSiouxFalls returns the
// calibrated 24-zone evaluation network.
type Table struct {
	n  int
	od [][]float64
}

// NewEmpty creates an all-zero table with n zones.
func NewEmpty(n int) (*Table, error) {
	if n < 2 || n > 1<<14 {
		return nil, fmt.Errorf("%w: %d zones", ErrBadZone, n)
	}
	od := make([][]float64, n)
	for i := range od {
		od[i] = make([]float64, n)
	}
	return &Table{n: n, od: od}, nil
}

// Zones returns the number of zones.
func (t *Table) Zones() int { return t.n }

// SetOD sets the directional volume from zone a to zone b.
func (t *Table) SetOD(a, b Zone, v float64) error {
	if err := t.checkZone(a); err != nil {
		return err
	}
	if err := t.checkZone(b); err != nil {
		return err
	}
	if v < 0 {
		return fmt.Errorf("trips: negative volume %v", v)
	}
	t.od[a-1][b-1] = v
	return nil
}

// NewSiouxFalls constructs the calibrated Sioux Falls table. The
// construction is deterministic; see the package comment.
func NewSiouxFalls() *Table {
	t, err := NewEmpty(NumZones)
	if err != nil {
		panic(err) // NumZones is a valid constant size
	}

	specials := map[Zone]bool{LPrime: true}
	for _, z := range TableILocations {
		specials[z] = true
	}
	var free []Zone // zones with no published constraint
	for z := Zone(1); z <= NumZones; z++ {
		if !specials[z] {
			free = append(free, z)
		}
	}
	// Deterministic distribution weights over the free zones: a small
	// fixed cycle, mimicking the uneven pull of real zones.
	weight := func(i int) float64 { return float64(i%5 + 1) }
	totalWeight := 0.0
	for i := range free {
		totalWeight += weight(i)
	}

	// 1. The published L–L' pair volumes, split evenly by direction.
	for i, z := range TableILocations {
		t.od[z-1][LPrime-1] = tableIPairVolumes[i] / 2
		t.od[LPrime-1][z-1] = tableIPairVolumes[i] / 2
	}

	// 2. Each Table I location's remaining volume goes to free zones, so
	// per-location totals stay independent of each other.
	for i, z := range TableILocations {
		rest := tableIVolumes[i] - tableIPairVolumes[i]
		for j, fz := range free {
			share := rest * weight(j) / totalWeight
			t.od[z-1][fz-1] = share / 2
			t.od[fz-1][z-1] = share / 2
		}
	}

	// 3. L' absorbs its remaining volume from free zones as well.
	pairSum := 0.0
	for _, v := range tableIPairVolumes {
		pairSum += v
	}
	rest := lPrimeVolume - pairSum
	for j, fz := range free {
		share := rest * weight(j) / totalWeight
		t.od[LPrime-1][fz-1] = share / 2
		t.od[fz-1][LPrime-1] = share / 2
	}

	// 4. Background traffic among free zones for realism; it does not
	// touch any published aggregate.
	for i, a := range free {
		for j, b := range free {
			if a == b {
				continue
			}
			t.od[a-1][b-1] = 400 * weight(i) * weight(j) / 9
		}
	}
	return t
}

func (t *Table) checkZone(z Zone) error {
	if z < 1 || int(z) > t.n {
		return fmt.Errorf("%w: %d", ErrBadZone, z)
	}
	return nil
}

// OD returns the directional volume from zone a to zone b.
func (t *Table) OD(a, b Zone) (float64, error) {
	if err := t.checkZone(a); err != nil {
		return 0, err
	}
	if err := t.checkZone(b); err != nil {
		return 0, err
	}
	return t.od[a-1][b-1], nil
}

// PairVolume returns the bidirectional point-to-point volume between two
// zones — the paper's n” when measured between L and L'.
func (t *Table) PairVolume(a, b Zone) (float64, error) {
	ab, err := t.OD(a, b)
	if err != nil {
		return 0, err
	}
	ba, err := t.OD(b, a)
	if err != nil {
		return 0, err
	}
	return ab + ba, nil
}

// Volume returns a zone's total volume: the sum of all trips that start or
// end at the zone — the paper's n ("the sum of all entries in the trip
// table involving L").
func (t *Table) Volume(z Zone) (float64, error) {
	if err := t.checkZone(z); err != nil {
		return 0, err
	}
	sum := 0.0
	for j := 0; j < t.n; j++ {
		sum += t.od[z-1][j] + t.od[j][z-1]
	}
	return sum, nil
}

// MaxVolumeZone returns the zone with the largest total volume and that
// volume. On the calibrated table this is L' with 451,000.
func (t *Table) MaxVolumeZone() (Zone, float64) {
	best, bestV := Zone(1), -1.0
	for z := Zone(1); int(z) <= t.n; z++ {
		v, _ := t.Volume(z)
		if v > bestV {
			best, bestV = z, v
		}
	}
	return best, bestV
}

// TotalTrips returns the table-wide trip count.
func (t *Table) TotalTrips() float64 {
	sum := 0.0
	for i := 0; i < t.n; i++ {
		for j := 0; j < t.n; j++ {
			sum += t.od[i][j]
		}
	}
	return sum
}

// TableIRow describes one Table I column: the location, its published
// totals, and the volumes the experiment consumes.
type TableIRow struct {
	L       Zone
	N       float64 // total volume at L
	NPrime  float64 // total volume at L'
	NCommon float64 // point-to-point volume n'' between L and L'
}

// TableIRows returns the eight Table I scenarios in column order.
func (t *Table) TableIRows() ([]TableIRow, error) {
	rows := make([]TableIRow, len(TableILocations))
	nPrime, err := t.Volume(LPrime)
	if err != nil {
		return nil, err
	}
	for i, z := range TableILocations {
		n, err := t.Volume(z)
		if err != nil {
			return nil, err
		}
		nc, err := t.PairVolume(z, LPrime)
		if err != nil {
			return nil, err
		}
		rows[i] = TableIRow{L: z, N: n, NPrime: nPrime, NCommon: nc}
	}
	return rows, nil
}
