package trips

import (
	"errors"
	"math"
	"testing"

	"ptm/internal/lpc"
)

func TestCalibratedAggregatesMatchTableI(t *testing.T) {
	tab := NewSiouxFalls()

	nPrime, err := tab.Volume(LPrime)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nPrime-451000) > 1 {
		t.Errorf("Volume(L') = %v, want 451000", nPrime)
	}

	wantN := []float64{213000, 140000, 121000, 78000, 76000, 47000, 40000, 28000}
	wantNC := []float64{40000, 20000, 19000, 8000, 8000, 7000, 6000, 3000}
	for i, z := range TableILocations {
		n, err := tab.Volume(z)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(n-wantN[i]) > 1 {
			t.Errorf("Volume(%d) = %v, want %v", z, n, wantN[i])
		}
		nc, err := tab.PairVolume(z, LPrime)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(nc-wantNC[i]) > 1 {
			t.Errorf("PairVolume(%d, L') = %v, want %v", z, nc, wantNC[i])
		}
	}
}

// TestBitmapSizesMatchTableI: Eq. (2) with f=2 applied to the calibrated
// volumes must reproduce Table I's m row and the m'/m ratios 2..16.
func TestBitmapSizesMatchTableI(t *testing.T) {
	tab := NewSiouxFalls()
	wantM := []int{524288, 524288, 262144, 262144, 262144, 131072, 131072, 65536}
	wantRatio := []int{2, 2, 4, 4, 4, 8, 8, 16}

	nPrime, err := tab.Volume(LPrime)
	if err != nil {
		t.Fatal(err)
	}
	mPrime, err := lpc.BitmapSize(nPrime, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mPrime != 1<<20 {
		t.Fatalf("m' = %d, want 2^20", mPrime)
	}
	for i, z := range TableILocations {
		n, err := tab.Volume(z)
		if err != nil {
			t.Fatal(err)
		}
		m, err := lpc.BitmapSize(n, 2)
		if err != nil {
			t.Fatal(err)
		}
		if m != wantM[i] {
			t.Errorf("m(L=%d) = %d, want %d", z, m, wantM[i])
		}
		if mPrime/m != wantRatio[i] {
			t.Errorf("m'/m at L=%d = %d, want %d", z, mPrime/m, wantRatio[i])
		}
	}
}

func TestMaxVolumeZoneIsLPrime(t *testing.T) {
	tab := NewSiouxFalls()
	z, v := tab.MaxVolumeZone()
	if z != LPrime {
		t.Errorf("MaxVolumeZone = %d, want %d", z, LPrime)
	}
	if math.Abs(v-451000) > 1 {
		t.Errorf("max volume = %v", v)
	}
}

func TestODSymmetryOfPairs(t *testing.T) {
	tab := NewSiouxFalls()
	// The calibrated pairs split volume evenly by direction.
	for _, z := range TableILocations {
		ab, err := tab.OD(z, LPrime)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := tab.OD(LPrime, z)
		if err != nil {
			t.Fatal(err)
		}
		if ab != ba {
			t.Errorf("OD(%d,L')=%v != OD(L',%d)=%v", z, ab, z, ba)
		}
	}
}

func TestZoneValidation(t *testing.T) {
	tab := NewSiouxFalls()
	for _, fn := range []func() error{
		func() error { _, err := tab.OD(0, 1); return err },
		func() error { _, err := tab.OD(1, 25); return err },
		func() error { _, err := tab.PairVolume(-1, 2); return err },
		func() error { _, err := tab.Volume(99); return err },
	} {
		if err := fn(); !errors.Is(err, ErrBadZone) {
			t.Errorf("err = %v, want ErrBadZone", err)
		}
	}
}

func TestDiagonalIsZero(t *testing.T) {
	tab := NewSiouxFalls()
	for z := Zone(1); z <= NumZones; z++ {
		v, err := tab.OD(z, z)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0 {
			t.Errorf("OD(%d,%d) = %v, want 0", z, z, v)
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a, b := NewSiouxFalls(), NewSiouxFalls()
	for i := Zone(1); i <= NumZones; i++ {
		for j := Zone(1); j <= NumZones; j++ {
			va, _ := a.OD(i, j)
			vb, _ := b.OD(i, j)
			if va != vb {
				t.Fatalf("construction not deterministic at (%d,%d)", i, j)
			}
		}
	}
}

func TestTableIRows(t *testing.T) {
	tab := NewSiouxFalls()
	rows, err := tab.TableIRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for i, r := range rows {
		if r.L != TableILocations[i] {
			t.Errorf("row %d location = %d", i, r.L)
		}
		if r.NPrime != rows[0].NPrime {
			t.Errorf("rows disagree on n'")
		}
		if r.NCommon > r.N || r.NCommon > r.NPrime {
			t.Errorf("row %d: n''=%v exceeds n=%v or n'=%v", i, r.NCommon, r.N, r.NPrime)
		}
	}
	// Decreasing volume order, as in the paper's table.
	for i := 1; i < len(rows); i++ {
		if rows[i].N > rows[i-1].N {
			t.Errorf("volumes not in decreasing order at %d", i)
		}
	}
}

func TestTotalTripsPositiveAndStable(t *testing.T) {
	tab := NewSiouxFalls()
	total := tab.TotalTrips()
	if total <= 451000 {
		t.Errorf("total trips %v implausibly small", total)
	}
	// Volumes double-count each trip (origin + destination zone).
	var sumVol float64
	for z := Zone(1); z <= NumZones; z++ {
		v, err := tab.Volume(z)
		if err != nil {
			t.Fatal(err)
		}
		sumVol += v
	}
	if math.Abs(sumVol-2*total) > 1e-6*total {
		t.Errorf("sum of volumes %v != 2 * total %v", sumVol, total)
	}
}
