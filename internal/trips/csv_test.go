package trips

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestCSVRoundTripSiouxFalls(t *testing.T) {
	orig := NewSiouxFalls()
	var buf bytes.Buffer
	if err := orig.SaveCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Zones() != NumZones {
		t.Fatalf("zones = %d", got.Zones())
	}
	for i := Zone(1); i <= NumZones; i++ {
		for j := Zone(1); j <= NumZones; j++ {
			a, err := orig.OD(i, j)
			if err != nil {
				t.Fatal(err)
			}
			b, err := got.OD(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("OD(%d,%d): %v != %v", i, j, a, b)
			}
		}
	}
}

func TestLoadCSVHandWritten(t *testing.T) {
	in := "from,to,volume\n1,2,100\n2,1,50\n1,3,25.5\n1,2,10\n"
	tab, err := LoadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Zones() != 3 {
		t.Errorf("zones = %d", tab.Zones())
	}
	v, err := tab.OD(1, 2)
	if err != nil || v != 110 { // duplicates accumulate
		t.Errorf("OD(1,2) = %v, %v", v, err)
	}
	pv, err := tab.PairVolume(1, 2)
	if err != nil || pv != 160 {
		t.Errorf("PairVolume = %v, %v", pv, err)
	}
	vol, err := tab.Volume(1)
	if err != nil || vol != 185.5 {
		t.Errorf("Volume(1) = %v, %v", vol, err)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "a,b,c\n1,2,3\n",
		"bad from":     "from,to,volume\nx,2,3\n",
		"zero from":    "from,to,volume\n0,2,3\n",
		"bad to":       "from,to,volume\n1,y,3\n",
		"bad volume":   "from,to,volume\n1,2,z\n",
		"negative vol": "from,to,volume\n1,2,-5\n",
		"wrong arity":  "from,to,volume\n1,2\n",
		"single zone":  "from,to,volume\n1,1,5\n",
	}
	for name, in := range cases {
		if _, err := LoadCSV(strings.NewReader(in)); !errors.Is(err, ErrBadCSV) {
			t.Errorf("%s: err = %v, want ErrBadCSV", name, err)
		}
	}
}

func TestNewEmptyAndSetOD(t *testing.T) {
	tab, err := NewEmpty(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.SetOD(1, 5, 42); err != nil {
		t.Fatal(err)
	}
	v, err := tab.OD(1, 5)
	if err != nil || v != 42 {
		t.Errorf("OD = %v, %v", v, err)
	}
	if err := tab.SetOD(0, 1, 1); !errors.Is(err, ErrBadZone) {
		t.Errorf("bad zone err = %v", err)
	}
	if err := tab.SetOD(1, 6, 1); !errors.Is(err, ErrBadZone) {
		t.Errorf("out-of-range err = %v", err)
	}
	if err := tab.SetOD(1, 2, -1); err == nil {
		t.Error("negative volume accepted")
	}
	if _, err := NewEmpty(1); !errors.Is(err, ErrBadZone) {
		t.Errorf("n=1 err = %v", err)
	}
	if _, err := NewEmpty(1 << 20); !errors.Is(err, ErrBadZone) {
		t.Errorf("huge n err = %v", err)
	}
}
