package trips

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// CSV interchange so deployments can bring their own origin–destination
// data. The format is one header line "from,to,volume" followed by one
// row per non-zero directional entry; zones are positive integers.

// ErrBadCSV is returned for malformed CSV input.
var ErrBadCSV = errors.New("trips: malformed CSV")

// SaveCSV writes the table's non-zero entries.
func (t *Table) SaveCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"from", "to", "volume"}); err != nil {
		return fmt.Errorf("trips: writing header: %w", err)
	}
	for i := 0; i < t.n; i++ {
		for j := 0; j < t.n; j++ {
			if t.od[i][j] == 0 {
				continue
			}
			row := []string{
				strconv.Itoa(i + 1),
				strconv.Itoa(j + 1),
				strconv.FormatFloat(t.od[i][j], 'f', -1, 64),
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("trips: writing row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadCSV parses a table saved by SaveCSV (or produced by any tool using
// the same format). The zone count is inferred from the largest zone
// mentioned; duplicate (from, to) pairs accumulate.
func LoadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrBadCSV, err)
	}
	if header[0] != "from" || header[1] != "to" || header[2] != "volume" {
		return nil, fmt.Errorf("%w: header %v", ErrBadCSV, header)
	}
	type entry struct {
		from, to int
		vol      float64
	}
	var (
		entries []entry
		maxZone int
	)
	for line := 2; ; line++ {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadCSV, line, err)
		}
		from, err := strconv.Atoi(row[0])
		if err != nil || from < 1 {
			return nil, fmt.Errorf("%w: line %d: bad from %q", ErrBadCSV, line, row[0])
		}
		to, err := strconv.Atoi(row[1])
		if err != nil || to < 1 {
			return nil, fmt.Errorf("%w: line %d: bad to %q", ErrBadCSV, line, row[1])
		}
		vol, err := strconv.ParseFloat(row[2], 64)
		if err != nil || vol < 0 {
			return nil, fmt.Errorf("%w: line %d: bad volume %q", ErrBadCSV, line, row[2])
		}
		entries = append(entries, entry{from: from, to: to, vol: vol})
		if from > maxZone {
			maxZone = from
		}
		if to > maxZone {
			maxZone = to
		}
	}
	if maxZone < 2 {
		return nil, fmt.Errorf("%w: table needs at least two zones", ErrBadCSV)
	}
	t, err := NewEmpty(maxZone)
	if err != nil {
		return nil, err
	}
	// Deterministic accumulation order (not strictly needed, but keeps
	// float sums reproducible regardless of producer ordering).
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].from != entries[j].from {
			return entries[i].from < entries[j].from
		}
		return entries[i].to < entries[j].to
	})
	for _, e := range entries {
		t.od[e.from-1][e.to-1] += e.vol
	}
	return t, nil
}
