// Multi-operand unrolled block kernels: the join plane's inner loops at
// the memory-bandwidth ceiling.
//
// The fused kernels of fused.go removed materialization; these loops
// remove the remaining per-word overheads. Three structural facts make
// that possible:
//
//  1. Every bitmap length is a power of two ≥ 64 bits, so a join output
//     of `words` words decomposes into aligned blocks of blockWords
//     words, and for any operand of w ≥ blockWords words, an aligned
//     block offset off (a multiple of blockWords) satisfies
//     off mod w = off & (w-blockWords): the operand's contribution to a
//     block is one *contiguous* run of blockWords words. Replication
//     indexing inside a block is therefore plain slice-offset
//     arithmetic — the per-word modular masks of the word(i) path
//     vanish from the inner loop.
//  2. Operands *smaller* than one block divide blockWords, so their
//     virtual expansion restricted to any aligned block is the same
//     blockWords-word pattern every time (off mod w = 0). All such
//     operands collapse, before the main loop, into one pre-joined
//     block-sized pattern (gatherPat) — equal-length grouping taken to
//     its limit.
//  3. AND/OR joins are word-wise, so up to maxFusedOperands operands
//     fold into eight in-register accumulators per block: each output
//     word is computed in registers from one load per operand, then
//     counted (and for the Into kernels stored) exactly once. A t-way
//     join streams every operand once and touches the output once,
//     instead of making t read-modify-write passes over dst.
//
// For joins wider than maxFusedOperands the operands are folded in
// chunks, which would re-stream dst once per chunk; block.go instead
// tiles the traversal (joinOnesTiled/joinIntoTiled) so each output tile
// stays cache-resident across all chunk passes — the output is read
// from memory once no matter how large it is or how many operands fold
// into it. The tile size comes from a one-shot cache probe at init,
// overridable with the PTM_JOIN_BLOCK environment knob or
// SetJoinBlockBytes (see DESIGN.md §13).
//
// Every path below is differentially tested against joinIntoByWord and
// the materialized ExpandTo pipeline (fused_test.go, FuzzFusedJoin,
// FuzzFusedJoinWide).

package bitmap

import (
	"fmt"
	"math/bits"
	"os"
	"strconv"
	"sync/atomic"
	"time"
)

const (
	// blockWords is the unroll factor of the inner loops: eight 64-bit
	// accumulators per block, matching the eight-wide register budget of
	// amd64 with room for the per-operand block pointer.
	blockWords = 8

	// maxFusedOperands caps how many operand streams the single-pass
	// register kernels fold per output block. Beyond it the tiled path
	// takes over. Sixteen covers every period count the paper evaluates
	// (t ≤ 10) with headroom, and stays within what the hardware
	// prefetchers track as concurrent streams.
	maxFusedOperands = 16

	// tileStackWords bounds the stack-resident tile of the count-only
	// tiled kernel (32 KiB — safely inside any L1d/L2 and far below the
	// compiler's stack-object limit).
	tileStackWords = 4096
)

// joinBlockBytes is the cache-block knob for the tiled traversal, in
// bytes. It is read with an atomic load on the kernel paths so tests and
// operators may retune it at runtime.
var joinBlockBytes atomic.Int64

// DefaultJoinBlockBytes is the tile size used when the init-time cache
// probe is inconclusive (e.g. under a coarse clock): 256 KiB sits inside
// every L2 this code plausibly runs on while amortizing per-tile setup.
const DefaultJoinBlockBytes = 1 << 18

func init() {
	if v := os.Getenv("PTM_JOIN_BLOCK"); v != "" {
		if kib, err := strconv.Atoi(v); err == nil {
			if SetJoinBlockBytes(kib*1024) == nil {
				return
			}
		}
		// A malformed knob falls through to the probe rather than
		// silently running with a nonsense tile.
	}
	joinBlockBytes.Store(int64(probeJoinBlockBytes()))
}

// SetJoinBlockBytes overrides the cache-block size used by the tiled
// join traversal. n must be at least one block (64 bytes) and at most
// 1 GiB; it is rounded down to a whole number of blocks on use. The
// PTM_JOIN_BLOCK environment variable (in KiB) sets the same knob at
// process start. Concurrent use with running joins is safe (the knob is
// read atomically once per join).
func SetJoinBlockBytes(n int) error {
	if n < blockWords*8 || n > 1<<30 {
		return fmt.Errorf("bitmap: join block %d bytes out of range [%d, %d]", n, blockWords*8, 1<<30)
	}
	joinBlockBytes.Store(int64(n))
	return nil
}

// JoinBlockBytes returns the current cache-block size of the tiled join
// traversal.
func JoinBlockBytes() int { return int(joinBlockBytes.Load()) }

// tileWords returns the knob as a word count, clamped to whole blocks.
//
//ptm:noalloc
func tileWords() int {
	n := int(joinBlockBytes.Load()) / 8
	n &^= blockWords - 1
	if n < blockWords {
		n = blockWords
	}
	return n
}

// probeJoinBlockBytes sizes the cache block with a small one-shot
// measurement: it times repeated scans of windows of increasing size and
// picks half the largest window that still runs at near-L1/L2 speed.
// Total probe traffic is ~20 MiB (a few milliseconds once, at package
// init). The result only affects performance, never results, so a noisy
// probe is harmless; the PTM_JOIN_BLOCK knob pins it for reproducible
// benchmarking.
func probeJoinBlockBytes() int {
	const traffic = 1 << 19 // words per candidate (4 MiB of loads)
	sizes := []int{1 << 15, 1 << 17, 1 << 19, 1 << 21, 1 << 22}
	buf := make([]uint64, sizes[len(sizes)-1]/8)
	for i := range buf {
		buf[i] = uint64(i) // fault the pages in
	}
	var sink uint64
	perWord := make([]float64, len(sizes))
	for i, s := range sizes {
		w := s / 8
		passes := traffic / w
		if passes < 1 {
			passes = 1
		}
		// One warm-up pass, then the timed passes.
		for _, v := range buf[:w] {
			sink += v
		}
		start := time.Now()
		for p := 0; p < passes; p++ {
			for _, v := range buf[:w] {
				sink += v
			}
		}
		el := time.Since(start)
		perWord[i] = float64(el.Nanoseconds()) / float64(passes*w)
	}
	runtimeSink = sink
	if perWord[0] <= 0 {
		return DefaultJoinBlockBytes // clock too coarse to trust
	}
	best := sizes[0]
	for i, s := range sizes {
		if perWord[i] <= perWord[0]*1.3 {
			best = s
		}
	}
	// Half the fast window: the tile shares the cache with up to
	// maxFusedOperands operand streams.
	return best / 2
}

// runtimeSink defeats dead-code elimination of the probe loops.
var runtimeSink uint64

// gatherPat collapses every operand smaller than one block into a single
// pre-joined block-sized pattern: such an operand's length divides
// blockWords, so its virtual expansion contributes the same blockWords
// words to every aligned block. Returns whether any small operand
// existed (pat is the join identity otherwise).
//
// The emptiness continue is unreachable (New enforces ≥ 64 bits) but
// hands prove the len ≥ 1 fact for the masked index.
//
//ptm:exclusive join plane reads sealed records
//ptm:noalloc
//ptm:nobce
func gatherPat(ms []*Bitmap, pat *[blockWords]uint64, and bool) bool {
	if and {
		for i := range pat {
			pat[i] = ^uint64(0)
		}
	} else {
		for i := range pat {
			pat[i] = 0
		}
	}
	has := false
	for _, o := range ms {
		ow := o.words
		if len(ow) >= blockWords || len(ow) == 0 {
			continue
		}
		has = true
		mask := len(ow) - 1
		if and {
			for i := range pat {
				pat[i] &= ow[i&mask]
			}
		} else {
			for i := range pat {
				pat[i] |= ow[i&mask]
			}
		}
	}
	return has
}

// gatherOps collects the block-sized-or-larger operand word slices in
// input order. It reports ok=false when they exceed maxFusedOperands, in
// which case the caller must take the tiled chunked path. Callers append
// the collapsed small-operand pattern (gatherPat) themselves — the
// pattern slice must be formed where pat is a local, or escape analysis
// would see a store of pat's address through a pointer parameter and
// heap-allocate it, breaking the kernels' noalloc contract.
//
// Setup code, not a per-word loop: it runs once per join over t operand
// headers, so it carries the noalloc contract but not nobce (prove
// cannot see the ops[n] store's lower bound through the loop phi, and a
// once-per-operand check costs nothing).
//
//ptm:exclusive join plane reads sealed records
//ptm:noalloc
func gatherOps(ms []*Bitmap, ops *[maxFusedOperands][]uint64) (int, bool) {
	n := 0
	for _, o := range ms {
		if len(o.words) < blockWords {
			continue
		}
		if n >= len(ops) {
			return 0, false
		}
		ops[n] = o.words
		n++
	}
	return n, true
}

// joinOnesRegs is the single-pass count-only kernel: per aligned block
// of eight output words it folds every operand into eight in-register
// accumulators (one load per operand per word, no modular masks — the
// block base off & (len-blockWords) is the whole replication story) and
// fuses the popcount into the same pass. words must be a multiple of
// blockWords; every operand must be at least one block long (gatherOps
// guarantees both — the in-loop guards are unreachable but give prove
// the length facts that discharge every bounds check).
//
//ptm:exclusive join plane reads sealed records
//ptm:noalloc
//ptm:nobce
func joinOnesRegs(words int, ops [][]uint64, and bool) int {
	if len(ops) == 0 {
		return 0
	}
	first := ops[0]
	rest := ops[1:]
	ones := 0
	for off := 0; off+blockWords <= words; off += blockWords {
		var a0, a1, a2, a3, a4, a5, a6, a7 uint64
		if len(first) >= blockWords {
			fb := first[off&(len(first)-blockWords):]
			if len(fb) >= blockWords {
				a0, a1, a2, a3 = fb[0], fb[1], fb[2], fb[3]
				a4, a5, a6, a7 = fb[4], fb[5], fb[6], fb[7]
			}
		}
		if and {
			for _, ow := range rest {
				if len(ow) < blockWords {
					continue
				}
				ob := ow[off&(len(ow)-blockWords):]
				if len(ob) < blockWords {
					continue
				}
				a0 &= ob[0]
				a1 &= ob[1]
				a2 &= ob[2]
				a3 &= ob[3]
				a4 &= ob[4]
				a5 &= ob[5]
				a6 &= ob[6]
				a7 &= ob[7]
			}
		} else {
			for _, ow := range rest {
				if len(ow) < blockWords {
					continue
				}
				ob := ow[off&(len(ow)-blockWords):]
				if len(ob) < blockWords {
					continue
				}
				a0 |= ob[0]
				a1 |= ob[1]
				a2 |= ob[2]
				a3 |= ob[3]
				a4 |= ob[4]
				a5 |= ob[5]
				a6 |= ob[6]
				a7 |= ob[7]
			}
		}
		ones += bits.OnesCount64(a0) + bits.OnesCount64(a1) +
			bits.OnesCount64(a2) + bits.OnesCount64(a3) +
			bits.OnesCount64(a4) + bits.OnesCount64(a5) +
			bits.OnesCount64(a6) + bits.OnesCount64(a7)
	}
	return ones
}

// joinIntoRegs is joinOnesRegs with the store: each output block is
// computed in registers from one load per operand, stored once, and
// counted in the same pass — dst streams through the cache exactly once
// regardless of the operand count. Because every operand's block is read
// before the block is stored, dst may alias an equal-size operand (the
// only aliasing Go's allocator can produce here).
//
//ptm:exclusive join plane operates on sealed records and a caller-owned dst
//ptm:noalloc
//ptm:nobce
func joinIntoRegs(dw []uint64, ops [][]uint64, and bool) int {
	if len(ops) == 0 {
		return 0
	}
	first := ops[0]
	rest := ops[1:]
	ones := 0
	off := 0
	for rem := dw; len(rem) >= blockWords; rem = rem[blockWords:] {
		blk := rem[:blockWords]
		var a0, a1, a2, a3, a4, a5, a6, a7 uint64
		if len(first) >= blockWords {
			fb := first[off&(len(first)-blockWords):]
			if len(fb) >= blockWords {
				a0, a1, a2, a3 = fb[0], fb[1], fb[2], fb[3]
				a4, a5, a6, a7 = fb[4], fb[5], fb[6], fb[7]
			}
		}
		if and {
			for _, ow := range rest {
				if len(ow) < blockWords {
					continue
				}
				ob := ow[off&(len(ow)-blockWords):]
				if len(ob) < blockWords {
					continue
				}
				a0 &= ob[0]
				a1 &= ob[1]
				a2 &= ob[2]
				a3 &= ob[3]
				a4 &= ob[4]
				a5 &= ob[5]
				a6 &= ob[6]
				a7 &= ob[7]
			}
		} else {
			for _, ow := range rest {
				if len(ow) < blockWords {
					continue
				}
				ob := ow[off&(len(ow)-blockWords):]
				if len(ob) < blockWords {
					continue
				}
				a0 |= ob[0]
				a1 |= ob[1]
				a2 |= ob[2]
				a3 |= ob[3]
				a4 |= ob[4]
				a5 |= ob[5]
				a6 |= ob[6]
				a7 |= ob[7]
			}
		}
		blk[0], blk[1], blk[2], blk[3] = a0, a1, a2, a3
		blk[4], blk[5], blk[6], blk[7] = a4, a5, a6, a7
		ones += bits.OnesCount64(a0) + bits.OnesCount64(a1) +
			bits.OnesCount64(a2) + bits.OnesCount64(a3) +
			bits.OnesCount64(a4) + bits.OnesCount64(a5) +
			bits.OnesCount64(a6) + bits.OnesCount64(a7)
		off += blockWords
	}
	return ones
}

// foldIntoMs accumulates one window of operands into dst (one tile of
// the full output, whose first word is global word off0), using the same
// 8-way register blocks as joinIntoRegs but reading dst as the partial
// join (the tile was seeded by patFill). Operands smaller than one block
// are skipped — their contribution is already in the seed. dst's length
// must be a multiple of blockWords.
//
//ptm:exclusive join plane operates on sealed records and a caller-owned dst
//ptm:noalloc
//ptm:nobce
func foldIntoMs(dst []uint64, off0 int, ms []*Bitmap, and bool) {
	off := off0
	for rem := dst; len(rem) >= blockWords; rem = rem[blockWords:] {
		blk := rem[:blockWords]
		a0, a1, a2, a3 := blk[0], blk[1], blk[2], blk[3]
		a4, a5, a6, a7 := blk[4], blk[5], blk[6], blk[7]
		if and {
			for _, o := range ms {
				ow := o.words
				if len(ow) < blockWords {
					continue
				}
				ob := ow[off&(len(ow)-blockWords):]
				if len(ob) < blockWords {
					continue
				}
				a0 &= ob[0]
				a1 &= ob[1]
				a2 &= ob[2]
				a3 &= ob[3]
				a4 &= ob[4]
				a5 &= ob[5]
				a6 &= ob[6]
				a7 &= ob[7]
			}
		} else {
			for _, o := range ms {
				ow := o.words
				if len(ow) < blockWords {
					continue
				}
				ob := ow[off&(len(ow)-blockWords):]
				if len(ob) < blockWords {
					continue
				}
				a0 |= ob[0]
				a1 |= ob[1]
				a2 |= ob[2]
				a3 |= ob[3]
				a4 |= ob[4]
				a5 |= ob[5]
				a6 |= ob[6]
				a7 |= ob[7]
			}
		}
		blk[0], blk[1], blk[2], blk[3] = a0, a1, a2, a3
		blk[4], blk[5], blk[6], blk[7] = a4, a5, a6, a7
		off += blockWords
	}
}

// patFill seeds a tile with the collapsed small-operand pattern
// replicated (every aligned block sees the same pattern, so the seed is
// position-independent). When no small operands exist the pattern is the
// join identity and the seed reduces dst to "fold everything from
// scratch".
//
//ptm:exclusive join plane operates on a caller-owned dst
//ptm:noalloc
//ptm:nobce
func patFill(dst []uint64, pat *[blockWords]uint64) {
	for i := range dst {
		dst[i] = pat[i&(blockWords-1)]
	}
}

// popcountWords counts the one bits of a word slice (the tile flush of
// the tiled kernels; the tile is cache-hot when it runs).
//
//ptm:noalloc
func popcountWords(ws []uint64) int {
	n := 0
	for _, w := range ws {
		n += bits.OnesCount64(w)
	}
	return n
}

// joinOnesTiled is the count-only kernel for joins wider than
// maxFusedOperands: the output is tiled into a stack-resident buffer,
// each tile is seeded with the collapsed small-operand pattern (the join
// identity when none exist) and then endures one register-fold pass per
// window of maxFusedOperands operands while L1-hot — the cache-blocked
// traversal of DESIGN.md §13. No output words ever touch main memory.
//
// The slice-window forms (sub = sub[:remWords] under a direct len
// comparison, rest consumed by branch-local reslicing) are what lets the
// prove pass discharge every bounds check; arithmetic n := words - base
// forms do not.
//
//ptm:exclusive join plane reads sealed records
//ptm:noalloc
//ptm:nobce
func joinOnesTiled(ms []*Bitmap, words int, and bool) int {
	var pat [blockWords]uint64
	gatherPat(ms, &pat, and)
	var tile [tileStackWords]uint64
	tw := tileWords()
	if tw < blockWords {
		tw = blockWords
	}
	ones := 0
	base := 0
	for remWords := words; remWords > 0; {
		sub := tile[:]
		if len(sub) > remWords {
			sub = sub[:remWords]
		}
		if len(sub) > tw {
			sub = sub[:tw]
		}
		patFill(sub, &pat)
		for rest := ms; len(rest) > 0; {
			c := rest
			if len(rest) > maxFusedOperands {
				c = rest[:maxFusedOperands]
				rest = rest[maxFusedOperands:]
			} else {
				rest = nil
			}
			foldIntoMs(sub, base, c, and)
		}
		ones += popcountWords(sub)
		base += len(sub)
		remWords -= len(sub)
	}
	return ones
}

// joinIntoTiled is joinOnesTiled writing the real output: dst is walked
// in cache-block tiles, each tile seeded from the small-operand pattern
// and absorbing every operand window while cache-resident, then counted
// — dst streams from main memory once even when the operand count forces
// multiple fold passes. The caller must have ruled out operands aliasing
// dst (joinInto falls back to joinIntoByWord for that: the seed
// overwrites dst before the folds read the operands).
//
//ptm:exclusive join plane operates on sealed records and a caller-owned dst
//ptm:noalloc
//ptm:nobce
func joinIntoTiled(dst *Bitmap, ms []*Bitmap, and bool) int {
	var pat [blockWords]uint64
	gatherPat(ms, &pat, and)
	tw := tileWords()
	if tw < blockWords {
		tw = blockWords
	}
	ones := 0
	base := 0
	for rem := dst.words; len(rem) > 0; {
		sub := rem
		if len(rem) > tw {
			sub = rem[:tw]
			rem = rem[tw:]
		} else {
			rem = nil
		}
		patFill(sub, &pat)
		for rest := ms; len(rest) > 0; {
			c := rest
			if len(rest) > maxFusedOperands {
				c = rest[:maxFusedOperands]
				rest = rest[maxFusedOperands:]
			} else {
				rest = nil
			}
			foldIntoMs(sub, base, c, and)
		}
		ones += popcountWords(sub)
		base += len(sub)
	}
	return ones
}

// joinOnesBlocked dispatches a ≥3-operand (or any block-sized) count-only
// join to the register kernel, or to the tiled kernel when the operand
// streams exceed the register budget.
//
//ptm:exclusive join plane reads sealed records
//ptm:noalloc
func joinOnesBlocked(ms []*Bitmap, words int, and bool) int {
	var ops [maxFusedOperands][]uint64
	var pat [blockWords]uint64
	n, ok := gatherOps(ms, &ops)
	if ok && gatherPat(ms, &pat, and) {
		if n == len(ops) {
			ok = false
		} else {
			ops[n] = pat[:]
			n++
		}
	}
	if ok {
		return joinOnesRegs(words, ops[:n], and)
	}
	return joinOnesTiled(ms, words, and)
}
