package bitmap

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hardens the record parser against hostile or corrupted
// uploads: it must never panic, and anything it accepts must round-trip.
func FuzzUnmarshal(f *testing.F) {
	b := MustNew(128)
	b.Set(3)
	b.Set(77)
	good, err := b.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0x42, 0x54, 0x4d, 0x50})
	truncated := good[:len(good)-2]
	f.Add(truncated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted bitmap failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted bitmap does not round-trip")
		}
	})
}
