// Package bitmap implements the word-packed bit vectors that serve as the
// paper's "traffic records" (Section II-D) and the join operations used by
// the persistent-traffic estimators (Sections III-A and IV-A).
//
// A Bitmap always has a power-of-two length so that the replication-based
// expansion of Section III-A is well defined: a record of l bits is expanded
// to m >= l bits (both powers of two) by repeating it m/l times, which
// preserves the invariant that bit (h mod m) of the expansion equals bit
// (h mod l) of the original for every 64-bit hash value h.
package bitmap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/bits"
	"sync/atomic"
)

// MaxBits caps the size of a single bitmap. 2^30 bits = 128 MiB, far above
// any per-RSU record the paper contemplates (m is a few times the period's
// traffic volume), while keeping accidental misuse from exhausting memory.
const MaxBits = 1 << 30

const wordBits = 64

// Common errors returned by this package.
var (
	ErrSizeNotPowerOfTwo = errors.New("bitmap: size must be a power of two")
	ErrSizeOutOfRange    = errors.New("bitmap: size out of range")
	ErrSizeMismatch      = errors.New("bitmap: operand sizes differ")
	ErrShrink            = errors.New("bitmap: cannot expand to a smaller size")
	ErrCorrupt           = errors.New("bitmap: corrupt serialized data")
)

// Bitmap is a fixed-size bit vector with a power-of-two number of bits.
// The zero value is not usable; construct with New or Unmarshal.
type Bitmap struct {
	words []uint64
	nbits int
}

// New returns an all-zero bitmap with n bits. n must be a power of two in
// [64, MaxBits]. (Sizes below one machine word would be statistically
// useless for counting and complicate word-level joins for no benefit.)
func New(n int) (*Bitmap, error) {
	if n < wordBits || n > MaxBits {
		return nil, fmt.Errorf("%w: %d not in [%d, %d]", ErrSizeOutOfRange, n, wordBits, MaxBits)
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("%w: %d", ErrSizeNotPowerOfTwo, n)
	}
	return &Bitmap{words: make([]uint64, n/wordBits), nbits: n}, nil
}

// MustNew is New for sizes known to be valid at compile time; it panics on
// error and is intended for tests and internal constants.
func MustNew(n int) *Bitmap {
	b, err := New(n)
	if err != nil {
		panic(err)
	}
	return b
}

// FromWords returns a Bitmap view over an existing word slice without
// copying: the bitmap and the caller share storage. len(words) must be a
// power of two in [1, MaxBits/64]. This is the zero-deserialization entry
// point of the out-of-core store: a checkpoint segment's mapped pages are
// wrapped directly and joined by the fused kernels.
//
// The view carries the caller's mutability: wrapping words that live in a
// read-only mapping (a mapped segment) yields a bitmap on which any write
// (Set, Reset, And, ...) faults. Treat such views as sealed records —
// exactly what the join plane's //ptm:exclusive contracts already assume.
//
//ptm:exclusive constructs a view not yet published
func FromWords(words []uint64) (*Bitmap, error) {
	n := len(words)
	if n < 1 || n > MaxBits/wordBits {
		return nil, fmt.Errorf("%w: %d words not in [1, %d]", ErrSizeOutOfRange, n, MaxBits/wordBits)
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("%w: %d words", ErrSizeNotPowerOfTwo, n)
	}
	return &Bitmap{words: words, nbits: n * wordBits}, nil
}

// Uint64s returns the bitmap's backing words (bit i lives at
// words[i/64] bit i%64, the little-endian layout the segment format
// stores verbatim). The slice is the bitmap's own storage: callers must
// treat it as read-only. It is the inverse of FromWords.
//
//ptm:exclusive segment writers read sealed records
//ptm:noalloc
//ptm:inline
func (b *Bitmap) Uint64s() []uint64 { return b.words }

// Size returns the number of bits.
//
//ptm:noalloc
//ptm:inline
func (b *Bitmap) Size() int { return b.nbits }

// Words returns the number of 64-bit words backing the bitmap.
//
//ptm:noalloc
//ptm:inline
func (b *Bitmap) Words() int { return len(b.words) }

// Set sets bit i to one. Callers index with a hash value already reduced
// modulo Size; Set reduces again defensively so a hostile or buggy report
// cannot write out of range.
//
//ptm:sink bitmap write
//ptm:exclusive single-writer ingest path; concurrent folds use AtomicSet
//ptm:noalloc
//ptm:inline
func (b *Bitmap) Set(i uint64) {
	i &= uint64(b.nbits - 1) // nbits is a power of two
	b.words[i/wordBits] |= 1 << (i % wordBits)
}

// AtomicSet sets bit i to one with an atomic OR on the backing word, so
// any number of goroutines may fold reports into the same bitmap
// concurrently and no update is lost. Setting one pseudo-random bit is
// idempotent and order-free (Section II-D), so concurrent OR implements
// exactly the paper's ingest semantics. Concurrent readers must use the
// Atomic* accessors; plain reads (Ones, MarshalBinary, ...) are safe only
// after a happens-before edge with every writer — the RSU's period
// rotation provides one before a record leaves the ingest plane.
//
//ptm:sink bitmap write
//ptm:noalloc
//ptm:inline
func (b *Bitmap) AtomicSet(i uint64) {
	i &= uint64(b.nbits - 1) // nbits is a power of two
	atomic.OrUint64(&b.words[i/wordBits], 1<<(i%wordBits))
}

// AtomicGet reports whether bit i is one, using an atomic load so it may
// run concurrently with AtomicSet writers.
//
//ptm:noalloc
//ptm:inline
func (b *Bitmap) AtomicGet(i uint64) bool {
	i &= uint64(b.nbits - 1)
	return atomic.LoadUint64(&b.words[i/wordBits])&(1<<(i%wordBits)) != 0
}

// AtomicOnes counts one bits with atomic word loads. Concurrent
// AtomicSet writers may land during the scan, so the count is a live
// lower bound: every bit set before the call is counted, bits set during
// it may or may not be. (Bits are never cleared concurrently, so the
// result is always the exact count of some moment between entry and
// return.)
//
//ptm:noalloc
func (b *Bitmap) AtomicOnes() int {
	n := 0
	for i := range b.words {
		n += bits.OnesCount64(atomic.LoadUint64(&b.words[i]))
	}
	return n
}

// AtomicFractionOne is FractionOne over an AtomicOnes snapshot, for
// observability of a bitmap that is still being written.
//
//ptm:noalloc
func (b *Bitmap) AtomicFractionOne() float64 {
	return float64(b.AtomicOnes()) / float64(b.nbits)
}

// Get reports whether bit i is one. Indexes are reduced modulo Size.
//
//ptm:exclusive quiescent read; concurrent readers use AtomicGet
//ptm:noalloc
//ptm:inline
func (b *Bitmap) Get(i uint64) bool {
	i &= uint64(b.nbits - 1)
	return b.words[i/wordBits]&(1<<(i%wordBits)) != 0
}

// Reset clears every bit, making the bitmap ready for a new measurement
// period (Section II-D: "At the beginning of each measurement period, the
// bits in B are reset to zeros").
//
//ptm:exclusive period rotation; no reports are in flight when a bitmap is reset
func (b *Bitmap) Reset() {
	clear(b.words)
}

// Ones returns the number of one bits.
//
//ptm:exclusive quiescent read after the rotation happens-before edge; live counts use AtomicOnes
//ptm:noalloc
func (b *Bitmap) Ones() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Zeros returns the number of zero bits.
//
//ptm:noalloc
func (b *Bitmap) Zeros() int { return b.nbits - b.Ones() }

// FractionZero returns V0, the fraction of bits that are zero, as used by
// the linear-counting estimator of Eq. (1).
//
//ptm:noalloc
func (b *Bitmap) FractionZero() float64 {
	return float64(b.Zeros()) / float64(b.nbits)
}

// FractionOne returns V1, the fraction of bits that are one (Eq. 8).
//
//ptm:noalloc
func (b *Bitmap) FractionOne() float64 {
	return float64(b.Ones()) / float64(b.nbits)
}

// Clone returns a deep copy.
//
//ptm:exclusive quiescent copy; sealed records only
func (b *Bitmap) Clone() *Bitmap {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitmap{words: w, nbits: b.nbits}
}

// Equal reports whether two bitmaps have the same size and contents.
//
//ptm:exclusive quiescent comparison; sealed records only
func (b *Bitmap) Equal(o *Bitmap) bool {
	if o == nil || b.nbits != o.nbits {
		return false
	}
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// And sets b to the bitwise AND of b and o. The sizes must match; expand
// the smaller operand first (Section III-A).
//
//ptm:exclusive join plane operates on sealed records
func (b *Bitmap) And(o *Bitmap) error {
	if b.nbits != o.nbits {
		return fmt.Errorf("%w: %d vs %d", ErrSizeMismatch, b.nbits, o.nbits)
	}
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
	return nil
}

// Or sets b to the bitwise OR of b and o. The sizes must match. OR is the
// second-level join of the point-to-point estimator (Section IV-A).
//
//ptm:exclusive join plane operates on sealed records
func (b *Bitmap) Or(o *Bitmap) error {
	if b.nbits != o.nbits {
		return fmt.Errorf("%w: %d vs %d", ErrSizeMismatch, b.nbits, o.nbits)
	}
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
	return nil
}

// ExpandTo returns the bitmap replicated to n bits (Section III-A,
// Figure 2): the l-bit contents are repeated n/l times. n must be a
// power of two >= Size. When n == Size the receiver itself is returned,
// matching the paper's "if l_j = m then E_j is simply B_j"; callers that
// mutate the result must Clone first.
//
//ptm:exclusive join plane operates on sealed records
func (b *Bitmap) ExpandTo(n int) (*Bitmap, error) {
	if n == b.nbits {
		return b, nil
	}
	if n < b.nbits {
		return nil, fmt.Errorf("%w: %d -> %d", ErrShrink, b.nbits, n)
	}
	e, err := New(n)
	if err != nil {
		return nil, err
	}
	for off := 0; off < len(e.words); off += len(b.words) {
		copy(e.words[off:off+len(b.words)], b.words)
	}
	return e, nil
}

// AndAll AND-joins the given bitmaps after expanding each to the largest
// size present (the Π -> E* pipeline of Section III-A) and returns the
// result as a fresh bitmap. It requires at least one operand.
func AndAll(ms []*Bitmap) (*Bitmap, error) {
	return joinAll(ms, (*Bitmap).And)
}

// OrAll OR-joins the given bitmaps after expanding each to the largest size
// present. It requires at least one operand.
func OrAll(ms []*Bitmap) (*Bitmap, error) {
	return joinAll(ms, (*Bitmap).Or)
}

func joinAll(ms []*Bitmap, op func(*Bitmap, *Bitmap) error) (*Bitmap, error) {
	if len(ms) == 0 {
		return nil, errors.New("bitmap: join of zero bitmaps")
	}
	m := 0
	for _, b := range ms {
		if b.Size() > m {
			m = b.Size()
		}
	}
	first, err := ms[0].ExpandTo(m)
	if err != nil {
		return nil, err
	}
	out := first.Clone()
	for _, b := range ms[1:] {
		e, err := b.ExpandTo(m)
		if err != nil {
			return nil, err
		}
		if err := op(out, e); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// String summarizes the bitmap for debugging.
func (b *Bitmap) String() string {
	return fmt.Sprintf("bitmap{bits=%d ones=%d}", b.nbits, b.Ones())
}

// Serialized layout (little endian):
//
//	magic   uint32  "PTMB"
//	version uint8   1
//	_       [3]byte reserved, zero
//	nbits   uint32
//	words   nbits/8 bytes
//	crc32   uint32  IEEE, over everything above
const (
	marshalMagic   = 0x504d5442 // "PTMB" read as little-endian uint32 of 'B','T','M','P'
	marshalVersion = 1
	headerLen      = 4 + 1 + 3 + 4
)

// MarshalBinary serializes the bitmap with a CRC32 trailer so that records
// damaged in transit or storage are rejected rather than silently skewing
// the estimators.
//
//ptm:sink bitmap serialization
//ptm:exclusive serialization of a sealed record
func (b *Bitmap) MarshalBinary() ([]byte, error) {
	return b.AppendBinary(nil)
}

// AppendBinary appends the MarshalBinary encoding to dst and returns the
// extended slice, reusing dst's capacity. Streaming writers (the
// snapshot and WAL paths) call it with a scratch buffer so serializing n
// records costs zero steady-state allocations instead of n.
//
//ptm:sink bitmap serialization
//ptm:exclusive serialization of a sealed record
func (b *Bitmap) AppendBinary(dst []byte) ([]byte, error) {
	base := len(dst)
	n := headerLen + len(b.words)*8 + 4
	if cap(dst)-base < n {
		grown := make([]byte, base, base+n)
		copy(grown, dst)
		dst = grown
	}
	out := dst[base : base+n]
	binary.LittleEndian.PutUint32(out[0:4], marshalMagic)
	out[4] = marshalVersion
	out[5], out[6], out[7] = 0, 0, 0
	binary.LittleEndian.PutUint32(out[8:12], uint32(b.nbits))
	for i, w := range b.words {
		binary.LittleEndian.PutUint64(out[headerLen+i*8:], w)
	}
	sum := crc32.ChecksumIEEE(out[:len(out)-4])
	binary.LittleEndian.PutUint32(out[len(out)-4:], sum)
	return dst[:base+n], nil
}

// Unmarshal parses a bitmap serialized by MarshalBinary, verifying the
// magic, version, size constraints, and checksum.
//
//ptm:exclusive constructs a fresh bitmap not yet published
func Unmarshal(data []byte) (*Bitmap, error) {
	if len(data) < headerLen+4 {
		return nil, fmt.Errorf("%w: short buffer (%d bytes)", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data[0:4]) != marshalMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != marshalVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, data[4])
	}
	if data[5] != 0 || data[6] != 0 || data[7] != 0 {
		return nil, fmt.Errorf("%w: nonzero reserved bytes", ErrCorrupt)
	}
	nbits := int(binary.LittleEndian.Uint32(data[8:12]))
	if nbits < wordBits || nbits > MaxBits || nbits&(nbits-1) != 0 {
		return nil, fmt.Errorf("%w: invalid size %d", ErrCorrupt, nbits)
	}
	want := headerLen + nbits/8 + 4
	if len(data) != want {
		return nil, fmt.Errorf("%w: length %d, want %d", ErrCorrupt, len(data), want)
	}
	body := data[:len(data)-4]
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	b, err := New(nbits)
	if err != nil {
		return nil, err
	}
	for i := range b.words {
		b.words[i] = binary.LittleEndian.Uint64(data[headerLen+i*8:])
	}
	return b, nil
}
