package bitmap

import (
	"sync"
	"testing"
)

// TestAtomicSetMatchesSet: the atomic write path must be bit-identical to
// the sequential one for the same index set.
func TestAtomicSetMatchesSet(t *testing.T) {
	seq := MustNew(1 << 12)
	atm := MustNew(1 << 12)
	for i := uint64(0); i < 10000; i++ {
		idx := i * 0x9e3779b97f4a7c15
		seq.Set(idx)
		atm.AtomicSet(idx)
	}
	if !seq.Equal(atm) {
		t.Fatal("atomic and sequential writes diverge")
	}
}

// TestAtomicSetConcurrent: a storm of concurrent writers must lose no
// update — the final bitmap equals the sequential union of every index.
func TestAtomicSetConcurrent(t *testing.T) {
	const (
		workers = 8
		perW    = 5000
	)
	got := MustNew(1 << 10)
	want := MustNew(1 << 10)
	for w := 0; w < workers; w++ {
		for i := 0; i < perW; i++ {
			want.Set(uint64(w*perW+i) * 0x9e3779b97f4a7c15)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				got.AtomicSet(uint64(w*perW+i) * 0x9e3779b97f4a7c15)
			}
		}(w)
	}
	wg.Wait()
	if !got.Equal(want) {
		t.Fatal("concurrent atomic writes lost updates")
	}
	if got.Ones() != got.AtomicOnes() {
		t.Errorf("AtomicOnes = %d, Ones = %d", got.AtomicOnes(), got.Ones())
	}
}

// TestAtomicGet: atomic reads see atomic writes, with the same defensive
// index reduction as the plain accessors.
func TestAtomicGet(t *testing.T) {
	b := MustNew(64)
	b.AtomicSet(7)
	if !b.AtomicGet(7) || !b.AtomicGet(7+64) {
		t.Error("AtomicGet misses a set bit (or skips index reduction)")
	}
	if b.AtomicGet(8) {
		t.Error("AtomicGet reports an unset bit")
	}
	if f := b.AtomicFractionOne(); f != 1.0/64 {
		t.Errorf("AtomicFractionOne = %v", f)
	}
}

// TestAtomicReadsDuringWrites exercises the live-snapshot contract under
// the race detector: Atomic* readers run concurrently with AtomicSet
// writers, and the count only grows.
func TestAtomicReadsDuringWrites(t *testing.T) {
	b := MustNew(1 << 10)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(0); i < 20000; i++ {
			b.AtomicSet(i * 0x9e3779b97f4a7c15)
		}
	}()
	prev := 0
	for {
		n := b.AtomicOnes()
		if n < prev {
			t.Errorf("AtomicOnes went backwards: %d -> %d", prev, n)
		}
		prev = n
		b.AtomicGet(uint64(n))
		select {
		case <-done:
			if got := b.AtomicOnes(); got != b.Ones() {
				t.Errorf("final AtomicOnes = %d, Ones = %d", got, b.Ones())
			}
			return
		default:
		}
	}
}
