//go:build !race

// Zero-allocation regression tests for the //ptm:noalloc hot paths. The
// perfguard lint rule proves these contracts at analysis time from the
// compiler's own escape diagnostics; each assertion here enforces the
// same contract at runtime, one per annotated entry point. The file is
// excluded from -race builds because race instrumentation introduces
// bookkeeping allocations unrelated to the contracts under test.

package bitmap

import "testing"

func requireZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if n := testing.AllocsPerRun(100, fn); n != 0 {
		t.Errorf("%s allocated %.1f times per run, want 0", name, n)
	}
}

func TestHotPathsDoNotAllocate(t *testing.T) {
	a, b := MustNew(1<<10), MustNew(1<<12)
	for i := uint64(0); i < 4000; i += 3 {
		a.Set(i)
		b.Set(i * 7)
	}
	ms := []*Bitmap{a, b}
	dst := MustNew(1 << 12)
	var sinkInt int
	var sinkBool bool
	var sinkFloat float64

	requireZeroAllocs(t, "Set", func() { a.Set(123) })
	requireZeroAllocs(t, "Get", func() { sinkBool = a.Get(123) })
	requireZeroAllocs(t, "AtomicSet", func() { a.AtomicSet(123) })
	requireZeroAllocs(t, "AtomicGet", func() { sinkBool = a.AtomicGet(123) })
	requireZeroAllocs(t, "Ones", func() { sinkInt = a.Ones() })
	requireZeroAllocs(t, "Zeros", func() { sinkInt = a.Zeros() })
	requireZeroAllocs(t, "AtomicOnes", func() { sinkInt = a.AtomicOnes() })
	requireZeroAllocs(t, "FractionZero", func() { sinkFloat = a.FractionZero() })
	requireZeroAllocs(t, "FractionOne", func() { sinkFloat = a.FractionOne() })
	requireZeroAllocs(t, "AtomicFractionOne", func() { sinkFloat = a.AtomicFractionOne() })
	requireZeroAllocs(t, "AndOnes", func() {
		ones, _, err := AndOnes(ms)
		if err != nil {
			t.Fatal(err)
		}
		sinkInt = ones
	})
	requireZeroAllocs(t, "OrOnes", func() {
		ones, _, err := OrOnes(ms)
		if err != nil {
			t.Fatal(err)
		}
		sinkInt = ones
	})
	requireZeroAllocs(t, "AndAllInto", func() {
		ones, err := AndAllInto(dst, ms)
		if err != nil {
			t.Fatal(err)
		}
		sinkInt = ones
	})
	requireZeroAllocs(t, "OrAllInto", func() {
		ones, err := OrAllInto(dst, ms)
		if err != nil {
			t.Fatal(err)
		}
		sinkInt = ones
	})

	_, _, _ = sinkInt, sinkBool, sinkFloat
}

// TestBlockKernelPathsDoNotAllocate steers the fused entry points down
// each of block.go's dispatch arms — register kernels, pattern collapse,
// and the tiled traversal — and requires zero allocations on all of
// them, mirroring the //ptm:noalloc contracts on the new kernels.
func TestBlockKernelPathsDoNotAllocate(t *testing.T) {
	wide := func(n, bitsz int) []*Bitmap {
		ms := make([]*Bitmap, n)
		for i := range ms {
			b := MustNew(bitsz)
			for k := uint64(0); k < uint64(bitsz); k += 3 {
				b.Set(k + uint64(i))
			}
			ms[i] = b
		}
		return ms
	}
	regs := wide(5, 1<<12)                          // ≤ maxFusedOperands larges → register kernels
	mixed := append(wide(5, 1<<12), wide(3, 64)...) // sub-block operands → gatherPat collapse
	tiled := wide(2*maxFusedOperands+1, 1<<12)      // operand overflow → tiled traversal
	dst := MustNew(1 << 12)
	var sinkInt int

	for name, ms := range map[string][]*Bitmap{"regs": regs, "mixed": mixed, "tiled": tiled} {
		ms := ms
		requireZeroAllocs(t, "AndOnes/"+name, func() {
			ones, _, err := AndOnes(ms)
			if err != nil {
				t.Fatal(err)
			}
			sinkInt = ones
		})
		requireZeroAllocs(t, "AndAllInto/"+name, func() {
			ones, err := AndAllInto(dst, ms)
			if err != nil {
				t.Fatal(err)
			}
			sinkInt = ones
		})
	}
	requireZeroAllocs(t, "JoinBlockBytes", func() { sinkInt = JoinBlockBytes() })
	requireZeroAllocs(t, "tileWords", func() { sinkInt = tileWords() })
	_ = sinkInt
}
