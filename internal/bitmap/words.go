// Word-view join entry points: the fused kernels of fused.go/block.go
// over raw []uint64 operands instead of *Bitmap receivers.
//
// The out-of-core store (internal/store) keeps sealed records in mapped
// checkpoint segments whose bitmap words are written little-endian and
// 64-byte aligned, so a mapped record is already the words slice the
// kernels stream over — no unmarshal step, no copy. These entry points
// accept such slices directly; the *Bitmap paths delegate to the same
// underlying kernels (joinOnes2W, joinOnesRegs), so resident and mapped
// operands take one code path and the differential tests of
// words_test.go prove the two views bit-identical.
//
// Every operand must have a power-of-two length in [1, MaxBits/64]
// words, the invariant New and FromWords enforce for *Bitmap — it is
// what makes the replication expansion a mask (DESIGN.md §8).

package bitmap

import (
	"fmt"
	"math/bits"
)

// AndOnesWords returns the popcount of the AND-join of the word-slice
// operands, each virtually expanded to the largest operand's size m
// (returned in bits), without allocating or copying. It is AndOnes for
// operands that are raw words — a mapped segment's record views.
//
//ptm:noalloc
//ptm:inline
func AndOnesWords(ws [][]uint64) (ones, m int, err error) {
	return joinOnesW(ws, true)
}

// OrOnesWords is AndOnesWords for the OR join.
//
//ptm:noalloc
//ptm:inline
func OrOnesWords(ws [][]uint64) (ones, m int, err error) {
	return joinOnesW(ws, false)
}

// joinOnesW validates and dispatches exactly like joinOnes: block-sized
// outputs go to the shared register kernel (small operands collapsed to
// one pattern slot), two-operand joins to joinOnes2W, the rest to the
// modular-mask reference loop. Joins wider than maxFusedOperands take
// the reference loop rather than a word-slice clone of the tiled
// traversal: the wide-join case on the mapped path is bounded by page
// faults, not register pressure, and one loop keeps the kernels shared.
//
//ptm:noalloc
func joinOnesW(ws [][]uint64, and bool) (ones, m int, err error) {
	if len(ws) == 0 {
		return 0, 0, ErrJoinEmpty
	}
	maxWords := 0
	for _, w := range ws {
		n := len(w)
		if n < 1 || n > MaxBits/wordBits || n&(n-1) != 0 {
			return 0, 0, fmt.Errorf("%w: operand of %d words", ErrSizeNotPowerOfTwo, n)
		}
		if n > maxWords {
			maxWords = n
		}
	}
	m = maxWords * wordBits
	if len(ws) == 1 {
		return popcountWords(ws[0]), m, nil
	}
	if maxWords >= blockWords {
		var ops [maxFusedOperands][]uint64
		var pat [blockWords]uint64
		n, ok := gatherOpsW(ws, &ops)
		if ok && gatherPatW(ws, &pat, and) {
			if n == len(ops) {
				ok = false
			} else {
				ops[n] = pat[:]
				n++
			}
		}
		if ok {
			return joinOnesRegs(maxWords, ops[:n], and), m, nil
		}
	}
	if len(ws) == 2 {
		return joinOnes2W(ws[0], ws[1], maxWords, and), m, nil
	}
	return joinOnesByWordW(ws, maxWords, and), m, nil
}

// gatherOpsW is gatherOps over word slices: it collects the
// block-sized-or-larger operands in input order, reporting ok=false when
// they exceed the register kernel's operand budget.
//
//ptm:noalloc
func gatherOpsW(ws [][]uint64, ops *[maxFusedOperands][]uint64) (int, bool) {
	n := 0
	for _, w := range ws {
		if len(w) < blockWords {
			continue
		}
		if n >= len(ops) {
			return 0, false
		}
		ops[n] = w
		n++
	}
	return n, true
}

// gatherPatW is gatherPat over word slices: operands smaller than one
// block divide blockWords, so their virtual expansion contributes the
// same blockWords words to every aligned block and they collapse into a
// single pre-joined pattern. Returns whether any small operand existed.
//
//ptm:noalloc
//ptm:nobce
func gatherPatW(ws [][]uint64, pat *[blockWords]uint64, and bool) bool {
	if and {
		for i := range pat {
			pat[i] = ^uint64(0)
		}
	} else {
		for i := range pat {
			pat[i] = 0
		}
	}
	has := false
	for _, ow := range ws {
		if len(ow) >= blockWords || len(ow) == 0 {
			continue
		}
		has = true
		mask := len(ow) - 1
		if and {
			for i := range pat {
				pat[i] &= ow[i&mask]
			}
		} else {
			for i := range pat {
				pat[i] |= ow[i&mask]
			}
		}
	}
	return has
}

// joinOnesByWordW is the modular-mask reference loop over word slices —
// the word-view twin of joinOnesByWord and the differential oracle for
// the register dispatch above (words_test.go).
//
//ptm:noalloc
func joinOnesByWordW(ws [][]uint64, words int, and bool) int {
	first := ws[0]
	rest := ws[1:]
	if len(first) == 0 {
		return 0
	}
	fm := len(first) - 1
	ones := 0
	for i := 0; i < words; i++ {
		w := first[i&fm]
		if and {
			for _, ow := range rest {
				if len(ow) == 0 {
					continue
				}
				w &= ow[i&(len(ow)-1)]
			}
		} else {
			for _, ow := range rest {
				if len(ow) == 0 {
					continue
				}
				w |= ow[i&(len(ow)-1)]
			}
		}
		ones += bits.OnesCount64(w)
	}
	return ones
}
