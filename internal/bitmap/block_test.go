package bitmap

// Differential tests for the unrolled block kernels and the
// cache-blocked tiled traversal (block.go). The shapes here are chosen
// to pin each dispatch arm of joinOnes/joinInto:
//
//   - ≥ 512-bit outputs with ≤ maxFusedOperands large operands
//     → joinOnesRegs / joinIntoRegs (single-pass register folds)
//   - > maxFusedOperands large operands → joinOnesTiled / joinIntoTiled
//     (pattern-seeded cache-blocked traversal), including with the
//     block knob forced down to one 64-byte block so a single join
//     crosses many tile boundaries
//   - operands smaller than one block → the gatherPat collapse
//   - dst aliasing an operand on the wide path → joinIntoByWord fallback
//
// All of them reuse checkFusedAgainstNaive, so every shape is verified
// against the materialized ExpandTo pipeline for AND and OR, count-only
// and Into, natural-size and replicated-dst, scratch and nil-scratch.

import (
	"math/rand"
	"testing"
)

// randomWideOperands builds an operand list wide enough to overflow the
// register kernels' operand budget: 2..40 bitmaps, sizes 2^6..2^13 bits,
// so lists mix sub-block (64..256-bit) and multi-block operands.
func randomWideOperands(rng *rand.Rand) []*Bitmap {
	t := 2 + rng.Intn(39)
	ms := make([]*Bitmap, t)
	for i := range ms {
		size := 64 << rng.Intn(8) // 2^6 .. 2^13
		b := MustNew(size)
		// Density high enough that deep ANDs stay nonzero sometimes.
		for k := 0; k < size; k++ {
			if rng.Intn(3) > 0 {
				b.Set(uint64(k))
			}
		}
		ms[i] = b
	}
	return ms
}

func TestBlockKernelsWideDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sc := new(JoinScratch)
	for trial := 0; trial < 60; trial++ {
		checkFusedAgainstNaive(t, randomWideOperands(rng), sc)
	}
}

// TestBlockKernelsTinyTiles forces the tiled traversal across many tile
// boundaries by shrinking the cache block to a single 64-byte block, and
// checks a few other knob values on the same shapes.
func TestBlockKernelsTinyTiles(t *testing.T) {
	orig := JoinBlockBytes()
	defer func() {
		if err := SetJoinBlockBytes(orig); err != nil {
			t.Fatalf("restoring join block: %v", err)
		}
	}()
	rng := rand.New(rand.NewSource(22))
	sc := new(JoinScratch)
	for _, block := range []int{64, 128, 1024, 1 << 20} {
		if err := SetJoinBlockBytes(block); err != nil {
			t.Fatalf("SetJoinBlockBytes(%d): %v", block, err)
		}
		if got := JoinBlockBytes(); got != block {
			t.Fatalf("JoinBlockBytes = %d, want %d", got, block)
		}
		for trial := 0; trial < 20; trial++ {
			checkFusedAgainstNaive(t, randomWideOperands(rng), sc)
		}
	}
}

// TestBlockKernelsManyLargeEqual pins the exact register-budget boundary:
// maxFusedOperands, maxFusedOperands+1, and maxFusedOperands+1 large
// operands plus small ones (the pattern occupies no budget slot on the
// tiled path but does on the register path).
func TestBlockKernelsManyLargeEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sc := new(JoinScratch)
	for _, nLarge := range []int{maxFusedOperands - 1, maxFusedOperands, maxFusedOperands + 1, 2*maxFusedOperands + 3} {
		for _, nSmall := range []int{0, 1, 3} {
			ms := make([]*Bitmap, 0, nLarge+nSmall)
			for i := 0; i < nLarge; i++ {
				b := MustNew(1 << 12)
				for k := 0; k < b.Size(); k++ {
					if rng.Intn(4) > 0 {
						b.Set(uint64(k))
					}
				}
				ms = append(ms, b)
			}
			for i := 0; i < nSmall; i++ {
				b := MustNew(64 << (i % 3)) // 64, 128, 256 bits: all sub-block
				for k := 0; k < b.Size(); k++ {
					if rng.Intn(2) == 0 {
						b.Set(uint64(k))
					}
				}
				ms = append(ms, b)
			}
			checkFusedAgainstNaive(t, ms, sc)
		}
	}
}

// TestBlockKernelsAliasedWide covers the one dispatch corner the register
// path cannot absorb: a join too wide for the register kernel whose dst
// aliases an operand, which must take the joinIntoByWord fallback (the
// tiled path seeds dst before reading the operands).
func TestBlockKernelsAliasedWide(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	ms := make([]*Bitmap, maxFusedOperands+4)
	for i := range ms {
		b := MustNew(1 << 12)
		for k := 0; k < b.Size(); k++ {
			if rng.Intn(4) > 0 {
				b.Set(uint64(k))
			}
		}
		ms[i] = b
	}
	for _, and := range []bool{true, false} {
		want := naiveJoin(t, ms, 1<<12, and)
		dst := ms[rng.Intn(len(ms))]
		var ones int
		var err error
		if and {
			ones, err = AndAllInto(dst, ms)
		} else {
			ones, err = OrAllInto(dst, ms)
		}
		if err != nil {
			t.Fatal(err)
		}
		if ones != want.Ones() || !dst.Equal(want) {
			t.Fatalf("aliased wide join (and=%v): ones=%d want=%d equal=%v",
				and, ones, want.Ones(), dst.Equal(want))
		}
		// dst is now the join, not the original operand; rebuild it for
		// the OR round.
		if and {
			fresh := MustNew(1 << 12)
			for k := 0; k < fresh.Size(); k++ {
				if rng.Intn(4) > 0 {
					fresh.Set(uint64(k))
				}
			}
			copy(dst.words, fresh.words)
		}
	}
}

func TestSetJoinBlockBytesValidation(t *testing.T) {
	orig := JoinBlockBytes()
	defer SetJoinBlockBytes(orig)
	for _, bad := range []int{0, -1, 63, 1<<30 + 1} {
		if err := SetJoinBlockBytes(bad); err == nil {
			t.Fatalf("SetJoinBlockBytes(%d) should fail", bad)
		}
	}
	if got := JoinBlockBytes(); got != orig {
		t.Fatalf("rejected knob values must not stick: got %d, want %d", got, orig)
	}
	if orig < 64 || orig > 1<<30 {
		t.Fatalf("probe/default produced out-of-range block %d", orig)
	}
}

// FuzzFusedJoinWide drives the differential harness with fuzzer-chosen
// wide shapes and tile sizes, reaching the register-budget overflow and
// tile-boundary logic FuzzFusedJoin's ≤6 operands cannot.
func FuzzFusedJoinWide(f *testing.F) {
	f.Add(uint8(17), uint16(0x0421), uint8(0), uint64(1))
	f.Add(uint8(33), uint16(0xffff), uint8(3), uint64(42))
	f.Add(uint8(40), uint16(0x8001), uint8(7), uint64(99))
	f.Fuzz(func(t *testing.T, nOps uint8, sizeBits uint16, blockExp uint8, seed uint64) {
		orig := JoinBlockBytes()
		defer SetJoinBlockBytes(orig)
		// 64B..8KiB tiles: one to many blocks per tile.
		if err := SetJoinBlockBytes(64 << (int(blockExp) % 8)); err != nil {
			t.Fatal(err)
		}
		n := int(nOps)%40 + 1
		rng := rand.New(rand.NewSource(int64(seed)))
		ms := make([]*Bitmap, n)
		for i := range ms {
			exp := int(sizeBits>>(3*uint(i%5))) & 7
			b := MustNew(64 << exp)
			for k := rng.Intn(b.Size() + 1); k > 0; k-- {
				b.Set(rng.Uint64())
			}
			ms[i] = b
		}
		checkFusedAgainstNaive(t, ms, new(JoinScratch))
	})
}
