// Fused join kernels: AND/OR joins of mixed-size bitmaps without
// materializing the Section III-A expansions.
//
// The replication expansion has a structural consequence the naive
// ExpandTo pipeline ignores: word i of an l-bit bitmap's expansion to
// m >= l bits is simply word (i mod l/64) of the original, and because
// every size is a power of two the mod is a mask. A join of mixed-size
// operands can therefore stream over the words of the *largest* operand,
// reading each smaller operand through modular indexing — no expansion
// buffer exists at any point. The estimators of internal/core consume
// only the zero/one fractions of joined bitmaps, so the kernels below
// also fuse the bits.OnesCount64 reduction into the same pass: each
// output word is computed, counted, and (for the Into variants) stored
// exactly once.
//
// Correctness of the virtual expansion (DESIGN.md §8): for an l-bit
// bitmap b and any power-of-two m >= l, ExpandTo(m) repeats b's words
// m/l times, so expansion word i equals b.words[i mod (l/64)]. l/64 is a
// power of two (New enforces l >= 64 and power-of-two l — the same
// invariant the pow2size lint rule protects), hence
//
//	expanded.words[i] == b.words[i & (len(b.words)-1)].
//
// Every kernel below is differentially tested against the materialized
// ExpandTo/And/Or/Ones pipeline (fused_test.go, FuzzFusedJoin).

package bitmap

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrJoinEmpty is returned by the join kernels for an empty operand list.
var ErrJoinEmpty = errors.New("bitmap: join of zero bitmaps")

// word returns word i of b's virtual expansion to any size with at least
// i+1 words. len(b.words) is a power of two, so replication makes the
// modular index a mask.
//
//ptm:exclusive join plane reads sealed records
//ptm:noalloc
//ptm:inline
func (b *Bitmap) word(i int) uint64 { return b.words[i&(len(b.words)-1)] }

// MaxSize returns the largest Size among the operands, the common join
// size m of Section III-A. It returns ErrJoinEmpty for an empty list.
//
//ptm:noalloc
func MaxSize(ms []*Bitmap) (int, error) {
	if len(ms) == 0 {
		return 0, ErrJoinEmpty
	}
	m := 0
	for _, b := range ms {
		if b.Size() > m {
			m = b.Size()
		}
	}
	return m, nil
}

// AndOnes returns the number of one bits in AndAll(ms) — the AND-join of
// the operands virtually expanded to the largest size m — together with m
// itself, without allocating anything. This is the fused kernel behind
// the V1 and V0 fractions of Eqs. (8) and (12).
//
//ptm:noalloc
//ptm:inline
func AndOnes(ms []*Bitmap) (ones, m int, err error) {
	return joinOnes(ms, true)
}

// OrOnes is AndOnes for the OR join (the second-level join of
// Section IV-A).
//
//ptm:noalloc
//ptm:inline
func OrOnes(ms []*Bitmap) (ones, m int, err error) {
	return joinOnes(ms, false)
}

//ptm:noalloc
func joinOnes(ms []*Bitmap, and bool) (ones, m int, err error) {
	m, err = MaxSize(ms)
	if err != nil {
		return 0, 0, err
	}
	if len(ms) == 1 {
		return ms[0].Ones(), m, nil
	}
	words := m / wordBits
	// m is a power of two >= 64, so words >= blockWords implies words is a
	// multiple of blockWords — the block kernels' only shape requirement.
	// Popcounts are order-free integers, so rerouting changes no result
	// (the float contract of core.pointFractions is over AndOnes *values*,
	// which are exact).
	if words >= blockWords {
		return joinOnesBlocked(ms, words, and), m, nil
	}
	if len(ms) == 2 {
		return joinOnes2(ms[0], ms[1], words, and), m, nil
	}
	return joinOnesByWord(ms, words, and), m, nil
}

// joinOnesByWord is the pre-block reference loop: one output word at a
// time through the modular word(i) accessor. It remains the differential
// oracle for the unrolled kernels (fused_test.go) and the fallback for
// sub-block outputs (m < 512 bits).
//
//ptm:noalloc
func joinOnesByWord(ms []*Bitmap, words int, and bool) int {
	first := ms[0]
	rest := ms[1:]
	ones := 0
	for i := 0; i < words; i++ {
		w := first.word(i)
		if and {
			for _, o := range rest {
				w &= o.word(i)
			}
		} else {
			for _, o := range rest {
				w |= o.word(i)
			}
		}
		ones += bits.OnesCount64(w)
	}
	return ones
}

// joinOnes2 is the two-operand fast path: every estimator's final
// E_a ∧ E_b and E* ∨ E′* step lands here. It delegates to the word-slice
// kernel shared with the out-of-core store's mapped-page joins.
//
//ptm:exclusive join plane reads sealed records
//ptm:noalloc
//ptm:inline
func joinOnes2(a, b *Bitmap, words int, and bool) int {
	return joinOnes2W(a.words, b.words, words, and)
}

// joinOnes2W is joinOnes2 over raw word slices. The emptiness guard is
// unreachable from the Bitmap path (New enforces >= 64 bits) but hands
// the prove pass the len > 0 fact it needs to eliminate both masked
// bounds checks — and makes the word-view entry points total.
//
//ptm:exclusive join plane reads sealed records
//ptm:noalloc
//ptm:nobce
func joinOnes2W(aw, bw []uint64, words int, and bool) int {
	if len(aw) == 0 || len(bw) == 0 {
		return 0
	}
	am, bm := len(aw)-1, len(bw)-1
	ones := 0
	if and {
		for i := 0; i < words; i++ {
			ones += bits.OnesCount64(aw[i&am] & bw[i&bm])
		}
	} else {
		for i := 0; i < words; i++ {
			ones += bits.OnesCount64(aw[i&am] | bw[i&bm])
		}
	}
	return ones
}

// AndAllInto computes the AND-join of the operands, virtually expanded to
// dst's size, into dst, and returns the join's popcount from the same
// pass. dst must be at least as large as every operand (expansion of the
// join commutes with the join of expansions, so a larger dst holds the
// join replicated). dst may alias an operand of equal size — each word is
// read from every operand before it is written — but must not alias a
// smaller operand (impossible anyway: sizes differ).
//
//ptm:sink bitmap write
//ptm:noalloc
//ptm:inline
func AndAllInto(dst *Bitmap, ms []*Bitmap) (ones int, err error) {
	return joinInto(dst, ms, true)
}

// OrAllInto is AndAllInto for the OR join.
//
//ptm:sink bitmap write
//ptm:noalloc
//ptm:inline
func OrAllInto(dst *Bitmap, ms []*Bitmap) (ones int, err error) {
	return joinInto(dst, ms, false)
}

// aliases reports whether two bitmaps share backing storage. Bitmaps are
// never empty (New enforces >= 64 bits), so first-word identity suffices.
//
// The emptiness guards are unreachable (New enforces >= 64 bits) but let
// the prove pass drop the bounds checks here and at every inlined copy
// inside the //ptm:nobce join kernels.
//
//ptm:exclusive address identity check; no word is read or written
//ptm:noalloc
//ptm:inline
//ptm:nobce
func aliases(a, b *Bitmap) bool {
	aw, bw := a.words, b.words
	return len(aw) > 0 && len(bw) > 0 && &aw[0] == &bw[0]
}

// joinInto validates and dispatches; the unrolled loops themselves live
// in joinIntoRegs/joinIntoTiled (which carry the nobce contract — this
// function's once-per-join gather indexing does not).
//
//ptm:exclusive join plane operates on sealed records and a caller-owned dst
//ptm:noalloc
func joinInto(dst *Bitmap, ms []*Bitmap, and bool) (ones int, err error) {
	// MaxSize would catch the empty list too, but the explicit guard is
	// what lets prove see len(ms) >= 1 at the ms[0] and ms[1:] uses.
	if len(ms) == 0 {
		return 0, ErrJoinEmpty
	}
	m, err := MaxSize(ms)
	if err != nil {
		return 0, err
	}
	if dst.nbits < m {
		return 0, fmt.Errorf("%w: dst %d < operand %d", ErrShrink, dst.nbits, m)
	}
	// Dispatch (DESIGN.md §13): outputs smaller than one block take the
	// word-at-a-time reference loop. Otherwise the single-pass register
	// kernel folds every operand per output block — one load per operand,
	// one store, one popcount per word — and is aliasing-safe by
	// construction (all operand blocks are read before the block is
	// stored). Joins wider than the register budget fall to the tiled
	// traversal, which revisits each dst tile across chunk passes and so
	// must not have dst alias an operand; that rare combination falls
	// back to joinIntoByWord.
	dw := dst.words
	if len(dw) < blockWords {
		return joinIntoByWord(dst, ms, and)
	}
	var ops [maxFusedOperands][]uint64
	var pat [blockWords]uint64
	n, ok := gatherOps(ms, &ops)
	if ok && gatherPat(ms, &pat, and) {
		if n == len(ops) {
			ok = false
		} else {
			ops[n] = pat[:]
			n++
		}
	}
	if ok {
		return joinIntoRegs(dw, ops[:n], and), nil
	}
	for _, o := range ms {
		if aliases(dst, o) {
			return joinIntoByWord(dst, ms, and)
		}
	}
	return joinIntoTiled(dst, ms, and), nil
}

// joinIntoByWord is the aliasing-safe reference loop: each output word is
// computed from every operand (through the modular index) before it is
// stored, so dst may alias any equal-size operand.
//
//ptm:exclusive join plane operates on sealed records and a caller-owned dst
//ptm:noalloc
func joinIntoByWord(dst *Bitmap, ms []*Bitmap, and bool) (ones int, err error) {
	first := ms[0]
	rest := ms[1:]
	for i := range dst.words {
		w := first.word(i)
		if and {
			for _, o := range rest {
				w &= o.word(i)
			}
		} else {
			for _, o := range rest {
				w |= o.word(i)
			}
		}
		dst.words[i] = w
		ones += bits.OnesCount64(w)
	}
	return ones, nil
}

// JoinScratch is a reusable arena for join outputs. A pipeline leases
// output bitmaps with AndAll/OrAll, consumes them, and calls Reset; the
// next cycle reuses the same backing storage, so steady-state join
// pipelines (the ~1000-trial evaluation cells, the daemon's query loop)
// allocate nothing. Leased bitmaps are valid only until the next Reset.
//
// The zero value is ready to use. A nil *JoinScratch is also valid: every
// lease falls back to a fresh allocation, which lets one code path serve
// both the scratch-backed hot loop and one-shot callers.
//
// A JoinScratch is not safe for concurrent use; give each worker its own.
type JoinScratch struct {
	slots []*Bitmap
	used  int
}

// Reset invalidates all leased bitmaps and makes their storage available
// for reuse. Contents are not cleared; every kernel overwrites each word.
func (s *JoinScratch) Reset() {
	if s != nil {
		s.used = 0
	}
}

// lease returns an n-bit bitmap backed by the scratch (or freshly
// allocated for a nil receiver). Its contents are unspecified; callers
// must overwrite every word before reading.
//
//ptm:exclusive scratch arenas are single-owner by contract
func (s *JoinScratch) lease(n int) (*Bitmap, error) {
	if s == nil {
		return New(n)
	}
	if n < wordBits || n > MaxBits {
		return nil, fmt.Errorf("%w: %d not in [%d, %d]", ErrSizeOutOfRange, n, wordBits, MaxBits)
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("%w: %d", ErrSizeNotPowerOfTwo, n)
	}
	if s.used < len(s.slots) {
		b := s.slots[s.used]
		if words := n / wordBits; cap(b.words) < words {
			b.words = make([]uint64, words)
		} else {
			b.words = b.words[:words]
		}
		b.nbits = n
		s.used++
		return b, nil
	}
	b, err := New(n)
	if err != nil {
		return nil, err
	}
	s.slots = append(s.slots, b)
	s.used++
	return b, nil
}

// AndAll AND-joins the operands into a scratch-leased bitmap of the
// common size m and returns it with its popcount. The result is valid
// until the next Reset.
func (s *JoinScratch) AndAll(ms []*Bitmap) (*Bitmap, int, error) {
	return s.joinAll(ms, true)
}

// OrAll is AndAll for the OR join.
func (s *JoinScratch) OrAll(ms []*Bitmap) (*Bitmap, int, error) {
	return s.joinAll(ms, false)
}

// AndAllTo is AndAll with an explicit output size n >= the largest
// operand; the join is produced replicated to n bits (Section III-A
// expansion of the joined result). JoinPoint uses it to keep E_a and E_b
// at the common size m even when the largest record fell in the other
// subset.
func (s *JoinScratch) AndAllTo(n int, ms []*Bitmap) (*Bitmap, int, error) {
	return s.joinAllTo(n, ms, true)
}

// OrAllTo is AndAllTo for the OR join.
func (s *JoinScratch) OrAllTo(n int, ms []*Bitmap) (*Bitmap, int, error) {
	return s.joinAllTo(n, ms, false)
}

func (s *JoinScratch) joinAll(ms []*Bitmap, and bool) (*Bitmap, int, error) {
	m, err := MaxSize(ms)
	if err != nil {
		return nil, 0, err
	}
	return s.joinAllTo(m, ms, and)
}

func (s *JoinScratch) joinAllTo(n int, ms []*Bitmap, and bool) (*Bitmap, int, error) {
	if len(ms) == 0 {
		return nil, 0, ErrJoinEmpty
	}
	dst, err := s.lease(n)
	if err != nil {
		return nil, 0, err
	}
	ones, err := joinInto(dst, ms, and)
	if err != nil {
		return nil, 0, err
	}
	return dst, ones, nil
}
