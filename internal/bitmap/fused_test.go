package bitmap

// Differential tests for the fused join kernels: every kernel must be
// bit-exact and count-exact against the naive materialize-then-join
// pipeline (ExpandTo + And/Or + Ones) for arbitrary operand counts,
// sizes, and contents. The naive pipeline is the reference implementation
// the kernels are allowed to replace only because these tests (and
// FuzzFusedJoin) hold.

import (
	"math/rand"
	"testing"
)

// naiveJoin is the materialized reference pipeline: expand every operand
// to the target size, then fold with op.
func naiveJoin(t *testing.T, ms []*Bitmap, n int, and bool) *Bitmap {
	t.Helper()
	first, err := ms[0].ExpandTo(n)
	if err != nil {
		t.Fatalf("ExpandTo(%d): %v", n, err)
	}
	out := first.Clone()
	for _, b := range ms[1:] {
		e, err := b.ExpandTo(n)
		if err != nil {
			t.Fatalf("ExpandTo(%d): %v", n, err)
		}
		if and {
			err = out.And(e)
		} else {
			err = out.Or(e)
		}
		if err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	return out
}

// randomOperands builds 1..6 bitmaps with random power-of-two sizes and
// random density, deliberately mixing sizes to exercise the virtual
// expansion.
func randomOperands(rng *rand.Rand) []*Bitmap {
	t := 1 + rng.Intn(6)
	ms := make([]*Bitmap, t)
	for i := range ms {
		size := 64 << rng.Intn(7) // 2^6 .. 2^12
		b := MustNew(size)
		nset := rng.Intn(size + 1)
		for k := 0; k < nset; k++ {
			b.Set(rng.Uint64())
		}
		ms[i] = b
	}
	return ms
}

func checkFusedAgainstNaive(t *testing.T, ms []*Bitmap, sc *JoinScratch) {
	t.Helper()
	m, err := MaxSize(ms)
	if err != nil {
		t.Fatalf("MaxSize: %v", err)
	}
	for _, and := range []bool{true, false} {
		name := map[bool]string{true: "and", false: "or"}[and]
		want := naiveJoin(t, ms, m, and)
		wantOnes := want.Ones()

		// Count-only kernels.
		ones, gotM, err := AndOnes(ms)
		if !and {
			ones, gotM, err = OrOnes(ms)
		}
		if err != nil {
			t.Fatalf("%sOnes: %v", name, err)
		}
		if gotM != m || ones != wantOnes {
			t.Fatalf("%sOnes = (%d, %d), want (%d, %d)", name, ones, gotM, wantOnes, m)
		}

		// Materializing kernels, at the natural size m.
		dst := MustNew(m)
		if and {
			ones, err = AndAllInto(dst, ms)
		} else {
			ones, err = OrAllInto(dst, ms)
		}
		if err != nil {
			t.Fatalf("%sAllInto: %v", name, err)
		}
		if ones != wantOnes || !dst.Equal(want) {
			t.Fatalf("%sAllInto: ones=%d want=%d, equal=%v", name, ones, wantOnes, dst.Equal(want))
		}

		// Into a larger destination: the join must come out replicated,
		// i.e. equal to the naive join expanded to the larger size.
		big := MustNew(4 * m)
		if and {
			ones, err = AndAllInto(big, ms)
		} else {
			ones, err = OrAllInto(big, ms)
		}
		if err != nil {
			t.Fatalf("%sAllInto(4m): %v", name, err)
		}
		wantBig := naiveJoin(t, ms, 4*m, and)
		if ones != wantBig.Ones() || !big.Equal(wantBig) {
			t.Fatalf("%sAllInto(4m): ones=%d want=%d, equal=%v", name, ones, wantBig.Ones(), big.Equal(wantBig))
		}

		// Scratch-leased kernels (both a shared scratch and nil).
		for _, s := range []*JoinScratch{sc, nil} {
			s.Reset()
			var got *Bitmap
			if and {
				got, ones, err = s.AndAll(ms)
			} else {
				got, ones, err = s.OrAll(ms)
			}
			if err != nil {
				t.Fatalf("scratch %sAll: %v", name, err)
			}
			if ones != wantOnes || !got.Equal(want) {
				t.Fatalf("scratch %sAll: ones=%d want=%d, equal=%v", name, ones, wantOnes, got.Equal(want))
			}
			if and {
				got, ones, err = s.AndAllTo(4*m, ms)
			} else {
				got, ones, err = s.OrAllTo(4*m, ms)
			}
			if err != nil {
				t.Fatalf("scratch %sAllTo: %v", name, err)
			}
			wantBig := naiveJoin(t, ms, 4*m, and)
			if ones != wantBig.Ones() || !got.Equal(wantBig) {
				t.Fatalf("scratch %sAllTo: ones=%d, equal=%v", name, ones, got.Equal(wantBig))
			}
		}
	}
}

func TestFusedKernelsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sc := new(JoinScratch)
	for trial := 0; trial < 300; trial++ {
		checkFusedAgainstNaive(t, randomOperands(rng), sc)
	}
}

func TestFusedSingleOperand(t *testing.T) {
	b := MustNew(256)
	for _, i := range []uint64{0, 63, 64, 200, 255} {
		b.Set(i)
	}
	ones, m, err := AndOnes([]*Bitmap{b})
	if err != nil || ones != b.Ones() || m != 256 {
		t.Fatalf("AndOnes single = (%d, %d, %v), want (%d, 256, nil)", ones, m, err, b.Ones())
	}
	ones, m, err = OrOnes([]*Bitmap{b})
	if err != nil || ones != b.Ones() || m != 256 {
		t.Fatalf("OrOnes single = (%d, %d, %v)", ones, m, err)
	}
	// A single operand into a larger dst is a pure replication.
	dst := MustNew(1024)
	if _, err := OrAllInto(dst, []*Bitmap{b}); err != nil {
		t.Fatal(err)
	}
	want, err := b.ExpandTo(1024)
	if err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(want) {
		t.Fatal("single-operand OrAllInto is not the replication expansion")
	}
}

func TestFusedErrors(t *testing.T) {
	if _, _, err := AndOnes(nil); err == nil {
		t.Fatal("AndOnes(nil) should fail")
	}
	if _, _, err := OrOnes([]*Bitmap{}); err == nil {
		t.Fatal("OrOnes(empty) should fail")
	}
	if _, err := MaxSize(nil); err == nil {
		t.Fatal("MaxSize(nil) should fail")
	}
	big, small := MustNew(512), MustNew(64)
	if _, err := AndAllInto(small, []*Bitmap{big}); err == nil {
		t.Fatal("AndAllInto into a smaller dst should fail")
	}
	if _, err := OrAllInto(small, []*Bitmap{small, big}); err == nil {
		t.Fatal("OrAllInto into a smaller dst should fail")
	}
	var sc *JoinScratch
	if _, _, err := sc.AndAll(nil); err == nil {
		t.Fatal("nil-scratch AndAll(empty) should fail")
	}
	s := new(JoinScratch)
	if _, _, err := s.AndAllTo(32, []*Bitmap{small}); err == nil {
		t.Fatal("AndAllTo with an invalid size should fail")
	}
	if _, _, err := s.OrAllTo(96, []*Bitmap{small}); err == nil {
		t.Fatal("OrAllTo with a non-power-of-two size should fail")
	}
}

// TestFusedAliasing: dst may alias an equal-size operand, matching the
// in-place discipline of And/Or.
func TestFusedAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b := MustNew(512), MustNew(128)
	for i := 0; i < 300; i++ {
		a.Set(rng.Uint64())
		b.Set(rng.Uint64())
	}
	want := naiveJoin(t, []*Bitmap{a, b}, 512, true)
	ones, err := AndAllInto(a, []*Bitmap{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if ones != want.Ones() || !a.Equal(want) {
		t.Fatal("aliased AndAllInto differs from the materialized join")
	}
}

// TestJoinScratchReuse verifies the arena discipline: leases after Reset
// reuse the same backing storage, and results are stable across cycles.
func TestJoinScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ms := randomOperands(rng)
	sc := new(JoinScratch)
	first, firstOnes, err := sc.AndAll(ms)
	if err != nil {
		t.Fatal(err)
	}
	firstWords := &first.words[0]
	firstClone := first.Clone()
	sc.Reset()
	second, secondOnes, err := sc.AndAll(ms)
	if err != nil {
		t.Fatal(err)
	}
	if &second.words[0] != firstWords {
		t.Fatal("scratch did not reuse backing storage after Reset")
	}
	if secondOnes != firstOnes || !second.Equal(firstClone) {
		t.Fatal("scratch-backed join not stable across Reset cycles")
	}
	// Growing lease: a larger request after Reset reallocates that slot
	// but stays correct.
	sc.Reset()
	big := MustNew(1 << 14)
	big.Set(12345)
	got, ones, err := sc.OrAll([]*Bitmap{big, ms[0]})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveJoin(t, []*Bitmap{big, ms[0]}, 1<<14, false)
	if ones != want.Ones() || !got.Equal(want) {
		t.Fatal("grown scratch lease produced a wrong join")
	}
}

// FuzzFusedJoin drives the differential harness from fuzzer-chosen
// operand shapes and contents.
func FuzzFusedJoin(f *testing.F) {
	f.Add(uint8(1), uint16(0), uint64(1))
	f.Add(uint8(3), uint16(0x0421), uint64(42))
	f.Add(uint8(6), uint16(0xffff), uint64(99))
	f.Fuzz(func(t *testing.T, nOps uint8, sizeBits uint16, seed uint64) {
		n := int(nOps)%6 + 1
		rng := rand.New(rand.NewSource(int64(seed)))
		ms := make([]*Bitmap, n)
		for i := range ms {
			// 3 bits of sizeBits per operand select 2^6..2^13.
			exp := int(sizeBits>>(3*uint(i%5))) & 7
			b := MustNew(64 << exp)
			for k := rng.Intn(b.Size() + 1); k > 0; k-- {
				b.Set(rng.Uint64())
			}
			ms[i] = b
		}
		checkFusedAgainstNaive(t, ms, new(JoinScratch))
	})
}
