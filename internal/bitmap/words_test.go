package bitmap

import (
	"bytes"
	"math/rand"
	"testing"
)

// randomBitmapsW builds mixed-size operands with deterministic contents.
func randomBitmapsW(t *testing.T, rng *rand.Rand, n int) []*Bitmap {
	t.Helper()
	sizes := []int{64, 128, 256, 512, 1024, 4096}
	ms := make([]*Bitmap, n)
	for i := range ms {
		b := MustNew(sizes[rng.Intn(len(sizes))])
		for j := range b.words {
			b.words[j] = rng.Uint64() & rng.Uint64() // ~25% density
		}
		ms[i] = b
	}
	return ms
}

// TestWordsJoinDifferential proves the word-view entry points
// bit-identical to the *Bitmap kernels across operand counts that hit
// every dispatch arm (1, 2, block-sized, sub-block, > maxFusedOperands).
func TestWordsJoinDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 3, 5, 10, maxFusedOperands, maxFusedOperands + 1, 2*maxFusedOperands + 3} {
		for trial := 0; trial < 20; trial++ {
			ms := randomBitmapsW(t, rng, n)
			ws := make([][]uint64, n)
			for i, b := range ms {
				ws[i] = b.Uint64s()
			}
			wantOnes, wantM, err := AndOnes(ms)
			if err != nil {
				t.Fatalf("AndOnes: %v", err)
			}
			gotOnes, gotM, err := AndOnesWords(ws)
			if err != nil {
				t.Fatalf("AndOnesWords: %v", err)
			}
			if gotOnes != wantOnes || gotM != wantM {
				t.Fatalf("n=%d AND: words view (%d, %d) != bitmap view (%d, %d)", n, gotOnes, gotM, wantOnes, wantM)
			}
			wantOnes, wantM, err = OrOnes(ms)
			if err != nil {
				t.Fatalf("OrOnes: %v", err)
			}
			gotOnes, gotM, err = OrOnesWords(ws)
			if err != nil {
				t.Fatalf("OrOnesWords: %v", err)
			}
			if gotOnes != wantOnes || gotM != wantM {
				t.Fatalf("n=%d OR: words view (%d, %d) != bitmap view (%d, %d)", n, gotOnes, gotM, wantOnes, wantM)
			}
		}
	}
}

func TestWordsJoinErrors(t *testing.T) {
	if _, _, err := AndOnesWords(nil); err == nil {
		t.Fatal("empty operand list accepted")
	}
	if _, _, err := AndOnesWords([][]uint64{make([]uint64, 3)}); err == nil {
		t.Fatal("non-power-of-two operand accepted")
	}
	if _, _, err := AndOnesWords([][]uint64{nil}); err == nil {
		t.Fatal("empty operand accepted")
	}
	if _, _, err := OrOnesWords([][]uint64{make([]uint64, 2), make([]uint64, 5)}); err == nil {
		t.Fatal("non-power-of-two second operand accepted")
	}
}

func TestFromWords(t *testing.T) {
	b := MustNew(256)
	for i := range b.words {
		b.words[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	v, err := FromWords(b.Uint64s())
	if err != nil {
		t.Fatalf("FromWords: %v", err)
	}
	if !v.Equal(b) {
		t.Fatal("view differs from original")
	}
	if v.Size() != 256 || v.Words() != 4 {
		t.Fatalf("view shape = (%d bits, %d words)", v.Size(), v.Words())
	}
	// Shared storage: a write through the original is visible in the view.
	b.Set(7)
	if !v.Get(7) {
		t.Fatal("view does not share storage")
	}
	for _, bad := range [][]uint64{nil, make([]uint64, 3), make([]uint64, MaxBits/wordBits*2)} {
		if _, err := FromWords(bad); err == nil {
			t.Fatalf("FromWords accepted %d words", len(bad))
		}
	}
}

func TestAppendBinaryMatchesMarshal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	scratch := make([]byte, 0, 64)
	for _, size := range []int{64, 512, 4096} {
		b := MustNew(size)
		for i := range b.words {
			b.words[i] = rng.Uint64()
		}
		want, err := b.MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary: %v", err)
		}
		got, err := b.AppendBinary(scratch[:0])
		if err != nil {
			t.Fatalf("AppendBinary: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("size %d: AppendBinary differs from MarshalBinary", size)
		}
		scratch = got // reuse grown capacity, as the streaming writers do
		// Appending after a prefix preserves the prefix.
		withPrefix, err := b.AppendBinary([]byte{0xaa, 0xbb})
		if err != nil {
			t.Fatalf("AppendBinary with prefix: %v", err)
		}
		if !bytes.Equal(withPrefix[:2], []byte{0xaa, 0xbb}) || !bytes.Equal(withPrefix[2:], want) {
			t.Fatalf("size %d: prefixed AppendBinary corrupted output", size)
		}
		if rt, err := Unmarshal(got); err != nil || !rt.Equal(b) {
			t.Fatalf("size %d: round trip failed: %v", size, err)
		}
	}
}
