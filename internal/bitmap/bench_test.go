package bitmap

// Benchmarks comparing the materialized join pipeline (ExpandTo + AndAll)
// against the fused kernels, across the record sizes and period counts of
// the paper's evaluation. `make bench-json` parses this output into
// BENCH_pr3.json.

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchOperands builds t records: one at m bits and the rest at m/16
// (Table I's typical m'/m ratio), each at load factor ~2.
func benchOperands(m, t int) []*Bitmap {
	rng := rand.New(rand.NewSource(1))
	ms := make([]*Bitmap, t)
	for i := range ms {
		size := m
		if i > 0 && m >= 16*64 {
			size = m / 16
		}
		b := MustNew(size)
		for k := 0; k < size/2; k++ {
			b.Set(rng.Uint64())
		}
		ms[i] = b
	}
	return ms
}

var benchSizes = []int{1 << 10, 1 << 14, 1 << 17, 1 << 20, 1 << 24}

var onesSink int

func BenchmarkAndAll(b *testing.B) {
	for _, m := range benchSizes {
		for _, t := range []int{3, 5, 10} {
			ms := benchOperands(m, t)
			name := fmt.Sprintf("m=2^%d/t=%d", log2(m), t)
			b.Run(name+"/materialized", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, err := AndAll(ms)
					if err != nil {
						b.Fatal(err)
					}
					onesSink = out.Ones()
				}
			})
			b.Run(name+"/fused-count", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ones, _, err := AndOnes(ms)
					if err != nil {
						b.Fatal(err)
					}
					onesSink = ones
				}
			})
			b.Run(name+"/fused-scratch", func(b *testing.B) {
				b.ReportAllocs()
				sc := new(JoinScratch)
				for i := 0; i < b.N; i++ {
					sc.Reset()
					_, ones, err := sc.AndAll(ms)
					if err != nil {
						b.Fatal(err)
					}
					onesSink = ones
				}
			})
		}
	}
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}
