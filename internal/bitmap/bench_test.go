package bitmap

// Benchmarks comparing the materialized join pipeline (ExpandTo + AndAll)
// against the fused kernels, across the record sizes and period counts of
// the paper's evaluation. `make bench-kernel` parses this output into
// BENCH_pr8.json (earlier baselines: BENCH_pr3.json via `make bench-json`).
//
// Join benchmarks report throughput via b.SetBytes as *operand bytes
// folded per op*: the kernel touches words(m) output positions and folds
// t operand words into each, so one op processes 8·words·t bytes (+
// 8·words store traffic for the Into variants). That is the same
// per-word unit BenchmarkBandwidthBaseline/popcount reports, so the
// kernels' bytes/ns divided by the baseline's is the fraction of the
// machine's streaming ceiling the join plane reaches (benchjson derives
// bytes_per_ns from the MB/s column).

import (
	"fmt"
	"math/bits"
	"math/rand"
	"testing"
)

// benchOperands builds t records: one at m bits and the rest at m/16
// (Table I's typical m'/m ratio), each at load factor ~2.
func benchOperands(m, t int) []*Bitmap {
	rng := rand.New(rand.NewSource(1))
	ms := make([]*Bitmap, t)
	for i := range ms {
		size := m
		if i > 0 && m >= 16*64 {
			size = m / 16
		}
		b := MustNew(size)
		for k := 0; k < size/2; k++ {
			b.Set(rng.Uint64())
		}
		ms[i] = b
	}
	return ms
}

var benchSizes = []int{1 << 10, 1 << 14, 1 << 17, 1 << 20, 1 << 24, 1 << 28}

var onesSink int

func BenchmarkAndAll(b *testing.B) {
	for _, m := range benchSizes {
		for _, t := range []int{3, 5, 10, 20} {
			ms := benchOperands(m, t)
			name := fmt.Sprintf("m=2^%d/t=%d", log2(m), t)
			foldBytes := int64(m/64) * int64(t) * 8
			// The materialized pipeline allocates per-operand expansions;
			// at 2^28 bits that is 32 MiB × t of churn per op, which only
			// measures the allocator. The fused arms are the subject here.
			if m <= 1<<24 {
				b.Run(name+"/materialized", func(b *testing.B) {
					b.ReportAllocs()
					b.SetBytes(foldBytes)
					for i := 0; i < b.N; i++ {
						out, err := AndAll(ms)
						if err != nil {
							b.Fatal(err)
						}
						onesSink = out.Ones()
					}
				})
			}
			b.Run(name+"/fused-count", func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(foldBytes)
				for i := 0; i < b.N; i++ {
					ones, _, err := AndOnes(ms)
					if err != nil {
						b.Fatal(err)
					}
					onesSink = ones
				}
			})
			b.Run(name+"/fused-scratch", func(b *testing.B) {
				b.ReportAllocs()
				// The Into path stores every output word on top of the
				// t-way fold.
				b.SetBytes(foldBytes + int64(m/64)*8)
				sc := new(JoinScratch)
				for i := 0; i < b.N; i++ {
					sc.Reset()
					_, ones, err := sc.AndAll(ms)
					if err != nil {
						b.Fatal(err)
					}
					onesSink = ones
				}
			})
		}
	}
}

// BenchmarkBandwidthBaseline measures the machine's streaming ceiling
// with two trivial kernels over the same word arrays the joins consume:
//
//   - copy: memcpy-style word copy (SetBytes counts the bytes copied;
//     actual traffic is 2× — the memcpy convention)
//   - popcount: sequential read + OnesCount64 accumulate, the exact
//     per-word operation the fused joins perform per operand
//
// The popcount arm is the denominator for "%-of-peak" in
// EXPERIMENTS.md: a t-operand join folding at X bytes/ns of operand
// traffic runs at X / (popcount bytes/ns) of the ceiling.
func BenchmarkBandwidthBaseline(b *testing.B) {
	for _, m := range benchSizes {
		words := m / 64
		src := make([]uint64, words)
		rng := rand.New(rand.NewSource(2))
		for i := range src {
			src[i] = rng.Uint64()
		}
		name := fmt.Sprintf("m=2^%d", log2(m))
		b.Run(name+"/copy", func(b *testing.B) {
			dst := make([]uint64, words)
			b.SetBytes(int64(words) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(dst, src)
			}
			onesSink = int(dst[0])
		})
		b.Run(name+"/popcount", func(b *testing.B) {
			b.SetBytes(int64(words) * 8)
			for i := 0; i < b.N; i++ {
				n := 0
				for _, w := range src {
					n += bits.OnesCount64(w)
				}
				onesSink = n
			}
		})
	}
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}
