package bitmap

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidSizes(t *testing.T) {
	for _, n := range []int{64, 128, 256, 1 << 10, 1 << 20, MaxBits} {
		b, err := New(n)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		if b.Size() != n {
			t.Errorf("Size() = %d, want %d", b.Size(), n)
		}
		if b.Words() != n/64 {
			t.Errorf("Words() = %d, want %d", b.Words(), n/64)
		}
		if b.Ones() != 0 {
			t.Errorf("new bitmap has %d ones, want 0", b.Ones())
		}
	}
}

func TestNewInvalidSizes(t *testing.T) {
	cases := []struct {
		n    int
		want error
	}{
		{0, ErrSizeOutOfRange},
		{-64, ErrSizeOutOfRange},
		{32, ErrSizeOutOfRange},
		{63, ErrSizeOutOfRange},
		{MaxBits * 2, ErrSizeOutOfRange},
		{96, ErrSizeNotPowerOfTwo},
		{100, ErrSizeNotPowerOfTwo},
		{1<<20 + 64, ErrSizeNotPowerOfTwo},
	}
	for _, tc := range cases {
		if _, err := New(tc.n); !errors.Is(err, tc.want) {
			t.Errorf("New(%d) err = %v, want %v", tc.n, err, tc.want)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(33) did not panic")
		}
	}()
	MustNew(33)
}

func TestSetGet(t *testing.T) {
	b := MustNew(256)
	idx := []uint64{0, 1, 63, 64, 65, 127, 128, 255}
	for _, i := range idx {
		b.Set(i)
	}
	for _, i := range idx {
		if !b.Get(i) {
			t.Errorf("Get(%d) = false after Set", i)
		}
	}
	if got := b.Ones(); got != len(idx) {
		t.Errorf("Ones() = %d, want %d", got, len(idx))
	}
	if b.Get(2) || b.Get(200) {
		t.Error("unset bits report one")
	}
}

func TestSetReducesModuloSize(t *testing.T) {
	b := MustNew(64)
	b.Set(64) // wraps to 0
	if !b.Get(0) {
		t.Error("Set(64) on 64-bit map did not set bit 0")
	}
	b.Set(1<<40 + 7)
	if !b.Get(7) {
		t.Error("Set(2^40+7) did not set bit 7")
	}
	if !b.Get(1<<40 + 7) {
		t.Error("Get does not reduce modulo size")
	}
}

func TestSetIdempotent(t *testing.T) {
	b := MustNew(64)
	b.Set(5)
	b.Set(5)
	if b.Ones() != 1 {
		t.Errorf("Ones() = %d after double set, want 1", b.Ones())
	}
}

func TestReset(t *testing.T) {
	b := MustNew(128)
	for i := uint64(0); i < 128; i += 3 {
		b.Set(i)
	}
	b.Reset()
	if b.Ones() != 0 {
		t.Errorf("Ones() = %d after Reset, want 0", b.Ones())
	}
}

func TestCountsAndFractions(t *testing.T) {
	b := MustNew(128)
	for i := uint64(0); i < 32; i++ {
		b.Set(i)
	}
	if b.Ones() != 32 || b.Zeros() != 96 {
		t.Fatalf("Ones/Zeros = %d/%d, want 32/96", b.Ones(), b.Zeros())
	}
	if got := b.FractionZero(); got != 0.75 {
		t.Errorf("FractionZero = %v, want 0.75", got)
	}
	if got := b.FractionOne(); got != 0.25 {
		t.Errorf("FractionOne = %v, want 0.25", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	b := MustNew(64)
	b.Set(1)
	c := b.Clone()
	if !b.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Set(2)
	if b.Get(2) {
		t.Error("mutating clone changed original")
	}
	if b.Equal(c) {
		t.Error("Equal true after divergence")
	}
}

func TestEqual(t *testing.T) {
	a, b := MustNew(64), MustNew(128)
	if a.Equal(b) {
		t.Error("different sizes reported equal")
	}
	if a.Equal(nil) {
		t.Error("Equal(nil) = true")
	}
	if !a.Equal(a.Clone()) {
		t.Error("Equal(clone) = false")
	}
}

func TestAndOr(t *testing.T) {
	a, b := MustNew(64), MustNew(64)
	a.Set(1)
	a.Set(2)
	b.Set(2)
	b.Set(3)

	and := a.Clone()
	if err := and.And(b); err != nil {
		t.Fatal(err)
	}
	if !and.Get(2) || and.Get(1) || and.Get(3) || and.Ones() != 1 {
		t.Errorf("AND wrong: %v", and)
	}

	or := a.Clone()
	if err := or.Or(b); err != nil {
		t.Fatal(err)
	}
	if or.Ones() != 3 || !or.Get(1) || !or.Get(2) || !or.Get(3) {
		t.Errorf("OR wrong: %v", or)
	}
}

func TestAndOrSizeMismatch(t *testing.T) {
	a, b := MustNew(64), MustNew(128)
	if err := a.And(b); !errors.Is(err, ErrSizeMismatch) {
		t.Errorf("And size mismatch err = %v", err)
	}
	if err := a.Or(b); !errors.Is(err, ErrSizeMismatch) {
		t.Errorf("Or size mismatch err = %v", err)
	}
}

func TestExpandToSameSizeReturnsReceiver(t *testing.T) {
	b := MustNew(64)
	e, err := b.ExpandTo(64)
	if err != nil {
		t.Fatal(err)
	}
	if e != b {
		t.Error("ExpandTo(same) should return receiver")
	}
}

func TestExpandToShrinkFails(t *testing.T) {
	b := MustNew(128)
	if _, err := b.ExpandTo(64); !errors.Is(err, ErrShrink) {
		t.Errorf("shrink err = %v, want ErrShrink", err)
	}
}

// TestExpandReplicates mirrors Figure 2: expansion doubles the contents.
func TestExpandReplicates(t *testing.T) {
	b := MustNew(64)
	b.Set(5)
	b.Set(40)
	e, err := b.ExpandTo(256)
	if err != nil {
		t.Fatal(err)
	}
	if e.Size() != 256 || e.Ones() != 8 {
		t.Fatalf("expanded: %v, want 8 ones over 256 bits", e)
	}
	for k := uint64(0); k < 4; k++ {
		if !e.Get(5+64*k) || !e.Get(40+64*k) {
			t.Errorf("replica %d missing bits", k)
		}
	}
}

// TestExpansionJoinProperty is the correctness core of Section III-A: for
// any 64-bit hash h, a record of size l expanded to size m >= l has bit
// (h mod m) set iff the original had bit (h mod l) set. This is what makes
// AND-joins across different bitmap sizes preserve common vehicles.
func TestExpansionJoinProperty(t *testing.T) {
	sizes := []int{64, 128, 1024, 4096}
	f := func(h uint64, li, mi uint8) bool {
		l := sizes[int(li)%len(sizes)]
		m := sizes[int(mi)%len(sizes)]
		if m < l {
			l, m = m, l
		}
		b := MustNew(l)
		b.Set(h) // reduced mod l internally
		e, err := b.ExpandTo(m)
		if err != nil {
			return false
		}
		return e.Get(h % uint64(m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestExpansionPreservesDensity: the fraction of ones is invariant under
// expansion, so linear counting on expanded bitmaps sees the same V0.
func TestExpansionPreservesDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := MustNew(512)
	for i := 0; i < 200; i++ {
		b.Set(rng.Uint64())
	}
	e, err := b.ExpandTo(4096)
	if err != nil {
		t.Fatal(err)
	}
	if b.FractionZero() != e.FractionZero() {
		t.Errorf("density changed: %v -> %v", b.FractionZero(), e.FractionZero())
	}
}

func TestAndAllMixedSizes(t *testing.T) {
	// One common "vehicle" hash plus disjoint noise in three records of
	// different sizes; the AND-join must retain the common bit.
	const h = uint64(0x9e3779b97f4a7c15)
	b1, b2, b3 := MustNew(64), MustNew(128), MustNew(256)
	b1.Set(h)
	b2.Set(h)
	b3.Set(h)
	b1.Set(3)
	b2.Set(70)
	b3.Set(200)

	j, err := AndAll([]*Bitmap{b1, b2, b3})
	if err != nil {
		t.Fatal(err)
	}
	if j.Size() != 256 {
		t.Fatalf("join size = %d, want 256", j.Size())
	}
	if !j.Get(h % 256) {
		t.Error("common bit lost in AND-join")
	}
}

func TestAndAllSingle(t *testing.T) {
	b := MustNew(64)
	b.Set(9)
	j, err := AndAll([]*Bitmap{b})
	if err != nil {
		t.Fatal(err)
	}
	if !j.Equal(b) {
		t.Error("single-operand join differs from operand")
	}
	j.Set(10)
	if b.Get(10) {
		t.Error("join result aliases its input")
	}
}

func TestJoinEmptyFails(t *testing.T) {
	if _, err := AndAll(nil); err == nil {
		t.Error("AndAll(nil) succeeded")
	}
	if _, err := OrAll(nil); err == nil {
		t.Error("OrAll(nil) succeeded")
	}
}

func TestOrAllMixedSizes(t *testing.T) {
	b1, b2 := MustNew(64), MustNew(128)
	b1.Set(5)
	b2.Set(100)
	j, err := OrAll([]*Bitmap{b1, b2})
	if err != nil {
		t.Fatal(err)
	}
	// b1 expands to {5, 69}; OR adds 100.
	want := []uint64{5, 69, 100}
	if j.Ones() != len(want) {
		t.Fatalf("join ones = %d, want %d", j.Ones(), len(want))
	}
	for _, i := range want {
		if !j.Get(i) {
			t.Errorf("bit %d missing", i)
		}
	}
}

// TestJoinAlgebraProperties: AND/OR are commutative and associative and
// expansion distributes over them — the algebraic facts the join
// pipelines rely on when regrouping Π.
func TestJoinAlgebraProperties(t *testing.T) {
	mk := func(seed int64, n int) *Bitmap {
		b := MustNew(256)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			b.Set(rng.Uint64())
		}
		return b
	}
	f := func(sa, sb, sc int64) bool {
		a, b, c := mk(sa, 60), mk(sb, 80), mk(sc, 100)

		// Commutativity: a AND b == b AND a.
		ab := a.Clone()
		if err := ab.And(b); err != nil {
			return false
		}
		ba := b.Clone()
		if err := ba.And(a); err != nil {
			return false
		}
		if !ab.Equal(ba) {
			return false
		}
		// Associativity via AndAll vs pairwise grouping.
		all, err := AndAll([]*Bitmap{a, b, c})
		if err != nil {
			return false
		}
		abc := ab.Clone()
		if err := abc.And(c); err != nil {
			return false
		}
		if !all.Equal(abc) {
			return false
		}
		// Expansion distributes over AND: expand(a AND b) == expand(a)
		// AND expand(b).
		left, err := ab.ExpandTo(1024)
		if err != nil {
			return false
		}
		ea, err := a.ExpandTo(1024)
		if err != nil {
			return false
		}
		eb, err := b.ExpandTo(1024)
		if err != nil {
			return false
		}
		right := ea.Clone()
		if err := right.And(eb); err != nil {
			return false
		}
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestOrAllDeMorganSpot: sanity-check OR against AND through counts on a
// fixed example (|a OR b| + |a AND b| == |a| + |b|).
func TestOrAllDeMorganSpot(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b := MustNew(512), MustNew(512)
	for i := 0; i < 200; i++ {
		a.Set(rng.Uint64())
		b.Set(rng.Uint64())
	}
	or := a.Clone()
	if err := or.Or(b); err != nil {
		t.Fatal(err)
	}
	and := a.Clone()
	if err := and.And(b); err != nil {
		t.Fatal(err)
	}
	if or.Ones()+and.Ones() != a.Ones()+b.Ones() {
		t.Errorf("inclusion-exclusion violated: %d+%d != %d+%d",
			or.Ones(), and.Ones(), a.Ones(), b.Ones())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{64, 256, 1 << 14} {
		b := MustNew(n)
		for i := 0; i < n/4; i++ {
			b.Set(rng.Uint64())
		}
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("Unmarshal(n=%d): %v", n, err)
		}
		if !got.Equal(b) {
			t.Errorf("round trip mismatch at n=%d", n)
		}
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	b := MustNew(128)
	b.Set(17)
	good, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(f func(d []byte)) []byte {
		d := make([]byte, len(good))
		copy(d, good)
		f(d)
		return d
	}
	cases := map[string][]byte{
		"short":        good[:8],
		"empty":        {},
		"bad magic":    mutate(func(d []byte) { d[0] ^= 0xff }),
		"bad version":  mutate(func(d []byte) { d[4] = 99 }),
		"bad size":     mutate(func(d []byte) { d[8] = 33 }),
		"flipped bit":  mutate(func(d []byte) { d[headerLen] ^= 1 }),
		"bad checksum": mutate(func(d []byte) { d[len(d)-1] ^= 1 }),
		"truncated":    good[:len(good)-5],
		"oversized":    append(append([]byte{}, good...), 0),
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestMarshalPropertyRoundTrip: any pattern of sets survives a round trip.
func TestMarshalPropertyRoundTrip(t *testing.T) {
	f := func(idx []uint64) bool {
		b := MustNew(1024)
		for _, i := range idx {
			b.Set(i)
		}
		data, err := b.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		return err == nil && got.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSet(b *testing.B) {
	bm := MustNew(1 << 20)
	for i := 0; i < b.N; i++ {
		bm.Set(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkOnes(b *testing.B) {
	bm := MustNew(1 << 20)
	for i := 0; i < 1<<18; i++ {
		bm.Set(uint64(i) * 0x9e3779b97f4a7c15)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bm.Ones()
	}
}

func BenchmarkAndJoin(b *testing.B) {
	x, y := MustNew(1<<20), MustNew(1<<20)
	b.SetBytes(1 << 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.And(y)
	}
}

func BenchmarkExpand16x(b *testing.B) {
	x := MustNew(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = x.ExpandTo(1 << 20)
	}
}
