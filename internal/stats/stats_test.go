package stats

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRelativeError(t *testing.T) {
	got, err := RelativeError(110, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelativeError = %v, want 0.1", got)
	}
	got, err = RelativeError(90, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("underestimate RelativeError = %v, want 0.1", got)
	}
	got, err = RelativeError(-50, -100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("negative actual RelativeError = %v", got)
	}
	if _, err := RelativeError(1, 0); err == nil {
		t.Error("actual=0 accepted")
	}
}

func TestMean(t *testing.T) {
	got, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || got != 2.5 {
		t.Errorf("Mean = %v, %v", got, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Sum of squared deviations = 32; unbiased variance = 32/7.
	if math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", v, 32.0/7)
	}
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sd-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", sd)
	}
	if _, err := Variance([]float64{1}); !errors.Is(err, ErrEmpty) {
		t.Errorf("singleton variance err = %v", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1.0 / 3, 2},
	} {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("q>1 accepted")
	}
	one, err := Quantile([]float64{7}, 0.9)
	if err != nil || one != 7 {
		t.Errorf("singleton quantile = %v, %v", one, err)
	}
	// Quantile must not reorder the caller's slice.
	orig := []float64{3, 1, 2}
	if _, err := Quantile(orig, 0.5); err != nil {
		t.Fatal(err)
	}
	if sort.Float64sAreSorted(orig) {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	one, err := Summarize([]float64{4})
	if err != nil || one.StdDev != 0 || one.Mean != 4 {
		t.Errorf("singleton summary = %+v, %v", one, err)
	}
}

// Property: mean is within [min, max]; quantiles are monotone in q.
func TestSummaryProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Keep magnitudes where the intermediate sum cannot
			// overflow; extreme float64s are not meaningful samples.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e300 {
				xs = append(xs, x/float64(len(raw)+1))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		q1, _ := Quantile(xs, 0.25)
		q3, _ := Quantile(xs, 0.75)
		return q1 <= q3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
