// Package stats provides the small statistical toolkit the experiment
// harness uses to aggregate simulation trials into the paper's tables and
// figures: means, deviations, relative errors, and summaries.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic of an empty sample is requested.
var ErrEmpty = errors.New("stats: empty sample")

// RelativeError returns |est - actual| / actual, the paper's accuracy
// metric (Section II-C). actual must be non-zero.
func RelativeError(est, actual float64) (float64, error) {
	if actual == 0 {
		return 0, errors.New("stats: relative error undefined for actual = 0")
	}
	return math.Abs(est-actual) / math.Abs(actual), nil
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the unbiased sample variance (n-1 denominator).
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, fmt.Errorf("%w: need >= 2 samples", ErrEmpty)
	}
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation
// between closest ranks.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Summary aggregates a sample.
type Summary struct {
	N                int
	Mean, StdDev     float64
	Min, Median, Max float64
	P05, P95         float64
}

// Summarize computes a Summary. It requires a non-empty sample; StdDev is
// zero for singletons.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	m, _ := Mean(xs)
	sd := 0.0
	if len(xs) >= 2 {
		sd, _ = StdDev(xs)
	}
	min, _ := Quantile(xs, 0)
	med, _ := Quantile(xs, 0.5)
	max, _ := Quantile(xs, 1)
	p05, _ := Quantile(xs, 0.05)
	p95, _ := Quantile(xs, 0.95)
	return Summary{
		N: len(xs), Mean: m, StdDev: sd,
		Min: min, Median: med, Max: max, P05: p05, P95: p95,
	}, nil
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}
