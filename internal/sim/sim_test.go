package sim

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"ptm/internal/bitmap"
	"ptm/internal/trips"
)

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).validate(); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Runs=0 err = %v", err)
	}
	if err := (Options{Runs: 1}).validate(); err != nil {
		t.Errorf("Runs=1 err = %v", err)
	}
	n := Options{Runs: 5}.normalized()
	if n.S != 3 || n.F != 2 || n.Workers < 1 {
		t.Errorf("normalized = %+v", n)
	}
}

func TestParallelForCoversAll(t *testing.T) {
	const n = 100
	var hits [n]int32
	err := parallelFor(n, 7, func(i int, sc *bitmap.JoinScratch) error {
		if sc == nil {
			return errors.New("nil worker scratch")
		}
		atomic.AddInt32(&hits[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestParallelForPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := parallelFor(10, 3, func(i int, _ *bitmap.JoinScratch) error {
		if i == 4 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
}

// TestParallelForStopsEarly: once a job fails, the dispatcher must stop
// feeding work, so a failing 1000-run cell aborts after at most a few
// in-flight trials instead of running all of them.
func TestParallelForStopsEarly(t *testing.T) {
	const n = 1 << 20
	const workers = 8
	sentinel := errors.New("boom")
	var calls int64
	err := parallelFor(n, workers, func(i int, _ *bitmap.JoinScratch) error {
		atomic.AddInt64(&calls, 1)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	// After the first failure each worker can have at most one job already
	// in flight; allow generous slack for scheduling races.
	if got := atomic.LoadInt64(&calls); got > 16*workers {
		t.Fatalf("ran %d of %d jobs after the first error", got, n)
	}
}

// TestParallelForWorkerScratchReused: the scratch a worker sees is the
// same object across the jobs it runs (that is the whole point: buffers
// leased from it survive between trials).
func TestParallelForWorkerScratchReused(t *testing.T) {
	seen := make(map[*bitmap.JoinScratch]int)
	var mu sync.Mutex
	err := parallelFor(64, 4, func(i int, sc *bitmap.JoinScratch) error {
		mu.Lock()
		seen[sc]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range seen {
		total += c
	}
	if total != 64 {
		t.Fatalf("jobs run = %d, want 64", total)
	}
	if len(seen) > 4 {
		t.Fatalf("distinct scratches = %d, want <= workers", len(seen))
	}
}

func TestParallelForDegenerate(t *testing.T) {
	if err := parallelFor(0, 4, func(int, *bitmap.JoinScratch) error { return errors.New("never") }); err != nil {
		t.Errorf("n=0 err = %v", err)
	}
	ran := false
	if err := parallelFor(1, 0, func(int, *bitmap.JoinScratch) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("workers=0 should still run the job")
	}
}

func TestTrialSeedIndependence(t *testing.T) {
	seen := map[uint64]bool{}
	for cell := uint64(0); cell < 10; cell++ {
		for run := uint64(0); run < 10; run++ {
			s := trialSeed(42, cell, run)
			if seen[s] {
				t.Fatalf("duplicate trial seed for cell=%d run=%d", cell, run)
			}
			seen[s] = true
		}
	}
	if trialSeed(1, 2, 3) != trialSeed(1, 2, 3) {
		t.Error("trialSeed not deterministic")
	}
}

func TestRunFig4Shape(t *testing.T) {
	pts, err := RunFig4(5, Options{Runs: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 50 {
		t.Fatalf("points = %d, want 50", len(pts))
	}
	// x-axis strictly increasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].NStar <= pts[i-1].NStar {
			t.Errorf("NStar not increasing at %d: %d <= %d", i, pts[i].NStar, pts[i-1].NStar)
		}
	}
	// Figure 4's core claim: the proposed estimator beats the benchmark,
	// most dramatically at small persistent volume.
	var propSum, benchSum float64
	for _, p := range pts {
		propSum += p.Proposed
		benchSum += p.Benchmark
	}
	if propSum >= benchSum {
		t.Errorf("proposed total error %.3f not below benchmark %.3f", propSum, benchSum)
	}
	small := pts[0]
	if small.Benchmark < 2*small.Proposed {
		t.Errorf("at smallest n* benchmark %.3f should dwarf proposed %.3f", small.Benchmark, small.Proposed)
	}
}

func TestRunFig4MorePeriodsHelps(t *testing.T) {
	p5, err := RunFig4(5, Options{Runs: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	p10, err := RunFig4(10, Options{Runs: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var e5, e10 float64
	for i := range p5 {
		e5 += p5[i].Benchmark
	}
	for i := range p10 {
		e10 += p10[i].Benchmark
	}
	// More AND-joined periods filter more transient noise (the paper's
	// explanation for the t=5 -> t=10 improvement).
	if e10 >= e5 {
		t.Errorf("benchmark error should fall from t=5 (%.3f) to t=10 (%.3f)", e5, e10)
	}
}

func TestRunFig4Errors(t *testing.T) {
	if _, err := RunFig4(5, Options{}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Runs=0 err = %v", err)
	}
}

func TestRunFigScatterPoint(t *testing.T) {
	pts, err := RunFigScatterPoint(5, Options{Runs: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 50 {
		t.Fatalf("points = %d", len(pts))
	}
	var sumRel, cnt float64
	for _, p := range pts {
		if p.Actual >= 200 {
			sumRel += abs(p.Estimated-p.Actual) / p.Actual
			cnt++
		}
	}
	if cnt == 0 {
		t.Fatal("no points with actual >= 200")
	}
	if mean := sumRel / cnt; mean > 0.15 {
		t.Errorf("mean rel deviation %.3f too far from y=x", mean)
	}
}

func TestRunFigScatterP2P(t *testing.T) {
	pts, err := RunFigScatterP2P(5, Options{Runs: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 50 {
		t.Fatalf("points = %d", len(pts))
	}
	var sumRel, cnt float64
	for _, p := range pts {
		if p.Actual >= 200 {
			sumRel += abs(p.Estimated-p.Actual) / p.Actual
			cnt++
		}
	}
	if mean := sumRel / cnt; mean > 0.2 {
		t.Errorf("mean rel deviation %.3f too far from y=x", mean)
	}
}

// TestScatterF3TighterThanF2 reproduces the Fig. 5 vs Fig. 6 comparison:
// a larger load factor yields visibly better accuracy.
func TestScatterF3TighterThanF2(t *testing.T) {
	dev := func(f float64) float64 {
		pts, err := RunFigScatterPoint(5, Options{Runs: 2, Seed: 19, F: f})
		if err != nil {
			t.Fatal(err)
		}
		var sum, cnt float64
		for _, p := range pts {
			if p.Actual >= 100 {
				sum += abs(p.Estimated-p.Actual) / p.Actual
				cnt++
			}
		}
		return sum / cnt
	}
	if d2, d3 := dev(2), dev(3); d3 >= d2 {
		t.Errorf("f=3 deviation %.4f should beat f=2 %.4f", d3, d2)
	}
}

func TestRunTable1SmallLocations(t *testing.T) {
	tab := trips.NewSiouxFalls()
	res, err := RunTable1(tab, []trips.Zone{7, 8}, []int{3, 5}, Options{Runs: 3, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 {
		t.Fatalf("columns = %d", len(res.Columns))
	}
	if res.MPrime != 1<<20 {
		t.Errorf("MPrime = %d", res.MPrime)
	}
	for _, col := range res.Columns {
		if col.MRatio != res.MPrime/col.M {
			t.Errorf("ratio mismatch at L=%d", col.L)
		}
		for _, tt := range []int{3, 5} {
			re, ok := col.RelErrByT[tt]
			if !ok {
				t.Fatalf("missing t=%d at L=%d", tt, col.L)
			}
			// Table I reports errors of 2-10% here; leave slack for the
			// tiny trial count.
			if re > 0.3 {
				t.Errorf("L=%d t=%d rel err %.3f implausibly large", col.L, tt, re)
			}
		}
		// Same-size baseline must be clearly worse at large m'/m
		// (Table I last column: 1.37 vs 0.06).
		if col.L == 8 && col.SameSizeRelErr < 3*col.RelErrByT[5] {
			t.Errorf("same-size rel err %.3f should dwarf proposed %.3f at L=8",
				col.SameSizeRelErr, col.RelErrByT[5])
		}
	}
}

func TestRunTable1Errors(t *testing.T) {
	tab := trips.NewSiouxFalls()
	if _, err := RunTable1(tab, nil, nil, Options{}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Runs=0 err = %v", err)
	}
	if _, err := RunTable1(tab, []trips.Zone{99}, []int{3}, Options{Runs: 1}); !errors.Is(err, trips.ErrBadZone) {
		t.Errorf("bad zone err = %v", err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
