package sim

import (
	"errors"
	"math"
	"testing"
)

// TestPrivacyEmpiricalMatchesTheory: the simulated tracker frequencies
// must land on Eq. (22)/(23) within Monte-Carlo tolerance.
func TestPrivacyEmpiricalMatchesTheory(t *testing.T) {
	const (
		mPrime = 1 << 12
		f      = 2 // n' = m'/f
	)
	res, err := RunPrivacyEmpirical(mPrime/f, mPrime, Options{Runs: 20000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// p ~ 0.39; binomial sd at 20k trials ~ 0.0035. Use 4 sd.
	if d := math.Abs(res.NoiseEmp - res.NoiseThy); d > 0.015 {
		t.Errorf("empirical noise %.4f vs theory %.4f (Δ %.4f)", res.NoiseEmp, res.NoiseThy, d)
	}
	if d := math.Abs(res.HitEmp - res.HitThy); d > 0.015 {
		t.Errorf("empirical hit %.4f vs theory %.4f (Δ %.4f)", res.HitEmp, res.HitThy, d)
	}
	if res.HitEmp <= res.NoiseEmp {
		t.Error("hit probability must exceed noise probability")
	}
	// Ratio around 1.95; allow Monte-Carlo slack (it is a quotient of
	// noisy quantities).
	if res.RatioEmp < res.RatioThy*0.8 || res.RatioEmp > res.RatioThy*1.25 {
		t.Errorf("empirical ratio %.3f vs theory %.3f", res.RatioEmp, res.RatioThy)
	}
}

// TestPrivacyEmpiricalSWeakensTracking: larger s dilutes the tracking
// signal — the empirical information (p' - p) shrinks roughly as 1/s.
func TestPrivacyEmpiricalSWeakensTracking(t *testing.T) {
	const mPrime = 1 << 12
	info := func(s int) float64 {
		res, err := RunPrivacyEmpirical(mPrime/2, mPrime, Options{Runs: 20000, Seed: 7, S: s})
		if err != nil {
			t.Fatal(err)
		}
		return res.HitEmp - res.NoiseEmp
	}
	i2, i5 := info(2), info(5)
	if i5 >= i2 {
		t.Errorf("info at s=5 (%.4f) should be below s=2 (%.4f)", i5, i2)
	}
	// Ratio of informations ~ (1/5)/(1/2) = 0.4; generous band.
	if r := i5 / i2; r < 0.25 || r > 0.6 {
		t.Errorf("info ratio s5/s2 = %.3f, want ~0.4", r)
	}
}

func TestPrivacyEmpiricalValidation(t *testing.T) {
	if _, err := RunPrivacyEmpirical(100, 64, Options{}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Runs=0 err = %v", err)
	}
	if _, err := RunPrivacyEmpirical(-1, 64, Options{Runs: 10}); err == nil {
		t.Error("negative n' accepted")
	}
}

// TestPrivacyEmpiricalZeroTraffic: with no other vehicles there is no
// noise; tracking succeeds only when v itself reuses the observed index
// (probability ~ 1/s).
func TestPrivacyEmpiricalZeroTraffic(t *testing.T) {
	res, err := RunPrivacyEmpirical(0, 1<<12, Options{Runs: 20000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.NoiseEmp != 0 {
		t.Errorf("noise with zero traffic = %v", res.NoiseEmp)
	}
	if d := math.Abs(res.HitEmp - 1.0/3); d > 0.02 {
		t.Errorf("hit probability %.4f, want ~1/3 (s=3)", res.HitEmp)
	}
}
