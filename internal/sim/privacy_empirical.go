package sim

import (
	"fmt"
	"math/rand"

	"ptm/internal/bitmap"
	"ptm/internal/privacy"
	"ptm/internal/vhash"
)

// PrivacyEmpirical validates Section V empirically: instead of evaluating
// Eq. (22)-(24), it simulates the tracker's experiment many times and
// measures the frequencies directly.
//
// Setup per trial: a vehicle v is known (by external means) to have used
// index i at location L. The tracker inspects bit i of location L”s
// record B'. NoiseEmp is the measured frequency of B'[i] = 1 when v never
// passed L' (other vehicles set it); HitEmp is the frequency when v did
// pass L'.
type PrivacyEmpirical struct {
	NPrime             float64 // vehicles passing L'
	MPrime             int     // record size at L'
	S                  int
	Trials             int
	NoiseEmp, HitEmp   float64 // measured p and p'
	NoiseThy, HitThy   float64 // Eq. (22) and Eq. (23)
	RatioEmp, RatioThy float64 // measured and Eq. (24) noise-to-information
}

// RunPrivacyEmpirical measures the tracking probabilities over
// opts.Runs trials at the given (n', m', s) operating point.
func RunPrivacyEmpirical(nPrime int, mPrime int, opts Options) (*PrivacyEmpirical, error) {
	opts = opts.normalized()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if nPrime < 0 {
		return nil, fmt.Errorf("sim: negative n'")
	}
	const (
		locL      = vhash.LocationID(1)
		locLPrime = vhash.LocationID(2)
	)
	trials := opts.Runs
	var noiseHits, hitHits int
	// Split trials across workers; each worker owns a disjoint seed range.
	type out struct{ noise, hit int }
	results := make([]out, trials)
	err := parallelFor(trials, opts.Workers, func(i int, _ *bitmap.JoinScratch) error {
		seed := trialSeed(opts.Seed, 0x9e37, uint64(i))
		rng := rand.New(rand.NewSource(int64(seed)))
		v, err := vhash.NewSeededIdentity(vhash.VehicleID(i), opts.S, seed)
		if err != nil {
			return err
		}
		// The index the tracker observed at L (reduced to m' for the
		// comparison, as in Section V where both records have size m').
		observed := v.Index(locL, mPrime)

		bNoise, err := bitmap.New(mPrime)
		if err != nil {
			return err
		}
		for k := 0; k < nPrime; k++ {
			bNoise.Set(rng.Uint64()) // other vehicles, uniform indices
		}
		if bNoise.Get(observed) {
			results[i].noise = 1
		}
		// Same record, now v also passes L'.
		bHit := bNoise.Clone()
		bHit.Set(v.Index(locLPrime, mPrime))
		if bHit.Get(observed) {
			results[i].hit = 1
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		noiseHits += r.noise
		hitHits += r.hit
	}

	pThy, err := privacy.Noise(float64(nPrime), mPrime)
	if err != nil {
		return nil, err
	}
	ppThy, err := privacy.Information(pThy, opts.S)
	if err != nil {
		return nil, err
	}
	res := &PrivacyEmpirical{
		NPrime: float64(nPrime), MPrime: mPrime, S: opts.S, Trials: trials,
		NoiseEmp: float64(noiseHits) / float64(trials),
		HitEmp:   float64(hitHits) / float64(trials),
		NoiseThy: pThy,
		HitThy:   ppThy,
	}
	if info := res.HitEmp - res.NoiseEmp; info > 0 {
		res.RatioEmp = res.NoiseEmp / info
	}
	rThy, err := privacy.Ratio(float64(nPrime), mPrime, opts.S)
	if err != nil {
		return nil, err
	}
	res.RatioThy = rThy
	return res, nil
}
