package sim

import (
	"fmt"

	"ptm/internal/bitmap"
	"ptm/internal/core"
	"ptm/internal/stats"
	"ptm/internal/synth"
)

// FracMin, FracMax and FracStep define the persistent-volume sweep of the
// synthetic experiments (Section VI-B): n* from 0.01·n_min to 0.5·n_min in
// steps of 0.01·n_min.
const (
	FracMin  = 0.01
	FracMax  = 0.5
	FracStep = 0.01
)

// sweepFracs expands the sweep grid.
func sweepFracs() []float64 {
	var out []float64
	for f := FracMin; f <= FracMax+1e-9; f += FracStep {
		out = append(out, f)
	}
	return out
}

// Fig4Point is one x-position of Figure 4: the true persistent volume and
// the mean relative errors of the proposed estimator and the benchmark
// (plain linear counting on the AND of all t records).
type Fig4Point struct {
	NStar     int
	Proposed  float64
	Benchmark float64
}

// RunFig4 regenerates one panel of Figure 4 (t = 5 for the left plot,
// t = 10 for the right). Per the paper, per-period volumes are drawn from
// (2000, 10000] and the persistent volume sweeps 1%..50% of the smallest
// period volume.
func RunFig4(t int, opts Options) ([]Fig4Point, error) {
	opts = opts.normalized()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	// One volume draw fixes the x-axis; trials vary vehicles only.
	gv, err := synth.NewGenerator(opts.Seed, opts.S)
	if err != nil {
		return nil, err
	}
	volumes, err := gv.Volumes(t, synth.DefaultVolumeMin, synth.DefaultVolumeMax)
	if err != nil {
		return nil, err
	}
	nMin := volumes[0]
	for _, v := range volumes {
		if v < nMin {
			nMin = v
		}
	}
	fracs := sweepFracs()
	points := make([]Fig4Point, len(fracs))
	for fi, frac := range fracs {
		nStar := int(frac * float64(nMin))
		if nStar < 1 {
			nStar = 1
		}
		prop := make([]float64, opts.Runs)
		bench := make([]float64, opts.Runs)
		cell := uint64(t)<<40 | uint64(fi)<<16
		// The point estimators are pure fused counts (no join output is
		// materialized), so the per-worker scratch is not needed here.
		runErr := parallelFor(opts.Runs, opts.Workers, func(run int, _ *bitmap.JoinScratch) error {
			g, err := synth.NewGenerator(trialSeed(opts.Seed, cell, uint64(run)), opts.S)
			if err != nil {
				return err
			}
			w, err := g.Point(synth.PointConfig{
				Loc:     1,
				Volumes: volumes,
				NCommon: nStar,
				F:       opts.F,
			})
			if err != nil {
				return fmt.Errorf("sim: fig4 t=%d frac=%.2f run %d: %w", t, frac, run, err)
			}
			res, err := core.EstimatePoint(w.Set)
			if err != nil {
				return err
			}
			base, err := core.EstimatePointBaseline(w.Set)
			if err != nil {
				return err
			}
			if prop[run], err = stats.RelativeError(res.Estimate, float64(nStar)); err != nil {
				return err
			}
			if bench[run], err = stats.RelativeError(base, float64(nStar)); err != nil {
				return err
			}
			return nil
		})
		if runErr != nil {
			return nil, runErr
		}
		points[fi] = Fig4Point{NStar: nStar, Proposed: meanRelErr(prop), Benchmark: meanRelErr(bench)}
	}
	return points, nil
}

// ScatterPoint is one measurement of Figures 5 and 6: actual persistent
// volume on x, estimated volume on y.
type ScatterPoint struct {
	Actual    float64
	Estimated float64
}

// RunFigScatterPoint regenerates a point-persistent scatter panel
// (Fig. 5 left with f=2, Fig. 6 left with f=3): one estimate per sweep
// position per run, t periods.
func RunFigScatterPoint(t int, opts Options) ([]ScatterPoint, error) {
	opts = opts.normalized()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	gv, err := synth.NewGenerator(opts.Seed+1, opts.S)
	if err != nil {
		return nil, err
	}
	volumes, err := gv.Volumes(t, synth.DefaultVolumeMin, synth.DefaultVolumeMax)
	if err != nil {
		return nil, err
	}
	nMin := volumes[0]
	for _, v := range volumes {
		if v < nMin {
			nMin = v
		}
	}
	fracs := sweepFracs()
	points := make([]ScatterPoint, len(fracs)*opts.Runs)
	runErr := parallelFor(len(points), opts.Workers, func(i int, _ *bitmap.JoinScratch) error {
		fi, run := i%len(fracs), i/len(fracs)
		nStar := int(fracs[fi] * float64(nMin))
		if nStar < 1 {
			nStar = 1
		}
		g, err := synth.NewGenerator(trialSeed(opts.Seed, uint64(fi)<<20|0xf5, uint64(run)), opts.S)
		if err != nil {
			return err
		}
		w, err := g.Point(synth.PointConfig{Loc: 1, Volumes: volumes, NCommon: nStar, F: opts.F})
		if err != nil {
			return err
		}
		res, err := core.EstimatePoint(w.Set)
		if err != nil {
			return fmt.Errorf("sim: scatter point frac=%.2f: %w", fracs[fi], err)
		}
		points[i] = ScatterPoint{Actual: float64(nStar), Estimated: res.Estimate}
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}
	return points, nil
}

// RunFigScatterP2P regenerates a point-to-point scatter panel (Fig. 5
// right with f=2, Fig. 6 right with f=3). Both locations draw per-period
// volumes from (2000, 10000]; the common volume sweeps 1%..50% of the
// smallest volume at either location.
func RunFigScatterP2P(t int, opts Options) ([]ScatterPoint, error) {
	opts = opts.normalized()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	gv, err := synth.NewGenerator(opts.Seed+2, opts.S)
	if err != nil {
		return nil, err
	}
	volA, err := gv.Volumes(t, synth.DefaultVolumeMin, synth.DefaultVolumeMax)
	if err != nil {
		return nil, err
	}
	volB, err := gv.Volumes(t, synth.DefaultVolumeMin, synth.DefaultVolumeMax)
	if err != nil {
		return nil, err
	}
	nMin := volA[0]
	for _, v := range volA {
		if v < nMin {
			nMin = v
		}
	}
	for _, v := range volB {
		if v < nMin {
			nMin = v
		}
	}
	fracs := sweepFracs()
	points := make([]ScatterPoint, len(fracs)*opts.Runs)
	runErr := parallelFor(len(points), opts.Workers, func(i int, sc *bitmap.JoinScratch) error {
		fi, run := i%len(fracs), i/len(fracs)
		nCommon := int(fracs[fi] * float64(nMin))
		if nCommon < 1 {
			nCommon = 1
		}
		g, err := synth.NewGenerator(trialSeed(opts.Seed, uint64(fi)<<20|0xf6, uint64(run)), opts.S)
		if err != nil {
			return err
		}
		w, err := g.Pair(synth.PairConfig{
			LocA: 1, LocB: 2,
			VolumesA: volA, VolumesB: volB,
			NCommon: nCommon, F: opts.F,
		})
		if err != nil {
			return err
		}
		res, err := core.EstimatePointToPointWith(sc, w.SetA, w.SetB, opts.S)
		if err != nil {
			return fmt.Errorf("sim: scatter p2p frac=%.2f: %w", fracs[fi], err)
		}
		points[i] = ScatterPoint{Actual: float64(nCommon), Estimated: res.Estimate}
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}
	return points, nil
}
