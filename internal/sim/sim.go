// Package sim drives the paper's evaluation (Section VI): it builds
// workloads with internal/synth (and the calibrated Sioux Falls table from
// internal/trips), runs the estimators of internal/core over many
// independent trials in parallel, and aggregates the relative-error series
// behind Table I and Figures 4–6.
package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"ptm/internal/bitmap"
	"ptm/internal/stats"
	"ptm/internal/synth"
)

// Options configures an experiment run.
type Options struct {
	// Runs is the number of independent trials averaged per cell. The
	// paper uses 1000; tests use far fewer.
	Runs int
	// Seed makes the whole experiment deterministic.
	Seed uint64
	// S and F are the representative-bit count and load factor; zero
	// values select the paper's defaults (s=3, f=2).
	S int
	F float64
	// Workers bounds trial parallelism; 0 means GOMAXPROCS.
	Workers int
}

// ErrBadOptions is returned for non-positive run counts.
var ErrBadOptions = errors.New("sim: Runs must be >= 1")

func (o Options) normalized() Options {
	if o.S == 0 {
		o.S = synth.DefaultS
	}
	if o.F == 0 {
		o.F = synth.DefaultF
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

func (o Options) validate() error {
	if o.Runs < 1 {
		return fmt.Errorf("%w: got %d", ErrBadOptions, o.Runs)
	}
	return nil
}

// mix64 derives independent per-trial seeds from (seed, cell, run).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func trialSeed(seed, cell, run uint64) uint64 {
	return mix64(seed ^ mix64(cell+0x1234) ^ mix64(run+0xabcd))
}

// parallelFor runs fn(0..n-1) on up to workers goroutines and returns the
// first error encountered. Dispatch stops as soon as any job fails, so a
// failing 1000-run cell aborts after at most a handful of trials instead
// of grinding through the rest.
//
// Each worker goroutine owns one bitmap.JoinScratch, passed to every job
// it runs: the estimator join pipelines lease their output buffers from
// it, so across the hundreds of trials of an evaluation cell the joined
// bitmaps are allocated once per worker rather than once per trial.
func parallelFor(n, workers int, fn func(i int, sc *bitmap.JoinScratch) error) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	done := make(chan struct{})
	var failOnce sync.Once
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		failOnce.Do(func() { close(done) })
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := new(bitmap.JoinScratch)
			for i := range jobs {
				select {
				case <-done:
					continue // cell already failed; drain without running
				default:
				}
				if err := fn(i, sc); err != nil {
					fail(err)
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-done:
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// meanRelErr averages per-trial relative errors.
func meanRelErr(errs []float64) float64 {
	m, err := stats.Mean(errs)
	if err != nil {
		return 0
	}
	return m
}

// repeatVolumes returns a t-length constant volume vector, the Table I
// per-period traffic model.
func repeatVolumes(v float64, t int) []int {
	out := make([]int, t)
	for i := range out {
		out[i] = int(v)
	}
	return out
}

// trialPair runs one point-to-point trial and returns the relative error
// of the proposed estimator. sc holds the trial's join outputs; a worker
// passes the same scratch to every trial it runs.
func trialPair(seed uint64, s int, f float64, volA, volB []int, nCommon int, sameSize bool, sc *bitmap.JoinScratch) (float64, error) {
	g, err := synth.NewGenerator(seed, s)
	if err != nil {
		return 0, err
	}
	w, err := g.Pair(synth.PairConfig{
		LocA: 1, LocB: 2,
		VolumesA: volA, VolumesB: volB,
		NCommon:  nCommon,
		F:        f,
		SameSize: sameSize,
	})
	if err != nil {
		return 0, err
	}
	res, err := estimatePair(w, s, sc)
	if err != nil {
		return 0, err
	}
	return stats.RelativeError(res, float64(nCommon))
}
