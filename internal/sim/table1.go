package sim

import (
	"fmt"

	"ptm/internal/bitmap"
	"ptm/internal/core"
	"ptm/internal/lpc"
	"ptm/internal/synth"
	"ptm/internal/trips"
)

// estimatePair runs the proposed point-to-point estimator over a pair
// workload and returns the estimate, leasing the join buffers from sc.
func estimatePair(w *synth.PairWorkload, s int, sc *bitmap.JoinScratch) (float64, error) {
	res, err := core.EstimatePointToPointWith(sc, w.SetA, w.SetB, s)
	if err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

// Table1Column is one column of Table I: a location L paired with L', the
// workload constants, and the measured mean relative errors.
type Table1Column struct {
	L       trips.Zone
	N       float64 // per-period volume at L
	M       int     // Eq. (2) record size at L
	MRatio  int     // m'/m
	NCommon float64 // true point-to-point persistent volume n''
	// RelErrByT maps t (number of periods) to the mean relative error of
	// the proposed estimator.
	RelErrByT map[int]float64
	// SameSizeRelErr is the t=5 mean relative error of the same-size
	// bitmap baseline (Table I's last row).
	SameSizeRelErr float64
}

// Table1Result aggregates the full table.
type Table1Result struct {
	NPrime  float64 // per-period volume at L'
	MPrime  int     // Eq. (2) record size at L'
	Ts      []int   // the t values measured (paper: 3, 5, 7, 10)
	Columns []Table1Column
}

// Table1Ts are the period counts of Table I.
var Table1Ts = []int{3, 5, 7, 10}

// SameSizeT is the t at which the same-size baseline row is measured.
const SameSizeT = 5

// RunTable1 regenerates Table I on the calibrated Sioux Falls table for
// the given locations (nil means all eight paper locations) and period
// counts (nil means Table1Ts).
func RunTable1(tab *trips.Table, locs []trips.Zone, ts []int, opts Options) (*Table1Result, error) {
	opts = opts.normalized()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if locs == nil {
		locs = trips.TableILocations
	}
	if ts == nil {
		ts = Table1Ts
	}
	nPrime, err := tab.Volume(trips.LPrime)
	if err != nil {
		return nil, err
	}
	mPrime, err := lpc.BitmapSize(nPrime, opts.F)
	if err != nil {
		return nil, err
	}
	result := &Table1Result{NPrime: nPrime, MPrime: mPrime, Ts: ts}

	for li, loc := range locs {
		n, err := tab.Volume(loc)
		if err != nil {
			return nil, err
		}
		nc, err := tab.PairVolume(loc, trips.LPrime)
		if err != nil {
			return nil, err
		}
		m, err := lpc.BitmapSize(n, opts.F)
		if err != nil {
			return nil, err
		}
		col := Table1Column{
			L: loc, N: n, M: m, MRatio: mPrime / m, NCommon: nc,
			RelErrByT: make(map[int]float64, len(ts)),
		}
		for ti, t := range ts {
			cell := uint64(li)<<32 | uint64(ti)<<8
			errs := make([]float64, opts.Runs)
			volA := repeatVolumes(n, t)
			volB := repeatVolumes(nPrime, t)
			runErr := parallelFor(opts.Runs, opts.Workers, func(run int, sc *bitmap.JoinScratch) error {
				re, err := trialPair(trialSeed(opts.Seed, cell, uint64(run)), opts.S, opts.F, volA, volB, int(nc), false, sc)
				if err != nil {
					return fmt.Errorf("sim: table1 L=%d t=%d run %d: %w", loc, t, run, err)
				}
				errs[run] = re
				return nil
			})
			if runErr != nil {
				return nil, runErr
			}
			col.RelErrByT[t] = meanRelErr(errs)
		}
		// Same-size baseline at t = SameSizeT.
		{
			cell := uint64(li)<<32 | 0xff00
			errs := make([]float64, opts.Runs)
			volA := repeatVolumes(n, SameSizeT)
			volB := repeatVolumes(nPrime, SameSizeT)
			runErr := parallelFor(opts.Runs, opts.Workers, func(run int, sc *bitmap.JoinScratch) error {
				re, err := trialPair(trialSeed(opts.Seed, cell, uint64(run)), opts.S, opts.F, volA, volB, int(nc), true, sc)
				if err != nil {
					return fmt.Errorf("sim: table1 same-size L=%d run %d: %w", loc, run, err)
				}
				errs[run] = re
				return nil
			})
			if runErr != nil {
				return nil, runErr
			}
			col.SameSizeRelErr = meanRelErr(errs)
		}
		result.Columns = append(result.Columns, col)
	}
	return result, nil
}
