package lint

// atomicmix enforces the single-discipline rule for atomically accessed
// fields: a field that is touched through sync/atomic — a plain word
// address-taken into atomic.OrUint64/LoadUint64 (the bitmap fast path),
// or a field of a sync/atomic value type — must never also be read or
// written plainly, except inside //ptm:exclusive regions (construction
// before publication, rotation after a grace period, quiescent
// consumers). Mixed access is how the lock-free ingest plane loses
// updates: a plain read can miss a concurrent atomic OR, and a plain
// write can clobber one.
//
// Slice-header-only uses (len, cap, key-only range) are exempt: they do
// not touch the shared words. Taking a field's address for an atomic
// call is the sanctioned access; taking the address of an atomic-typed
// field is also fine (a *atomic.Uint64 is still used atomically).

import (
	"fmt"
)

// AtomicMix returns the atomicmix analyzer.
func AtomicMix() *Analyzer {
	return &Analyzer{
		Name:       "atomicmix",
		Doc:        "fields accessed via sync/atomic are never also accessed plainly outside //ptm:exclusive regions",
		RunProgram: runAtomicMix,
	}
}

func runAtomicMix(pass *ProgramPass) {
	m := buildConcguard(pass)
	if len(m.atomicFields) == 0 && len(m.atomicTyped) == 0 {
		return
	}
	m.buildCallers()
	excl := m.exclusiveCovered()

	for _, f := range m.sortedFuncs() {
		for _, a := range f.accesses {
			if a.atomicArg || a.rangeKeyOnly {
				continue
			}
			atomicPos, inferred := m.atomicFields[a.field]
			typed := m.atomicTyped[a.field]
			if !inferred && !typed {
				continue
			}
			// A pointer to an atomic-typed field stays atomic; a pointer
			// to a plain word that is elsewhere used atomically does not.
			if typed && !inferred && a.addrOf {
				continue
			}
			if excl[f.key] || !m.nonDepPos(a.pos) {
				continue
			}
			verb := "read"
			switch {
			case a.addrOf:
				verb = "address-taken"
			case a.write:
				verb = "written"
			}
			var related []Related
			msg := fmt.Sprintf("atomic-typed field %s %s as a plain value (use its atomic methods)", shortKey(a.field), verb)
			if inferred {
				related = append(related, m.rel(atomicPos, fmt.Sprintf("%s accessed atomically here", shortKey(a.field))))
				msg = fmt.Sprintf("%s is accessed via sync/atomic but %s plainly here; mark the enclosing function //ptm:exclusive or use atomics", shortKey(a.field), verb)
			}
			pass.Report(a.pos, related, "%s", msg)
		}
	}
}
