package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop returns the analyzer flagging silently dropped errors in
// non-test files:
//
//   - a call used as a bare statement whose results include an error
//     ("unchecked"), and
//   - an assignment that discards every result with blank identifiers
//     while at least one of them is an error ("_ = f()", "_, _ = g()").
//
// Partial-use assignments such as "sd, _ = StdDev(xs)" are deliberate and
// not flagged. Direct `defer f()` / `go f()` calls are skipped — there is
// no place to put the error — but closures launched by them are analyzed
// like any other body. Printing to stdout/stderr via fmt, and writers
// documented never to fail (strings.Builder, bytes.Buffer), are exempt.
//
// Dropped errors matter more here than in most codebases: an ignored
// upload or unmarshal error silently removes records from the estimators,
// which shows up as a biased traffic estimate rather than a crash.
func ErrDrop() *Analyzer {
	return &Analyzer{
		Name: "errdrop",
		Doc:  "errors must be handled, returned, or explicitly allowed",
		Run:  runErrDrop,
	}
}

func runErrDrop(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := unparen(n.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if returnsError(pass, call) && !errExempt(pass, call) {
					pass.Reportf(n.Pos(), "result of %s includes an error that is not checked",
						calleeLabel(pass, call))
				}
			case *ast.AssignStmt:
				if !allBlank(n.Lhs) {
					return true
				}
				for _, rhs := range n.Rhs {
					call, ok := unparen(rhs).(*ast.CallExpr)
					if !ok || !returnsError(pass, call) || errExempt(pass, call) {
						continue
					}
					pass.Reportf(n.Pos(), "error from %s discarded with blank identifier",
						calleeLabel(pass, call))
				}
			}
			return true
		})
	}
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// returnsError reports whether any result of the call has type error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// errExempt lists call targets whose error results are documented or
// conventionally safe to ignore.
func errExempt(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true // write to os.Stdout; nothing actionable on failure
		case "Fprint", "Fprintf", "Fprintln":
			// Exempt only when demonstrably writing to the process's
			// standard streams.
			if len(call.Args) > 0 && isStdStream(pass, call.Args[0]) {
				return true
			}
		}
	}
	if recv := receiverNamed(fn); recv != "" {
		switch recv {
		case "strings.Builder", "bytes.Buffer":
			return true // Write* documented to always return nil error
		}
	}
	return false
}

// calleeFunc resolves the called function or method object, if static.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := pass.ObjectOf(id).(*types.Func)
	return fn
}

// receiverNamed returns "pkg.Type" for a method's receiver base type.
func receiverNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name()
}

// isStdStream matches the expressions os.Stdout and os.Stderr.
func isStdStream(pass *Pass, e ast.Expr) bool {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	return obj.Name() == "Stdout" || obj.Name() == "Stderr"
}

// calleeLabel renders the callee for a diagnostic message.
func calleeLabel(pass *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass, call); fn != nil {
		if recv := receiverNamed(fn); recv != "" {
			return "(" + recv + ")." + fn.Name()
		}
		if pkg := fn.Pkg(); pkg != nil && pkg.Path() != pass.Pkg.Path {
			return pkg.Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}
