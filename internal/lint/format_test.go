package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"strings"
	"testing"
)

func formatFixtureDiags(t *testing.T) []Diagnostic {
	t.Helper()
	loader := &Loader{}
	pkgs, err := loader.Load("./testdata/src/privflow/interproc")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := Run(loader.Fset(), pkgs, []*Analyzer{Privflow()})
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	return diags
}

func TestFormatJSON(t *testing.T) {
	diags := formatFixtureDiags(t)
	buf, err := FormatJSON(diags, nil)
	if err != nil {
		t.Fatalf("FormatJSON: %v", err)
	}
	var out []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
		Path    []struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Note string `json:"note"`
		} `json:"path"`
	}
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(out) != len(diags) {
		t.Fatalf("got %d JSON findings, want %d", len(out), len(diags))
	}
	for i, jd := range out {
		if jd.Rule != "privflow" || jd.File == "" || jd.Line == 0 || jd.Message == "" {
			t.Errorf("finding %d incomplete: %+v", i, jd)
		}
		if len(jd.Path) != len(diags[i].Related) {
			t.Errorf("finding %d has %d path hops, want %d", i, len(jd.Path), len(diags[i].Related))
		}
	}
	// A relativizer must rewrite every filename, including hop files.
	buf, err = FormatJSON(diags, func(string) string { return "REL" })
	if err != nil {
		t.Fatalf("FormatJSON with relativizer: %v", err)
	}
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	for _, jd := range out {
		if jd.File != "REL" {
			t.Errorf("relativizer not applied to finding file %q", jd.File)
		}
		for _, h := range jd.Path {
			if h.File != "REL" && h.File != "" {
				t.Errorf("relativizer not applied to hop file %q", h.File)
			}
		}
	}
}

// TestFormatJSONEmpty ensures a clean run renders as an empty array, not
// JSON null — consumers index into the result unconditionally.
func TestFormatJSONEmpty(t *testing.T) {
	buf, err := FormatJSON(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(buf)); got != "[]" {
		t.Fatalf("empty run renders as %q, want []", got)
	}
}

// sarifCheck validates one structural requirement of the SARIF 2.1.0
// schema: property present, right JSON type.
func sarifGet[T any](t *testing.T, obj map[string]any, key, where string) T {
	t.Helper()
	v, ok := obj[key]
	if !ok {
		t.Fatalf("SARIF: %s missing required property %q", where, key)
	}
	tv, ok := v.(T)
	if !ok {
		t.Fatalf("SARIF: %s property %q has type %T, want %T", where, key, v, tv)
	}
	return tv
}

// TestFormatSARIFSchema checks the produced document against the SARIF
// 2.1.0 schema's structural requirements (the required properties and
// types of sarifLog, run, tool, driver, result, location, codeFlow —
// §3.13, §3.14, §3.18, §3.19, §3.27, §3.28, §3.36 of the spec), without
// needing the network to fetch the schema itself.
func TestFormatSARIFSchema(t *testing.T) {
	diags := formatFixtureDiags(t)
	diags = append(diags, Diagnostic{
		Pos:     token.Position{Filename: "x.go", Line: 3},
		Rule:    StaleDirective,
		Message: "//ptmlint:allow errdrop no longer suppresses any finding; remove the directive",
	})
	buf, err := FormatSARIF(diags, All(), nil)
	if err != nil {
		t.Fatalf("FormatSARIF: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got := sarifGet[string](t, doc, "$schema", "log"); got != SARIFSchemaURI {
		t.Errorf("$schema = %q, want %q", got, SARIFSchemaURI)
	}
	if got := sarifGet[string](t, doc, "version", "log"); got != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", got)
	}
	runs := sarifGet[[]any](t, doc, "runs", "log")
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	run := runs[0].(map[string]any)
	tool := sarifGet[map[string]any](t, run, "tool", "run")
	driver := sarifGet[map[string]any](t, tool, "driver", "tool")
	if got := sarifGet[string](t, driver, "name", "driver"); got != "ptmlint" {
		t.Errorf("driver name = %q, want ptmlint", got)
	}
	ruleIDs := make(map[string]bool)
	for i, r := range sarifGet[[]any](t, driver, "rules", "driver") {
		rule := r.(map[string]any)
		where := fmt.Sprintf("rules[%d]", i)
		id := sarifGet[string](t, rule, "id", where)
		desc := sarifGet[map[string]any](t, rule, "shortDescription", where)
		sarifGet[string](t, desc, "text", where+".shortDescription")
		ruleIDs[id] = true
	}
	if !ruleIDs["privflow"] || !ruleIDs[StaleDirective] {
		t.Errorf("driver rules %v missing privflow or %s", ruleIDs, StaleDirective)
	}
	results := sarifGet[[]any](t, run, "results", "run")
	if len(results) != len(diags) {
		t.Fatalf("got %d results, want %d", len(results), len(diags))
	}
	var sawCodeFlow bool
	for i, r := range results {
		res := r.(map[string]any)
		where := fmt.Sprintf("results[%d]", i)
		if id := sarifGet[string](t, res, "ruleId", where); !ruleIDs[id] {
			t.Errorf("%s ruleId %q not declared by the driver", where, id)
		}
		if lvl := sarifGet[string](t, res, "level", where); lvl != "error" {
			t.Errorf("%s level = %q, want error", where, lvl)
		}
		msg := sarifGet[map[string]any](t, res, "message", where)
		sarifGet[string](t, msg, "text", where+".message")
		for j, l := range sarifGet[[]any](t, res, "locations", where) {
			checkSARIFLocation(t, l.(map[string]any), fmt.Sprintf("%s.locations[%d]", where, j))
		}
		flows, ok := res["codeFlows"].([]any)
		if !ok {
			continue
		}
		sawCodeFlow = true
		for _, f := range flows {
			tfs := sarifGet[[]any](t, f.(map[string]any), "threadFlows", where+".codeFlow")
			for _, tf := range tfs {
				locs := sarifGet[[]any](t, tf.(map[string]any), "locations", where+".threadFlow")
				if len(locs) == 0 {
					t.Errorf("%s has an empty threadFlow (schema requires minItems 1)", where)
				}
				for k, tl := range locs {
					lw := fmt.Sprintf("%s.threadFlow[%d]", where, k)
					loc := sarifGet[map[string]any](t, tl.(map[string]any), "location", lw)
					checkSARIFLocation(t, loc, lw+".location")
				}
			}
		}
	}
	if !sawCodeFlow {
		t.Error("no result carries a codeFlow; privflow witness paths must be exported")
	}
}

// TestFormatSARIFAcquisitionPath checks that a lockorder inversion's
// acquisition-path witness survives the SARIF encoding: the result
// carries a codeFlow whose single threadFlow walks the declaration, the
// call hop, and the inner acquisition — at least three located steps.
func TestFormatSARIFAcquisitionPath(t *testing.T) {
	diags := loadConcguardFixture(t, "lockorder", LockOrder())
	buf, err := FormatSARIF(diags, All(), nil)
	if err != nil {
		t.Fatalf("FormatSARIF: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	runs := sarifGet[[]any](t, doc, "runs", "log")
	results := sarifGet[[]any](t, runs[0].(map[string]any), "results", "run")
	var sawInversion bool
	for i, r := range results {
		res := r.(map[string]any)
		where := fmt.Sprintf("results[%d]", i)
		msg := sarifGet[map[string]any](t, res, "message", where)
		if !strings.Contains(sarifGet[string](t, msg, "text", where), "inverting declared order") {
			continue
		}
		sawInversion = true
		if id := sarifGet[string](t, res, "ruleId", where); id != "lockorder" {
			t.Errorf("%s ruleId = %q, want lockorder", where, id)
		}
		flows := sarifGet[[]any](t, res, "codeFlows", where)
		if len(flows) != 1 {
			t.Fatalf("%s has %d codeFlows, want 1", where, len(flows))
		}
		tfs := sarifGet[[]any](t, flows[0].(map[string]any), "threadFlows", where)
		if len(tfs) != 1 {
			t.Fatalf("%s has %d threadFlows, want 1", where, len(tfs))
		}
		locs := sarifGet[[]any](t, tfs[0].(map[string]any), "locations", where)
		if len(locs) < 3 {
			t.Fatalf("%s acquisition path has %d steps, want at least 3", where, len(locs))
		}
		var notes []string
		for k, tl := range locs {
			lw := fmt.Sprintf("%s.threadFlow[%d]", where, k)
			loc := sarifGet[map[string]any](t, tl.(map[string]any), "location", lw)
			checkSARIFLocation(t, loc, lw+".location")
			m := sarifGet[map[string]any](t, loc, "message", lw)
			notes = append(notes, sarifGet[string](t, m, "text", lw+".message"))
		}
		joined := strings.Join(notes, " | ")
		for _, want := range []string{"declared here", "while holding", "acquires"} {
			if !strings.Contains(joined, want) {
				t.Errorf("acquisition path %q never says %q", joined, want)
			}
		}
	}
	if !sawInversion {
		t.Fatal("no inversion result in SARIF output")
	}
}

func checkSARIFLocation(t *testing.T, loc map[string]any, where string) {
	t.Helper()
	phys := sarifGet[map[string]any](t, loc, "physicalLocation", where)
	art := sarifGet[map[string]any](t, phys, "artifactLocation", where)
	if uri := sarifGet[string](t, art, "uri", where); uri == "" || strings.Contains(uri, "\\") {
		t.Errorf("%s uri %q empty or not slash-separated", where, uri)
	}
	region := sarifGet[map[string]any](t, phys, "region", where)
	if line := sarifGet[float64](t, region, "startLine", where); line < 1 {
		t.Errorf("%s startLine %v < 1 (schema minimum)", where, line)
	}
}
