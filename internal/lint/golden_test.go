package lint

import (
	"fmt"
	"regexp"
	"testing"
)

// The golden files under testdata/src annotate each expected finding with
// a trailing comment of the form
//
//	// want `regexp`
//
// on the line the diagnostic must land on. The test fails on any
// unexpected diagnostic and on any unmet expectation, so the fixtures
// double as false-positive regression tests: every unannotated line is an
// assertion that the analyzer stays silent there.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

type wantExpect struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func (w *wantExpect) String() string {
	return fmt.Sprintf("%s:%d: `%s`", w.file, w.line, w.re)
}

func collectWants(t *testing.T, loader *Loader, pkgs []*Package) []*wantExpect {
	t.Helper()
	var wants []*wantExpect
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("bad want pattern %q: %v", m[1], err)
						}
						pos := loader.Fset().Position(c.Pos())
						wants = append(wants, &wantExpect{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

func TestGolden(t *testing.T) {
	cases := []struct {
		name     string
		dir      string
		analyzer *Analyzer
		// wantNone ignores the fixture's annotations and requires zero
		// diagnostics (used to re-run a fixture under a configuration
		// where the rule must not apply at all).
		wantNone bool
		// audit runs the suppression audit too, so stale-directive
		// findings join the analyzer's own.
		audit bool
	}{
		{name: "cryptorand", dir: "cryptorandtest",
			analyzer: Cryptorand([]string{"testdata/src/cryptorandtest"})},
		{name: "cryptorand-noncritical", dir: "cryptorandtest",
			analyzer: Cryptorand(nil), wantNone: true},
		{name: "pow2size", dir: "pow2sizetest", analyzer: Pow2Size()},
		{name: "lockedfields", dir: "lockedfieldstest", analyzer: LockedFields()},
		{name: "errdrop", dir: "errdroptest", analyzer: ErrDrop()},
		{name: "goroutinehygiene", dir: "goroutinetest", analyzer: GoroutineHygiene()},
		{name: "privflow-direct", dir: "privflow/direct", analyzer: Privflow()},
		{name: "privflow-interproc", dir: "privflow/interproc", analyzer: Privflow()},
		{name: "privflow-closure", dir: "privflow/closure", analyzer: Privflow()},
		{name: "privflow-builtin", dir: "privflow/builtin", analyzer: Privflow()},
		{name: "privflow-atomic", dir: "privflow/atomic", analyzer: Privflow()},
		{name: "privflow-wal", dir: "privflow/wal", analyzer: Privflow()},
		{name: "privflow-sanitized", dir: "privflow/sanitized",
			analyzer: Privflow(), wantNone: true},
		{name: "stale-directive", dir: "staletest", analyzer: ErrDrop(), audit: true},
		{name: "concguard-lockorder", dir: "concguard/lockorder", analyzer: LockOrder()},
		{name: "concguard-guardedby", dir: "concguard/guardedby", analyzer: GuardedBy()},
		{name: "concguard-atomicmix", dir: "concguard/atomicmix", analyzer: AtomicMix()},
		{name: "concguard-rcu", dir: "concguard/rcu", analyzer: RCU()},
		{name: "stale-directive-concguard", dir: "staleconctest",
			analyzer: GuardedBy(), audit: true},
		{name: "perfguard-noalloc", dir: "perfguard/noalloc", analyzer: Noalloc()},
		{name: "perfguard-inline", dir: "perfguard/inline", analyzer: Inline()},
		{name: "perfguard-bce", dir: "perfguard/bce", analyzer: BCE()},
		{name: "perfguard-clean-noalloc", dir: "perfguard/clean",
			analyzer: Noalloc(), wantNone: true},
		{name: "perfguard-clean-inline", dir: "perfguard/clean",
			analyzer: Inline(), wantNone: true},
		{name: "perfguard-clean-bce", dir: "perfguard/clean",
			analyzer: BCE(), wantNone: true},
		{name: "unknown-directive", dir: "badfacttest", analyzer: ErrDrop(), audit: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			loader := &Loader{}
			pkgs, err := loader.Load("./testdata/src/" + tc.dir)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			if n := len(nonDep(pkgs)); n != 1 {
				t.Fatalf("fixture loaded %d target packages, want 1", n)
			}
			run := Run
			if tc.audit {
				run = RunAudited
			}
			diags := run(loader.Fset(), pkgs, []*Analyzer{tc.analyzer})
			if tc.wantNone {
				for _, d := range diags {
					t.Errorf("unexpected diagnostic: %s", d)
				}
				return
			}
			wants := collectWants(t, loader, pkgs)
			if len(wants) == 0 {
				t.Fatal("fixture has no want annotations")
			}
			for _, d := range diags {
				if d.Rule != tc.analyzer.Name &&
					!(tc.audit && (d.Rule == StaleDirective || d.Rule == UnknownDirective)) {
					t.Errorf("diagnostic %s carries rule %q, want %q", d, d.Rule, tc.analyzer.Name)
				}
				matched := false
				for _, w := range wants {
					if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
						continue
					}
					if w.re.MatchString(d.Message) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("missing diagnostic: want %s", w)
				}
			}
		})
	}
}

// nonDep filters out module dependency packages, which the loader now
// includes for cross-package fact export.
func nonDep(pkgs []*Package) []*Package {
	var out []*Package
	for _, p := range pkgs {
		if !p.Dep {
			out = append(out, p)
		}
	}
	return out
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(All()) {
		t.Fatalf("ByName(\"\") returned %d analyzers, want %d", len(all), len(All()))
	}
	subset, err := ByName("errdrop, pow2size")
	if err != nil {
		t.Fatal(err)
	}
	if len(subset) != 2 || subset[0].Name != "errdrop" || subset[1].Name != "pow2size" {
		t.Fatalf("ByName subset = %v", subset)
	}
	if _, err := ByName("nosuchrule"); err == nil {
		t.Fatal("ByName accepted an unknown rule")
	}
}

func TestAnalyzerNamesDistinct(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v missing name or doc", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
