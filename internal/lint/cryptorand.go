package lint

import (
	"strconv"
	"strings"
)

// defaultPrivacyCritical lists the package-path suffixes where weak
// randomness breaks the paper's privacy argument (Section V): vehicle key
// material Kv and C (internal/vhash), authority/RSU credentials
// (internal/pki), and the vehicle runtime that draws one-time MAC
// addresses (internal/vehicle).
var defaultPrivacyCritical = []string{
	"internal/vhash",
	"internal/pki",
	"internal/vehicle",
}

// Cryptorand returns the analyzer forbidding math/rand imports in
// privacy-critical packages. critical overrides the default package list
// (used by tests); nil selects the default. A package is critical when its
// import path equals an entry or ends with "/"+entry.
//
// The rule exists because a seeded or guessable generator lets an observer
// reconstruct Kv, the constant array C, or the one-time MACs — exactly the
// linkage the pseudonym-change literature shows is exploitable. Simulation
// code that genuinely needs reproducible randomness annotates the import
// line with //ptmlint:allow cryptorand.
func Cryptorand(critical []string) *Analyzer {
	if critical == nil {
		critical = defaultPrivacyCritical
	}
	return &Analyzer{
		Name: "cryptorand",
		Doc:  "privacy-critical packages must use crypto/rand, not math/rand",
		Run: func(pass *Pass) {
			if !pathMatches(pass.Pkg.Path, critical) {
				return
			}
			for _, f := range pass.Pkg.Files {
				for _, imp := range f.Imports {
					path, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if path == "math/rand" || path == "math/rand/v2" {
						pass.Reportf(imp.Pos(),
							"import of %s in privacy-critical package %s; use crypto/rand for key material and one-time identifiers",
							path, pass.Pkg.Path)
					}
				}
			}
		},
	}
}

func pathMatches(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
