package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineHygiene returns the analyzer for `go` statements in non-test
// files. It reports two hazards:
//
//   - a goroutine closure that captures a `for` loop variable. Go 1.22
//     made loop variables per-iteration, so this is no longer the classic
//     aliasing bug, but the repo keeps the rule: hoisting the value into
//     the closure's parameter list makes the data flow explicit and keeps
//     the code correct under pre-1.22 toolchains and manual backports;
//   - a goroutine with no visible completion linkage — nothing in the
//     launch references a sync.WaitGroup, sends or receives on a channel,
//     or takes a context.Context. Such fire-and-forget goroutines are how
//     the transport and sim layers would leak work past Close/shutdown.
//
// The linkage check is syntactic and local to the launch expression; a
// goroutine coordinated through struct state it mutates under lock should
// carry a //ptmlint:allow goroutinehygiene directive explaining the
// lifecycle.
func GoroutineHygiene() *Analyzer {
	return &Analyzer{
		Name: "goroutinehygiene",
		Doc:  "goroutines must not capture loop variables and need a visible completion linkage",
		Run:  runGoroutineHygiene,
	}
}

func runGoroutineHygiene(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		var walk func(n ast.Node, loopVars map[types.Object]bool)
		walk = func(n ast.Node, loopVars map[types.Object]bool) {
			switch n := n.(type) {
			case nil:
				return
			case *ast.RangeStmt:
				inner := withLoopVars(pass, loopVars, n.Key, n.Value)
				walkChildren(n, func(c ast.Node) { walk(c, inner) })
				return
			case *ast.ForStmt:
				inner := loopVars
				if init, ok := n.Init.(*ast.AssignStmt); ok {
					inner = withLoopVars(pass, loopVars, init.Lhs...)
				}
				walkChildren(n, func(c ast.Node) { walk(c, inner) })
				return
			case *ast.GoStmt:
				checkGoStmt(pass, n, loopVars)
			}
			walkChildren(n, func(c ast.Node) { walk(c, loopVars) })
		}
		walk(f, nil)
	}
}

// withLoopVars extends the active loop-variable set with the objects the
// given expressions define.
func withLoopVars(pass *Pass, base map[types.Object]bool, exprs ...ast.Expr) map[types.Object]bool {
	out := make(map[types.Object]bool, len(base)+len(exprs))
	for k := range base {
		out[k] = true
	}
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := pass.Pkg.Info.Defs[id]; obj != nil {
			out[obj] = true
		}
	}
	return out
}

// walkChildren visits the direct children of n.
func walkChildren(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			visit(c)
		}
		return false
	})
}

func checkGoStmt(pass *Pass, g *ast.GoStmt, loopVars map[types.Object]bool) {
	// Loop-variable capture: only closures capture; a call like
	// `go worker(i)` passes the value and is safe.
	if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok && len(loopVars) > 0 {
		declared := make(map[types.Object]bool)
		ast.Inspect(lit, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Pkg.Info.Defs[id]; obj != nil {
					declared[obj] = true
				}
			}
			return true
		})
		reported := make(map[types.Object]bool)
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil || !loopVars[obj] || declared[obj] || reported[obj] {
				return true
			}
			reported[obj] = true
			pass.Reportf(id.Pos(),
				"goroutine closure captures loop variable %s; pass it as an argument instead", id.Name)
			return true
		})
	}

	if !hasCompletionLinkage(pass, g) {
		pass.Reportf(g.Pos(),
			"goroutine has no visible completion linkage (WaitGroup, channel send/receive, or context)")
	}
}

// hasCompletionLinkage scans the launch expression (the called function
// literal or the call's arguments) for evidence that someone can wait for
// or cancel the goroutine.
func hasCompletionLinkage(pass *Pass, g *ast.GoStmt) bool {
	found := false
	ast.Inspect(g.Call, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			// Ranging over a channel is a receive.
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass, n); fn != nil {
				if recv := receiverNamed(fn); recv == "sync.WaitGroup" {
					found = true
				}
				if fn.Name() == "Done" || fn.Name() == "Deadline" || fn.Name() == "Err" {
					if isContextExpr(pass, n.Fun) {
						found = true
					}
				}
			}
		case *ast.Ident:
			if obj := pass.Pkg.Info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isContextExpr(pass *Pass, e ast.Expr) bool {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := pass.TypeOf(sel.X)
	return t != nil && isContextType(t)
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
