package lint

// privflow is the interprocedural taint analysis that turns the paper's
// central privacy claim (Sections II-D and V) into a machine-checked
// property of the code: private vehicle state — the key Kv, the constant
// array C, the plaintext vehicle identity, and infrastructure private
// keys — must never reach a public sink (transport sends, record/bitmap
// writes, fmt/log formatting, marshal/encode calls) except through the
// declared sanitizer, the hash reduction of internal/vhash.
//
// The engine is summary-based and flow-insensitive: every parameter,
// result, field, and variable of the program is a node in a global flow
// graph keyed by stable, package-qualified strings (so nodes unify across
// packages without shared *types.Object identity — the loader's
// cross-package fact export). Function bodies contribute edges for
// assignments, composite literals, call-argument/return bindings, range
// and send statements, and closures; taint is reachability from source
// nodes, and every finding carries the full source→sink witness path,
// one file:line hop per edge.
//
// Sources, sinks, and sanitizers come from two places: the built-in
// tables below (standard-library sinks and crypto declassifiers that
// cannot be annotated in place) and //ptm:source, //ptm:sink,
// //ptm:sanitizer doc-comment directives on the repo's own declarations,
// so future subsystems opt in without touching this engine.
//
// Deliberate approximations (documented, conservative for this codebase):
//   - field-sensitive reads: x.f is tainted iff something tainted was
//     ever stored in a field named f of x's (named) type — container
//     taint does not bleed into every field read;
//   - len/cap do not propagate taint: aggregate cardinality is the
//     system's intended public output (the whole point of the paper);
//   - no implicit flows through branch conditions;
//   - dynamic calls through function values propagate operand taint and
//     bind arguments only when the function value is syntactically known
//     (declared function or function literal);
//   - results of the built-in error type do not absorb argument taint
//     from opaque (external or dynamic) calls: a secret can only enter
//     an error value through a formatting call, and fmt.Errorf is itself
//     a sink, so the leak is reported at its true entry point. Loaded
//     bodies keep precise per-result propagation, so a custom error type
//     wrapping private state is still caught.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Built-in sinks: standard-library calls whose arguments become public
// output. The repo's own sinks (dsrc sends, transport frames, bitmap and
// record writes, the CLI printer) are declared in place with //ptm:sink.
var builtinSinks = map[string]string{
	"fmt.Print": "formatting", "fmt.Printf": "formatting", "fmt.Println": "formatting",
	"fmt.Sprint": "formatting", "fmt.Sprintf": "formatting", "fmt.Sprintln": "formatting",
	"fmt.Fprint": "formatting", "fmt.Fprintf": "formatting", "fmt.Fprintln": "formatting",
	"fmt.Errorf": "formatting", "fmt.Append": "formatting", "fmt.Appendf": "formatting",
	"fmt.Appendln": "formatting",
	"log.Print":    "logging", "log.Printf": "logging", "log.Println": "logging",
	"log.Fatal": "logging", "log.Fatalf": "logging", "log.Fatalln": "logging",
	"log.Panic": "logging", "log.Panicf": "logging", "log.Panicln": "logging",
	"log.Output":       "logging",
	"log.Logger.Print": "logging", "log.Logger.Printf": "logging", "log.Logger.Println": "logging",
	"log.Logger.Fatal": "logging", "log.Logger.Fatalf": "logging", "log.Logger.Fatalln": "logging",
	"log.Logger.Panic": "logging", "log.Logger.Panicf": "logging", "log.Logger.Panicln": "logging",
	"log.Logger.Output":            "logging",
	"encoding/json.Marshal":        "encoding",
	"encoding/json.MarshalIndent":  "encoding",
	"encoding/json.Encoder.Encode": "encoding",
	"encoding/gob.Encoder.Encode":  "encoding",
	"encoding/xml.Marshal":         "encoding",
	"encoding/csv.Writer.Write":    "encoding",
	"encoding/csv.Writer.WriteAll": "encoding",
	"encoding/binary.Write":        "encoding",
}

// Built-in sanitizers: the vhash index reduction (the paper's sole
// declassifier — also annotated in place, kept here as belt-and-braces)
// and the crypto operations whose outputs are public by construction
// (signatures, certificates, TLS-encrypted connections).
var builtinSanitizers = map[string]bool{
	"ptm/internal/vhash.Identity.Index": true,
	"crypto/ecdsa.SignASN1":             true,
	"crypto/x509.CreateCertificate":     true,
	"crypto/tls.Dial":                   true,
	"crypto/tls.Client":                 true,
	"crypto/tls.Server":                 true,
	"crypto/tls.NewListener":            true,
}

// Built-in tainted types: every expression of one of these types is
// private state. The vhash entries are also annotated in place; the
// ecdsa entry cannot be (standard library).
var builtinSourceTypes = map[string]string{
	"ptm/internal/vhash.Identity":  "vehicle identity state (v, Kv, C)",
	"ptm/internal/vhash.VehicleID": "plaintext vehicle identity",
	"crypto/ecdsa.PrivateKey":      "ECDSA private key",
}

// Built-in tainted fields (also annotated in place in their packages).
var builtinSourceFields = map[string]string{
	"ptm/internal/vhash.Identity.id":  "plaintext vehicle identity v",
	"ptm/internal/vhash.Identity.kv":  "vehicle private key Kv",
	"ptm/internal/vhash.Identity.c":   "vehicle constant array C",
	"ptm/internal/pki.Authority.key":  "authority signing key",
	"ptm/internal/pki.Credential.key": "RSU signing key",
}

// Privflow returns the whole-program taint analyzer enforcing the
// paper's privacy boundary (§II-D, §V).
func Privflow() *Analyzer {
	return &Analyzer{
		Name: "privflow",
		Doc:  "private vehicle state must not reach transport/record/log/encode sinks un-sanitized",
		RunProgram: func(pass *ProgramPass) {
			newPrivflow(pass).run()
		},
	}
}

type nodeID string

type pfEdge struct {
	to   nodeID
	pos  token.Position
	note string
}

type funcInfo struct {
	key      string
	recv     nodeID
	params   []nodeID
	results  []nodeID
	variadic bool
}

type sinkCall struct {
	pos  token.Pos
	key  string // sink funcKey
	kind string
	args [][]nodeID // receiver (if any) first, then arguments
}

type privflow struct {
	pass *ProgramPass
	fset *token.FileSet

	sinks      map[string]string
	sanitizers map[string]bool
	srcTypes   map[string]string
	srcFields  map[string]string // "field:" node id -> label

	defined    map[string]*funcInfo
	funcByNode map[nodeID]*funcInfo
	edges      map[nodeID][]pfEdge
	seeds      map[nodeID]string
	seedPos    map[nodeID]token.Position
	desc       map[nodeID]string
	sinkCalls  []sinkCall
	litSeq     int
	reached    map[nodeID]bool
}

func newPrivflow(pass *ProgramPass) *privflow {
	pf := &privflow{
		pass:       pass,
		fset:       pass.Fset,
		sinks:      make(map[string]string),
		sanitizers: make(map[string]bool),
		srcTypes:   make(map[string]string),
		srcFields:  make(map[string]string),
		defined:    make(map[string]*funcInfo),
		funcByNode: make(map[nodeID]*funcInfo),
		edges:      make(map[nodeID][]pfEdge),
		seeds:      make(map[nodeID]string),
		seedPos:    make(map[nodeID]token.Position),
		desc:       make(map[nodeID]string),
	}
	for k, v := range builtinSinks {
		pf.sinks[k] = v
	}
	for k := range builtinSanitizers {
		pf.sanitizers[k] = true
	}
	for k, v := range builtinSourceTypes {
		pf.srcTypes[k] = v
	}
	for k, v := range builtinSourceFields {
		id := nodeID("field:" + k)
		pf.srcFields[string(id)] = v
		pf.desc[id] = k
	}
	return pf
}

func (pf *privflow) run() {
	// Phase 1: facts — annotations, function registry.
	for _, pkg := range pf.pass.Pkgs {
		pf.collectFacts(pkg)
	}
	// Seed annotated/built-in field sources.
	for id, label := range pf.srcFields {
		pf.seed(nodeID(id), label)
	}
	// Phase 2: edges.
	for _, pkg := range pf.pass.Pkgs {
		pf.buildPackage(pkg)
	}
	// Phase 3: reachability + sink checks.
	prev := pf.solve()
	for _, sc := range pf.sinkCalls {
		pf.reportIfTainted(sc, prev)
	}
}

// --- helpers: stable cross-package keys -------------------------------

func deref(t types.Type) types.Type {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		return t
	}
}

func namedFullName(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// funcKey is the stable, pointer-insensitive identity of a function or
// method: "pkg/path.Func" or "pkg/path.Type.Method". Identical whether
// the *types.Func came from source or from export data — this is what
// lets per-package summaries link into one program-wide graph.
func funcKey(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n, ok := deref(sig.Recv().Type()).(*types.Named); ok {
			return namedFullName(n) + "." + f.Name()
		}
		return f.FullName()
	}
	if f.Pkg() != nil {
		return f.Pkg().Path() + "." + f.Name()
	}
	return f.Name()
}

func ownerName(t types.Type) string {
	if n, ok := deref(t).(*types.Named); ok {
		return namedFullName(n)
	}
	return "anon"
}

// taintedTypeOf reports whether t is (or contains, through pointers,
// slices, arrays, maps, or channels) a declared source type.
func (pf *privflow) taintedTypeOf(t types.Type) (nodeID, string, bool) {
	for depth := 0; t != nil && depth < 10; depth++ {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Chan:
			t = u.Elem()
		case *types.Map:
			if id, label, ok := pf.taintedTypeOf(u.Key()); ok {
				return id, label, true
			}
			t = u.Elem()
		case *types.Named:
			name := namedFullName(u)
			if label, ok := pf.srcTypes[name]; ok {
				id := nodeID("type:" + name)
				if _, seeded := pf.seeds[id]; !seeded {
					pf.desc[id] = "value of type " + name
					pf.seed(id, label)
				}
				return id, label, true
			}
			return "", "", false
		default:
			return "", "", false
		}
	}
	return "", "", false
}

func (pf *privflow) seed(id nodeID, label string) {
	if _, ok := pf.seeds[id]; !ok {
		pf.seeds[id] = label
	}
}

func (pf *privflow) edge(from, to nodeID, pos token.Pos, note string) {
	if from == "" || to == "" || from == to {
		return
	}
	pf.edges[from] = append(pf.edges[from], pfEdge{to: to, pos: pf.fset.Position(pos), note: note})
}

func (pf *privflow) describe(id nodeID) string {
	if d, ok := pf.desc[id]; ok {
		return d
	}
	return string(id)
}

// --- phase 1: fact collection ----------------------------------------

const (
	factSource    = "ptm:source"
	factSink      = "ptm:sink"
	factSanitizer = "ptm:sanitizer"
)

// ptmFact scans comment groups for a //ptm:<kind> directive and returns
// its free-form label text.
func ptmFact(kind string, groups ...*ast.CommentGroup) (string, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, kind) {
				continue
			}
			rest := text[len(kind):]
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue
			}
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

func (pf *privflow) collectFacts(pkg *Package) {
	info := pkg.Info
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				fn, _ := info.Defs[d.Name].(*types.Func)
				if fn == nil {
					continue
				}
				key := funcKey(fn)
				fi := pf.registerFunc(key, fn.Type().(*types.Signature))
				if d.Body != nil {
					pf.defined[key] = fi
				}
				pf.funcByNode[nodeID("func:"+key)] = fi
				if label, ok := ptmFact(factSink, d.Doc); ok {
					if label == "" {
						label = "annotated sink"
					}
					pf.sinks[key] = label
				}
				if _, ok := ptmFact(factSanitizer, d.Doc); ok {
					pf.sanitizers[key] = true
				}
				if label, ok := ptmFact(factSource, d.Doc); ok {
					if label == "" {
						label = key + " result"
					}
					for _, r := range fi.results {
						pf.desc[r] = "result of " + key
						pf.seed(r, label)
						pf.seedPos[r] = pf.fset.Position(d.Pos())
					}
				}
			case *ast.GenDecl:
				pf.collectGenDeclFacts(pkg, d)
			}
		}
	}
}

func (pf *privflow) collectGenDeclFacts(pkg *Package, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			docs := []*ast.CommentGroup{s.Doc, s.Comment}
			if len(d.Specs) == 1 {
				docs = append(docs, d.Doc)
			}
			typeName := pkg.Path + "." + s.Name.Name
			if label, ok := ptmFact(factSource, docs...); ok {
				if label == "" {
					label = typeName
				}
				pf.srcTypes[typeName] = label
			}
			if st, ok := s.Type.(*ast.StructType); ok {
				for _, field := range st.Fields.List {
					label, ok := ptmFact(factSource, field.Doc, field.Comment)
					if !ok {
						continue
					}
					for _, name := range field.Names {
						if label == "" {
							label = typeName + "." + name.Name
						}
						id := nodeID("field:" + typeName + "." + name.Name)
						pf.srcFields[string(id)] = label
						pf.desc[id] = typeName + "." + name.Name
						pf.seedPos[id] = pf.fset.Position(name.Pos())
					}
				}
			}
		case *ast.ValueSpec:
			docs := []*ast.CommentGroup{s.Doc, s.Comment}
			if len(d.Specs) == 1 {
				docs = append(docs, d.Doc)
			}
			label, ok := ptmFact(factSource, docs...)
			if !ok {
				continue
			}
			for _, name := range s.Names {
				if label == "" {
					label = pkg.Path + "." + name.Name
				}
				id := nodeID("var:" + pkg.Path + "." + name.Name)
				pf.desc[id] = "package variable " + pkg.Path + "." + name.Name
				pf.seed(id, label)
				pf.seedPos[id] = pf.fset.Position(name.Pos())
			}
		}
	}
}

func (pf *privflow) registerFunc(key string, sig *types.Signature) *funcInfo {
	fi := &funcInfo{key: key, variadic: sig.Variadic()}
	if sig.Recv() != nil {
		fi.recv = nodeID("param:" + key + "#recv")
		pf.desc[fi.recv] = "receiver of " + key
	}
	for i := 0; i < sig.Params().Len(); i++ {
		id := nodeID(fmt.Sprintf("param:%s#%d", key, i))
		pf.desc[id] = fmt.Sprintf("parameter %d of %s", i, key)
		fi.params = append(fi.params, id)
	}
	for i := 0; i < sig.Results().Len(); i++ {
		id := nodeID(fmt.Sprintf("ret:%s#%d", key, i))
		pf.desc[id] = "result of " + key
		fi.results = append(fi.results, id)
	}
	return fi
}

// --- phase 2: building the flow graph --------------------------------

type pfScope struct {
	pf     *privflow
	pkg    *Package
	fnKey  string
	objMap map[types.Object]nodeID
}

func (pf *privflow) buildPackage(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				pf.buildFunc(pkg, d)
			case *ast.GenDecl:
				if d.Tok != token.VAR {
					continue
				}
				sc := &pfScope{pf: pf, pkg: pkg, fnKey: "pkginit:" + pkg.Path, objMap: map[types.Object]nodeID{}}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) == 0 {
						continue
					}
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					sc.assign(lhs, vs.Values, vs.Pos())
				}
			}
		}
	}
}

func (pf *privflow) buildFunc(pkg *Package, d *ast.FuncDecl) {
	fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
	if fn == nil || d.Body == nil {
		return
	}
	key := funcKey(fn)
	fi := pf.defined[key]
	if fi == nil {
		return
	}
	sc := &pfScope{pf: pf, pkg: pkg, fnKey: key, objMap: map[types.Object]nodeID{}}
	sc.bindSignature(fn.Type().(*types.Signature), fi)
	sc.walkStmt(d.Body)
}

// bindSignature maps the declared parameter/receiver/result objects to
// the function's global summary nodes, so body edges land on them. In a
// sanitizer, results map to throwaway locals instead: nothing the body
// computes may taint the (clean by definition) result nodes.
func (sc *pfScope) bindSignature(sig *types.Signature, fi *funcInfo) {
	if sig.Recv() != nil && fi.recv != "" {
		sc.objMap[sig.Recv()] = fi.recv
	}
	for i := 0; i < sig.Params().Len() && i < len(fi.params); i++ {
		sc.objMap[sig.Params().At(i)] = fi.params[i]
	}
	san := sc.pf.sanitizers[fi.key]
	for i := 0; i < sig.Results().Len() && i < len(fi.results); i++ {
		if san {
			sc.objMap[sig.Results().At(i)] = nodeID("loc:" + fi.key + "#sanresult")
		} else {
			sc.objMap[sig.Results().At(i)] = fi.results[i]
		}
	}
}

func (sc *pfScope) currentResults() []nodeID {
	if sc.pf.sanitizers[sc.fnKey] {
		return nil
	}
	if fi := sc.pf.defined[sc.fnKey]; fi != nil {
		return fi.results
	}
	if fi := sc.pf.funcByNode[nodeID("func:"+sc.fnKey)]; fi != nil {
		return fi.results
	}
	return nil
}

func (sc *pfScope) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		if st == nil {
			return
		}
		for _, sub := range st.List {
			sc.walkStmt(sub)
		}
	case *ast.AssignStmt:
		sc.assign(st.Lhs, st.Rhs, st.TokPos)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				sc.assign(lhs, vs.Values, vs.Pos())
			}
		}
	case *ast.ReturnStmt:
		sc.walkReturn(st)
	case *ast.ExprStmt:
		sc.exprNodes(st.X)
	case *ast.GoStmt:
		sc.exprNodes(st.Call)
	case *ast.DeferStmt:
		sc.exprNodes(st.Call)
	case *ast.SendStmt:
		vals := sc.exprNodes(st.Value)
		for _, ch := range sc.exprNodes(st.Chan) {
			for _, v := range vals {
				sc.pf.edge(v, ch, st.Arrow, "sent into "+sc.pf.describe(ch))
			}
		}
	case *ast.IfStmt:
		sc.walkStmt(st.Init)
		sc.exprNodes(st.Cond)
		sc.walkStmt(st.Body)
		sc.walkStmt(st.Else)
	case *ast.ForStmt:
		sc.walkStmt(st.Init)
		if st.Cond != nil {
			sc.exprNodes(st.Cond)
		}
		sc.walkStmt(st.Post)
		sc.walkStmt(st.Body)
	case *ast.RangeStmt:
		src := sc.exprNodes(st.X)
		for _, lv := range []ast.Expr{st.Key, st.Value} {
			if lv == nil {
				continue
			}
			for _, t := range sc.lvalNodes(lv) {
				for _, n := range src {
					sc.pf.edge(n, t, st.For, "ranged into "+sc.pf.describe(t))
				}
			}
		}
		sc.walkStmt(st.Body)
	case *ast.SwitchStmt:
		sc.walkStmt(st.Init)
		if st.Tag != nil {
			sc.exprNodes(st.Tag)
		}
		for _, cl := range st.Body.List {
			cc := cl.(*ast.CaseClause)
			for _, e := range cc.List {
				sc.exprNodes(e)
			}
			for _, sub := range cc.Body {
				sc.walkStmt(sub)
			}
		}
	case *ast.TypeSwitchStmt:
		sc.walkStmt(st.Init)
		var src []nodeID
		switch a := st.Assign.(type) {
		case *ast.ExprStmt:
			if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
				src = sc.exprNodes(ta.X)
			}
		case *ast.AssignStmt:
			if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
				src = sc.exprNodes(ta.X)
			}
		}
		for _, cl := range st.Body.List {
			cc := cl.(*ast.CaseClause)
			if obj := sc.pkg.Info.Implicits[cc]; obj != nil {
				t := sc.nodeFor(obj)
				for _, n := range src {
					sc.pf.edge(n, t, cc.Pos(), "type-switched into "+sc.pf.describe(t))
				}
			}
			for _, sub := range cc.Body {
				sc.walkStmt(sub)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range st.Body.List {
			cc := cl.(*ast.CommClause)
			sc.walkStmt(cc.Comm)
			for _, sub := range cc.Body {
				sc.walkStmt(sub)
			}
		}
	case *ast.LabeledStmt:
		sc.walkStmt(st.Stmt)
	case *ast.IncDecStmt:
		sc.exprNodes(st.X)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

func (sc *pfScope) walkReturn(st *ast.ReturnStmt) {
	if len(st.Results) == 0 {
		return
	}
	results := sc.currentResults()
	if sc.pf.sanitizers[sc.fnKey] {
		for _, r := range st.Results {
			sc.exprNodes(r) // side effects (nested calls) still analyzed
		}
		return
	}
	if len(st.Results) == 1 && len(results) > 1 {
		sets := sc.tupleNodes(st.Results[0], len(results))
		for i, set := range sets {
			for _, n := range set {
				sc.pf.edge(n, results[i], st.Pos(), "returned from "+sc.fnKey)
			}
		}
		return
	}
	for i, r := range st.Results {
		nodes := sc.exprNodes(r)
		if i >= len(results) {
			continue
		}
		for _, n := range nodes {
			sc.pf.edge(n, results[i], st.Pos(), "returned from "+sc.fnKey)
		}
	}
}

func (sc *pfScope) assign(lhs, rhs []ast.Expr, pos token.Pos) {
	if len(rhs) == 1 && len(lhs) > 1 {
		sets := sc.tupleNodes(rhs[0], len(lhs))
		for i, l := range lhs {
			sc.assignTo(l, sets[i], pos)
		}
		return
	}
	for i, r := range rhs {
		nodes := sc.exprNodes(r)
		if i < len(lhs) {
			sc.assignTo(lhs[i], nodes, pos)
		}
	}
}

func (sc *pfScope) assignTo(l ast.Expr, nodes []nodeID, pos token.Pos) {
	targets := sc.lvalNodes(l)
	for _, t := range targets {
		for _, n := range nodes {
			sc.pf.edge(n, t, pos, "assigned to "+sc.pf.describe(t))
		}
	}
	// A write through an index expression also folds the key's taint
	// into the container (conservative: the container "contains" it).
	if ix, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
		keys := sc.exprNodes(ix.Index)
		for _, t := range targets {
			for _, k := range keys {
				sc.pf.edge(k, t, pos, "used as key of "+sc.pf.describe(t))
			}
		}
	}
}

// lvalNodes resolves an assignment target to graph nodes.
func (sc *pfScope) lvalNodes(l ast.Expr) []nodeID {
	switch e := ast.Unparen(l).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return nil
		}
		obj := sc.pkg.Info.ObjectOf(e)
		n := sc.nodeFor(obj)
		if n == "" {
			return nil
		}
		return []nodeID{n}
	case *ast.SelectorExpr:
		if sel, ok := sc.pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			sc.exprNodes(e.X) // evaluate base for nested-call edges
			return []nodeID{sc.fieldNode(ownerName(sel.Recv()), sel.Obj().Name())}
		}
		obj := sc.pkg.Info.ObjectOf(e.Sel)
		if n := sc.nodeFor(obj); n != "" {
			return []nodeID{n}
		}
		return nil
	case *ast.StarExpr:
		return sc.exprNodes(e.X)
	case *ast.IndexExpr:
		return sc.exprNodes(e.X)
	default:
		return nil
	}
}

func (sc *pfScope) fieldNode(owner, name string) nodeID {
	id := nodeID("field:" + owner + "." + name)
	if _, ok := sc.pf.desc[id]; !ok {
		sc.pf.desc[id] = owner + "." + name
	}
	return id
}

// nodeFor maps an object to its global node. Parameters and results of
// the enclosing function resolve through objMap; functions, package-level
// variables, and fields get package-qualified keys; anything else is a
// position-keyed local.
func (sc *pfScope) nodeFor(obj types.Object) nodeID {
	if obj == nil {
		return ""
	}
	if n, ok := sc.objMap[obj]; ok {
		return n
	}
	switch o := obj.(type) {
	case *types.Func:
		return nodeID("func:" + funcKey(o))
	case *types.Const, *types.TypeName, *types.Builtin, *types.Nil:
		return ""
	case *types.Var:
		if o.Pkg() != nil && o.Parent() == o.Pkg().Scope() {
			id := nodeID("var:" + o.Pkg().Path() + "." + o.Name())
			if _, ok := sc.pf.desc[id]; !ok {
				sc.pf.desc[id] = "package variable " + o.Pkg().Path() + "." + o.Name()
			}
			return id
		}
		if o.IsField() {
			// Reached only without selection info; approximate by name.
			return sc.fieldNode("anon", o.Name())
		}
	}
	id := nodeID("loc:" + sc.pf.fset.Position(obj.Pos()).String())
	if _, ok := sc.pf.desc[id]; !ok {
		sc.pf.desc[id] = "local " + obj.Name()
	}
	return id
}

// exprNodes returns the nodes an expression reads from, adding any edges
// its sub-expressions imply, and folds in the tainted-type source when
// the expression's type is declared private.
func (sc *pfScope) exprNodes(e ast.Expr) []nodeID {
	nodes, sanitized := sc.exprNodesInner(e)
	if !sanitized {
		if id, _, ok := sc.pf.taintedTypeOf(sc.pkg.Info.TypeOf(e)); ok {
			nodes = append(nodes, id)
		}
	}
	return nodes
}

func (sc *pfScope) exprNodesInner(e ast.Expr) ([]nodeID, bool) {
	switch x := e.(type) {
	case nil:
		return nil, false
	case *ast.Ident:
		obj := sc.pkg.Info.ObjectOf(x)
		if n := sc.nodeFor(obj); n != "" {
			return []nodeID{n}, false
		}
		return nil, false
	case *ast.BasicLit:
		return nil, false
	case *ast.ParenExpr:
		return sc.exprNodesInner(x.X)
	case *ast.SelectorExpr:
		if sel, ok := sc.pkg.Info.Selections[x]; ok {
			switch sel.Kind() {
			case types.FieldVal:
				sc.exprNodes(x.X)
				return []nodeID{sc.fieldNode(ownerName(sel.Recv()), sel.Obj().Name())}, false
			case types.MethodVal, types.MethodExpr:
				nodes := sc.exprNodes(x.X)
				if fn, ok := sel.Obj().(*types.Func); ok {
					nodes = append(nodes, nodeID("func:"+funcKey(fn)))
				}
				return nodes, false
			}
		}
		// Package-qualified identifier.
		obj := sc.pkg.Info.ObjectOf(x.Sel)
		if n := sc.nodeFor(obj); n != "" {
			return []nodeID{n}, false
		}
		return nil, false
	case *ast.CallExpr:
		return sc.callNodes(x)
	case *ast.StarExpr:
		return sc.exprNodesInner(x.X)
	case *ast.UnaryExpr:
		return sc.exprNodesInner(x.X)
	case *ast.BinaryExpr:
		return append(sc.exprNodes(x.X), sc.exprNodes(x.Y)...), false
	case *ast.IndexExpr:
		// Container read; generic instantiations read the function.
		nodes := sc.exprNodes(x.X)
		sc.exprNodes(x.Index)
		return nodes, false
	case *ast.IndexListExpr:
		return sc.exprNodesInner(x.X)
	case *ast.SliceExpr:
		nodes := sc.exprNodes(x.X)
		for _, ix := range []ast.Expr{x.Low, x.High, x.Max} {
			if ix != nil {
				sc.exprNodes(ix)
			}
		}
		return nodes, false
	case *ast.TypeAssertExpr:
		return sc.exprNodes(x.X), false
	case *ast.CompositeLit:
		return sc.compositeNodes(x), false
	case *ast.FuncLit:
		return sc.funcLitNodes(x), false
	case *ast.KeyValueExpr:
		return sc.exprNodesInner(x.Value)
	default:
		return nil, false
	}
}

// compositeNodes handles T{...}: element taint joins the literal's value
// and, for struct literals, lands on the named field's global node.
func (sc *pfScope) compositeNodes(lit *ast.CompositeLit) []nodeID {
	t := sc.pkg.Info.TypeOf(lit)
	var st *types.Struct
	owner := "anon"
	if t != nil {
		if s, ok := deref(t).Underlying().(*types.Struct); ok {
			st = s
			owner = ownerName(t)
		}
	}
	var all []nodeID
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			vals := sc.exprNodes(kv.Value)
			all = append(all, vals...)
			if st != nil {
				if key, ok := kv.Key.(*ast.Ident); ok {
					f := sc.fieldNode(owner, key.Name)
					for _, v := range vals {
						sc.pf.edge(v, f, kv.Pos(), "stored in "+sc.pf.describe(f))
					}
				}
			} else {
				// map literal: keys carry taint into the container too
				all = append(all, sc.exprNodes(kv.Key)...)
			}
			continue
		}
		vals := sc.exprNodes(elt)
		all = append(all, vals...)
		if st != nil && i < st.NumFields() {
			f := sc.fieldNode(owner, st.Field(i).Name())
			for _, v := range vals {
				sc.pf.edge(v, f, elt.Pos(), "stored in "+sc.pf.describe(f))
			}
		}
	}
	return all
}

func (sc *pfScope) funcLitNodes(lit *ast.FuncLit) []nodeID {
	sc.pf.litSeq++
	key := fmt.Sprintf("funclit@%s#%d", sc.pf.fset.Position(lit.Pos()), sc.pf.litSeq)
	sig, _ := sc.pkg.Info.TypeOf(lit).(*types.Signature)
	if sig == nil {
		return nil
	}
	fi := sc.pf.registerFunc(key, sig)
	fnode := nodeID("func:" + key)
	sc.pf.funcByNode[fnode] = fi
	sc.pf.defined[key] = fi

	child := &pfScope{pf: sc.pf, pkg: sc.pkg, fnKey: key, objMap: make(map[types.Object]nodeID, len(sc.objMap))}
	for k, v := range sc.objMap {
		child.objMap[k] = v // captured parameters/results of enclosing func
	}
	child.bindSignature(sig, fi)
	child.walkStmt(lit.Body)
	for _, r := range fi.results {
		sc.pf.edge(r, fnode, lit.Pos(), "returned from closure")
	}
	return []nodeID{fnode}
}

// tupleNodes evaluates a multi-value expression into n per-index sets.
func (sc *pfScope) tupleNodes(e ast.Expr, n int) [][]nodeID {
	sets := make([][]nodeID, n)
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if callee, _ := sc.staticCallee(x); callee != nil {
			key := funcKey(callee)
			if fi := sc.pf.defined[key]; fi != nil && !pfSpecial(sc.pf, key) && len(fi.results) == n {
				sc.callNodes(x) // emit binding edges
				for i := range sets {
					sets[i] = []nodeID{fi.results[i]}
				}
				return sets
			}
		}
		union, sanitized := sc.callNodes(x)
		if sanitized {
			return sets
		}
		tup, _ := sc.pkg.Info.TypeOf(x).(*types.Tuple)
		for i := range sets {
			// An opaque call's error result does not absorb the smeared
			// argument union (see the approximations note atop this file).
			if tup != nil && i < tup.Len() && isErrorType(tup.At(i).Type()) {
				continue
			}
			sets[i] = union
		}
		return sets
	case *ast.TypeAssertExpr:
		sets[0] = sc.exprNodes(x.X)
		return sets
	case *ast.IndexExpr:
		sets[0] = sc.exprNodes(x.X)
		sc.exprNodes(x.Index)
		return sets
	case *ast.UnaryExpr: // v, ok := <-ch
		sets[0] = sc.exprNodes(x.X)
		return sets
	default:
		sets[0] = sc.exprNodes(e)
		return sets
	}
}

func pfSpecial(pf *privflow, key string) bool {
	_, sink := pf.sinks[key]
	return sink || pf.sanitizers[key]
}

func (sc *pfScope) staticCallee(call *ast.CallExpr) (*types.Func, ast.Expr) {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := sc.pkg.Info.Uses[f].(*types.Func)
		return fn, nil
	case *ast.SelectorExpr:
		if sel, ok := sc.pkg.Info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			fn, _ := sel.Obj().(*types.Func)
			return fn, f.X
		}
		fn, _ := sc.pkg.Info.Uses[f.Sel].(*types.Func)
		return fn, nil
	}
	return nil, nil
}

func (sc *pfScope) callNodes(call *ast.CallExpr) ([]nodeID, bool) {
	info := sc.pkg.Info
	// Conversion T(x): taint passes through; the wrap in exprNodes adds
	// the target type's source node if T itself is private.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		var nodes []nodeID
		for _, a := range call.Args {
			nodes = append(nodes, sc.exprNodes(a)...)
		}
		return nodes, false
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return sc.builtinCall(b.Name(), call), false
		}
	}

	callee, recvExpr := sc.staticCallee(call)
	if callee != nil {
		key := funcKey(callee)
		if sc.pf.sanitizers[key] {
			if recvExpr != nil {
				sc.exprNodes(recvExpr)
			}
			for _, a := range call.Args {
				sc.exprNodes(a)
			}
			return nil, true
		}
		if kind, isSink := sc.pf.sinks[key]; isSink {
			var argSets [][]nodeID
			var union []nodeID
			if recvExpr != nil {
				set := sc.exprNodes(recvExpr)
				argSets = append(argSets, set)
				union = append(union, set...)
			}
			for _, a := range call.Args {
				set := sc.exprNodes(a)
				argSets = append(argSets, set)
				union = append(union, set...)
			}
			if !sc.pkg.Dep {
				sc.pf.sinkCalls = append(sc.pf.sinkCalls, sinkCall{pos: call.Pos(), key: key, kind: kind, args: argSets})
			}
			return union, false
		}
		if fi := sc.pf.defined[key]; fi != nil {
			if recvExpr != nil && fi.recv != "" {
				for _, n := range sc.exprNodes(recvExpr) {
					sc.pf.edge(n, fi.recv, call.Pos(), "passed to "+sc.pf.describe(fi.recv))
				}
			}
			sc.bindArgs(call, fi)
			return fi.results, false
		}
		// External function without a loaded body: conservative — taint
		// in equals taint out, except into a bare error result.
		var union []nodeID
		if recvExpr != nil {
			union = append(union, sc.exprNodes(recvExpr)...)
		}
		for _, a := range call.Args {
			union = append(union, sc.exprNodes(a)...)
		}
		if isErrorType(info.TypeOf(call)) {
			return nil, false
		}
		return union, false
	}

	// Dynamic call through a function value. The smeared callee/argument
	// union is the imprecise fallback; result nodes of any syntactically
	// bound function stay precise and always flow out.
	calleeNodes := sc.exprNodes(call.Fun)
	var smear []nodeID
	smear = append(smear, calleeNodes...)
	var argSets [][]nodeID
	for _, a := range call.Args {
		set := sc.exprNodes(a)
		argSets = append(argSets, set)
		smear = append(smear, set...)
	}
	var precise []nodeID
	for _, cn := range calleeNodes {
		fi := sc.pf.funcByNode[cn]
		if fi == nil {
			continue
		}
		for i, set := range argSets {
			pi := i
			if pi >= len(fi.params) {
				if !fi.variadic || len(fi.params) == 0 {
					continue
				}
				pi = len(fi.params) - 1
			}
			for _, n := range set {
				sc.pf.edge(n, fi.params[pi], call.Pos(), "passed to "+sc.pf.describe(fi.params[pi]))
			}
		}
		precise = append(precise, fi.results...)
	}
	if isErrorType(info.TypeOf(call)) {
		return precise, false
	}
	return append(smear, precise...), false
}

func (sc *pfScope) bindArgs(call *ast.CallExpr, fi *funcInfo) {
	for i, a := range call.Args {
		set := sc.exprNodes(a)
		pi := i
		if pi >= len(fi.params) {
			if !fi.variadic || len(fi.params) == 0 {
				continue
			}
			pi = len(fi.params) - 1
		}
		for _, n := range set {
			sc.pf.edge(n, fi.params[pi], a.Pos(), "passed to "+sc.pf.describe(fi.params[pi]))
		}
	}
}

func (sc *pfScope) builtinCall(name string, call *ast.CallExpr) []nodeID {
	switch name {
	case "append", "min", "max":
		var union []nodeID
		for _, a := range call.Args {
			union = append(union, sc.exprNodes(a)...)
		}
		return union
	case "copy":
		if len(call.Args) == 2 {
			dst := sc.exprNodes(call.Args[0])
			for _, n := range sc.exprNodes(call.Args[1]) {
				for _, d := range dst {
					sc.pf.edge(n, d, call.Pos(), "copied into "+sc.pf.describe(d))
				}
			}
		}
		return nil
	default:
		// len/cap/make/new/delete/clear/close/panic/recover...: evaluate
		// arguments for nested-call edges; cardinality and allocation do
		// not carry the secret (len is the system's intended public
		// output — see package doc).
		for _, a := range call.Args {
			sc.exprNodes(a)
		}
		return nil
	}
}

// --- phase 3: reachability and reporting ------------------------------

type pfHop struct {
	from nodeID
	e    pfEdge
}

func (pf *privflow) solve() map[nodeID]pfHop {
	prev := make(map[nodeID]pfHop)
	seen := make(map[nodeID]bool, len(pf.seeds))
	queue := make([]nodeID, 0, len(pf.seeds))
	for id := range pf.seeds {
		seen[id] = true
		queue = append(queue, id)
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range pf.edges[n] {
			if seen[e.to] {
				continue
			}
			seen[e.to] = true
			prev[e.to] = pfHop{from: n, e: e}
			queue = append(queue, e.to)
		}
	}
	pf.reached = seen
	return prev
}

func (pf *privflow) reportIfTainted(scall sinkCall, prev map[nodeID]pfHop) {
	for _, set := range scall.args {
		for _, n := range set {
			if !pf.reached[n] {
				continue
			}
			root, rel := pf.witness(n, prev)
			label := pf.seeds[root]
			rel = append(rel, Related{Pos: pf.fset.Position(scall.pos), Note: "argument to sink " + scall.key})
			pf.pass.Report(scall.pos, rel,
				"private state (%s) flows un-sanitized into %s sink %s", label, scall.kind, shortKey(scall.key))
			return // one finding per sink call
		}
	}
}

// witness rebuilds the source→node hop list from the BFS predecessor map.
func (pf *privflow) witness(n nodeID, prev map[nodeID]pfHop) (nodeID, []Related) {
	var hops []pfHop
	cur := n
	for {
		h, ok := prev[cur]
		if !ok {
			break
		}
		hops = append(hops, h)
		cur = h.from
	}
	// hops is sink→source; reverse into flow order.
	rel := []Related{{Pos: pf.seedPos[cur], Note: "source: " + pf.seeds[cur] + " (" + pf.describe(cur) + ")"}}
	for i := len(hops) - 1; i >= 0; i-- {
		rel = append(rel, Related{Pos: hops[i].e.pos, Note: hops[i].e.note})
	}
	return cur, rel
}

// shortKey trims the module-internal prefix for readable messages.
func shortKey(key string) string {
	return strings.TrimPrefix(key, "ptm/internal/")
}
