// Package lint implements ptmlint, a repo-specific static-analysis pass
// that enforces invariants of the measurement system which the Go type
// system cannot express:
//
//   - privacy-critical packages must draw randomness from crypto/rand
//     (rule cryptorand), or the one-time MAC / index-value unlinkability
//     argument of Section V collapses;
//   - bitmap sizes must be powers of two in [64, 1<<30] (rule pow2size),
//     or the replication-based expansion of Section III-A is undefined;
//   - fields guarded by a struct mutex must not be touched off-lock
//     (rule lockedfields);
//   - errors must not be silently dropped (rule errdrop);
//   - goroutines must have a visible completion linkage (rule
//     goroutinehygiene).
//
// The framework is deliberately dependency-free: packages are loaded with
// `go list -deps -export -json` (the toolchain supplies export data for
// every dependency, so only the linted package itself is type-checked from
// source) and analyzed with go/ast + go/types.
//
// Findings can be suppressed line-by-line with a directive comment on the
// offending line or the line immediately above it:
//
//	//ptmlint:allow <rule> [reason...]
//
// Suppressions are intentionally narrow; there is no file- or
// package-level escape hatch.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Related is one supporting location of a diagnostic — for privflow, one
// hop of the source→sink witness path.
type Related struct {
	Pos  token.Position
	Note string
}

// Diagnostic is one finding, addressed by position and rule name. Related
// carries supporting locations (witness-path hops) in flow order.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
	Related []Related
}

// String renders the canonical "file:line: [rule] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Analyzer is one named checker. Per-package analyzers set Run and inspect
// one type-checked package at a time; whole-program analyzers set
// RunProgram instead and see every loaded package at once (including
// module dependencies loaded for their cross-package facts), which is what
// an interprocedural rule like privflow needs. Exactly one of Run and
// RunProgram is non-nil.
type Analyzer struct {
	// Name is the rule name used in diagnostics and allow directives.
	Name string
	// Doc is a one-line description of the invariant the rule protects.
	Doc string
	// Run analyzes pass.Pkg.
	Run func(pass *Pass)
	// RunProgram analyzes all loaded packages together.
	RunProgram func(pass *ProgramPass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Fset     *token.FileSet
	Pkg      *Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos under the running analyzer's rule name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Pkg.Info.ObjectOf(id)
}

// ProgramPass carries the whole loaded program through one whole-program
// analyzer. Pkgs includes dependency packages of the enclosing module
// (Package.Dep == true) so that analyzers can consume their declarations,
// bodies, and //ptm:* facts; findings should be anchored in non-dep
// packages.
type ProgramPass struct {
	Fset     *token.FileSet
	Pkgs     []*Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Report records a finding at pos with an optional witness path.
func (p *ProgramPass) Report(pos token.Pos, related []Related, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
		Related: related,
	})
}

// directivePrefix introduces a suppression comment.
const directivePrefix = "ptmlint:allow"

// allowedAt reports whether rule is suppressed for a diagnostic on the
// given file line: a //ptmlint:allow comment on the same line or the line
// directly above covers it. The second result is the line the matching
// directive sits on, for the stale-directive audit.
func (pkg *Package) allowedAt(pos token.Position, rule string) (bool, int) {
	lines := pkg.allow[pos.Filename]
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, r := range lines[l] {
			if r == rule {
				return true, l
			}
		}
	}
	return false, 0
}

// scanDirectives indexes //ptmlint:allow comments by file and line.
func scanDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					out[pos.Filename] = m
				}
				// The first field is a comma-separated rule list; anything
				// after the first space is free-form reason text.
				for _, rule := range strings.Split(fields[0], ",") {
					if rule != "" {
						m[pos.Line] = append(m[pos.Line], rule)
					}
				}
			}
		}
	}
	return out
}

// StaleDirective is the pseudo-rule name under which the directive audit
// reports //ptmlint:allow comments that no longer suppress anything.
const StaleDirective = "stale-directive"

// UnknownDirective is the pseudo-rule name under which the directive
// audit reports //ptm: annotations whose kind no analyzer understands —
// a typo like //ptm:guardedBy would otherwise silently disable the
// contract it was meant to declare.
const UnknownDirective = "unknown-directive"

// knownPtmFacts lists every //ptm:<kind> annotation some analyzer
// consumes. The audit checks directive comments against this set.
var knownPtmFacts = []string{
	factSource, factSink, factSanitizer, // privflow
	factLockOrder, factGuardedBy, factRCU, factExclusive, factBlocking, // concguard
	factNoalloc, factInline, factNoBCE, // perfguard
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by file, line, and rule. Per-package analyzers skip
// dependency packages (loaded only for their cross-package facts);
// whole-program analyzers run once over the full package set.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return run(fset, pkgs, analyzers, false)
}

// RunAudited is Run plus the suppression audit: after the analyzers
// finish, every //ptmlint:allow directive that (a) names a rule that ran
// in this invocation but suppressed no finding, or (b) names a rule that
// does not exist, is itself reported as a stale-directive finding. The
// escape hatch therefore cannot rot: when the code below a directive is
// fixed, the directive must be removed in the same change.
func RunAudited(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return run(fset, pkgs, analyzers, true)
}

func run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, audit bool) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if pkg.Dep {
			continue
		}
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Fset: fset, Pkg: pkg, analyzer: a, diags: &diags}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		pass := &ProgramPass{Fset: fset, Pkgs: pkgs, analyzer: a, diags: &diags}
		a.RunProgram(pass)
	}

	// used[file][line][rule] marks directives that suppressed a finding.
	used := make(map[string]map[int]map[string]bool)
	kept := diags[:0]
	for _, d := range diags {
		pkg := byFile(pkgs, d.Pos.Filename)
		if pkg != nil {
			if ok, line := pkg.allowedAt(d.Pos, d.Rule); ok {
				byLine := used[d.Pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					used[d.Pos.Filename] = byLine
				}
				if byLine[line] == nil {
					byLine[line] = make(map[string]bool)
				}
				byLine[line][d.Rule] = true
				continue
			}
		}
		kept = append(kept, d)
	}
	if audit {
		kept = append(kept, auditDirectives(pkgs, analyzers, used)...)
		kept = append(kept, auditFacts(fset, pkgs)...)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return kept
}

// auditDirectives reports stale //ptmlint:allow directives. A directive is
// stale for rule r when r ran in this invocation and the directive
// suppressed none of r's findings, or when r is not a known rule at all
// (a typo would otherwise silently disable a suppression forever). Rules
// that exist but were excluded from this invocation (-rules subsets) are
// not audited: the run cannot tell whether they would fire.
func auditDirectives(pkgs []*Package, analyzers []*Analyzer, used map[string]map[int]map[string]bool) []Diagnostic {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		if pkg.Dep {
			continue
		}
		for file, byLine := range pkg.allow {
			for line, rules := range byLine {
				for _, r := range rules {
					switch {
					case ran[r] && !used[file][line][r]:
						out = append(out, Diagnostic{
							Pos:     token.Position{Filename: file, Line: line},
							Rule:    StaleDirective,
							Message: fmt.Sprintf("//ptmlint:allow %s no longer suppresses any finding; remove the directive", r),
						})
					case !ran[r] && !known[r]:
						out = append(out, Diagnostic{
							Pos:     token.Position{Filename: file, Line: line},
							Rule:    StaleDirective,
							Message: fmt.Sprintf("//ptmlint:allow names unknown rule %q", r),
						})
					}
				}
			}
		}
	}
	return out
}

// auditFacts reports //ptm: annotation comments whose kind no analyzer
// understands. A comment is a fact candidate when its text directly
// follows the // with "ptm:" (the same syntax ptmFact accepts); its kind
// is the text up to the first space. Unknown kinds within edit distance
// 2 of a known fact get a "did you mean" suggestion.
func auditFacts(fset *token.FileSet, pkgs []*Package) []Diagnostic {
	known := make(map[string]bool, len(knownPtmFacts))
	for _, k := range knownPtmFacts {
		known[k] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		if pkg.Dep {
			continue
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					if !strings.HasPrefix(text, "ptm:") {
						continue
					}
					kind, _, _ := strings.Cut(text, " ")
					kind, _, _ = strings.Cut(kind, "\t")
					if known[kind] {
						continue
					}
					msg := fmt.Sprintf("unknown //ptm: directive %q", kind)
					if best := closestFact(kind); best != "" {
						msg += fmt.Sprintf(" (did you mean %q?)", best)
					}
					out = append(out, Diagnostic{
						Pos:     fset.Position(c.Pos()),
						Rule:    UnknownDirective,
						Message: msg,
					})
				}
			}
		}
	}
	return out
}

// closestFact returns the known fact kind within Levenshtein distance 2
// of kind (ASCII-case-insensitively), or "" when nothing is close.
func closestFact(kind string) string {
	best, bestDist := "", 3
	for _, k := range knownPtmFacts {
		if d := editDistance(strings.ToLower(kind), strings.ToLower(k)); d < bestDist {
			best, bestDist = k, d
		}
	}
	return best
}

// editDistance is the plain Levenshtein distance between two strings.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func byFile(pkgs []*Package, filename string) *Package {
	for _, p := range pkgs {
		if _, ok := p.allow[filename]; ok {
			return p
		}
		for _, f := range p.fileNames {
			if f == filename {
				return p
			}
		}
	}
	return nil
}

// All returns the full analyzer set in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Cryptorand(nil),
		Pow2Size(),
		LockedFields(),
		ErrDrop(),
		GoroutineHygiene(),
		Privflow(),
		LockOrder(),
		GuardedBy(),
		AtomicMix(),
		RCU(),
		Noalloc(),
		Inline(),
		BCE(),
	}
}

// ByName resolves a comma-separated rule list against All; unknown names
// are an error.
func ByName(list string) ([]*Analyzer, error) {
	if list == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
