// Package lint implements ptmlint, a repo-specific static-analysis pass
// that enforces invariants of the measurement system which the Go type
// system cannot express:
//
//   - privacy-critical packages must draw randomness from crypto/rand
//     (rule cryptorand), or the one-time MAC / index-value unlinkability
//     argument of Section V collapses;
//   - bitmap sizes must be powers of two in [64, 1<<30] (rule pow2size),
//     or the replication-based expansion of Section III-A is undefined;
//   - fields guarded by a struct mutex must not be touched off-lock
//     (rule lockedfields);
//   - errors must not be silently dropped (rule errdrop);
//   - goroutines must have a visible completion linkage (rule
//     goroutinehygiene).
//
// The framework is deliberately dependency-free: packages are loaded with
// `go list -deps -export -json` (the toolchain supplies export data for
// every dependency, so only the linted package itself is type-checked from
// source) and analyzed with go/ast + go/types.
//
// Findings can be suppressed line-by-line with a directive comment on the
// offending line or the line immediately above it:
//
//	//ptmlint:allow <rule> [reason...]
//
// Suppressions are intentionally narrow; there is no file- or
// package-level escape hatch.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by position and rule name.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the canonical "file:line: [rule] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Analyzer is one named checker. Run inspects a single type-checked
// package and reports findings through the pass.
type Analyzer struct {
	// Name is the rule name used in diagnostics and allow directives.
	Name string
	// Doc is a one-line description of the invariant the rule protects.
	Doc string
	// Run analyzes pass.Pkg.
	Run func(pass *Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Fset     *token.FileSet
	Pkg      *Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos under the running analyzer's rule name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Pkg.Info.ObjectOf(id)
}

// directivePrefix introduces a suppression comment.
const directivePrefix = "ptmlint:allow"

// allowedAt reports whether rule is suppressed for a diagnostic on the
// given file line: a //ptmlint:allow comment on the same line or the line
// directly above covers it.
func (pkg *Package) allowedAt(pos token.Position, rule string) bool {
	lines := pkg.allow[pos.Filename]
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, r := range lines[l] {
			if r == rule {
				return true
			}
		}
	}
	return false
}

// scanDirectives indexes //ptmlint:allow comments by file and line.
func scanDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					out[pos.Filename] = m
				}
				// The first field is a comma-separated rule list; anything
				// after the first space is free-form reason text.
				for _, rule := range strings.Split(fields[0], ",") {
					if rule != "" {
						m[pos.Line] = append(m[pos.Line], rule)
					}
				}
			}
		}
	}
	return out
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by file, line, and rule.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Fset: fset, Pkg: pkg, analyzer: a, diags: &diags}
			a.Run(pass)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		pkg := byFile(pkgs, d.Pos.Filename)
		if pkg != nil && pkg.allowedAt(d.Pos, d.Rule) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return kept
}

func byFile(pkgs []*Package, filename string) *Package {
	for _, p := range pkgs {
		if _, ok := p.allow[filename]; ok {
			return p
		}
		for _, f := range p.fileNames {
			if f == filename {
				return p
			}
		}
	}
	return nil
}

// All returns the full analyzer set in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Cryptorand(nil),
		Pow2Size(),
		LockedFields(),
		ErrDrop(),
		GoroutineHygiene(),
	}
}

// ByName resolves a comma-separated rule list against All; unknown names
// are an error.
func ByName(list string) ([]*Analyzer, error) {
	if list == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
