package lint

// concguard: the shared whole-program model behind the four
// concurrency-contract rules (lockorder, guardedby, atomicmix, rcu).
//
// The model is built once per rule invocation from the same loaded
// program privflow sees: every package (dependencies included) is walked
// with a flow-sensitive held-lock tracker, producing per-function
// summaries — direct lock acquisitions, call sites with held-set
// snapshots, guarded-field accesses, atomic accesses, and RCU
// loads/stores. The rules then run interprocedural fixed points over the
// summaries: transitive-acquisition chains for lockorder, and
// greatest-fixed-point "coverage" (is the guard held at every call site,
// transitively?) for guardedby/atomicmix/rcu.
//
// Contracts are declared in source with doc/field comments:
//
//	//ptm:lockorder a<b      (struct doc or field comment) lock a is
//	                         acquired before lock b; acquiring a while
//	                         holding b is an inversion. Pairs may be
//	                         space-separated in one directive.
//	//ptm:guardedby mu       (field comment) the field may only be
//	                         accessed while the sibling mutex mu is held;
//	                         writes need the write lock.
//	//ptm:rcu mu             (atomic.Pointer field comment) the pointer is
//	                         RCU-published: Store/Swap/CompareAndSwap
//	                         require mu; a loaded pointer must not be used
//	                         across a blocking call (readers re-load).
//	//ptm:exclusive why      (function doc) the function has exclusive
//	                         access to its data — constructor before
//	                         publication, rotation writer after a grace
//	                         period, quiescent consumer — so guardedby and
//	                         atomicmix do not apply inside it.
//	//ptm:blocking why       (function doc) calls to this function count
//	                         as blocking for the rcu retention check.
//
// Lock identity is type-qualified and instance-insensitive: `l.mu` in any
// method of wal.Log is the one key "ptm/internal/wal.Log.mu". That is the
// same granularity the prose contracts use ("syncMu before mu") and keeps
// the analysis tractable; per-instance cycles (two Logs locked in
// opposite orders) are out of scope, as is aliasing through interfaces.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// concguard annotation kinds.
const (
	factLockOrder = "ptm:lockorder"
	factGuardedBy = "ptm:guardedby"
	factRCU       = "ptm:rcu"
	factExclusive = "ptm:exclusive"
	factBlocking  = "ptm:blocking"
)

// lockKey names a lock instance-insensitively: "pkg/path.Type.field" for
// a struct mutex field, "pkg/path.var" for a package-level mutex, or
// "local:<funcKey>.<name>" for a function-local mutex variable.
type lockKey string

// lockMode distinguishes read from write holds of an RWMutex. A plain
// sync.Mutex always holds in modeW.
type lockMode int

const (
	modeR lockMode = iota
	modeW
)

// lockSet maps held locks to the strongest mode they are held in.
type lockSet map[lockKey]lockMode

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// add records a lock acquisition, keeping the stronger mode.
func (s lockSet) add(k lockKey, m lockMode) {
	if prev, ok := s[k]; !ok || m > prev {
		s[k] = m
	}
}

// holds reports whether k is held, at least in mode need.
func (s lockSet) holds(k lockKey, need lockMode) bool {
	m, ok := s[k]
	return ok && m >= need
}

// union folds o into s (may-held merge).
func (s lockSet) union(o lockSet) {
	for k, m := range o {
		s.add(k, m)
	}
}

// intersect keeps only locks held in both, at the weaker mode
// (must-held merge).
func (s lockSet) intersect(o lockSet) {
	for k, m := range s {
		om, ok := o[k]
		if !ok {
			delete(s, k)
			continue
		}
		if om < m {
			s[k] = om
		}
	}
}

func (s lockSet) keysSorted() []lockKey {
	out := make([]lockKey, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// cgAcquire is one direct Lock/RLock call site.
type cgAcquire struct {
	lock lockKey
	mode lockMode
	pos  token.Pos
	// held is the must-held set at the moment of acquisition — the
	// source of hold-while-acquiring edges.
	held lockSet
}

// cgCallSite is one direct call to a known (source-loaded) function.
type cgCallSite struct {
	callee string // funcKey
	pos    token.Pos
	// mustHeld is the must-held set at the call — used both for
	// hold-while-acquiring edges through the callee and for guard
	// coverage of the callee's accesses.
	mustHeld lockSet
	// goCall marks `go f(...)`: the callee runs without our locks.
	goCall bool
}

// cgAccess is one syntactic access to a struct field.
type cgAccess struct {
	field string // fieldKey "pkg/path.Type.field"
	pos   token.Pos
	write bool
	// mayHeld is the may-held set at the access (used to prove the guard
	// is NOT held: absence from may-held is definitive).
	mayHeld lockSet
	// atomicArg marks accesses inside the arguments of a sync/atomic
	// call — the sanctioned access mode for atomicmix.
	atomicArg bool
	// addrOf marks address-taken accesses (&x.f) outside atomic calls.
	// For atomic-typed fields a pointer escape is still atomic usage;
	// for guarded fields it is conservatively a write.
	addrOf bool
	// rangeKeyOnly marks `for i := range x.f` with no value variable and
	// len/cap-only uses: slice-header reads, safe concurrently.
	rangeKeyOnly bool
}

// cgRCUOp is one Load/Store/Swap/CompareAndSwap on an annotated
// atomic.Pointer field.
type cgRCUOp struct {
	field    string // fieldKey
	op       string // "Load", "Store", "Swap", "CompareAndSwap"
	pos      token.Pos
	mustHeld lockSet
	// target is the variable a Load's result is bound to (nil when the
	// result is used inline or discarded), and bindPos the position of
	// the binding assignment. A later re-binding of the same variable
	// supersedes this op for the retention check: uses past the re-Load
	// hold the fresh snapshot.
	target  types.Object
	bindPos token.Pos
}

// cgFunc is the per-function summary the walker produces.
type cgFunc struct {
	key  string
	pos  token.Pos
	decl *ast.FuncDecl // nil for function literals
	pkg  *Package

	exclusive bool // //ptm:exclusive
	blocking  bool // //ptm:blocking

	acquires  []cgAcquire
	calls     []cgCallSite
	accesses  []cgAccess
	rcuOps    []cgRCUOp
	blockPts  []token.Pos // blocking points, in source order
	usesAfter []objUse    // identifier uses, for rcu retention
}

// objUse is one identifier use inside a function body.
type objUse struct {
	obj types.Object
	pos token.Pos
}

// declaredEdge is one //ptm:lockorder a<b pair.
type declaredEdge struct {
	before, after lockKey
	pos           token.Pos
	pkg           *Package
}

// cgModel is the whole-program concurrency model.
type cgModel struct {
	pass *ProgramPass
	fset *token.FileSet

	funcs map[string]*cgFunc // by funcKey (and synthetic literal keys)
	// callers maps callee funcKey -> call sites referencing it.
	callers map[string][]callerRef
	// addressTaken marks functions referenced outside call position:
	// they have unknown call sites.
	addressTaken map[string]bool

	declared  []declaredEdge
	guards    map[string]guardFact // fieldKey -> guard
	rcuFields map[string]guardFact // fieldKey -> rotation lock
	// atomicFields are fields address-taken in sync/atomic calls
	// (inferred), mapped to one representative atomic-access position.
	atomicFields map[string]token.Pos
	// atomicTyped are fields whose declared type is a sync/atomic type.
	atomicTyped map[string]bool
}

// guardFact ties a guarded field to its guard lock.
type guardFact struct {
	guard   lockKey
	guardRW bool // guard is an RWMutex (read holds exist)
	pos     token.Pos
	owner   string // owning struct's full name, for messages
	name    string // bare field name
}

// buildConcguard walks the whole loaded program into a cgModel.
func buildConcguard(pass *ProgramPass) *cgModel {
	m := &cgModel{
		pass:         pass,
		fset:         pass.Fset,
		funcs:        make(map[string]*cgFunc),
		callers:      make(map[string][]callerRef),
		addressTaken: make(map[string]bool),
		guards:       make(map[string]guardFact),
		rcuFields:    make(map[string]guardFact),
		atomicFields: make(map[string]token.Pos),
		atomicTyped:  make(map[string]bool),
	}
	for _, pkg := range pass.Pkgs {
		m.collectAnnotations(pkg)
	}
	for _, pkg := range pass.Pkgs {
		m.walkPackage(pkg)
	}
	return m
}

type callerRef struct {
	caller string // funcKey of the calling function
	site   cgCallSite
}

// --- annotation collection -------------------------------------------

// collectAnnotations scans struct declarations for lockorder, guardedby,
// and rcu facts, and function declarations for exclusive/blocking.
func (m *cgModel) collectAnnotations(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
				if fn == nil {
					continue
				}
				key := funcKey(fn)
				f := m.getFunc(key)
				f.pkg, f.decl, f.pos = pkg, d, d.Pos()
				if _, ok := ptmFact(factExclusive, d.Doc); ok {
					f.exclusive = true
				}
				if _, ok := ptmFact(factBlocking, d.Doc); ok {
					f.blocking = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					m.collectStructFacts(pkg, d, ts, st)
				}
			}
		}
	}
}

func (m *cgModel) collectStructFacts(pkg *Package, gd *ast.GenDecl, ts *ast.TypeSpec, st *ast.StructType) {
	owner := pkg.Path + "." + ts.Name.Name

	fieldType := func(name string) types.Type {
		for _, fl := range st.Fields.List {
			for _, n := range fl.Names {
				if n.Name == name {
					return pkg.Info.TypeOf(fl.Type)
				}
			}
		}
		return nil
	}
	resolveLock := func(name string, pos token.Pos) (lockKey, bool, bool) {
		t := fieldType(name)
		if t == nil {
			m.pass.Report(pos, nil, "//ptm annotation names %q, which is not a field of %s", name, ts.Name.Name)
			return "", false, false
		}
		rw := isRWMutexType(t)
		if !rw && !isMutexType(t) {
			m.pass.Report(pos, nil, "//ptm annotation guard %s.%s is not a sync.Mutex or sync.RWMutex", ts.Name.Name, name)
			return "", false, false
		}
		return lockKey(owner + "." + name), rw, true
	}

	// lockorder pairs: in the type doc and on any field comment.
	scanOrder := func(g *ast.CommentGroup) {
		text, ok := ptmFact(factLockOrder, g)
		if !ok {
			return
		}
		for _, pair := range strings.Fields(text) {
			a, b, found := strings.Cut(pair, "<")
			if !found || a == "" || b == "" {
				m.pass.Report(g.Pos(), nil, "//%s pair %q is not of the form a<b", factLockOrder, pair)
				continue
			}
			ka, _, okA := resolveLock(a, g.Pos())
			kb, _, okB := resolveLock(b, g.Pos())
			if okA && okB {
				m.declared = append(m.declared, declaredEdge{before: ka, after: kb, pos: g.Pos(), pkg: pkg})
			}
		}
	}
	scanOrder(gd.Doc)
	scanOrder(ts.Doc)
	scanOrder(ts.Comment)

	// The guard name is the first token; anything after it is prose
	// (e.g. "//ptm:guardedby mu (all entries <= syncedSeq are durable)").
	firstToken := func(s string) string {
		if f := strings.Fields(s); len(f) > 0 {
			return f[0]
		}
		return ""
	}
	for _, fl := range st.Fields.List {
		scanOrder(fl.Doc)
		scanOrder(fl.Comment)
		if name, ok := ptmFact(factGuardedBy, fl.Doc, fl.Comment); ok {
			name = firstToken(name)
			if guard, rw, resolved := resolveLock(name, fl.Pos()); resolved {
				for _, fn := range fl.Names {
					m.guards[owner+"."+fn.Name] = guardFact{
						guard: guard, guardRW: rw, pos: fl.Pos(),
						owner: owner, name: fn.Name,
					}
				}
			}
		}
		if name, ok := ptmFact(factRCU, fl.Doc, fl.Comment); ok {
			name = firstToken(name)
			if guard, rw, resolved := resolveLock(name, fl.Pos()); resolved {
				for _, fn := range fl.Names {
					m.rcuFields[owner+"."+fn.Name] = guardFact{
						guard: guard, guardRW: rw, pos: fl.Pos(),
						owner: owner, name: fn.Name,
					}
				}
			}
		}
		if t := pkg.Info.TypeOf(fl.Type); t != nil && isAtomicType(t) {
			for _, fn := range fl.Names {
				m.atomicTyped[owner+"."+fn.Name] = true
			}
		}
	}
}

func (m *cgModel) getFunc(key string) *cgFunc {
	f, ok := m.funcs[key]
	if !ok {
		f = &cgFunc{key: key}
		m.funcs[key] = f
	}
	return f
}

// --- type helpers -----------------------------------------------------

func isMutexType(t types.Type) bool   { return namedIs(t, "sync", "Mutex") }
func isRWMutexType(t types.Type) bool { return namedIs(t, "sync", "RWMutex") }

func namedIs(t types.Type, pkg, name string) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkg
}

// isAtomicType reports whether t is one of the sync/atomic value types
// (atomic.Uint64, atomic.Pointer[T], ...).
func isAtomicType(t types.Type) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isAtomicPointerType reports whether t is atomic.Pointer[T].
func isAtomicPointerType(t types.Type) bool {
	return isAtomicType(t) && namedIs(t, "sync/atomic", "Pointer")
}

// fieldKeyOf resolves a selector expression to the instance-insensitive
// key of the struct field it denotes, or "" when it is not a field
// selection on a named struct.
func fieldKeyOf(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return ""
	}
	// Owner: walk to the named type the field was selected through. For
	// embedded chains the direct recv type still names the outer struct;
	// using the field's position within it keeps keys consistent with the
	// annotation side, which also keys by the declaring struct. Prefer
	// the declaring struct when we can find it.
	if owner := declaringStruct(s.Recv(), v); owner != "" {
		return owner + "." + v.Name()
	}
	return ""
}

// declaringStruct finds the full name of the named struct type that
// declares field v, searching recv and its embedded structs.
func declaringStruct(recv types.Type, v *types.Var) string {
	seen := make(map[string]bool)
	var find func(t types.Type) string
	find = func(t types.Type) string {
		n, ok := deref(t).(*types.Named)
		if !ok {
			return ""
		}
		full := namedFullName(n)
		if seen[full] {
			return ""
		}
		seen[full] = true
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			return ""
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f == v {
				return full
			}
			if f.Embedded() {
				if got := find(f.Type()); got != "" {
					return got
				}
			}
		}
		return ""
	}
	return find(recv)
}

// lockKeyOf resolves the receiver expression of a Lock/Unlock call (the
// `l.mu` in `l.mu.Lock()`) to a lock key.
func lockKeyOf(info *types.Info, enclosing string, e ast.Expr) (lockKey, bool) {
	switch e := unparen(e).(type) {
	case *ast.SelectorExpr:
		if key := fieldKeyOf(info, e); key != "" {
			return lockKey(key), true
		}
		// Package-qualified var: pkg.Mu.
		if id, ok := unparen(e.X).(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				return lockKey(pn.Imported().Path() + "." + e.Sel.Name), true
			}
		}
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil || obj.Pkg() == nil {
			return "", false
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return lockKey(obj.Pkg().Path() + "." + obj.Name()), true
		}
		return lockKey("local:" + enclosing + "." + obj.Name()), true
	}
	return "", false
}

// --- the flow-sensitive walker ---------------------------------------

// walkState carries the must/may held sets through a function body.
type walkState struct {
	must lockSet
	may  lockSet
	// terminated marks a path that ends in return/panic; it contributes
	// nothing to merges.
	terminated bool
}

func newWalkState() *walkState {
	return &walkState{must: make(lockSet), may: make(lockSet)}
}

func (w *walkState) clone() *walkState {
	return &walkState{must: w.must.clone(), may: w.may.clone(), terminated: w.terminated}
}

// merge folds a branch's exit state into w (w = join of both paths).
func (w *walkState) merge(o *walkState) {
	if o.terminated {
		return
	}
	if w.terminated {
		w.must, w.may, w.terminated = o.must, o.may, false
		return
	}
	w.must.intersect(o.must)
	w.may.union(o.may)
}

// funcWalker accumulates one function's summary.
type funcWalker struct {
	m    *cgModel
	pkg  *Package
	fn   *cgFunc
	info *types.Info
	// lits queues function literals for analysis as separate roots.
	lits []*ast.FuncLit
}

// walkPackage summarizes every function (and function literal) in pkg.
func (m *cgModel) walkPackage(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			f := m.getFunc(funcKey(fn))
			f.pkg, f.decl, f.pos = pkg, fd, fd.Pos()
			w := &funcWalker{m: m, pkg: pkg, fn: f, info: pkg.Info}
			st := newWalkState()
			w.walkStmts(fd.Body.List, st)
			// Function literals run on their own goroutine's schedule (or
			// at least at unknown call sites): analyze each as a root with
			// nothing held.
			for i := 0; i < len(w.lits); i++ {
				lit := w.lits[i]
				lf := m.getFunc(f.key + fmt.Sprintf("$lit%d", i+1))
				lf.pkg, lf.pos = pkg, lit.Pos()
				lw := &funcWalker{m: m, pkg: pkg, fn: lf, info: pkg.Info}
				lst := newWalkState()
				lw.walkStmts(lit.Body.List, lst)
				w.lits = append(w.lits, lw.lits...)
			}
		}
	}
}

// walkStmts walks a statement list, threading the held-set state.
func (w *funcWalker) walkStmts(stmts []ast.Stmt, st *walkState) {
	for _, s := range stmts {
		if st.terminated {
			return
		}
		w.walkStmt(s, st)
	}
}

func (w *funcWalker) walkStmt(s ast.Stmt, st *walkState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.walkExpr(s.X, st, false)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.walkExpr(rhs, st, false)
		}
		for _, lhs := range s.Lhs {
			w.walkExpr(lhs, st, true)
		}
		w.recordRCUBinding(s, st)
	case *ast.IncDecStmt:
		w.walkExpr(s.X, st, true)
	case *ast.DeferStmt:
		// Deferred unlocks run at return: the lock stays held for the
		// rest of the body, which is exactly what not processing the
		// unlock models. Other deferred work runs with end-of-function
		// state we do not model; walk the arguments only.
		if w.lockCallKind(s.Call) == "" {
			for _, a := range s.Call.Args {
				w.walkExpr(a, st, false)
			}
			if lit, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok {
				w.lits = append(w.lits, lit)
			}
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.walkExpr(a, st, false)
		}
		if lit, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.lits = append(w.lits, lit)
		} else if callee := w.staticCallee(s.Call); callee != "" {
			w.fn.calls = append(w.fn.calls, cgCallSite{
				callee: callee, pos: s.Call.Pos(), mustHeld: make(lockSet), goCall: true,
			})
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.walkExpr(r, st, false)
		}
		st.terminated = true
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.walkExpr(s.Cond, st, false)
		then := st.clone()
		w.walkStmts(s.Body.List, then)
		elseSt := st.clone()
		if s.Else != nil {
			w.walkStmt(s.Else, elseSt)
		}
		*st = *then
		st.merge(elseSt)
	case *ast.BlockStmt:
		w.walkStmts(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.walkExpr(s.Cond, st, false)
		}
		body := st.clone()
		w.walkStmts(s.Body.List, body)
		if s.Post != nil && !body.terminated {
			w.walkStmt(s.Post, body)
		}
		// The loop may run zero times: join the body's exit with entry.
		// A body that always returns still falls through via the loop
		// condition going false (or not, for `for {}` — close enough).
		body.terminated = false
		st.merge(body)
	case *ast.RangeStmt:
		w.walkRangeExpr(s, st)
		body := st.clone()
		w.walkStmts(s.Body.List, body)
		body.terminated = false
		st.merge(body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag, st, false)
		}
		w.walkCases(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.walkStmt(s.Assign, st)
		w.walkCases(s.Body, st)
	case *ast.SelectStmt:
		w.fn.blockPts = append(w.fn.blockPts, s.Pos())
		w.walkCases(s.Body, st)
	case *ast.SendStmt:
		// The value is evaluated before the send blocks: the blocking
		// point is the statement's end, so uses inside the send are fine.
		w.walkExpr(s.Chan, st, false)
		w.walkExpr(s.Value, st, false)
		w.fn.blockPts = append(w.fn.blockPts, s.End())
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, st, false)
					}
				}
			}
		}
	case *ast.BranchStmt:
		// break/continue/goto: approximated as straight-line.
	case *ast.EmptyStmt:
	default:
		// Conservatively walk any other statement's expressions.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.walkExpr(e, st, false)
				return false
			}
			return true
		})
	}
}

// walkCases merges every case clause of a switch/select body.
func (w *funcWalker) walkCases(body *ast.BlockStmt, st *walkState) {
	merged := st.clone()
	merged.terminated = true // so the first clause replaces it
	for _, c := range body.List {
		cs := st.clone()
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.walkExpr(e, cs, false)
			}
			w.walkStmts(c.Body, cs)
		case *ast.CommClause:
			if c.Comm != nil {
				w.walkStmt(c.Comm, cs)
			}
			w.walkStmts(c.Body, cs)
		}
		merged.merge(cs)
	}
	// A switch without a default may skip every case.
	merged.merge(st)
	*st = *merged
}

// walkRangeExpr records the range expression, exempting key-only ranges
// over a field (slice-header read). Ranging over a channel blocks.
func (w *funcWalker) walkRangeExpr(s *ast.RangeStmt, st *walkState) {
	if t := w.info.TypeOf(s.X); t != nil {
		if _, ok := t.Underlying().(*types.Chan); ok {
			w.fn.blockPts = append(w.fn.blockPts, s.Pos())
		}
	}
	if sel, ok := unparen(s.X).(*ast.SelectorExpr); ok && s.Value == nil {
		if key := fieldKeyOf(w.info, sel); key != "" {
			w.walkExpr(sel.X, st, false)
			w.fn.accesses = append(w.fn.accesses, cgAccess{
				field: key, pos: sel.Pos(), mayHeld: st.may.clone(), rangeKeyOnly: true,
			})
			return
		}
	}
	w.walkExpr(s.X, st, false)
}

// lockCallKind classifies call as "Lock", "RLock", "Unlock", "RUnlock"
// on a sync mutex, or "" when it is none of those.
func (w *funcWalker) lockCallKind(call *ast.CallExpr) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return ""
	}
	recv := w.info.TypeOf(sel.X)
	if recv == nil || (!isMutexType(recv) && !isRWMutexType(recv)) {
		return ""
	}
	return sel.Sel.Name
}

// staticCallee resolves a call's target funcKey when the callee is a
// declared function or method (not a func value or interface method).
func (w *funcWalker) staticCallee(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := w.info.Uses[fun].(*types.Func); ok {
			return funcKey(f)
		}
	case *ast.SelectorExpr:
		if s, ok := w.info.Selections[fun]; ok && s.Kind() == types.MethodVal {
			if f, ok := s.Obj().(*types.Func); ok {
				return funcKey(f)
			}
		}
		if f, ok := w.info.Uses[fun.Sel].(*types.Func); ok {
			return funcKey(f)
		}
	}
	return ""
}

// atomicCallee reports whether call targets a sync/atomic function or a
// method on a sync/atomic type, returning the bare name ("OrUint64",
// "Load", "Store", ...).
func (w *funcWalker) atomicCallee(call *ast.CallExpr) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if id, ok := unparen(sel.X).(*ast.Ident); ok {
		if pn, ok := w.info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "sync/atomic" {
			return sel.Sel.Name, true
		}
	}
	if recv := w.info.TypeOf(sel.X); recv != nil && isAtomicType(recv) {
		return sel.Sel.Name, true
	}
	return "", false
}

// blockingCall reports whether a call blocks for the rcu retention rule.
// Mutex acquisition deliberately does not count: the short guard-draw in
// the lock-free planes (e.g. an RNG draw under a mutex) is not a grace
// period. //ptm:blocking extends the set.
func (w *funcWalker) blockingCall(call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := w.info.TypeOf(sel.X)
	if recv != nil {
		if sel.Sel.Name == "Wait" && (namedIs(recv, "sync", "Cond") || namedIs(recv, "sync", "WaitGroup")) {
			return true
		}
	}
	if id, ok := unparen(sel.X).(*ast.Ident); ok {
		if pn, ok := w.info.Uses[id].(*types.PkgName); ok {
			p := pn.Imported().Path()
			if (p == "time" && sel.Sel.Name == "Sleep") || (p == "runtime" && sel.Sel.Name == "Gosched") {
				return true
			}
		}
	}
	if callee := w.staticCallee(call); callee != "" {
		if f, ok := w.m.funcs[callee]; ok && f.blocking {
			return true
		}
	}
	return false
}

// walkExpr records lock transitions, call sites, field accesses, and
// rcu/atomic operations in e. write marks LHS context.
func (w *funcWalker) walkExpr(e ast.Expr, st *walkState, write bool) {
	switch e := e.(type) {
	case *ast.CallExpr:
		w.walkCall(e, st)
	case *ast.FuncLit:
		w.lits = append(w.lits, e)
	case *ast.SelectorExpr:
		w.recordSelector(e, st, write, false)
	case *ast.Ident:
		w.recordIdentUse(e)
	case *ast.IndexExpr:
		w.walkExpr(e.X, st, write)
		w.walkExpr(e.Index, st, false)
	case *ast.IndexListExpr:
		w.walkExpr(e.X, st, write)
		for _, i := range e.Indices {
			w.walkExpr(i, st, false)
		}
	case *ast.SliceExpr:
		w.walkExpr(e.X, st, write)
		for _, x := range []ast.Expr{e.Low, e.High, e.Max} {
			if x != nil {
				w.walkExpr(x, st, false)
			}
		}
	case *ast.StarExpr:
		w.walkExpr(e.X, st, write)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.AND:
			// &x.f: the pointer escapes the guard's scope — record it as
			// an address-taken write of the field.
			w.recordAddrOf(e.X, st)
		case token.ARROW:
			// <-ch blocks; the receive completing is the blocking point.
			w.walkExpr(e.X, st, false)
			w.fn.blockPts = append(w.fn.blockPts, e.End())
		default:
			w.walkExpr(e.X, st, false)
		}
	case *ast.ParenExpr:
		w.walkExpr(e.X, st, write)
	case *ast.BinaryExpr:
		w.walkExpr(e.X, st, false)
		w.walkExpr(e.Y, st, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.walkExpr(kv.Value, st, false)
				continue
			}
			w.walkExpr(el, st, false)
		}
	case *ast.KeyValueExpr:
		w.walkExpr(e.Value, st, false)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X, st, false)
	}
}

// walkCall handles lock transitions, atomic calls, rcu ops, builtins,
// and ordinary call sites.
func (w *funcWalker) walkCall(call *ast.CallExpr, st *walkState) {
	// Lock/Unlock on a resolvable mutex expression.
	if kind := w.lockCallKind(call); kind != "" {
		sel := unparen(call.Fun).(*ast.SelectorExpr)
		key, ok := lockKeyOf(w.info, w.fn.key, sel.X)
		if !ok {
			return
		}
		switch kind {
		case "Lock", "TryLock":
			w.fn.acquires = append(w.fn.acquires, cgAcquire{
				lock: key, mode: modeW, pos: call.Pos(), held: st.must.clone(),
			})
			st.must.add(key, modeW)
			st.may.add(key, modeW)
		case "RLock", "TryRLock":
			w.fn.acquires = append(w.fn.acquires, cgAcquire{
				lock: key, mode: modeR, pos: call.Pos(), held: st.must.clone(),
			})
			st.must.add(key, modeR)
			st.may.add(key, modeR)
		case "Unlock", "RUnlock":
			delete(st.must, key)
			delete(st.may, key)
		}
		return
	}

	// sync/atomic: the field operands are atomic accesses, and annotated
	// atomic.Pointer fields get rcu op records.
	if name, ok := w.atomicCallee(call); ok {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if fsel, ok := unparen(sel.X).(*ast.SelectorExpr); ok {
				if key := fieldKeyOf(w.info, fsel); key != "" {
					if _, rcu := w.m.rcuFields[key]; rcu {
						w.fn.rcuOps = append(w.fn.rcuOps, cgRCUOp{
							field: key, op: name, pos: call.Pos(), mustHeld: st.must.clone(),
						})
					}
				}
			}
		}
		for _, a := range call.Args {
			w.markAtomicOperand(a, st)
			w.walkExprSkippingFields(a, st)
		}
		return
	}

	// Builtins with access semantics.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "len", "cap":
			if sel, ok := unparen(call.Args[0]).(*ast.SelectorExpr); ok {
				if key := fieldKeyOf(w.info, sel); key != "" {
					w.walkExpr(sel.X, st, false)
					w.fn.accesses = append(w.fn.accesses, cgAccess{
						field: key, pos: sel.Pos(), mayHeld: st.may.clone(), rangeKeyOnly: true,
					})
					return
				}
			}
		case "clear", "delete":
			w.walkExpr(call.Args[0], st, true)
			for _, a := range call.Args[1:] {
				w.walkExpr(a, st, false)
			}
			return
		case "copy":
			w.walkExpr(call.Args[0], st, true)
			w.walkExpr(call.Args[1], st, false)
			return
		case "panic":
			for _, a := range call.Args {
				w.walkExpr(a, st, false)
			}
			st.terminated = true
			return
		}
	}

	// Ordinary call: walk the function expression (its base is a read)
	// and arguments, record blocking-ness and the call site.
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		// Method value receivers and package selectors: record accesses
		// in the receiver chain, but the selector itself is a method, not
		// a field.
		if s, isField := w.info.Selections[fun]; isField && s.Kind() == types.FieldVal {
			// Calling a func-typed field: the field itself is read.
			w.recordSelector(fun, st, false, false)
		} else {
			w.walkExpr(fun.X, st, false)
		}
	case *ast.FuncLit:
		w.lits = append(w.lits, fun)
	case *ast.Ident:
		// Direct call (or conversion): the callee is resolved via
		// staticCallee below; an identifier in call position is not an
		// address-taken function reference.
	default:
		w.walkExpr(call.Fun, st, false)
	}
	for _, a := range call.Args {
		w.walkExpr(a, st, false)
	}
	if w.blockingCall(call) {
		// Arguments are evaluated before the call blocks: the blocking
		// point is the call's end.
		w.fn.blockPts = append(w.fn.blockPts, call.End())
	}
	if callee := w.staticCallee(call); callee != "" {
		w.fn.calls = append(w.fn.calls, cgCallSite{
			callee: callee, pos: call.Pos(), mustHeld: st.must.clone(),
		})
	}
}

// markAtomicOperand records field selectors inside a sync/atomic call
// argument as atomic accesses and infers atomic fields from
// address-taken operands (`&b.words[i]`).
func (w *funcWalker) markAtomicOperand(a ast.Expr, st *walkState) {
	addrOf := false
	if u, ok := unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
		addrOf = true
	}
	ast.Inspect(a, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		key := fieldKeyOf(w.info, sel)
		if key == "" {
			return true
		}
		if addrOf {
			if _, seen := w.m.atomicFields[key]; !seen {
				w.m.atomicFields[key] = sel.Pos()
			}
		}
		w.fn.accesses = append(w.fn.accesses, cgAccess{
			field: key, pos: sel.Pos(), mayHeld: st.may.clone(), atomicArg: true,
		})
		return false
	})
}

// walkExprSkippingFields walks an atomic-call argument for nested calls
// and identifier uses without re-recording its field selectors (those
// were recorded as atomic accesses).
func (w *funcWalker) walkExprSkippingFields(a ast.Expr, st *walkState) {
	ast.Inspect(a, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			w.walkCall(n, st)
			return false
		case *ast.SelectorExpr:
			return false
		case *ast.Ident:
			w.recordIdentUse(n)
		}
		return true
	})
}

// recordSelector records a field access (and address-taken functions).
func (w *funcWalker) recordSelector(sel *ast.SelectorExpr, st *walkState, write, atomicArg bool) {
	// A method referenced outside call position is address-taken.
	if s, ok := w.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		if f, ok := s.Obj().(*types.Func); ok {
			w.m.addressTaken[funcKey(f)] = true
		}
		w.walkExpr(sel.X, st, false)
		return
	}
	if f, ok := w.info.Uses[sel.Sel].(*types.Func); ok {
		w.m.addressTaken[funcKey(f)] = true
		return
	}
	if key := fieldKeyOf(w.info, sel); key != "" {
		w.fn.accesses = append(w.fn.accesses, cgAccess{
			field: key, pos: sel.Pos(), write: write,
			mayHeld: st.may.clone(), atomicArg: atomicArg,
		})
		w.walkExpr(sel.X, st, false)
		return
	}
	// The selection itself is not a recordable field (an anonymous-struct
	// member, say): the write lands on the base — `l.stats.appends++`
	// writes the guarded field stats.
	w.walkExpr(sel.X, st, write)
}

// recordAddrOf handles &expr: when the operand bottoms out in a struct
// field (possibly through index/slice steps), the field's address
// escapes and is recorded as an address-taken write.
func (w *funcWalker) recordAddrOf(e ast.Expr, st *walkState) {
	base := unparen(e)
	for {
		switch b := base.(type) {
		case *ast.IndexExpr:
			w.walkExpr(b.Index, st, false)
			base = unparen(b.X)
			continue
		case *ast.SliceExpr:
			for _, x := range []ast.Expr{b.Low, b.High, b.Max} {
				if x != nil {
					w.walkExpr(x, st, false)
				}
			}
			base = unparen(b.X)
			continue
		}
		break
	}
	if sel, ok := base.(*ast.SelectorExpr); ok {
		if key := fieldKeyOf(w.info, sel); key != "" {
			w.fn.accesses = append(w.fn.accesses, cgAccess{
				field: key, pos: sel.Pos(), write: true,
				mayHeld: st.may.clone(), addrOf: true,
			})
			w.walkExpr(sel.X, st, false)
			return
		}
	}
	w.walkExpr(e, st, true)
}

// recordIdentUse tracks identifier uses (rcu retention) and
// address-taken functions.
func (w *funcWalker) recordIdentUse(id *ast.Ident) {
	obj := w.info.Uses[id]
	if obj == nil {
		return
	}
	if f, ok := obj.(*types.Func); ok {
		w.m.addressTaken[funcKey(f)] = true
		return
	}
	w.fn.usesAfter = append(w.fn.usesAfter, objUse{obj: obj, pos: id.Pos()})
}

// recordRCUBinding captures `x := field.Load()` so the retention check
// can follow x.
func (w *funcWalker) recordRCUBinding(s *ast.AssignStmt, st *walkState) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	var obj types.Object
	if s.Tok == token.DEFINE {
		obj = w.info.Defs[id]
	} else {
		obj = w.info.Uses[id]
	}
	if obj == nil {
		return
	}
	call, ok := unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Load" && sel.Sel.Name != "Swap") {
		return
	}
	fsel, ok := unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	key := fieldKeyOf(w.info, fsel)
	if key == "" {
		return
	}
	if _, rcu := w.m.rcuFields[key]; !rcu {
		return
	}
	// Attach the binding target to the op recorded by walkCall (it is
	// the most recent op on this field at this position).
	for i := len(w.fn.rcuOps) - 1; i >= 0; i-- {
		op := &w.fn.rcuOps[i]
		if op.field == key && op.pos == call.Pos() {
			op.target = obj
			op.bindPos = s.Pos()
			break
		}
	}
	_ = st
}

// --- interprocedural coverage ----------------------------------------

// buildCallers indexes call sites by callee.
func (m *cgModel) buildCallers() {
	for _, f := range m.funcs {
		for _, c := range f.calls {
			m.callers[c.callee] = append(m.callers[c.callee], callerRef{caller: f.key, site: c})
		}
	}
}

// exclusiveCovered computes, for every function, whether all execution
// paths reaching it come from //ptm:exclusive functions (greatest fixed
// point: assume covered, knock out).
func (m *cgModel) exclusiveCovered() map[string]bool {
	cov := make(map[string]bool, len(m.funcs))
	for k, f := range m.funcs {
		// Literal roots and address-taken functions have unknown callers.
		cov[k] = f.exclusive || (!m.addressTaken[k] && len(m.callers[k]) > 0)
	}
	for changed := true; changed; {
		changed = false
		for k, f := range m.funcs {
			if !cov[k] || f.exclusive {
				continue
			}
			for _, ref := range m.callers[k] {
				if ref.site.goCall || !cov[ref.caller] {
					cov[k] = false
					changed = true
					break
				}
			}
		}
	}
	return cov
}

// guardCovered computes whether lock g (in mode need) is held on every
// path into each function: at every call site the guard is in the
// caller's must-held set, or the caller is itself covered, or the caller
// runs exclusively. Greatest fixed point.
func (m *cgModel) guardCovered(g lockKey, need lockMode, exclusive map[string]bool) map[string]bool {
	cov := make(map[string]bool, len(m.funcs))
	for k := range m.funcs {
		cov[k] = !m.addressTaken[k] && len(m.callers[k]) > 0
	}
	for changed := true; changed; {
		changed = false
		for k := range m.funcs {
			if !cov[k] {
				continue
			}
			for _, ref := range m.callers[k] {
				siteOK := !ref.site.goCall &&
					(ref.site.mustHeld.holds(g, need) || cov[ref.caller] || exclusive[ref.caller])
				if !siteOK {
					cov[k] = false
					changed = true
					break
				}
			}
		}
	}
	return cov
}

// uncoveredSite returns one call site that breaks g's coverage of f, for
// witness paths. Returns the zero ref when none is found.
func (m *cgModel) uncoveredSite(fk string, g lockKey, need lockMode, cov, exclusive map[string]bool) (callerRef, bool) {
	if m.addressTaken[fk] {
		return callerRef{}, false
	}
	for _, ref := range m.callers[fk] {
		if ref.site.goCall || (!ref.site.mustHeld.holds(g, need) && !cov[ref.caller] && !exclusive[ref.caller]) {
			return ref, true
		}
	}
	return callerRef{}, false
}

// --- shared reporting helpers ----------------------------------------

// shortLock renders a lock key for messages: "Type.field" or "pkg.var".
func shortLock(k lockKey) string {
	return shortKey(string(k))
}

// sortedFuncs returns the model's functions ordered by position for
// deterministic diagnostics.
func (m *cgModel) sortedFuncs() []*cgFunc {
	out := make([]*cgFunc, 0, len(m.funcs))
	for _, f := range m.funcs {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		return out[i].key < out[j].key
	})
	return out
}

// nonDepPos reports whether pos lies in a non-dependency package, where
// findings may be anchored.
func (m *cgModel) nonDepPos(pos token.Pos) bool {
	name := m.fset.Position(pos).Filename
	for _, p := range m.pass.Pkgs {
		if p.Dep {
			continue
		}
		for _, f := range p.fileNames {
			if f == name {
				return true
			}
		}
	}
	return false
}

// funcLabel renders a function key for messages ("Type.Method" or
// "pkg.func", literals as "Type.Method$litN").
func funcLabel(key string) string {
	return shortKey(key)
}
