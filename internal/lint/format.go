package lint

// Machine-readable renderings of diagnostics: a compact JSON form for
// scripts and a SARIF 2.1.0 document for CI annotation surfaces and
// editors. Both preserve the privflow witness path — JSON as a "path"
// hop list, SARIF as a codeFlow/threadFlow.

import (
	"encoding/json"
	"path/filepath"
)

// jsonHop is one witness-path step in the JSON rendering.
type jsonHop struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Note string `json:"note"`
}

type jsonDiag struct {
	File    string    `json:"file"`
	Line    int       `json:"line"`
	Rule    string    `json:"rule"`
	Message string    `json:"message"`
	Path    []jsonHop `json:"path,omitempty"`
}

// Relativizer rewrites an absolute diagnostic filename for output; nil
// keeps filenames as-is.
type Relativizer func(string) string

func relName(rel Relativizer, name string) string {
	if rel != nil {
		name = rel(name)
	}
	return name
}

// FormatJSON renders diagnostics as a JSON array (stable field order,
// one object per finding, witness hops under "path").
func FormatJSON(diags []Diagnostic, rel Relativizer) ([]byte, error) {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		jd := jsonDiag{
			File:    relName(rel, d.Pos.Filename),
			Line:    d.Pos.Line,
			Rule:    d.Rule,
			Message: d.Message,
		}
		for _, r := range d.Related {
			jd.Path = append(jd.Path, jsonHop{File: relName(rel, r.Pos.Filename), Line: r.Pos.Line, Note: r.Note})
		}
		out = append(out, jd)
	}
	return json.MarshalIndent(out, "", "  ")
}

// SARIFSchemaURI and SARIFVersion identify the produced SARIF dialect.
const (
	SARIFSchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"
	SARIFVersion   = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	CodeFlows []sarifCodeFlow `json:"codeFlows,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          *sarifMessage `json:"message,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

type sarifCodeFlow struct {
	ThreadFlows []sarifThreadFlow `json:"threadFlows"`
}

type sarifThreadFlow struct {
	Locations []sarifThreadFlowLoc `json:"locations"`
}

type sarifThreadFlowLoc struct {
	Location sarifLocation `json:"location"`
}

func sarifLoc(rel Relativizer, file string, line int, note string) sarifLocation {
	if line < 1 {
		line = 1
	}
	loc := sarifLocation{
		PhysicalLocation: sarifPhysical{
			ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(relName(rel, file))},
			Region:           sarifRegion{StartLine: line},
		},
	}
	if note != "" {
		loc.Message = &sarifMessage{Text: note}
	}
	return loc
}

// FormatSARIF renders diagnostics as a SARIF 2.1.0 log. analyzers supply
// the rule metadata; the stale-directive and unknown-directive
// pseudo-rules are always included.
func FormatSARIF(diags []Diagnostic, analyzers []*Analyzer, rel Relativizer) ([]byte, error) {
	driver := sarifDriver{
		Name:           "ptmlint",
		InformationURI: "https://github.com/ptm/ptm#verifying-invariants-ptmlint",
	}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	driver.Rules = append(driver.Rules, sarifRule{
		ID:               StaleDirective,
		ShortDescription: sarifMessage{Text: "//ptmlint:allow directives must still suppress a finding"},
	}, sarifRule{
		ID:               UnknownDirective,
		ShortDescription: sarifMessage{Text: "//ptm: directives must name a known fact kind"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		res := sarifResult{
			RuleID:    d.Rule,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{sarifLoc(rel, d.Pos.Filename, d.Pos.Line, "")},
		}
		if len(d.Related) > 0 {
			tf := sarifThreadFlow{}
			for _, r := range d.Related {
				file := r.Pos.Filename
				if file == "" {
					file = d.Pos.Filename // built-in sources carry no position
				}
				tf.Locations = append(tf.Locations, sarifThreadFlowLoc{Location: sarifLoc(rel, file, r.Pos.Line, r.Note)})
			}
			res.CodeFlows = []sarifCodeFlow{{ThreadFlows: []sarifThreadFlow{tf}}}
		}
		results = append(results, res)
	}
	doc := sarifLog{
		Schema:  SARIFSchemaURI,
		Version: SARIFVersion,
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	return json.MarshalIndent(doc, "", "  ")
}
