package lint

// rcu enforces the read-copy-update publication contract declared with
// //ptm:rcu mu on atomic.Pointer[T] fields:
//
//   - writer side: Store/Swap/CompareAndSwap on the field may only
//     happen while the declared rotation lock is held (locally, or on
//     every path into the function, or in an //ptm:exclusive region) —
//     otherwise two rotations can interleave and strand in-flight
//     updates on an unpublished snapshot;
//   - reader side: a pointer obtained from Load must not be used again
//     after a blocking operation (channel op, select, sleep, Gosched,
//     Cond/WaitGroup Wait, or an //ptm:blocking callee) — after
//     blocking, a rotation may have retired the snapshot, so the reader
//     must re-Load. The writer itself is exempt: holding the rotation
//     lock, it retires the old state and may legitimately drain it
//     across its grace-period spin.

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
)

// RCU returns the rcu analyzer.
func RCU() *Analyzer {
	return &Analyzer{
		Name:       "rcu",
		Doc:        "//ptm:rcu pointers are only stored under the rotation lock and never retained across blocking calls",
		RunProgram: runRCU,
	}
}

func runRCU(pass *ProgramPass) {
	m := buildConcguard(pass)
	if len(m.rcuFields) == 0 {
		return
	}
	m.buildCallers()
	excl := m.exclusiveCovered()
	covCache := make(map[lockKey]map[string]bool)
	covFor := func(g lockKey) map[string]bool {
		if c, ok := covCache[g]; ok {
			return c
		}
		c := m.guardCovered(g, modeW, excl)
		covCache[g] = c
		return c
	}

	for _, f := range m.sortedFuncs() {
		var blocks []int
		for _, b := range f.blockPts {
			blocks = append(blocks, int(b))
		}
		sort.Ints(blocks)

		// binds[obj] holds the binding positions of every Load/Swap bound
		// to obj: a use past a later re-binding holds the fresh snapshot
		// and is not retention of the earlier one.
		binds := make(map[types.Object][]int)
		for _, op := range f.rcuOps {
			if op.target != nil {
				binds[op.target] = append(binds[op.target], int(op.bindPos))
			}
		}
		for _, v := range binds {
			sort.Ints(v)
		}

		for _, op := range f.rcuOps {
			fact := m.rcuFields[op.field]
			writerHeld := op.mustHeld.holds(fact.guard, modeW) || excl[f.key] || covFor(fact.guard)[f.key]

			switch op.op {
			case "Store", "Swap", "CompareAndSwap":
				if !writerHeld && m.nonDepPos(op.pos) {
					pass.Report(op.pos, []Related{
						m.rel(fact.pos, fmt.Sprintf("%s declared //ptm:rcu %s here", fact.name, shortLock(fact.guard))),
					}, "%s on RCU field %s.%s without holding rotation lock %s",
						op.op, shortKey(fact.owner), fact.name, shortLock(fact.guard))
				}
			}

			// Retention: a pointer bound from Load (or Swap) used after a
			// later blocking point. The writer holds the rotation lock and
			// is exempt — it owns the retired snapshot.
			if op.target == nil || writerHeld {
				continue
			}
			idx := sort.SearchInts(blocks, int(op.pos)+1)
			if idx == len(blocks) {
				continue
			}
			block := blocks[idx]
			// Earliest use of the loaded pointer after the blocking point
			// that is still governed by this binding (no re-Load of the
			// same variable in between).
			superseded := func(usePos int) bool {
				for _, b := range binds[op.target] {
					if b > int(op.bindPos) && b <= usePos {
						return true
					}
				}
				return false
			}
			var first token.Pos
			for _, use := range f.usesAfter {
				if use.obj != op.target || int(use.pos) <= block || superseded(int(use.pos)) {
					continue
				}
				if first == token.NoPos || use.pos < first {
					first = use.pos
				}
			}
			if first == token.NoPos || !m.nonDepPos(first) {
				continue
			}
			pass.Report(first, []Related{
				m.rel(op.pos, fmt.Sprintf("%s.%s loaded here", shortKey(fact.owner), fact.name)),
				m.rel(token.Pos(block), "blocking operation here; the snapshot may be retired after this point"),
			}, "RCU pointer from %s.%s retained across a blocking operation; re-Load after blocking",
				shortKey(fact.owner), fact.name)
		}
	}
}
