package lint

import (
	"go/ast"
	"go/token"
	"strings"
	"testing"
)

// TestPerfguardParse pins the compiler-diagnostic grammar pgParse
// consumes: escape groups with flow traces, allocation-site summaries
// (deduplicated against their group), inliner verdicts, prove-pass
// bounds-check residues, and noise lines that must be ignored.
func TestPerfguardParse(t *testing.T) {
	const raw = `x.go:10:12: s escapes to heap:
x.go:10:12:   flow: ~r0 = &{storage for s}:
x.go:10:12:     from s := make([]int, n) (spill) at x.go:10:12
x.go:10:12:     from return s (return) at x.go:11:2
x.go:10:12: make([]int, n) escapes to heap
x.go:20:6: moved to heap: v
x.go:30:6: can inline Small with cost 7 as: func(int) int { return n + 1 }
x.go:40:6: cannot inline Big: function too complex: cost 117 exceeds budget 80
x.go:50:9: Found IsInBounds
x.go:51:14: Found IsSliceInBounds
x.go:60:6: inlining call to Small
x.go:61:7: leaking param: b
x.go:62:7: p does not escape
not a diagnostic line
`
	out := &pgDiag{inlines: make(map[string]pgInline)}
	pgParse(out, raw)

	if len(out.escapes) != 2 {
		t.Fatalf("escapes = %d, want 2 (group deduped with its summary)", len(out.escapes))
	}
	e := out.escapes[0]
	if e.pos.Line != 10 || e.what != "s escapes to heap" {
		t.Errorf("escape[0] = %d %q", e.pos.Line, e.what)
	}
	if len(e.flow) != 3 {
		t.Fatalf("flow hops = %d, want 3", len(e.flow))
	}
	if e.flow[2].Pos.Line != 11 || !strings.Contains(e.flow[2].Note, "return s") {
		t.Errorf("flow[2] = %d %q, want the 'at'-relocated return hop", e.flow[2].Pos.Line, e.flow[2].Note)
	}
	if out.escapes[1].pos.Line != 20 || out.escapes[1].what != "moved to heap: v" {
		t.Errorf("escape[1] = %d %q", out.escapes[1].pos.Line, out.escapes[1].what)
	}

	if v, ok := out.inlines["x.go:30"]; !ok || !v.can {
		t.Errorf("inline verdict at x.go:30 = %+v, want can=true", v)
	}
	if v, ok := out.inlines["x.go:40"]; !ok || v.can || !strings.Contains(v.text, "cost 117") {
		t.Errorf("inline verdict at x.go:40 = %+v, want can=false with quoted cost", v)
	}

	if len(out.bounds) != 2 {
		t.Fatalf("bounds = %d, want 2", len(out.bounds))
	}
	if out.bounds[0].kind != "IsInBounds" || out.bounds[0].pos.Column != 9 {
		t.Errorf("bounds[0] = %+v", out.bounds[0])
	}
	if out.bounds[1].kind != "IsSliceInBounds" || out.bounds[1].pos.Line != 51 {
		t.Errorf("bounds[1] = %+v", out.bounds[1])
	}
}

// TestPerfguardParseOrphanFlow checks that indented trace lines with no
// open escape group (the group was closed by an unindented line) are
// dropped rather than attached to the wrong finding.
func TestPerfguardParseOrphanFlow(t *testing.T) {
	const raw = `x.go:10:12: s escapes to heap:
x.go:20:6: moved to heap: v
x.go:10:12:   flow: stray trace after the group closed
`
	out := &pgDiag{inlines: make(map[string]pgInline)}
	pgParse(out, raw)
	for _, e := range out.escapes {
		if len(e.flow) != 0 {
			t.Errorf("escape %q picked up an orphan flow hop: %+v", e.what, e.flow)
		}
	}
}

// TestPerfguardRangeContains pins the filename check: a position with
// matching line/column in a different file must not fall inside a range
// (inlining relocates callee diagnostics across files).
func TestPerfguardRangeContains(t *testing.T) {
	r := pgRange{
		start: pos("a.go", 5, 1),
		end:   pos("a.go", 10, 2),
	}
	if !r.contains(pos("a.go", 7, 3)) {
		t.Error("in-range position in the same file not contained")
	}
	if r.contains(pos("b.go", 7, 3)) {
		t.Error("position in a different file contained")
	}
	if r.contains(pos("a.go", 11, 1)) {
		t.Error("position past the range contained")
	}
}

// TestPerfguardColdRegions loads the noalloc fixture and checks the
// cold-region classifier: Guarded's error-returning block is cold (its
// fmt.Errorf is exempt), and the hot return is not.
func TestPerfguardColdRegions(t *testing.T) {
	loader := &Loader{}
	pkgs, err := loader.Load("./testdata/src/perfguard/noalloc")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	for _, pkg := range pkgs {
		if pkg.Dep {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Name.Name != "Guarded" {
					continue
				}
				cold := pgColdRegions(pkg, decl, loader.Fset())
				if len(cold) != 1 {
					t.Fatalf("Guarded cold regions = %d, want 1", len(cold))
				}
				errLine := cold[0].start.Line
				body := loader.Fset().Position(decl.Body.Lbrace).Line
				if errLine <= body {
					t.Errorf("cold region starts at %d, before the guard block", errLine)
				}
				return
			}
		}
	}
	t.Fatal("fixture function Guarded not found")
}

// TestPerfguardTrusted pins the allocation-free table's matching rules.
func TestPerfguardTrusted(t *testing.T) {
	for key, want := range map[string]bool{
		"math.Log":                               true,
		"math/bits.OnesCount64":                  true,
		"sync/atomic.LoadUint64":                 true,
		"encoding/binary.littleEndian.PutUint32": true,
		"sync.Mutex.Lock":                        true,
		"os.File.Write":                          true,
		"bufio.Writer.Write":                     true,
		"hash/crc32.Checksum":                    true,
		"errors.Is":                              true,
		"fmt.Errorf":                             false,
		"os.OpenFile":                            false,
		"io.Writer.Write":                        false,
		"math/rand.Int":                          false, // "math." prefix must not swallow math/rand
	} {
		if got := pgTrusted(key); got != want {
			t.Errorf("pgTrusted(%q) = %v, want %v", key, got, want)
		}
	}
}

func pos(file string, line, col int) token.Position {
	return token.Position{Filename: file, Line: line, Column: col}
}
