package lint

import (
	"strings"
	"testing"
)

// loadConcguardFixture loads one concguard golden directory and runs a
// single analyzer over it.
func loadConcguardFixture(t *testing.T, dir string, a *Analyzer) []Diagnostic {
	t.Helper()
	loader := &Loader{}
	pkgs, err := loader.Load("./testdata/src/concguard/" + dir)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return Run(loader.Fset(), pkgs, []*Analyzer{a})
}

// TestLockOrderWitnessPath pins down the shape of a lockorder inversion's
// witness: the declared annotation, the call hop that carries the outer
// lock into the callee, and the inner acquisition, in flow order.
func TestLockOrderWitnessPath(t *testing.T) {
	diags := loadConcguardFixture(t, "lockorder", LockOrder())
	var inv *Diagnostic
	for i := range diags {
		if strings.Contains(diags[i].Message, "inverting declared order") {
			inv = &diags[i]
		}
	}
	if inv == nil {
		t.Fatalf("no inversion diagnostic in %v", diags)
	}
	if len(inv.Related) < 3 {
		t.Fatalf("witness has %d hops, want at least 3 (declaration, call, acquisition): %v",
			len(inv.Related), inv.Related)
	}
	if !strings.Contains(inv.Related[0].Note, "declared here") {
		t.Errorf("first hop %q does not cite the //ptm:lockorder declaration", inv.Related[0].Note)
	}
	var sawCall, sawAcquire bool
	for _, r := range inv.Related {
		if r.Pos.Line == 0 || r.Pos.Filename == "" {
			t.Errorf("hop %q has no position", r.Note)
		}
		if strings.Contains(r.Note, "calls") && strings.Contains(r.Note, "while holding") {
			sawCall = true
		}
		if strings.Contains(r.Note, "acquires") {
			sawAcquire = true
		}
	}
	if !sawCall {
		t.Errorf("witness never crosses the call that carries the held lock: %v", inv.Related)
	}
	if !sawAcquire {
		t.Errorf("witness never reaches the inner acquisition: %v", inv.Related)
	}
}

// TestLockOrderCycleWitness asserts the undeclared cycle is reported once
// with an edge witness for every hop of the cycle.
func TestLockOrderCycleWitness(t *testing.T) {
	diags := loadConcguardFixture(t, "lockorder", LockOrder())
	var cycles []Diagnostic
	for _, d := range diags {
		if strings.Contains(d.Message, "lock-order cycle") {
			cycles = append(cycles, d)
		}
	}
	if len(cycles) != 1 {
		t.Fatalf("got %d cycle diagnostics, want exactly 1: %v", len(cycles), cycles)
	}
	if len(cycles[0].Related) < 2 {
		t.Errorf("cycle witness has %d hops, want one per edge: %v",
			len(cycles[0].Related), cycles[0].Related)
	}
}

// TestGuardedByCoverage asserts the interprocedural half of guardedby: a
// helper whose callers all hold the lock is clean, so the only findings
// in the fixture are the two deliberate violations.
func TestGuardedByCoverage(t *testing.T) {
	diags := loadConcguardFixture(t, "guardedby", GuardedBy())
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (setLocked must be covered by its locked caller): %v",
			len(diags), diags)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "setLocked") {
			t.Errorf("covered helper reported: %s", d)
		}
	}
}

// TestRCUReloadRebinds asserts that re-Loading into the same variable
// after a blocking point ends the earlier snapshot's retention window.
func TestRCUReloadRebinds(t *testing.T) {
	diags := loadConcguardFixture(t, "rcu", RCU())
	for _, d := range diags {
		if d.Pos.Line == 0 {
			t.Errorf("diagnostic without position: %s", d)
		}
		if strings.Contains(d.Message, "retained") && d.Related[0].Note == "" {
			t.Errorf("retention diagnostic missing load-site note: %s", d)
		}
	}
	// Exactly one Store violation and one retention: GoodRead and
	// GoodReload must stay silent.
	var stores, retains int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "Store on RCU field"):
			stores++
		case strings.Contains(d.Message, "retained across a blocking"):
			retains++
		}
	}
	if stores != 1 || retains != 1 {
		t.Errorf("got %d store / %d retention findings, want 1/1: %v", stores, retains, diags)
	}
}
