package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Bitmap size bounds mirrored from internal/bitmap: sizes below one
// machine word are statistically useless, sizes above 2^30 bits exhaust
// memory, and non-powers-of-two break the replication expansion of
// Section III-A (bit h mod m of the expansion must equal bit h mod l of
// the original, which requires l | m with both powers of two).
const (
	pow2Min = 64
	pow2Max = 1 << 30
)

// Pow2Size returns the analyzer flagging constant arguments to bitmap.New
// and bitmap.MustNew that are not powers of two in [64, 1<<30]. Run-time
// computed sizes are out of scope (the constructor validates them); the
// rule exists to turn latent constructor errors and MustNew panics into
// compile-time findings.
func Pow2Size() *Analyzer {
	return &Analyzer{
		Name: "pow2size",
		Doc:  "bitmap sizes must be powers of two in [64, 1<<30]",
		Run:  runPow2Size,
	}
}

func runPow2Size(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := bitmapCtor(pass, call)
			if name == "" || len(call.Args) == 0 {
				return true
			}
			// New and MustNew both take the size as their sole argument.
			arg := call.Args[0]
			tv, ok := pass.Pkg.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
				return true
			}
			n64, ok := constant.Int64Val(tv.Value)
			if !ok {
				pass.Reportf(arg.Pos(), "bitmap.%s size overflows int64", name)
				return true
			}
			switch {
			case n64 < pow2Min || n64 > pow2Max:
				pass.Reportf(arg.Pos(),
					"bitmap.%s size %d outside [%d, 1<<30]", name, n64, pow2Min)
			case n64&(n64-1) != 0:
				pass.Reportf(arg.Pos(),
					"bitmap.%s size %d is not a power of two; replication expansion (Section III-A) requires power-of-two sizes", name, n64)
			}
			return true
		})
	}
}

// bitmapCtor returns "New" or "MustNew" when call invokes the bitmap
// package's constructor, and "" otherwise. Both qualified calls
// (bitmap.New from other packages) and unqualified calls (New inside the
// bitmap package itself) are recognized.
func bitmapCtor(pass *Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return ""
	}
	obj, ok := pass.ObjectOf(id).(*types.Func)
	if !ok || obj.Pkg() == nil {
		return ""
	}
	if !strings.HasSuffix(obj.Pkg().Path(), "internal/bitmap") {
		return ""
	}
	if name := obj.Name(); name == "New" || name == "MustNew" {
		return name
	}
	return ""
}
