// perfguard: compiler-diagnostics-driven hot-path performance contracts.
//
// The fused join kernels, the atomic bitmap operations, the transport
// frame encoder, and the WAL append path only hit the paper's city-scale
// throughput targets if they stay allocation-free, inlinable, and free of
// bounds checks — contracts that until now lived in prose and a handful
// of AllocsPerRun tests. The three rules below make them machine-checked
// the same way privflow and concguard check the privacy and locking
// contracts:
//
//	//ptm:noalloc  the function's body must produce no heap-escape
//	               diagnostics, and it may only call callees that are
//	               themselves proven allocation-free (a greatest-fixpoint
//	               over the module call graph, reusing the concguard
//	               walker's call summaries) or that appear in a small
//	               trusted table of allocation-free stdlib routines.
//	               Error-terminated guard blocks are exempt (see below).
//	//ptm:inline   the compiler must report "can inline" for the
//	               function; failures quote the inliner's cost verdict.
//	//ptm:nobce    the SSA prove pass must eliminate every bounds check
//	               in the function (no IsInBounds / IsSliceInBounds).
//
// Rather than re-deriving escape analysis, inlining heuristics, and the
// prove pass, perfguard drives the real compiler and parses its own
// diagnostics: each annotated package is recompiled once with
//
//	go tool compile -p <path> -importcfg <cfg> -m=2 -d=ssa/check_bce
//
// and stderr is parsed with file:line:col anchoring. Invoking the
// compiler directly (with an importcfg assembled from the loader's
// export data) sidesteps the build cache, which would otherwise swallow
// the -m output on any cache hit. One compilation per package serves all
// three rules through a process-level cache.
//
// Cold regions: a block whose final statement returns a (syntactically
// non-nil) error, or panics, is an error-termination path — the paper's
// hot loops never take it. Allocations, untrusted calls, appends, and
// bounds checks inside such blocks are exempt, which keeps the idiomatic
// `if err != nil { return fmt.Errorf(...) }` guards legal inside
// annotated functions without weakening the contract on the success
// path.
//
// Known blind spots, covered by the AllocsPerRun tests that shadow every
// //ptm:noalloc annotation: escape analysis does not report append's
// backing-array growth or `go` statement allocation (both are therefore
// detected syntactically here and banned from hot regions), and calls
// through function values or interface methods have no static callee
// (interface-method call sites are conservatively reported, function
// values are invisible).
package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// perfguard annotation kinds.
const (
	factNoalloc = "ptm:noalloc"
	factInline  = "ptm:inline"
	factNoBCE   = "ptm:nobce"
)

// Noalloc returns the heap-escape contract analyzer.
func Noalloc() *Analyzer {
	return &Analyzer{
		Name:       "noalloc",
		Doc:        "//ptm:noalloc functions must not allocate, nor call anything that does (compiler escape analysis + call-graph fixpoint)",
		RunProgram: runNoalloc,
	}
}

// Inline returns the inlinability contract analyzer.
func Inline() *Analyzer {
	return &Analyzer{
		Name:       "inline",
		Doc:        "//ptm:inline functions must be reported \"can inline\" by the compiler",
		RunProgram: runInline,
	}
}

// BCE returns the bounds-check-elimination contract analyzer.
func BCE() *Analyzer {
	return &Analyzer{
		Name:       "bce",
		Doc:        "//ptm:nobce functions must compile without IsInBounds/IsSliceInBounds checks",
		RunProgram: runBCE,
	}
}

// --- compile driver ---------------------------------------------------

// pgEscape is one heap-allocation site reported by escape analysis,
// with the -m=2 flow trace explaining why the value escapes.
type pgEscape struct {
	pos  token.Position
	what string // e.g. "make([]uint64, words) escapes to heap"
	flow []Related
}

// pgInline is the inliner's verdict for one function declaration.
type pgInline struct {
	can  bool
	text string // full compiler message, cost number included
}

// pgBound is one bounds check the prove pass could not eliminate.
type pgBound struct {
	pos  token.Position
	kind string // "IsInBounds" or "IsSliceInBounds"
}

// pgDiag is the parsed compiler output for one package.
type pgDiag struct {
	escapes []*pgEscape
	inlines map[string]pgInline // keyed by "file:line" of the declaration
	bounds  []pgBound
	err     error
}

// pgCompileCache memoizes compilations by package directory, so the
// three rules (and repeated runs inside one process) each pay for at
// most one `go tool compile` per package.
var pgCompileCache sync.Map // string (package dir) -> *pgDiag

func pgCompile(pkg *Package) *pgDiag {
	if v, ok := pgCompileCache.Load(pkg.Dir); ok {
		return v.(*pgDiag)
	}
	d := pgCompileUncached(pkg)
	pgCompileCache.Store(pkg.Dir, d)
	return d
}

func pgCompileUncached(pkg *Package) *pgDiag {
	out := &pgDiag{inlines: make(map[string]pgInline)}
	if len(pkg.fileNames) == 0 {
		return out
	}
	if pkg.exports == nil {
		out.err = fmt.Errorf("perfguard: no export data for %s (package not loaded through Loader)", pkg.Path)
		return out
	}
	paths := make([]string, 0, len(pkg.exports))
	for p := range pkg.exports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var cfg bytes.Buffer
	for _, p := range paths {
		cfg.WriteString("packagefile " + p + "=" + pkg.exports[p] + "\n")
	}
	tmp, err := os.MkdirTemp("", "perfguard-*")
	if err != nil {
		out.err = fmt.Errorf("perfguard: %w", err)
		return out
	}
	defer os.RemoveAll(tmp)
	cfgPath := filepath.Join(tmp, "importcfg")
	if err := os.WriteFile(cfgPath, cfg.Bytes(), 0o600); err != nil {
		out.err = fmt.Errorf("perfguard: %w", err)
		return out
	}
	args := []string{"tool", "compile", "-p", pkg.Path, "-importcfg", cfgPath,
		"-m=2", "-d=ssa/check_bce", "-o", filepath.Join(tmp, "perfguard.o")}
	args = append(args, pkg.fileNames...)
	cmd := exec.Command("go", args...)
	cmd.Dir = pkg.Dir
	// -m diagnostics arrive on stdout, compile errors on stderr; fold
	// both into one stream so parse and error reporting see everything.
	var stderr bytes.Buffer
	cmd.Stdout = &stderr
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		tail := stderr.String()
		if len(tail) > 512 {
			tail = tail[:512] + "..."
		}
		out.err = fmt.Errorf("perfguard: go tool compile %s: %v\n%s", pkg.Path, err, tail)
		return out
	}
	pgParse(out, stderr.String())
	return out
}

// pgLineRe anchors every diagnostic line the compiler emits.
var pgLineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// pgFlowAtRe extracts the position a flow hop refers to.
var pgFlowAtRe = regexp.MustCompile(` at (.+\.go):(\d+):(\d+)$`)

// pgParse turns `-m=2 -d=ssa/check_bce` stderr into structured
// diagnostics. The grammar, pinned by TestPerfguardParse:
//
//   - "X escapes to heap:" (trailing colon) opens an escape group whose
//     indented "flow:" / "from ... at file:line:col" lines form the
//     witness trace; the group closes at the first non-indented line.
//   - "X escapes to heap" (no colon) and "moved to heap: X" are
//     allocation-site summaries; they deduplicate against an open group
//     at the same position.
//   - "can inline F ..." / "cannot inline F: ..." are inliner verdicts,
//     keyed by the declaration's file:line.
//   - "Found IsInBounds" / "Found IsSliceInBounds" are prove-pass
//     residues.
//   - everything else ("inlining call to", "leaking param", "does not
//     escape", ...) is noise.
func pgParse(out *pgDiag, stderr string) {
	byPos := make(map[string]*pgEscape)
	var cur *pgEscape
	sc := bufio.NewScanner(strings.NewReader(stderr))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := pgLineRe.FindStringSubmatch(sc.Text())
		if m == nil {
			cur = nil
			continue
		}
		pos := token.Position{Filename: m[1], Line: pgAtoi(m[2]), Column: pgAtoi(m[3])}
		msg := m[4]
		if strings.HasPrefix(msg, " ") { // indented: escape-flow trace line
			if cur != nil {
				hop := Related{Pos: cur.pos, Note: strings.TrimSpace(msg)}
				if fm := pgFlowAtRe.FindStringSubmatch(msg); fm != nil {
					hop.Pos = token.Position{Filename: fm[1], Line: pgAtoi(fm[2]), Column: pgAtoi(fm[3])}
				}
				cur.flow = append(cur.flow, hop)
			}
			continue
		}
		cur = nil
		switch {
		case msg == "Found IsInBounds":
			out.bounds = append(out.bounds, pgBound{pos: pos, kind: "IsInBounds"})
		case msg == "Found IsSliceInBounds":
			out.bounds = append(out.bounds, pgBound{pos: pos, kind: "IsSliceInBounds"})
		case strings.HasPrefix(msg, "can inline "):
			out.inlines[pgLineKey(pos)] = pgInline{can: true, text: msg}
		case strings.HasPrefix(msg, "cannot inline "):
			out.inlines[pgLineKey(pos)] = pgInline{can: false, text: msg}
		case strings.HasSuffix(msg, " escapes to heap:"):
			e := pgEscapeAt(out, byPos, pos)
			e.what = strings.TrimSuffix(msg, ":")
			cur = e
		case strings.HasSuffix(msg, " escapes to heap"),
			strings.HasPrefix(msg, "moved to heap: "):
			e := pgEscapeAt(out, byPos, pos)
			if e.what == "" {
				e.what = msg
			}
		}
	}
}

func pgEscapeAt(out *pgDiag, byPos map[string]*pgEscape, pos token.Position) *pgEscape {
	key := pgPosKey(pos)
	if e, ok := byPos[key]; ok {
		return e
	}
	e := &pgEscape{pos: pos}
	out.escapes = append(out.escapes, e)
	byPos[key] = e
	return e
}

func pgAtoi(s string) int { n, _ := strconv.Atoi(s); return n }

func pgPosKey(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

func pgLineKey(p token.Position) string {
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}

// --- function index, annotations, cold regions ------------------------

// pgRange is a half-open-by-position span of source (inclusive on both
// ends at (line, column) granularity).
type pgRange struct{ start, end token.Position }

func (r pgRange) contains(p token.Position) bool {
	return p.Filename == r.start.Filename &&
		pgCmp(r.start, p) <= 0 && pgCmp(p, r.end) <= 0
}

// pgCmp orders two positions in the same file by line then column.
func pgCmp(a, b token.Position) int {
	switch {
	case a.Line != b.Line:
		if a.Line < b.Line {
			return -1
		}
		return 1
	case a.Column != b.Column:
		if a.Column < b.Column {
			return -1
		}
		return 1
	}
	return 0
}

// pgFunc is one declared function with its perfguard-relevant geometry.
type pgFunc struct {
	key  string
	pkg  *Package
	decl *ast.FuncDecl
	span pgRange
	cold []pgRange
	// facts holds the perfguard annotations present on the doc comment.
	facts map[string]bool
}

// hot reports whether a diagnostic at p lands in fn's body outside every
// cold (error-terminated) region.
func (fn *pgFunc) hot(p token.Position) bool {
	if !fn.span.contains(p) {
		return false
	}
	for _, r := range fn.cold {
		if r.contains(p) {
			return false
		}
	}
	return true
}

// pgIndex maps positions and keys back to declared functions across the
// whole loaded program (dependency packages included, so the noalloc
// fixpoint can descend into them).
type pgIndex struct {
	fset   *token.FileSet
	funcs  map[string]*pgFunc
	byFile map[string][]*pgFunc
}

func pgBuildIndex(pass *ProgramPass) *pgIndex {
	idx := &pgIndex{
		fset:   pass.Fset,
		funcs:  make(map[string]*pgFunc),
		byFile: make(map[string][]*pgFunc),
	}
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				d, ok := decl.(*ast.FuncDecl)
				if !ok || d.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
				if fn == nil {
					continue
				}
				f := &pgFunc{
					key:   funcKey(fn),
					pkg:   pkg,
					decl:  d,
					span:  pgRange{pass.Fset.Position(d.Pos()), pass.Fset.Position(d.End())},
					cold:  pgColdRegions(pkg, d, pass.Fset),
					facts: map[string]bool{},
				}
				for _, kind := range []string{factNoalloc, factInline, factNoBCE} {
					if _, ok := ptmFact(kind, d.Doc); ok {
						f.facts[kind] = true
					}
				}
				idx.funcs[f.key] = f
				idx.byFile[f.span.start.Filename] = append(idx.byFile[f.span.start.Filename], f)
			}
		}
	}
	return idx
}

// at returns the function whose body contains p, if any. Function
// literals attribute to their enclosing declaration, which is exactly
// the noalloc contract's view of them.
func (idx *pgIndex) at(p token.Position) *pgFunc {
	for _, f := range idx.byFile[p.Filename] {
		if f.span.contains(p) {
			return f
		}
	}
	return nil
}

// pgColdRegions collects the error-termination spans of a function: every
// block or switch/select case whose final statement is a `return` whose
// last result is a non-nil expression of error type, or a panic call.
func pgColdRegions(pkg *Package, decl *ast.FuncDecl, fset *token.FileSet) []pgRange {
	var cold []pgRange
	add := func(stmts []ast.Stmt, from, to token.Pos) {
		if len(stmts) == 0 {
			return
		}
		if pgTerminatesInError(pkg.Info, stmts[len(stmts)-1]) {
			cold = append(cold, pgRange{fset.Position(from), fset.Position(to)})
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.BlockStmt:
			add(b.List, b.Lbrace, b.Rbrace)
		case *ast.CaseClause:
			add(b.Body, b.Colon, b.End())
		case *ast.CommClause:
			add(b.Body, b.Colon, b.End())
		}
		return true
	})
	return cold
}

// pgTerminatesInError reports whether s ends the enclosing path on an
// error: `return ..., e` with e a non-nil expression whose static type
// is (or implements) error, or a panic call.
func pgTerminatesInError(info *types.Info, s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		if len(st.Results) == 0 {
			return false
		}
		last := st.Results[len(st.Results)-1]
		if id, ok := unparen(last).(*ast.Ident); ok && id.Name == "nil" {
			return false
		}
		t := info.TypeOf(last)
		return t != nil && types.Implements(t, pgErrorIface)
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isFunc := info.Uses[id].(*types.Func); !isFunc {
					return true // the builtin, not a shadowing declaration
				}
			}
		}
	}
	return false
}

var pgErrorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// --- the trusted allocation-free table --------------------------------

// pgTrustedPrefixes lists stdlib call targets (by funcKey prefix) that
// are allocation-free on their fast paths and appear in the annotated
// hot paths. Keep this list short and defensible: every entry is backed
// by an AllocsPerRun test somewhere in the tree.
var pgTrustedPrefixes = []string{
	"math.",                         // pure float kernels (lpc estimators)
	"math/bits.",                    // popcounts and shifts
	"sync/atomic.",                  // the lock-free ingest plane
	"encoding/binary.littleEndian.", // PutUint32 on fixed buffers
	"encoding/binary.bigEndian.",
	"sync.Mutex.", // uncontended fast path is a CAS
	"sync.RWMutex.",
}

// pgTrustedCallees lists exact trusted targets.
var pgTrustedCallees = map[string]bool{
	"os.File.Write":       true, // write(2); the []byte does not leak
	"os.File.Sync":        true,
	"bufio.Writer.Write":  true, // copies into its own buffer; flush target is a net.Conn on our paths
	"hash/crc32.Checksum": true,
	"hash/crc32.Update":   true,
	"errors.Is":           true,
}

func pgTrusted(key string) bool {
	if pgTrustedCallees[key] {
		return true
	}
	for _, p := range pgTrustedPrefixes {
		if strings.HasPrefix(key, p) {
			return true
		}
	}
	return false
}

// --- noalloc ----------------------------------------------------------

// pgCause records why a function is not allocation-free. kind is one of
// "escape" (compiler-reported heap allocation), "append" (backing-array
// growth invisible to escape analysis), "go" (goroutine launch),
// "external" (call target outside the module and the trusted table), or
// "call" (call to a module function that itself is not allocation-free).
type pgCause struct {
	kind   string
	pos    token.Position
	what   string
	callee string
	flow   []Related
}

func runNoalloc(pass *ProgramPass) {
	idx := pgBuildIndex(pass)

	// Roots: //ptm:noalloc functions in target (non-dep) packages.
	var roots []*pgFunc
	for _, f := range idx.funcs {
		if f.facts[factNoalloc] && !f.pkg.Dep {
			roots = append(roots, f)
		}
	}
	if len(roots) == 0 {
		return
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].key < roots[j].key })

	// Call summaries from the concguard walker; literal bodies (key$litN)
	// merge into their root declaration.
	m := buildConcguard(pass)
	callsOf := func(key string) []cgCallSite {
		var out []cgCallSite
		if f := m.funcs[key]; f != nil {
			out = append(out, f.calls...)
		}
		prefix := key + "$"
		for k, f := range m.funcs {
			if strings.HasPrefix(k, prefix) {
				out = append(out, f.calls...)
			}
		}
		return out
	}

	// Reachable closure over module functions, following static calls
	// from hot regions only.
	scope := make(map[string]*pgFunc)
	var work []*pgFunc
	push := func(f *pgFunc) {
		if _, ok := scope[f.key]; !ok {
			scope[f.key] = f
			work = append(work, f)
		}
	}
	for _, r := range roots {
		push(r)
	}
	for len(work) > 0 {
		f := work[0]
		work = work[1:]
		for _, c := range callsOf(f.key) {
			if !f.hot(pass.Fset.Position(c.pos)) || pgTrusted(c.callee) {
				continue
			}
			if callee := idx.funcs[c.callee]; callee != nil {
				push(callee)
			}
		}
	}

	// Compile every package owning an in-scope function; report failures
	// once per package.
	diags := make(map[string]*pgDiag)
	for _, f := range scope {
		if _, ok := diags[f.pkg.Dir]; ok {
			continue
		}
		d := pgCompile(f.pkg)
		diags[f.pkg.Dir] = d
		if d.err != nil && !f.pkg.Dep {
			pass.Report(f.pkg.Files[0].Package, nil, "%v", d.err)
		}
	}

	// Terminal causes: compiler-reported escapes plus the syntactic
	// append/go blind-spot scan, hot regions only.
	causes := make(map[string]*pgCause)
	assign := func(key string, c *pgCause) {
		if old := causes[key]; old == nil || pgCmp(c.pos, old.pos) < 0 {
			causes[key] = c
		}
	}
	for _, f := range scope {
		d := diags[f.pkg.Dir]
		if d == nil || d.err != nil {
			continue
		}
		for _, e := range d.escapes {
			if f.hot(e.pos) {
				assign(f.key, &pgCause{kind: "escape", pos: e.pos, what: e.what, flow: e.flow})
			}
		}
		ast.Inspect(f.decl.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.CallExpr:
				if id, ok := unparen(st.Fun).(*ast.Ident); ok && id.Name == "append" {
					if _, isFunc := f.pkg.Info.Uses[id].(*types.Func); !isFunc {
						if p := pass.Fset.Position(st.Pos()); f.hot(p) {
							assign(f.key, &pgCause{kind: "append", pos: p})
						}
					}
				}
			case *ast.GoStmt:
				if p := pass.Fset.Position(st.Pos()); f.hot(p) {
					assign(f.key, &pgCause{kind: "go", pos: p})
				}
			}
			return true
		})
		for _, c := range callsOf(f.key) {
			p := pass.Fset.Position(c.pos)
			if !f.hot(p) || pgTrusted(c.callee) {
				continue
			}
			if idx.funcs[c.callee] == nil {
				assign(f.key, &pgCause{kind: "external", pos: p, callee: c.callee})
			}
		}
	}

	// Greatest fixpoint: knock out every function with a hot call to a
	// knocked-out module callee, propagating until stable.
	keys := make([]string, 0, len(scope))
	for k := range scope {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			if causes[k] != nil {
				continue
			}
			f := scope[k]
			for _, c := range callsOf(k) {
				p := pass.Fset.Position(c.pos)
				if !f.hot(p) || pgTrusted(c.callee) {
					continue
				}
				if callee, ok := scope[c.callee]; ok && causes[callee.key] != nil {
					assign(k, &pgCause{kind: "call", pos: p, callee: c.callee})
					changed = true
				}
			}
		}
	}

	for _, r := range roots {
		c := causes[r.key]
		if c == nil {
			continue
		}
		name := shortKey(r.key)
		related := []Related{{
			Pos:  pass.Fset.Position(r.decl.Name.Pos()),
			Note: fmt.Sprintf("%s is declared //%s here", name, factNoalloc),
		}}
		var msg string
		switch c.kind {
		case "escape":
			msg = fmt.Sprintf("%s is marked //%s but allocates: %s", name, factNoalloc, c.what)
			related = append(related, c.flow...)
		case "append":
			msg = fmt.Sprintf("%s is marked //%s but calls append, which may grow its backing array", name, factNoalloc)
		case "go":
			msg = fmt.Sprintf("%s is marked //%s but starts a goroutine", name, factNoalloc)
		case "external":
			msg = fmt.Sprintf("%s is marked //%s but calls %s, which perfguard cannot prove allocation-free", name, factNoalloc, shortKey(c.callee))
		case "call":
			msg = fmt.Sprintf("%s is marked //%s but calls %s, which is not allocation-free", name, factNoalloc, shortKey(c.callee))
			related = append(related, pgCauseChain(causes, c)...)
		}
		pass.Report(pgTokenPos(pass, r, c.pos), related, "%s", msg)
	}
}

// pgCauseChain renders the call chain from a "call" cause down to its
// terminal allocation as witness hops.
func pgCauseChain(causes map[string]*pgCause, c *pgCause) []Related {
	var hops []Related
	for depth := 0; c != nil && c.kind == "call" && depth < 32; depth++ {
		next := causes[c.callee]
		if next == nil {
			break
		}
		name := shortKey(c.callee)
		switch next.kind {
		case "escape":
			hops = append(hops, Related{Pos: next.pos, Note: fmt.Sprintf("%s allocates: %s", name, next.what)})
			hops = append(hops, next.flow...)
		case "append":
			hops = append(hops, Related{Pos: next.pos, Note: name + " calls append here"})
		case "go":
			hops = append(hops, Related{Pos: next.pos, Note: name + " starts a goroutine here"})
		case "external":
			hops = append(hops, Related{Pos: next.pos, Note: fmt.Sprintf("%s calls %s, which perfguard cannot prove allocation-free", name, shortKey(next.callee))})
		case "call":
			hops = append(hops, Related{Pos: next.pos, Note: fmt.Sprintf("%s calls %s here", name, shortKey(next.callee))})
		}
		c = next
	}
	return hops
}

// pgTokenPos maps a parsed compiler position back into the fileset so
// Report can anchor the finding. The AST walk below finds the smallest
// node starting at the diagnostic's (line, column); when nothing matches
// (positions the compiler synthesized), the function declaration anchors
// the finding instead.
func pgTokenPos(pass *ProgramPass, f *pgFunc, p token.Position) token.Pos {
	var best token.Pos
	ast.Inspect(f.decl, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		np := pass.Fset.Position(n.Pos())
		if np.Filename == p.Filename && np.Line == p.Line && np.Column == p.Column {
			best = n.Pos()
		}
		return true
	})
	if best != token.NoPos {
		return best
	}
	// Fall back to any node on the right line.
	ast.Inspect(f.decl, func(n ast.Node) bool {
		if n == nil || best != token.NoPos {
			return false
		}
		if np := pass.Fset.Position(n.Pos()); np.Filename == p.Filename && np.Line == p.Line {
			best = n.Pos()
		}
		return true
	})
	if best != token.NoPos {
		return best
	}
	return f.decl.Name.Pos()
}

// --- inline -----------------------------------------------------------

func runInline(pass *ProgramPass) {
	idx := pgBuildIndex(pass)
	pgPerPackage(pass, idx, factInline, func(f *pgFunc, d *pgDiag) {
		declPos := pass.Fset.Position(f.decl.Name.Pos())
		verdict, ok := d.inlines[pgLineKey(declPos)]
		name := shortKey(f.key)
		switch {
		case !ok:
			pass.Report(f.decl.Name.Pos(), nil,
				"%s is marked //%s but the compiler reported no inlining decision for it", name, factInline)
		case !verdict.can:
			pass.Report(f.decl.Name.Pos(), nil,
				"%s is marked //%s but the compiler reports: %s", name, factInline, verdict.text)
		}
	})
}

// --- bce --------------------------------------------------------------

func runBCE(pass *ProgramPass) {
	idx := pgBuildIndex(pass)
	pgPerPackage(pass, idx, factNoBCE, func(f *pgFunc, d *pgDiag) {
		declHop := Related{
			Pos:  pass.Fset.Position(f.decl.Name.Pos()),
			Note: fmt.Sprintf("%s is declared //%s here", shortKey(f.key), factNoBCE),
		}
		for _, b := range d.bounds {
			if f.hot(b.pos) {
				pass.Report(pgTokenPos(pass, f, b.pos), []Related{declHop},
					"%s is marked //%s but the compiler found a bounds check (%s)",
					shortKey(f.key), factNoBCE, b.kind)
			}
		}
	})
}

// pgPerPackage compiles each non-dep package containing fact-annotated
// functions and applies check to every annotated function, reporting
// compile failures once per package.
func pgPerPackage(pass *ProgramPass, idx *pgIndex, fact string, check func(*pgFunc, *pgDiag)) {
	byPkg := make(map[*Package][]*pgFunc)
	for _, f := range idx.funcs {
		if f.facts[fact] && !f.pkg.Dep {
			byPkg[f.pkg] = append(byPkg[f.pkg], f)
		}
	}
	pkgs := make([]*Package, 0, len(byPkg))
	for p := range byPkg {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	for _, pkg := range pkgs {
		d := pgCompile(pkg)
		if d.err != nil {
			pass.Report(pkg.Files[0].Package, nil, "%v", d.err)
			continue
		}
		fns := byPkg[pkg]
		sort.Slice(fns, func(i, j int) bool { return fns[i].key < fns[j].key })
		for _, f := range fns {
			check(f, d)
		}
	}
}
