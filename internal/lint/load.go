package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked module package.
type Package struct {
	// Path is the import path (e.g. "ptm/internal/bitmap").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Name is the package name from the package clause.
	Name string
	// Files are the parsed non-test sources, in go list order.
	Files []*ast.File
	// Types and Info carry go/types results for the package.
	Types *types.Package
	Info  *types.Info
	// Dep marks a package loaded only because a target package depends on
	// it: its sources are parsed and type-checked so that whole-program
	// analyzers see its declarations, function bodies, and //ptm:* facts
	// (cross-package fact export), but per-package rules and the
	// suppression audit do not run on it.
	Dep bool

	fileNames []string
	allow     map[string]map[int][]string
	// exports maps import paths to compiled export-data files for every
	// package in this load (shared across the loaded set). The perfguard
	// rules use it to assemble an -importcfg for direct `go tool compile`
	// invocations, which is the only way to re-run the compiler's own
	// escape/inline/bce diagnostics without the build cache eliding them.
	exports map[string]string
}

// Loader loads and type-checks packages of the enclosing module. The
// toolchain does the heavy lifting: `go list -deps -export -json` compiles
// every dependency and hands back export data, so type-checking a package
// never recurses into dependency sources.
type Loader struct {
	// Dir is the directory go list runs in (any directory inside the
	// module). Empty means the current directory.
	Dir string

	fset *token.FileSet
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load lists, parses, and type-checks the packages matched by patterns
// (plus, invisibly, their dependencies as export data). Test files are
// excluded by construction: `go list`'s GoFiles field omits them.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if l.fset == nil {
		l.fset = token.NewFileSet()
	}
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(l.fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range listed {
		if p.Standard || p.Name == "" {
			continue
		}
		// Dependencies from outside the module (there are none today; the
		// repo is stdlib-only) would arrive as export data only.
		if p.DepOnly && p.Module == nil {
			continue
		}
		pkg, err := l.check(p, imp)
		if err != nil {
			return nil, err
		}
		pkg.Dep = p.DepOnly
		pkg.exports = exports
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Fset returns the file set shared by every loaded package.
func (l *Loader) Fset() *token.FileSet {
	if l.fset == nil {
		l.fset = token.NewFileSet()
	}
	return l.fset
}

func (l *Loader) goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		listed = append(listed, p)
	}
	return listed, nil
}

func (l *Loader) check(p listedPackage, imp types.Importer) (*Package, error) {
	pkg := &Package{Path: p.ImportPath, Dir: p.Dir, Name: p.Name}
	for _, name := range p.GoFiles {
		path := filepath.Join(p.Dir, name)
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", path, err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.fileNames = append(pkg.fileNames, path)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, l.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, err)
	}
	pkg.Types = tpkg
	pkg.allow = scanDirectives(l.fset, pkg.Files)
	return pkg, nil
}
