package lint

// lockorder infers the module-wide may-hold-while-acquiring graph and
// checks it against //ptm:lockorder declarations and for cycles.
//
// Every direct Lock/RLock call site contributes edges held→acquired for
// each lock in the must-held set at that point; every call site whose
// callee transitively acquires locks contributes held→acquired edges
// through the call chain (goroutine launches excluded — the spawned
// goroutine does not run under the spawner's locks). Declared
// //ptm:lockorder a<b edges are seeded into the same graph. A finding is
// either an inversion of a declared edge or a cycle among inferred
// edges, reported with the full acquisition-path witness: where the
// outer lock is held, each call hop, and the inner acquisition.

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// LockOrder returns the lockorder analyzer.
func LockOrder() *Analyzer {
	return &Analyzer{
		Name:       "lockorder",
		Doc:        "lock acquisition order matches //ptm:lockorder declarations and the inferred hold-while-acquiring graph is acyclic",
		RunProgram: runLockOrder,
	}
}

// acqChain is the witness for "f may acquire lock": the call hops from
// f's body down to the acquisition, in flow order.
type acqChain []Related

// cgEdge is one inferred hold-while-acquiring edge with its first
// discovered witness.
type cgEdge struct {
	from, to lockKey
	anchor   token.Pos // position of the acquisition or call creating the edge
	hops     []Related
}

func runLockOrder(pass *ProgramPass) {
	m := buildConcguard(pass)
	m.buildCallers()

	// transAcq[f][lock] is the witness chain by which f may (transitively)
	// acquire lock. First witness wins; functions are visited in source
	// order for determinism.
	funcs := m.sortedFuncs()
	trans := make(map[string]map[lockKey]acqChain, len(funcs))
	for _, f := range funcs {
		t := make(map[lockKey]acqChain)
		for _, a := range f.acquires {
			if _, ok := t[a.lock]; !ok {
				t[a.lock] = acqChain{m.rel(a.pos, fmt.Sprintf("%s acquires %s", funcLabel(f.key), shortLock(a.lock)))}
			}
		}
		trans[f.key] = t
	}
	for changed := true; changed; {
		changed = false
		for _, f := range funcs {
			t := trans[f.key]
			for _, c := range f.calls {
				if c.goCall {
					continue
				}
				ct, ok := trans[c.callee]
				if !ok {
					continue
				}
				for _, lk := range sortedLockKeys(ct) {
					if _, have := t[lk]; have {
						continue
					}
					hop := m.rel(c.pos, fmt.Sprintf("%s calls %s", funcLabel(f.key), funcLabel(c.callee)))
					t[lk] = append(acqChain{hop}, ct[lk]...)
					changed = true
				}
			}
		}
	}

	// Inferred edges: direct acquisitions and transitive acquisitions
	// through calls, each while a lock is must-held.
	edges := make(map[[2]lockKey]*cgEdge)
	addEdge := func(from, to lockKey, anchor token.Pos, hops []Related) {
		k := [2]lockKey{from, to}
		if _, ok := edges[k]; ok {
			return
		}
		edges[k] = &cgEdge{from: from, to: to, anchor: anchor, hops: hops}
	}
	for _, f := range funcs {
		for _, a := range f.acquires {
			for _, h := range a.held.keysSorted() {
				addEdge(h, a.lock, a.pos, []Related{
					m.rel(a.pos, fmt.Sprintf("%s acquires %s while holding %s", funcLabel(f.key), shortLock(a.lock), shortLock(h))),
				})
			}
		}
		for _, c := range f.calls {
			if c.goCall || len(c.mustHeld) == 0 {
				continue
			}
			ct, ok := trans[c.callee]
			if !ok {
				continue
			}
			for _, lk := range sortedLockKeys(ct) {
				for _, h := range c.mustHeld.keysSorted() {
					hops := append([]Related{
						m.rel(c.pos, fmt.Sprintf("%s calls %s while holding %s", funcLabel(f.key), funcLabel(c.callee), shortLock(h))),
					}, ct[lk]...)
					addEdge(h, lk, c.pos, hops)
				}
			}
		}
	}

	// Declared-order violations: an inferred edge b→a against a declared
	// a<b means a was acquired while b was held.
	type pair = [2]lockKey
	violated := make(map[pair]bool)
	decls := append([]declaredEdge(nil), m.declared...)
	sort.Slice(decls, func(i, j int) bool {
		if decls[i].before != decls[j].before {
			return decls[i].before < decls[j].before
		}
		return decls[i].after < decls[j].after
	})
	declaredSet := make(map[pair]declaredEdge, len(decls))
	for _, d := range decls {
		declaredSet[pair{d.before, d.after}] = d
	}
	for _, d := range decls {
		inv, ok := edges[pair{d.after, d.before}]
		if !ok || !m.nonDepPos(inv.anchor) {
			continue
		}
		violated[pair{d.after, d.before}] = true
		related := append([]Related{
			m.rel(d.pos, fmt.Sprintf("order %s < %s declared here", shortLock(d.before), shortLock(d.after))),
		}, inv.hops...)
		pass.Report(inv.anchor, related,
			"%s acquired while %s is held, inverting declared order //ptm:lockorder %s<%s",
			shortLock(d.before), shortLock(d.after), shortLock(d.before), shortLock(d.after))
	}

	// Cycle detection over inferred ∪ declared edges. Declared edges are
	// real constraints even when no code path exercises them yet; a
	// declared a<b plus an inferred b→a is already reported above and is
	// skipped here.
	adj := make(map[lockKey][]lockKey)
	addAdj := func(from, to lockKey) {
		for _, t := range adj[from] {
			if t == to {
				return
			}
		}
		adj[from] = append(adj[from], to)
	}
	for k := range edges {
		addAdj(k[0], k[1])
	}
	for _, d := range decls {
		addAdj(d.before, d.after)
	}
	for from := range adj {
		sort.Slice(adj[from], func(i, j int) bool { return adj[from][i] < adj[from][j] })
	}
	nodes := make([]lockKey, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	reported := make(map[string]bool)
	var stack []lockKey
	onStack := make(map[lockKey]int)
	var visit func(n lockKey)
	visited := make(map[lockKey]bool)
	visit = func(n lockKey) {
		onStack[n] = len(stack)
		stack = append(stack, n)
		for _, next := range adj[n] {
			if i, ok := onStack[next]; ok {
				m.reportCycle(pass, stack[i:], edges, declaredSet, violated, reported)
				continue
			}
			if !visited[next] {
				visited[next] = true
				visit(next)
			}
		}
		stack = stack[:len(stack)-1]
		delete(onStack, n)
	}
	for _, n := range nodes {
		if !visited[n] {
			visited[n] = true
			visit(n)
		}
	}
}

// reportCycle reports one lock-order cycle unless every edge of it was
// already reported as a declared-order violation or no edge is anchored
// in a linted package.
func (m *cgModel) reportCycle(pass *ProgramPass, cycle []lockKey, edges map[[2]lockKey]*cgEdge, declared map[[2]lockKey]declaredEdge, violated map[[2]lockKey]bool, reported map[string]bool) {
	names := make([]string, len(cycle))
	for i, n := range cycle {
		names[i] = string(n)
	}
	canon := append([]string(nil), names...)
	sort.Strings(canon)
	key := strings.Join(canon, "|")
	if reported[key] {
		return
	}
	reported[key] = true

	// Gather the witness: for each consecutive pair, the inferred edge's
	// hops (or the declared annotation when the edge is declaration-only).
	var (
		related    []Related
		anchor     token.Pos
		allKnown   = true
		inverted   bool
		shortNames []string
	)
	for i := range cycle {
		from, to := cycle[i], cycle[(i+1)%len(cycle)]
		shortNames = append(shortNames, shortLock(from))
		if violated[[2]lockKey{from, to}] {
			inverted = true
		}
		if e, ok := edges[[2]lockKey{from, to}]; ok {
			if anchor == token.NoPos && m.nonDepPos(e.anchor) {
				anchor = e.anchor
			}
			related = append(related, e.hops...)
		} else if d, ok := declared[[2]lockKey{from, to}]; ok {
			related = append(related, m.rel(d.pos, fmt.Sprintf("order %s < %s declared here", shortLock(from), shortLock(to))))
		} else {
			allKnown = false
		}
	}
	// Each inversion edge in the cycle was reported against its
	// declaration already; re-reporting the same witness as a cycle would
	// double-count one bug.
	if inverted || !allKnown || anchor == token.NoPos {
		return
	}
	if len(cycle) == 1 {
		pass.Report(anchor, related, "%s acquired while already held (recursive acquisition)", shortLock(cycle[0]))
		return
	}
	pass.Report(anchor, related, "lock-order cycle: %s → %s", strings.Join(shortNames, " → "), shortNames[0])
}

// rel converts a token.Pos hop into a Related entry.
func (m *cgModel) rel(pos token.Pos, note string) Related {
	return Related{Pos: m.fset.Position(pos), Note: note}
}

// sortedLockKeys returns the map's keys in stable order.
func sortedLockKeys(t map[lockKey]acqChain) []lockKey {
	out := make([]lockKey, 0, len(t))
	for k := range t {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
