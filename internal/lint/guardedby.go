package lint

// guardedby enforces //ptm:guardedby mu field annotations
// interprocedurally: every read or write of an annotated field must
// happen while the guard is held — locally on some path, or on every
// path into the enclosing function (the guard is held at each call
// site, transitively), or inside an //ptm:exclusive region where the
// data is not yet (or no longer) shared. Writes through an RWMutex
// guard require the write lock; reads accept either.

import (
	"fmt"
)

// GuardedBy returns the guardedby analyzer.
func GuardedBy() *Analyzer {
	return &Analyzer{
		Name:       "guardedby",
		Doc:        "//ptm:guardedby fields are only accessed with the guard held (interprocedural)",
		RunProgram: runGuardedBy,
	}
}

type guardNeed struct {
	guard lockKey
	need  lockMode
}

func runGuardedBy(pass *ProgramPass) {
	m := buildConcguard(pass)
	if len(m.guards) == 0 {
		return
	}
	m.buildCallers()
	excl := m.exclusiveCovered()
	covCache := make(map[guardNeed]map[string]bool)
	covFor := func(g lockKey, need lockMode) map[string]bool {
		k := guardNeed{g, need}
		if c, ok := covCache[k]; ok {
			return c
		}
		c := m.guardCovered(g, need, excl)
		covCache[k] = c
		return c
	}

	for _, f := range m.sortedFuncs() {
		for _, a := range f.accesses {
			fact, ok := m.guards[a.field]
			if !ok || a.atomicArg {
				continue
			}
			need := modeR
			if (a.write || a.addrOf) && fact.guardRW {
				need = modeW
			}
			if a.mayHeld.holds(fact.guard, need) || excl[f.key] {
				continue
			}
			cov := covFor(fact.guard, need)
			if cov[f.key] {
				continue
			}
			if !m.nonDepPos(a.pos) {
				continue
			}
			verb := "read"
			switch {
			case a.addrOf:
				verb = "address-taken"
			case a.write:
				verb = "written"
			}
			related := []Related{m.rel(fact.pos, fmt.Sprintf("%s declared //ptm:guardedby %s here", fact.name, shortLock(fact.guard)))}
			if ref, ok := m.uncoveredSite(f.key, fact.guard, need, cov, excl); ok {
				related = append(related, m.rel(ref.site.pos,
					fmt.Sprintf("%s reached from %s without %s held", funcLabel(f.key), funcLabel(ref.caller), shortLock(fact.guard))))
			}
			what := shortLock(fact.guard)
			if fact.guardRW && need == modeW {
				what += " (write lock)"
			}
			pass.Report(a.pos, related, "%s.%s %s without holding %s", shortKey(fact.owner), fact.name, verb, what)
		}
	}
}
