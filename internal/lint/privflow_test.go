package lint

import (
	"strings"
	"testing"
)

// TestPrivflowTreeClean is the PR's load-bearing regression test: the
// shipped tree must contain no un-sanitized flow of private vehicle state
// into any sink, and no stale suppression directive. Every future change
// that prints, sends, or encodes vehicle state has to get past this.
func TestPrivflowTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader := &Loader{Dir: "../.."}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := RunAudited(loader.Fset(), pkgs, All())
	for _, d := range diags {
		t.Errorf("shipped tree is not lint-clean: %s", d)
	}
}

// TestPrivflowWitnessPath pins down the shape of a finding's witness: an
// interprocedural leak must carry the full source→sink hop list, in flow
// order, with a position on every interior hop.
func TestPrivflowWitnessPath(t *testing.T) {
	loader := &Loader{}
	pkgs, err := loader.Load("./testdata/src/privflow/interproc")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := Run(loader.Fset(), pkgs, []*Analyzer{Privflow()})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if len(d.Related) < 4 {
		t.Fatalf("witness path has %d hops, want at least 4 (source, two summaries, sink): %v", len(d.Related), d.Related)
	}
	first, last := d.Related[0], d.Related[len(d.Related)-1]
	if !strings.HasPrefix(first.Note, "source: ") {
		t.Errorf("first hop %q does not name the source", first.Note)
	}
	if !strings.Contains(first.Pos.Filename, "secret") {
		t.Errorf("source hop anchored at %s, want the dependency package", first.Pos.Filename)
	}
	if !strings.HasPrefix(last.Note, "argument to sink ") {
		t.Errorf("last hop %q does not name the sink", last.Note)
	}
	var sawRelay bool
	for _, r := range d.Related[1 : len(d.Related)-1] {
		if r.Pos.Line == 0 || r.Pos.Filename == "" {
			t.Errorf("interior hop %q has no position", r.Note)
		}
		if strings.Contains(r.Note, "relay") {
			sawRelay = true
		}
	}
	if !sawRelay {
		t.Errorf("witness path never passes through the relay summary: %v", d.Related)
	}
}

// TestPrivflowSanitizerBlocksTaint re-runs the sanitized fixture directly
// (independent of the golden harness) to assert the negative: the Index
// reduction really is treated as a declassifier across call summaries.
func TestPrivflowSanitizerBlocksTaint(t *testing.T) {
	loader := &Loader{}
	pkgs, err := loader.Load("./testdata/src/privflow/sanitized")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := Run(loader.Fset(), pkgs, []*Analyzer{Privflow()})
	for _, d := range diags {
		t.Errorf("sanitized flow reported as a leak: %s", d)
	}
}
