package lint

import (
	"go/ast"
)

// LockedFields returns the analyzer enforcing the repo's mutex-grouping
// convention: in a struct with a sync.Mutex or sync.RWMutex field, the
// fields declared immediately below the mutex (up to the first blank
// line or the end of the struct) form the guarded group, and methods of
// the struct must acquire the lock before touching them.
//
// The check is a dominance heuristic, not an escape analysis: a method is
// clean when a <recv>.<mu>.Lock() / RLock() call appears textually before
// the first guarded-field access in the method body. On an RWMutex an
// RLock only licenses reads: guarded-field writes after an RLock (and
// before any full Lock) are still reported. Methods that lock, unlock,
// and then access are out of scope, as are accesses through aliases of
// the receiver. The point is to catch the common refactoring accident — a
// new method or early-return path that forgets the lock entirely —
// cheaply and with near-zero false positives.
//
// Structs that carry //ptm:guardedby annotations opt out of this
// positional heuristic entirely: their contracts are explicit and the
// interprocedural guardedby rule enforces them (including callers that
// hold the lock for the callee, which this rule cannot see). lockedfields
// remains the fallback for unannotated code.
func LockedFields() *Analyzer {
	return &Analyzer{
		Name: "lockedfields",
		Doc:  "mutex-guarded struct fields must not be accessed before the lock is taken",
		Run:  runLockedFields,
	}
}

// guardedStruct describes one struct with a mutex-guarded field group.
type guardedStruct struct {
	typeName string
	muName   string
	rw       bool // the mutex is a sync.RWMutex
	guarded  map[string]bool
}

func runLockedFields(pass *Pass) {
	guarded := make(map[string]*guardedStruct)
	for _, f := range pass.Pkg.Files {
		collectGuardedStructs(pass, f, guarded)
	}
	if len(guarded) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) != 1 {
				continue
			}
			recv := fd.Recv.List[0]
			gs, ok := guarded[receiverTypeName(recv.Type)]
			if !ok || len(recv.Names) == 0 {
				continue
			}
			checkMethodLocking(pass, recv.Names[0].Name, gs, fd)
		}
	}
}

// collectGuardedStructs finds structs with a sync mutex field and records
// the contiguous field group that follows it.
func collectGuardedStructs(pass *Pass, f *ast.File, out map[string]*guardedStruct) {
	syncName, ok := importName(f, "sync")
	if !ok {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		// //ptm:guardedby annotations hand the struct to the
		// interprocedural guardedby rule; the positional heuristic would
		// only double-report (or contradict) the explicit contract.
		if hasGuardedByAnnotation(ts, st) {
			return true
		}
		muIdx, muName, rw := -1, "", false
		for i, field := range st.Fields.List {
			ok, isRW := isSyncMutex(field.Type, syncName)
			if !ok {
				continue
			}
			muIdx, rw = i, isRW
			if len(field.Names) > 0 {
				muName = field.Names[0].Name
			} else {
				// Embedded sync.Mutex: methods are promoted, so the
				// receiver locks via the type name.
				muName = "Mutex"
			}
			break
		}
		if muIdx < 0 {
			return true
		}
		gs := &guardedStruct{typeName: ts.Name.Name, muName: muName, rw: rw, guarded: make(map[string]bool)}
		prevLine := pass.Fset.Position(st.Fields.List[muIdx].End()).Line
		for _, field := range st.Fields.List[muIdx+1:] {
			line := pass.Fset.Position(field.Pos()).Line
			if line > prevLine+1 {
				break // blank line ends the guarded group
			}
			prevLine = pass.Fset.Position(field.End()).Line
			for _, name := range field.Names {
				gs.guarded[name.Name] = true
			}
		}
		if len(gs.guarded) > 0 {
			out[gs.typeName] = gs
		}
		return true
	})
}

// hasGuardedByAnnotation reports whether the struct declaration or any of
// its fields carries a //ptm:guardedby comment.
func hasGuardedByAnnotation(ts *ast.TypeSpec, st *ast.StructType) bool {
	groups := []*ast.CommentGroup{ts.Doc, ts.Comment}
	for _, field := range st.Fields.List {
		groups = append(groups, field.Doc, field.Comment)
	}
	for _, g := range groups {
		if _, ok := ptmFact(factGuardedBy, g); ok {
			return true
		}
	}
	return false
}

// checkMethodLocking walks the method body in source order and reports
// guarded-field accesses that precede the first lock acquisition. After
// an RLock on an RWMutex it keeps walking, reporting guarded-field writes
// until a full Lock appears: an RLock is shared with other readers and
// does not license mutation.
func checkMethodLocking(pass *Pass, recvName string, gs *guardedStruct, fd *ast.FuncDecl) {
	const (
		unlocked = iota
		readLocked
		writeLocked
	)
	mode := unlocked
	guardedSel := func(e ast.Expr) *ast.SelectorExpr {
		sel, ok := unparen(e).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		x, ok := unparen(sel.X).(*ast.Ident)
		if !ok || x.Name != recvName || !gs.guarded[sel.Sel.Name] {
			return nil
		}
		return sel
	}
	reportRLockWrite := func(sel *ast.SelectorExpr) {
		pass.Reportf(sel.Pos(),
			"%s.%s is written in %s under %s.%s.RLock() only; writers must hold %s.%s.Lock()",
			recvName, sel.Sel.Name, fd.Name.Name, recvName, gs.muName, recvName, gs.muName)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if mode == writeLocked {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := lockCallName(n, recvName, gs.muName); ok {
				if name == "RLock" && gs.rw {
					mode = readLocked
				} else {
					mode = writeLocked
				}
				return false
			}
		case *ast.AssignStmt:
			if mode != readLocked {
				return true
			}
			for _, lhs := range n.Lhs {
				if sel := guardedSel(lhs); sel != nil {
					reportRLockWrite(sel)
				}
			}
		case *ast.IncDecStmt:
			if mode != readLocked {
				return true
			}
			if sel := guardedSel(n.X); sel != nil {
				reportRLockWrite(sel)
			}
		case *ast.SelectorExpr:
			if mode == readLocked {
				// Reads are what the RLock is for; writes were handled at
				// the statement level above.
				return true
			}
			if sel := guardedSel(n); sel != nil {
				pass.Reportf(sel.Pos(),
					"%s.%s is guarded by %s.%s but accessed before %s.%s.Lock() in %s",
					recvName, sel.Sel.Name, gs.typeName, gs.muName, recvName, gs.muName, fd.Name.Name)
			}
			return false // don't descend into n.Sel
		}
		return true
	})
}

// lockCallName matches recv.mu.Lock() and recv.mu.RLock(), returning
// which of the two it is.
func lockCallName(call *ast.CallExpr, recvName, muName string) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return "", false
	}
	mu, ok := unparen(sel.X).(*ast.SelectorExpr)
	if !ok || mu.Sel.Name != muName {
		return "", false
	}
	recv, ok := unparen(mu.X).(*ast.Ident)
	if !ok || recv.Name != recvName {
		return "", false
	}
	return sel.Sel.Name, true
}

// isSyncMutex reports whether a field type is sync.Mutex or sync.RWMutex
// (second result), possibly behind a pointer.
func isSyncMutex(t ast.Expr, syncName string) (ok, rw bool) {
	if star, isStar := t.(*ast.StarExpr); isStar {
		t = star.X
	}
	sel, isSel := t.(*ast.SelectorExpr)
	if !isSel {
		return false, false
	}
	pkg, isIdent := sel.X.(*ast.Ident)
	if !isIdent || pkg.Name != syncName {
		return false, false
	}
	switch sel.Sel.Name {
	case "Mutex":
		return true, false
	case "RWMutex":
		return true, true
	}
	return false, false
}

// receiverTypeName extracts the base type name of a method receiver.
func receiverTypeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return receiverTypeName(t.X)
	case *ast.IndexListExpr:
		return receiverTypeName(t.X)
	}
	return ""
}

// importName returns the local name under which a file imports path.
func importName(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		if imp.Path.Value != `"`+path+`"` {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name, true
		}
		// Default name: last path element.
		name := path
		for i := len(path) - 1; i >= 0; i-- {
			if path[i] == '/' {
				name = path[i+1:]
				break
			}
		}
		return name, true
	}
	return "", false
}

// unparen strips parentheses from an expression.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
