package lint

import (
	"go/ast"
)

// LockedFields returns the analyzer enforcing the repo's mutex-grouping
// convention: in a struct with a sync.Mutex or sync.RWMutex field, the
// fields declared immediately below the mutex (up to the first blank
// line or the end of the struct) form the guarded group, and methods of
// the struct must acquire the lock before touching them.
//
// The check is a dominance heuristic, not an escape analysis: a method is
// clean when a <recv>.<mu>.Lock() / RLock() call appears textually before
// the first guarded-field access in the method body. Methods that lock,
// unlock, and then access are out of scope, as are accesses through
// aliases of the receiver. The point is to catch the common refactoring
// accident — a new method or early-return path that forgets the lock
// entirely — cheaply and with near-zero false positives.
func LockedFields() *Analyzer {
	return &Analyzer{
		Name: "lockedfields",
		Doc:  "mutex-guarded struct fields must not be accessed before the lock is taken",
		Run:  runLockedFields,
	}
}

// guardedStruct describes one struct with a mutex-guarded field group.
type guardedStruct struct {
	typeName string
	muName   string
	guarded  map[string]bool
}

func runLockedFields(pass *Pass) {
	guarded := make(map[string]*guardedStruct)
	for _, f := range pass.Pkg.Files {
		collectGuardedStructs(pass, f, guarded)
	}
	if len(guarded) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) != 1 {
				continue
			}
			recv := fd.Recv.List[0]
			gs, ok := guarded[receiverTypeName(recv.Type)]
			if !ok || len(recv.Names) == 0 {
				continue
			}
			checkMethodLocking(pass, recv.Names[0].Name, gs, fd)
		}
	}
}

// collectGuardedStructs finds structs with a sync mutex field and records
// the contiguous field group that follows it.
func collectGuardedStructs(pass *Pass, f *ast.File, out map[string]*guardedStruct) {
	syncName, ok := importName(f, "sync")
	if !ok {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		muIdx, muName := -1, ""
		for i, field := range st.Fields.List {
			if !isSyncMutex(field.Type, syncName) {
				continue
			}
			muIdx = i
			if len(field.Names) > 0 {
				muName = field.Names[0].Name
			} else {
				// Embedded sync.Mutex: methods are promoted, so the
				// receiver locks via the type name.
				muName = "Mutex"
			}
			break
		}
		if muIdx < 0 {
			return true
		}
		gs := &guardedStruct{typeName: ts.Name.Name, muName: muName, guarded: make(map[string]bool)}
		prevLine := pass.Fset.Position(st.Fields.List[muIdx].End()).Line
		for _, field := range st.Fields.List[muIdx+1:] {
			line := pass.Fset.Position(field.Pos()).Line
			if line > prevLine+1 {
				break // blank line ends the guarded group
			}
			prevLine = pass.Fset.Position(field.End()).Line
			for _, name := range field.Names {
				gs.guarded[name.Name] = true
			}
		}
		if len(gs.guarded) > 0 {
			out[gs.typeName] = gs
		}
		return true
	})
}

// checkMethodLocking walks the method body in source order and reports
// guarded-field accesses that precede the first lock acquisition.
func checkMethodLocking(pass *Pass, recvName string, gs *guardedStruct, fd *ast.FuncDecl) {
	locked := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if locked {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isLockCall(n, recvName, gs.muName) {
				locked = true
				return false
			}
		case *ast.SelectorExpr:
			x, ok := unparen(n.X).(*ast.Ident)
			if !ok || x.Name != recvName {
				return true
			}
			if gs.guarded[n.Sel.Name] {
				pass.Reportf(n.Pos(),
					"%s.%s is guarded by %s.%s but accessed before %s.%s.Lock() in %s",
					recvName, n.Sel.Name, gs.typeName, gs.muName, recvName, gs.muName, fd.Name.Name)
			}
			return false // don't descend into n.Sel
		}
		return true
	})
}

// isLockCall matches recv.mu.Lock() and recv.mu.RLock().
func isLockCall(call *ast.CallExpr, recvName, muName string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return false
	}
	mu, ok := unparen(sel.X).(*ast.SelectorExpr)
	if !ok || mu.Sel.Name != muName {
		return false
	}
	recv, ok := unparen(mu.X).(*ast.Ident)
	return ok && recv.Name == recvName
}

// isSyncMutex reports whether a field type is sync.Mutex or sync.RWMutex,
// possibly behind a pointer.
func isSyncMutex(t ast.Expr, syncName string) bool {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != syncName {
		return false
	}
	return sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex"
}

// receiverTypeName extracts the base type name of a method receiver.
func receiverTypeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return receiverTypeName(t.X)
	case *ast.IndexListExpr:
		return receiverTypeName(t.X)
	}
	return ""
}

// importName returns the local name under which a file imports path.
func importName(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		if imp.Path.Value != `"`+path+`"` {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name, true
		}
		// Default name: last path element.
		name := path
		for i := len(path) - 1; i >= 0; i-- {
			if path[i] == '/' {
				name = path[i+1:]
				break
			}
		}
		return name, true
	}
	return "", false
}

// unparen strips parentheses from an expression.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
