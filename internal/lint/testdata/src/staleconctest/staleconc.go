// Package staleconctest exercises the suppression audit against the
// whole-program guardedby rule: one directive suppresses a live finding,
// one suppresses nothing and must be reported as stale.
package staleconctest

import "sync"

type box struct {
	mu sync.Mutex
	v  int //ptm:guardedby mu
}

// Peek documents a deliberately racy monitoring read; the directive is
// live because guardedby would otherwise report the access.
func (b *box) Peek() int {
	//ptmlint:allow guardedby monitoring read; staleness is acceptable
	return b.v
}

// Get is properly locked, so the directive below suppresses nothing.
func (b *box) Get() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	//ptmlint:allow guardedby leftover from before the lock was added // want `//ptmlint:allow guardedby no longer suppresses any finding`
	return b.v
}
