// Package secret is the dependency half of the interproc fixture. The
// target package imports it, so the loader pulls it in as a Dep package
// and privflow picks up its //ptm:source fact and the body of Reveal —
// the cross-package fact export under test.
package secret

// MasterKey is the private state whose taint must survive two function
// summaries and a package boundary.
//
//ptm:source interproc master key
var MasterKey uint64 = 0xc0ffee

// Reveal returns the raw key: the first hop of the leak.
func Reveal() uint64 { return MasterKey }
