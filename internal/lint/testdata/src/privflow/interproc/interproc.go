// Package interproc exercises interprocedural propagation: the source
// lives in a dependency package (secret.MasterKey), flows out of
// secret.Reveal's result, through the local relay summary, and into a
// formatting sink — two function summaries and a package boundary between
// source and sink, none of them visible to a per-function analysis.
package interproc

import (
	"fmt"

	"ptm/internal/lint/testdata/src/privflow/interproc/secret"
)

// relay is an identity wrapper: taint must flow parameter → result
// through its summary for the leak below to be seen.
func relay(x uint64) uint64 { return x }

func leak() {
	fmt.Println(relay(secret.Reveal())) // want `private state \(interproc master key\) flows un-sanitized into formatting sink fmt\.Println`
}

var cover = leak
