// Package wal pins the durability plane's privacy contract: raw vehicle
// identity must never reach the write-ahead log. A WAL entry outlives
// the in-memory store — it sits on disk across restarts and lands in
// checkpoints — so an identity leak here is persistent, not transient.
// Only the Index-sanitized representative bits may be framed and
// appended, mirroring how internal/central logs record blobs.
package wal

import (
	"ptm/internal/vhash"
)

// rawID is a vehicle's private identity, as the paper's threat model
// defines it.
//
//ptm:source raw vehicle id
var rawID uint64 = 0xdeadbeef

// Log models internal/wal.Log.
type Log struct{}

// Append models the durable append; the payload is written to disk
// verbatim.
//
//ptm:sink wal append
func (l *Log) Append(payload []byte) error { return nil }

// frame encodes a value the way the ingest path frames record blobs;
// taint must ride through the summary (parameter → composite literal →
// result).
func frame(v uint64) []byte {
	return []byte{
		byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
		byte(v >> 32), byte(v >> 40), byte(v >> 48), byte(v >> 56),
	}
}

// leakIdentity logs the raw identity: the exact bug the fixture exists
// to catch.
func leakIdentity(l *Log) {
	_ = l.Append(frame(rawID)) // want `private state \(raw vehicle id\) flows un-sanitized into wal append sink`
}

// logSanitized logs the Index-reduced representative value — the
// declassified form every real WAL entry carries — and must not fire.
// It frames inline rather than through frame above: the engine's
// summaries are flow-insensitive, so a helper shared with the leaking
// path would smear taint onto this clean call site too.
func logSanitized(l *Log, id *vhash.Identity, loc vhash.LocationID) {
	h := id.Index(loc, 1024)
	_ = l.Append([]byte{byte(h), byte(h >> 8), byte(h >> 16), byte(h >> 24)})
}

var _ = []any{leakIdentity, logSanitized}
