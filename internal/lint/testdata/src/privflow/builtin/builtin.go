// Package builtin exercises the built-in fact tables with no //ptm:*
// annotation in this file: vhash.Identity is a source by type and by its
// private fields, fmt.Println is a sink, and Identity.Hash — unlike
// Identity.Index — is NOT a sanitizer, so hashes that skip the final
// modulo reduction still count as leaks.
package builtin

import (
	"fmt"

	"ptm/internal/vhash"
)

// leakIdentity prints the identity value itself.
func leakIdentity(id *vhash.Identity) {
	fmt.Println(id) // want `private state .* flows un-sanitized into formatting sink fmt\.Println`
}

// leakHash prints the full-width hash, which — unlike Index — is private:
// representative hashes reveal linkable vehicle state.
func leakHash(id *vhash.Identity, loc vhash.LocationID) {
	fmt.Println(id.Hash(loc)) // want `private state .* flows un-sanitized into formatting sink fmt\.Println`
}

var _ = []any{leakIdentity, leakHash}
