// Package atomic covers the lock-free ingest path: the concurrent
// Bitmap.AtomicSet carries the same //ptm:sink annotation as the plain
// Set, so raw private state reaching it must flag exactly like the
// sequential path, and the vhash.Index declassifier must clear it. This
// fixture pins that the annotation survived the atomic rewrite — a sink
// dropped in a refactor would silently blind the whole analysis.
package atomic

import (
	"ptm/internal/bitmap"
	"ptm/internal/vhash"
)

// rawID models a vehicle identifier that skipped the hash reduction.
//
//ptm:source raw vehicle id
var rawID uint64 = 42

// leakAtomic writes the raw identifier into the shared bitmap: same
// finding as the sequential Set path.
func leakAtomic(b *bitmap.Bitmap) {
	b.AtomicSet(rawID) // want `private state \(raw vehicle id\) flows un-sanitized into bitmap write sink`
}

// leakSequential is the pre-existing path, kept here so the two arms of
// the differential (atomic vs sequential ingest) stay pinned together.
func leakSequential(b *bitmap.Bitmap) {
	b.Set(rawID) // want `private state \(raw vehicle id\) flows un-sanitized into bitmap write sink`
}

// okSanitized passes through the Eq. (3) reduction — the declassifier —
// before the atomic write; privflow must stay silent.
func okSanitized(b *bitmap.Bitmap, id *vhash.Identity, loc vhash.LocationID) {
	b.AtomicSet(id.Index(loc, b.Size()))
}

var cover = []any{leakAtomic, leakSequential, okSanitized}
