// Package sanitized is the negative fixture: private vhash state reaches
// formatting and transmission sinks, but every path passes through the
// Identity.Index reduction — the paper's declassifier — so privflow must
// stay completely silent. Every line here is a false-positive assertion.
package sanitized

import (
	"fmt"

	"ptm/internal/lint/testdata/src/privflow/sanitized/wire"
	"ptm/internal/vhash"
)

// report prints the sanitized index; the raw identity never escapes.
func report(id *vhash.Identity, loc vhash.LocationID) {
	h := id.Index(loc, 1024)
	fmt.Println(h)
}

// upload relays the sanitized index through a helper into an annotated
// transmission sink: sanitization must survive interprocedural hops too.
func upload(id *vhash.Identity, loc vhash.LocationID) {
	wire.Transmit(relay(id.Index(loc, 1024)))
}

func relay(h uint64) uint64 { return h }

var _ = []any{report, upload}
