// Package wire supplies an annotated transmission sink for the sanitized
// fixture, declared in a dependency package to prove sink facts export
// across package boundaries just like source facts.
package wire

// Transmit models an over-the-air send of an already-sanitized value.
//
//ptm:sink wire transmission
func Transmit(v uint64) { _ = v }
