// Package direct exercises privflow's annotated facts at their simplest:
// a package-level //ptm:source variable reaching an in-package //ptm:sink
// function and a built-in standard-library formatting sink, one hop each.
package direct

import "fmt"

// secretKey is this fixture's private state.
//
//ptm:source test secret
var secretKey uint64 = 0x5eed

// transmit models an over-the-air send.
//
//ptm:sink test transmission
func transmit(v uint64) { _ = v }

func leakDirect() {
	transmit(secretKey) // want `private state \(test secret\) flows un-sanitized into test transmission sink`
}

func leakFmt() {
	fmt.Println(secretKey) // want `private state \(test secret\) flows un-sanitized into formatting sink fmt\.Println`
}

// cover keeps the leaking functions referenced.
var cover = []func(){leakDirect, leakFmt}
