// Package closure exercises taint through function literals: a closure
// body that captures a source and sinks it directly, and a closure whose
// tainted result escapes through the function value into a caller's sink.
package closure

import "fmt"

// hidden is the captured private state.
//
//ptm:source closure secret
var hidden uint64 = 7

// leakCapture returns a closure that sinks the captured source when run.
func leakCapture() func() {
	return func() {
		fmt.Println(hidden) // want `private state \(closure secret\) flows un-sanitized into formatting sink fmt\.Println`
	}
}

// leakReturned sinks the result of a closure held in a variable: the
// engine tracks the closure's result taint on its function value, so the
// dynamic call site still sees it.
func leakReturned() {
	get := func() uint64 { return hidden }
	fmt.Println(get()) // want `private state \(closure secret\) flows un-sanitized into formatting sink fmt\.Println`
}

var cover = []func(){func() { leakCapture()() }, leakReturned}
