// Package pow2sizetest is golden-file input for the pow2size rule:
// constant bitmap sizes must be powers of two in [64, 1<<30].
package pow2sizetest

import "ptm/internal/bitmap"

// goodSize shows that named constants are folded before checking.
const goodSize = 1 << 20

// Good sizes: in range, powers of two, or not constant at all.
func Good(runtimeSize int) {
	_, _ = bitmap.New(64)
	_, _ = bitmap.New(1 << 30)
	_ = bitmap.MustNew(goodSize)
	// Run-time sizes are the constructor's job, not the linter's.
	_, _ = bitmap.New(runtimeSize)
	_, _ = bitmap.New(runtimeSize * 2)
}

// Bad sizes: each line must produce exactly the finding it annotates.
func Bad() {
	_, _ = bitmap.New(100)      // want `size 100 is not a power of two`
	_, _ = bitmap.New(32)       // want `size 32 outside \[64, 1<<30\]`
	_, _ = bitmap.New(1 << 31)  // want `outside \[64, 1<<30\]`
	_ = bitmap.MustNew(3 << 20) // want `MustNew size 3145728 is not a power of two`
	_ = bitmap.MustNew((96))    // want `size 96 is not a power of two`
}

// Allowed keeps a deliberate violation behind a directive (it exercises
// the constructor's own validation in a downstream test).
func Allowed() {
	//ptmlint:allow pow2size -- exercising bitmap.New's own validation path
	_, _ = bitmap.New(65)
}
