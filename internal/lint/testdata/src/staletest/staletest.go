// Package staletest is golden-file input for the suppression audit: a
// //ptmlint:allow directive must still suppress a finding of the named
// rule on its line, or the directive itself becomes a stale-directive
// finding. The audit is what keeps the escape hatch honest — suppressions
// outlive the code they excused unless something checks them.
package staletest

import (
	"errors"
	"os"
)

func mayFail() error { return errors.New("boom") }

// live keeps a directive that genuinely suppresses an errdrop finding;
// the audit must stay silent about it.
func live() {
	mayFail() //ptmlint:allow errdrop fixture: deliberate drop
}

// stale carries a directive on a line where errdrop has nothing to say,
// so the directive no longer earns its keep.
func stale() string {
	return os.Getenv("HOME") //ptmlint:allow errdrop nothing drops here // want `//ptmlint:allow errdrop no longer suppresses any finding`
}

// typo names a rule that does not exist at all.
func typo() string {
	return os.Getenv("PATH") //ptmlint:allow nosuchrule misspelled // want `names unknown rule "nosuchrule"`
}

var _ = []any{live, stale, typo}
