// Package goroutinetest is golden-file input for the goroutinehygiene
// rule: no loop-variable capture in goroutine closures, and every launch
// must show a completion linkage (WaitGroup, channel, or context).
package goroutinetest

import (
	"context"
	"sync"
)

func sink(int) {}

func background() {}

// CaptureBad captures the range variable and has no linkage: two findings.
func CaptureBad(items []int) {
	for _, it := range items {
		go func() { // want `goroutine has no visible completion linkage`
			sink(it) // want `goroutine closure captures loop variable it`
		}()
	}
}

// ClassicFor captures a three-clause loop variable; the channel send is a
// linkage, so only the capture is reported.
func ClassicFor(n int) {
	ch := make(chan int)
	for i := 0; i < n; i++ {
		go func() {
			ch <- i // want `goroutine closure captures loop variable i`
		}()
	}
	for j := 0; j < n; j++ {
		<-ch
	}
}

// CaptureGood hoists the loop variable into a parameter and waits.
func CaptureGood(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			sink(v)
		}(it)
	}
	wg.Wait()
}

// Shadowed re-declares the loop variable's name inside the closure; the
// inner object is not the loop variable, so no capture is reported.
func Shadowed(items []int) {
	done := make(chan struct{})
	for _, it := range items {
		sink(it) // outer use, so the fixture compiles
		go func() {
			it := 0
			sink(it)
			done <- struct{}{}
		}()
		<-done
	}
}

// WithContext shows a receive on ctx.Done as the linkage.
func WithContext(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Naked is fire-and-forget with nothing to wait on.
func Naked() {
	go background() // want `goroutine has no visible completion linkage`
}

// Allowed documents an intentionally unsupervised goroutine.
func Allowed() {
	//ptmlint:allow goroutinehygiene -- fixture lifecycle is bounded by the test process
	go background()
}
