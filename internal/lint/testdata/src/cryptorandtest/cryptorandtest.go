// Package cryptorandtest is golden-file input for the cryptorand rule.
// The golden test loads it once with the package marked privacy-critical
// (the flagged import below must be reported, the allowed one must not)
// and once with the default critical list (no findings at all, since this
// package is not on it).
package cryptorandtest

import (
	crand "crypto/rand"
	"math/rand" // want `import of math/rand in privacy-critical package`

	//ptmlint:allow cryptorand -- reproducible stream for the simulation half of this fixture
	mrandv2 "math/rand/v2"
)

// Use every import so the fixture compiles.
var (
	_ = rand.Int63
	_ = mrandv2.Int
)

// Key draws key material the way a privacy-critical package should.
func Key() ([16]byte, error) {
	var k [16]byte
	_, err := crand.Read(k[:])
	return k, err
}
