// Package rcutest is golden-file input for the rcu rule.
package rcutest

import (
	"sync"
	"sync/atomic"
)

type state struct{ n int }

type server struct {
	rotateMu sync.Mutex
	//ptm:rcu rotateMu
	cur atomic.Pointer[state]
}

// Rotate publishes under the rotation lock.
func (s *server) Rotate(next *state) {
	s.rotateMu.Lock()
	defer s.rotateMu.Unlock()
	s.cur.Store(next)
}

// BadStore publishes without the rotation lock.
func (s *server) BadStore(next *state) {
	s.cur.Store(next) // want `Store on RCU field .*cur without holding rotation lock`
}

// GoodRead finishes with the snapshot before blocking.
func (s *server) GoodRead(ch chan int) int {
	st := s.cur.Load()
	n := st.n
	<-ch
	return n
}

// GoodReload re-Loads after blocking, so the later use holds a fresh
// snapshot.
func (s *server) GoodReload(ch chan int) int {
	st := s.cur.Load()
	n := st.n
	<-ch
	st = s.cur.Load()
	return st.n + n
}

// BadRetain keeps using the pre-block snapshot after the channel receive.
func (s *server) BadRetain(ch chan int) int {
	st := s.cur.Load()
	<-ch
	return st.n // want `RCU pointer from .*cur retained across a blocking operation`
}
