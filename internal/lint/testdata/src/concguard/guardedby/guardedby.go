// Package guardedbytest is golden-file input for the guardedby rule.
package guardedbytest

import "sync"

type store struct {
	mu sync.RWMutex
	n  int //ptm:guardedby mu
}

// Good reads under the read lock.
func (s *store) Good() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// GoodWrite holds the write lock across the locked helper.
func (s *store) GoodWrite(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setLocked(v)
}

// setLocked is interprocedurally covered: its only caller holds mu.
func (s *store) setLocked(v int) {
	s.n = v
}

// BadRead touches the guarded field with no lock at all.
func (s *store) BadRead() int {
	return s.n // want `store\.n read without holding .*mu`
}

// BadWrite mutates under the read lock only.
func (s *store) BadWrite(v int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.n = v // want `store\.n written without holding .*mu`
}
