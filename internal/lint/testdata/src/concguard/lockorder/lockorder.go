// Package lockordertest is golden-file input for the lockorder rule: a
// WAL-like log declares //ptm:lockorder syncMu<mu and a helper inverts it
// through a call, and an undeclared pair of locks forms a cycle.
package lockordertest

import "sync"

// Log mimics the WAL's group-commit locking.
//
//ptm:lockorder syncMu<mu
type Log struct {
	syncMu sync.Mutex
	mu     sync.Mutex
	seq    int
}

// Good follows the declared order.
func (l *Log) Good() {
	l.syncMu.Lock()
	l.mu.Lock()
	l.seq++
	l.mu.Unlock()
	l.syncMu.Unlock()
}

// flush acquires syncMu; callers must not hold mu.
func (l *Log) flush() {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
}

// Bad holds mu and calls flush, which acquires syncMu — the inversion is
// only visible through the call chain.
func (l *Log) Bad() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.flush() // want `syncMu acquired while .*mu is held, inverting declared order`
}

// pair has no declared order; the two methods below acquire its locks in
// opposite orders, forming an inferred cycle.
type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) ab() {
	p.a.Lock()
	p.b.Lock() // want `lock-order cycle`
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}
