// Package atomicmixtest is golden-file input for the atomicmix rule.
package atomicmixtest

import "sync/atomic"

type counter struct {
	words []uint64
	hits  atomic.Uint64
}

// newCounter constructs before publication, so plain writes are fine.
//
//ptm:exclusive constructor: the counter is not shared until it returns
func newCounter(n int) *counter {
	c := &counter{words: make([]uint64, n)}
	c.words[0] = 1
	return c
}

// set is the sanctioned atomic access that marks words atomic.
func (c *counter) set(i int) {
	atomic.OrUint64(&c.words[i/64], 1<<(i%64))
	c.hits.Add(1)
}

// badRead mixes a plain read into the atomic discipline.
func (c *counter) badRead(i int) uint64 {
	return c.words[i/64] // want `words is accessed via sync/atomic but read plainly here`
}

// badCopy reads the atomic-typed field as a plain value.
func (c *counter) badCopy() atomic.Uint64 {
	return c.hits // want `atomic-typed field .*hits read as a plain value`
}

// size only touches the slice header, which is exempt.
func (c *counter) size() int {
	return len(c.words)
}
