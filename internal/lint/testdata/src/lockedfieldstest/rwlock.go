// RLock-only writes and //ptm:guardedby opt-out cases for the
// lockedfields rule.
package lockedfieldstest

import "sync"

// BadRLockWrite takes only the read lock and then mutates guarded state.
func (g *gauge) BadRLockWrite(v float64) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.val = v // want `g\.val is written in BadRLockWrite under g\.mu\.RLock\(\) only`
}

// BadRLockInc mutates through an increment statement under RLock.
func (g *gauge) BadRLockInc() {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.val++ // want `g\.val is written in BadRLockInc under g\.mu\.RLock\(\) only`
}

// GoodWriteLock upgrades to the write lock before mutating.
func (g *gauge) GoodWriteLock(v float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.val = v
}

// annotated carries explicit //ptm:guardedby contracts, so the
// positional heuristic defers to the interprocedural guardedby rule and
// must stay silent here even though setLocked writes off-lock (its
// callers hold the lock — exactly what this rule cannot see).
type annotated struct {
	mu sync.Mutex
	n  int //ptm:guardedby mu
}

func (a *annotated) setLocked(v int) {
	a.n = v
}

func (a *annotated) Set(v int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.setLocked(v)
}
