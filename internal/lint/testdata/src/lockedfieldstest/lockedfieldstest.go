// Package lockedfieldstest is golden-file input for the lockedfields
// rule: fields in the contiguous group below a sync mutex are guarded and
// must not be touched before the lock is taken.
package lockedfieldstest

import "sync"

type counter struct {
	name string // before the mutex: unguarded

	mu sync.Mutex
	n  int
	m  int

	label string // after the blank line: outside the guarded group
}

// Good locks before touching guarded state.
func (c *counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n + c.m
}

// Bad forgets the lock entirely.
func (c *counter) Bad() int {
	return c.n // want `c\.n is guarded by counter\.mu but accessed before c\.mu\.Lock\(\) in Bad`
}

// BadLate touches one guarded field on the way to taking the lock.
func (c *counter) BadLate() int {
	if c.m == 0 { // want `c\.m is guarded by counter\.mu`
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Unguarded fields stay accessible without the lock.
func (c *counter) Describe() string {
	return c.name + "/" + c.label
}

// AllowedPeek documents a deliberately racy read.
func (c *counter) AllowedPeek() int {
	//ptmlint:allow lockedfields -- monitoring read; staleness is acceptable here
	return c.n
}

type gauge struct {
	mu  sync.RWMutex
	val float64
}

// Read shows RLock also satisfies the rule.
func (g *gauge) Read() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.val
}

// Bad reads the guarded value without any lock.
func (g *gauge) Bad() float64 {
	return g.val // want `g\.val is guarded by gauge\.mu`
}
