// Package badfacttest exercises the unknown-directive audit: typo'd or
// unknown //ptm: annotations must be findings, with a "did you mean"
// suggestion when a known kind is close.
package badfacttest

import "sync"

// Counter's guard annotation has the wrong case, so concguard would
// silently ignore it.
type Counter struct {
	mu sync.Mutex
	//ptm:guardedBy mu // want `unknown //ptm: directive "ptm:guardedBy" \(did you mean "ptm:guardedby"\?\)`
	n int
}

// Add is annotated with a misspelled noalloc fact.
//
//ptm:noaloc // want `unknown //ptm: directive "ptm:noaloc" \(did you mean "ptm:noalloc"\?\)`
func (c *Counter) Add(d int) {
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

// Snapshot carries a directive kind that matches nothing at all.
//
//ptm:frobnicate the whole struct // want `unknown //ptm: directive "ptm:frobnicate"`
func (c *Counter) Snapshot() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Spelled correctly: the audit stays silent on real facts.
//
//ptm:exclusive fixture-only
func (c *Counter) Raw() int { return c.n }
