// Package errdroptest is golden-file input for the errdrop rule: error
// results must be handled, returned, or explicitly allowed.
package errdroptest

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func two() (int, error) { return 0, errors.New("boom") }

// Bad drops errors in both shapes the rule recognizes.
func Bad(w io.Writer) {
	mayFail()            // want `result of mayFail includes an error that is not checked`
	_ = mayFail()        // want `error from mayFail discarded with blank identifier`
	_, _ = two()         // want `error from two discarded with blank identifier`
	fmt.Fprintln(w, "x") // want `result of fmt\.Fprintln includes an error`
}

// Good covers every shape the rule must NOT flag.
func Good() error {
	if err := mayFail(); err != nil {
		return err
	}
	// Partial use is a deliberate choice, not a drop.
	n, _ := two()
	// Printing to the process's standard streams is exempt.
	fmt.Println("n =", n)
	fmt.Fprintf(os.Stderr, "n = %d\n", n)
	// Writers documented never to fail are exempt.
	var sb strings.Builder
	sb.WriteString("ok")
	// Direct defer of an error-returning call has nowhere to put the
	// error; the rule skips it by design.
	defer mayFail()
	return nil
}

// Allowed shows the narrow, reasoned escape hatch.
func Allowed() {
	//ptmlint:allow errdrop -- fixture exercising the directive itself
	_ = mayFail()
}
