// Package noalloc exercises the perfguard noalloc rule: direct escapes,
// call-graph knockouts, the append/go blind-spot scan, the trusted
// stdlib table, and the cold-region exemption for error guards.
package noalloc

import (
	"fmt"
	"io"
	"math/bits"
)

// Escapes allocates directly: the compiler reports the make site.
//
//ptm:noalloc
func Escapes(n int) []int {
	s := make([]int, n) // want `Escapes is marked //ptm:noalloc but allocates: make\(\[\]int, n\) escapes to heap`
	return s
}

// Boxes allocates by boxing v into the returned interface.
//
//ptm:noalloc
func Boxes(v int) any {
	return v // want `Boxes is marked //ptm:noalloc but allocates: v escapes to heap`
}

// CallsHelper is clean itself but calls a module function that is not:
// the fixpoint knocks it out through the call edge.
//
//ptm:noalloc
func CallsHelper(n int) int {
	return helper(n) // want `CallsHelper is marked //ptm:noalloc but calls .*helper, which is not allocation-free`
}

// helper is kept out of the inliner so the escape stays attributed to
// its own body and the knockout must travel the call edge.
//
//go:noinline
func helper(n int) int {
	s := make([]int, n)
	return len(s)
}

// Appends grows a backing array — invisible to escape analysis, caught
// by the syntactic scan.
//
//ptm:noalloc
func Appends(dst []int, v int) []int {
	return append(dst, v) // want `Appends is marked //ptm:noalloc but calls append`
}

// Launches starts a goroutine, which allocates its stack.
//
//ptm:noalloc
func Launches(ch chan int) {
	go func() { ch <- 1 }() // want `Launches is marked //ptm:noalloc but starts a goroutine`
}

// ViaIface calls through an interface: no static callee, conservatively
// reported.
//
//ptm:noalloc
func ViaIface(w io.Writer, b []byte) {
	w.Write(b) // want `ViaIface is marked //ptm:noalloc but calls io.Writer.Write, which perfguard cannot prove allocation-free`
}

// Counts is allocation-free: a masked loop over trusted math/bits.
//
//ptm:noalloc
func Counts(ws []uint64) int {
	n := 0
	for _, w := range ws {
		n += bits.OnesCount64(w)
	}
	return n
}

// Guarded keeps an fmt.Errorf error path: the guard block terminates in
// a non-nil error return, so the cold-region exemption applies and the
// hot path stays provable.
//
//ptm:noalloc
func Guarded(ws []uint64) (int, error) {
	if len(ws) == 0 {
		return 0, fmt.Errorf("noalloc: empty input of length %d", len(ws))
	}
	return Counts(ws), nil
}
