// Package inline exercises the perfguard inline rule: the compiler must
// report "can inline" for every //ptm:inline function.
package inline

// Small is trivially inlinable; the rule stays silent.
//
//ptm:inline
func Small(x uint64) uint64 { return x<<1 ^ x }

// TooBig exceeds the inliner's cost budget; the finding quotes the
// compiler's cost verdict.
//
//ptm:inline
func TooBig(a []uint64) uint64 { // want `TooBig is marked //ptm:inline but the compiler reports: cannot inline TooBig: .*cost \d+ exceeds budget \d+`
	var s, t, u, v uint64
	for i, w := range a {
		s += w << 1
		t ^= w >> 2
		u += s ^ t
		v ^= u + uint64(i)
		s ^= v<<3 | u>>5
		t += s*17 + u*31
		u ^= t<<7 ^ v>>9
		v += s + t + u
		s += v ^ (t << 11)
		t ^= s + (u >> 13)
		u += v*13 + s*7
		v ^= t + (s >> 15)
	}
	return s ^ t ^ u ^ v
}
