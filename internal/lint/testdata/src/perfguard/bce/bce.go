// Package bce exercises the perfguard bce rule: //ptm:nobce functions
// must compile without residual bounds checks.
package bce

// Checked masks the index but gives the prove pass no length guard, so
// an IsInBounds check survives.
//
//ptm:nobce
func Checked(a []uint64, i int) uint64 {
	return a[i&(len(a)-1)] // want `Checked is marked //ptm:nobce but the compiler found a bounds check \(IsInBounds\)`
}

// Sliced reslices with an unprovable upper bound, leaving an
// IsSliceInBounds check.
//
//ptm:nobce
func Sliced(a []uint64, n int) []uint64 {
	return a[:n] // want `Sliced is marked //ptm:nobce but the compiler found a bounds check \(IsSliceInBounds\)`
}

// Masked adds the emptiness guard that lets prove eliminate the masked
// index: the rule stays silent.
//
//ptm:nobce
func Masked(a []uint64, words int) uint64 {
	if len(a) == 0 {
		return 0
	}
	m := len(a) - 1
	var s uint64
	for i := 0; i < words; i++ {
		s ^= a[i&m]
	}
	return s
}

// Ranged iterates with range, which never emits bounds checks.
//
//ptm:nobce
func Ranged(a []uint64) uint64 {
	var s uint64
	for _, w := range a {
		s += w
	}
	return s
}
