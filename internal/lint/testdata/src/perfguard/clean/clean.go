// Package clean mirrors the annotated hot-path idioms of the real tree
// — masked block loops, fixed-size header encoding, trusted stdlib
// calls, cold error guards — and must satisfy all three perfguard rules
// at once (the golden test runs it under noalloc, inline, and bce with
// wantNone).
package clean

import (
	"encoding/binary"
	"errors"
	"math/bits"
)

// ErrEmpty guards the kernels below.
var ErrEmpty = errors.New("clean: empty operand")

// Word is the modular-index read of the fused kernels.
//
//ptm:noalloc
//ptm:inline
func Word(ws []uint64, i int) uint64 {
	if len(ws) == 0 {
		return 0
	}
	return ws[i&(len(ws)-1)]
}

// JoinOnes is the two-operand masked join loop with its BCE guards.
//
//ptm:noalloc
//ptm:nobce
func JoinOnes(a, b []uint64, words int) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	am, bm := len(a)-1, len(b)-1
	ones := 0
	for i := 0; i < words; i++ {
		ones += bits.OnesCount64(a[i&am] & b[i&bm])
	}
	return ones
}

// PutHeader is the fixed-buffer frame-header encoding.
//
//ptm:noalloc
//ptm:inline
//ptm:nobce
func PutHeader(hdr *[5]byte, t byte, n int) {
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	hdr[4] = t
}

// Checked keeps a cold error guard around a hot trusted-call loop.
//
//ptm:noalloc
//ptm:nobce
func Checked(ws []uint64) (int, error) {
	if len(ws) == 0 {
		return 0, ErrEmpty
	}
	n := 0
	for _, w := range ws {
		n += bits.OnesCount64(w)
	}
	return n, nil
}
