package wal

import (
	"fmt"
	"testing"
)

// The append path is what sits between an RSU's upload and its Ack, so
// its cost per sync policy is the ingest plane's durability overhead.
// Run via `make bench-wal`; the committed baseline is BENCH_pr5.json.

func benchAppend(b *testing.B, policy SyncPolicy, payload int) {
	l, err := Open(b.TempDir(), Options{Sync: policy})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	buf := make([]byte, payload)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(int64(payload))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendSerial(b *testing.B) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		for _, size := range []int{256, 4096} {
			b.Run(fmt.Sprintf("sync=%v/payload=%d", policy, size), func(b *testing.B) {
				benchAppend(b, policy, size)
			})
		}
	}
}

// BenchmarkAppendGroupCommit measures concurrent appenders sharing
// fsyncs: the whole point of group commit is that ns/op here collapses
// versus serial SyncAlways as parallelism rises (-cpu=1,4,8).
func BenchmarkAppendGroupCommit(b *testing.B) {
	l, err := Open(b.TempDir(), Options{Sync: SyncAlways})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	buf := make([]byte, 256)
	b.SetBytes(256)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := l.Append(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	st := l.Stats()
	if st.Appends > 0 {
		b.ReportMetric(float64(st.Syncs)/float64(st.Appends), "syncs/append")
	}
}
