package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// Checkpoint compaction: a checkpoint is a full snapshot of the state
// the log's entries build up (for the central store, its SaveTo
// format). Once a snapshot covering segments 1..N is durably on disk,
// those segments are redundant and dropped. The commit point is an
// atomic rename: either the old checkpoint (plus all segments) or the
// new checkpoint is what recovery sees, never a half-written snapshot.

// Checkpoint seals the active segment, streams the caller's snapshot to
// a temporary file, fsyncs it, atomically renames it into place, fsyncs
// the directory, and then deletes the covered segments and any older
// checkpoint. write must emit a snapshot that covers at least every
// entry in sealed segments; entries appended concurrently may or may
// not be included (recovery tolerates the resulting duplicates).
//
// Checkpoints are serialized: concurrent calls run one at a time.
func (l *Log) Checkpoint(write func(w io.Writer) error) error {
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()

	sealed, err := l.Seal()
	if err != nil {
		return err
	}

	if err := WriteFileAtomic(l.ckptPath(sealed), write); err != nil {
		return fmt.Errorf("wal: writing checkpoint: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}

	// The new checkpoint is durable; everything it covers is garbage.
	if err := l.removeCheckpointsBelow(sealed); err != nil {
		return err
	}
	l.mu.Lock()
	first, active := l.firstSeg, l.segIndex
	l.mu.Unlock()
	if sealed >= first && sealed < active {
		return l.DropThrough(sealed)
	}
	return nil
}

// WriteFileAtomic streams write's output to path+".tmp", fsyncs it, and
// atomically renames it into place: a reader (or a recovery scan) sees
// either the previous file or the complete new one, never a torn write.
// It is the commit primitive of checkpoint compaction, reused by the
// out-of-core store's segment freezer (internal/store) — the tiering
// freeze point inherits exactly the checkpoint's crash-safety argument.
// Callers that need the rename itself durable must also SyncDir the
// parent directory.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating temp file: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	err = write(bw)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: closing temp file: %w", cerr)
	}
	if err != nil {
		//ptmlint:allow errdrop -- best-effort cleanup of a temp file already being abandoned on error
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: committing %s: %w", filepath.Base(path), err)
	}
	return nil
}

// SyncDir fsyncs a directory so renames and creates within it are
// durable — the second half of the WriteFileAtomic commit protocol.
func SyncDir(dir string) error { return syncDir(dir) }

// LatestCheckpoint opens the newest checkpoint for reading and returns
// it with the index of the newest segment it covers. The caller closes
// the reader. Returns ErrNoCheckpoint when the log has none.
func (l *Log) LatestCheckpoint() (io.ReadCloser, uint64, error) {
	_, ckpts, err := l.scanDir()
	if err != nil {
		return nil, 0, err
	}
	if len(ckpts) == 0 {
		return nil, 0, ErrNoCheckpoint
	}
	idx := ckpts[len(ckpts)-1]
	f, err := os.Open(l.ckptPath(idx))
	if err != nil {
		return nil, 0, fmt.Errorf("wal: opening checkpoint %d: %w", idx, err)
	}
	return f, idx, nil
}

// removeCheckpointsBelow deletes every checkpoint covering less than
// keep.
func (l *Log) removeCheckpointsBelow(keep uint64) error {
	_, ckpts, err := l.scanDir()
	if err != nil {
		return err
	}
	for _, idx := range ckpts {
		if idx >= keep {
			continue
		}
		if err := os.Remove(l.ckptPath(idx)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("wal: removing stale checkpoint %d: %w", idx, err)
		}
	}
	return nil
}

// Recover rebuilds state from disk: it loads the newest checkpoint (if
// one exists) via load, then replays every entry in segments newer than
// the checkpoint's coverage via apply, oldest first. Because a
// checkpoint may include entries that were appended while it was being
// written, apply must treat duplicates as success. Recovery also
// finishes an interrupted compaction: segments the checkpoint covers
// are dropped rather than replayed.
//
// Call Recover after Open and before the first Append.
func (l *Log) Recover(load func(r io.Reader) error, apply func(payload []byte) error) error {
	covered := uint64(0)
	r, idx, err := l.LatestCheckpoint()
	switch {
	case errors.Is(err, ErrNoCheckpoint):
		// Cold start: replay everything.
	case err != nil:
		return err
	default:
		lerr := load(r)
		if cerr := r.Close(); lerr == nil && cerr != nil {
			lerr = cerr
		}
		if lerr != nil {
			return fmt.Errorf("wal: loading checkpoint %d: %w", idx, lerr)
		}
		covered = idx
	}

	l.mu.Lock()
	first, active := l.firstSeg, l.segIndex
	l.mu.Unlock()

	// Finish a compaction the crash interrupted between checkpoint
	// commit and segment deletion.
	if covered >= first && covered < active {
		if err := l.DropThrough(covered); err != nil {
			return err
		}
		first = covered + 1
	}
	start := first
	if covered+1 > start {
		start = covered + 1
	}
	return l.replayRange(start, active, apply)
}

// Replay calls fn for every entry currently in the log, oldest first.
// It reads the segment files directly; call it only while no Append is
// in flight (the spool drainer seals first for exactly this reason).
func (l *Log) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	first, active := l.firstSeg, l.segIndex
	l.mu.Unlock()
	return l.replayRange(first, active, fn)
}

// ReplayThrough calls fn for every entry in segments with index <= seg,
// oldest first. Entries appended after the corresponding Seal live in
// newer segments and are not visited, so a drainer can read a stable
// prefix while appends continue.
func (l *Log) ReplayThrough(seg uint64, fn func(payload []byte) error) error {
	l.mu.Lock()
	first := l.firstSeg
	l.mu.Unlock()
	return l.replayRange(first, seg, fn)
}

// ReplaySegments calls fn for every entry in segments first..last
// inclusive, oldest first. It is the replication shipper's incremental
// read: after Seal returns sealed, ReplaySegments(watermark+1, sealed,
// fn) visits exactly the entries the follower has not yet seen. Like
// ReplayThrough, segments dropped by a concurrent checkpoint are
// silently skipped — a shipper must compare first against
// Segments()'s first return afterwards and fall back to a full resync
// if the range's low end no longer exists.
func (l *Log) ReplaySegments(first, last uint64, fn func(payload []byte) error) error {
	return l.replayRange(first, last, fn)
}

// replayRange scans segments first..last inclusive. Segments were
// validated (and the tail repaired) by Open, so any error here is real
// corruption or a broken fn.
func (l *Log) replayRange(first, last uint64, fn func(payload []byte) error) error {
	for idx := first; idx <= last; idx++ {
		f, err := os.Open(l.segPath(idx))
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue // dropped concurrently by a checkpoint
			}
			return fmt.Errorf("wal: opening segment %d for replay: %w", idx, err)
		}
		_, err = scanEntries(f, idx, fn)
		closeQuiet(f)
		if err != nil {
			if errors.Is(err, errTornTail) && idx == last {
				// The active segment can have an in-flight append
				// behind the last good boundary; the entries before
				// it were all delivered.
				return nil
			}
			return fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(l.segPath(idx)), err)
		}
	}
	return nil
}
