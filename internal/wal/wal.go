// Package wal is the durability plane of the measurement system: a
// segmented, append-only, checksummed log that makes record ingest
// survive power loss. The central server logs every uploaded record
// before acknowledging it (so a transport Ack is a durability promise,
// Section II-A's "collects the traffic records" made crash-safe), and an
// RSU uses the same log as a store-and-forward spool when the backhaul
// to the central server is down.
//
// # On-disk layout
//
// A log is a directory of numbered segment files plus at most one
// checkpoint:
//
//	000000000000000001.wal     segment 1 (oldest surviving)
//	000000000000000002.wal     segment 2 (active tail)
//	checkpoint-000000000000000001.ckpt
//
// Each segment starts with a 16-byte header (magic "PTMW", version,
// segment index) followed by length-prefixed, CRC32C-framed entries:
//
//	length  uint32 LE   payload length
//	crc     uint32 LE   CRC32C (Castagnoli) of the payload
//	payload length bytes
//
// The checkpoint file name carries the index of the newest segment it
// wholly covers; its contents are opaque to this package (the central
// store writes its SaveTo snapshot format).
//
// # Durability contract
//
// Append returns only after the entry is written to the active segment
// and — under SyncAlways — fsynced. Concurrent appenders share one
// fsync (group commit): each waits until a sync covering its entry has
// completed, but only one goroutine at a time issues Fsync, so a burst
// of N appends costs far fewer than N disk flushes. SyncInterval fsyncs
// on a timer (bounded data loss, bounded latency); SyncNever leaves
// flushing to the OS. A failed fsync poisons the log permanently:
// after a sync error every Append and Sync fails, because the kernel
// may have dropped the dirty pages and silently retrying would turn
// "maybe lost" into "acknowledged and lost".
//
// # Recovery
//
// Open scans the segments in order and truncates a torn tail: a final
// entry whose length, checksum, or payload is incomplete (the crash
// happened mid-write) is cut off, and appending resumes at the last
// good entry boundary. Corruption anywhere except the tail of the last
// segment is reported as an error, not repaired — that is disk damage,
// not a torn write. Recover then loads the newest checkpoint (if any)
// and replays every entry in newer segments; because a checkpoint may
// also contain entries appended while it was being written, the apply
// callback must tolerate duplicates.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy selects when Append data is flushed to stable storage.
type SyncPolicy int

// Sync policies, in decreasing order of durability.
const (
	// SyncAlways fsyncs before Append returns (group-committed): an
	// acknowledged entry survives power loss.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a timer: at most Interval's worth of
	// acknowledged entries can be lost to power failure.
	SyncInterval
	// SyncNever leaves flushing to the operating system: a process
	// crash loses nothing, a power failure may lose the cached tail.
	SyncNever
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses "always", "interval", or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval, or never)", s)
	}
}

// Options tunes a log. The zero value is usable: SyncAlways, the
// default segment size and interval.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SegmentSize rotates the active segment once it exceeds this many
	// bytes (default 64 MiB). Smaller segments make checkpoint
	// compaction reclaim space sooner.
	SegmentSize int64
	// Interval is the flush cadence under SyncInterval (default 100ms).
	Interval time.Duration
}

// Defaults for Options zero fields.
const (
	DefaultSegmentSize = 64 << 20
	DefaultInterval    = 100 * time.Millisecond
)

// Framing constants.
const (
	segMagic   = 0x574d5450 // "PTMW" little-endian
	segVersion = 1
	segHeader  = 16 // magic u32, version u8, 3 reserved, index u64
	entryHdr   = 8  // length u32, crc u32

	// MaxEntrySize bounds one entry's payload; it matches the transport
	// frame bound, since entries are uploaded records.
	MaxEntrySize = 1<<27 + 1024

	segSuffix  = ".wal"
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
)

// Errors.
var (
	ErrClosed       = errors.New("wal: log closed")
	ErrCorrupt      = errors.New("wal: corrupt segment")
	ErrEntryTooBig  = errors.New("wal: entry exceeds MaxEntrySize")
	ErrNoCheckpoint = errors.New("wal: no checkpoint")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Stats counts a log's activity since Open.
type Stats struct {
	// Appends is the number of entries appended.
	Appends int64
	// Syncs is the number of Fsync calls issued; under concurrent
	// SyncAlways appends this is typically far below Appends (group
	// commit).
	Syncs int64
	// Rotations counts segment rollovers.
	Rotations int64
	// TruncatedBytes is how much torn tail Open cut off.
	TruncatedBytes int64
	// Entries is the number of entries on disk at Open (before new
	// appends), across all surviving segments.
	Entries int64
}

// Log is a segmented append-only log. All methods are safe for
// concurrent use.
//
// Lock order (machine-checked by the lockorder lint rule): ckptMu is
// outermost — Checkpoint holds it across Seal and DropThrough, which
// take syncMu and mu, and it is never acquired while either of those is
// held; syncMu is taken before mu (group commit captures the sync
// target under mu while leading under syncMu); mu is innermost and is
// never held while acquiring another Log lock.
//
//ptm:lockorder ckptMu<syncMu ckptMu<mu syncMu<mu
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex // guards the fields below and file writes
	f        *os.File   //ptm:guardedby mu (active segment)
	segIndex uint64     //ptm:guardedby mu (active segment's index)
	segSize  int64      //ptm:guardedby mu (bytes written to the active segment)
	firstSeg uint64     //ptm:guardedby mu (oldest surviving segment index)
	writeSeq int64      //ptm:guardedby mu (entries ever written, monotonic, includes recovered)
	closed   bool       //ptm:guardedby mu

	// Group commit state.
	syncMu    sync.Mutex
	syncCond  *sync.Cond
	syncedSeq int64 //ptm:guardedby syncMu (all entries <= syncedSeq are on stable storage)
	syncing   bool  //ptm:guardedby syncMu (a leader is currently in Fsync)
	syncErr   error //ptm:guardedby syncMu (sticky: a failed fsync poisons the log)

	// Activity counters, updated on the append and sync paths.
	//ptm:guardedby mu
	stats struct {
		appends   int64
		syncs     int64
		rotations int64
		truncated int64
		entries   int64
	}

	// ckptMu serializes Checkpoint calls. It is the outermost Log lock:
	// held across Seal and DropThrough (which take syncMu and mu), never
	// acquired while either is held.
	ckptMu sync.Mutex

	tickQuit chan struct{} // SyncInterval flusher lifecycle
	tickDone chan struct{}
}

// Open creates or opens the log directory, repairing a torn tail so the
// log is ready to append. Existing entries are not interpreted; use
// Recover or Replay to read them back.
//
//ptm:exclusive constructor: the Log is not shared until Open returns
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if opts.SegmentSize < segHeader+entryHdr {
		return nil, fmt.Errorf("wal: segment size %d too small", opts.SegmentSize)
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	l := &Log{dir: dir, opts: opts}
	l.syncCond = sync.NewCond(&l.syncMu)

	segs, _, err := l.scanDir()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.openSegment(1); err != nil {
			return nil, err
		}
		l.firstSeg = 1
	} else {
		l.firstSeg = segs[0]
		// Verify every closed segment and repair the last one's tail.
		for i, idx := range segs {
			last := i == len(segs)-1
			n, truncated, err := checkSegment(l.segPath(idx), idx, last)
			if err != nil {
				return nil, err
			}
			l.stats.entries += n
			l.stats.truncated += truncated
			l.writeSeq += n
		}
		tail := segs[len(segs)-1]
		f, err := os.OpenFile(l.segPath(tail), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: reopening segment %d: %w", tail, err)
		}
		size, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			closeQuiet(f)
			return nil, fmt.Errorf("wal: seeking segment %d: %w", tail, err)
		}
		if size < segHeader {
			// The crash tore the tail segment's own header (truncated
			// to zero above); rewrite it so appends resume cleanly.
			var hdr [segHeader]byte
			binary.LittleEndian.PutUint32(hdr[0:4], segMagic)
			hdr[4] = segVersion
			binary.LittleEndian.PutUint64(hdr[8:16], tail)
			if _, err := f.Write(hdr[:]); err != nil {
				closeQuiet(f)
				return nil, fmt.Errorf("wal: rewriting segment %d header: %w", tail, err)
			}
			size = segHeader
		}
		l.f, l.segIndex, l.segSize = f, tail, size
	}
	l.syncedSeq = l.writeSeq // everything recovered is already on disk

	if opts.Sync == SyncInterval {
		l.tickQuit = make(chan struct{})
		l.tickDone = make(chan struct{})
		//ptmlint:allow goroutinehygiene -- the flusher exits when Close closes tickQuit and is awaited via tickDone
		go l.flushLoop()
	}
	return l, nil
}

// flushLoop is the SyncInterval background flusher.
func (l *Log) flushLoop() {
	defer close(l.tickDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.tickQuit:
			return
		case <-t.C:
			// A failed interval flush poisons the log; subsequent
			// Appends surface the sticky error, so drop it here.
			//ptmlint:allow errdrop -- the error is sticky in syncErr and surfaces on the next Append/Sync
			_ = l.Sync()
		}
	}
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Stats returns activity counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends:        l.stats.appends,
		Syncs:          l.stats.syncs,
		Rotations:      l.stats.rotations,
		TruncatedBytes: l.stats.truncated,
		Entries:        l.stats.entries,
	}
}

// Append writes one entry to the log. Under SyncAlways it returns only
// after an fsync covering the entry has completed, so a nil return is a
// durability promise. The payload is copied into framing before the
// call returns; the caller may reuse it.
//
//ptm:sink wal append
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxEntrySize {
		return fmt.Errorf("%w: %d bytes", ErrEntryTooBig, len(payload))
	}
	if err := l.stickyErr(); err != nil {
		return err
	}

	// Frame outside the lock: the CRC over a large payload must not
	// stall other appenders.
	var hdr [entryHdr]byte
	putEntryHeader(&hdr, payload)

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.segSize > segHeader && l.segSize+entryHdr+int64(len(payload)) > l.opts.SegmentSize {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	mySeq, err := l.writeEntryLocked(&hdr, payload)
	l.mu.Unlock()
	if err != nil {
		// A partial write desyncs the entry framing; poison the log.
		return l.poison(err)
	}

	if l.opts.Sync == SyncAlways {
		return l.syncTo(mySeq)
	}
	return nil
}

// putEntryHeader encodes one entry's framing — payload length and
// CRC32C — into a caller-owned buffer.
//
//ptm:noalloc
//ptm:nobce
func putEntryHeader(hdr *[entryHdr]byte, payload []byte) {
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
}

// writeEntryLocked writes one framed entry to the active segment and
// returns its sequence number. Caller holds l.mu and is responsible for
// rotation (before) and for poisoning the log on error (after, outside
// the lock — poison takes syncMu, which must not nest inside mu). This
// is the per-entry fast path; it must not allocate, so an ingest burst
// spooling to the log puts no pressure on the garbage collector.
//
//ptm:noalloc
func (l *Log) writeEntryLocked(hdr *[entryHdr]byte, payload []byte) (int64, error) {
	if _, err := l.f.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: writing entry header: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: writing entry payload: %w", err)
	}
	l.segSize += entryHdr + int64(len(payload))
	l.writeSeq++
	l.stats.appends++
	return l.writeSeq, nil
}

// Sync flushes every entry appended so far to stable storage,
// regardless of policy. Use it before reporting "all spooled data is
// safe" under SyncInterval/SyncNever.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	seq := l.writeSeq
	l.mu.Unlock()
	return l.syncTo(seq)
}

// syncTo blocks until a completed fsync covers entry seq. At most one
// goroutine is inside Fsync at a time; everyone else waits for that
// leader's result (group commit).
func (l *Log) syncTo(seq int64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	for {
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.syncedSeq >= seq {
			return nil
		}
		if !l.syncing {
			break
		}
		l.syncCond.Wait()
	}
	l.syncing = true
	// Capture the covered range and file under mu: rotation fsyncs the
	// outgoing segment before switching, so syncing the file captured
	// here covers every entry up to target.
	l.mu.Lock()
	f := l.f
	target := l.writeSeq
	closed := l.closed
	l.mu.Unlock()

	l.syncMu.Unlock()
	var err error
	if closed {
		err = ErrClosed
	} else {
		err = f.Sync()
	}
	l.syncMu.Lock()

	l.syncing = false
	l.syncCond.Broadcast()
	if err != nil {
		if l.syncErr == nil {
			l.syncErr = fmt.Errorf("wal: fsync: %w", err)
		}
		return l.syncErr
	}
	l.mu.Lock()
	l.stats.syncs++
	l.mu.Unlock()
	if target > l.syncedSeq {
		l.syncedSeq = target
	}
	if l.syncedSeq >= seq {
		return nil
	}
	// Our entry was appended before syncTo was called, so the captured
	// target always covers it; reaching here means another leader must
	// finish first (it raced us between the captures).
	for l.syncedSeq < seq && l.syncErr == nil {
		l.syncCond.Wait()
	}
	return l.syncErr
}

// stickyErr returns the poisoning fsync failure, if any.
func (l *Log) stickyErr() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	return l.syncErr
}

// poison records a write failure as the sticky error and returns it.
func (l *Log) poison(err error) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.syncErr == nil {
		l.syncErr = err
	}
	l.syncCond.Broadcast()
	return l.syncErr
}

// rotateLocked seals the active segment and opens the next one. Caller
// holds l.mu. The outgoing segment is fsynced (unless SyncNever) so the
// group-commit invariant — syncing the active file covers all unsynced
// entries — holds across the switch.
func (l *Log) rotateLocked() error {
	f, idx := l.f, l.segIndex
	if l.opts.Sync != SyncNever {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("wal: syncing sealed segment %d: %w", idx, err)
		}
		l.stats.syncs++
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: closing sealed segment %d: %w", idx, err)
	}
	l.stats.rotations++
	return l.openSegment(idx + 1)
}

// openSegment creates segment idx and makes it active. Caller holds
// l.mu (or is Open, before the log is shared).
func (l *Log) openSegment(idx uint64) error {
	path := l.segPath(idx)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment %d: %w", idx, err)
	}
	var hdr [segHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], segMagic)
	hdr[4] = segVersion
	binary.LittleEndian.PutUint64(hdr[8:16], idx)
	if _, err := f.Write(hdr[:]); err != nil {
		closeQuiet(f)
		return fmt.Errorf("wal: writing segment %d header: %w", idx, err)
	}
	if l.opts.Sync != SyncNever {
		// The new file's existence must survive a crash before entries
		// in it are considered durable.
		if err := syncDir(l.dir); err != nil {
			closeQuiet(f)
			return err
		}
	}
	l.f, l.segIndex, l.segSize = f, idx, segHeader
	return nil
}

// Seal rotates to a fresh segment and returns the index of the newest
// sealed one; entries appended afterwards land in newer segments. A
// spool drainer seals, uploads everything through the sealed index,
// then calls DropThrough.
func (l *Log) Seal() (uint64, error) {
	if err := l.stickyErr(); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.segSize == segHeader {
		// Active segment is empty: everything is already sealed.
		return l.segIndex - 1, nil
	}
	sealed := l.segIndex
	if err := l.rotateLocked(); err != nil {
		return 0, err
	}
	return sealed, nil
}

// Segments returns the index of the oldest surviving segment and of the
// active tail segment. A replication shipper uses the pair to decide
// between incremental catch-up (its watermark+1 >= first, so every
// needed segment still exists) and a full-state resync (checkpoint
// compaction already dropped segments the follower has not seen).
func (l *Log) Segments() (first, active uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstSeg, l.segIndex
}

// DropThrough deletes every segment with index <= seg. It refuses to
// drop the active segment.
func (l *Log) DropThrough(seg uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if seg >= l.segIndex {
		return fmt.Errorf("wal: cannot drop active segment %d (drop through %d)", l.segIndex, seg)
	}
	for idx := l.firstSeg; idx <= seg; idx++ {
		if err := os.Remove(l.segPath(idx)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("wal: dropping segment %d: %w", idx, err)
		}
	}
	if seg >= l.firstSeg {
		l.firstSeg = seg + 1
	}
	if l.opts.Sync != SyncNever {
		return syncDir(l.dir)
	}
	return nil
}

// Close flushes (under SyncAlways/SyncInterval) and closes the log.
func (l *Log) Close() error {
	if l.tickQuit != nil {
		close(l.tickQuit)
		<-l.tickDone
		l.tickQuit = nil
	}
	var syncErr error
	if l.opts.Sync != SyncNever {
		if err := l.Sync(); err != nil && !errors.Is(err, ErrClosed) {
			syncErr = err
		}
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return syncErr
	}
	l.closed = true
	err := l.f.Close()
	l.mu.Unlock()
	// Wake any waiters stuck behind a leader.
	l.syncMu.Lock()
	if l.syncErr == nil {
		l.syncErr = ErrClosed
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	if syncErr != nil {
		return syncErr
	}
	if err != nil {
		return fmt.Errorf("wal: closing active segment: %w", err)
	}
	return nil
}

// segPath returns the file path of segment idx.
func (l *Log) segPath(idx uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%018d%s", idx, segSuffix))
}

// ckptPath returns the checkpoint path covering segments <= idx.
func (l *Log) ckptPath(idx uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%018d%s", ckptPrefix, idx, ckptSuffix))
}

// scanDir lists segment indices (sorted ascending, verified contiguous)
// and checkpoint indices (sorted ascending) present in the directory.
func (l *Log) scanDir() (segs, ckpts []uint64, err error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: reading %s: %w", l.dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, segSuffix) && !strings.HasPrefix(name, ckptPrefix):
			idx, perr := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
			if perr != nil || idx == 0 {
				return nil, nil, fmt.Errorf("%w: stray file %s", ErrCorrupt, name)
			}
			segs = append(segs, idx)
		case strings.HasPrefix(name, ckptPrefix) && strings.HasSuffix(name, ckptSuffix):
			raw := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
			idx, perr := strconv.ParseUint(raw, 10, 64)
			if perr != nil {
				return nil, nil, fmt.Errorf("%w: stray file %s", ErrCorrupt, name)
			}
			ckpts = append(ckpts, idx)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	for i := 1; i < len(segs); i++ {
		if segs[i] != segs[i-1]+1 {
			return nil, nil, fmt.Errorf("%w: segment gap between %d and %d", ErrCorrupt, segs[i-1], segs[i])
		}
	}
	return segs, ckpts, nil
}

// checkSegment validates one segment file, returning its entry count.
// For the last (active-tail) segment, a torn final entry is truncated
// away and its size returned; anywhere else it is an error.
func checkSegment(path string, wantIdx uint64, repairTail bool) (entries, truncated int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: opening segment: %w", err)
	}
	defer closeQuiet(f)
	var n int64
	end, terr := scanEntries(f, wantIdx, func([]byte) error { n++; return nil })
	if terr == nil {
		return n, 0, nil
	}
	if !errors.Is(terr, errTornTail) {
		return 0, 0, fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(path), terr)
	}
	if !repairTail {
		return 0, 0, fmt.Errorf("%w: %s: torn entry in a sealed segment", ErrCorrupt, filepath.Base(path))
	}
	st, serr := f.Stat()
	if serr != nil {
		return 0, 0, fmt.Errorf("wal: stat %s: %w", filepath.Base(path), serr)
	}
	truncated = st.Size() - end
	if err := os.Truncate(path, end); err != nil {
		return 0, 0, fmt.Errorf("wal: truncating torn tail of %s: %w", filepath.Base(path), err)
	}
	return n, truncated, nil
}

// errTornTail marks an incomplete final entry — recoverable by
// truncation when it occurs in the last segment.
var errTornTail = errors.New("torn tail")

// scanEntries reads a segment from its current position, calling fn for
// each well-formed entry, and returns the offset of the last good entry
// boundary. A short or checksum-failing final region yields errTornTail
// wrapped with detail; fn errors abort the scan.
func scanEntries(r io.ReadSeeker, wantIdx uint64, fn func(payload []byte) error) (good int64, err error) {
	br := newByteCounter(r)
	var hdr [segHeader]byte
	if _, err := io.ReadFull(br, hdr[:segHeader]); err != nil {
		return 0, fmt.Errorf("%w: short header: %v", errTornTail, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != segMagic {
		return 0, fmt.Errorf("bad segment magic %#x", binary.LittleEndian.Uint32(hdr[0:4]))
	}
	if hdr[4] != segVersion {
		return 0, fmt.Errorf("unsupported segment version %d", hdr[4])
	}
	if got := binary.LittleEndian.Uint64(hdr[8:16]); got != wantIdx {
		return 0, fmt.Errorf("segment claims index %d, file named %d", got, wantIdx)
	}
	good = segHeader
	var ehdr [entryHdr]byte
	for {
		if _, err := io.ReadFull(br, ehdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return good, nil // clean end on an entry boundary
			}
			return good, fmt.Errorf("%w: short entry header: %v", errTornTail, err)
		}
		n := binary.LittleEndian.Uint32(ehdr[0:4])
		if n > MaxEntrySize {
			// An absurd length is indistinguishable from a torn write
			// that clobbered the header; recoverable at the tail.
			return good, fmt.Errorf("%w: entry claims %d bytes", errTornTail, n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return good, fmt.Errorf("%w: short entry payload: %v", errTornTail, err)
		}
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(ehdr[4:8]) {
			return good, fmt.Errorf("%w: entry checksum mismatch", errTornTail)
		}
		if err := fn(payload); err != nil {
			return good, err
		}
		good = br.n
	}
}

// byteCounter counts bytes consumed from an io.Reader.
type byteCounter struct {
	r io.Reader
	n int64
}

func newByteCounter(r io.Reader) *byteCounter { return &byteCounter{r: r} }

// Read implements io.Reader.
func (b *byteCounter) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}

// closeQuiet closes read-only handles whose close errors carry no
// information.
func closeQuiet(f *os.File) {
	//ptmlint:allow errdrop -- read-side close; all write paths check their own errors
	_ = f.Close()
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: syncing dir: %w", err)
	}
	return nil
}
