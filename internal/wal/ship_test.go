package wal

// Tests for the replication shipper's exact usage pattern (DESIGN.md
// §15): while appenders keep writing, a shipper loop repeatedly calls
// Seal, replays the newly sealed range with ReplaySegments, and
// eventually drops shipped segments. The invariants proven here are the
// ones cluster replication rests on:
//
//  1. Stable prefix: entries visited by ReplaySegments(w+1, sealed) are
//     exactly the entries appended before that Seal and after the
//     previous one — no loss, no tearing, even with appends racing the
//     rotation.
//  2. Exactly-once union: the concatenation of all rounds' replays is a
//     permutation-free, duplicate-free prefix of the append order.
//  3. Torn-tail restart: a follower that crashes mid-append reopens
//     with the torn entry truncated, and re-applying the leader's
//     resend converges (duplicates tolerated, nothing lost).

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// shipEntry encodes a distinguishable, ordered payload.
func shipEntry(writer, seq int) []byte {
	return []byte(fmt.Sprintf("w%02d-%08d", writer, seq))
}

func TestSealReplayDropUnderConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations, so Seal and the appenders'
	// rotateLocked race constantly.
	l, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const (
		writers   = 4
		perWriter = 400
	)
	// Writers consume one token per append, so the shipper below can
	// meter their progress and guarantee its rounds interleave with
	// in-flight appends rather than racing the goroutine scheduler.
	const total = writers * perWriter
	tokens := make(chan struct{}, total)
	var appended atomic.Int64
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				<-tokens
				if err := l.Append(shipEntry(w, i)); err != nil {
					t.Errorf("append w%d #%d: %v", w, i, err)
					return
				}
				appended.Add(1)
			}
		}(w)
	}

	// The shipper loop: Seal, replay the new range, drop what a real
	// shipper would have acked, repeat until the writers finish and one
	// final round drains the tail.
	shipped := make(map[string]int)
	var rounds int
	watermark := uint64(0)
	shipRound := func() {
		sealed, err := l.Seal()
		if err != nil {
			t.Fatalf("seal: %v", err)
		}
		if sealed <= watermark {
			return
		}
		err = l.ReplaySegments(watermark+1, sealed, func(p []byte) error {
			shipped[string(p)]++
			return nil
		})
		if err != nil {
			t.Fatalf("replay %d..%d: %v", watermark+1, sealed, err)
		}
		if first, _ := l.Segments(); watermark+1 < first {
			t.Fatalf("shipped range %d..%d no longer fully on disk (first=%d)", watermark+1, sealed, first)
		}
		watermark = sealed
		rounds++
		// Drop a trailing part of what we shipped, like a shipper whose
		// followers acked; keep the last shipped segment around so the
		// drop itself races later seals.
		if watermark > 1 {
			if err := l.DropThrough(watermark - 1); err != nil {
				t.Fatalf("drop through %d: %v", watermark-1, err)
			}
		}
	}

	// Eight metered bursts: grant a burst of tokens, wait until most of
	// the burst landed, then ship while the stragglers' appends are
	// still in flight — Seal's rotation races writeEntryLocked for real.
	const burst = total / 8
	granted := 0
	for r := 0; r < 8; r++ {
		for i := 0; i < burst; i++ {
			tokens <- struct{}{}
		}
		granted += burst
		for appended.Load() < int64(granted-burst/4) {
			runtime.Gosched()
		}
		shipRound()
	}
	wg.Wait()
	shipRound() // drain the tail sealed after the writers stopped

	if rounds < 3 {
		t.Fatalf("only %d ship rounds; segments too large to exercise the race", rounds)
	}
	// Exactly-once union: every appended entry shipped exactly once.
	if len(shipped) != writers*perWriter {
		t.Fatalf("shipped %d distinct entries, want %d", len(shipped), writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			k := string(shipEntry(w, i))
			if shipped[k] != 1 {
				t.Fatalf("entry %s shipped %d times, want 1", k, shipped[k])
			}
		}
	}
}

// TestSealEmptyTailStable pins Seal's empty-tail contract: sealing with
// nothing appended since the last Seal returns the same index and does
// not churn empty segments — the shipper polls Seal on a timer and an
// idle cluster must not grow its logs.
func TestSealEmptyTailStable(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	s1, err := l.Seal()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s, err := l.Seal()
		if err != nil {
			t.Fatal(err)
		}
		if s != s1 {
			t.Fatalf("idle seal #%d = %d, want %d", i, s, s1)
		}
	}
	if first, active := l.Segments(); active != s1+1 || first != 1 {
		t.Fatalf("Segments() = (%d, %d), want (1, %d)", first, active, s1+1)
	}
}

// TestReplaySegmentsCheckpointRace pins the documented hazard: a
// checkpoint between Seal and ReplaySegments drops segments out of the
// shipper's range, which replayRange silently skips — the replay
// returns nil but visits nothing. The shipper detects the hole by
// re-checking Segments() afterwards and falls back to a full resync.
func TestReplaySegmentsCheckpointRace(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncNever, SegmentSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 200
	for i := 0; i < n; i++ {
		if err := l.Append(shipEntry(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	sealed, err := l.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if sealed < 3 {
		t.Fatalf("sealed=%d; need several segments", sealed)
	}
	// A checkpoint commits and drops everything through its seal point —
	// including the whole range the shipper was about to read.
	if err := l.Checkpoint(func(w io.Writer) error { return nil }); err != nil {
		t.Fatal(err)
	}
	visited := 0
	if err := l.ReplaySegments(1, sealed, func([]byte) error {
		visited++
		return nil
	}); err != nil {
		t.Fatalf("replay over dropped segments must skip, not fail: %v", err)
	}
	if visited != 0 {
		t.Fatalf("replay visited %d entries from dropped segments", visited)
	}
	// The shipper's detection: the range's low end is gone.
	if first, _ := l.Segments(); first <= 1 {
		t.Fatalf("Segments() first = %d; checkpoint should have advanced it past 1", first)
	}
}

func TestTornTailFollowerRestart(t *testing.T) {
	// A follower durably applies replicated entries into its own WAL.
	// Crash it mid-append (simulated by truncating the tail file inside
	// the final entry), restart, and verify: (a) Open repairs the tail,
	// (b) replay yields every fully-appended entry, (c) re-applying the
	// leader's resend of the lost suffix converges without duplicates.
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := l.Append(shipEntry(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop into the last entry's payload.
	segs, _, err := (&Log{dir: dir}).scanDir()
	if err != nil {
		t.Fatal(err)
	}
	tail := fmt.Sprintf("%s/%018d%s", dir, segs[len(segs)-1], segSuffix)
	st, err := os.Stat(tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(tail, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	// Restart: the torn entry (w1-49) is truncated away.
	l2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.TruncatedBytes == 0 {
		t.Fatal("restart repaired nothing; the tear missed")
	}
	applied := make(map[string]bool)
	if err := l2.Replay(func(p []byte) error {
		applied[string(p)] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(applied) != n-1 {
		t.Fatalf("replayed %d entries after torn restart, want %d", len(applied), n-1)
	}
	if applied[string(shipEntry(1, n-1))] {
		t.Fatal("torn final entry survived the restart")
	}

	// The leader re-ships from the follower's (regressed) watermark:
	// some entries arrive again, the torn one arrives fresh. A durable
	// follower applies idempotently — skip already-applied, append new.
	reshipped := 0
	for i := n - 5; i < n; i++ {
		p := shipEntry(1, i)
		if applied[string(p)] {
			continue
		}
		if err := l2.Append(p); err != nil {
			t.Fatal(err)
		}
		applied[string(p)] = true
		reshipped++
	}
	if reshipped != 1 {
		t.Fatalf("re-applied %d entries, want exactly the torn one", reshipped)
	}
	final := make(map[string]int)
	if err := l2.Replay(func(p []byte) error {
		final[string(p)]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(final) != n {
		t.Fatalf("converged to %d distinct entries, want %d", len(final), n)
	}
	for k, c := range final {
		if c != 1 {
			t.Fatalf("entry %s present %d times after convergence", k, c)
		}
	}
}
