package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay: segment files come back from disks that crashed, filled
// up, or bit-rotted. Opening and replaying arbitrary bytes must error
// cleanly, never panic; and a valid prefix followed by a torn tail must
// recover exactly the prefix.
func FuzzReplay(f *testing.F) {
	// Seeds: a well-formed segment, an empty file, garbage, and a
	// well-formed segment with a torn final entry.
	var seg bytes.Buffer
	var hdr [segHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], segMagic)
	hdr[4] = segVersion
	binary.LittleEndian.PutUint64(hdr[8:16], 1)
	seg.Write(hdr[:])
	for _, p := range [][]byte{[]byte("alpha"), []byte("beta"), {}} {
		var eh [entryHdr]byte
		binary.LittleEndian.PutUint32(eh[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(eh[4:8], crc32.Checksum(p, castagnoli))
		seg.Write(eh[:])
		seg.Write(p)
	}
	f.Add(seg.Bytes(), uint16(0))
	f.Add([]byte{}, uint16(3))
	f.Add(bytes.Repeat([]byte{0xff}, 64), uint16(9))
	f.Add(seg.Bytes()[:seg.Len()-3], uint16(1))

	f.Fuzz(func(t *testing.T, data []byte, cut uint16) {
		// Phase 1 — robustness: the input IS the tail segment. Open
		// must repair or reject, never panic, and the result must
		// replay and append cleanly.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "000000000000000001"+segSuffix), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Sync: SyncNever})
		if err == nil {
			if rerr := l.Replay(func([]byte) error { return nil }); rerr != nil {
				t.Fatalf("replay of repaired segment failed: %v", rerr)
			}
			if aerr := l.Append([]byte("post")); aerr != nil {
				t.Fatalf("append after repair failed: %v", aerr)
			}
			if cerr := l.Close(); cerr != nil {
				t.Fatalf("close: %v", cerr)
			}
		}

		// Phase 2 — prefix recovery: build a valid log from chunks of
		// the input, cut the file at an arbitrary point, and require
		// replay to return exactly a prefix of the chunks.
		dir2 := t.TempDir()
		l2, err := Open(dir2, Options{Sync: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		var chunks [][]byte
		for i := 0; i < len(data); i += 32 {
			end := i + 32
			if end > len(data) {
				end = len(data)
			}
			chunks = append(chunks, data[i:end])
			if err := l2.Append(data[i:end]); err != nil {
				t.Fatal(err)
			}
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir2, "000000000000000001"+segSuffix)
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		cutAt := int64(cut) % (st.Size() + 1)
		if err := os.Truncate(path, cutAt); err != nil {
			t.Fatal(err)
		}
		l3, err := Open(dir2, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("open after cut at %d: %v", cutAt, err)
		}
		var got [][]byte
		if err := l3.Replay(func(p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatalf("replay after cut at %d: %v", cutAt, err)
		}
		if len(got) > len(chunks) {
			t.Fatalf("recovered %d entries from %d appended", len(got), len(chunks))
		}
		for i, p := range got {
			if !bytes.Equal(p, chunks[i]) {
				t.Fatalf("cut %d: entry %d not a prefix match", cutAt, i)
			}
		}
		if err := l3.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
