package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// entry builds a distinguishable payload.
func entry(i int) []byte {
	return []byte(fmt.Sprintf("entry-%06d-%s", i, string(bytes.Repeat([]byte{'x'}, i%40))))
}

// collect replays a log into a slice.
func collect(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var out [][]byte
	if err := l.Replay(func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := l.Append(entry(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	got := collect(t, l)
	if len(got) != n {
		t.Fatalf("replayed %d entries, want %d", len(got), n)
	}
	for i, p := range got {
		if !bytes.Equal(p, entry(i)) {
			t.Fatalf("entry %d = %q, want %q", i, p, entry(i))
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same contents, appends continue.
	l2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.Entries != n || st.TruncatedBytes != 0 {
		t.Fatalf("reopen stats = %+v, want %d entries, 0 truncated", st, n)
	}
	if err := l2.Append(entry(n)); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l2); len(got) != n+1 || !bytes.Equal(got[n], entry(n)) {
		t.Fatalf("after reopen+append: %d entries", len(got))
	}
}

func TestEmptyAndOversizeEntries(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(nil); err != nil {
		t.Fatalf("empty append: %v", err)
	}
	if err := l.Append(make([]byte, MaxEntrySize+1)); !errors.Is(err, ErrEntryTooBig) {
		t.Fatalf("oversize append err = %v", err)
	}
	if got := collect(t, l); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("replay after empty append = %v", got)
	}
}

func TestRotationAndSegmentFiles(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of entries.
	l, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := l.Append(entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Rotations == 0 {
		t.Fatal("expected rotations with 128-byte segments")
	}
	if got := collect(t, l); len(got) != n {
		t.Fatalf("replayed %d, want %d", len(got), n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen across many segments.
	l2, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); len(got) != n {
		t.Fatalf("reopened replay %d, want %d", len(got), n)
	}
}

func TestSealAndDropThrough(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncNever, SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		if err := l.Append(entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	sealed, err := l.Seal()
	if err != nil {
		t.Fatal(err)
	}
	// New entries land beyond the seal.
	for i := 10; i < 15; i++ {
		if err := l.Append(entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	var sealedEntries int
	if err := l.ReplayThrough(sealed, func(p []byte) error { sealedEntries++; return nil }); err != nil {
		t.Fatal(err)
	}
	if sealedEntries != 10 {
		t.Fatalf("sealed prefix has %d entries, want 10", sealedEntries)
	}
	if err := l.DropThrough(sealed); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l)
	if len(got) != 5 || !bytes.Equal(got[0], entry(10)) {
		t.Fatalf("after drop: %d entries, first %q", len(got), got[0])
	}
	// Sealing an already-empty active segment is a no-op seal.
	s2, err := l.Seal()
	if err != nil {
		t.Fatal(err)
	}
	s3, err := l.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s2 {
		t.Fatalf("double seal moved: %d then %d", s2, s3)
	}
}

func TestDropActiveSegmentRefused(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.DropThrough(1); err == nil {
		t.Fatal("DropThrough(active) succeeded")
	}
}

func TestCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	var state []string
	for i := 0; i < 20; i++ {
		p := entry(i)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
		state = append(state, string(p))
	}
	// Snapshot = newline-joined state.
	if err := l.Checkpoint(func(w io.Writer) error {
		for _, s := range state {
			if _, err := fmt.Fprintln(w, s); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Covered segments are gone; only the active one (and newer) remain.
	files, err := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("%d segment files after checkpoint, want 1: %v", len(files), files)
	}
	// More entries after the checkpoint.
	for i := 20; i < 25; i++ {
		if err := l.Append(entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery = checkpoint + newer segments.
	l2, err := Open(dir, Options{Sync: SyncAlways, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var fromCkpt, fromLog []string
	err = l2.Recover(
		func(r io.Reader) error {
			data, err := io.ReadAll(r)
			if err != nil {
				return err
			}
			for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
				fromCkpt = append(fromCkpt, string(line))
			}
			return nil
		},
		func(p []byte) error { fromLog = append(fromLog, string(p)); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromCkpt) != 20 {
		t.Fatalf("checkpoint recovered %d entries, want 20", len(fromCkpt))
	}
	if len(fromLog) != 5 || fromLog[0] != string(entry(20)) {
		t.Fatalf("log recovered %d entries, first %q", len(fromLog), fromLog)
	}
}

func TestRecoverColdStart(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := l.Append(entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	loads, replays := 0, 0
	err = l2.Recover(
		func(io.Reader) error { loads++; return nil },
		func([]byte) error { replays++; return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if loads != 0 || replays != 7 {
		t.Fatalf("cold start: %d loads, %d replays; want 0, 7", loads, replays)
	}
}

func TestCheckpointFailureLeavesLogIntact(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if err := l.Append(entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("snapshot failed")
	if err := l.Checkpoint(func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("checkpoint err = %v, want %v", err, boom)
	}
	// No checkpoint committed, no temp litter, all entries still replay.
	if _, _, err := l.LatestCheckpoint(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("LatestCheckpoint after failure = %v", err)
	}
	tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("temp litter: %v", tmps)
	}
	if got := collect(t, l); len(got) != 5 {
		t.Fatalf("replay after failed checkpoint: %d entries, want 5", len(got))
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const workers, per = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(entry(w*per + i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != workers*per {
		t.Fatalf("appends = %d, want %d", st.Appends, workers*per)
	}
	// Group commit can never need more syncs than appends (plus
	// rotations); usually far fewer — but that is timing-dependent, so
	// only the upper bound is asserted.
	if st.Syncs > st.Appends+st.Rotations {
		t.Fatalf("syncs = %d exceeds appends+rotations = %d", st.Syncs, st.Appends+st.Rotations)
	}
	if got := collect(t, l); len(got) != workers*per {
		t.Fatalf("replayed %d, want %d", len(got), workers*per)
	}
}

func TestSyncIntervalFlushes(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncInterval, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(entry(1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClosedLogRefusesWork(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(entry(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v", err)
	}
	if _, err := l.Seal(); !errors.Is(err, ErrClosed) {
		t.Fatalf("seal after close = %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

func TestOpenRejectsSegmentGap(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := l.Append(entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Rotations < 2 {
		t.Fatal("need >= 3 segments for this test")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Delete a middle segment: recovery must refuse, not silently skip.
	if err := os.Remove(l.segPath(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 128}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with missing middle segment = %v, want ErrCorrupt", err)
	}
}

func TestOpenRejectsMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := l.Append(entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the FIRST segment: that is disk damage in
	// a sealed segment, not a torn tail.
	path := l.segPath(1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeader+entryHdr+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 128}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with corrupt sealed segment = %v, want ErrCorrupt", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"never", SyncNever, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if tc.ok && got.String() != tc.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
}
