package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// The crash differential: a kill -9 (or power cut) leaves some prefix
// of the written byte stream on disk, possibly ending mid-entry. For
// EVERY possible cut point in the tail segment, recovery must yield a
// prefix-consistent subset of the appended entries — never a reordered,
// corrupted, or hole-y subset — and every entry whose bytes are wholly
// before the cut must survive (that is what the fsync in SyncAlways
// buys: an acked entry's bytes are behind every later cut point).

// buildLog appends n entries and returns the dir and the per-entry end
// offsets within the tail segment (entries in earlier segments have
// offset -1).
func buildLog(t *testing.T, n int, segSize int64) (dir string, tailEnds []int64) {
	t.Helper()
	dir = t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever, SegmentSize: segSize})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := l.Append(entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Recompute each entry's end offset in the final segment.
	tailIdx := l.segIndex
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	tailEnds = make([]int64, 0, n)
	off := int64(segHeader)
	data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("%018d%s", tailIdx, segSuffix)))
	if err != nil {
		t.Fatal(err)
	}
	var inTail int
	for off < int64(len(data)) {
		plen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		off += entryHdr + plen
		tailEnds = append(tailEnds, off)
		inTail++
	}
	// Entries before the tail segment are durable regardless of cut.
	pre := make([]int64, n-inTail)
	for i := range pre {
		pre[i] = -1
	}
	return dir, append(pre, tailEnds...)
}

// cloneTruncated copies a log directory, cutting the tail segment to
// cut bytes.
func cloneTruncated(t *testing.T, src string, cut int64) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	var tail string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == segSuffix && e.Name() > tail {
			tail = e.Name()
		}
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() == tail {
			if cut > int64(len(data)) {
				cut = int64(len(data))
			}
			data = data[:cut]
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestCrashRecoveryEveryCutPoint(t *testing.T) {
	for _, tc := range []struct {
		name    string
		n       int
		segSize int64
	}{
		{"single-segment", 8, 1 << 20},
		{"multi-segment", 12, 160},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir, ends := buildLog(t, tc.n, tc.segSize)
			tailName := ""
			files, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range files {
				if filepath.Ext(f.Name()) == segSuffix && f.Name() > tailName {
					tailName = f.Name()
				}
			}
			st, err := os.Stat(filepath.Join(dir, tailName))
			if err != nil {
				t.Fatal(err)
			}
			for cut := int64(0); cut <= st.Size(); cut++ {
				crashed := cloneTruncated(t, dir, cut)
				l, err := Open(crashed, Options{Sync: SyncNever, SegmentSize: tc.segSize})
				if err != nil {
					t.Fatalf("cut %d: open: %v", cut, err)
				}
				var got [][]byte
				if err := l.Replay(func(p []byte) error {
					got = append(got, append([]byte(nil), p...))
					return nil
				}); err != nil {
					t.Fatalf("cut %d: replay: %v", cut, err)
				}
				// Prefix consistency: got == entries[0:k].
				for i, p := range got {
					if !bytes.Equal(p, entry(i)) {
						t.Fatalf("cut %d: recovered entry %d = %q, want %q (not a prefix)", cut, i, p, entry(i))
					}
				}
				// Durability: every entry wholly behind the cut survives.
				durable := 0
				for _, end := range ends {
					if end == -1 || end <= cut {
						durable++
					}
				}
				if len(got) < durable {
					t.Fatalf("cut %d: recovered %d entries, %d were durable", cut, len(got), durable)
				}
				// The log must accept appends after any repair.
				if err := l.Append([]byte("post-crash")); err != nil {
					t.Fatalf("cut %d: append after repair: %v", cut, err)
				}
				var again int
				if err := l.Replay(func([]byte) error { again++; return nil }); err != nil {
					t.Fatalf("cut %d: replay after repair+append: %v", cut, err)
				}
				if again != len(got)+1 {
					t.Fatalf("cut %d: post-repair replay %d entries, want %d", cut, again, len(got)+1)
				}
				if err := l.Close(); err != nil {
					t.Fatalf("cut %d: close: %v", cut, err)
				}
			}
		})
	}
}

// TestCrashDuringCompaction pins the checkpoint commit point: a crash
// after the rename but before segment deletion must recover to exactly
// the same state as a clean compaction (covered segments dropped, not
// replayed into duplicates beyond what apply tolerates).
func TestCrashDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	sealed, err := l.Seal()
	if err != nil {
		t.Fatal(err)
	}
	// Write the checkpoint by hand (commit it) but "crash" before the
	// segment deletion DropThrough would do.
	ck := l.ckptPath(sealed)
	if err := os.WriteFile(ck, []byte("snapshot-of-0..9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 13; i++ {
		if err := l.Append(entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var loaded string
	var replayed []string
	err = l2.Recover(
		func(r io.Reader) error {
			b, err := io.ReadAll(r)
			loaded = string(b)
			return err
		},
		func(p []byte) error { replayed = append(replayed, string(p)); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == "" {
		t.Fatal("checkpoint not loaded")
	}
	if len(replayed) != 3 || replayed[0] != string(entry(10)) {
		t.Fatalf("replayed %v, want entries 10..12 only", replayed)
	}
	// The interrupted compaction is finished: covered segments gone.
	for i := uint64(1); i <= sealed; i++ {
		if _, err := os.Stat(l2.segPath(i)); !os.IsNotExist(err) {
			t.Errorf("covered segment %d still present after recovery", i)
		}
	}
}
