//go:build !race

// Zero-allocation regression tests for the //ptm:noalloc append fast
// path, mirroring the perfguard contracts proved at lint time. The file
// is excluded from -race builds because race instrumentation introduces
// allocations unrelated to the contracts under test.

package wal

import "testing"

func TestEntryHeaderDoesNotAllocate(t *testing.T) {
	var hdr [entryHdr]byte
	payload := make([]byte, 256)
	if n := testing.AllocsPerRun(100, func() {
		putEntryHeader(&hdr, payload)
	}); n != 0 {
		t.Errorf("putEntryHeader allocated %.1f times per run, want 0", n)
	}
}

func TestAppendFastPathDoesNotAllocate(t *testing.T) {
	// SyncNever keeps fsync bookkeeping off the path and a large segment
	// size keeps rotation (which opens files, and may allocate) out of
	// the measured runs.
	l, err := Open(t.TempDir(), Options{Sync: SyncNever, SegmentSize: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := l.Close(); err != nil {
			t.Errorf("closing log: %v", err)
		}
	}()
	payload := make([]byte, 256)
	if n := testing.AllocsPerRun(100, func() {
		if err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Append allocated %.1f times per run, want 0", n)
	}
}
