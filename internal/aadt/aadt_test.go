package aadt

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

// syntheticYear generates a year of daily volumes with multiplicative
// month and weekday structure around the given base.
func syntheticYear(year int, base float64, rng *rand.Rand) []Sample {
	monthMult := []float64{0.85, 0.87, 0.95, 1.0, 1.05, 1.12, 1.2, 1.18, 1.05, 1.0, 0.9, 0.83}
	dowMult := []float64{0.8, 1.05, 1.08, 1.08, 1.1, 1.12, 0.9} // Sun..Sat
	var out []Sample
	d := time.Date(year, 1, 1, 0, 0, 0, 0, time.UTC)
	for d.Year() == year {
		v := base * monthMult[d.Month()-1] * dowMult[d.Weekday()]
		if rng != nil {
			v *= 1 + 0.03*rng.NormFloat64()
		}
		out = append(out, Sample{Date: d, Volume: v})
		d = d.AddDate(0, 0, 1)
	}
	return out
}

func TestAverage(t *testing.T) {
	year := syntheticYear(2025, 10000, nil)
	got, err := Average(year)
	if err != nil {
		t.Fatal(err)
	}
	// The mean of the multiplicative pattern is close to base since the
	// multipliers average near 1.
	if got < 9500 || got > 10500 {
		t.Errorf("AADT = %v, want ~10000", got)
	}
	if _, err := Average(year[:100]); !errors.Is(err, ErrLowCoverage) {
		t.Errorf("short coverage err = %v", err)
	}
	bad := append([]Sample{}, year...)
	bad[5].Volume = -1
	if _, err := Average(bad); !errors.Is(err, ErrBadVolume) {
		t.Errorf("negative volume err = %v", err)
	}
}

func TestFitFactorsRecoverPattern(t *testing.T) {
	year := syntheticYear(2025, 10000, nil)
	f, err := FitFactors(year)
	if err != nil {
		t.Fatal(err)
	}
	// July (index 6) is the busiest month -> factor < 1; January the
	// quietest -> factor > 1.
	if f.Month[6] >= 1 {
		t.Errorf("July factor = %v, want < 1", f.Month[6])
	}
	if f.Month[0] <= 1 {
		t.Errorf("January factor = %v, want > 1", f.Month[0])
	}
	if f.Weekday[time.Sunday] <= 1 {
		t.Errorf("Sunday factor = %v, want > 1", f.Weekday[time.Sunday])
	}
	if f.Weekday[time.Friday] >= 1 {
		t.Errorf("Friday factor = %v, want < 1", f.Weekday[time.Friday])
	}
}

func TestShortCountExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	history := syntheticYear(2024, 10000, rng)
	f, err := FitFactors(history)
	if err != nil {
		t.Fatal(err)
	}
	trueAADT, err := Average(syntheticYear(2025, 10000, nil))
	if err != nil {
		t.Fatal(err)
	}

	// One week of short counts in deep winter — raw counts would badly
	// underestimate AADT; factor expansion fixes it.
	next := syntheticYear(2025, 10000, rng)
	week := next[14:21] // mid-January
	raw, err := mean(week)
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := EstimateFromShortCounts(week, f)
	if err != nil {
		t.Fatal(err)
	}
	rawErr := math.Abs(raw-trueAADT) / trueAADT
	expErr := math.Abs(expanded-trueAADT) / trueAADT
	if expErr > 0.05 {
		t.Errorf("expanded AADT %v vs true %v (rel err %.3f)", expanded, trueAADT, expErr)
	}
	if expErr >= rawErr {
		t.Errorf("expansion (%.3f) no better than raw winter mean (%.3f)", expErr, rawErr)
	}
}

func TestFitFactorsCoverageErrors(t *testing.T) {
	if _, err := FitFactors(nil); !errors.Is(err, ErrNoSamples) {
		t.Errorf("empty err = %v", err)
	}
	// Only January: missing months.
	jan := syntheticYear(2025, 10000, nil)[:31]
	if _, err := FitFactors(jan); !errors.Is(err, ErrCoverage) {
		t.Errorf("partial coverage err = %v", err)
	}
	// All-zero volumes: factor denominators vanish.
	year := syntheticYear(2025, 10000, nil)
	for i := range year {
		year[i].Volume = 0
	}
	if _, err := FitFactors(year); !errors.Is(err, ErrZeroBaseline) {
		t.Errorf("zero baseline err = %v", err)
	}
}

func TestEstimateFromShortCountsErrors(t *testing.T) {
	year := syntheticYear(2025, 10000, nil)
	f, err := FitFactors(year)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateFromShortCounts(nil, f); !errors.Is(err, ErrNoSamples) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := EstimateFromShortCounts(year[:3], nil); err == nil {
		t.Error("nil factors accepted")
	}
	bad := []Sample{{Date: year[0].Date, Volume: -5}}
	if _, err := EstimateFromShortCounts(bad, f); !errors.Is(err, ErrBadVolume) {
		t.Errorf("negative err = %v", err)
	}
}
