// Package aadt computes Annual Average Daily Traffic, the measurement the
// paper's introduction motivates: per-period volumes estimated from
// privacy-preserving traffic records (Eq. 1) feed AADT computation exactly
// as classic loop-detector counts do.
//
// Two methods are provided, following the practice codified in the USDOT
// Traffic Monitoring Guide the paper cites:
//
//   - Average: the plain mean over a (near-)complete year of daily
//     volumes, the definition of AADT.
//   - Short-count expansion: fit month and day-of-week adjustment factors
//     on a historical year, then expand a handful of short counts
//     (e.g. one week of coverage from a portable RSU) into an AADT
//     estimate.
package aadt

import (
	"errors"
	"fmt"
	"time"
)

// Sample is one day's traffic volume at a location.
type Sample struct {
	Date   time.Time
	Volume float64
}

// Errors.
var (
	ErrNoSamples    = errors.New("aadt: no samples")
	ErrBadVolume    = errors.New("aadt: negative volume")
	ErrCoverage     = errors.New("aadt: history does not cover every month and weekday")
	ErrLowCoverage  = errors.New("aadt: too few days for a plain AADT average")
	ErrZeroBaseline = errors.New("aadt: zero traffic in a factor bucket")
)

// MinAnnualCoverage is the minimum number of daily samples Average
// accepts as "annual" coverage. The TMG tolerates missing days; 300 keeps
// honest gaps while rejecting short counts passed by mistake.
const MinAnnualCoverage = 300

// Average computes AADT as the mean of a (near-)complete year of daily
// volumes.
func Average(samples []Sample) (float64, error) {
	if len(samples) < MinAnnualCoverage {
		return 0, fmt.Errorf("%w: %d days (need >= %d)", ErrLowCoverage, len(samples), MinAnnualCoverage)
	}
	return mean(samples)
}

func mean(samples []Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrNoSamples
	}
	sum := 0.0
	for _, s := range samples {
		if s.Volume < 0 {
			return 0, fmt.Errorf("%w: %v on %s", ErrBadVolume, s.Volume, s.Date.Format("2006-01-02"))
		}
		sum += s.Volume
	}
	return sum / float64(len(samples)), nil
}

// Factors holds multiplicative adjustment factors: expanding a daily count
// to AADT multiplies by the factor of its month and of its weekday.
type Factors struct {
	Month   [12]float64 // index time.Month-1
	Weekday [7]float64  // index time.Weekday
}

// FitFactors derives adjustment factors from a historical year of daily
// volumes at a comparable location: factor = AADT / mean(volume in
// bucket). The history must include at least one sample in every month
// and every weekday.
func FitFactors(history []Sample) (*Factors, error) {
	grand, err := mean(history)
	if err != nil {
		return nil, err
	}
	var (
		monthSum, weekdaySum     [12]float64
		monthCount, weekdayCount [12]int // weekday uses [0,7)
	)
	for _, s := range history {
		m := int(s.Date.Month()) - 1
		w := int(s.Date.Weekday())
		monthSum[m] += s.Volume
		monthCount[m]++
		weekdaySum[w] += s.Volume
		weekdayCount[w]++
	}
	f := &Factors{}
	for m := 0; m < 12; m++ {
		if monthCount[m] == 0 {
			return nil, fmt.Errorf("%w: month %s missing", ErrCoverage, time.Month(m+1))
		}
		avg := monthSum[m] / float64(monthCount[m])
		if avg == 0 {
			return nil, fmt.Errorf("%w: month %s", ErrZeroBaseline, time.Month(m+1))
		}
		f.Month[m] = grand / avg
	}
	for w := 0; w < 7; w++ {
		if weekdayCount[w] == 0 {
			return nil, fmt.Errorf("%w: %s missing", ErrCoverage, time.Weekday(w))
		}
		avg := weekdaySum[w] / float64(weekdayCount[w])
		if avg == 0 {
			return nil, fmt.Errorf("%w: %s", ErrZeroBaseline, time.Weekday(w))
		}
		f.Weekday[w] = grand / avg
	}
	return f, nil
}

// Adjust expands one short count to an AADT estimate.
func (f *Factors) Adjust(s Sample) float64 {
	return s.Volume * f.Month[int(s.Date.Month())-1] * f.Weekday[int(s.Date.Weekday())]
}

// EstimateFromShortCounts expands each short count and returns the mean —
// the TMG's AADT estimate from a portable-counter visit.
func EstimateFromShortCounts(samples []Sample, f *Factors) (float64, error) {
	if f == nil {
		return 0, errors.New("aadt: nil factors")
	}
	if len(samples) == 0 {
		return 0, ErrNoSamples
	}
	sum := 0.0
	for _, s := range samples {
		if s.Volume < 0 {
			return 0, fmt.Errorf("%w: %v on %s", ErrBadVolume, s.Volume, s.Date.Format("2006-01-02"))
		}
		sum += f.Adjust(s)
	}
	return sum / float64(len(samples)), nil
}
