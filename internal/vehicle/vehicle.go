// Package vehicle implements the on-board unit's side of the measurement
// protocol (Sections II-B and II-D): receive a beacon, verify that the RSU
// belongs to the trusted authority, compute the single index value
// h_v = H(v ⊕ Kv ⊕ C[H(L ⊕ v) mod s]) mod m, and transmit it under a
// fresh one-time MAC address. The vehicle never transmits its identity or
// any other fixed value.
package vehicle

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ptm/internal/dsrc"
	"ptm/internal/pki"
	"ptm/internal/record"
	"ptm/internal/vhash"
)

// Clock abstracts time for deterministic tests.
type Clock func() time.Time

// Vehicle is one on-board unit.
type Vehicle struct {
	identity *vhash.Identity
	verifier *pki.Verifier
	clock    Clock

	mu       sync.Mutex
	rng      *rand.Rand
	reported map[visitKey]bool

	rejected uint64
}

type visitKey struct {
	loc    vhash.LocationID
	period record.PeriodID
}

// ErrNilDependency is returned when constructor arguments are missing.
var ErrNilDependency = errors.New("vehicle: nil identity or verifier")

// New creates a vehicle from its private identity and the pre-installed
// trust anchor. seed drives the one-time MAC generator; clock may be nil
// for time.Now.
func New(identity *vhash.Identity, verifier *pki.Verifier, seed int64, clock Clock) (*Vehicle, error) {
	if identity == nil || verifier == nil {
		return nil, ErrNilDependency
	}
	if clock == nil {
		clock = time.Now
	}
	return &Vehicle{
		identity: identity,
		verifier: verifier,
		clock:    clock,
		rng:      rand.New(rand.NewSource(seed)),
		reported: make(map[visitKey]bool),
	}, nil
}

// ID returns the vehicle's identifier (never transmitted; used by
// simulations for ground truth).
func (v *Vehicle) ID() vhash.VehicleID { return v.identity.ID() }

// HandleBeacon processes one received beacon and, if the RSU verifies and
// this (location, period) has not been answered yet, returns the report to
// transmit. It returns (nil, nil) for duplicate beacons of a period the
// vehicle already reported — RSUs beacon every second, but a passing
// vehicle encodes itself once per period.
func (v *Vehicle) HandleBeacon(b dsrc.Beacon) (*dsrc.Report, error) {
	key := visitKey{loc: b.Location, period: b.Period}
	// Skip the (expensive) certificate verification for periods already
	// answered. Safe: the key is only marked after a verified beacon, so
	// a forged beacon cannot suppress a future report.
	v.mu.Lock()
	done := v.reported[key]
	v.mu.Unlock()
	if done {
		return nil, nil
	}
	if _, err := v.verifier.VerifyBeacon(b.CertDER, b.Location, b.M, uint32(b.Period), b.Sig, v.clock()); err != nil {
		v.mu.Lock()
		v.rejected++
		v.mu.Unlock()
		// Per Section II-B the vehicle keeps silent on failed
		// verification; the error is surfaced for observability only.
		return nil, fmt.Errorf("vehicle: beacon rejected: %w", err)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.reported[key] {
		return nil, nil
	}
	v.reported[key] = true
	return &dsrc.Report{
		SrcMAC: dsrc.NewAnonymousMAC(v.rng),
		Period: b.Period,
		Index:  v.identity.Index(b.Location, b.M),
	}, nil
}

// PassThrough subscribes the vehicle to an RSU's channel, so that the next
// verified beacon triggers its report, and returns the unsubscribe
// function. This models a vehicle driving into radio range.
func (v *Vehicle) PassThrough(ch *dsrc.Channel) (leave func(), err error) {
	return ch.Subscribe(func(b dsrc.Beacon) {
		rep, err := v.HandleBeacon(b)
		if err != nil || rep == nil {
			return
		}
		// Loss is the channel's business; a lost report is simply a
		// vehicle the RSU never counted.
		_ = ch.Send(*rep)
	})
}

// Rejected reports how many beacons failed verification (rogue RSUs).
func (v *Vehicle) Rejected() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.rejected
}

// ResetVisits clears the per-period reporting memory; simulations call it
// between reuse of the same vehicle fleet across scenario resets.
func (v *Vehicle) ResetVisits() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.reported = make(map[visitKey]bool)
}
