// Package vehicle implements the on-board unit's side of the measurement
// protocol (Sections II-B and II-D): receive a beacon, verify that the RSU
// belongs to the trusted authority, compute the single index value
// h_v = H(v ⊕ Kv ⊕ C[H(L ⊕ v) mod s]) mod m, and transmit it under a
// fresh one-time MAC address. The vehicle never transmits its identity or
// any other fixed value.
//
// # Randomness policy
//
// This package is privacy-critical and deliberately does not import
// math/rand (enforced by ptmlint's cryptorand rule). The unlinkability of
// consecutive reports rests on the one-time MAC addresses being
// unpredictable: a seeded or otherwise guessable generator would let a
// roadside observer replay the generator and stitch reports from the same
// vehicle back together — precisely the pseudonym-linkage attack the
// paper's design avoids. New therefore draws MACs from crypto/rand.
// Simulations that need reproducible runs inject their own generator via
// NewWithMACSource; such call sites live outside this package, next to a
// //ptmlint:allow cryptorand directive where a deterministic source is
// constructed.
package vehicle

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ptm/internal/dsrc"
	"ptm/internal/pki"
	"ptm/internal/record"
	"ptm/internal/vhash"
)

// Clock abstracts time for deterministic tests.
type Clock func() time.Time

// MACSource produces the fresh one-time link-layer address used for each
// report (the SpoofMAC model of Section II-B).
type MACSource func() (dsrc.MAC, error)

// Vehicle is one on-board unit.
type Vehicle struct {
	identity *vhash.Identity //ptm:source vehicle private state
	verifier *pki.Verifier
	clock    Clock
	macs     MACSource // set at construction, never reassigned

	mu       sync.Mutex
	reported map[visitKey]bool
	rejected uint64
}

type visitKey struct {
	loc    vhash.LocationID
	period record.PeriodID
}

// ErrNilDependency is returned when constructor arguments are missing.
var ErrNilDependency = errors.New("vehicle: nil identity, verifier, or MAC source")

// New creates a vehicle from its private identity and the pre-installed
// trust anchor, drawing one-time MAC addresses from crypto/rand; clock
// may be nil for time.Now. This is the constructor for deployments.
func New(identity *vhash.Identity, verifier *pki.Verifier, clock Clock) (*Vehicle, error) {
	return NewWithMACSource(identity, verifier, clock, dsrc.NewSecureMAC)
}

// NewWithMACSource creates a vehicle with an explicit one-time MAC
// generator. Simulations use it for reproducible runs; deployments should
// use New, whose crypto/rand source keeps consecutive reports unlinkable.
func NewWithMACSource(identity *vhash.Identity, verifier *pki.Verifier, clock Clock, macs MACSource) (*Vehicle, error) {
	if identity == nil || verifier == nil || macs == nil {
		return nil, ErrNilDependency
	}
	if clock == nil {
		clock = time.Now
	}
	return &Vehicle{
		identity: identity,
		verifier: verifier,
		clock:    clock,
		macs:     macs,
		reported: make(map[visitKey]bool),
	}, nil
}

// ID returns the vehicle's identifier (never transmitted; used by
// simulations for ground truth).
func (v *Vehicle) ID() vhash.VehicleID { return v.identity.ID() }

// HandleBeacon processes one received beacon and, if the RSU verifies and
// this (location, period) has not been answered yet, returns the report to
// transmit. It returns (nil, nil) for duplicate beacons of a period the
// vehicle already reported — RSUs beacon every second, but a passing
// vehicle encodes itself once per period.
func (v *Vehicle) HandleBeacon(b dsrc.Beacon) (*dsrc.Report, error) {
	key := visitKey{loc: b.Location, period: b.Period}
	// Skip the (expensive) certificate verification for periods already
	// answered. Safe: the key is only marked after a verified beacon, so
	// a forged beacon cannot suppress a future report.
	v.mu.Lock()
	done := v.reported[key]
	v.mu.Unlock()
	if done {
		return nil, nil
	}
	if _, err := v.verifier.VerifyBeacon(b.CertDER, b.Location, b.M, uint32(b.Period), b.Sig, v.clock()); err != nil {
		v.mu.Lock()
		v.rejected++
		v.mu.Unlock()
		// Per Section II-B the vehicle keeps silent on failed
		// verification; the error is surfaced for observability only.
		return nil, fmt.Errorf("vehicle: beacon rejected: %w", err)
	}
	// Draw the one-time address outside the lock; a slow entropy source
	// must not serialize unrelated beacon handling.
	mac, err := v.macs()
	if err != nil {
		return nil, fmt.Errorf("vehicle: drawing one-time MAC: %w", err)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.reported[key] {
		return nil, nil
	}
	v.reported[key] = true
	return &dsrc.Report{
		SrcMAC: mac,
		Period: b.Period,
		Index:  v.identity.Index(b.Location, b.M),
	}, nil
}

// PassThrough subscribes the vehicle to an RSU's channel, so that the next
// verified beacon triggers its report, and returns the unsubscribe
// function. This models a vehicle driving into radio range.
func (v *Vehicle) PassThrough(ch *dsrc.Channel) (leave func(), err error) {
	return ch.Subscribe(func(b dsrc.Beacon) {
		rep, err := v.HandleBeacon(b)
		if err != nil || rep == nil {
			return
		}
		// Loss is the channel's business; a lost report is simply a
		// vehicle the RSU never counted.
		//ptmlint:allow errdrop -- radio loss is modeled by the channel, not handled by the sender
		_ = ch.Send(*rep)
	})
}

// Rejected reports how many beacons failed verification (rogue RSUs).
func (v *Vehicle) Rejected() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.rejected
}

// ResetVisits clears the per-period reporting memory; simulations call it
// between reuse of the same vehicle fleet across scenario resets.
func (v *Vehicle) ResetVisits() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.reported = make(map[visitKey]bool)
}
