package vehicle

import (
	"errors"
	"testing"
	"time"

	"ptm/internal/dsrc"
	"ptm/internal/pki"
	"ptm/internal/record"
	"ptm/internal/vhash"
)

var t0 = time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC)

func fixedClock() time.Time { return t0 }

type fixture struct {
	authority *pki.Authority
	cred      *pki.Credential
	vehicle   *Vehicle
}

func newFixture(t *testing.T, loc vhash.LocationID) *fixture {
	t.Helper()
	a, err := pki.NewAuthority(t0, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := a.IssueRSU(loc, t0, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	id, err := vhash.NewSeededIdentity(1, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(id, a.TrustAnchor(), fixedClock)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{authority: a, cred: cred, vehicle: v}
}

func (f *fixture) beacon(t *testing.T, loc vhash.LocationID, m int, p record.PeriodID) dsrc.Beacon {
	t.Helper()
	sig, err := f.cred.SignBeacon(loc, m, uint32(p))
	if err != nil {
		t.Fatal(err)
	}
	return dsrc.Beacon{Location: loc, M: m, Period: p, CertDER: f.cred.CertificateDER(), Sig: sig}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, nil); !errors.Is(err, ErrNilDependency) {
		t.Errorf("err = %v, want ErrNilDependency", err)
	}
}

func TestHandleBeaconProducesCorrectIndex(t *testing.T) {
	f := newFixture(t, 9)
	b := f.beacon(t, 9, 1<<12, 1)
	rep, err := f.vehicle.HandleBeacon(b)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("no report")
	}
	id, err := vhash.NewSeededIdentity(1, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Index != id.Index(9, 1<<12) {
		t.Errorf("index = %d, want %d", rep.Index, id.Index(9, 1<<12))
	}
	if rep.Period != 1 {
		t.Errorf("period = %d", rep.Period)
	}
}

func TestDuplicateBeaconSuppressed(t *testing.T) {
	f := newFixture(t, 9)
	b := f.beacon(t, 9, 1<<12, 1)
	if rep, err := f.vehicle.HandleBeacon(b); err != nil || rep == nil {
		t.Fatalf("first beacon: rep=%v err=%v", rep, err)
	}
	rep, err := f.vehicle.HandleBeacon(b)
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Error("second beacon of the same period produced a report")
	}
	// A new period at the same location must report again.
	b2 := f.beacon(t, 9, 1<<12, 2)
	if rep, err := f.vehicle.HandleBeacon(b2); err != nil || rep == nil {
		t.Fatalf("new period: rep=%v err=%v", rep, err)
	}
	// After ResetVisits the same period reports again (fleet reuse).
	f.vehicle.ResetVisits()
	if rep, err := f.vehicle.HandleBeacon(b); err != nil || rep == nil {
		t.Fatalf("after reset: rep=%v err=%v", rep, err)
	}
}

func TestRogueBeaconRejectedSilently(t *testing.T) {
	f := newFixture(t, 9)
	rogue, err := pki.NewAuthority(t0, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := rogue.IssueRSU(9, t0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := cred.SignBeacon(9, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.vehicle.HandleBeacon(dsrc.Beacon{Location: 9, M: 64, Period: 1, CertDER: cred.CertificateDER(), Sig: sig})
	if rep != nil {
		t.Error("rogue beacon produced a report")
	}
	if !errors.Is(err, pki.ErrUntrusted) {
		t.Errorf("err = %v, want ErrUntrusted", err)
	}
	if f.vehicle.Rejected() != 1 {
		t.Errorf("Rejected = %d", f.vehicle.Rejected())
	}
}

func TestFreshMACPerReport(t *testing.T) {
	f := newFixture(t, 9)
	macs := map[dsrc.MAC]bool{}
	for p := record.PeriodID(1); p <= 50; p++ {
		rep, err := f.vehicle.HandleBeacon(f.beacon(t, 9, 64, p))
		if err != nil {
			t.Fatal(err)
		}
		macs[rep.SrcMAC] = true
	}
	if len(macs) != 50 {
		t.Errorf("%d distinct MACs over 50 reports; addresses must be one-time", len(macs))
	}
}

func TestPassThrough(t *testing.T) {
	f := newFixture(t, 9)
	ch, err := dsrc.NewChannel(dsrc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got []dsrc.Report
	if err := ch.AttachSink(func(r dsrc.Report) { got = append(got, r) }); err != nil {
		t.Fatal(err)
	}
	leave, err := f.vehicle.PassThrough(ch)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Broadcast(f.beacon(t, 9, 1<<10, 3)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("sink saw %d reports", len(got))
	}
	leave()
	if err := ch.Broadcast(f.beacon(t, 9, 1<<10, 4)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Error("vehicle reported after leaving range")
	}
}
