package router

// Cluster-plane benchmarks over real loopback nodes (make bench-cluster
// -> BENCH_pr10.json). Every sub-benchmark name carries nodes= and
// replicas= key=value segments, which cmd/benchjson lifts into
// structured params, so baselines compare the single-node and
// replicated configurations directly:
//
//   - BenchmarkClusterUpload: routed UploadBatch to ack — the leader
//     gate, WAL append (SyncAlways), and store ingest, without
//     replication. nodes=1/replicas=1 is the single-node floor.
//   - BenchmarkClusterShip: one shipper round across all nodes after a
//     fresh batch — the incremental cost of pushing sealed WAL segments
//     to R-1 followers.
//   - BenchmarkClusterQueryP2P: point-to-point estimates through the
//     router; path=server is the colocated push-down, path=client the
//     cross-partition fetch-and-join.

import (
	"fmt"
	"testing"
	"time"

	"ptm/internal/record"
	"ptm/internal/vhash"
)

const benchUploadLocs = 8

func benchCluster(b *testing.B, nNodes, replicas int) ([]*testNode, *Router) {
	b.Helper()
	var nodes []*testNode
	for i := 0; i < nNodes; i++ {
		nodes = append(nodes, startNode(b, string(rune('a'+i))))
	}
	pushRingWire(b, ringOf(1, replicas, nodes...), nodes...)
	rt, err := Dial([]string{nodes[0].addr}, 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		//ptmlint:allow errdrop -- benchmark teardown
		_ = rt.Close()
	})
	return nodes, rt
}

// benchBatch builds one period's records for locations 1..benchUploadLocs.
// Records are immutable and deduplicated, so every iteration needs a
// fresh period; generation (a few bitmap sets) is noise against the TCP
// round trip and the SyncAlways fsync being measured.
func benchBatch(b *testing.B, period int) []*record.Record {
	b.Helper()
	recs := make([]*record.Record, benchUploadLocs)
	for j := range recs {
		recs[j] = testRecord(b, j+1, period, 1<<12)
	}
	return recs
}

func BenchmarkClusterUpload(b *testing.B) {
	for _, cfg := range []struct{ nodes, replicas int }{{1, 1}, {3, 2}, {5, 3}} {
		name := fmt.Sprintf("nodes=%d/replicas=%d/locs=%d", cfg.nodes, cfg.replicas, benchUploadLocs)
		b.Run(name, func(b *testing.B) {
			_, rt := benchCluster(b, cfg.nodes, cfg.replicas)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recs := benchBatch(b, i+1)
				if n, err := rt.UploadBatch(recs); err != nil || n != len(recs) {
					b.Fatalf("accepted %d/%d: %v", n, len(recs), err)
				}
			}
			b.ReportMetric(float64(benchUploadLocs), "records/op")
		})
	}
}

func BenchmarkClusterShip(b *testing.B) {
	for _, cfg := range []struct{ nodes, replicas int }{{3, 2}, {5, 3}} {
		name := fmt.Sprintf("nodes=%d/replicas=%d/locs=%d", cfg.nodes, cfg.replicas, benchUploadLocs)
		b.Run(name, func(b *testing.B) {
			nodes, rt := benchCluster(b, cfg.nodes, cfg.replicas)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				recs := benchBatch(b, i+1)
				if _, err := rt.UploadBatch(recs); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, tn := range nodes {
					if err := tn.node.ShipNow(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkClusterQueryP2P(b *testing.B) {
	const nodes, replicas, periods = 3, 2, 4
	tns, rt := benchCluster(b, nodes, replicas)
	for p := 1; p <= periods; p++ {
		if _, err := rt.UploadBatch(benchBatch(b, p)); err != nil {
			b.Fatal(err)
		}
	}
	shipAll(b, 2, tns...)

	// Find one colocated pair (served by the leader's fused join) and
	// one cross-partition pair (fetched and joined in the router).
	ring := rt.Ring()
	var sameA, sameB, crossA, crossB vhash.LocationID
	for i := 1; i <= benchUploadLocs && (sameA == 0 || crossA == 0); i++ {
		for j := i + 1; j <= benchUploadLocs; j++ {
			li, err := ring.Leader(vhash.LocationID(i))
			if err != nil {
				b.Fatal(err)
			}
			lj, err := ring.Leader(vhash.LocationID(j))
			if err != nil {
				b.Fatal(err)
			}
			if li.ID == lj.ID && sameA == 0 {
				sameA, sameB = vhash.LocationID(i), vhash.LocationID(j)
			}
			if li.ID != lj.ID && crossA == 0 {
				crossA, crossB = vhash.LocationID(i), vhash.LocationID(j)
			}
		}
	}
	if sameA == 0 || crossA == 0 {
		b.Skip("hash placement yielded no same- or cross-partition pair")
	}
	ps := make([]record.PeriodID, periods)
	for i := range ps {
		ps[i] = record.PeriodID(i + 1)
	}

	run := func(path string, la, lb vhash.LocationID) {
		name := fmt.Sprintf("nodes=%d/replicas=%d/path=%s/t=%d", nodes, replicas, path, periods)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rt.QueryPointToPointPersistent(la, lb, ps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("server", sameA, sameB)
	run("client", crossA, crossB)
}
