// Package router implements the cluster-aware client: the same call
// surface as a single transport.Client, routed across a cluster.
//
// Uploads go to the leader of the record's location partition, grouped
// per leader and retried through ring refreshes: a not-leader
// rejection, a leaderless partition (failover in progress), or a dead
// connection requeues the records instead of failing the batch, so a
// paced ingest stream survives a node kill and the subsequent
// `ptmcluster failover` without losing records.
//
// Queries scatter to the partition's replicas, leader first. Point and
// volume estimates are served by whichever replica answers — replicas
// converge to identical store contents, so the answers are
// bit-identical. Point-to-point estimates are partition-local when one
// node leads both locations; otherwise the router fetches both
// locations' records and runs the paper's Eq. 21 estimator client-side
// — the same core.EstimatePointToPoint the server runs, over the same
// record sets, producing the same bits.
package router

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ptm/internal/cluster"
	"ptm/internal/core"
	"ptm/internal/record"
	"ptm/internal/transport"
	"ptm/internal/vhash"
)

const (
	// maxUploadAttempts bounds the requeue loop; with the capped backoff
	// below it rides out several seconds of failover window.
	maxUploadAttempts = 12
	// backoffStep/backoffCap shape the deterministic retry backoff.
	backoffStep = 150 * time.Millisecond
	backoffCap  = time.Second
)

// Router is a cluster-aware client. Safe for concurrent use.
type Router struct {
	timeout time.Duration
	seeds   []string

	// mu guards the ring view and the per-member client table; it is
	// never held across a network call.
	mu      sync.Mutex
	ring    *cluster.Ring                //ptm:guardedby mu
	clients map[string]*transport.Client //ptm:guardedby mu (by member ID)
	s       int                          //ptm:guardedby mu (bitmap parameter, from node status)
	closed  bool                         //ptm:guardedby mu
}

// Dial bootstraps a router from seed addresses: the first reachable
// seed supplies the ring, and any Up member supplies the cluster's
// bitmap parameter s (needed for client-side point-to-point joins).
//
//ptm:exclusive Dial
func Dial(seeds []string, timeout time.Duration) (*Router, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("router: no seed addresses")
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	r := &Router{timeout: timeout, seeds: seeds, clients: make(map[string]*transport.Client)}
	if err := r.Refresh(); err != nil {
		return nil, err
	}
	if err := r.fetchS(); err != nil {
		//ptmlint:allow errdrop -- the fetch error is what the caller sees; close is best-effort cleanup
		_ = r.Close()
		return nil, err
	}
	return r, nil
}

// Ring returns a copy of the router's current ring view.
func (r *Router) Ring() *cluster.Ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ring == nil {
		return nil
	}
	return r.ring.Clone()
}

// S returns the cluster's bitmap parameter.
func (r *Router) S() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.s
}

// Close releases every member connection.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	clients := r.clients
	r.clients = make(map[string]*transport.Client)
	r.mu.Unlock()
	var first error
	for id, c := range clients {
		if err := c.Close(); err != nil && first == nil {
			first = fmt.Errorf("router: closing %s: %w", id, err)
		}
	}
	return first
}

// Refresh re-fetches the ring: every serving member of the current
// view first (cached connections or fresh dials — the seed may be the
// node that just died), then the seeds. A fetched ring is adopted only
// if it is newer than the view in hand, so a stale source cannot roll
// the router backwards.
func (r *Router) Refresh() error {
	var firstErr error
	if ring := r.ringSnapshot(); ring != nil {
		for _, m := range ring.Members {
			if m.Addr == "" || m.State == cluster.StateLeft || m.State == cluster.StateDown {
				continue
			}
			var fetched *cluster.Ring
			err := r.callNode(m, func(c *transport.Client) error {
				var cerr error
				fetched, cerr = fetchRing(c)
				return cerr
			})
			if err == nil {
				r.adopt(fetched)
				return nil
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	for _, addr := range r.seeds {
		c, err := transport.Dial(addr, r.timeout)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ring, err := fetchRing(c)
		//ptmlint:allow errdrop -- throwaway bootstrap connection; the ring fetch outcome is what matters
		_ = c.Close()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		r.adopt(ring)
		return nil
	}
	return fmt.Errorf("router: no reachable ring source: %w", firstErr)
}

func fetchRing(c *transport.Client) (*cluster.Ring, error) {
	resp, err := c.Call(transport.MsgRingGet, nil, transport.MsgRing)
	if err != nil {
		return nil, err
	}
	body, err := cluster.DecodeResponse(resp)
	if err != nil {
		return nil, err
	}
	return cluster.DecodeRing(body)
}

// adopt installs a fetched ring if newer, pruning clients of members
// that left.
func (r *Router) adopt(ring *cluster.Ring) {
	r.mu.Lock()
	if r.ring != nil && ring.Epoch <= r.ring.Epoch {
		r.mu.Unlock()
		return
	}
	r.ring = ring
	var stale []*transport.Client
	for id, c := range r.clients {
		m, ok := ring.Member(id)
		if !ok || m.State == cluster.StateLeft {
			stale = append(stale, c)
			delete(r.clients, id)
		}
	}
	r.mu.Unlock()
	for _, c := range stale {
		//ptmlint:allow errdrop -- best-effort teardown of a departed member's connection
		_ = c.Close()
	}
}

// fetchS learns the bitmap parameter from any Up member's status.
func (r *Router) fetchS() error {
	ring := r.ringSnapshot()
	var firstErr error
	for _, m := range ring.Members {
		if m.State != cluster.StateUp {
			continue
		}
		var st cluster.Status
		err := r.callNode(m, func(c *transport.Client) error {
			resp, err := c.Call(transport.MsgStatus, nil, transport.MsgStatusResp)
			if err != nil {
				return err
			}
			body, err := cluster.DecodeResponse(resp)
			if err != nil {
				return err
			}
			st, err = cluster.DecodeStatus(body)
			return err
		})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if st.S <= 0 {
			return fmt.Errorf("router: member %s reports s=%d", m.ID, st.S)
		}
		r.mu.Lock()
		r.s = st.S
		r.mu.Unlock()
		return nil
	}
	return fmt.Errorf("router: no member answered a status probe: %w", firstErr)
}

func (r *Router) ringSnapshot() *cluster.Ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring
}

// client returns (dialing on demand) the member's connection.
func (r *Router) client(m cluster.Member) (*transport.Client, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, fmt.Errorf("router: closed")
	}
	c := r.clients[m.ID]
	r.mu.Unlock()
	if c != nil {
		return c, nil
	}
	c, err := transport.Dial(m.Addr, r.timeout)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if existing := r.clients[m.ID]; existing != nil {
		r.mu.Unlock()
		//ptmlint:allow errdrop -- lost the insert race; the duplicate dial is discarded
		_ = c.Close()
		return existing, nil
	}
	r.clients[m.ID] = c
	r.mu.Unlock()
	return c, nil
}

// callNode runs fn against the member, retrying once through Redial on
// a transport failure (the member may have restarted since last use).
func (r *Router) callNode(m cluster.Member, fn func(*transport.Client) error) error {
	c, err := r.client(m)
	if err != nil {
		return err
	}
	err = fn(c)
	if err != nil && !transport.IsRemote(err) {
		if rerr := c.Redial(); rerr == nil {
			err = fn(c)
		}
	}
	return err
}

// Upload sends one record to its partition leader.
func (r *Router) Upload(rec *record.Record) error {
	n, err := r.UploadBatch([]*record.Record{rec})
	if err != nil {
		return err
	}
	if n != 1 {
		return fmt.Errorf("router: upload acked %d records, want 1", n)
	}
	return nil
}

// UploadBatch routes records to their partition leaders and returns how
// many are durably stored cluster-side. Records whose partition is
// momentarily unroutable (leader change, failover in progress, dead
// connection) are requeued across ring refreshes with a deterministic
// capped backoff. A record the cluster already holds counts as acked —
// retries after a partial failure legitimately re-send records the
// first attempt stored, and immutable deduplicated records make the
// duplicate ack equivalent to the original.
func (r *Router) UploadBatch(recs []*record.Record) (int, error) {
	accepted := 0
	remaining := recs
	var lastErr error
	for attempt := 0; attempt < maxUploadAttempts && len(remaining) > 0; attempt++ {
		if attempt > 0 {
			backoff := time.Duration(attempt) * backoffStep
			if backoff > backoffCap {
				backoff = backoffCap
			}
			time.Sleep(backoff)
			if err := r.Refresh(); err != nil {
				lastErr = err
				continue
			}
		}
		ring := r.ringSnapshot()
		groups := make(map[string][]*record.Record)
		leaders := make(map[string]cluster.Member)
		var retry []*record.Record
		for _, rec := range remaining {
			lead, err := ring.Leader(rec.Location)
			if err != nil {
				// Leaderless partition: hold the records for the
				// failover to complete.
				retry = append(retry, rec)
				lastErr = err
				continue
			}
			groups[lead.ID] = append(groups[lead.ID], rec)
			leaders[lead.ID] = lead
		}
		for id, group := range groups {
			var n int
			err := r.callNode(leaders[id], func(c *transport.Client) error {
				var cerr error
				n, cerr = c.UploadBatch(group)
				return cerr
			})
			switch {
			case err == nil:
				accepted += n
			case cluster.IsNotLeader(err), cluster.IsLeaderless(err):
				retry = append(retry, group...)
				lastErr = err
			case isDuplicate(err):
				// Everything in the group is already stored (or was
				// stored by the partial attempt this retry repeats).
				accepted += len(group)
			case transport.IsRemote(err):
				return accepted, fmt.Errorf("router: upload to %s: %w", id, err)
			default:
				retry = append(retry, group...)
				lastErr = err
			}
		}
		remaining = retry
	}
	if len(remaining) > 0 {
		return accepted, fmt.Errorf("router: %d records unacked after %d attempts: %w",
			len(remaining), maxUploadAttempts, lastErr)
	}
	return accepted, nil
}

// isDuplicate matches the store's duplicate sentinel through transport
// wrapping.
func isDuplicate(err error) bool {
	return err != nil && strings.Contains(err.Error(), "already stored")
}

// queryCandidates orders the replicas to ask for loc: leader first,
// then the other Up members of the replica set.
func (r *Router) queryCandidates(ring *cluster.Ring, loc vhash.LocationID) ([]cluster.Member, error) {
	set := ring.ReplicaSet(loc)
	var cands []cluster.Member
	if lead, err := ring.Leader(loc); err == nil {
		cands = append(cands, lead)
	}
	for _, m := range set {
		if m.State != cluster.StateUp {
			continue
		}
		dup := false
		for _, c := range cands {
			if c.ID == m.ID {
				dup = true
			}
		}
		if !dup {
			cands = append(cands, m)
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("router: location %d has no queryable replica", loc)
	}
	return cands, nil
}

// queryReplicas tries fn on each candidate replica in order. A remote
// (application-level) answer is definitive — replicas converge, so a
// not-found from a live replica is a real not-found; transport failures
// fall through to the next replica.
func (r *Router) queryReplicas(loc vhash.LocationID, fn func(*transport.Client) error) error {
	ring := r.ringSnapshot()
	cands, err := r.queryCandidates(ring, loc)
	if err != nil {
		return err
	}
	var firstErr error
	for _, m := range cands {
		err := r.callNode(m, fn)
		if err == nil || transport.IsRemote(err) {
			return err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return fmt.Errorf("router: no replica of location %d reachable: %w", loc, firstErr)
}

// QueryVolume estimates one period's volume (Eq. 1).
func (r *Router) QueryVolume(loc vhash.LocationID, p record.PeriodID) (float64, error) {
	var v float64
	err := r.queryReplicas(loc, func(c *transport.Client) error {
		var cerr error
		v, cerr = c.QueryVolume(loc, p)
		return cerr
	})
	return v, err
}

// QueryPointPersistent estimates point persistent traffic (Eq. 12).
func (r *Router) QueryPointPersistent(loc vhash.LocationID, periods []record.PeriodID) (float64, error) {
	var v float64
	err := r.queryReplicas(loc, func(c *transport.Client) error {
		var cerr error
		v, cerr = c.QueryPointPersistent(loc, periods)
		return cerr
	})
	return v, err
}

// QueryPointToPointPersistent estimates point-to-point persistent
// traffic (Eq. 21). When one node leads both locations the join runs
// server-side; otherwise the router fetches both partitions' records
// and runs the estimator locally — same inputs, same code path, same
// bits as the single-node server (proven by TestRouterP2PBitIdentity).
func (r *Router) QueryPointToPointPersistent(locA, locB vhash.LocationID, periods []record.PeriodID) (float64, error) {
	ring := r.ringSnapshot()
	leadA, errA := ring.Leader(locA)
	leadB, errB := ring.Leader(locB)
	if errA == nil && errB == nil && leadA.ID == leadB.ID {
		var v float64
		err := r.callNode(leadA, func(c *transport.Client) error {
			var cerr error
			v, cerr = c.QueryPointToPointPersistent(locA, locB, periods)
			return cerr
		})
		if err == nil || transport.IsRemote(err) {
			return v, err
		}
		// Transport failure: fall through to the fetch path, which can
		// use any replica.
	}
	setA, err := r.fetchSet(locA, periods)
	if err != nil {
		return 0, err
	}
	setB, err := r.fetchSet(locB, periods)
	if err != nil {
		return 0, err
	}
	res, err := core.EstimatePointToPoint(setA, setB, r.S())
	if err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

// fetchSet pulls loc's records from a replica and builds the record
// set for exactly the requested periods, mirroring the server's Collect
// semantics: every requested period must be present.
func (r *Router) fetchSet(loc vhash.LocationID, periods []record.PeriodID) (*record.Set, error) {
	if len(periods) == 0 {
		return nil, fmt.Errorf("router: no periods requested for location %d", loc)
	}
	var recs []*record.Record
	err := r.queryReplicas(loc, func(c *transport.Client) error {
		resp, err := c.Call(transport.MsgFetchRecords, cluster.EncodeFetch(loc), transport.MsgRecords)
		if err != nil {
			return err
		}
		body, err := cluster.DecodeResponse(resp)
		if err != nil {
			return err
		}
		recs, err = transport.DecodeRecordBatch(body)
		return err
	})
	if err != nil {
		return nil, err
	}
	byPeriod := make(map[record.PeriodID]*record.Record, len(recs))
	for _, rec := range recs {
		byPeriod[rec.Period] = rec
	}
	picked := make([]*record.Record, 0, len(periods))
	for _, p := range periods {
		rec, ok := byPeriod[p]
		if !ok {
			return nil, fmt.Errorf("router: location %d period %d not stored", loc, p)
		}
		picked = append(picked, rec)
	}
	return record.NewSet(picked)
}

// ListLocations unions the locations of every Up member.
func (r *Router) ListLocations() ([]vhash.LocationID, error) {
	ring := r.ringSnapshot()
	seen := make(map[vhash.LocationID]bool)
	asked := 0
	for _, m := range ring.Members {
		if m.State != cluster.StateUp {
			continue
		}
		var locs []vhash.LocationID
		err := r.callNode(m, func(c *transport.Client) error {
			var cerr error
			locs, cerr = c.ListLocations()
			return cerr
		})
		if err != nil {
			return nil, fmt.Errorf("router: listing locations on %s: %w", m.ID, err)
		}
		asked++
		for _, loc := range locs {
			seen[loc] = true
		}
	}
	if asked == 0 {
		return nil, fmt.Errorf("router: no Up member to list locations from")
	}
	out := make([]vhash.LocationID, 0, len(seen))
	for loc := range seen {
		out = append(out, loc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// ListPeriods lists the stored periods at one location.
func (r *Router) ListPeriods(loc vhash.LocationID) ([]record.PeriodID, error) {
	var periods []record.PeriodID
	err := r.queryReplicas(loc, func(c *transport.Client) error {
		var cerr error
		periods, cerr = c.ListPeriods(loc)
		return cerr
	})
	return periods, err
}
