package router

// End-to-end router tests over real loopback nodes: upload routing,
// scatter-gather queries, cross-partition point-to-point bit-identity
// against a single-node reference, and retry behavior across leadership
// changes and failover.

import (
	"net"
	"path/filepath"
	"testing"
	"time"

	"ptm/internal/central"
	"ptm/internal/cluster"
	"ptm/internal/record"
	"ptm/internal/transport"
	"ptm/internal/vhash"
	"ptm/internal/wal"
)

const testS = 3

type testNode struct {
	node *cluster.Node
	srv  *transport.Server
	addr string
}

func startNode(t testing.TB, id string) *testNode {
	t.Helper()
	dir := t.TempDir()
	d, err := central.OpenDurable(dir, testS, central.DefaultShards,
		wal.Options{Sync: wal.SyncAlways, SegmentSize: 1 << 14}, 0)
	if err != nil {
		t.Fatal(err)
	}
	n, err := cluster.NewNode(d, cluster.Config{
		ID:          id,
		RingPath:    filepath.Join(dir, "ring.json"),
		DialTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.NewServer(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	tn := &testNode{node: n, srv: srv, addr: ln.Addr().String()}
	t.Cleanup(func() {
		_ = tn.node.Close()
		_ = tn.srv.Close()
		_ = tn.node.Durable.Close()
	})
	return tn
}

// pushRingWire pushes a ring over the wire, as ptmcluster does.
func pushRingWire(t testing.TB, r *cluster.Ring, nodes ...*testNode) {
	t.Helper()
	enc, err := cluster.EncodeRing(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range nodes {
		c, err := transport.Dial(tn.addr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Call(transport.MsgRingSet, enc, transport.MsgRing)
		if err == nil {
			_, err = cluster.DecodeResponse(resp)
		}
		if cerr := c.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if err != nil {
			t.Fatalf("pushing ring epoch %d to %s: %v", r.Epoch, tn.node.ID(), err)
		}
	}
}

func ringOf(epoch uint64, replicas int, nodes ...*testNode) *cluster.Ring {
	r := &cluster.Ring{Epoch: epoch, Replicas: replicas, VNodes: cluster.DefaultVNodes}
	for _, tn := range nodes {
		r.Members = append(r.Members, cluster.Member{ID: tn.node.ID(), Addr: tn.addr, State: cluster.StateUp})
	}
	r.SortMembers()
	return r
}

func testRecord(t testing.TB, loc, period, m int) *record.Record {
	t.Helper()
	rec, err := record.New(vhash.LocationID(loc), record.PeriodID(period), m)
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(loc)*2654435761 + uint64(period)*40503
	for k := 0; k < 6+loc%4+period%3; k++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		rec.Bitmap.Set(seed % uint64(m))
	}
	return rec
}

func shipAll(t testing.TB, rounds int, nodes ...*testNode) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		for _, tn := range nodes {
			if err := tn.node.ShipNow(); err != nil {
				t.Fatalf("round %d: node %s: %v", i, tn.node.ID(), err)
			}
		}
	}
}

// clusterOf starts n nodes with an all-Up R=2 ring and a router dialed
// at the first node only (seed discovery finds the rest).
func clusterOf(t testing.TB, n int) ([]*testNode, *Router, *central.Server) {
	t.Helper()
	var nodes []*testNode
	for i := 0; i < n; i++ {
		nodes = append(nodes, startNode(t, string(rune('a'+i))))
	}
	pushRingWire(t, ringOf(1, 2, nodes...), nodes...)
	rt, err := Dial([]string{nodes[0].addr}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	ref, err := central.NewServer(testS)
	if err != nil {
		t.Fatal(err)
	}
	return nodes, rt, ref
}

func TestRouterUploadAndQueryDifferential(t *testing.T) {
	nodes, rt, ref := clusterOf(t, 3)
	const m = 64
	locs := []int{1, 2, 3, 4, 5, 6}
	periods := []record.PeriodID{1, 2, 3, 4, 5}

	var batch []*record.Record
	for _, loc := range locs {
		for _, p := range periods {
			if err := ref.Ingest(testRecord(t, loc, int(p), m)); err != nil {
				t.Fatal(err)
			}
			batch = append(batch, testRecord(t, loc, int(p), m))
		}
	}
	n, err := rt.UploadBatch(batch)
	if err != nil {
		t.Fatalf("UploadBatch: %v", err)
	}
	if n != len(batch) {
		t.Fatalf("UploadBatch acked %d/%d", n, len(batch))
	}
	shipAll(t, 3, nodes...)

	gotLocs, err := rt.ListLocations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotLocs) != len(locs) {
		t.Fatalf("ListLocations = %v, want %d locations", gotLocs, len(locs))
	}
	for _, loc := range locs {
		ps, err := rt.ListPeriods(vhash.LocationID(loc))
		if err != nil || len(ps) != len(periods) {
			t.Fatalf("ListPeriods(%d) = %v, %v", loc, ps, err)
		}
		for _, p := range periods {
			want, err := ref.Volume(vhash.LocationID(loc), p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rt.QueryVolume(vhash.LocationID(loc), p)
			if err != nil {
				t.Fatalf("QueryVolume(%d,%d): %v", loc, p, err)
			}
			if got != want {
				t.Fatalf("QueryVolume(%d,%d) = %v, want %v", loc, p, got, want)
			}
		}
		wantPt, err := ref.PointPersistent(vhash.LocationID(loc), periods)
		if err != nil {
			t.Fatal(err)
		}
		gotPt, err := rt.QueryPointPersistent(vhash.LocationID(loc), periods)
		if err != nil {
			t.Fatalf("QueryPointPersistent(%d): %v", loc, err)
		}
		if gotPt != wantPt.Estimate {
			t.Fatalf("QueryPointPersistent(%d) = %v, want %v", loc, gotPt, wantPt.Estimate)
		}
	}

	// A duplicate re-upload is acked (the records are durable).
	n, err = rt.UploadBatch(batch[:4])
	if err != nil || n != 4 {
		t.Fatalf("duplicate re-upload = %d, %v; want 4 acked", n, err)
	}
}

func TestRouterP2PBitIdentity(t *testing.T) {
	nodes, rt, ref := clusterOf(t, 3)
	const m = 64
	locs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	periods := []record.PeriodID{1, 2, 3, 4}
	var batch []*record.Record
	for _, loc := range locs {
		for _, p := range periods {
			if err := ref.Ingest(testRecord(t, loc, int(p), m)); err != nil {
				t.Fatal(err)
			}
			batch = append(batch, testRecord(t, loc, int(p), m))
		}
	}
	if _, err := rt.UploadBatch(batch); err != nil {
		t.Fatal(err)
	}
	shipAll(t, 3, nodes...)

	ring := rt.Ring()
	sameLeader, crossLeader := 0, 0
	for i := 0; i < len(locs); i++ {
		for j := i + 1; j < len(locs); j++ {
			la, lb := vhash.LocationID(locs[i]), vhash.LocationID(locs[j])
			leadA, err := ring.Leader(la)
			if err != nil {
				t.Fatal(err)
			}
			leadB, err := ring.Leader(lb)
			if err != nil {
				t.Fatal(err)
			}
			if leadA.ID == leadB.ID {
				sameLeader++
			} else {
				crossLeader++
			}
			want, err := ref.PointToPointPersistent(la, lb, periods)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rt.QueryPointToPointPersistent(la, lb, periods)
			if err != nil {
				t.Fatalf("p2p(%d,%d): %v", la, lb, err)
			}
			if got != want.Estimate {
				t.Fatalf("p2p(%d,%d) = %v, want %v (leaders %s/%s)",
					la, lb, got, want.Estimate, leadA.ID, leadB.ID)
			}
		}
	}
	// The test is only meaningful if both code paths ran.
	if sameLeader == 0 || crossLeader == 0 {
		t.Fatalf("degenerate leader split: same=%d cross=%d", sameLeader, crossLeader)
	}

	// A missing period must fail, mirroring the server's Collect.
	if _, err := rt.QueryPointToPointPersistent(1, 2, []record.PeriodID{1, 99}); err == nil {
		t.Fatal("p2p over a missing period succeeded")
	}
}

func TestRouterRefreshOnLeadershipChange(t *testing.T) {
	nodes, rt, _ := clusterOf(t, 3)
	const m = 64

	// Find a location led by nodes[0], then drain nodes[0] behind the
	// router's back. The router's first attempt hits the old leader,
	// gets the not-leader rejection, refreshes, and lands the record.
	ring := rt.Ring()
	var loc int
	for l := 1; l < 256; l++ {
		lead, err := ring.Leader(vhash.LocationID(l))
		if err != nil {
			t.Fatal(err)
		}
		if lead.ID == nodes[0].node.ID() {
			loc = l
			break
		}
	}
	if loc == 0 {
		t.Fatal("node a leads nothing in 255 locations")
	}
	drained := ring.Clone()
	drained.Epoch = 2
	for i := range drained.Members {
		if drained.Members[i].ID == nodes[0].node.ID() {
			drained.Members[i].State = cluster.StateDraining
		}
	}
	pushRingWire(t, drained, nodes...)

	if err := rt.Upload(testRecord(t, loc, 1, m)); err != nil {
		t.Fatalf("upload across leadership change: %v", err)
	}
	if rt.Ring().Epoch != 2 {
		t.Fatalf("router did not adopt the refreshed ring (epoch %d)", rt.Ring().Epoch)
	}
	if _, err := rt.QueryVolume(vhash.LocationID(loc), 1); err != nil {
		t.Fatalf("query after refresh: %v", err)
	}
}

func TestRouterUploadSurvivesFailover(t *testing.T) {
	nodes, rt, _ := clusterOf(t, 3)
	const m = 64
	ring := rt.Ring()

	victim := nodes[0]
	var loc int
	for l := 1; l < 256; l++ {
		lead, err := ring.Leader(vhash.LocationID(l))
		if err != nil {
			t.Fatal(err)
		}
		if lead.ID == victim.node.ID() {
			loc = l
			break
		}
	}
	if loc == 0 {
		t.Fatal("victim leads nothing")
	}
	if err := rt.Upload(testRecord(t, loc, 1, m)); err != nil {
		t.Fatal(err)
	}
	shipAll(t, 2, nodes...)

	// Kill the leader, then complete the failover while the router is
	// already retrying an upload to the dead node.
	if err := victim.srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := victim.node.Close(); err != nil {
		t.Fatal(err)
	}
	survivors := nodes[1:]

	done := make(chan error, 1)
	go func() { done <- rt.Upload(testRecord(t, loc, 2, m)) }()

	time.Sleep(250 * time.Millisecond) // let the first attempts fail
	down := ring.Clone()
	down.Epoch = 2
	for i := range down.Members {
		if down.Members[i].ID == victim.node.ID() {
			down.Members[i].State = cluster.StateDown
		}
	}
	// Promote the survivor with the highest applied watermark.
	best := survivors[0]
	for _, tn := range survivors[1:] {
		if tn.node.StatusSnapshot().Applied[victim.node.ID()] > best.node.StatusSnapshot().Applied[victim.node.ID()] {
			best = tn
		}
	}
	down.Promoted = map[string]string{victim.node.ID(): best.node.ID()}
	pushRingWire(t, down, survivors...)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("upload across failover: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("upload hung across failover")
	}

	// Both periods are queryable from the survivors; period 1 was
	// replicated before the kill, period 2 landed on the new leader.
	for _, p := range []record.PeriodID{1, 2} {
		if _, err := rt.QueryVolume(vhash.LocationID(loc), p); err != nil {
			t.Fatalf("volume(%d,%d) after failover: %v", loc, p, err)
		}
	}
}
