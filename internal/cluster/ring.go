// Package cluster turns N centrald processes into one logical store.
//
// The paper's estimators only ever join bitmaps of the same location
// (point persistent, Eq. 12) or of a fixed location pair (point-to-point
// persistent, Eq. 21), so the location space partitions cleanly: a
// consistent-hash ring maps every location to an ordered replica set of
// R nodes, the first eligible of which leads the partition. Records are
// immutable and deduplicated by (location, period), which makes
// replication trivially convergent — any delivery order, any number of
// redeliveries, and any mix of full and incremental sync reach the same
// store contents, and therefore bit-identical estimates.
//
// The subsystem has four parts:
//
//   - Ring (this file): the versioned membership + partition map. Pure
//     data, JSON on the wire and on disk, epoch-ordered so every node
//     and client converges on the newest configuration it has seen.
//   - Node (node.go): wraps a WAL-backed central store; enforces
//     leader-only ingest, answers cluster frames (transport.Extension),
//     and runs the replication shipper.
//   - Shipper (repl.go): ships sealed WAL segments leader→followers and
//     holder→leader, with per-peer watermarks, catch-up, and full-state
//     resync when checkpoint compaction outruns a follower.
//   - Router (router/): the cluster-aware client — routes uploads to
//     partition leaders, scatter-gathers queries, computes
//     cross-partition point-to-point joins client-side.
package cluster

import (
	"encoding/json"
	"fmt"
	"sort"

	"ptm/internal/vhash"
)

// State is a member's lifecycle state in the ring.
type State uint8

// Member lifecycle states.
const (
	// StateJoining: the member owns its ring positions (replication is
	// filling it) but never leads and is not queried.
	StateJoining State = iota
	// StateUp: fully serving; may lead partitions.
	StateUp
	// StateDraining: being emptied for removal. Owns no ring positions —
	// its partitions' successors take over and replication re-ships.
	StateDraining
	// StateDown: failed. Still owns its positions (its data is on its
	// WAL); an explicit failover promotes a successor to lead them.
	StateDown
	// StateLeft: removed. Owns nothing; kept in the member list as a
	// tombstone so late ring pushes still reach a consistent view.
	StateLeft
)

var stateNames = map[State]string{
	StateJoining:  "joining",
	StateUp:       "up",
	StateDraining: "draining",
	StateDown:     "down",
	StateLeft:     "left",
}

// String implements fmt.Stringer.
func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// MarshalJSON encodes the state by name, keeping ring.json and the wire
// format human-auditable.
func (s State) MarshalJSON() ([]byte, error) {
	n, ok := stateNames[s]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown state %d", uint8(s))
	}
	return json.Marshal(n)
}

// UnmarshalJSON decodes a state name.
func (s *State) UnmarshalJSON(b []byte) error {
	var n string
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	for st, name := range stateNames {
		if name == n {
			*s = st
			return nil
		}
	}
	return fmt.Errorf("cluster: unknown state %q", n)
}

// Member is one node in the ring.
type Member struct {
	// ID is the stable node identity; ring positions hash the ID (never
	// the address), so a node can move hosts without moving data.
	ID string `json:"id"`
	// Addr is the node's transport address.
	Addr string `json:"addr"`
	// State is the lifecycle state.
	State State `json:"state"`
}

// Ring is a versioned cluster configuration: the member list and the
// parameters of the consistent-hash partition map. Rings are immutable
// values — mutate a Clone, bump Epoch, and push; every node and router
// adopts the highest epoch it has seen (last-writer-wins on a single
// admin plane).
type Ring struct {
	// Epoch orders configurations; a node accepts a pushed ring iff its
	// epoch is strictly newer than the one in effect.
	Epoch uint64 `json:"epoch"`
	// Replicas is R: the number of nodes owning each location.
	Replicas int `json:"replicas"`
	// VNodes is the number of ring positions per member; more positions
	// smooth the partition sizes and shrink rebalance movement.
	VNodes int `json:"vnodes"`
	// Members, sorted by ID. Order does not affect the hash placement
	// (positions are hashed from IDs), only display and iteration.
	Members []Member `json:"members"`
	// Promoted records explicit failovers: down member ID -> the ID of
	// the most-caught-up survivor the admin promoted. The presence of an
	// entry authorizes successors to lead the down member's partitions.
	Promoted map[string]string `json:"promoted,omitempty"`
}

// DefaultVNodes is the ring-position count per member used by
// `ptmcluster init` unless overridden.
const DefaultVNodes = 64

// fnv1a64 is FNV-1a spelled out so the partition map is a frozen,
// dependency-free function of (member IDs, vnode index, location): the
// golden ring fixtures pin its outputs, and any change shows up as a
// deliberate fixture diff.
//
//ptm:inline
func fnv1aInit() uint64 { return 14695981039346656037 }

//ptm:inline
func fnv1aByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * 1099511628211 }

func fnv1aString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnv1aByte(h, s[i])
	}
	return h
}

// mix64 is the murmur3 finalizer. Raw FNV-1a of the short, structured
// inputs here ("n03#\x07\x00\x00\x00") clusters badly on the ring —
// measured member shares ranged 5%–30% at 64 vnodes — because trailing
// near-constant bytes only churn the hash through multiplications. The
// finalizer's shift-xor-multiply cascade gives full avalanche, which
// brings shares to the ~1/N ± 1/sqrt(vnodes) a consistent-hash ring
// needs.
//
//ptm:inline
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// pointFor places one of a member's vnodes on the ring.
func pointFor(id string, vnode int) uint64 {
	h := fnv1aString(fnv1aInit(), id)
	h = fnv1aByte(h, '#')
	for i := 0; i < 4; i++ {
		h = fnv1aByte(h, byte(vnode>>(8*i)))
	}
	return mix64(h)
}

// locPoint places a location on the ring.
func locPoint(loc vhash.LocationID) uint64 {
	h := fnv1aInit()
	for i := 0; i < 8; i++ {
		h = fnv1aByte(h, byte(uint64(loc)>>(8*i)))
	}
	return mix64(h)
}

// Validate checks structural invariants.
func (r *Ring) Validate() error {
	if r.Replicas < 1 {
		return fmt.Errorf("cluster: ring replicas %d < 1", r.Replicas)
	}
	if r.VNodes < 1 {
		return fmt.Errorf("cluster: ring vnodes %d < 1", r.VNodes)
	}
	if len(r.Members) == 0 {
		return fmt.Errorf("cluster: ring has no members")
	}
	seen := make(map[string]bool, len(r.Members))
	owners := 0
	for _, m := range r.Members {
		if m.ID == "" {
			return fmt.Errorf("cluster: member with empty ID")
		}
		if seen[m.ID] {
			return fmt.Errorf("cluster: duplicate member ID %q", m.ID)
		}
		seen[m.ID] = true
		if m.Addr == "" && m.State != StateLeft {
			return fmt.Errorf("cluster: member %q has no address", m.ID)
		}
		if m.State == StateJoining || m.State == StateUp || m.State == StateDown {
			owners++
		}
	}
	if owners == 0 {
		return fmt.Errorf("cluster: ring has no position-owning members")
	}
	for down, standby := range r.Promoted {
		dm, ok := r.Member(down)
		if !ok {
			return fmt.Errorf("cluster: promotion for unknown member %q", down)
		}
		if dm.State != StateDown {
			return fmt.Errorf("cluster: promotion for member %q in state %v (want down)", down, dm.State)
		}
		sm, ok := r.Member(standby)
		if !ok {
			return fmt.Errorf("cluster: promotion of unknown member %q", standby)
		}
		if sm.State != StateUp {
			return fmt.Errorf("cluster: promoted member %q in state %v (want up)", standby, sm.State)
		}
	}
	return nil
}

// Member looks a member up by ID.
func (r *Ring) Member(id string) (Member, bool) {
	for _, m := range r.Members {
		if m.ID == id {
			return m, true
		}
	}
	return Member{}, false
}

// Clone deep-copies the ring for mutate-and-push.
func (r *Ring) Clone() *Ring {
	c := &Ring{Epoch: r.Epoch, Replicas: r.Replicas, VNodes: r.VNodes}
	c.Members = append([]Member(nil), r.Members...)
	if r.Promoted != nil {
		c.Promoted = make(map[string]string, len(r.Promoted))
		for k, v := range r.Promoted {
			c.Promoted[k] = v
		}
	}
	return c
}

// SortMembers orders the member list by ID (display/diff stability; the
// partition map does not depend on it).
func (r *Ring) SortMembers() {
	sort.Slice(r.Members, func(i, j int) bool { return r.Members[i].ID < r.Members[j].ID })
}

// ownsPositions reports whether a member's vnodes participate in the
// walk. Draining and departed members own nothing — their partitions
// fall to the next owners and replication re-ships.
func ownsPositions(s State) bool {
	return s == StateJoining || s == StateUp || s == StateDown
}

// ringPoint is one vnode position.
type ringPoint struct {
	point  uint64
	member int // index into Members
}

// points builds the sorted vnode positions of all owning members. Ties
// on the hash value break by member ID then vnode order, so the walk is
// total and deterministic.
func (r *Ring) points() []ringPoint {
	pts := make([]ringPoint, 0, len(r.Members)*r.VNodes)
	for mi, m := range r.Members {
		if !ownsPositions(m.State) {
			continue
		}
		for v := 0; v < r.VNodes; v++ {
			pts = append(pts, ringPoint{point: pointFor(m.ID, v), member: mi})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].point != pts[j].point {
			return pts[i].point < pts[j].point
		}
		a, b := r.Members[pts[i].member], r.Members[pts[j].member]
		return a.ID < b.ID
	})
	return pts
}

// ReplicaSet returns the ordered replica set for loc: walking clockwise
// from the location's hash point, the first Replicas distinct owning
// members. Fewer than Replicas members may be returned when the ring is
// smaller than R. The first element is the partition's primary (its
// leader when eligible — see Leader).
func (r *Ring) ReplicaSet(loc vhash.LocationID) []Member {
	pts := r.points()
	return r.walk(pts, loc)
}

// walk performs the clockwise collection over prebuilt points.
func (r *Ring) walk(pts []ringPoint, loc vhash.LocationID) []Member {
	if len(pts) == 0 {
		return nil
	}
	want := r.Replicas
	h := locPoint(loc)
	start := sort.Search(len(pts), func(i int) bool { return pts[i].point >= h })
	out := make([]Member, 0, want)
	taken := make(map[int]bool, want)
	for i := 0; i < len(pts) && len(out) < want; i++ {
		p := pts[(start+i)%len(pts)]
		if taken[p.member] {
			continue
		}
		taken[p.member] = true
		out = append(out, r.Members[p.member])
	}
	return out
}

// NoLeaderPrefix prefixes every ErrNoLeader message so routers can
// recognize the condition through transport wrapping (see IsLeaderless).
const NoLeaderPrefix = "cluster: leaderless"

// ErrNoLeader reports a partition whose primary is down and not failed
// over: ingest for it must wait for `ptmcluster failover` (or the node's
// return), because silently promoting an arbitrary survivor could elect
// a less-caught-up one.
type ErrNoLeader struct {
	Loc  vhash.LocationID
	Down string // the down, unpromoted member blocking the partition
}

// Error implements error.
func (e *ErrNoLeader) Error() string {
	return fmt.Sprintf("%s: location %d: member %q is down and not failed over", NoLeaderPrefix, e.Loc, e.Down)
}

// Leader resolves the partition leader for loc: the first replica-set
// member that may lead. StateUp leads. StateJoining is skipped (still
// catching up). StateDown blocks the partition — unless the ring records
// a failover for it, in which case the promoted survivor leads when it
// is in the replica set, and otherwise the walk continues to the next
// eligible replica.
func (r *Ring) Leader(loc vhash.LocationID) (Member, error) {
	set := r.ReplicaSet(loc)
	for _, m := range set {
		switch m.State {
		case StateUp:
			return m, nil
		case StateJoining:
			continue
		case StateDown:
			standby, promoted := r.Promoted[m.ID]
			if !promoted {
				return Member{}, &ErrNoLeader{Loc: loc, Down: m.ID}
			}
			for _, s := range set {
				if s.ID == standby && s.State == StateUp {
					return s, nil
				}
			}
			// The promoted survivor does not hold this partition; the
			// next replica in walk order is its natural successor.
			continue
		default:
			continue
		}
	}
	return Member{}, fmt.Errorf("cluster: location %d has no eligible leader among %d replicas", loc, len(set))
}

// EncodeRing serializes a ring for the wire and ring.json.
func EncodeRing(r *Ring) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// DecodeRing parses and validates a serialized ring.
func DecodeRing(b []byte) (*Ring, error) {
	var r Ring
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("cluster: decoding ring: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
