package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ptm/internal/vhash"
)

// testRing builds an all-Up ring of n members n01..n0n.
func testRing(n, replicas, vnodes int) *Ring {
	r := &Ring{Epoch: 1, Replicas: replicas, VNodes: vnodes}
	for i := 1; i <= n; i++ {
		r.Members = append(r.Members, Member{
			ID:    fmt.Sprintf("n%02d", i),
			Addr:  fmt.Sprintf("10.0.0.%d:9000", i),
			State: StateUp,
		})
	}
	return r
}

func setIDs(set []Member) string {
	ids := make([]string, len(set))
	for i, m := range set {
		ids[i] = m.ID
	}
	return strings.Join(ids, ",")
}

// TestRingAssignmentsGolden pins the partition map: the replica set and
// leader of 24 locations for clusters of 1, 3, and 5 members. The map
// is a frozen function of (member IDs, vnode index, location) — any
// change to the hashing, the walk, or the tie-break shows up as a
// fixture diff and is a breaking change for every deployed cluster
// (every node must agree on the map, and a silent change would reshuffle
// partitions under live data). Regenerate deliberately with
// PTM_UPDATE_GOLDEN=1 go test ./internal/cluster -run Golden.
func TestRingAssignmentsGolden(t *testing.T) {
	var b strings.Builder
	for _, cfg := range []struct{ n, r int }{{1, 1}, {3, 2}, {5, 3}} {
		ring := testRing(cfg.n, cfg.r, DefaultVNodes)
		for loc := vhash.LocationID(1); loc <= 24; loc++ {
			set := ring.ReplicaSet(loc)
			leader, err := ring.Leader(loc)
			if err != nil {
				t.Fatalf("N=%d loc=%d: %v", cfg.n, loc, err)
			}
			fmt.Fprintf(&b, "N=%d R=%d loc=%d set=%s leader=%s\n",
				cfg.n, cfg.r, loc, setIDs(set), leader.ID)
		}
	}
	got := b.String()

	golden := filepath.Join("testdata", "ring_assignments.golden")
	if os.Getenv("PTM_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden fixture (PTM_UPDATE_GOLDEN=1 to generate): %v", err)
	}
	if got != string(want) {
		t.Fatalf("ring assignments diverged from golden fixture.\nThis reshuffles every deployed cluster's partitions; if intended, regenerate with PTM_UPDATE_GOLDEN=1.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRingRebalanceMovementBound pins the consistent-hashing contract:
// a single join or leave moves only the keys adjacent to the changed
// member's vnodes — about 1/N of them — and every moved key moves
// to/from the changed member, never between two unchanged members.
func TestRingRebalanceMovementBound(t *testing.T) {
	const nLocs = 8192
	const n = 5
	base := testRing(n, 1, DefaultVNodes)

	owner := func(r *Ring, loc vhash.LocationID) string {
		set := r.ReplicaSet(loc)
		if len(set) == 0 {
			t.Fatalf("loc %d has no owner", loc)
		}
		return set[0].ID
	}
	before := make([]string, nLocs)
	for i := range before {
		before[i] = owner(base, vhash.LocationID(i))
	}

	t.Run("join", func(t *testing.T) {
		joined := base.Clone()
		joined.Epoch++
		joined.Members = append(joined.Members, Member{ID: "n06", Addr: "10.0.0.6:9000", State: StateUp})
		moved := 0
		for i := range before {
			after := owner(joined, vhash.LocationID(i))
			if after == before[i] {
				continue
			}
			moved++
			if after != "n06" {
				t.Fatalf("loc %d moved %s->%s: a join may only move keys to the joined member", i, before[i], after)
			}
		}
		// Expectation nLocs/(n+1); allow generous slack for vnode
		// placement variance at 64 vnodes/member.
		bound := nLocs * 16 / ((n + 1) * 10) // 1.6/(n+1)
		if moved == 0 || moved > bound {
			t.Fatalf("join moved %d/%d keys, want (0, %d]", moved, nLocs, bound)
		}
		t.Logf("join moved %d/%d keys (ideal %d)", moved, nLocs, nLocs/(n+1))
	})

	t.Run("leave", func(t *testing.T) {
		left := base.Clone()
		left.Epoch++
		left.Members[n-1].State = StateLeft
		left.Members[n-1].Addr = ""
		gone := base.Members[n-1].ID
		moved := 0
		for i := range before {
			after := owner(left, vhash.LocationID(i))
			if after == before[i] {
				continue
			}
			moved++
			if before[i] != gone {
				t.Fatalf("loc %d moved %s->%s: a leave may only move the departed member's keys", i, before[i], after)
			}
		}
		bound := nLocs * 16 / (n * 10) // 1.6/n
		if moved == 0 || moved > bound {
			t.Fatalf("leave moved %d/%d keys, want (0, %d]", moved, nLocs, bound)
		}
		t.Logf("leave moved %d/%d keys (ideal %d)", moved, nLocs, nLocs/n)
	})
}

func TestRingLeaderLifecycle(t *testing.T) {
	r := testRing(3, 2, DefaultVNodes)
	loc := vhash.LocationID(7)
	set := r.ReplicaSet(loc)
	if len(set) != 2 {
		t.Fatalf("replica set size = %d, want 2", len(set))
	}
	primary, second := set[0], set[1]

	lead, err := r.Leader(loc)
	if err != nil || lead.ID != primary.ID {
		t.Fatalf("Leader = %v, %v; want primary %s", lead.ID, err, primary.ID)
	}

	// A joining primary is skipped: the next Up replica leads.
	mark := func(r *Ring, id string, s State) {
		for i := range r.Members {
			if r.Members[i].ID == id {
				r.Members[i].State = s
			}
		}
	}
	joining := r.Clone()
	mark(joining, primary.ID, StateJoining)
	if lead, err = joining.Leader(loc); err != nil || lead.ID != second.ID {
		t.Fatalf("joining primary: leader = %v, %v; want %s", lead.ID, err, second.ID)
	}

	// A down, unpromoted primary blocks the partition.
	down := r.Clone()
	mark(down, primary.ID, StateDown)
	if _, err := down.Leader(loc); err == nil {
		t.Fatal("down unpromoted primary: want ErrNoLeader")
	} else {
		var nl *ErrNoLeader
		if !asErrNoLeader(err, &nl) || nl.Down != primary.ID {
			t.Fatalf("down unpromoted primary: err = %v, want ErrNoLeader{%s}", err, primary.ID)
		}
	}

	// Promotion authorizes the standby (in the set) to lead.
	promoted := down.Clone()
	promoted.Promoted = map[string]string{primary.ID: second.ID}
	if err := promoted.Validate(); err != nil {
		t.Fatalf("promoted ring invalid: %v", err)
	}
	if lead, err = promoted.Leader(loc); err != nil || lead.ID != second.ID {
		t.Fatalf("promoted: leader = %v, %v; want standby %s", lead.ID, err, second.ID)
	}

	// A draining member owns nothing: it appears in no replica set.
	drain := r.Clone()
	mark(drain, primary.ID, StateDraining)
	for i := 0; i < 64; i++ {
		for _, m := range drain.ReplicaSet(vhash.LocationID(i)) {
			if m.ID == primary.ID {
				t.Fatalf("draining member %s still owns loc %d", primary.ID, i)
			}
		}
	}
}

func asErrNoLeader(err error, out **ErrNoLeader) bool {
	nl, ok := err.(*ErrNoLeader)
	if ok {
		*out = nl
	}
	return ok
}

func TestRingValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Ring)
	}{
		{"no replicas", func(r *Ring) { r.Replicas = 0 }},
		{"no vnodes", func(r *Ring) { r.VNodes = 0 }},
		{"no members", func(r *Ring) { r.Members = nil }},
		{"empty ID", func(r *Ring) { r.Members[0].ID = "" }},
		{"dup ID", func(r *Ring) { r.Members[1].ID = r.Members[0].ID }},
		{"no addr", func(r *Ring) { r.Members[0].Addr = "" }},
		{"all left", func(r *Ring) {
			for i := range r.Members {
				r.Members[i].State = StateLeft
				r.Members[i].Addr = ""
			}
		}},
		{"promoted unknown", func(r *Ring) { r.Promoted = map[string]string{"nope": "n01"} }},
		{"promoted not down", func(r *Ring) { r.Promoted = map[string]string{"n01": "n02"} }},
		{"standby not up", func(r *Ring) {
			r.Members[0].State = StateDown
			r.Members[1].State = StateDown
			r.Promoted = map[string]string{"n01": "n02"}
		}},
	}
	for _, tc := range cases {
		r := testRing(3, 2, 8)
		tc.mut(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
	if err := testRing(3, 2, 8).Validate(); err != nil {
		t.Fatalf("valid ring rejected: %v", err)
	}
}

func TestRingJSONRoundTrip(t *testing.T) {
	r := testRing(3, 2, 16)
	r.Members[1].State = StateDown
	r.Members[2].State = StateJoining
	// A promoted standby must be Up and the down member Down; use n01.
	r.Promoted = map[string]string{"n02": "n01"}
	b, err := EncodeRing(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{`"up"`, `"down"`, `"joining"`} {
		if !strings.Contains(string(b), name) {
			t.Fatalf("encoded ring missing state name %s:\n%s", name, b)
		}
	}
	got, err := DecodeRing(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != r.Epoch || got.Replicas != r.Replicas || got.VNodes != r.VNodes ||
		len(got.Members) != len(r.Members) || got.Promoted["n02"] != "n01" {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, r)
	}
	for i := range r.Members {
		if got.Members[i] != r.Members[i] {
			t.Fatalf("member %d: %+v vs %+v", i, got.Members[i], r.Members[i])
		}
	}
	if _, err := DecodeRing([]byte(`{"epoch":1}`)); err == nil {
		t.Fatal("DecodeRing accepted an invalid ring")
	}
}
