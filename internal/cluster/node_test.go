package cluster

// In-process cluster tests: N nodes with real WALs and real transport
// servers on loopback, driven deterministically through ShipNow. The
// core property under test is the ISSUE's acceptance bar — estimator
// output from cluster replicas is bit-identical to a single-node store
// holding the same records — plus the failover and join/drain flows.

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ptm/internal/central"
	"ptm/internal/record"
	"ptm/internal/transport"
	"ptm/internal/vhash"
	"ptm/internal/wal"
)

const testS = 3

// testNode bundles one in-process cluster member.
type testNode struct {
	node *Node
	srv  *transport.Server
	addr string
	dir  string
}

// startNode opens a durable store in its own temp dir, wraps it in a
// Node (manual shipping only), and serves it on loopback.
func startNode(t *testing.T, id string) *testNode {
	t.Helper()
	dir := t.TempDir()
	d, err := central.OpenDurable(dir, testS, central.DefaultShards,
		wal.Options{Sync: wal.SyncAlways, SegmentSize: 1 << 14}, 0)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(d, Config{
		ID:          id,
		RingPath:    filepath.Join(dir, "ring.json"),
		DialTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.NewServer(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	tn := &testNode{node: n, srv: srv, addr: ln.Addr().String(), dir: dir}
	t.Cleanup(func() {
		_ = tn.node.Close()
		_ = tn.srv.Close()
		_ = tn.node.Durable.Close()
	})
	return tn
}

// pushRing installs a ring on the given nodes through the extension
// frame path (the same path ptmcluster uses).
func pushRing(t *testing.T, r *Ring, nodes ...*testNode) {
	t.Helper()
	enc, err := EncodeRing(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range nodes {
		_, resp, handled := tn.node.HandleFrame(transport.MsgRingSet, enc)
		if !handled {
			t.Fatalf("node %s did not handle MsgRingSet", tn.node.ID())
		}
		if _, err := splitPayload(resp); err != nil {
			t.Fatalf("node %s rejected ring epoch %d: %v", tn.node.ID(), r.Epoch, err)
		}
	}
}

// ringOf builds a ring over the started nodes, all Up.
func ringOf(epoch uint64, replicas int, nodes ...*testNode) *Ring {
	r := &Ring{Epoch: epoch, Replicas: replicas, VNodes: DefaultVNodes}
	for _, tn := range nodes {
		r.Members = append(r.Members, Member{ID: tn.node.ID(), Addr: tn.addr, State: StateUp})
	}
	r.SortMembers()
	return r
}

// testRecord builds a deterministic record: the bitmap bits are a pure
// function of (loc, period), so the reference store and the cluster see
// byte-identical records.
func testRecord(t *testing.T, loc, period, m int) *record.Record {
	t.Helper()
	rec, err := record.New(vhash.LocationID(loc), record.PeriodID(period), m)
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(loc)*2654435761 + uint64(period)*40503
	for k := 0; k < 6+loc%4+period%3; k++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		rec.Bitmap.Set(seed % uint64(m))
	}
	return rec
}

// shipAll runs rounds replication rounds on every node.
func shipAll(t *testing.T, rounds int, nodes ...*testNode) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		for _, tn := range nodes {
			if err := tn.node.ShipNow(); err != nil {
				t.Fatalf("round %d: node %s: %v", i, tn.node.ID(), err)
			}
		}
	}
}

// leaderOf resolves loc's leader among the nodes.
func leaderOf(t *testing.T, r *Ring, nodes map[string]*testNode, loc int) *testNode {
	t.Helper()
	m, err := r.Leader(vhash.LocationID(loc))
	if err != nil {
		t.Fatalf("leader(%d): %v", loc, err)
	}
	tn, ok := nodes[m.ID]
	if !ok {
		t.Fatalf("leader(%d) = %s, not a live node", loc, m.ID)
	}
	return tn
}

func TestClusterReplicationDifferential(t *testing.T) {
	a, b, c := startNode(t, "a"), startNode(t, "b"), startNode(t, "c")
	nodes := map[string]*testNode{"a": a, "b": b, "c": c}
	r := ringOf(1, 2, a, b, c)
	pushRing(t, r, a, b, c)

	ref, err := central.NewServer(testS)
	if err != nil {
		t.Fatal(err)
	}
	const m = 64
	locs := []int{1, 2, 3, 4, 5, 6}
	periods := []record.PeriodID{1, 2, 3, 4, 5, 6, 7, 8}
	for _, loc := range locs {
		for _, p := range periods {
			if err := ref.Ingest(testRecord(t, loc, int(p), m)); err != nil {
				t.Fatal(err)
			}
			if err := leaderOf(t, r, nodes, loc).node.Ingest(testRecord(t, loc, int(p), m)); err != nil {
				t.Fatalf("ingest loc=%d p=%d: %v", loc, p, err)
			}
		}
	}

	// A follower must reject a direct upload with the leader hint.
	for _, loc := range locs {
		lead := leaderOf(t, r, nodes, loc)
		for id, tn := range nodes {
			if id == lead.node.ID() {
				continue
			}
			err := tn.node.Ingest(testRecord(t, loc, 99, m))
			if !IsNotLeader(err) {
				t.Fatalf("follower %s accepted loc %d upload (err=%v)", id, loc, err)
			}
		}
		break // one location suffices
	}

	// Two hops bound convergence; run three rounds for slack.
	shipAll(t, 3, a, b, c)

	for _, loc := range locs {
		set := r.ReplicaSet(vhash.LocationID(loc))
		if len(set) != 2 {
			t.Fatalf("replica set for %d: %v", loc, set)
		}
		for _, mem := range set {
			tn := nodes[mem.ID]
			for _, p := range periods {
				want, err := ref.Volume(vhash.LocationID(loc), p)
				if err != nil {
					t.Fatal(err)
				}
				got, err := tn.node.Volume(vhash.LocationID(loc), p)
				if err != nil {
					t.Fatalf("replica %s volume(%d,%d): %v", mem.ID, loc, p, err)
				}
				if got != want {
					t.Fatalf("replica %s volume(%d,%d) = %v, want %v", mem.ID, loc, p, got, want)
				}
			}
			wantPt, err := ref.PointPersistent(vhash.LocationID(loc), periods)
			if err != nil {
				t.Fatal(err)
			}
			gotPt, err := tn.node.PointPersistent(vhash.LocationID(loc), periods)
			if err != nil {
				t.Fatalf("replica %s point(%d): %v", mem.ID, loc, err)
			}
			if !reflect.DeepEqual(gotPt, wantPt) {
				t.Fatalf("replica %s point(%d) = %+v, want %+v", mem.ID, loc, gotPt, wantPt)
			}
		}
	}

	// Point-to-point on any node holding both locations.
	for _, pair := range [][2]int{{1, 2}, {3, 5}} {
		la, lb := vhash.LocationID(pair[0]), vhash.LocationID(pair[1])
		want, err := ref.PointToPointPersistent(la, lb, periods)
		if err != nil {
			t.Fatal(err)
		}
		for id, tn := range nodes {
			holdsBoth := len(tn.node.Periods(la)) > 0 && len(tn.node.Periods(lb)) > 0
			if !holdsBoth {
				continue
			}
			got, err := tn.node.PointToPointPersistent(la, lb, periods)
			if err != nil {
				t.Fatalf("node %s p2p(%d,%d): %v", id, la, lb, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("node %s p2p(%d,%d) = %+v, want %+v", id, la, lb, got, want)
			}
		}
	}
}

func TestClusterFailoverAndReviveNoAckedLoss(t *testing.T) {
	a, b, c := startNode(t, "a"), startNode(t, "b"), startNode(t, "c")
	nodes := map[string]*testNode{"a": a, "b": b, "c": c}
	all := []*testNode{a, b, c}
	r := ringOf(1, 2, a, b, c)
	pushRing(t, r, all...)

	ref, err := central.NewServer(testS)
	if err != nil {
		t.Fatal(err)
	}
	const m = 64
	ingestBoth := func(r *Ring, loc, p int) {
		t.Helper()
		if err := ref.Ingest(testRecord(t, loc, p, m)); err != nil && !errors.Is(err, central.ErrDuplicate) {
			t.Fatal(err)
		}
		if err := leaderOf(t, r, nodes, loc).node.Ingest(testRecord(t, loc, p, m)); err != nil {
			t.Fatalf("ingest loc=%d p=%d: %v", loc, p, err)
		}
	}
	locs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	for _, loc := range locs {
		for p := 1; p <= 4; p++ {
			ingestBoth(r, loc, p)
		}
	}
	shipAll(t, 3, all...)

	// Pick a victim that leads at least one location.
	var victim *testNode
	var victimLoc int
	for _, loc := range locs {
		lead := leaderOf(t, r, nodes, loc)
		if lead == a {
			victim, victimLoc = lead, loc
			break
		}
	}
	if victim == nil {
		t.Skip("node a leads no test location; hash placement changed")
	}

	// One more acked record on the victim that is NOT shipped before the
	// kill: it must survive via the victim's WAL after revive.
	unshipped := testRecord(t, victimLoc, 77, m)
	if err := ref.Ingest(testRecord(t, victimLoc, 77, m)); err != nil {
		t.Fatal(err)
	}
	if err := victim.node.Ingest(unshipped); err != nil {
		t.Fatal(err)
	}

	// Kill: stop serving and shipping. The durable store stays on disk.
	if err := victim.srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := victim.node.Close(); err != nil {
		t.Fatal(err)
	}

	// The partition is leaderless until an explicit failover.
	down := r.Clone()
	down.Epoch = 2
	for i := range down.Members {
		if down.Members[i].ID == victim.node.ID() {
			down.Members[i].State = StateDown
		}
	}
	survivors := []*testNode{b, c}
	pushRing(t, down, survivors...)
	if _, err := down.Leader(vhash.LocationID(victimLoc)); err == nil {
		t.Fatal("down unpromoted leader still resolves")
	}
	if err := b.node.Ingest(testRecord(t, victimLoc, 78, m)); err == nil {
		t.Fatal("leaderless partition accepted an upload")
	}

	// Failover: promote the most-caught-up survivor (by applied
	// watermark for the victim, as ptmcluster does).
	best := survivors[0]
	for _, tn := range survivors[1:] {
		if tn.node.StatusSnapshot().Applied[victim.node.ID()] > best.node.StatusSnapshot().Applied[victim.node.ID()] {
			best = tn
		}
	}
	failed := down.Clone()
	failed.Epoch = 3
	failed.Promoted = map[string]string{victim.node.ID(): best.node.ID()}
	pushRing(t, failed, survivors...)

	// The partition serves again; ingest continues on the new leader.
	for p := 5; p <= 6; p++ {
		ingestBoth(failed, victimLoc, p)
	}
	shipAll(t, 3, survivors...)

	// Revive: restart the victim over the same WAL (kill -9 semantics:
	// reopen and recover), then push a ring returning it to Up.
	d2, err := central.OpenDurable(victim.dir, testS, central.DefaultShards,
		wal.Options{Sync: wal.SyncAlways, SegmentSize: 1 << 14}, 0)
	if err != nil {
		t.Fatalf("reopening victim WAL: %v", err)
	}
	n2, err := NewNode(d2, Config{
		ID:          victim.node.ID(),
		RingPath:    filepath.Join(victim.dir, "ring.json"),
		DialTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := transport.NewServer(n2, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", victim.addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", victim.addr, err)
	}
	go func() { _ = srv2.Serve(ln2) }()
	revived := &testNode{node: n2, srv: srv2, addr: victim.addr, dir: victim.dir}
	t.Cleanup(func() {
		_ = revived.node.Close()
		_ = revived.srv.Close()
		_ = revived.node.Durable.Close()
	})
	nodes[revived.node.ID()] = revived

	up := failed.Clone()
	up.Epoch = 4
	up.Promoted = nil
	for i := range up.Members {
		if up.Members[i].ID == revived.node.ID() {
			up.Members[i].State = StateUp
		}
	}
	final := []*testNode{revived, b, c}
	pushRing(t, up, final...)
	shipAll(t, 3, final...)

	// Every replica of every location now matches the reference —
	// including period 77, which was acked only on the victim's WAL
	// before the kill.
	periods := func(loc int) []record.PeriodID { return ref.Periods(vhash.LocationID(loc)) }
	for _, loc := range locs {
		for _, mem := range up.ReplicaSet(vhash.LocationID(loc)) {
			tn := nodes[mem.ID]
			wantPt, err := ref.PointPersistent(vhash.LocationID(loc), periods(loc))
			if err != nil {
				t.Fatal(err)
			}
			gotPt, err := tn.node.PointPersistent(vhash.LocationID(loc), periods(loc))
			if err != nil {
				t.Fatalf("replica %s point(%d): %v", mem.ID, loc, err)
			}
			if !reflect.DeepEqual(gotPt, wantPt) {
				t.Fatalf("replica %s point(%d) diverged after failover+revive", mem.ID, loc)
			}
		}
	}
	for _, mem := range up.ReplicaSet(vhash.LocationID(victimLoc)) {
		tn := nodes[mem.ID]
		got, err := tn.node.Volume(vhash.LocationID(victimLoc), 77)
		if err != nil {
			t.Fatalf("replica %s lost the acked-but-unshipped record: %v", mem.ID, err)
		}
		want, err := ref.Volume(vhash.LocationID(victimLoc), 77)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("replica %s volume for revived record = %v, want %v", mem.ID, got, want)
		}
	}
}

func TestClusterJoinDrainPreservesEstimates(t *testing.T) {
	a, b, c := startNode(t, "a"), startNode(t, "b"), startNode(t, "c")
	nodes := map[string]*testNode{"a": a, "b": b, "c": c}
	r := ringOf(1, 2, a, b, c)
	pushRing(t, r, a, b, c)

	ref, err := central.NewServer(testS)
	if err != nil {
		t.Fatal(err)
	}
	const m = 64
	locs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	periods := []record.PeriodID{1, 2, 3, 4}
	for _, loc := range locs {
		for _, p := range periods {
			if err := ref.Ingest(testRecord(t, loc, int(p), m)); err != nil {
				t.Fatal(err)
			}
			if err := leaderOf(t, r, nodes, loc).node.Ingest(testRecord(t, loc, int(p), m)); err != nil {
				t.Fatal(err)
			}
		}
	}
	shipAll(t, 3, a, b, c)

	// Join d: it owns positions immediately but leads nothing until Up.
	d := startNode(t, "d")
	nodes["d"] = d
	joined := r.Clone()
	joined.Epoch = 2
	joined.Members = append(joined.Members, Member{ID: "d", Addr: d.addr, State: StateJoining})
	joined.SortMembers()
	pushRing(t, joined, a, b, c, d)
	shipAll(t, 3, a, b, c, d)

	// Promote d, then drain a. Draining a owns nothing; its shipper
	// pushes its records up to the new leaders.
	up := joined.Clone()
	up.Epoch = 3
	for i := range up.Members {
		if up.Members[i].ID == "d" {
			up.Members[i].State = StateUp
		}
	}
	pushRing(t, up, a, b, c, d)
	drained := up.Clone()
	drained.Epoch = 4
	for i := range drained.Members {
		if drained.Members[i].ID == "a" {
			drained.Members[i].State = StateDraining
		}
	}
	pushRing(t, drained, a, b, c, d)
	shipAll(t, 3, a, b, c, d)

	for _, loc := range locs {
		set := drained.ReplicaSet(vhash.LocationID(loc))
		if len(set) != 2 {
			t.Fatalf("replica set for %d after drain: %v", loc, set)
		}
		for _, mem := range set {
			if mem.ID == "a" {
				t.Fatalf("draining member still owns loc %d", loc)
			}
			tn := nodes[mem.ID]
			wantPt, err := ref.PointPersistent(vhash.LocationID(loc), periods)
			if err != nil {
				t.Fatal(err)
			}
			gotPt, err := tn.node.PointPersistent(vhash.LocationID(loc), periods)
			if err != nil {
				t.Fatalf("replica %s point(%d) after join+drain: %v", mem.ID, loc, err)
			}
			if !reflect.DeepEqual(gotPt, wantPt) {
				t.Fatalf("replica %s point(%d) diverged after join+drain", mem.ID, loc)
			}
		}
	}
}

func TestRingSetPersistenceAndEpochGate(t *testing.T) {
	a := startNode(t, "a")
	r := ringOf(5, 1, a)
	pushRing(t, r, a)
	if _, err := os.Stat(filepath.Join(a.dir, "ring.json")); err != nil {
		t.Fatalf("accepted ring not persisted: %v", err)
	}

	// Same epoch: idempotent success. Older: rejected.
	pushRing(t, r, a)
	stale := r.Clone()
	stale.Epoch = 4
	enc, err := EncodeRing(stale)
	if err != nil {
		t.Fatal(err)
	}
	_, resp, _ := a.node.HandleFrame(transport.MsgRingSet, enc)
	if _, err := splitPayload(resp); err == nil {
		t.Fatal("stale ring push accepted")
	}

	// A fresh Node over the same ring path restores the ring.
	if err := a.node.Close(); err != nil {
		t.Fatal(err)
	}
	n2, err := NewNode(a.node.Durable, Config{ID: "a", RingPath: filepath.Join(a.dir, "ring.json")})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	got := n2.Ring()
	if got == nil || got.Epoch != 5 {
		t.Fatalf("restarted node ring = %+v, want epoch 5", got)
	}
}

func TestReplBatchDuplicateAndAppliedTracking(t *testing.T) {
	a := startNode(t, "a")
	rec := testRecord(t, 1, 1, 64)
	blob, err := rec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := transport.EncodeRecordBlobs([][]byte{blob})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := encodeReplBatch(replHeader{From: "b", Epoch: 1, Through: 9}, batch)
	if err != nil {
		t.Fatal(err)
	}
	_, resp, handled := a.node.HandleFrame(transport.MsgReplBatch, payload)
	if !handled {
		t.Fatal("MsgReplBatch not handled")
	}
	ack, err := decodeReplAck(resp)
	if err != nil || !ack.OK || ack.Applied != 1 || ack.Dups != 0 {
		t.Fatalf("first apply ack = %+v, %v", ack, err)
	}
	// Redelivery: pure dup, still OK, watermark advances monotonically.
	payload2, err := encodeReplBatch(replHeader{From: "b", Epoch: 1, Through: 7}, batch)
	if err != nil {
		t.Fatal(err)
	}
	_, resp, _ = a.node.HandleFrame(transport.MsgReplBatch, payload2)
	ack, err = decodeReplAck(resp)
	if err != nil || !ack.OK || ack.Applied != 0 || ack.Dups != 1 {
		t.Fatalf("redelivery ack = %+v, %v", ack, err)
	}
	st := a.node.StatusSnapshot()
	if st.Applied["b"] != 9 {
		t.Fatalf("applied watermark = %d, want 9 (monotonic)", st.Applied["b"])
	}

	// Record fetch round-trips the stored record.
	_, resp, _ = a.node.HandleFrame(transport.MsgFetchRecords, encodeFetch(1))
	body, err := splitPayload(resp)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := transport.DecodeRecordBatch(body)
	if err != nil || len(recs) != 1 {
		t.Fatalf("fetch returned %d records, %v", len(recs), err)
	}
	if fmt.Sprint(recs[0].Location, recs[0].Period) != fmt.Sprint(rec.Location, rec.Period) {
		t.Fatalf("fetched %v/%v, want %v/%v", recs[0].Location, recs[0].Period, rec.Location, rec.Period)
	}
}
