package cluster

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"ptm/internal/central"
	"ptm/internal/record"
	"ptm/internal/transport"
	"ptm/internal/wal"
)

// NotLeaderPrefix prefixes every ingest rejection issued because this
// node does not lead the record's partition. The router string-matches
// it on RemoteErrors to distinguish "wrong node, refresh the ring and
// retry" from genuine ingest failures.
const NotLeaderPrefix = "cluster: not leader"

// IsNotLeader reports whether err is a leader-gate rejection (local, or
// carried back through the transport as a RemoteError — possibly inside
// the batch handler's "record i/n:" wrapper, hence substring matching).
func IsNotLeader(err error) bool {
	return err != nil && strings.Contains(err.Error(), NotLeaderPrefix)
}

// IsLeaderless reports whether err is an ErrNoLeader rejection (a down,
// unpromoted primary), in any transport wrapping. The router treats it
// as retryable: the partition serves again after `ptmcluster failover`.
func IsLeaderless(err error) bool {
	return err != nil && strings.Contains(err.Error(), NoLeaderPrefix)
}

// Config parameterizes a cluster node.
type Config struct {
	// ID is this node's stable identity in the ring. Required.
	ID string
	// RingPath is where the accepted ring is persisted (atomically
	// rewritten on every accepted push, reloaded on startup). Required.
	RingPath string
	// ShipInterval is the replication shipper's period. 0 disables the
	// background shipper (tests drive ShipNow explicitly).
	ShipInterval time.Duration
	// DialTimeout bounds peer dials and calls. Defaults to 5s.
	DialTimeout time.Duration
	// Logger receives shipper and ring-change events; nil discards.
	Logger *log.Logger
}

// peerState is the shipper's per-peer replication state.
type peerState struct {
	epoch     uint64 // ring epoch the watermark below is valid for
	shipped   uint64 // peer holds every record it needs from WAL segments <= shipped
	lag       uint64 // sealed - shipped at the last round
	records   int64  // records sent since startup
	fullSyncs int64  // full-state resyncs performed
	lastErr   string // last shipping failure, "" when healthy
}

// Node wraps a WAL-backed central store with cluster behavior: it
// enforces leader-only ingest against the current ring, answers the
// cluster protocol frames (transport.Extension), and runs the
// replication shipper. With no ring installed the node is a plain
// standalone store — every record is accepted and nothing ships — so a
// single-node deployment needs no configuration at all.
//
// The embedded Durable serves all queries unchanged: estimator outputs
// are a pure function of store contents, and replication converges the
// contents, so any replica answers queries for the partitions it holds
// bit-identically to a single-node store.
type Node struct {
	*central.Durable
	cfg Config

	// mu guards the ring view and the shipper bookkeeping. It is never
	// held across network calls, WAL replay, or store operations wider
	// than a field read — the shipper snapshots under mu, works
	// unlocked, and re-locks to record results.
	mu      sync.Mutex
	ring    *Ring                        //ptm:guardedby mu (nil until a ring is installed)
	peers   map[string]*transport.Client //ptm:guardedby mu (by member ID)
	water   map[string]*peerState        //ptm:guardedby mu (by member ID; entries mutated only under mu)
	applied map[string]uint64            //ptm:guardedby mu (sender ID -> their WAL segment applied through)
	closed  bool                         //ptm:guardedby mu

	quit chan struct{}
	done chan struct{}
}

// NewNode wraps an opened durable store. If cfg.RingPath exists its
// ring is installed immediately; otherwise the node starts standalone
// and waits for a push. The background shipper starts when
// cfg.ShipInterval > 0.
//
//ptm:exclusive NewNode
func NewNode(d *central.Durable, cfg Config) (*Node, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("cluster: node needs an ID")
	}
	if cfg.RingPath == "" {
		return nil, fmt.Errorf("cluster: node needs a ring path")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	n := &Node{
		Durable: d,
		cfg:     cfg,
		peers:   make(map[string]*transport.Client),
		water:   make(map[string]*peerState),
		applied: make(map[string]uint64),
		quit:    make(chan struct{}),
		done:    make(chan struct{}, 1),
	}
	if b, err := os.ReadFile(cfg.RingPath); err == nil {
		r, err := DecodeRing(b)
		if err != nil {
			return nil, fmt.Errorf("cluster: loading %s: %w", cfg.RingPath, err)
		}
		n.ring = r
		cfg.Logger.Printf("cluster: node %s loaded ring epoch %d (%d members)", cfg.ID, r.Epoch, len(r.Members))
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("cluster: loading %s: %w", cfg.RingPath, err)
	}
	if cfg.ShipInterval > 0 {
		go func() {
			n.shipLoop()
			n.done <- struct{}{}
		}()
	} else {
		n.done <- struct{}{}
	}
	return n, nil
}

// ID returns the node's ring identity.
func (n *Node) ID() string { return n.cfg.ID }

// Ring returns a copy of the ring in effect, or nil when standalone.
func (n *Node) Ring() *Ring {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ring == nil {
		return nil
	}
	return n.ring.Clone()
}

// Ingest applies the leader gate and stores the record durably. With a
// ring installed, only the partition leader accepts uploads — followers
// reject with a NotLeaderPrefix error naming the leader so the router
// can re-route; a leaderless partition (down, unpromoted primary)
// rejects with ErrNoLeader until `ptmcluster failover`.
func (n *Node) Ingest(rec *record.Record) error {
	if rec == nil {
		return record.ErrNilBitmap
	}
	n.mu.Lock()
	r := n.ring
	n.mu.Unlock()
	if r != nil {
		leader, err := r.Leader(rec.Location)
		if err != nil {
			return err
		}
		if leader.ID != n.cfg.ID {
			return fmt.Errorf("%s for location %d: leader is %s@%s (epoch %d)",
				NotLeaderPrefix, rec.Location, leader.ID, leader.Addr, r.Epoch)
		}
	}
	return n.Durable.Ingest(rec)
}

// Close stops the shipper and closes peer connections. It does NOT
// close the underlying durable store — the process that opened it owns
// that lifecycle (centrald checkpoints before closing).
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	close(n.quit)
	<-n.done
	n.mu.Lock()
	peers := n.peers
	n.peers = make(map[string]*transport.Client)
	n.mu.Unlock()
	var first error
	for id, c := range peers {
		if err := c.Close(); err != nil && first == nil {
			first = fmt.Errorf("cluster: closing peer %s: %w", id, err)
		}
	}
	return first
}

// HandleFrame implements transport.Extension: the cluster protocol
// frames, served from the transport server's per-connection goroutines.
func (n *Node) HandleFrame(t transport.MsgType, payload []byte) (transport.MsgType, []byte, bool) {
	switch t {
	case transport.MsgRingGet:
		return transport.MsgRing, n.handleRingGet(), true
	case transport.MsgRingSet:
		return transport.MsgRing, n.handleRingSet(payload), true
	case transport.MsgReplBatch:
		return transport.MsgReplAck, n.handleReplBatch(payload), true
	case transport.MsgFetchRecords:
		return transport.MsgRecords, n.handleFetch(payload), true
	case transport.MsgStatus:
		return transport.MsgStatusResp, n.handleStatus(), true
	}
	return 0, nil, false
}

func (n *Node) handleRingGet() []byte {
	n.mu.Lock()
	r := n.ring
	n.mu.Unlock()
	if r == nil {
		return errPayload(fmt.Errorf("cluster: node %s has no ring configured", n.cfg.ID))
	}
	b, err := EncodeRing(r)
	if err != nil {
		return errPayload(err)
	}
	return okPayload(b)
}

// handleRingSet installs a pushed ring iff it is strictly newer than
// the one in effect (re-pushing the current epoch is an idempotent
// success). The ring is persisted before it is adopted: an acked
// configuration change must survive a crash, so a persist failure
// rejects the push and keeps the old ring.
func (n *Node) handleRingSet(payload []byte) []byte {
	r, err := DecodeRing(payload)
	if err != nil {
		return errPayload(err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ring != nil {
		if r.Epoch == n.ring.Epoch {
			b, err := EncodeRing(n.ring)
			if err != nil {
				return errPayload(err)
			}
			return okPayload(b)
		}
		if r.Epoch < n.ring.Epoch {
			return errPayload(fmt.Errorf("cluster: stale ring epoch %d (current %d)", r.Epoch, n.ring.Epoch))
		}
	}
	enc, err := EncodeRing(r)
	if err != nil {
		return errPayload(err)
	}
	if err := wal.WriteFileAtomic(n.cfg.RingPath, func(w io.Writer) error {
		_, werr := w.Write(enc)
		return werr
	}); err != nil {
		return errPayload(fmt.Errorf("cluster: persisting ring: %w", err))
	}
	if err := wal.SyncDir(filepath.Dir(n.cfg.RingPath)); err != nil {
		return errPayload(fmt.Errorf("cluster: persisting ring: %w", err))
	}
	n.ring = r
	n.cfg.Logger.Printf("cluster: node %s adopted ring epoch %d (%d members, R=%d)",
		n.cfg.ID, r.Epoch, len(r.Members), r.Replicas)
	return okPayload(enc)
}

// handleReplBatch applies a replication batch. Application bypasses the
// leader gate — replication is how non-leaders legitimately receive
// records — and goes through the durable store, so replicated records
// get the same WAL durability as uploaded ones. Duplicates are counted
// and skipped: immutable deduplicated records make redelivery free.
func (n *Node) handleReplBatch(payload []byte) []byte {
	h, batch, err := decodeReplBatch(payload)
	if err != nil {
		return encodeReplAck(replAck{Err: err.Error()})
	}
	recs, err := transport.DecodeRecordBatch(batch)
	if err != nil {
		return encodeReplAck(replAck{Err: err.Error()})
	}
	appliedN, dups := 0, 0
	for _, rec := range recs {
		switch err := n.Durable.Ingest(rec); {
		case err == nil:
			appliedN++
		case errors.Is(err, central.ErrDuplicate):
			dups++
		default:
			return encodeReplAck(replAck{Err: err.Error(), Applied: appliedN, Dups: dups})
		}
	}
	n.mu.Lock()
	if h.Through > n.applied[h.From] {
		n.applied[h.From] = h.Through
	}
	n.mu.Unlock()
	return encodeReplAck(replAck{OK: true, Applied: appliedN, Dups: dups})
}

// handleFetch serves every record of one location (the router's
// cross-partition point-to-point path, and ptmcluster's convergence
// checks).
func (n *Node) handleFetch(payload []byte) []byte {
	loc, err := decodeFetch(payload)
	if err != nil {
		return errPayload(err)
	}
	blobs, err := n.RecordBlobs(loc)
	if err != nil {
		return errPayload(err)
	}
	batch, err := transport.EncodeRecordBlobs(blobs)
	if err != nil {
		return errPayload(err)
	}
	return okPayload(batch)
}

func (n *Node) handleStatus() []byte {
	st := n.StatusSnapshot()
	b, err := encodeStatus(st)
	if err != nil {
		return errPayload(err)
	}
	return okPayload(b)
}

// StatusSnapshot assembles the node's cluster status (also surfaced on
// centrald's HTTP /stats page).
func (n *Node) StatusSnapshot() Status {
	n.mu.Lock()
	st := Status{
		ID:      n.cfg.ID,
		State:   "unconfigured",
		Peers:   make(map[string]PeerStatus, len(n.water)),
		Applied: make(map[string]uint64, len(n.applied)),
	}
	if n.ring != nil {
		st.RingEpoch = n.ring.Epoch
		if m, ok := n.ring.Member(n.cfg.ID); ok {
			st.State = m.State.String()
		} else {
			st.State = "not-a-member"
		}
	}
	for id, ws := range n.water {
		st.Peers[id] = PeerStatus{
			Shipped:   ws.shipped,
			Lag:       ws.lag,
			Records:   ws.records,
			FullSyncs: ws.fullSyncs,
			LastErr:   ws.lastErr,
		}
	}
	for id, seg := range n.applied {
		st.Applied[id] = seg
	}
	n.mu.Unlock()

	// Store and WAL reads happen outside mu: they take their own locks
	// and never call back into the node.
	st.S = n.S()
	st.Locations = len(n.Locations())
	st.WALFirst, st.WALActive = n.Log().Segments()
	return st
}
