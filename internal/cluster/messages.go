package cluster

// Wire schemas for the cluster extension frames. Control-plane payloads
// (ring, status, acks) are JSON — low rate, operator-auditable. The
// data plane (replication batches, record fetches) reuses the
// transport's binary record-batch codec, prefixed where needed with a
// small JSON header. Responses that can fail carry the listing-style
// status byte: 1 = ok followed by the payload, 0 followed by an error
// string.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"ptm/internal/vhash"
)

// replHeader rides in front of every replication batch.
type replHeader struct {
	// From is the shipping node's ID.
	From string `json:"from"`
	// Epoch is the shipper's ring epoch; a receiver on an older ring
	// uses it as a hint to refresh.
	Epoch uint64 `json:"epoch"`
	// Through is the sender's WAL segment index this round ships
	// through. The receiver records it as its applied watermark for
	// From, which failover uses to pick the most-caught-up survivor.
	Through uint64 `json:"through"`
}

// replAck answers a replication batch.
type replAck struct {
	OK      bool   `json:"ok"`
	Applied int    `json:"applied"` // records newly ingested (duplicates excluded)
	Dups    int    `json:"dups"`    // records already present
	Err     string `json:"error,omitempty"`
}

// encodeReplBatch frames header + record batch: u16 LE header length,
// JSON header, then the transport record-batch payload.
func encodeReplBatch(h replHeader, batch []byte) ([]byte, error) {
	hj, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding repl header: %w", err)
	}
	if len(hj) > 1<<16-1 {
		return nil, fmt.Errorf("cluster: repl header %d bytes", len(hj))
	}
	buf := make([]byte, 2, 2+len(hj)+len(batch))
	binary.LittleEndian.PutUint16(buf[0:2], uint16(len(hj)))
	buf = append(buf, hj...)
	buf = append(buf, batch...)
	return buf, nil
}

// decodeReplBatch splits a replication frame into header and batch.
func decodeReplBatch(p []byte) (replHeader, []byte, error) {
	if len(p) < 2 {
		return replHeader{}, nil, fmt.Errorf("cluster: repl frame %d bytes", len(p))
	}
	hl := int(binary.LittleEndian.Uint16(p[0:2]))
	if len(p) < 2+hl {
		return replHeader{}, nil, fmt.Errorf("cluster: repl header claims %d bytes, %d remain", hl, len(p)-2)
	}
	var h replHeader
	if err := json.Unmarshal(p[2:2+hl], &h); err != nil {
		return replHeader{}, nil, fmt.Errorf("cluster: decoding repl header: %w", err)
	}
	if h.From == "" {
		return replHeader{}, nil, fmt.Errorf("cluster: repl header has no sender")
	}
	return h, p[2+hl:], nil
}

func encodeReplAck(a replAck) []byte {
	b, err := json.Marshal(a)
	if err != nil {
		// A struct of bools, ints, and strings cannot fail to marshal.
		panic(err)
	}
	return b
}

func decodeReplAck(p []byte) (replAck, error) {
	var a replAck
	if err := json.Unmarshal(p, &a); err != nil {
		return replAck{}, fmt.Errorf("cluster: decoding repl ack: %w", err)
	}
	return a, nil
}

// okPayload frames a success response: status byte 1 then the body.
func okPayload(body []byte) []byte {
	return append([]byte{1}, body...)
}

// errPayload frames a failure response: status byte 0 then the message.
func errPayload(err error) []byte {
	return append([]byte{0}, err.Error()...)
}

// splitPayload undoes okPayload/errPayload.
func splitPayload(p []byte) ([]byte, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("cluster: empty response payload")
	}
	if p[0] != 1 {
		return nil, fmt.Errorf("cluster: remote: %s", p[1:])
	}
	return p[1:], nil
}

// DecodeResponse unwraps a status-byte-framed cluster response
// (MsgRing, MsgRecords, MsgStatusResp): the remote error when the
// status byte is 0, the body otherwise. Exported for the router and
// ptmcluster.
func DecodeResponse(p []byte) ([]byte, error) {
	return splitPayload(p)
}

// EncodeFetch frames a MsgFetchRecords request for one location.
// Exported for the router and ptmcluster.
func EncodeFetch(loc vhash.LocationID) []byte {
	return encodeFetch(loc)
}

// encodeFetch frames a record-fetch request for one location.
func encodeFetch(loc vhash.LocationID) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(loc))
	return b[:]
}

// decodeFetch parses a record-fetch request.
func decodeFetch(p []byte) (vhash.LocationID, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("cluster: fetch request %d bytes, want 8", len(p))
	}
	return vhash.LocationID(binary.LittleEndian.Uint64(p)), nil
}

// PeerStatus is one peer's replication state as seen by the shipper.
type PeerStatus struct {
	// Shipped is the sender-side watermark: the peer has been sent every
	// needed record in WAL segments <= Shipped.
	Shipped uint64 `json:"shipped_segment"`
	// Lag is sealedSegments - Shipped at the last shipper round: how far
	// the peer trails the stable prefix.
	Lag uint64 `json:"lag_segments"`
	// Records counts records sent to this peer since startup.
	Records int64 `json:"records_shipped"`
	// FullSyncs counts full-state resyncs (epoch change, watermark
	// behind compaction, or first contact).
	FullSyncs int64 `json:"full_syncs"`
	// LastErr is the most recent shipping failure, empty when healthy.
	LastErr string `json:"last_error,omitempty"`
}

// Status is a node's cluster status summary, served on MsgStatus and
// mirrored on the HTTP /stats surface.
type Status struct {
	ID        string `json:"id"`
	RingEpoch uint64 `json:"ring_epoch"`
	// State is this node's state in its own ring view, or
	// "unconfigured" before any ring is installed.
	State     string `json:"state"`
	S         int    `json:"s"`
	Locations int    `json:"locations"`
	WALFirst  uint64 `json:"wal_first_segment"`
	WALActive uint64 `json:"wal_active_segment"`
	// Peers is the shipper's per-peer state, keyed by peer ID.
	Peers map[string]PeerStatus `json:"peers,omitempty"`
	// Applied maps a sending peer's ID to the WAL segment of theirs this
	// node has applied through — failover picks the survivor with the
	// highest applied watermark for the dead node.
	Applied map[string]uint64 `json:"applied,omitempty"`
}

func encodeStatus(st Status) ([]byte, error) {
	return json.Marshal(st)
}

// DecodeStatus parses a Status payload (after splitPayload); exported
// for ptmcluster and the router.
func DecodeStatus(p []byte) (Status, error) {
	var st Status
	if err := json.Unmarshal(p, &st); err != nil {
		return Status{}, fmt.Errorf("cluster: decoding status: %w", err)
	}
	return st, nil
}
