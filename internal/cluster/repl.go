package cluster

// The replication shipper. Every ShipInterval the node seals its WAL's
// stable prefix and, for each reachable peer, ships the records that
// peer needs:
//
//   - push-down: the leader of a partition ships to every other member
//     of the partition's replica set (Up followers and Joining members
//     catching up);
//   - push-up: a non-leader holding a partition's records (after a
//     failover, a drain, or a rebalance) ships them to the current
//     leader.
//
// Every record therefore reaches its full replica set in at most two
// hops, and since records are immutable and deduplicated by
// (location, period), redelivery along any path is harmless — the
// receiver's durable Ingest drops duplicates before they touch its WAL,
// so there is no echo amplification between mutually-shipping nodes.
//
// Progress is tracked with a per-peer watermark {epoch, shipped}: the
// peer has been sent everything it needs from WAL segments <= shipped,
// valid for ring epoch. A ring change or a checkpoint that compacted
// segments past the watermark invalidates it, and the shipper falls
// back to a full-state resync (all live records the peer needs, straight
// from the store). Acked batches advance the watermark; failed rounds
// leave it alone and retry next round, at worst re-sending records the
// peer deduplicates.

import (
	"errors"
	"fmt"
	"time"

	"ptm/internal/central"
	"ptm/internal/record"
	"ptm/internal/transport"
	"ptm/internal/vhash"
)

const (
	// maxShipBatch bounds records per replication frame.
	maxShipBatch = 512
	// maxShipBytes bounds a replication frame's payload (well under
	// transport.MaxFrameSize, leaving room for headers).
	maxShipBytes = 4 << 20
)

// shipLoop runs replication rounds until Close.
func (n *Node) shipLoop() {
	t := time.NewTicker(n.cfg.ShipInterval)
	defer t.Stop()
	for {
		select {
		case <-n.quit:
			return
		case <-t.C:
			if err := n.ShipNow(); err != nil {
				n.cfg.Logger.Printf("cluster: node %s ship round: %v", n.cfg.ID, err)
			}
		}
	}
}

// ShipNow runs one replication round against every shippable peer and
// returns the first per-peer error (the round still visits every peer).
// Exported so tests and the smoke harness can drive replication
// deterministically instead of sleeping through ShipInterval.
func (n *Node) ShipNow() error {
	n.mu.Lock()
	r := n.ring
	n.mu.Unlock()
	if r == nil {
		return nil // standalone: nothing to ship
	}
	sealed, err := n.Log().Seal()
	if err != nil {
		return fmt.Errorf("cluster: sealing WAL: %w", err)
	}
	var first error
	for _, m := range r.Members {
		if m.ID == n.cfg.ID {
			continue
		}
		switch m.State {
		case StateUp, StateJoining:
			// reachable replication targets
		default:
			// Down is unreachable, Draining owns nothing and is being
			// emptied by its own shipper, Left is gone.
			continue
		}
		if err := n.shipPeer(r, m, sealed); err != nil && first == nil {
			first = fmt.Errorf("cluster: shipping to %s: %w", m.ID, err)
		}
	}
	n.prunePeers(r)
	return first
}

// shipPeer ships one peer's round, retrying once through Redial when
// the failure is a transport error (dead connection from a peer restart
// — exactly the sticky-poison case Redial exists for).
func (n *Node) shipPeer(r *Ring, m Member, sealed uint64) error {
	c, err := n.peerClient(m)
	if err != nil {
		n.mu.Lock()
		ws := n.waterLocked(m.ID)
		ws.lastErr = err.Error()
		if sealed > ws.shipped {
			ws.lag = sealed - ws.shipped
		}
		n.mu.Unlock()
		return err
	}
	sent, full, err := n.shipOnce(c, r, m, sealed)
	if err != nil && !transport.IsRemote(err) {
		if rerr := c.Redial(); rerr == nil {
			var sent2 int64
			sent2, full, err = n.shipOnce(c, r, m, sealed)
			sent += sent2
		}
	}
	n.mu.Lock()
	ws := n.waterLocked(m.ID)
	ws.records += sent
	if err != nil {
		ws.lastErr = err.Error()
		if sealed > ws.shipped {
			ws.lag = sealed - ws.shipped
		}
		n.mu.Unlock()
		return err
	}
	if full {
		ws.fullSyncs++
	}
	ws.epoch = r.Epoch
	ws.shipped = sealed
	ws.lag = 0
	ws.lastErr = ""
	n.mu.Unlock()
	return nil
}

// shipOnce performs one shipping attempt: full resync when the
// watermark is invalid, incremental WAL shipping otherwise (falling
// back to full if a checkpoint compacts the range mid-replay). Returns
// records sent and whether a full resync ran.
func (n *Node) shipOnce(c *transport.Client, r *Ring, m Member, sealed uint64) (sent int64, full bool, err error) {
	n.mu.Lock()
	ws := n.waterLocked(m.ID)
	epoch, shipped := ws.epoch, ws.shipped
	n.mu.Unlock()

	filter := &shipFilter{n: n, r: r, peer: m.ID, memo: make(map[vhash.LocationID]bool)}
	logFirst, _ := n.Log().Segments()
	if epoch != r.Epoch || shipped+1 < logFirst {
		sent, err = n.fullResync(c, r, filter, sealed)
		return sent, true, err
	}
	if shipped >= sealed {
		return 0, false, nil // peer is current
	}
	sent, err = n.shipSegments(c, r, filter, shipped+1, sealed)
	if err != nil {
		return sent, false, err
	}
	// A checkpoint may have dropped segments from under the replay; the
	// replay silently skips missing files, so re-check the range and
	// fall back to a full resync if it was compacted away.
	if f2, _ := n.Log().Segments(); f2 > shipped+1 {
		var sent2 int64
		sent2, err = n.fullResync(c, r, filter, sealed)
		return sent + sent2, true, err
	}
	return sent, false, nil
}

// fullResync ships every live record the peer needs, straight from the
// store (covers first contact, ring changes, and compaction races).
func (n *Node) fullResync(c *transport.Client, r *Ring, filter *shipFilter, sealed uint64) (int64, error) {
	var sent int64
	for _, loc := range n.Locations() {
		if !filter.ship(loc) {
			continue
		}
		blobs, err := n.RecordBlobs(loc)
		if err != nil {
			if errors.Is(err, central.ErrNotFound) {
				continue // raced retention; nothing to ship
			}
			return sent, err
		}
		s, err := n.sendBlobs(c, r, blobs, sealed)
		sent += s
		if err != nil {
			return sent, err
		}
	}
	return sent, nil
}

// shipSegments replays sealed WAL segments [from, to] and ships the
// entries whose location the peer needs, in bounded batches.
func (n *Node) shipSegments(c *transport.Client, r *Ring, filter *shipFilter, from, to uint64) (int64, error) {
	var (
		pending      [][]byte
		pendingBytes int
		sent         int64
	)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		s, err := n.sendBatch(c, r, pending, to)
		sent += s
		pending, pendingBytes = pending[:0], 0
		return err
	}
	err := n.Log().ReplaySegments(from, to, func(payload []byte) error {
		rec, err := record.Unmarshal(payload)
		if err != nil {
			return fmt.Errorf("cluster: undecodable WAL entry: %w", err)
		}
		if !filter.ship(rec.Location) {
			return nil
		}
		// scanEntries allocates each payload fresh; retaining it is safe.
		pending = append(pending, payload)
		pendingBytes += len(payload)
		if len(pending) >= maxShipBatch || pendingBytes >= maxShipBytes {
			return flush()
		}
		return nil
	})
	if err != nil {
		return sent, err
	}
	return sent, flush()
}

// sendBlobs ships pre-marshaled record blobs in bounded batches.
func (n *Node) sendBlobs(c *transport.Client, r *Ring, blobs [][]byte, through uint64) (int64, error) {
	var sent int64
	for len(blobs) > 0 {
		cut, bytes := 0, 0
		for cut < len(blobs) && cut < maxShipBatch && bytes < maxShipBytes {
			bytes += len(blobs[cut])
			cut++
		}
		s, err := n.sendBatch(c, r, blobs[:cut], through)
		sent += s
		if err != nil {
			return sent, err
		}
		blobs = blobs[cut:]
	}
	return sent, nil
}

// sendBatch frames and sends one replication batch and checks the ack.
func (n *Node) sendBatch(c *transport.Client, r *Ring, blobs [][]byte, through uint64) (int64, error) {
	batch, err := transport.EncodeRecordBlobs(blobs)
	if err != nil {
		return 0, err
	}
	payload, err := encodeReplBatch(replHeader{From: n.cfg.ID, Epoch: r.Epoch, Through: through}, batch)
	if err != nil {
		return 0, err
	}
	resp, err := c.Call(transport.MsgReplBatch, payload, transport.MsgReplAck)
	if err != nil {
		return 0, err
	}
	ack, err := decodeReplAck(resp)
	if err != nil {
		return 0, err
	}
	if !ack.OK {
		return int64(ack.Applied + ack.Dups), fmt.Errorf("cluster: peer rejected batch: %s", ack.Err)
	}
	return int64(len(blobs)), nil
}

// shipFilter memoizes the per-location ship decision for one (ring,
// peer) pair — the replica walk is O(members·vnodes) and WAL replay
// would otherwise repeat it per record.
type shipFilter struct {
	n    *Node
	r    *Ring
	peer string
	memo map[vhash.LocationID]bool
}

func (f *shipFilter) ship(loc vhash.LocationID) bool {
	if v, ok := f.memo[loc]; ok {
		return v
	}
	v := f.n.shouldShip(f.r, loc, f.peer)
	f.memo[loc] = v
	return v
}

// shouldShip decides whether this node ships loc's records to peer
// under ring r: the leader pushes down to the rest of the replica set;
// a non-leader holding the partition pushes up to the leader. A
// leaderless partition (down, unpromoted primary) ships nowhere until
// failover resolves it — its records stay safe in local WALs.
func (n *Node) shouldShip(r *Ring, loc vhash.LocationID, peer string) bool {
	leader, err := r.Leader(loc)
	if err != nil {
		return false
	}
	if leader.ID == n.cfg.ID {
		for _, m := range r.ReplicaSet(loc) {
			if m.ID == peer {
				return true
			}
		}
		return false
	}
	return peer == leader.ID
}

// waterLocked returns the peer's watermark entry, creating it if
// needed. Callers hold n.mu.
func (n *Node) waterLocked(id string) *peerState {
	ws := n.water[id]
	if ws == nil {
		ws = &peerState{}
		n.water[id] = ws
	}
	return ws
}

// peerConnLocked-free client lookup: dial outside the lock, resolve the
// insert race by discarding the duplicate.
func (n *Node) peerClient(m Member) (*transport.Client, error) {
	n.mu.Lock()
	pc := n.peers[m.ID]
	n.mu.Unlock()
	if pc != nil {
		return pc, nil
	}
	c, err := transport.Dial(m.Addr, n.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if existing := n.peers[m.ID]; existing != nil {
		n.mu.Unlock()
		//ptmlint:allow errdrop -- lost the insert race; the duplicate dial is discarded
		_ = c.Close()
		return existing, nil
	}
	n.peers[m.ID] = c
	n.mu.Unlock()
	return c, nil
}

// prunePeers drops clients and watermarks for members that left the
// ring (the ring keeps Left tombstones, so lookups stay meaningful).
func (n *Node) prunePeers(r *Ring) {
	n.mu.Lock()
	var stale []*transport.Client
	for id, c := range n.peers {
		m, ok := r.Member(id)
		if !ok || m.State == StateLeft {
			stale = append(stale, c)
			delete(n.peers, id)
			delete(n.water, id)
		}
	}
	n.mu.Unlock()
	for _, c := range stale {
		//ptmlint:allow errdrop -- best-effort teardown of a departed peer's connection
		_ = c.Close()
	}
}
