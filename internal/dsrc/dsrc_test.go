package dsrc

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func TestNewChannelValidation(t *testing.T) {
	for _, cfg := range []Config{
		{BeaconLoss: -0.1}, {BeaconLoss: 1}, {ReportLoss: -1}, {ReportLoss: 1.5},
	} {
		if _, err := NewChannel(cfg); !errors.Is(err, ErrBadLoss) {
			t.Errorf("cfg %+v err = %v, want ErrBadLoss", cfg, err)
		}
	}
	if _, err := NewChannel(Config{}); err != nil {
		t.Errorf("lossless config rejected: %v", err)
	}
}

func TestBroadcastReachesAllSubscribers(t *testing.T) {
	c, err := NewChannel(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := map[int]int{}
	cancels := make([]func(), 3)
	for i := 0; i < 3; i++ {
		i := i
		cancels[i], err = c.Subscribe(func(b Beacon) {
			mu.Lock()
			got[i]++
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Broadcast(Beacon{Location: 1, M: 64, Period: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got[i] != 1 {
			t.Errorf("subscriber %d got %d beacons", i, got[i])
		}
	}
	// Unsubscribed vehicles stop hearing beacons.
	cancels[0]()
	if err := c.Broadcast(Beacon{Location: 1, M: 64, Period: 1}); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("after unsubscribe: got = %v", got)
	}
}

func TestSendRequiresSink(t *testing.T) {
	c, err := NewChannel(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(Report{}); !errors.Is(err, ErrNoUplink) {
		t.Errorf("err = %v, want ErrNoUplink", err)
	}
	var n int
	if err := c.AttachSink(func(Report) { n++ }); err != nil {
		t.Fatal(err)
	}
	if err := c.AttachSink(func(Report) {}); err == nil {
		t.Error("second sink accepted")
	}
	if err := c.Send(Report{Index: 5}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("sink saw %d reports", n)
	}
}

func TestLossRates(t *testing.T) {
	c, err := NewChannel(Config{BeaconLoss: 0.5, ReportLoss: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	if _, err := c.Subscribe(func(Beacon) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	sunk := 0
	if err := c.AttachSink(func(Report) { sunk++ }); err != nil {
		t.Fatal(err)
	}
	const n = 4000
	for i := 0; i < n; i++ {
		if err := c.Broadcast(Beacon{}); err != nil {
			t.Fatal(err)
		}
		if err := c.Send(Report{}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.BeaconsSent != n || st.ReportsSent != n {
		t.Fatalf("stats = %+v", st)
	}
	if frac := float64(st.BeaconsLost) / n; frac < 0.45 || frac > 0.55 {
		t.Errorf("beacon loss %.3f, want ~0.5", frac)
	}
	if frac := float64(st.ReportsLost) / n; frac < 0.20 || frac > 0.30 {
		t.Errorf("report loss %.3f, want ~0.25", frac)
	}
	if delivered != n-int(st.BeaconsLost) {
		t.Errorf("delivered %d, want %d", delivered, n-int(st.BeaconsLost))
	}
	if sunk != n-int(st.ReportsLost) {
		t.Errorf("sunk %d, want %d", sunk, n-int(st.ReportsLost))
	}
}

func TestClose(t *testing.T) {
	c, err := NewChannel(Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Broadcast(Beacon{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Broadcast err = %v", err)
	}
	if err := c.Send(Report{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send err = %v", err)
	}
	if _, err := c.Subscribe(func(Beacon) {}); !errors.Is(err, ErrClosed) {
		t.Errorf("Subscribe err = %v", err)
	}
	if err := c.AttachSink(func(Report) {}); !errors.Is(err, ErrClosed) {
		t.Errorf("AttachSink err = %v", err)
	}
}

func TestConcurrentUse(t *testing.T) {
	c, err := NewChannel(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var count sync.Map
	for i := 0; i < 8; i++ {
		if _, err := c.Subscribe(func(b Beacon) {
			v, _ := count.LoadOrStore(b.Period, new(sync.Mutex))
			_ = v
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AttachSink(func(Report) {}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = c.Broadcast(Beacon{Period: 1})
				_ = c.Send(Report{})
			}
		}()
	}
	wg.Wait() // must not race (run with -race)
}

func TestAnonymousMAC(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seen := map[MAC]bool{}
	for i := 0; i < 1000; i++ {
		m := NewAnonymousMAC(rng)
		if m[0]&0x01 != 0 {
			t.Fatalf("multicast bit set: %v", m)
		}
		if m[0]&0x02 == 0 {
			t.Fatalf("not locally administered: %v", m)
		}
		seen[m] = true
	}
	// 1000 draws from 2^46 space: collisions vanishingly unlikely.
	if len(seen) < 999 {
		t.Errorf("only %d distinct MACs in 1000 draws", len(seen))
	}
	if NewAnonymousMAC(rng).String() == "" {
		t.Error("empty String()")
	}
}
