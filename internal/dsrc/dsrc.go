// Package dsrc simulates the vehicle-to-infrastructure wireless exchange of
// Section II (DSRC / IEEE 802.11p in the paper): RSUs broadcast signed
// beacons at preset intervals; vehicles in range respond with a single
// index value. The channel model supports probabilistic loss so the rest
// of the stack can be exercised under imperfect delivery, and every
// vehicle report carries a fresh one-time MAC address (the SpoofMAC model
// of Section II-B), so the link layer leaks no stable identifier.
package dsrc

import (
	crand "crypto/rand"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"ptm/internal/record"
	"ptm/internal/vhash"
)

// Beacon is the RSU's periodic broadcast (Section II-D): the location, the
// current bitmap size m, the measurement period, the RSU's certificate,
// and a signature over the mutable fields.
type Beacon struct {
	Location vhash.LocationID
	M        int
	Period   record.PeriodID
	CertDER  []byte
	Sig      []byte
}

// MAC is a 48-bit link-layer address. Vehicles draw a fresh one per report.
type MAC [6]byte

// String renders the address in colon-hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Report is a vehicle's response to a beacon: nothing but a one-time MAC
// and the bit index h_v. No vehicle identity is present by construction.
type Report struct {
	SrcMAC MAC
	Period record.PeriodID
	Index  uint64
}

// Config tunes the channel model.
type Config struct {
	// BeaconLoss and ReportLoss are independent per-message loss
	// probabilities in [0, 1).
	BeaconLoss, ReportLoss float64
	// Seed makes loss decisions reproducible.
	Seed int64
}

// Errors.
var (
	ErrBadLoss  = errors.New("dsrc: loss probability outside [0, 1)")
	ErrNoUplink = errors.New("dsrc: channel has no report sink attached")
	ErrClosed   = errors.New("dsrc: channel closed")
)

// Channel is one RSU's radio neighborhood. Vehicles subscribe while in
// range; the RSU broadcasts beacons into it and consumes reports from it.
// All delivery is synchronous; loss is the only impairment modeled, since
// the measurement protocol is a stateless request/response whose timing
// does not affect the estimators.
//
// Send is the high-fan-in path (every passing vehicle at every beacon)
// and is lock-free when ReportLoss is zero: the sink and counters are
// atomics, so concurrent vehicle reports proceed without convoying on the
// channel mutex. Lossy channels take the mutex only for the RNG draw.
type Channel struct {
	mu        sync.Mutex
	rng       *rand.Rand           //ptm:guardedby mu
	nextSub   int                  //ptm:guardedby mu
	listeners map[int]func(Beacon) //ptm:guardedby mu

	cfg    Config // immutable after NewChannel
	closed atomic.Bool
	// sink is RCU-published: attach/detach store it under mu; the
	// lock-free Send path loads it and must not retain the pointer
	// across blocking (machine-checked by the rcu lint rule).
	//ptm:rcu mu
	sink atomic.Pointer[func(Report)]

	beaconsSent, beaconsLost atomic.Uint64
	reportsSent, reportsLost atomic.Uint64
}

// NewChannel creates a channel with the given impairment model.
func NewChannel(cfg Config) (*Channel, error) {
	if cfg.BeaconLoss < 0 || cfg.BeaconLoss >= 1 {
		return nil, fmt.Errorf("%w: beacon %v", ErrBadLoss, cfg.BeaconLoss)
	}
	if cfg.ReportLoss < 0 || cfg.ReportLoss >= 1 {
		return nil, fmt.Errorf("%w: report %v", ErrBadLoss, cfg.ReportLoss)
	}
	return &Channel{
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		cfg:       cfg,
		listeners: make(map[int]func(Beacon)),
	}, nil
}

// Subscribe registers a beacon listener (a vehicle entering radio range)
// and returns an unsubscribe function (the vehicle leaving range).
func (c *Channel) Subscribe(fn func(Beacon)) (cancel func(), err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	id := c.nextSub
	c.nextSub++
	c.listeners[id] = fn
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		delete(c.listeners, id)
	}, nil
}

// AttachSink registers the RSU-side report consumer. Only one sink may be
// attached at a time.
func (c *Channel) AttachSink(fn func(Report)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return ErrClosed
	}
	if c.sink.Load() != nil {
		return errors.New("dsrc: report sink already attached")
	}
	c.sink.Store(&fn)
	return nil
}

// Broadcast delivers the beacon to every subscribed vehicle, dropping each
// copy independently with probability BeaconLoss. Listeners run on the
// caller's goroutine, outside the channel lock. Beacons are visible to
// every radio in range: a public sink.
//
//ptm:sink dsrc broadcast
func (c *Channel) Broadcast(b Beacon) error {
	c.mu.Lock()
	if c.closed.Load() {
		c.mu.Unlock()
		return ErrClosed
	}
	var deliver []func(Beacon)
	for _, fn := range c.listeners {
		c.beaconsSent.Add(1)
		if c.cfg.BeaconLoss > 0 && c.rng.Float64() < c.cfg.BeaconLoss {
			c.beaconsLost.Add(1)
			continue
		}
		deliver = append(deliver, fn)
	}
	c.mu.Unlock()
	for _, fn := range deliver {
		fn(b)
	}
	return nil
}

// Send transmits a vehicle report to the RSU, subject to ReportLoss. The
// over-the-air report is observable by any radio in range: a public sink.
//
//ptm:sink dsrc transmission
func (c *Channel) Send(r Report) error {
	if c.closed.Load() {
		return ErrClosed
	}
	sink := c.sink.Load()
	if sink == nil {
		return ErrNoUplink
	}
	c.reportsSent.Add(1)
	if c.cfg.ReportLoss > 0 {
		c.mu.Lock()
		lost := c.rng.Float64() < c.cfg.ReportLoss
		c.mu.Unlock()
		if lost {
			c.reportsLost.Add(1)
			return nil // lost in the air; sender cannot tell
		}
	}
	(*sink)(r)
	return nil
}

// Close tears the channel down; subsequent operations fail with ErrClosed.
// A Send racing Close may still deliver its report — exactly like a frame
// already in the air when the radio powers off.
func (c *Channel) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed.Store(true)
	c.listeners = map[int]func(Beacon){}
	c.sink.Store(nil)
}

// Stats reports message counters (sent includes lost).
type Stats struct {
	BeaconsSent, BeaconsLost uint64
	ReportsSent, ReportsLost uint64
}

// Stats returns a snapshot of the channel counters.
func (c *Channel) Stats() Stats {
	return Stats{
		BeaconsSent: c.beaconsSent.Load(), BeaconsLost: c.beaconsLost.Load(),
		ReportsSent: c.reportsSent.Load(), ReportsLost: c.reportsLost.Load(),
	}
}

// NewAnonymousMAC draws a fresh locally administered, unicast MAC address
// from rng — the SpoofMAC one-time address model. It exists for
// simulations that need reproducible runs; deployments use NewSecureMAC,
// whose addresses cannot be predicted by an observer.
func NewAnonymousMAC(rng *rand.Rand) MAC {
	var m MAC
	v := rng.Uint64()
	for i := 0; i < 6; i++ {
		m[i] = byte(v >> (8 * i))
	}
	return finishMAC(m)
}

// NewSecureMAC draws a fresh locally administered, unicast MAC address
// from crypto/rand. Unpredictability is what makes consecutive reports
// unlinkable at the link layer (Section II-B), so this is the source the
// vehicle runtime uses outside of simulations.
func NewSecureMAC() (MAC, error) {
	var m MAC
	if _, err := crand.Read(m[:]); err != nil {
		return MAC{}, fmt.Errorf("dsrc: drawing one-time MAC: %w", err)
	}
	return finishMAC(m), nil
}

// finishMAC forces the locally-administered bit on and the multicast bit
// off, the address class SpoofMAC draws from.
func finishMAC(m MAC) MAC {
	m[0] = (m[0] | 0x02) &^ 0x01
	return m
}
