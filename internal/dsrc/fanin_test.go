package dsrc

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentSendFanIn: the lossless Send path is lock-free; a storm
// of concurrent senders must deliver every report exactly once and keep
// the counters exact.
func TestConcurrentSendFanIn(t *testing.T) {
	const (
		workers = 8
		perW    = 5000
	)
	c, err := NewChannel(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var delivered atomic.Uint64
	if err := c.AttachSink(func(Report) { delivered.Add(1) }); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if err := c.Send(Report{Period: 1, Index: uint64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := delivered.Load(); got != workers*perW {
		t.Errorf("delivered %d reports, want %d", got, workers*perW)
	}
	st := c.Stats()
	if st.ReportsSent != workers*perW || st.ReportsLost != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestConcurrentSendWithLoss: the lossy path serializes only the RNG
// draw; counters must still balance exactly under concurrency.
func TestConcurrentSendWithLoss(t *testing.T) {
	const (
		workers = 4
		perW    = 2000
	)
	c, err := NewChannel(Config{ReportLoss: 0.3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var delivered atomic.Uint64
	if err := c.AttachSink(func(Report) { delivered.Add(1) }); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if err := c.Send(Report{}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.ReportsSent != workers*perW {
		t.Errorf("sent = %d, want %d", st.ReportsSent, workers*perW)
	}
	if st.ReportsLost+delivered.Load() != st.ReportsSent {
		t.Errorf("lost %d + delivered %d != sent %d",
			st.ReportsLost, delivered.Load(), st.ReportsSent)
	}
	if st.ReportsLost == 0 {
		t.Error("no losses at 30% loss rate")
	}
}
