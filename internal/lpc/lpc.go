// Package lpc implements linear probabilistic counting (Whang, Vander-Zanden
// and Taylor, ACM TODS 1990), the cardinality-estimation substrate the paper
// builds on: Eq. (1) estimates a period's traffic volume from the fraction
// of zero bits in the RSU's record, and Eq. (2) sizes the record from the
// expected volume and the system-wide load factor f.
package lpc

import (
	"errors"
	"fmt"
	"math"
)

// Estimation errors.
var (
	// ErrSaturated is returned when a bitmap has no zero bits left; the
	// linear-counting estimate diverges and the record is unusable. The
	// deployment remedy is a larger load factor f (Eq. 2).
	ErrSaturated = errors.New("lpc: bitmap saturated (no zero bits)")
	// ErrBadFraction is returned for zero fractions outside (0, 1].
	ErrBadFraction = errors.New("lpc: zero fraction out of range")
	// ErrBadSize is returned for non-positive bitmap sizes.
	ErrBadSize = errors.New("lpc: bitmap size must be positive")
)

// Estimate returns n̂ = ln(V0) / ln(1 - 1/m), the number of independently
// and uniformly hashed items that would leave a fraction V0 of an m-bit
// bitmap zero. For large m this is the paper's Eq. (1), n̂ = -m ln V0; we
// use the exact base because the estimators of Sections III-B and IV-B are
// derived with (1 - 1/m) factors and the joins must stay consistent.
//
//ptm:noalloc
func Estimate(m int, zeroFraction float64) (float64, error) {
	if m <= 0 {
		return 0, fmt.Errorf("%w: %d", ErrBadSize, m)
	}
	if zeroFraction <= 0 {
		if zeroFraction == 0 {
			return 0, ErrSaturated
		}
		return 0, fmt.Errorf("%w: %v", ErrBadFraction, zeroFraction)
	}
	if zeroFraction > 1 {
		return 0, fmt.Errorf("%w: %v", ErrBadFraction, zeroFraction)
	}
	return math.Log(zeroFraction) / math.Log(1-1/float64(m)), nil
}

// EstimateApprox returns the paper's literal Eq. (1), n̂ = -m ln V0. It
// differs from Estimate by O(n/m); both are exposed so the experiment
// harness can demonstrate the (negligible) difference.
//
//ptm:noalloc
func EstimateApprox(m int, zeroFraction float64) (float64, error) {
	if m <= 0 {
		return 0, fmt.Errorf("%w: %d", ErrBadSize, m)
	}
	if zeroFraction <= 0 {
		if zeroFraction == 0 {
			return 0, ErrSaturated
		}
		return 0, fmt.Errorf("%w: %v", ErrBadFraction, zeroFraction)
	}
	if zeroFraction > 1 {
		return 0, fmt.Errorf("%w: %v", ErrBadFraction, zeroFraction)
	}
	return -float64(m) * math.Log(zeroFraction), nil
}

// StdError returns the standard error of the linear-counting estimate for
// true cardinality n on an m-bit bitmap, per Whang et al.:
//
//	StdErr(n̂)/n = sqrt(m (e^t - t - 1)) / (n),  t = n/m.
//
// Useful for choosing f and for sanity-checking simulation variance.
//
//ptm:noalloc
func StdError(n float64, m int) float64 {
	if n <= 0 || m <= 0 {
		return 0
	}
	t := n / float64(m)
	return math.Sqrt(float64(m)*(math.Exp(t)-t-1)) / n
}

// DefaultLoadFactor is the paper's recommended accuracy/privacy compromise
// f = 2 (Section VI-C).
const DefaultLoadFactor = 2.0

// BitmapSize implements Eq. (2): m = 2^ceil(log2(expected * f)), the
// power-of-two record size for an RSU whose historical per-period volume is
// expected, under load factor f. The result is clamped below at 64 bits
// (one machine word) — relevant only for near-empty locations — and errors
// above 2^30 bits.
func BitmapSize(expected float64, f float64) (int, error) {
	if expected <= 0 {
		return 0, fmt.Errorf("lpc: expected volume must be positive, got %v", expected)
	}
	if f <= 0 {
		return 0, fmt.Errorf("lpc: load factor must be positive, got %v", f)
	}
	target := expected * f
	m := 64
	for float64(m) < target {
		m <<= 1
		if m > 1<<30 {
			return 0, fmt.Errorf("lpc: required bitmap size exceeds 2^30 bits (expected=%v f=%v)", expected, f)
		}
	}
	return m, nil
}

// Saturation reports the occupancy n/m at which the probability of a fully
// saturated m-bit bitmap (→ ErrSaturated) stays below the given risk. It
// inverts P(no zero bit) ≈ (1 - e^{-n/m})^m <= risk. Used by capacity
// planning in the central server.
func Saturation(m int, risk float64) (maxLoad float64) {
	if m <= 0 || risk <= 0 || risk >= 1 {
		return 0
	}
	// (1 - e^{-t})^m = risk  =>  t = -ln(1 - risk^{1/m})
	return -math.Log(1 - math.Pow(risk, 1/float64(m)))
}
