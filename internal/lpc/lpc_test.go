package lpc

import (
	"errors"
	"math"
	"testing"

	"ptm/internal/bitmap"
	"ptm/internal/vhash"
)

func TestEstimateExactValues(t *testing.T) {
	// V0 = (1-1/m)^n exactly inverts to n.
	for _, tc := range []struct {
		m int
		n float64
	}{
		{1 << 10, 100},
		{1 << 10, 1000},
		{1 << 20, 500000},
		{64, 10},
	} {
		v0 := math.Pow(1-1/float64(tc.m), tc.n)
		got, err := Estimate(tc.m, v0)
		if err != nil {
			t.Fatalf("Estimate(%d, %v): %v", tc.m, v0, err)
		}
		if math.Abs(got-tc.n) > 1e-6*tc.n {
			t.Errorf("Estimate(m=%d) = %v, want %v", tc.m, got, tc.n)
		}
	}
}

func TestEstimateApproxCloseToExact(t *testing.T) {
	m := 1 << 20
	v0 := math.Exp(-0.5) // n/m = 0.5, f = 2 regime
	exact, err := Estimate(m, v0)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := EstimateApprox(m, v0)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(exact-approx) / exact; rel > 1e-5 {
		t.Errorf("approx deviates by %v from exact for large m", rel)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := Estimate(0, 0.5); !errors.Is(err, ErrBadSize) {
		t.Errorf("m=0 err = %v", err)
	}
	if _, err := Estimate(-5, 0.5); !errors.Is(err, ErrBadSize) {
		t.Errorf("m<0 err = %v", err)
	}
	if _, err := Estimate(64, 0); !errors.Is(err, ErrSaturated) {
		t.Errorf("V0=0 err = %v", err)
	}
	if _, err := Estimate(64, -0.1); !errors.Is(err, ErrBadFraction) {
		t.Errorf("V0<0 err = %v", err)
	}
	if _, err := Estimate(64, 1.5); !errors.Is(err, ErrBadFraction) {
		t.Errorf("V0>1 err = %v", err)
	}
	if _, err := EstimateApprox(0, 0.5); !errors.Is(err, ErrBadSize) {
		t.Errorf("approx m=0 err = %v", err)
	}
	if _, err := EstimateApprox(64, 0); !errors.Is(err, ErrSaturated) {
		t.Errorf("approx V0=0 err = %v", err)
	}
	if _, err := EstimateApprox(64, 2); !errors.Is(err, ErrBadFraction) {
		t.Errorf("approx V0>1 err = %v", err)
	}
}

func TestEstimateEmptyBitmapIsZero(t *testing.T) {
	got, err := Estimate(1<<10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("empty bitmap estimate = %v, want 0", got)
	}
}

// TestEstimateEndToEnd encodes real vehicle identities into a bitmap and
// checks the estimate lands near the true count — Eq. (1) in action.
func TestEstimateEndToEnd(t *testing.T) {
	const (
		n = 5000
		f = 2.0
	)
	m, err := BitmapSize(n, f)
	if err != nil {
		t.Fatal(err)
	}
	b := bitmap.MustNew(m)
	for i := 0; i < n; i++ {
		v, err := vhash.NewSeededIdentity(vhash.VehicleID(i), 3, 42)
		if err != nil {
			t.Fatal(err)
		}
		b.Set(v.Index(1, m))
	}
	got, err := Estimate(m, b.FractionZero())
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-n) / n; rel > 0.05 {
		t.Errorf("end-to-end estimate %v vs true %d (rel err %.3f)", got, n, rel)
	}
}

func TestStdError(t *testing.T) {
	// Whang et al.: for load t = n/m = 1, relative std error ~ sqrt(m(e-2))/n.
	m := 1 << 16
	n := float64(m)
	want := math.Sqrt(float64(m)*(math.E-2)) / n
	if got := StdError(n, m); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdError = %v, want %v", got, want)
	}
	if StdError(0, m) != 0 || StdError(100, 0) != 0 {
		t.Error("degenerate StdError not 0")
	}
	// Larger m (smaller load) → smaller relative error.
	if StdError(1000, 1<<14) >= StdError(1000, 1<<12) {
		t.Error("std error should shrink as m grows")
	}
}

func TestBitmapSize(t *testing.T) {
	cases := []struct {
		expected float64
		f        float64
		want     int
	}{
		{1000, 2, 2048},
		{1024, 2, 2048},
		{1025, 2, 4096},
		{28000, 2, 65536},     // Table I, L=8
		{213000, 2, 524288},   // Table I, L=1
		{451000, 2, 1 << 20},  // Table I, L'
		{1, 2, 64},            // clamped to one word
		{3, 1, 64},            // clamped
		{100000, 3, 1 << 19},  // f=3
		{100000, 1.5, 262144}, // fractional f
	}
	for _, tc := range cases {
		got, err := BitmapSize(tc.expected, tc.f)
		if err != nil {
			t.Fatalf("BitmapSize(%v, %v): %v", tc.expected, tc.f, err)
		}
		if got != tc.want {
			t.Errorf("BitmapSize(%v, %v) = %d, want %d", tc.expected, tc.f, got, tc.want)
		}
		if got&(got-1) != 0 {
			t.Errorf("BitmapSize(%v, %v) = %d is not a power of two", tc.expected, tc.f, got)
		}
	}
}

func TestBitmapSizeErrors(t *testing.T) {
	if _, err := BitmapSize(0, 2); err == nil {
		t.Error("expected=0 accepted")
	}
	if _, err := BitmapSize(-10, 2); err == nil {
		t.Error("expected<0 accepted")
	}
	if _, err := BitmapSize(1000, 0); err == nil {
		t.Error("f=0 accepted")
	}
	if _, err := BitmapSize(1e12, 4); err == nil {
		t.Error("oversized bitmap accepted")
	}
}

func TestSaturation(t *testing.T) {
	// For sane sizes the saturation load should be comfortably above the
	// f=2 operating point (load 0.5) and increase with m.
	l1 := Saturation(1<<10, 1e-6)
	l2 := Saturation(1<<20, 1e-6)
	if l1 <= 0.5 {
		t.Errorf("saturation load %v <= operating load 0.5", l1)
	}
	if l2 <= l1 {
		t.Errorf("saturation load should grow with m: %v <= %v", l2, l1)
	}
	if Saturation(0, 0.5) != 0 || Saturation(64, 0) != 0 || Saturation(64, 1) != 0 {
		t.Error("degenerate Saturation not 0")
	}
}

func BenchmarkEstimate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = Estimate(1<<20, 0.5)
	}
}
