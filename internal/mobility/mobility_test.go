package mobility

import (
	"errors"
	"math"
	"testing"

	"ptm/internal/core"
	"ptm/internal/record"
	"ptm/internal/vhash"
)

func mustGrid(t *testing.T, w, h int) *Grid {
	t.Helper()
	g, err := NewGrid(w, h)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGridValidation(t *testing.T) {
	for _, dims := range [][2]int{{0, 5}, {5, 0}, {-1, 3}} {
		if _, err := NewGrid(dims[0], dims[1]); !errors.Is(err, ErrBadGrid) {
			t.Errorf("NewGrid(%v) err = %v", dims, err)
		}
	}
	if _, err := NewGrid(maxGridSide+1, 1); !errors.Is(err, ErrGridLimit) {
		t.Errorf("oversize err should be ErrGridLimit")
	}
	g := mustGrid(t, 4, 3)
	if g.Width() != 4 || g.Height() != 3 {
		t.Errorf("dims = %dx%d", g.Width(), g.Height())
	}
}

func TestLocUniqueness(t *testing.T) {
	g := mustGrid(t, 10, 10)
	seen := map[vhash.LocationID]bool{}
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			loc, err := g.Loc(Point{x, y})
			if err != nil {
				t.Fatal(err)
			}
			if seen[loc] {
				t.Fatalf("duplicate LocationID at (%d,%d)", x, y)
			}
			seen[loc] = true
		}
	}
	if _, err := g.Loc(Point{10, 0}); !errors.Is(err, ErrOffGrid) {
		t.Errorf("off-grid err = %v", err)
	}
}

func TestRouteShape(t *testing.T) {
	g := mustGrid(t, 8, 8)
	route, err := g.Route(Trip{From: Point{1, 1}, To: Point{4, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Manhattan length + 1 endpoints: 3 + 2 + 1 = 6 intersections.
	if len(route) != 6 {
		t.Fatalf("route length = %d, want 6", len(route))
	}
	first, err := g.Loc(Point{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	last, err := g.Loc(Point{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if route[0] != first || route[len(route)-1] != last {
		t.Error("route endpoints wrong")
	}
	// Reverse direction also works.
	back, err := g.Route(Trip{From: Point{4, 3}, To: Point{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 6 {
		t.Errorf("reverse route length = %d", len(back))
	}
	// Degenerate trip.
	self, err := g.Route(Trip{From: Point{2, 2}, To: Point{2, 2}})
	if err != nil || len(self) != 1 {
		t.Errorf("self trip: %v, %v", self, err)
	}
	if _, err := g.Route(Trip{From: Point{-1, 0}, To: Point{1, 1}}); !errors.Is(err, ErrOffGrid) {
		t.Errorf("off-grid trip err = %v", err)
	}
}

func TestWorldGroundTruth(t *testing.T) {
	g := mustGrid(t, 6, 6)
	w, err := NewWorld(g, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddCommuters(100, Trip{From: Point{0, 0}, To: Point{5, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddCommuters(50, Trip{From: Point{0, 5}, To: Point{5, 5}}); err != nil {
		t.Fatal(err)
	}
	if w.Commuters() != 150 {
		t.Fatalf("commuters = %d", w.Commuters())
	}
	locMid, err := g.Loc(Point{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	locTop, err := g.Loc(Point{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.CommutersThrough(locMid); got != 100 {
		t.Errorf("through mid = %d, want 100", got)
	}
	if got := w.CommutersThrough(locTop); got != 50 {
		t.Errorf("through top = %d, want 50", got)
	}
	if got := w.CommutersThroughBoth(locMid, locTop); got != 0 {
		t.Errorf("through both = %d, want 0 (disjoint corridors)", got)
	}
	locMid2, err := g.Loc(Point{4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.CommutersThroughBoth(locMid, locMid2); got != 100 {
		t.Errorf("through corridor pair = %d, want 100", got)
	}
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(nil, 3, 1); err == nil {
		t.Error("nil grid accepted")
	}
	g := mustGrid(t, 2, 2)
	if _, err := NewWorld(g, 0, 1); !errors.Is(err, vhash.ErrInvalidS) {
		t.Errorf("s=0 err = %v", err)
	}
	w, err := NewWorld(g, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddCommuters(-1, Trip{}); !errors.Is(err, ErrBadCount) {
		t.Errorf("negative commuters err = %v", err)
	}
	if err := w.AddCommuters(1, Trip{From: Point{9, 9}}); !errors.Is(err, ErrOffGrid) {
		t.Errorf("off-grid commuters err = %v", err)
	}
	if err := w.SetBackgroundTrips(-1); !errors.Is(err, ErrBadCount) {
		t.Errorf("negative background err = %v", err)
	}
}

func TestDayVisits(t *testing.T) {
	g := mustGrid(t, 4, 4)
	w, err := NewWorld(g, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddCommuters(10, Trip{From: Point{0, 0}, To: Point{3, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := w.SetBackgroundTrips(20); err != nil {
		t.Fatal(err)
	}
	visits, err := w.Day()
	if err != nil {
		t.Fatal(err)
	}
	loc, err := g.Loc(Point{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(visits[loc]) < 10 {
		t.Errorf("corridor location saw %d visits, want >= 10 commuters", len(visits[loc]))
	}
	// Two days differ in background traffic but share commuters.
	visits2, err := w.Day()
	if err != nil {
		t.Fatal(err)
	}
	if len(visits2[loc]) < 10 {
		t.Errorf("day 2 corridor visits = %d", len(visits2[loc]))
	}
}

// TestMobilityEndToEnd: run a multi-day mobility simulation through the
// real record/estimator pipeline and check both point and point-to-point
// persistent estimates against mobility ground truth.
func TestMobilityEndToEnd(t *testing.T) {
	g := mustGrid(t, 5, 5)
	w, err := NewWorld(g, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Two commuter corridors crossing at (2,2).
	if err := w.AddCommuters(300, Trip{From: Point{0, 2}, To: Point{4, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddCommuters(200, Trip{From: Point{2, 0}, To: Point{2, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := w.SetBackgroundTrips(800); err != nil {
		t.Fatal(err)
	}

	const days = 5
	locA, err := g.Loc(Point{1, 2}) // horizontal corridor only
	if err != nil {
		t.Fatal(err)
	}
	locB, err := g.Loc(Point{3, 2}) // horizontal corridor only
	if err != nil {
		t.Fatal(err)
	}
	recsA := make([]*record.Record, 0, days)
	recsB := make([]*record.Record, 0, days)
	for day := 1; day <= days; day++ {
		visits, err := w.Day()
		if err != nil {
			t.Fatal(err)
		}
		build := func(loc vhash.LocationID) *record.Record {
			vs := visits[loc]
			m := 1 << 11 // ~f=2 for the corridor volumes here
			rec, err := record.New(loc, record.PeriodID(day), m)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range vs {
				rec.Bitmap.Set(v.Index(loc, m))
			}
			return rec
		}
		recsA = append(recsA, build(locA))
		recsB = append(recsB, build(locB))
	}
	setA, err := record.NewSet(recsA)
	if err != nil {
		t.Fatal(err)
	}
	setB, err := record.NewSet(recsB)
	if err != nil {
		t.Fatal(err)
	}

	truthA := float64(w.CommutersThrough(locA))
	point, err := core.EstimatePoint(setA)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(point.Estimate-truthA) / truthA; re > 0.25 {
		t.Errorf("point estimate %v vs truth %v (rel err %.3f)", point.Estimate, truthA, re)
	}

	truthAB := float64(w.CommutersThroughBoth(locA, locB))
	p2p, err := core.EstimatePointToPoint(setA, setB, 3)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(p2p.Estimate-truthAB) / truthAB; re > 0.3 {
		t.Errorf("p2p estimate %v vs truth %v (rel err %.3f)", p2p.Estimate, truthAB, re)
	}
}
