// Package mobility provides a simple road-network and trip model for
// driving full-stack simulations: a rectangular grid of instrumented
// intersections, deterministic L-shaped routes, a commuter fleet that
// repeats its origin–destination trip every day (the persistent traffic),
// and one-off background trips (the transient traffic).
//
// The paper's estimators consume only which vehicles passed which RSU in
// which period; this package generates exactly that, with ground truth
// available for every location and location pair.
package mobility

import (
	"errors"
	"fmt"
	"math/rand"

	"ptm/internal/vhash"
)

// Errors.
var (
	ErrBadGrid   = errors.New("mobility: grid dimensions must be positive")
	ErrOffGrid   = errors.New("mobility: point outside the grid")
	ErrBadCount  = errors.New("mobility: count must be non-negative")
	ErrGridLimit = errors.New("mobility: grid too large")
)

// Point is an intersection coordinate.
type Point struct{ X, Y int }

// Trip is an origin–destination pair.
type Trip struct{ From, To Point }

// Grid is a W x H network of instrumented intersections. Every
// intersection hosts one RSU whose LocationID encodes its coordinates.
type Grid struct {
	w, h int
}

// maxGridSide bounds grid dimensions so LocationIDs stay collision-free.
const maxGridSide = 1 << 20

// NewGrid creates a W x H grid.
func NewGrid(w, h int) (*Grid, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadGrid, w, h)
	}
	if w > maxGridSide || h > maxGridSide {
		return nil, fmt.Errorf("%w: %dx%d", ErrGridLimit, w, h)
	}
	return &Grid{w: w, h: h}, nil
}

// Width returns the number of intersections per row.
func (g *Grid) Width() int { return g.w }

// Height returns the number of intersection rows.
func (g *Grid) Height() int { return g.h }

// Contains reports whether p lies on the grid.
func (g *Grid) Contains(p Point) bool {
	return p.X >= 0 && p.X < g.w && p.Y >= 0 && p.Y < g.h
}

// Loc returns the LocationID of the intersection at p.
func (g *Grid) Loc(p Point) (vhash.LocationID, error) {
	if !g.Contains(p) {
		return 0, fmt.Errorf("%w: %+v", ErrOffGrid, p)
	}
	return vhash.LocationID(uint64(p.Y)<<20 | uint64(p.X)), nil
}

// Route returns the intersections of the deterministic L-shaped path from
// trip.From to trip.To: horizontal leg first, then vertical. Both
// endpoints are included; a zero-length trip visits one intersection.
func (g *Grid) Route(trip Trip) ([]vhash.LocationID, error) {
	if !g.Contains(trip.From) {
		return nil, fmt.Errorf("%w: from %+v", ErrOffGrid, trip.From)
	}
	if !g.Contains(trip.To) {
		return nil, fmt.Errorf("%w: to %+v", ErrOffGrid, trip.To)
	}
	var pts []Point
	step := func(a, b int) int {
		if a < b {
			return 1
		}
		return -1
	}
	cur := trip.From
	pts = append(pts, cur)
	for cur.X != trip.To.X {
		cur.X += step(cur.X, trip.To.X)
		pts = append(pts, cur)
	}
	for cur.Y != trip.To.Y {
		cur.Y += step(cur.Y, trip.To.Y)
		pts = append(pts, cur)
	}
	out := make([]vhash.LocationID, len(pts))
	for i, p := range pts {
		loc, err := g.Loc(p)
		if err != nil {
			return nil, err
		}
		out[i] = loc
	}
	return out, nil
}

// Commuter is a vehicle repeating the same trip every day.
type Commuter struct {
	Identity *vhash.Identity
	Trip     Trip
	route    []vhash.LocationID
}

// World holds the grid, the commuter fleet, and the background-trip model.
type World struct {
	grid      *Grid
	s         int
	seed      uint64
	rng       *rand.Rand
	nextID    uint64
	commuters []*Commuter
	// backgroundPerDay one-off trips are generated each day.
	backgroundPerDay int
}

// NewWorld creates an empty world. s is the representative-bit parameter
// for vehicle identities; seed drives all randomness.
func NewWorld(grid *Grid, s int, seed uint64) (*World, error) {
	if grid == nil {
		return nil, errors.New("mobility: nil grid")
	}
	if s < vhash.MinS || s > vhash.MaxS {
		return nil, fmt.Errorf("mobility: %w", vhash.ErrInvalidS)
	}
	return &World{
		grid: grid,
		s:    s,
		seed: seed,
		rng:  rand.New(rand.NewSource(int64(seed))),
	}, nil
}

func (w *World) newIdentity() (*vhash.Identity, error) {
	v, err := vhash.NewSeededIdentity(vhash.VehicleID(w.nextID), w.s, w.seed)
	if err != nil {
		return nil, err
	}
	w.nextID++
	return v, nil
}

// AddCommuters adds n commuters that all drive the given trip daily.
func (w *World) AddCommuters(n int, trip Trip) error {
	if n < 0 {
		return fmt.Errorf("%w: %d", ErrBadCount, n)
	}
	route, err := w.grid.Route(trip)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		v, err := w.newIdentity()
		if err != nil {
			return err
		}
		w.commuters = append(w.commuters, &Commuter{Identity: v, Trip: trip, route: route})
	}
	return nil
}

// SetBackgroundTrips sets how many one-off trips (fresh vehicle, random
// endpoints) occur per day.
func (w *World) SetBackgroundTrips(n int) error {
	if n < 0 {
		return fmt.Errorf("%w: %d", ErrBadCount, n)
	}
	w.backgroundPerDay = n
	return nil
}

// Commuters returns the fleet size.
func (w *World) Commuters() int { return len(w.commuters) }

// Visits maps each location to the vehicles that passed it during one day.
type Visits map[vhash.LocationID][]*vhash.Identity

// Day simulates one day: every commuter drives its route; background
// trips occur with fresh vehicles. The same World must be asked for days
// in sequence; each call draws new background traffic.
func (w *World) Day() (Visits, error) {
	visits := make(Visits)
	for _, c := range w.commuters {
		for _, loc := range c.route {
			visits[loc] = append(visits[loc], c.Identity)
		}
	}
	for i := 0; i < w.backgroundPerDay; i++ {
		trip := Trip{
			From: Point{X: w.rng.Intn(w.grid.w), Y: w.rng.Intn(w.grid.h)},
			To:   Point{X: w.rng.Intn(w.grid.w), Y: w.rng.Intn(w.grid.h)},
		}
		route, err := w.grid.Route(trip)
		if err != nil {
			return nil, err
		}
		v, err := w.newIdentity()
		if err != nil {
			return nil, err
		}
		for _, loc := range route {
			visits[loc] = append(visits[loc], v)
		}
	}
	return visits, nil
}

// CommutersThrough returns the ground-truth number of commuters whose
// daily route passes loc.
func (w *World) CommutersThrough(loc vhash.LocationID) int {
	n := 0
	for _, c := range w.commuters {
		for _, l := range c.route {
			if l == loc {
				n++
				break
			}
		}
	}
	return n
}

// CommutersThroughBoth returns the ground-truth number of commuters whose
// daily route passes both locations.
func (w *World) CommutersThroughBoth(a, b vhash.LocationID) int {
	n := 0
	for _, c := range w.commuters {
		var hitA, hitB bool
		for _, l := range c.route {
			if l == a {
				hitA = true
			}
			if l == b {
				hitB = true
			}
		}
		if hitA && hitB {
			n++
		}
	}
	return n
}
