package store

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"ptm/internal/record"
	"ptm/internal/vhash"
)

// Mem is the fully-resident store: records live in RAM, sharded by
// location so uploads for different locations (the common case — every
// RSU reports a distinct location) take disjoint locks. It is the hot
// tier of Tiered and the whole store of a -store=mem server. All
// methods are safe for concurrent use; cross-shard operations lock one
// shard at a time, which is per-shard consistent — enough, because
// records are immutable once ingested.
type Mem struct {
	shards []memShard // immutable slice; per-shard state under shard.mu
	mask   uint64     // len(shards)-1; len(shards) is a power of two
}

// memShard is one lock domain.
type memShard struct {
	mu sync.RWMutex
	// byLoc[loc][period] holds this shard's records (the guard covers
	// the inner maps too).
	//ptm:guardedby mu
	byLoc map[vhash.LocationID]map[record.PeriodID]*record.Record
	// epoch[loc] counts accepted ingests at loc — the estimate cache's
	// fence (DESIGN.md §13). Tier migration deliberately does NOT run
	// through this counter: freezing a record moves bits, not values,
	// so cached estimates stay valid across it.
	//ptm:guardedby mu
	epoch map[vhash.LocationID]uint64
}

// DefaultShards is the shard count used when the caller passes 0.
const DefaultShards = 16

// NewMem creates an empty resident store. nShards must be a power of
// two in [1, 1<<12], or 0 for DefaultShards.
//
//ptm:exclusive constructor: the store is not shared until it returns
func NewMem(nShards int) (*Mem, error) {
	if nShards == 0 {
		nShards = DefaultShards
	}
	if nShards < 1 || nShards > 1<<12 || bits.OnesCount(uint(nShards)) != 1 {
		return nil, fmt.Errorf("store: shard count %d is not a power of two in [1, 4096]", nShards)
	}
	m := &Mem{
		shards: make([]memShard, nShards),
		mask:   uint64(nShards - 1),
	}
	for i := range m.shards {
		m.shards[i].byLoc = make(map[vhash.LocationID]map[record.PeriodID]*record.Record)
		m.shards[i].epoch = make(map[vhash.LocationID]uint64)
	}
	return m, nil
}

// Shards returns the shard count.
func (m *Mem) Shards() int { return len(m.shards) }

// shardFor maps a location to its shard. Location IDs are operator
// assigned and often sequential, so they are mixed through a Fibonacci
// hash and the shard index taken from the high bits.
//
//ptm:noalloc
//ptm:inline
func (m *Mem) shardFor(loc vhash.LocationID) *memShard {
	h := uint64(loc) * 0x9e3779b97f4a7c15
	return &m.shards[(h>>32)&m.mask]
}

// Ingest implements Store.
func (m *Mem) Ingest(rec *record.Record) (int, error) {
	if rec == nil {
		return 0, record.ErrNilBitmap
	}
	if err := rec.Validate(); err != nil {
		return 0, err
	}
	sh := m.shardFor(rec.Location)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	byPeriod, ok := sh.byLoc[rec.Location]
	if !ok {
		byPeriod = make(map[record.PeriodID]*record.Record)
		sh.byLoc[rec.Location] = byPeriod
	}
	if _, dup := byPeriod[rec.Period]; dup {
		return 0, fmt.Errorf("%w: loc=%d period=%d", ErrDuplicate, rec.Location, rec.Period)
	}
	prior := len(byPeriod)
	byPeriod[rec.Period] = rec
	// Every accepted upload bumps the location's epoch under the shard
	// lock, so a query that assembled its set before this record landed
	// also read the pre-bump epoch — its cache entry stays keyed to the
	// old state, never mistaken for the new one.
	sh.epoch[rec.Location]++
	return prior, nil
}

// Contains implements Store.
func (m *Mem) Contains(loc vhash.LocationID, p record.PeriodID) bool {
	sh := m.shardFor(loc)
	sh.mu.RLock()
	_, ok := sh.byLoc[loc][p]
	sh.mu.RUnlock()
	return ok
}

// Lookup implements Store. Records are immutable and heap-resident, so
// the pointer stays valid after the lock is released and unpin is a
// no-op.
func (m *Mem) Lookup(loc vhash.LocationID, p record.PeriodID) (*record.Record, func(), bool) {
	sh := m.shardFor(loc)
	sh.mu.RLock()
	rec, ok := sh.byLoc[loc][p]
	sh.mu.RUnlock()
	return rec, noopUnpin, ok
}

// Collect implements Store: all requested records plus the location's
// epoch, read under one lock hold so the (records, epoch) pair is
// mutually consistent.
func (m *Mem) Collect(loc vhash.LocationID, periods []record.PeriodID) ([]*record.Record, uint64, func(), error) {
	recs, epoch, missing := m.collectPartial(loc, periods)
	if missing >= 0 {
		return nil, 0, nil, fmt.Errorf("%w: loc=%d period=%d", ErrNotFound, loc, periods[missing])
	}
	return recs, epoch, noopUnpin, nil
}

// collectPartial fetches whichever requested periods are present, under
// a single shard lock hold (records and epoch mutually consistent).
// Absent periods leave nil holes; missing is the index of the first
// hole, or -1 when the set is complete. Tiered fills the holes from its
// cold index under its own tiering lock — the two-tier Collect.
func (m *Mem) collectPartial(loc vhash.LocationID, periods []record.PeriodID) (recs []*record.Record, epoch uint64, missing int) {
	missing = -1
	recs = make([]*record.Record, len(periods))
	sh := m.shardFor(loc)
	sh.mu.RLock()
	byPeriod := sh.byLoc[loc]
	epoch = sh.epoch[loc]
	for i, p := range periods {
		rec, ok := byPeriod[p]
		if !ok {
			if missing < 0 {
				missing = i
			}
			continue
		}
		recs[i] = rec
	}
	sh.mu.RUnlock()
	return recs, epoch, missing
}

// Epoch returns the location's ingest epoch.
func (m *Mem) Epoch(loc vhash.LocationID) uint64 {
	sh := m.shardFor(loc)
	sh.mu.RLock()
	e := sh.epoch[loc]
	sh.mu.RUnlock()
	return e
}

// Remove deletes one record without touching the location's epoch: the
// freeze path moves records to the cold tier, and a move must not
// invalidate cached estimates (the bits do not change). Returns the
// removed record, if any.
func (m *Mem) Remove(loc vhash.LocationID, p record.PeriodID) (*record.Record, bool) {
	sh := m.shardFor(loc)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	byPeriod := sh.byLoc[loc]
	rec, ok := byPeriod[p]
	if !ok {
		return nil, false
	}
	delete(byPeriod, p)
	if len(byPeriod) == 0 {
		delete(sh.byLoc, loc)
	}
	return rec, true
}

// Locations implements Store.
func (m *Mem) Locations() []vhash.LocationID {
	var out []vhash.LocationID
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for loc := range sh.byLoc {
			out = append(out, loc)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Periods implements Store.
func (m *Mem) Periods(loc vhash.LocationID) []record.PeriodID {
	sh := m.shardFor(loc)
	sh.mu.RLock()
	byPeriod := sh.byLoc[loc]
	out := make([]record.PeriodID, 0, len(byPeriod))
	for p := range byPeriod {
		out = append(out, p)
	}
	sh.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DropBefore implements Store. Shards are pruned one at a time, so
// uploads racing the prune land before or after their location's shard
// is visited, never mid-scan.
func (m *Mem) DropBefore(cutoff record.PeriodID) (int, error) {
	dropped, _ := m.dropBefore(cutoff)
	return dropped, nil
}

// dropBefore prunes and additionally reports the dropped payload bits,
// which the tiered store needs to keep its freeze trigger exact.
func (m *Mem) dropBefore(cutoff record.PeriodID) (dropped int, bits int64) {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for loc, byPeriod := range sh.byLoc {
			for p, rec := range byPeriod {
				if p < cutoff {
					delete(byPeriod, p)
					dropped++
					bits += int64(rec.Size())
				}
			}
			if len(byPeriod) == 0 {
				delete(sh.byLoc, loc)
			}
		}
		sh.mu.Unlock()
	}
	return dropped, bits
}

// RetainLatest implements Store.
func (m *Mem) RetainLatest(loc vhash.LocationID, n int) (int, error) {
	periods := m.Periods(loc)
	if len(periods) <= n {
		return 0, nil
	}
	dropped, _ := m.dropAt(loc, retainCut(periods, n))
	return dropped, nil
}

// dropAt prunes one location below an exclusive cutoff, reporting the
// dropped payload bits.
func (m *Mem) dropAt(loc vhash.LocationID, cut record.PeriodID) (dropped int, bits int64) {
	sh := m.shardFor(loc)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	byPeriod := sh.byLoc[loc]
	for p, rec := range byPeriod {
		if p < cut {
			delete(byPeriod, p)
			dropped++
			bits += int64(rec.Size())
		}
	}
	if len(byPeriod) == 0 {
		delete(sh.byLoc, loc)
	}
	return dropped, bits
}

// retainCut turns "keep the newest n of these sorted periods" into an
// exclusive cutoff. n <= 0 cuts above the newest period (drop all).
func retainCut(sorted []record.PeriodID, n int) record.PeriodID {
	if n > 0 {
		return sorted[len(sorted)-n]
	}
	return sorted[len(sorted)-1] + 1
}

// ForEachSorted implements Store: every record in (location, period)
// order, the snapshot writer's deterministic iteration.
func (m *Mem) ForEachSorted(begin func(count int) error, fn func(rec *record.Record) error) error {
	recs := m.appendAll(nil)
	sortRecords(recs)
	if begin != nil {
		if err := begin(len(recs)); err != nil {
			return err
		}
	}
	for _, rec := range recs {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// appendAll appends every resident record to dst, shard by shard.
func (m *Mem) appendAll(dst []*record.Record) []*record.Record {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for _, byPeriod := range sh.byLoc {
			for _, rec := range byPeriod {
				dst = append(dst, rec)
			}
		}
		sh.mu.RUnlock()
	}
	return dst
}

// sortRecords orders records by (location, period) — segment order,
// snapshot order.
func sortRecords(recs []*record.Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Location != recs[j].Location {
			return recs[i].Location < recs[j].Location
		}
		return recs[i].Period < recs[j].Period
	})
}

// Stats implements Store.
func (m *Mem) Stats() Stats {
	var st Stats
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		st.Locations += len(sh.byLoc)
		for _, byPeriod := range sh.byLoc {
			st.Records += len(byPeriod)
			for _, rec := range byPeriod {
				st.Bits += int64(rec.Size())
			}
		}
		sh.mu.RUnlock()
	}
	st.HotRecords = st.Records
	st.HotBits = st.Bits
	return st
}

// Close implements Store; the resident store holds no OS resources.
func (m *Mem) Close() error { return nil }
