package store

// Tiered: the out-of-core store. Recent ("hot") records live in the
// resident Mem shards exactly as before; once the hot tier's payload
// exceeds the resident budget, the oldest periods are frozen — written
// as one immutable checkpoint segment via the WAL's atomic-commit
// primitive, then served from the mapping through the block cache.
//
// # Tiering state machine
//
// A record is in exactly one of two states, and moves at most once:
//
//	hot ──freeze──▶ cold ──retention──▶ gone
//	 │                                    ▲
//	 └───────────retention────────────────┘
//
// Freeze moves bits, never values: the segment stores the bitmap words
// verbatim, so a query answered from the cold tier is bit-identical to
// one answered before the freeze. Location epochs therefore do NOT
// change on freeze — cached estimates stay valid, which is the whole
// point of making the estimator plane tier-oblivious.
//
// # Locking
//
// Lock order: freezeMu ≺ mu ≺ Mem shard locks.
//
//   - freezeMu serializes freezes (one segment writer at a time).
//   - mu (the tiering lock) guards the cold index and segment table.
//     Ingest holds mu.RLock across its cold-duplicate check AND the hot
//     insert, and the freeze commit publishes cold entries and removes
//     their hot twins under one mu.Lock — so an ingest can never slip a
//     duplicate between "not in cold yet" and "already out of hot", and
//     a reader holding mu.RLock sees every record in exactly one tier.
//   - Collect reads the hot tier (records + epoch, one shard lock hold)
//     first, then fills holes from the cold index under mu.RLock; cold
//     records only change state under mu.Lock, so the assembled
//     (records, epoch) pair remains a consistent snapshot.
//
// # Crash safety
//
// The freeze commit point is wal.WriteFileAtomic's rename (plus dir
// fsync). A crash before it leaves only a .tmp file (swept at open); a
// crash after it but before the hot removals is invisible: the hot tier
// is rebuilt from the WAL by the layer above, replay hits the cold
// duplicate check, and the record simply stays cold.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"ptm/internal/bitmap"
	"ptm/internal/record"
	"ptm/internal/vhash"
	"ptm/internal/wal"
)

// TieredOptions configures OpenTiered.
type TieredOptions struct {
	// Shards is the hot tier's shard count (0 selects DefaultShards).
	Shards int
	// ResidentBudget bounds the hot tier's payload in bytes; exceeding
	// it triggers a freeze of the oldest periods. <= 0 disables
	// automatic freezing (records migrate only via explicit Freeze).
	ResidentBudget int64
	// CacheBytes bounds the cold-read block cache (<= 0 selects
	// DefaultCacheBytes).
	CacheBytes int64
}

// coldRef locates a cold record: entry idx of segment seg.
type coldRef struct {
	seg uint64
	idx int
}

// Tiered implements Store over a hot Mem tier and cold mapped segments.
//
//ptm:lockorder freezeMu<mu
type Tiered struct {
	hot    *Mem
	dir    string
	budget int64
	cache  *BlockCache

	// freezeMu serializes segment writers; ingests that overflow the
	// budget block here until the running freeze brings the hot tier
	// back under it (backpressure, so RSS cannot outrun the freezer).
	freezeMu sync.Mutex

	mu sync.RWMutex
	//ptm:guardedby mu
	cold map[vhash.LocationID]map[record.PeriodID]coldRef
	//ptm:guardedby mu
	segs map[uint64]*Segment
	//ptm:guardedby mu
	nextSeg uint64
	//ptm:guardedby mu
	coldBits int64
	//ptm:guardedby mu
	closed bool

	// hotBits tracks the hot tier's payload for the freeze trigger.
	// Mutated under mu (read or write side), read without it.
	hotBits atomic.Int64
}

// OpenTiered opens (or creates) a tiered store rooted at dir: existing
// segments are mapped and indexed, leftover temp files from an
// interrupted freeze are swept.
//
//ptm:exclusive constructor: the store is not shared until OpenTiered returns
func OpenTiered(dir string, opts TieredOptions) (*Tiered, error) {
	hot, err := NewMem(opts.Shards)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	t := &Tiered{
		hot:    hot,
		dir:    dir,
		budget: opts.ResidentBudget,
		cache:  NewBlockCache(opts.CacheBytes),
		cold:   make(map[vhash.LocationID]map[record.PeriodID]coldRef),
		segs:   make(map[uint64]*Segment),
	}
	ids, err := scanSegmentDir(dir)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		seg, err := OpenSegment(filepath.Join(dir, segFileName(id)), id)
		if err != nil {
			//ptmlint:allow errdrop -- the open error is what the caller sees; closing the partial store is best-effort
			_ = t.Close()
			return nil, err
		}
		t.segs[id] = seg
		for i := range seg.entries {
			e := &seg.entries[i]
			if _, dup := t.cold[e.loc][e.period]; dup {
				//ptmlint:allow errdrop -- the duplicate error is what the caller sees
				_ = t.Close()
				return nil, fmt.Errorf("store: record loc=%d period=%d appears in multiple segments", e.loc, e.period)
			}
			t.addColdLocked(e.loc, e.period, coldRef{seg: id, idx: i}, int64(e.nbits))
		}
		if id >= t.nextSeg {
			t.nextSeg = id + 1
		}
	}
	return t, nil
}

// addColdLocked publishes one cold index entry. Caller holds mu (or has
// exclusive access during construction).
func (t *Tiered) addColdLocked(loc vhash.LocationID, p record.PeriodID, ref coldRef, bits int64) {
	byP, ok := t.cold[loc]
	if !ok {
		byP = make(map[record.PeriodID]coldRef)
		t.cold[loc] = byP
	}
	byP[p] = ref
	t.coldBits += bits
}

// Hot returns the resident tier (the layer above hands it epochs-aware
// work like direct benchmarking; normal use goes through Store).
func (t *Tiered) Hot() *Mem { return t.hot }

// Ingest implements Store. The cold-duplicate check and the hot insert
// happen under one tiering read lock, so a concurrent freeze commit
// (which publishes cold entries and removes hot ones under the write
// lock) can never interleave between them.
func (t *Tiered) Ingest(rec *record.Record) (int, error) {
	if rec == nil {
		return 0, record.ErrNilBitmap
	}
	if err := rec.Validate(); err != nil {
		return 0, err
	}
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		return 0, ErrClosed
	}
	coldPrior := len(t.cold[rec.Location])
	if _, dup := t.cold[rec.Location][rec.Period]; dup {
		t.mu.RUnlock()
		return 0, fmt.Errorf("%w: loc=%d period=%d", ErrDuplicate, rec.Location, rec.Period)
	}
	prior, err := t.hot.Ingest(rec)
	if err == nil {
		t.hotBits.Add(int64(rec.Size()))
	}
	t.mu.RUnlock()
	if err != nil {
		return 0, err
	}
	return prior + coldPrior, t.maybeFreeze()
}

// Contains implements Store (no cold-tier I/O — the index alone answers).
func (t *Tiered) Contains(loc vhash.LocationID, p record.PeriodID) bool {
	if t.hot.Contains(loc, p) {
		return true
	}
	t.mu.RLock()
	_, ok := t.cold[loc][p]
	t.mu.RUnlock()
	return ok
}

// Shards returns the hot tier's shard count.
func (t *Tiered) Shards() int { return t.hot.Shards() }

// maybeFreeze freezes the oldest periods when the hot payload exceeds
// the resident budget. It freezes down to half the budget (hysteresis:
// a freeze per ingest at the boundary would write one-record segments),
// and ingests arriving during a freeze queue behind freezeMu — the
// resident set cannot outrun the segment writer.
func (t *Tiered) maybeFreeze() error {
	if t.budget <= 0 || t.hotBits.Load()/8 <= t.budget {
		return nil
	}
	t.freezeMu.Lock()
	defer t.freezeMu.Unlock()
	if t.hotBits.Load()/8 <= t.budget {
		return nil // the freeze we queued behind already did the work
	}
	_, err := t.freezeLocked(t.budget / 2)
	return err
}

// Freeze migrates the oldest periods to a new cold segment until the
// hot tier holds at most targetBytes of payload (0 freezes everything).
// Returns the number of records frozen.
func (t *Tiered) Freeze(targetBytes int64) (int, error) {
	t.freezeMu.Lock()
	defer t.freezeMu.Unlock()
	return t.freezeLocked(targetBytes)
}

// freezeLocked does one freeze cycle. Caller holds freezeMu.
func (t *Tiered) freezeLocked(targetBytes int64) (int, error) {
	need := t.hotBits.Load()/8 - targetBytes
	if need <= 0 {
		return 0, nil
	}

	// Victim selection: oldest periods first, whole records, at least
	// one. appendAll sees a live hot tier; anything ingested after this
	// scan just waits for the next freeze.
	victims := t.hot.appendAll(nil)
	if len(victims) == 0 {
		return 0, nil
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].Period != victims[j].Period {
			return victims[i].Period < victims[j].Period
		}
		return victims[i].Location < victims[j].Location
	})
	taken := int64(0)
	n := 0
	for n < len(victims) && taken < need*8 {
		taken += int64(victims[n].Size())
		n++
	}
	victims = victims[:n]
	sortRecords(victims) // segment order: (location, period)

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return 0, ErrClosed
	}
	id := t.nextSeg
	t.nextSeg++
	t.mu.Unlock()

	path := filepath.Join(t.dir, segFileName(id))
	if err := wal.WriteFileAtomic(path, func(w io.Writer) error {
		return WriteSegment(w, victims)
	}); err != nil {
		return 0, fmt.Errorf("store: freezing segment %d: %w", id, err)
	}
	if err := wal.SyncDir(t.dir); err != nil {
		return 0, fmt.Errorf("store: freezing segment %d: %w", id, err)
	}
	seg, err := OpenSegment(path, id)
	if err != nil {
		return 0, fmt.Errorf("store: reopening frozen segment: %w", err)
	}

	// Commit: publish the cold entries and retire the hot twins under
	// one write lock — no reader or ingester observes a record in both
	// tiers or neither.
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		//ptmlint:allow errdrop -- racing Close; the segment is fully durable, next open adopts it
		_ = seg.Close()
		return 0, ErrClosed
	}
	t.segs[id] = seg
	frozenBits := int64(0)
	for i, rec := range victims {
		t.addColdLocked(rec.Location, rec.Period, coldRef{seg: id, idx: i}, int64(rec.Size()))
		t.hot.Remove(rec.Location, rec.Period)
		frozenBits += int64(rec.Size())
	}
	t.hotBits.Add(-frozenBits)
	t.mu.Unlock()
	return len(victims), nil
}

// pinCold pins one cold record and materializes its bitmap view.
// Caller holds mu.RLock (so the segment cannot be closed under us while
// we take its pin). The returned unpin releases the cache span and the
// segment reference.
func (t *Tiered) pinColdLocked(loc vhash.LocationID, p record.PeriodID, ref coldRef) (*record.Record, func(), error) {
	seg := t.segs[ref.seg]
	if seg == nil || !seg.pin() {
		return nil, nil, fmt.Errorf("%w: loc=%d period=%d (segment retired)", ErrNotFound, loc, p)
	}
	words, cacheUnpin, err := t.cache.Get(spanKey{seg: ref.seg, idx: ref.idx}, func() ([]uint64, int64, func() error, error) {
		if err := seg.verifyEntry(ref.idx); err != nil {
			return nil, 0, nil, err
		}
		w := seg.entryWords(ref.idx)
		return w, int64(len(w) * 8), func() error { return seg.releaseEntry(ref.idx) }, nil
	})
	if err != nil {
		seg.unpin()
		return nil, nil, err
	}
	bm, err := fromColdWords(words)
	if err != nil {
		cacheUnpin()
		seg.unpin()
		return nil, nil, err
	}
	rec := &record.Record{Location: loc, Period: p, Bitmap: bm}
	return rec, func() { cacheUnpin(); seg.unpin() }, nil
}

// Lookup implements Store.
func (t *Tiered) Lookup(loc vhash.LocationID, p record.PeriodID) (*record.Record, func(), bool) {
	if rec, unpin, ok := t.hot.Lookup(loc, p); ok {
		return rec, unpin, true
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	ref, ok := t.cold[loc][p]
	if !ok {
		return nil, nil, false
	}
	rec, unpin, err := t.pinColdLocked(loc, p, ref)
	if err != nil {
		return nil, nil, false
	}
	return rec, unpin, true
}

// Collect implements Store: hot records and the epoch are read under
// one shard lock hold, holes are filled from the cold tier under the
// tiering read lock. See the package comment on why the pair stays a
// consistent snapshot.
func (t *Tiered) Collect(loc vhash.LocationID, periods []record.PeriodID) ([]*record.Record, uint64, func(), error) {
	recs, epoch, missing := t.hot.collectPartial(loc, periods)
	if missing < 0 {
		return recs, epoch, noopUnpin, nil
	}
	var unpins []func()
	release := func() {
		for _, u := range unpins {
			u()
		}
	}
	t.mu.RLock()
	for i, p := range periods {
		if recs[i] != nil {
			continue
		}
		ref, ok := t.cold[loc][p]
		if !ok {
			t.mu.RUnlock()
			release()
			return nil, 0, nil, fmt.Errorf("%w: loc=%d period=%d", ErrNotFound, loc, p)
		}
		rec, unpin, err := t.pinColdLocked(loc, p, ref)
		if err != nil {
			t.mu.RUnlock()
			release()
			return nil, 0, nil, err
		}
		recs[i] = rec
		unpins = append(unpins, unpin)
	}
	t.mu.RUnlock()
	if len(unpins) == 0 {
		return recs, epoch, noopUnpin, nil
	}
	return recs, epoch, release, nil
}

// Locations implements Store (union of tiers).
func (t *Tiered) Locations() []vhash.LocationID {
	out := t.hot.Locations()
	seen := make(map[vhash.LocationID]bool, len(out))
	for _, loc := range out {
		seen[loc] = true
	}
	t.mu.RLock()
	for loc := range t.cold {
		if !seen[loc] {
			out = append(out, loc)
		}
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Periods implements Store (union of tiers).
func (t *Tiered) Periods(loc vhash.LocationID) []record.PeriodID {
	out := t.hot.Periods(loc)
	seen := make(map[record.PeriodID]bool, len(out))
	for _, p := range out {
		seen[p] = true
	}
	t.mu.RLock()
	for p := range t.cold[loc] {
		if !seen[p] {
			out = append(out, p)
		}
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DropBefore implements Store. Cold records are dropped from the index;
// a segment whose records are all dropped is closed, its cache spans
// invalidated, and its file deleted — retention releases disk, not just
// address space. In-flight readers of the deleted segment finish
// safely: the unlink happens at once, the munmap when their pins drain.
func (t *Tiered) DropBefore(cutoff record.PeriodID) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return 0, ErrClosed
	}
	hotDropped, hotBits := t.hot.dropBefore(cutoff)
	t.hotBits.Add(-hotBits)
	coldDropped := 0
	for loc, byP := range t.cold {
		for p := range byP {
			if p < cutoff {
				t.dropColdLocked(loc, p)
				coldDropped++
			}
		}
	}
	err := t.gcSegmentsLocked()
	return hotDropped + coldDropped, err
}

// RetainLatest implements Store.
func (t *Tiered) RetainLatest(loc vhash.LocationID, n int) (int, error) {
	periods := t.Periods(loc)
	if len(periods) <= n {
		return 0, nil
	}
	cut := retainCut(periods, n)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return 0, ErrClosed
	}
	hotDropped, hotBits := t.hot.dropAt(loc, cut)
	t.hotBits.Add(-hotBits)
	coldDropped := 0
	for p := range t.cold[loc] {
		if p < cut {
			t.dropColdLocked(loc, p)
			coldDropped++
		}
	}
	err := t.gcSegmentsLocked()
	return hotDropped + coldDropped, err
}

// dropColdLocked removes one cold index entry. Caller holds mu.
func (t *Tiered) dropColdLocked(loc vhash.LocationID, p record.PeriodID) {
	byP := t.cold[loc]
	ref, ok := byP[p]
	if !ok {
		return
	}
	delete(byP, p)
	if len(byP) == 0 {
		delete(t.cold, loc)
	}
	if seg := t.segs[ref.seg]; seg != nil {
		t.coldBits -= int64(seg.entries[ref.idx].nbits)
	}
}

// gcSegmentsLocked deletes every segment with no live index entries.
// Caller holds mu.
func (t *Tiered) gcSegmentsLocked() error {
	live := make(map[uint64]bool, len(t.segs))
	for _, byP := range t.cold {
		for _, ref := range byP {
			live[ref.seg] = true
		}
	}
	var firstErr error
	for id, seg := range t.segs {
		if live[id] {
			continue
		}
		delete(t.segs, id)
		t.cache.InvalidateSegment(id)
		if err := seg.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := os.Remove(seg.path); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("store: deleting retired segment: %w", err)
		}
	}
	return firstErr
}

// ForEachSorted implements Store. The whole iteration runs under the
// tiering read lock (cold records must not be retired mid-scan); cold
// words are read directly off the mapping with a CRC check, bypassing
// the block cache so a full scan cannot evict the query working set.
func (t *Tiered) ForEachSorted(begin func(count int) error, fn func(rec *record.Record) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	type item struct {
		loc vhash.LocationID
		p   record.PeriodID
		rec *record.Record // nil for cold items
		ref coldRef
	}
	var items []item
	for _, rec := range t.hot.appendAll(nil) {
		items = append(items, item{loc: rec.Location, p: rec.Period, rec: rec})
	}
	for loc, byP := range t.cold {
		for p, ref := range byP {
			items = append(items, item{loc: loc, p: p, ref: ref})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].loc != items[j].loc {
			return items[i].loc < items[j].loc
		}
		return items[i].p < items[j].p
	})
	if begin != nil {
		if err := begin(len(items)); err != nil {
			return err
		}
	}
	for _, it := range items {
		rec := it.rec
		if rec == nil {
			seg := t.segs[it.ref.seg]
			if err := seg.verifyEntry(it.ref.idx); err != nil {
				return err
			}
			bm, err := fromColdWords(seg.entryWords(it.ref.idx))
			if err != nil {
				return err
			}
			rec = &record.Record{Location: it.loc, Period: it.p, Bitmap: bm}
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// Stats implements Store.
func (t *Tiered) Stats() Stats {
	st := t.hot.Stats()
	hotLocs := st.Locations
	t.mu.RLock()
	coldRecs := 0
	extraLocs := 0
	for loc, byP := range t.cold {
		coldRecs += len(byP)
		if !t.hotHasLoc(loc) {
			extraLocs++
		}
	}
	st.ColdRecords = coldRecs
	st.ColdBits = t.coldBits
	st.Segments = len(t.segs)
	t.mu.RUnlock()
	st.Locations = hotLocs + extraLocs
	st.Records += coldRecs
	st.Bits += st.ColdBits
	return st
}

// hotHasLoc reports whether the hot tier holds any record at loc.
func (t *Tiered) hotHasLoc(loc vhash.LocationID) bool {
	sh := t.hot.shardFor(loc)
	sh.mu.RLock()
	_, ok := sh.byLoc[loc]
	sh.mu.RUnlock()
	return ok
}

// CacheStats implements CacheStatser.
func (t *Tiered) CacheStats() CacheStats { return t.cache.Stats() }

// Close implements Store: marks the store closed and releases every
// mapping (deferred past any in-flight reader's pins).
func (t *Tiered) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	var firstErr error
	for id, seg := range t.segs {
		delete(t.segs, id)
		if err := seg.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// fromColdWords wraps a cold word view as a sealed, read-only bitmap —
// the zero-copy hand-off from mapped pages to the join kernels.
func fromColdWords(words []uint64) (*bitmap.Bitmap, error) {
	bm, err := bitmap.FromWords(words)
	if err != nil {
		return nil, fmt.Errorf("store: wrapping cold record: %w", err)
	}
	return bm, nil
}
