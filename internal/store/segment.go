package store

// The checkpoint segment: the cold tier's immutable on-disk unit. A
// segment holds a batch of sealed records, indexed for point lookup and
// laid out so a mapped segment needs no deserialization at all:
//
//	header, 64 bytes (all integers little-endian):
//	  [0:4)    magic   "PTSG"
//	  [4]      version 1
//	  [5:8)    reserved, zero
//	  [8:12)   count   uint32  number of records
//	  [12:16)  reserved, zero
//	  [16:24)  indexLen uint64  bytes of index incl. its CRC (count*32+4)
//	  [24:32)  dataOff  uint64  start of the data region, 4096-aligned
//	  [32:40)  dataLen  uint64  bytes in the data region
//	  [40:60)  reserved, zero
//	  [60:64)  crc32   IEEE, over bytes [0:60)
//
//	index, at offset 64: count entries of 32 bytes, sorted strictly by
//	(location, period), followed by a crc32 over all entry bytes:
//	  [0:8)    location uint64
//	  [8:12)   period   uint32
//	  [12:16)  nbits    uint32  bitmap size; power of two in [64, MaxBits]
//	  [16:24)  wordOff  uint64  absolute offset of the record's words,
//	                            64-byte aligned, inside the data region
//	  [24:28)  wordCRC  uint32  IEEE, over the nbits/8 word bytes
//	  [28:32)  reserved, zero
//
//	data, at dataOff: each record's bitmap words, little-endian uint64s
//	(bit i of the bitmap is bit i%64 of word i/64 — the in-memory layout
//	of bitmap.Bitmap, byte-for-byte on little-endian hosts). Records
//	appear in index order; alignment gaps are zero.
//
// The page alignment of dataOff and the 64-byte alignment of every
// wordOff mean a mapped record's words can be reinterpreted in place as
// a []uint64 and handed to the join kernels (bitmap.AndOnesWords) with
// zero copies. Header and index CRCs are verified at open; per-record
// word CRCs are verified lazily, when the block cache admits the span
// (the bytes are about to be streamed anyway) — so opening a huge
// segment is O(index), not O(data).
//
// Segments are written via wal.WriteFileAtomic (temp file, fsync,
// rename, dir fsync), so a crash mid-freeze leaves either no segment or
// a complete one — the same commit protocol, and the same crash-safety
// argument, as WAL checkpoint compaction.

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"

	"ptm/internal/bitmap"
	"ptm/internal/record"
	"ptm/internal/vhash"
)

const (
	// SegMagic identifies a segment file ("PTSG" read as a little-endian
	// uint32). Exported so the snapshot loader can sniff the format.
	SegMagic = 0x47535450

	segVersion   = 1
	segHeaderLen = 64
	segEntryLen  = 32
	// segPageAlign is the data region's alignment: one 4 KiB page, fixed
	// as a format constant (independent of the runtime page size) so
	// segments are portable across hosts.
	segPageAlign = 4096
	// segWordAlign aligns every record's words for the cast to []uint64
	// and for full-cache-line starts under the block kernels.
	segWordAlign = 64
	// segMaxCount caps records per segment; with 32-byte entries this
	// bounds the index a parser may allocate at 1 GiB worth of entries
	// only if the file really is that large (count is cross-checked
	// against the file size before any allocation).
	segMaxCount = 1 << 25
)

// ErrSegCorrupt tags every segment parse failure.
var ErrSegCorrupt = errors.New("store: corrupt segment")

// segEntry is one parsed index entry.
type segEntry struct {
	loc    vhash.LocationID
	period record.PeriodID
	nbits  uint32
	off    uint64 // absolute byte offset of the record's words
	crc    uint32
}

// wordBytes returns the byte length of the entry's words.
//
//ptm:noalloc
//ptm:inline
func (e *segEntry) wordBytes() uint64 { return uint64(e.nbits / 8) }

// segFileName names segment id within a store directory. Fixed-width
// decimal so lexical directory order is id order.
func segFileName(id uint64) string { return fmt.Sprintf("%018d.seg", id) }

// alignUp rounds n up to the next multiple of align (a power of two).
//
//ptm:noalloc
//ptm:inline
func alignUp(n, align uint64) uint64 { return (n + align - 1) &^ (align - 1) }

// validBitmapBits reports whether nbits is a legal bitmap size: a power
// of two in [64, bitmap.MaxBits].
//
//ptm:noalloc
//ptm:inline
func validBitmapBits(nbits uint32) bool {
	return nbits >= 64 && nbits <= bitmap.MaxBits && nbits&(nbits-1) == 0
}

// parseSegment validates a segment image and returns its index. It
// performs every bounds check explicitly against len(data) before
// slicing, allocates nothing proportional to claimed (rather than
// actual) sizes, and never reads the data region — per-record CRCs are
// the reader's job (Segment.verifyEntry, or ParseSegmentRecords for the
// full pass). This is the single parser behind the mmap store, the
// tiered cold tier, the snapshot loader, and FuzzSegmentLoad.
func parseSegment(data []byte) ([]segEntry, error) {
	size := uint64(len(data))
	if size < segHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, shorter than the header", ErrSegCorrupt, size)
	}
	if leU32(data[0:4]) != SegMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSegCorrupt)
	}
	if data[4] != segVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrSegCorrupt, data[4])
	}
	if crc32.ChecksumIEEE(data[:60]) != leU32(data[60:64]) {
		return nil, fmt.Errorf("%w: header checksum mismatch", ErrSegCorrupt)
	}
	for _, i := range []int{5, 6, 7, 12, 13, 14, 15} {
		if data[i] != 0 {
			return nil, fmt.Errorf("%w: nonzero reserved header byte %d", ErrSegCorrupt, i)
		}
	}
	for i := 40; i < 60; i++ {
		if data[i] != 0 {
			return nil, fmt.Errorf("%w: nonzero reserved header byte %d", ErrSegCorrupt, i)
		}
	}
	count := uint64(leU32(data[8:12]))
	indexLen := leU64(data[16:24])
	dataOff := leU64(data[24:32])
	dataLen := leU64(data[32:40])

	if count > segMaxCount {
		return nil, fmt.Errorf("%w: %d records exceeds the per-segment cap", ErrSegCorrupt, count)
	}
	if indexLen != count*segEntryLen+4 {
		return nil, fmt.Errorf("%w: index length %d does not match count %d", ErrSegCorrupt, indexLen, count)
	}
	// All region arithmetic below stays in uint64 and is checked against
	// size before any slice expression, so a lying header can never
	// index out of bounds (FuzzSegmentLoad's contract).
	if segHeaderLen+indexLen > size {
		return nil, fmt.Errorf("%w: index (%d bytes) exceeds file size %d", ErrSegCorrupt, indexLen, size)
	}
	if dataOff%segPageAlign != 0 {
		return nil, fmt.Errorf("%w: data offset %d not page aligned", ErrSegCorrupt, dataOff)
	}
	if dataOff < segHeaderLen+indexLen || dataOff > size || dataLen > size-dataOff {
		return nil, fmt.Errorf("%w: data region [%d, %d+%d) outside file of %d bytes", ErrSegCorrupt, dataOff, dataOff, dataLen, size)
	}
	if dataOff+dataLen != size {
		return nil, fmt.Errorf("%w: %d trailing bytes after the data region", ErrSegCorrupt, size-dataOff-dataLen)
	}

	index := data[segHeaderLen : segHeaderLen+indexLen]
	entryBytes := index[:len(index)-4]
	if crc32.ChecksumIEEE(entryBytes) != leU32(index[len(index)-4:]) {
		return nil, fmt.Errorf("%w: index checksum mismatch", ErrSegCorrupt)
	}

	entries := make([]segEntry, count)
	cursor := dataOff // records must be laid out in order, without overlap
	for i := range entries {
		raw := entryBytes[i*segEntryLen : (i+1)*segEntryLen]
		e := segEntry{
			loc:    vhash.LocationID(leU64(raw[0:8])),
			period: record.PeriodID(leU32(raw[8:12])),
			nbits:  leU32(raw[12:16]),
			off:    leU64(raw[16:24]),
			crc:    leU32(raw[24:28]),
		}
		if leU32(raw[28:32]) != 0 {
			return nil, fmt.Errorf("%w: entry %d has nonzero reserved bytes", ErrSegCorrupt, i)
		}
		if !validBitmapBits(e.nbits) {
			return nil, fmt.Errorf("%w: entry %d has invalid bitmap size %d", ErrSegCorrupt, i, e.nbits)
		}
		if i > 0 {
			prev := &entries[i-1]
			if e.loc < prev.loc || (e.loc == prev.loc && e.period <= prev.period) {
				return nil, fmt.Errorf("%w: entries not strictly sorted at %d", ErrSegCorrupt, i)
			}
		}
		if e.off%segWordAlign != 0 {
			return nil, fmt.Errorf("%w: entry %d words at %d not %d-byte aligned", ErrSegCorrupt, i, e.off, segWordAlign)
		}
		if e.off < cursor || e.off > size || e.wordBytes() > size-e.off {
			return nil, fmt.Errorf("%w: entry %d words [%d, %d+%d) out of bounds", ErrSegCorrupt, i, e.off, e.off, e.wordBytes())
		}
		cursor = e.off + e.wordBytes()
		entries[i] = e
	}
	if cursor > dataOff+dataLen {
		return nil, fmt.Errorf("%w: records overrun the data region", ErrSegCorrupt)
	}
	return entries, nil
}

// WriteSegment streams a segment holding recs, which must be sorted
// strictly by (location, period). Typically wrapped in
// wal.WriteFileAtomic so the segment appears atomically.
func WriteSegment(w io.Writer, recs []*record.Record) error {
	if len(recs) == 0 {
		return errors.New("store: refusing to write an empty segment")
	}
	if len(recs) > segMaxCount {
		return fmt.Errorf("store: %d records exceeds the per-segment cap", len(recs))
	}
	for i, r := range recs {
		if r == nil || r.Validate() != nil {
			return fmt.Errorf("store: segment record %d invalid", i)
		}
		if i > 0 {
			p := recs[i-1]
			if r.Location < p.Location || (r.Location == p.Location && r.Period <= p.Period) {
				return fmt.Errorf("store: segment records not strictly sorted by (location, period) at %d", i)
			}
		}
	}

	count := uint64(len(recs))
	indexLen := count*segEntryLen + 4
	dataOff := alignUp(segHeaderLen+indexLen, segPageAlign)
	offs := make([]uint64, len(recs))
	cursor := dataOff
	for i, r := range recs {
		cursor = alignUp(cursor, segWordAlign)
		offs[i] = cursor
		cursor += uint64(len(r.Bitmap.Uint64s()) * 8)
	}
	dataLen := cursor - dataOff

	scratch := make([]byte, 64*1024)

	var hdr [segHeaderLen]byte
	putU32(hdr[0:4], SegMagic)
	hdr[4] = segVersion
	putU32(hdr[8:12], uint32(count))
	putU64(hdr[16:24], indexLen)
	putU64(hdr[24:32], dataOff)
	putU64(hdr[32:40], dataLen)
	putU32(hdr[60:64], crc32.ChecksumIEEE(hdr[:60]))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: writing segment header: %w", err)
	}

	indexCRC := crc32.NewIEEE()
	var ent [segEntryLen]byte
	for i, r := range recs {
		putU64(ent[0:8], uint64(r.Location))
		putU32(ent[8:12], uint32(r.Period))
		putU32(ent[12:16], uint32(r.Bitmap.Size()))
		putU64(ent[16:24], offs[i])
		putU32(ent[24:28], wordsCRC(r.Bitmap.Uint64s(), scratch))
		putU32(ent[28:32], 0)
		//ptmlint:allow errdrop -- hash.Hash.Write never fails
		_, _ = indexCRC.Write(ent[:])
		if _, err := w.Write(ent[:]); err != nil {
			return fmt.Errorf("store: writing segment index: %w", err)
		}
	}
	var crcBuf [4]byte
	putU32(crcBuf[:], indexCRC.Sum32())
	if _, err := w.Write(crcBuf[:]); err != nil {
		return fmt.Errorf("store: writing segment index checksum: %w", err)
	}

	pos := segHeaderLen + indexLen
	for i, r := range recs {
		if err := writeZeros(w, offs[i]-pos, scratch); err != nil {
			return err
		}
		if err := writeWordsLE(w, r.Bitmap.Uint64s(), scratch); err != nil {
			return err
		}
		pos = offs[i] + uint64(len(r.Bitmap.Uint64s())*8)
	}
	return nil
}

// wordsCRC computes the IEEE CRC32 of the words' little-endian byte
// encoding, chunked through scratch so no payload-sized buffer exists.
func wordsCRC(words []uint64, scratch []byte) uint32 {
	crc := uint32(0)
	per := len(scratch) / 8
	for len(words) > 0 {
		n := min(per, len(words))
		for i := 0; i < n; i++ {
			putU64(scratch[i*8:], words[i])
		}
		crc = crc32.Update(crc, crc32.IEEETable, scratch[:n*8])
		words = words[n:]
	}
	return crc
}

// writeWordsLE streams the words' little-endian encoding.
func writeWordsLE(w io.Writer, words []uint64, scratch []byte) error {
	per := len(scratch) / 8
	for len(words) > 0 {
		n := min(per, len(words))
		for i := 0; i < n; i++ {
			putU64(scratch[i*8:], words[i])
		}
		if _, err := w.Write(scratch[:n*8]); err != nil {
			return fmt.Errorf("store: writing segment words: %w", err)
		}
		words = words[n:]
	}
	return nil
}

// writeZeros writes n zero bytes (alignment padding).
func writeZeros(w io.Writer, n uint64, scratch []byte) error {
	clear(scratch)
	for n > 0 {
		c := min(n, uint64(len(scratch)))
		if _, err := w.Write(scratch[:c]); err != nil {
			return fmt.Errorf("store: writing segment padding: %w", err)
		}
		n -= c
	}
	return nil
}

// Segment is an open, parsed segment file. The mapping and index are
// immutable after OpenSegment; the pin count tracks cold-tier readers
// (block-cache spans and in-flight queries) so Close can defer the
// munmap until the last reader drains — unlinking a live segment is
// then safe at any time.
type Segment struct {
	path    string
	id      uint64
	m       *mapping
	entries []segEntry

	mu sync.Mutex
	//ptm:guardedby mu
	pins int
	//ptm:guardedby mu
	closed bool
}

// OpenSegment maps (or, on platforms without mmap, reads) a segment
// file and validates its header and index.
func OpenSegment(path string, id uint64) (*Segment, error) {
	m, err := mapSegmentFile(path)
	if err != nil {
		return nil, err
	}
	entries, err := parseSegment(m.data)
	if err != nil {
		//ptmlint:allow errdrop -- the parse error is what the caller sees; unmap is best-effort cleanup
		_ = m.close()
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return &Segment{path: path, id: id, m: m, entries: entries}, nil
}

// find returns the index of the entry for (loc, p), or -1.
func (s *Segment) find(loc vhash.LocationID, p record.PeriodID) int {
	i := sort.Search(len(s.entries), func(i int) bool {
		e := &s.entries[i]
		return e.loc > loc || (e.loc == loc && e.period >= p)
	})
	if i < len(s.entries) && s.entries[i].loc == loc && s.entries[i].period == p {
		return i
	}
	return -1
}

// entryWords returns entry i's words. On little-endian hosts this is a
// zero-copy view of the mapping; otherwise a decoded copy.
func (s *Segment) entryWords(i int) []uint64 {
	e := &s.entries[i]
	return wordsView(s.m.data, int(e.off), int(e.nbits)/64)
}

// verifyEntry checks entry i's word CRC against the mapped bytes. The
// block cache calls it on admission — the one moment the span's bytes
// are about to be streamed anyway — so a record damaged at rest is
// rejected before any estimator sees it, at zero extra passes in the
// steady state.
func (s *Segment) verifyEntry(i int) error {
	e := &s.entries[i]
	got := crc32.ChecksumIEEE(s.m.data[e.off : e.off+e.wordBytes()])
	if got != e.crc {
		return fmt.Errorf("%w: %s: record loc=%d period=%d checksum mismatch", ErrSegCorrupt, s.path, e.loc, e.period)
	}
	return nil
}

// releaseEntry advises the OS to drop entry i's backing pages (clean,
// file-backed: a later read simply refaults them). Only whole pages
// inside the span are released; a no-op on platforms without madvise.
func (s *Segment) releaseEntry(i int) error {
	e := &s.entries[i]
	return s.m.release(int(e.off), int(e.wordBytes()))
}

// pin takes a reference that keeps the mapping alive. It fails once the
// segment is closed.
func (s *Segment) pin() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.pins++
	return true
}

// unpin drops a pin, unmapping if Close already ran and this was the
// last reader.
func (s *Segment) unpin() {
	s.mu.Lock()
	s.pins--
	last := s.closed && s.pins == 0
	s.mu.Unlock()
	if last {
		//ptmlint:allow errdrop -- deferred unmap of a segment already logically deleted; nothing can act on a failure here
		_ = s.m.close()
	}
}

// Close marks the segment unusable for new pins and unmaps it once the
// last in-flight reader unpins. Safe to call while queries hold pins —
// that is the point.
func (s *Segment) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	idle := s.pins == 0
	s.mu.Unlock()
	if idle {
		return s.m.close()
	}
	return nil
}

// ParseSegmentRecords parses a full segment image, verifies every
// record's CRC (this is the trust-nothing reader path — snapshot
// restore — not the lazy mapped path), and calls fn with a fresh,
// heap-resident copy of each record in (location, period) order.
func ParseSegmentRecords(data []byte, fn func(*record.Record) error) error {
	entries, err := parseSegment(data)
	if err != nil {
		return err
	}
	for i := range entries {
		e := &entries[i]
		raw := data[e.off : e.off+e.wordBytes()]
		if crc32.ChecksumIEEE(raw) != e.crc {
			return fmt.Errorf("%w: record loc=%d period=%d checksum mismatch", ErrSegCorrupt, e.loc, e.period)
		}
		words := make([]uint64, int(e.nbits)/64)
		for j := range words {
			words[j] = leU64(raw[j*8:])
		}
		bm, err := bitmap.FromWords(words)
		if err != nil {
			return fmt.Errorf("store: segment record loc=%d period=%d: %w", e.loc, e.period, err)
		}
		if err := fn(&record.Record{Location: e.loc, Period: e.period, Bitmap: bm}); err != nil {
			return err
		}
	}
	return nil
}

// scanSegmentDir lists the segment files in dir, sorted by id, and
// removes leftover temp files from an interrupted freeze (the atomic
// rename never happened, so they are invisible to recovery by design).
func scanSegmentDir(dir string) ([]uint64, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	var ids []uint64
	for _, de := range names {
		name := de.Name()
		if len(name) == len("000000000000000000.seg.tmp") && name[18:] == ".seg.tmp" {
			//ptmlint:allow errdrop -- leftover temp from an interrupted freeze; removal is best-effort hygiene
			_ = os.Remove(dir + "/" + name)
			continue
		}
		if len(name) != len("000000000000000000.seg") || name[18:] != ".seg" {
			continue
		}
		var id uint64
		if _, err := fmt.Sscanf(name[:18], "%d", &id); err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// Little-endian helpers, kept local so the parser reads as layout math.

//ptm:noalloc
//ptm:inline
func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

//ptm:noalloc
//ptm:inline
func leU64(b []byte) uint64 {
	return uint64(leU32(b)) | uint64(leU32(b[4:]))<<32
}

//ptm:noalloc
//ptm:inline
func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

//ptm:noalloc
//ptm:inline
func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}
