package store

// The block cache: the bounded window through which the query plane
// reads cold records. A "span" is one record's word range inside a
// mapped segment. Admission verifies the record's CRC (first touch
// streams the bytes anyway), hands out the zero-copy word view, and
// accounts the span's bytes against the cache budget; eviction picks
// the least-recently-used unpinned span and releases its backing pages
// with madvise, so the process's resident set tracks the budget rather
// than the data set.
//
// Pin protocol: Get returns the span's words together with an unpin
// function. The words stay valid — never evicted, never unmapped —
// until unpin is called; unpin must be called exactly once. Pinned
// spans are skipped by the evictor, so a join streaming a cold record
// can never have its operand dropped mid-scan. Loads happen outside
// the cache lock; concurrent Gets for the same span share one load.

import (
	"container/list"
	"expvar"
	"sync"
	"sync/atomic"
)

// DefaultCacheBytes bounds the block cache when the operator does not
// set -resident-budget or PTM_BLOCKCACHE_BYTES: 256 MiB, enough to keep
// a dashboard's working set of cold records resident.
const DefaultCacheBytes = 256 << 20

// Process-wide counter totals, aggregated across every BlockCache ever
// constructed and published under expvar ("ptm.blockcache.*") — the
// same pattern as core.EstCache's counters. Per-cache numbers live on
// the cache (CacheStats).
var (
	bcExpvarOnce sync.Once

	bcHitsTotal      atomic.Uint64
	bcMissesTotal    atomic.Uint64
	bcEvictionsTotal atomic.Uint64
	bcPinnedBytes    atomic.Int64
)

// publishBlockCacheVars registers the expvar views exactly once, on
// first cache construction, so merely importing store never claims the
// names.
func publishBlockCacheVars() {
	bcExpvarOnce.Do(func() {
		expvar.Publish("ptm.blockcache.hits", expvar.Func(func() any {
			return bcHitsTotal.Load()
		}))
		expvar.Publish("ptm.blockcache.misses", expvar.Func(func() any {
			return bcMissesTotal.Load()
		}))
		expvar.Publish("ptm.blockcache.evictions", expvar.Func(func() any {
			return bcEvictionsTotal.Load()
		}))
		expvar.Publish("ptm.blockcache.pinned_bytes", expvar.Func(func() any {
			return bcPinnedBytes.Load()
		}))
	})
}

// CacheStats is a snapshot of one cache's counters.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	// AdviseErrors counts failed page-release hints; evictions still
	// complete (the hint is a perf matter, never correctness).
	AdviseErrors uint64
	// PinnedBytes is the payload currently pinned by in-flight readers.
	PinnedBytes int64
	// CachedBytes is the payload currently admitted (pinned included).
	CachedBytes int64
	// CapacityBytes is the configured budget.
	CapacityBytes int64
	Spans         int
}

// spanKey identifies one record's words inside one segment.
type spanKey struct {
	seg uint64
	idx int
}

// span is one cached record view.
type span struct {
	key   spanKey
	words []uint64
	bytes int64
	// evict releases the span's backing pages; nil when the platform
	// cannot.
	evict func() error

	// ready is closed when the load completes (err set on failure);
	// concurrent Gets for a loading span wait on it outside the lock.
	ready chan struct{}
	err   error

	// pins, removed, and elem are owned by the BlockCache and only
	// touched with BlockCache.mu held.
	pins    int
	removed bool
	elem    *list.Element
}

// BlockCache is the bounded LRU of cold-record spans. All methods are
// safe for concurrent use.
type BlockCache struct {
	capacity int64

	mu sync.Mutex
	//ptm:guardedby mu
	spans map[spanKey]*span
	//ptm:guardedby mu
	lru *list.List // front = most recently used; Values are *span
	//ptm:guardedby mu
	bytes int64
	//ptm:guardedby mu
	pinned int64

	hits       atomic.Uint64
	misses     atomic.Uint64
	evictions  atomic.Uint64
	adviseErrs atomic.Uint64
}

// NewBlockCache creates a cache bounded to capacity bytes (capacity <= 0
// selects DefaultCacheBytes). The budget bounds unpinned residency;
// pinned spans can push past it transiently, by exactly the working set
// of in-flight queries.
func NewBlockCache(capacity int64) *BlockCache {
	if capacity <= 0 {
		capacity = DefaultCacheBytes
	}
	publishBlockCacheVars()
	return &BlockCache{
		capacity: capacity,
		spans:    make(map[spanKey]*span),
		lru:      list.New(),
	}
}

// Get returns the span's words, loading (and CRC-verifying) them on
// first touch via load, pinned until the returned unpin runs. load is
// called without the cache lock held; racing Gets share a single load.
func (c *BlockCache) Get(key spanKey, load func() (words []uint64, nbytes int64, evict func() error, err error)) ([]uint64, func(), error) {
	c.mu.Lock()
	if sp, ok := c.spans[key]; ok {
		sp.pins++
		if sp.pins == 1 && sp.elem != nil {
			c.pinned += sp.bytes
			bcPinnedBytes.Add(sp.bytes)
		}
		if sp.elem != nil {
			c.lru.MoveToFront(sp.elem)
		}
		c.mu.Unlock()
		<-sp.ready
		if sp.err != nil {
			// The shared load failed; our pin died with the span.
			return nil, nil, sp.err
		}
		c.hits.Add(1)
		bcHitsTotal.Add(1)
		return sp.words, c.unpinFunc(sp), nil
	}
	sp := &span{key: key, ready: make(chan struct{}), pins: 1}
	c.spans[key] = sp
	c.mu.Unlock()

	c.misses.Add(1)
	bcMissesTotal.Add(1)
	words, nbytes, evict, err := load()

	c.mu.Lock()
	if err != nil {
		sp.err = err
		if !sp.removed {
			delete(c.spans, key)
		}
		close(sp.ready)
		c.mu.Unlock()
		return nil, nil, err
	}
	sp.words, sp.bytes, sp.evict = words, nbytes, evict
	if !sp.removed {
		// pins >= 1 (ours), so the span enters accounted-and-pinned.
		c.bytes += nbytes
		c.pinned += nbytes
		bcPinnedBytes.Add(nbytes)
		sp.elem = c.lru.PushFront(sp)
		c.evictLocked()
	}
	close(sp.ready)
	c.mu.Unlock()
	return words, c.unpinFunc(sp), nil
}

// unpinFunc builds the single-use release for one pin of sp.
func (c *BlockCache) unpinFunc(sp *span) func() {
	return func() {
		c.mu.Lock()
		sp.pins--
		if sp.pins == 0 && sp.elem != nil {
			c.pinned -= sp.bytes
			bcPinnedBytes.Add(-sp.bytes)
			c.evictLocked()
		}
		c.mu.Unlock()
	}
}

// evictLocked sheds least-recently-used unpinned spans until the
// accounted bytes fit the budget. Pinned spans are skipped — their
// readers are mid-stream.
func (c *BlockCache) evictLocked() {
	for e := c.lru.Back(); e != nil && c.bytes > c.capacity; {
		prev := e.Prev()
		sp := e.Value.(*span)
		if sp.pins == 0 {
			c.dropLocked(sp)
			c.evictions.Add(1)
			bcEvictionsTotal.Add(1)
			if sp.evict != nil {
				if err := sp.evict(); err != nil {
					c.adviseErrs.Add(1)
				}
			}
		}
		e = prev
	}
}

// dropLocked removes sp from the map, LRU, and byte accounting.
func (c *BlockCache) dropLocked(sp *span) {
	delete(c.spans, sp.key)
	c.lru.Remove(sp.elem)
	sp.elem = nil
	sp.removed = true
	c.bytes -= sp.bytes
}

// InvalidateSegment drops every span of the given segment — retention
// deleting a whole segment file. Pinned spans are dropped from the
// cache but their readers keep streaming safely: the words view lives
// until the segment's own pin count drains the munmap. No madvise is
// issued; the segment unmap releases everything at once.
func (c *BlockCache) InvalidateSegment(seg uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, sp := range c.spans {
		if key.seg != seg {
			continue
		}
		if sp.elem == nil {
			// Still loading: mark removed; the loader skips admission.
			sp.removed = true
			delete(c.spans, key)
			continue
		}
		if sp.pins > 0 {
			c.pinned -= sp.bytes
			bcPinnedBytes.Add(-sp.bytes)
		}
		c.dropLocked(sp)
	}
}

// Stats returns a snapshot of the cache counters.
func (c *BlockCache) Stats() CacheStats {
	c.mu.Lock()
	cached, pinned, spans := c.bytes, c.pinned, c.lru.Len()
	c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		AdviseErrors:  c.adviseErrs.Load(),
		PinnedBytes:   pinned,
		CachedBytes:   cached,
		CapacityBytes: c.capacity,
		Spans:         spans,
	}
}
