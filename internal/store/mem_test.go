package store

import (
	"testing"

	"ptm/internal/vhash"
)

// TestMemShardDistribution: sequential location IDs (the common operator
// numbering) must spread across shards, not pile onto a few.
func TestMemShardDistribution(t *testing.T) {
	m, err := NewMem(16)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[*memShard]int)
	const locs = 1600
	for loc := 1; loc <= locs; loc++ {
		counts[m.shardFor(vhash.LocationID(loc))]++
	}
	if len(counts) != 16 {
		t.Fatalf("sequential locations hit %d/16 shards", len(counts))
	}
	for sh, n := range counts {
		// Perfectly uniform would be 100 per shard; allow 3x skew.
		if n > 300 {
			t.Errorf("shard %p holds %d of %d locations", sh, n, locs)
		}
	}
}

// TestMemShardCountValidation mirrors the constructor contract.
func TestMemShardCountValidation(t *testing.T) {
	for _, n := range []int{-1, 3, 12, 1 << 13} {
		if _, err := NewMem(n); err == nil {
			t.Errorf("shard count %d accepted", n)
		}
	}
	for _, n := range []int{0, 1, 2, 16, 1 << 12} {
		m, err := NewMem(n)
		if err != nil {
			t.Errorf("shard count %d rejected: %v", n, err)
			continue
		}
		want := n
		if want == 0 {
			want = DefaultShards
		}
		if m.Shards() != want {
			t.Errorf("Shards() = %d, want %d", m.Shards(), want)
		}
	}
}
