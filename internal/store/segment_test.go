package store

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"unsafe"

	"ptm/internal/bitmap"
	"ptm/internal/record"
	"ptm/internal/vhash"
)

// testRecord builds a deterministic record with ~25% bit density.
func testRecord(rng *rand.Rand, loc vhash.LocationID, p record.PeriodID, nbits int) *record.Record {
	rec, err := record.New(loc, p, nbits)
	if err != nil {
		panic(err)
	}
	for i := 0; i < nbits/4; i++ {
		rec.Bitmap.Set(rng.Uint64())
	}
	return rec
}

// testRecords builds a sorted batch across several locations and sizes.
func testRecords(rng *rand.Rand, nLocs, nPeriods int) []*record.Record {
	sizes := []int{64, 256, 1024, 8192}
	var recs []*record.Record
	for l := 0; l < nLocs; l++ {
		for p := 0; p < nPeriods; p++ {
			nbits := sizes[rng.Intn(len(sizes))]
			recs = append(recs, testRecord(rng, vhash.LocationID(l+1), record.PeriodID(p+1), nbits))
		}
	}
	return recs
}

func writeTestSegment(t *testing.T, recs []*record.Record) (string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSegment(&buf, recs); err != nil {
		t.Fatalf("WriteSegment: %v", err)
	}
	path := filepath.Join(t.TempDir(), segFileName(1))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("writing segment file: %v", err)
	}
	return path, buf.Bytes()
}

func TestSegmentRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	recs := testRecords(rng, 3, 5)
	path, raw := writeTestSegment(t, recs)

	if len(raw)%segPageAlign == 0 && len(raw) < segPageAlign {
		t.Fatalf("segment implausibly small: %d bytes", len(raw))
	}

	seg, err := OpenSegment(path, 1)
	if err != nil {
		t.Fatalf("OpenSegment: %v", err)
	}
	defer seg.Close()
	if len(seg.entries) != len(recs) {
		t.Fatalf("entries = %d, want %d", len(seg.entries), len(recs))
	}
	for i, rec := range recs {
		j := seg.find(rec.Location, rec.Period)
		if j != i {
			t.Fatalf("find(loc=%d, p=%d) = %d, want %d", rec.Location, rec.Period, j, i)
		}
		if err := seg.verifyEntry(j); err != nil {
			t.Fatalf("verifyEntry(%d): %v", j, err)
		}
		view, err := fromColdWords(seg.entryWords(j))
		if err != nil {
			t.Fatalf("fromColdWords: %v", err)
		}
		if !view.Equal(rec.Bitmap) {
			t.Fatalf("mapped record %d differs from the original", i)
		}
		if seg.entries[j].off%segWordAlign != 0 {
			t.Fatalf("entry %d words at %d not %d-byte aligned", j, seg.entries[j].off, segWordAlign)
		}
	}
	if seg.find(99, 99) != -1 {
		t.Fatal("find invented a record")
	}

	// The reader path returns equal records in order.
	var got []*record.Record
	if err := ParseSegmentRecords(raw, func(r *record.Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatalf("ParseSegmentRecords: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("reader returned %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i].Location != recs[i].Location || got[i].Period != recs[i].Period || !got[i].Bitmap.Equal(recs[i].Bitmap) {
			t.Fatalf("reader record %d differs", i)
		}
	}
}

func TestWriteSegmentRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var buf bytes.Buffer
	if err := WriteSegment(&buf, nil); err == nil {
		t.Fatal("empty segment accepted")
	}
	a := testRecord(rng, 2, 1, 64)
	b := testRecord(rng, 1, 1, 64)
	if err := WriteSegment(&buf, []*record.Record{a, b}); err == nil {
		t.Fatal("unsorted records accepted")
	}
	if err := WriteSegment(&buf, []*record.Record{a, a}); err == nil {
		t.Fatal("duplicate record accepted")
	}
	if err := WriteSegment(&buf, []*record.Record{{Location: 1, Period: 1}}); err == nil {
		t.Fatal("nil bitmap accepted")
	}
}

// refixHeaderCRC recomputes the header checksum after a deliberate
// header mutation, so the test reaches the deeper validation.
func refixHeaderCRC(data []byte) {
	putU32(data[60:64], crc32.ChecksumIEEE(data[:60]))
}

func TestParseSegmentRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	recs := testRecords(rng, 2, 3)
	_, raw := writeTestSegment(t, recs)

	if _, err := parseSegment(raw); err != nil {
		t.Fatalf("pristine segment rejected: %v", err)
	}

	mutate := func(name string, f func(d []byte) []byte) {
		d := append([]byte(nil), raw...)
		d = f(d)
		if _, err := parseSegment(d); err == nil {
			t.Fatalf("%s: corrupt segment accepted", name)
		}
	}
	mutate("truncated header", func(d []byte) []byte { return d[:32] })
	mutate("truncated index", func(d []byte) []byte { return d[:segHeaderLen+10] })
	mutate("truncated data", func(d []byte) []byte { return d[:len(d)-64] })
	mutate("bad magic", func(d []byte) []byte { d[0] ^= 0xff; return d })
	mutate("bad version", func(d []byte) []byte { d[4] = 9; refixHeaderCRC(d); return d })
	mutate("torn header", func(d []byte) []byte { d[17] ^= 0x01; return d })
	mutate("lying count", func(d []byte) []byte { d[8]++; refixHeaderCRC(d); return d })
	mutate("torn index", func(d []byte) []byte { d[segHeaderLen] ^= 0x40; return d })
	mutate("lying data offset", func(d []byte) []byte {
		putU64(d[24:32], 1<<40)
		refixHeaderCRC(d)
		return d
	})
	mutate("trailing garbage", func(d []byte) []byte { return append(d, 0xcc) })

	// A lying index entry (out-of-bounds word offset) with both CRCs
	// refixed must still fail bounds validation, not read out of range.
	d := append([]byte(nil), raw...)
	count := int(leU32(d[8:12]))
	entBase := segHeaderLen
	putU64(d[entBase+16:entBase+24], uint64(len(d))) // first entry's wordOff -> EOF
	idxLen := count*segEntryLen + 4
	putU32(d[segHeaderLen+idxLen-4:], crc32.ChecksumIEEE(d[segHeaderLen:segHeaderLen+idxLen-4]))
	if _, err := parseSegment(d); err == nil {
		t.Fatal("lying index entry accepted")
	}

	// Data corruption is the lazy check's job: parse succeeds, the
	// per-record verify fails.
	d = append([]byte(nil), raw...)
	dataOff := leU64(d[24:32])
	d[dataOff] ^= 0x01
	entries, err := parseSegment(d)
	if err != nil {
		t.Fatalf("data corruption rejected at parse time (should be lazy): %v", err)
	}
	hit := false
	for i := range entries {
		e := &entries[i]
		if crc32.ChecksumIEEE(d[e.off:e.off+e.wordBytes()]) != e.crc {
			hit = true
		}
	}
	if !hit {
		t.Fatal("flipped data bit not caught by any record CRC")
	}
	if err := ParseSegmentRecords(d, func(*record.Record) error { return nil }); err == nil {
		t.Fatal("reader path accepted corrupt record data")
	}
}

// FuzzSegmentLoad is the lying-bytes contract: whatever the input —
// truncated, torn, or with an index that lies about offsets — the
// parser must return an error or records, never panic, never index out
// of bounds, and never allocate proportionally to claimed-but-absent
// data.
func FuzzSegmentLoad(f *testing.F) {
	rng := rand.New(rand.NewSource(4))
	_, raw := writeTestSegmentF(f, testRecords(rng, 2, 2))
	f.Add(raw)
	f.Add(raw[:segHeaderLen])
	f.Add(raw[:len(raw)-1])
	f.Add([]byte{})
	trunc := append([]byte(nil), raw[:200]...)
	f.Add(trunc)
	torn := append([]byte(nil), raw...)
	torn[len(torn)/2] ^= 0xff
	f.Add(torn)

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := parseSegment(data)
		if err == nil {
			// Whatever parsed must stay in bounds under full reads.
			for i := range entries {
				e := &entries[i]
				_ = crc32.ChecksumIEEE(data[e.off : e.off+e.wordBytes()])
			}
		}
		//ptmlint:allow errdrop -- fuzz target: only absence of panics/OOB matters
		_ = ParseSegmentRecords(data, func(r *record.Record) error {
			_ = r.Bitmap.Ones()
			return nil
		})
	})
}

// writeTestSegmentF is writeTestSegment for fuzz seeding.
func writeTestSegmentF(f *testing.F, recs []*record.Record) (string, []byte) {
	f.Helper()
	var buf bytes.Buffer
	if err := WriteSegment(&buf, recs); err != nil {
		f.Fatalf("WriteSegment: %v", err)
	}
	return "", buf.Bytes()
}

func TestScanSegmentDir(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	for _, id := range []uint64{3, 1, 7} {
		var buf bytes.Buffer
		if err := WriteSegment(&buf, testRecords(rng, 1, 1)); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segFileName(id)), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Leftover temp from an interrupted freeze and an unrelated file.
	if err := os.WriteFile(filepath.Join(dir, segFileName(9)+".tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ids, err := scanSegmentDir(dir)
	if err != nil {
		t.Fatalf("scanSegmentDir: %v", err)
	}
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 7 {
		t.Fatalf("ids = %v, want [1 3 7]", ids)
	}
	if _, err := os.Stat(filepath.Join(dir, segFileName(9)+".tmp")); !os.IsNotExist(err) {
		t.Fatal("interrupted-freeze temp file not swept")
	}
}

func TestWordsViewZeroCopy(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("zero-copy view requires a little-endian host")
	}
	b := bitmap.MustNew(256)
	b.Set(1)
	// Back the buffer with []uint64 so 8-byte alignment is guaranteed,
	// exactly like the mmap fallback path (mappings are page aligned).
	backing := make([]uint64, 5)
	raw := unsafe.Slice((*byte)(unsafe.Pointer(&backing[0])), len(backing)*8)
	words := b.Uint64s()
	base := 8
	for i, w := range words {
		putU64(raw[base+i*8:], w)
	}
	v := wordsView(raw, base, 4)
	if v[0] != words[0] {
		t.Fatalf("view[0] = %#x, want %#x", v[0], words[0])
	}
	raw[base] ^= 0xff
	if v[0] == words[0] {
		t.Fatal("view copied instead of aliasing on an aligned little-endian host")
	}
}
