package store

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// loadWords builds a loader returning n words (8n bytes).
func loadWords(n int, loads *atomic.Int64, evicts *atomic.Int64) func() ([]uint64, int64, func() error, error) {
	return func() ([]uint64, int64, func() error, error) {
		if loads != nil {
			loads.Add(1)
		}
		var evict func() error
		if evicts != nil {
			evict = func() error { evicts.Add(1); return nil }
		}
		return make([]uint64, n), int64(n * 8), evict, nil
	}
}

func TestBlockCacheHitMissEvict(t *testing.T) {
	c := NewBlockCache(64) // room for exactly one 8-word span
	var loads, evicts atomic.Int64

	w1, unpin1, err := c.Get(spanKey{1, 0}, loadWords(8, &loads, &evicts))
	if err != nil || len(w1) != 8 {
		t.Fatalf("Get: %v", err)
	}
	unpin1()
	if _, unpin, err := c.Get(spanKey{1, 0}, loadWords(8, &loads, &evicts)); err != nil {
		t.Fatal(err)
	} else {
		unpin()
	}
	if loads.Load() != 1 {
		t.Fatalf("loads = %d, want 1 (second Get must hit)", loads.Load())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}

	// A second span overflows the budget; the idle first span goes.
	if _, unpin, err := c.Get(spanKey{1, 1}, loadWords(8, &loads, &evicts)); err != nil {
		t.Fatal(err)
	} else {
		unpin()
	}
	st = c.Stats()
	if st.Evictions != 1 || evicts.Load() != 1 {
		t.Fatalf("evictions = %d (release hooks %d), want 1", st.Evictions, evicts.Load())
	}
	if st.CachedBytes != 64 || st.Spans != 1 {
		t.Fatalf("after eviction: %+v", st)
	}
	// The evicted span reloads.
	if _, unpin, err := c.Get(spanKey{1, 0}, loadWords(8, &loads, &evicts)); err != nil {
		t.Fatal(err)
	} else {
		unpin()
	}
	if loads.Load() != 3 {
		t.Fatalf("loads = %d, want 3", loads.Load())
	}
}

func TestBlockCachePinBlocksEviction(t *testing.T) {
	c := NewBlockCache(64)
	_, unpinA, err := c.Get(spanKey{1, 0}, loadWords(8, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	// While A is pinned, admitting B must not evict A even though the
	// budget is blown.
	_, unpinB, err := c.Get(spanKey{1, 1}, loadWords(8, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 0 || st.Spans != 2 || st.PinnedBytes != 128 {
		t.Fatalf("pinned spans were touched: %+v", st)
	}
	unpinA()
	unpinB()
	// The budget reasserts itself once pins drain.
	st = c.Stats()
	if st.CachedBytes > 64 || st.PinnedBytes != 0 {
		t.Fatalf("after unpin: %+v", st)
	}
}

func TestBlockCacheSharedLoad(t *testing.T) {
	c := NewBlockCache(1 << 20)
	var loads atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			words, unpin, err := c.Get(spanKey{7, 3}, loadWords(8, &loads, nil))
			if err != nil || len(words) != 8 {
				t.Errorf("Get: %v", err)
				return
			}
			unpin()
		}()
	}
	wg.Wait()
	if loads.Load() != 1 {
		t.Fatalf("racing Gets ran %d loads, want 1 shared", loads.Load())
	}
}

func TestBlockCacheLoadError(t *testing.T) {
	c := NewBlockCache(1 << 20)
	boom := errors.New("checksum mismatch")
	if _, _, err := c.Get(spanKey{1, 0}, func() ([]uint64, int64, func() error, error) {
		return nil, 0, nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the load error", err)
	}
	// The failed span must not poison the key.
	if _, unpin, err := c.Get(spanKey{1, 0}, loadWords(8, nil, nil)); err != nil {
		t.Fatalf("Get after failed load: %v", err)
	} else {
		unpin()
	}
	if st := c.Stats(); st.Spans != 1 || st.CachedBytes != 64 {
		t.Fatalf("stats after recovery: %+v", st)
	}
}

func TestBlockCacheInvalidateSegment(t *testing.T) {
	c := NewBlockCache(1 << 20)
	_, unpinPinned, err := c.Get(spanKey{1, 0}, loadWords(8, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, unpin, err := c.Get(spanKey{1, 1}, loadWords(8, nil, nil)); err != nil {
		t.Fatal(err)
	} else {
		unpin()
	}
	if _, unpin, err := c.Get(spanKey{2, 0}, loadWords(8, nil, nil)); err != nil {
		t.Fatal(err)
	} else {
		unpin()
	}

	c.InvalidateSegment(1)
	st := c.Stats()
	if st.Spans != 1 || st.CachedBytes != 64 {
		t.Fatalf("segment 1 spans survived invalidation: %+v", st)
	}
	if st.PinnedBytes != 0 {
		t.Fatalf("invalidated pinned span still accounted: %+v", st)
	}
	// Unpinning after invalidation must not corrupt the accounting.
	unpinPinned()
	if st := c.Stats(); st.PinnedBytes != 0 || st.CachedBytes != 64 {
		t.Fatalf("after late unpin: %+v", st)
	}
	// Segment 2 is untouched.
	var loads atomic.Int64
	if _, unpin, err := c.Get(spanKey{2, 0}, loadWords(8, &loads, nil)); err != nil {
		t.Fatal(err)
	} else {
		unpin()
	}
	if loads.Load() != 0 {
		t.Fatal("survivor span was reloaded")
	}
}
