package store

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ptm/internal/core"
	"ptm/internal/record"
	"ptm/internal/vhash"
)

// ingestAll feeds recs (cloned order-independently) into a store.
func ingestAll(t *testing.T, s Store, recs []*record.Record) {
	t.Helper()
	for _, rec := range recs {
		if _, err := s.Ingest(rec); err != nil {
			t.Fatalf("Ingest(loc=%d, p=%d): %v", rec.Location, rec.Period, err)
		}
	}
}

// snapshotBytes serializes a store the way central.SaveTo does: every
// record in (location, period) order through AppendBinary.
func snapshotBytes(t *testing.T, s Store) []byte {
	t.Helper()
	var out bytes.Buffer
	scratch := make([]byte, 0, 4096)
	if err := s.ForEachSorted(nil, func(rec *record.Record) error {
		blob, err := rec.AppendBinary(scratch[:0])
		if err != nil {
			return err
		}
		scratch = blob[:0]
		_, err = out.Write(blob)
		return err
	}); err != nil {
		t.Fatalf("ForEachSorted: %v", err)
	}
	return out.Bytes()
}

// collectSet assembles a record.Set through the Store interface.
func collectSet(t *testing.T, s Store, loc vhash.LocationID, periods []record.PeriodID) (*record.Set, func()) {
	t.Helper()
	recs, _, unpin, err := s.Collect(loc, periods)
	if err != nil {
		t.Fatalf("Collect(loc=%d): %v", loc, err)
	}
	set, err := record.NewSet(recs)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	return set, unpin
}

// TestDifferentialStores is the tentpole's acceptance test at the store
// level: the same data set through Mem, Tiered (fully frozen), and the
// read-only Mmap store yields byte-identical snapshots and bit-identical
// estimates.
func TestDifferentialStores(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	recs := testRecords(rng, 4, 6)
	periods := []record.PeriodID{1, 2, 3, 4, 5, 6}

	mem, err := NewMem(0)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, mem, recs)

	dir := t.TempDir()
	tiered, err := OpenTiered(dir, TieredOptions{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, tiered, recs)
	frozen, err := tiered.Freeze(0)
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if frozen != len(recs) {
		t.Fatalf("froze %d records, want %d", frozen, len(recs))
	}
	if st := tiered.Stats(); st.HotRecords != 0 || st.ColdRecords != len(recs) {
		t.Fatalf("after full freeze: %+v", st)
	}

	memSnap := snapshotBytes(t, mem)
	tieredSnap := snapshotBytes(t, tiered)
	if !bytes.Equal(memSnap, tieredSnap) {
		t.Fatal("tiered snapshot differs from resident snapshot")
	}

	// Estimates: resident vs cold-tier operands, bit for bit.
	type est struct{ point, p2p float64 }
	estimates := func(s Store) []est {
		var out []est
		for loc := vhash.LocationID(1); loc <= 4; loc++ {
			set, unpin := collectSet(t, s, loc, periods)
			pr, err := core.EstimatePointOpts(set, core.SplitHalves)
			if err != nil {
				t.Fatalf("EstimatePoint(loc=%d): %v", loc, err)
			}
			other := loc%4 + 1
			setB, unpinB := collectSet(t, s, other, periods)
			p2p, err := core.EstimatePointToPoint(set, setB, 1)
			if err != nil {
				t.Fatalf("EstimatePointToPoint(%d,%d): %v", loc, other, err)
			}
			unpinB()
			unpin()
			out = append(out, est{point: pr.Estimate, p2p: p2p.Estimate})
		}
		return out
	}
	want := estimates(mem)
	if got := estimates(tiered); !equalEsts(got, want) {
		t.Fatalf("tiered estimates differ:\n got %v\nwant %v", got, want)
	}
	if err := tiered.Close(); err != nil {
		t.Fatal(err)
	}

	// The read-only store over the same segment directory.
	mm, err := OpenMmap(dir, 1<<20)
	if err != nil {
		t.Fatalf("OpenMmap: %v", err)
	}
	defer mm.Close()
	if got := estimates(mm); !equalEsts(got, want) {
		t.Fatalf("mmap estimates differ:\n got %v\nwant %v", got, want)
	}
	if !bytes.Equal(snapshotBytes(t, mm), memSnap) {
		t.Fatal("mmap snapshot differs from resident snapshot")
	}
	if _, err := mm.Ingest(recs[0]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only Ingest: %v", err)
	}
	if _, err := mm.DropBefore(100); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only DropBefore: %v", err)
	}
}

func equalEsts[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTieredBudgetFreeze proves the automatic freeze trigger: ingesting
// far past the resident budget keeps the hot tier bounded and every
// record queryable, with epochs untouched by migration.
func TestTieredBudgetFreeze(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const budget = 32 * 1024 // bytes
	tiered, err := OpenTiered(t.TempDir(), TieredOptions{ResidentBudget: budget, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer tiered.Close()

	const loc, nPeriods = vhash.LocationID(9), 64
	var periods []record.PeriodID
	for p := 1; p <= nPeriods; p++ {
		rec := testRecord(rng, loc, record.PeriodID(p), 32*1024) // 4 KiB each
		if _, err := tiered.Ingest(rec); err != nil {
			t.Fatalf("Ingest p=%d: %v", p, err)
		}
		periods = append(periods, record.PeriodID(p))
	}
	st := tiered.Stats()
	if st.HotBits/8 > budget {
		t.Fatalf("hot tier %d bytes exceeds budget %d", st.HotBits/8, budget)
	}
	if st.ColdRecords == 0 || st.Segments == 0 {
		t.Fatalf("no freezes happened: %+v", st)
	}
	if st.Records != nPeriods {
		t.Fatalf("records = %d, want %d", st.Records, nPeriods)
	}

	_, epoch, unpin, err := tiered.Collect(loc, periods)
	if err != nil {
		t.Fatalf("Collect across tiers: %v", err)
	}
	unpin()
	if epoch != nPeriods {
		t.Fatalf("epoch = %d, want %d (one bump per ingest, none per freeze)", epoch, nPeriods)
	}
	if cs := tiered.CacheStats(); cs.Misses == 0 {
		t.Fatalf("cold reads never touched the block cache: %+v", cs)
	}

	// Duplicates are rejected from both tiers.
	if _, err := tiered.Ingest(testRecord(rng, loc, 1, 64)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("cold duplicate: %v", err)
	}
	hotP := record.PeriodID(nPeriods) // newest period is still hot
	if _, err := tiered.Ingest(testRecord(rng, loc, hotP, 64)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("hot duplicate: %v", err)
	}
}

// TestTieredRetentionReleasesDisk is the satellite's guarantee: dropping
// periods drops whole segment files, not just index entries.
func TestTieredRetentionReleasesDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dir := t.TempDir()
	tiered, err := OpenTiered(dir, TieredOptions{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer tiered.Close()

	// Two freeze batches -> two segments with disjoint period ranges.
	for p := 1; p <= 4; p++ {
		if _, err := tiered.Ingest(testRecord(rng, 1, record.PeriodID(p), 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tiered.Freeze(0); err != nil {
		t.Fatal(err)
	}
	for p := 5; p <= 8; p++ {
		if _, err := tiered.Ingest(testRecord(rng, 1, record.PeriodID(p), 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tiered.Freeze(0); err != nil {
		t.Fatal(err)
	}
	if n := countSegFiles(t, dir); n != 2 {
		t.Fatalf("segment files = %d, want 2", n)
	}
	before := dirBytes(t, dir)

	// Pin a record from the doomed segment: deletion must not break the
	// in-flight reader.
	rec, unpin, ok := tiered.Lookup(1, 2)
	if !ok {
		t.Fatal("Lookup(1,2) missing")
	}
	wantOnes := rec.Bitmap.Ones()

	dropped, err := tiered.DropBefore(5)
	if err != nil {
		t.Fatalf("DropBefore: %v", err)
	}
	if dropped != 4 {
		t.Fatalf("dropped = %d, want 4", dropped)
	}
	if n := countSegFiles(t, dir); n != 1 {
		t.Fatalf("segment files after retention = %d, want 1", n)
	}
	if after := dirBytes(t, dir); after >= before {
		t.Fatalf("retention did not release disk: %d -> %d bytes", before, after)
	}
	// The pinned reader still streams the unlinked segment's pages.
	if got := rec.Bitmap.Ones(); got != wantOnes {
		t.Fatalf("pinned record changed under retention: %d -> %d ones", wantOnes, got)
	}
	unpin()

	if _, _, ok := tiered.Lookup(1, 2); ok {
		t.Fatal("dropped record still visible")
	}
	if st := tiered.Stats(); st.Records != 4 || st.Segments != 1 {
		t.Fatalf("after retention: %+v", st)
	}

	// Dropping the rest removes the last segment file too.
	if _, err := tiered.RetainLatest(1, 0); err != nil {
		t.Fatal(err)
	}
	if n := countSegFiles(t, dir); n != 0 {
		t.Fatalf("segment files after full retention = %d, want 0", n)
	}
}

func countSegFiles(t *testing.T, dir string) int {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range des {
		if filepath.Ext(de.Name()) == ".seg" {
			n++
		}
	}
	return n
}

func dirBytes(t *testing.T, dir string) int64 {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, de := range des {
		fi, err := de.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// TestTieredReopen proves the cold tier durable: a reopened store
// serves the frozen records (the hot tier's durability belongs to the
// WAL, one layer up).
func TestTieredReopen(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dir := t.TempDir()
	recs := testRecords(rng, 2, 4)

	tiered, err := OpenTiered(dir, TieredOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, tiered, recs)
	if _, err := tiered.Freeze(0); err != nil {
		t.Fatal(err)
	}
	snap := snapshotBytes(t, tiered)
	if err := tiered.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tiered.Ingest(recs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ingest after Close: %v", err)
	}

	reopened, err := OpenTiered(dir, TieredOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	if !bytes.Equal(snapshotBytes(t, reopened), snap) {
		t.Fatal("reopened store differs")
	}
	// Replay-style re-ingest of a frozen record is a duplicate.
	if _, err := reopened.Ingest(recs[0]); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("re-ingest of cold record: %v", err)
	}
}

// TestTieredConcurrentSoak drives ingest, cross-tier queries, freezes,
// cold reads through a tiny (eviction-heavy) cache, and retention all
// at once. Run under -race this is the soak the issue asks for; the
// invariant checked is weaker than the differential tests (no torn
// reads, no panics, every complete Collect internally consistent).
func TestTieredConcurrentSoak(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tiered, err := OpenTiered(t.TempDir(), TieredOptions{
		ResidentBudget: 16 * 1024,
		CacheBytes:     8 * 1024, // a handful of spans: constant eviction
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tiered.Close()

	const nLocs = 4
	const periodsPerLoc = 48
	// Pre-seed so queriers have work from the start.
	for l := 1; l <= nLocs; l++ {
		for p := 1; p <= 8; p++ {
			if _, err := tiered.Ingest(testRecord(rng, vhash.LocationID(l), record.PeriodID(p), 8192)); err != nil {
				t.Fatal(err)
			}
		}
	}

	var ingWg, loopWg sync.WaitGroup
	stop := make(chan struct{})

	// Ingesters: one per location, fresh periods (triggers freezes).
	for l := 1; l <= nLocs; l++ {
		ingWg.Add(1)
		go func(loc vhash.LocationID, seed int64) {
			defer ingWg.Done()
			rng := rand.New(rand.NewSource(seed))
			for p := 9; p <= periodsPerLoc; p++ {
				if _, err := tiered.Ingest(testRecord(rng, loc, record.PeriodID(p), 8192)); err != nil && !errors.Is(err, ErrDuplicate) {
					t.Errorf("ingest loc=%d p=%d: %v", loc, p, err)
					return
				}
			}
		}(vhash.LocationID(l), int64(l))
	}

	// Queriers: cross-tier Collects and estimator runs until stop.
	for q := 0; q < 4; q++ {
		loopWg.Add(1)
		go func(seed int64) {
			defer loopWg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				loc := vhash.LocationID(rng.Intn(nLocs) + 1)
				periods := tiered.Periods(loc)
				if len(periods) < 2 {
					continue
				}
				recs, _, unpin, err := tiered.Collect(loc, periods[:2])
				if err != nil {
					// Retention may have raced the period listing.
					if errors.Is(err, ErrNotFound) {
						continue
					}
					t.Errorf("Collect: %v", err)
					return
				}
				set, err := record.NewSet(recs)
				if err == nil {
					if _, err := core.EstimatePointOpts(set, core.SplitHalves); err != nil {
						t.Errorf("estimate: %v", err)
					}
				}
				unpin()
			}
		}(int64(q))
	}

	// Retention: repeatedly drop the oldest periods (deleting segments
	// out from under the queriers and the cache).
	loopWg.Add(1)
	go func() {
		defer loopWg.Done()
		cut := record.PeriodID(2)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := tiered.DropBefore(cut); err != nil {
				t.Errorf("DropBefore: %v", err)
				return
			}
			if cut < periodsPerLoc/2 {
				cut++
			}
		}
	}()

	// Ingesters finish on their own; then wind down the loops.
	ingWg.Wait()
	close(stop)
	loopWg.Wait()

	if !allIngested(tiered, nLocs, periodsPerLoc) {
		t.Fatal("an ingested record went missing")
	}

	// Post-soak coherence: every surviving record readable and CRC-clean.
	if err := tiered.ForEachSorted(nil, func(rec *record.Record) error {
		_ = rec.Bitmap.Ones()
		return nil
	}); err != nil {
		t.Fatalf("post-soak scan: %v", err)
	}
}

// allIngested reports whether every location has its newest period.
func allIngested(s Store, nLocs, lastPeriod int) bool {
	for l := 1; l <= nLocs; l++ {
		if _, _, ok := s.Lookup(vhash.LocationID(l), record.PeriodID(lastPeriod)); !ok {
			return false
		}
	}
	return true
}

// TestTieredFreezeIsEpochNeutral pins down the estimate-cache contract:
// migrating records must not change what Collect returns — neither the
// epoch nor a single bit.
func TestTieredFreezeIsEpochNeutral(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tiered, err := OpenTiered(t.TempDir(), TieredOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tiered.Close()
	periods := []record.PeriodID{1, 2, 3}
	for _, p := range periods {
		if _, err := tiered.Ingest(testRecord(rng, 5, p, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	before, epochBefore, unpinB, err := tiered.Collect(5, periods)
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]int, len(before))
	for i, r := range before {
		ones[i] = r.Bitmap.Ones()
	}
	unpinB()

	if _, err := tiered.Freeze(0); err != nil {
		t.Fatal(err)
	}
	after, epochAfter, unpinA, err := tiered.Collect(5, periods)
	if err != nil {
		t.Fatal(err)
	}
	defer unpinA()
	if epochAfter != epochBefore {
		t.Fatalf("freeze changed the epoch: %d -> %d", epochBefore, epochAfter)
	}
	for i, r := range after {
		if r.Bitmap.Ones() != ones[i] {
			t.Fatalf("freeze changed record %d", i)
		}
	}
}

// TestMmapRejectsNonSegmentDir covers OpenMmap's error paths.
func TestMmapRejectsNonSegmentDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segFileName(1)), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMmap(dir, 0); err == nil {
		t.Fatal("corrupt segment dir accepted")
	}
}
