//go:build linux

package store

// mmap-backed segment access. Segments are mapped PROT_READ/MAP_SHARED:
// the kernel page cache backs every page, the process's resident set
// only grows for pages a join actually streams, and a span the block
// cache evicts is handed back with madvise(MADV_DONTNEED) — clean
// file-backed pages, so a later access simply refaults from the file.
// Nothing here ever writes through the mapping; records are sealed.

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only.
func mapFile(f *os.File, size int64) (*mapping, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("store: mmap %s: %w", f.Name(), err)
	}
	return &mapping{data: data, mmapped: true}, nil
}

// close unmaps the file.
func (m *mapping) close() error {
	if !m.mmapped || m.data == nil {
		m.data = nil
		return nil
	}
	data := m.data
	m.data = nil
	if err := syscall.Munmap(data); err != nil {
		return fmt.Errorf("store: munmap: %w", err)
	}
	return nil
}

// release advises the kernel to drop the whole pages inside
// [off, off+n): a pure RSS/page-cache hint. Partial pages at the edges
// stay resident (they may be shared with a neighboring span), and the
// data remains valid — MADV_DONTNEED on a shared file mapping discards
// clean page-cache copies, never file contents.
func (m *mapping) release(off, n int) error {
	if !m.mmapped {
		return nil
	}
	page := os.Getpagesize()
	start := (off + page - 1) &^ (page - 1)
	end := (off + n) &^ (page - 1)
	if end <= start {
		return nil
	}
	if err := syscall.Madvise(m.data[start:end], syscall.MADV_DONTNEED); err != nil {
		return fmt.Errorf("store: madvise: %w", err)
	}
	return nil
}
