// Package store provides the record stores behind the central server:
// a resident in-memory store (Mem), a tiered store that freezes cold
// periods into immutable on-disk checkpoint segments and reads them
// back through a bounded block cache of mapped pages (Tiered), and a
// read-only store serving entirely out of mapped segments (Mmap).
//
// All three present the same Store interface, and the estimator plane
// above them is tier-oblivious: a record served from a mapped segment
// is bit-identical to the resident one (the segment format stores
// bitmap words little-endian and 64-byte aligned, so a mapped record
// IS the word slice the join kernels stream over — no unmarshal, no
// copy). The differential tests in tiered_test.go prove snapshots and
// estimates identical across all three implementations.
package store

import (
	"errors"

	"ptm/internal/record"
	"ptm/internal/vhash"
)

// Errors. The central server aliases ErrDuplicate/ErrNotFound so the
// WAL replay and transport layers match them with errors.Is regardless
// of which tier produced them.
var (
	ErrDuplicate = errors.New("store: record for this location and period already stored")
	ErrNotFound  = errors.New("store: no record for requested location/period")
	ErrReadOnly  = errors.New("store: store is read-only")
	ErrClosed    = errors.New("store: store is closed")
)

// Store is the record-store contract the central server runs on.
//
// Records are immutable once ingested: a successful Ingest of
// (loc, period) fixes that record's bits forever (until retention drops
// it). Implementations may move a record between tiers at any time, but
// never change its contents — that invariant is what lets the estimate
// cache key results by (location, periods, epoch) and what makes
// queries tier-oblivious.
//
// Cold-tier reads hand out records whose bitmaps view mapped (or cached)
// pages; the unpin function returned by Lookup and Collect releases
// those pins. Callers must not touch the returned records after calling
// unpin. Resident stores return a no-op unpin, so callers can treat the
// protocol uniformly.
type Store interface {
	// Ingest stores one record, rejecting duplicates with ErrDuplicate.
	// On success, prior reports how many records the location already
	// held (across all tiers) when the record was admitted — the signal
	// the central server's estimate cache uses to count invalidations
	// (a location's first record cannot fence any cached estimate).
	Ingest(rec *record.Record) (prior int, err error)

	// Contains reports whether a record for (loc, p) is stored, in any
	// tier, without materializing it (no cold-tier I/O, no pins).
	Contains(loc vhash.LocationID, p record.PeriodID) bool

	// Lookup fetches one record. When ok, the caller must call unpin
	// (exactly once) after its last use of rec.
	Lookup(loc vhash.LocationID, p record.PeriodID) (rec *record.Record, unpin func(), ok bool)

	// Collect fetches the records for every requested period along with
	// the location's ingest epoch; the (records, epoch) pair is read
	// atomically with respect to ingest and retention, which is what
	// makes the epoch a sound estimate-cache fence. Any missing period
	// fails the whole call with ErrNotFound (wrapped). On success the
	// caller must call unpin (exactly once) after its last use of recs.
	Collect(loc vhash.LocationID, periods []record.PeriodID) (recs []*record.Record, epoch uint64, unpin func(), err error)

	// Locations returns all locations with stored records, sorted.
	Locations() []vhash.LocationID

	// Periods returns the sorted periods stored for a location.
	Periods(loc vhash.LocationID) []record.PeriodID

	// DropBefore removes all records with period < cutoff and reports
	// how many were dropped. Cold tiers also release the disk their
	// fully-dropped segments occupied.
	DropBefore(cutoff record.PeriodID) (int, error)

	// RetainLatest keeps only the newest n periods at loc (n <= 0 drops
	// everything at the location) and reports how many were dropped.
	RetainLatest(loc vhash.LocationID, n int) (int, error)

	// ForEachSorted calls fn for every stored record in (location,
	// period) order — the snapshot writer's iteration. The record set is
	// snapshotted when the call starts; begin (if non-nil) is invoked
	// once, before any fn call, with the exact number of records the
	// iteration will visit — which is how the snapshot writer can emit a
	// correct count header without buffering the stream. Cold records
	// are pinned only for the duration of their fn call. fn must not
	// retain the record.
	ForEachSorted(begin func(count int) error, fn func(rec *record.Record) error) error

	// Stats returns a snapshot of store-level counters.
	Stats() Stats

	// Close releases OS resources (mappings, file handles). The store
	// must not be used afterwards.
	Close() error
}

// Stats summarizes a store's contents by tier. For a resident store the
// cold fields are zero.
type Stats struct {
	Locations int
	Records   int
	// Bits is the total bitmap payload held, in bits, across tiers.
	Bits int64

	// HotRecords/HotBits count the resident tier.
	HotRecords int
	HotBits    int64
	// ColdRecords/ColdBits count records living in on-disk segments.
	ColdRecords int
	ColdBits    int64
	// Segments is the number of live segment files.
	Segments int
}

// CacheStatser is implemented by stores with a cold-tier block cache;
// the /stats endpoint surfaces these counters when present.
type CacheStatser interface {
	CacheStats() CacheStats
}

// noopUnpin is the shared unpin for resident records.
func noopUnpin() {}
