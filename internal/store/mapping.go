package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"unsafe"
)

// mapping is a read-only view of a segment file's bytes. On platforms
// with mmap it is a shared file mapping — the kernel's page cache is
// the storage, the process pays RSS only for pages it touches, and
// releasing a span is an madvise away. Elsewhere it is a plain read of
// the file into a word-aligned heap buffer (correct, just not
// out-of-core).
type mapping struct {
	data    []byte
	mmapped bool
	// backing keeps the word-aligned heap buffer reachable on the
	// fallback path (data aliases it).
	backing []uint64
}

// hostLittleEndian reports whether the running host stores uint64s
// little-endian — the precondition for reinterpreting mapped segment
// bytes as words without a decode.
var hostLittleEndian = func() bool {
	var probe uint16 = 1
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}()

// mapSegmentFile opens path and maps or reads it.
func mapSegmentFile(path string) (*mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: opening segment: %w", err)
	}
	defer closeQuiet(f)
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: stat %s: %w", path, err)
	}
	size := fi.Size()
	if size < segHeaderLen {
		return nil, fmt.Errorf("%w: %s: %d bytes, shorter than the header", ErrSegCorrupt, path, size)
	}
	const maxSegBytes = 1 << 40 // address-space sanity bound, far above any real segment
	if size > maxSegBytes {
		return nil, fmt.Errorf("store: %s: implausible segment size %d", path, size)
	}
	return mapFile(f, size)
}

// wordsView reinterprets n uint64 words stored little-endian at
// data[off:]. When the host is little-endian and the bytes are 8-byte
// aligned (segment offsets are 64-byte aligned, so mapped and
// word-aligned-heap backings both qualify) the returned slice aliases
// data — the zero-copy path the whole cold tier is built around.
// Otherwise it decodes into a fresh slice. Callers must treat the
// result as read-only; a mapped backing is PROT_READ and faults on
// write, which is exactly the sealed-record contract.
func wordsView(data []byte, off, n int) []uint64 {
	b := data[off : off+n*8]
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

// closeQuiet closes f discarding the error: used only on read-only
// descriptors whose data has already been validated or mapped.
func closeQuiet(f *os.File) {
	//ptmlint:allow errdrop -- read-only descriptor; the data was already read or mapped
	_ = f.Close()
}
