package store

import (
	"fmt"
	"testing"

	"ptm/internal/bitmap"
	"ptm/internal/record"
	"ptm/internal/vhash"
)

// oocM is the per-record bitmap size of the out-of-core sweep: 2^24
// bits (2 MiB of words), the acceptance floor where cold-tier joins
// must stay within 2x of resident throughput.
const (
	oocM       = 1 << 24
	oocPeriods = 4
	oocLoc     = vhash.LocationID(1)
)

// oocRecords builds the deterministic join operand set: oocPeriods
// records of oocM bits whose words carry a period-mixed pattern (the
// AND scan touches every word regardless of density, so the pattern
// only needs to be non-trivial).
func oocRecords(b *testing.B) []*record.Record {
	b.Helper()
	recs := make([]*record.Record, 0, oocPeriods)
	for p := 1; p <= oocPeriods; p++ {
		words := make([]uint64, oocM/64)
		seed := uint64(p) * 0x9e3779b97f4a7c15
		for i := range words {
			words[i] = seed ^ uint64(i)*0x2545f4914f6cdd1d
		}
		bm, err := bitmap.FromWords(words)
		if err != nil {
			b.Fatal(err)
		}
		recs = append(recs, &record.Record{Location: oocLoc, Period: record.PeriodID(p), Bitmap: bm})
	}
	return recs
}

// benchJoin drives the join workload: collect the operands from the
// store (pinning any cold spans), AND-join their word views with the
// fused kernel, unpin.
func benchJoin(b *testing.B, st Store) {
	b.Helper()
	periods := make([]record.PeriodID, 0, oocPeriods)
	for p := 1; p <= oocPeriods; p++ {
		periods = append(periods, record.PeriodID(p))
	}
	b.SetBytes(int64(oocPeriods) * oocM / 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, _, unpin, err := st.Collect(oocLoc, periods)
		if err != nil {
			b.Fatal(err)
		}
		ws := make([][]uint64, len(recs))
		for j, rec := range recs {
			ws[j] = rec.Bitmap.Uint64s()
		}
		ones, _, err := bitmap.AndOnesWords(ws)
		unpin()
		if err != nil {
			b.Fatal(err)
		}
		if ones < 0 {
			b.Fatal("impossible popcount")
		}
	}
	b.StopTimer()
	if cs, ok := st.(CacheStatser); ok {
		stats := cs.CacheStats()
		b.ReportMetric(float64(stats.Hits)/float64(b.N), "cachehits/op")
		b.ReportMetric(float64(stats.Misses)/float64(b.N), "cachemisses/op")
		b.ReportMetric(float64(stats.Evictions)/float64(b.N), "cacheevictions/op")
	}
}

// BenchmarkOOCJoin sweeps the memory hierarchy: the same 4-period AND
// join at m=2^24 against (a) the all-resident store, (b) the cold tier
// with every span cached (the steady state of a working set that fits
// PTM_BLOCKCACHE_BYTES), and (c) the cold tier with a degenerate
// 1-byte cache, so every iteration reloads its spans from the mapped
// segment after madvise(DONTNEED) — the page-fault-bounded floor. The
// key=value name segments (tier, pagecache, budget, m, t) land in
// BENCH_pr9.json as structured params via cmd/benchjson.
func BenchmarkOOCJoin(b *testing.B) {
	recs := oocRecords(b)

	fmtName := func(tier, extra string) string {
		s := fmt.Sprintf("tier=%s", tier)
		if extra != "" {
			s += "/" + extra
		}
		return fmt.Sprintf("%s/m=%d/t=%d", s, oocM, oocPeriods)
	}

	b.Run(fmtName("resident", ""), func(b *testing.B) {
		m, err := NewMem(0)
		if err != nil {
			b.Fatal(err)
		}
		for _, rec := range recs {
			if _, err := m.Ingest(rec); err != nil {
				b.Fatal(err)
			}
		}
		benchJoin(b, m)
	})

	coldStore := func(b *testing.B, cacheBytes int64) *Tiered {
		b.Helper()
		ts, err := OpenTiered(b.TempDir(), TieredOptions{
			// A 1-byte budget freezes every ingest immediately: the
			// whole data set lives cold, 10^6x the budget.
			ResidentBudget: 1,
			CacheBytes:     cacheBytes,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() {
			//ptmlint:allow errdrop -- benchmark teardown
			_ = ts.Close()
		})
		for _, rec := range recs {
			clone := &record.Record{Location: rec.Location, Period: rec.Period, Bitmap: rec.Bitmap.Clone()}
			if _, err := ts.Ingest(clone); err != nil {
				b.Fatal(err)
			}
		}
		if st := ts.Stats(); st.ColdRecords != oocPeriods {
			b.Fatalf("dataset not fully cold: %+v", st)
		}
		return ts
	}

	b.Run(fmtName("cold", "pagecache=warm/budget=1"), func(b *testing.B) {
		ts := coldStore(b, 0) // default cache holds the whole working set
		benchJoin(b, ts)
	})

	b.Run(fmtName("cold", "pagecache=evicted/budget=1"), func(b *testing.B) {
		ts := coldStore(b, 1) // every unpin evicts; every Get reloads
		benchJoin(b, ts)
	})
}
