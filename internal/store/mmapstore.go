package store

import (
	"fmt"

	"ptm/internal/record"
	"ptm/internal/vhash"
)

// Mmap is the read-only store: every record is served from mapped
// checkpoint segments through the block cache, nothing is resident
// beyond the cache budget. It is the analysis-server mode — point
// centrald at a directory of frozen segments (or a copy of a tiered
// store's cold directory) and query a data set far larger than RAM.
//
// Mutations (Ingest, DropBefore, RetainLatest) fail with ErrReadOnly.
// Location epochs are constant zero: nothing ever ingests, so the
// estimate cache's fence has nothing to fence.
type Mmap struct {
	t *Tiered
}

// OpenMmap opens a segment directory read-only. cacheBytes bounds the
// block cache (<= 0 selects DefaultCacheBytes).
func OpenMmap(dir string, cacheBytes int64) (*Mmap, error) {
	t, err := OpenTiered(dir, TieredOptions{Shards: 1, CacheBytes: cacheBytes})
	if err != nil {
		return nil, err
	}
	if st := t.Stats(); st.HotRecords != 0 {
		//ptmlint:allow errdrop -- the shape error is what the caller sees
		_ = t.Close()
		return nil, fmt.Errorf("store: %s holds hot-tier state; not a pure segment directory", dir)
	}
	return &Mmap{t: t}, nil
}

// Ingest implements Store (always ErrReadOnly).
func (s *Mmap) Ingest(*record.Record) (int, error) { return 0, ErrReadOnly }

// Contains implements Store.
func (s *Mmap) Contains(loc vhash.LocationID, p record.PeriodID) bool {
	return s.t.Contains(loc, p)
}

// DropBefore implements Store (always ErrReadOnly).
func (s *Mmap) DropBefore(record.PeriodID) (int, error) { return 0, ErrReadOnly }

// RetainLatest implements Store (always ErrReadOnly).
func (s *Mmap) RetainLatest(vhash.LocationID, int) (int, error) { return 0, ErrReadOnly }

// Lookup implements Store.
func (s *Mmap) Lookup(loc vhash.LocationID, p record.PeriodID) (*record.Record, func(), bool) {
	return s.t.Lookup(loc, p)
}

// Collect implements Store.
func (s *Mmap) Collect(loc vhash.LocationID, periods []record.PeriodID) ([]*record.Record, uint64, func(), error) {
	return s.t.Collect(loc, periods)
}

// Locations implements Store.
func (s *Mmap) Locations() []vhash.LocationID { return s.t.Locations() }

// Periods implements Store.
func (s *Mmap) Periods(loc vhash.LocationID) []record.PeriodID { return s.t.Periods(loc) }

// ForEachSorted implements Store.
func (s *Mmap) ForEachSorted(begin func(count int) error, fn func(rec *record.Record) error) error {
	return s.t.ForEachSorted(begin, fn)
}

// Stats implements Store.
func (s *Mmap) Stats() Stats { return s.t.Stats() }

// CacheStats implements CacheStatser.
func (s *Mmap) CacheStats() CacheStats { return s.t.CacheStats() }

// Close implements Store.
func (s *Mmap) Close() error { return s.t.Close() }

// Interface conformance.
var (
	_ Store        = (*Mem)(nil)
	_ Store        = (*Tiered)(nil)
	_ Store        = (*Mmap)(nil)
	_ CacheStatser = (*Tiered)(nil)
	_ CacheStatser = (*Mmap)(nil)
)
