//go:build !linux

package store

import (
	"fmt"
	"io"
	"os"
	"unsafe"
)

// Fallback for platforms without the mmap path: the segment is read
// into a word-aligned heap buffer. Every Store behavior is identical —
// the differential tests run unchanged — the process just pays resident
// memory for the whole segment, so "out-of-core" degrades to "in-core".

// mapFile reads size bytes of f into an aligned buffer. The backing is
// allocated as []uint64 so wordsView's zero-copy cast stays legal on
// little-endian hosts.
func mapFile(f *os.File, size int64) (*mapping, error) {
	words := make([]uint64, (size+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("store: reading segment %s: %w", f.Name(), err)
	}
	return &mapping{data: buf, backing: words}, nil
}

// close releases the buffer.
func (m *mapping) close() error {
	m.data = nil
	m.backing = nil
	return nil
}

// release is a no-op: heap pages cannot be given back piecemeal.
func (m *mapping) release(off, n int) error { return nil }
