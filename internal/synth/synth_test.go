package synth

import (
	"errors"
	"math"
	"testing"

	"ptm/internal/core"
	"ptm/internal/vhash"
)

func TestNewGeneratorValidatesS(t *testing.T) {
	if _, err := NewGenerator(1, 0); !errors.Is(err, vhash.ErrInvalidS) {
		t.Errorf("s=0 err = %v", err)
	}
	if _, err := NewGenerator(1, 3); err != nil {
		t.Errorf("s=3: %v", err)
	}
}

func TestVolumes(t *testing.T) {
	g, err := NewGenerator(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	vols, err := g.Volumes(100, DefaultVolumeMin, DefaultVolumeMax)
	if err != nil {
		t.Fatal(err)
	}
	if len(vols) != 100 {
		t.Fatalf("len = %d", len(vols))
	}
	for _, v := range vols {
		if v <= DefaultVolumeMin || v > DefaultVolumeMax {
			t.Errorf("volume %d outside (%d, %d]", v, DefaultVolumeMin, DefaultVolumeMax)
		}
	}
	if _, err := g.Volumes(0, 1, 2); !errors.Is(err, ErrBadPeriods) {
		t.Errorf("t=0 err = %v", err)
	}
	if _, err := g.Volumes(5, 10, 10); !errors.Is(err, ErrBadVolumeRange) {
		t.Errorf("empty range err = %v", err)
	}
	if _, err := g.Volumes(5, -1, 10); !errors.Is(err, ErrBadVolumeRange) {
		t.Errorf("negative min err = %v", err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() []int {
		g, err := NewGenerator(99, 3)
		if err != nil {
			t.Fatal(err)
		}
		vols, err := g.Volumes(10, 2000, 10000)
		if err != nil {
			t.Fatal(err)
		}
		return vols
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different volumes")
		}
	}
}

func TestIdentitiesUnique(t *testing.T) {
	g, err := NewGenerator(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := g.Identities(100)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[vhash.VehicleID]bool{}
	for _, v := range ids {
		if seen[v.ID()] {
			t.Fatalf("duplicate vehicle id %d", v.ID())
		}
		seen[v.ID()] = true
	}
	more, err := g.Identities(50)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range more {
		if seen[v.ID()] {
			t.Fatalf("id %d reused across batches", v.ID())
		}
	}
}

func TestPointWorkloadStructure(t *testing.T) {
	g, err := NewGenerator(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := g.Point(PointConfig{
		Loc:     3,
		Volumes: []int{3000, 9000, 5000},
		NCommon: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Set.Len() != 3 {
		t.Fatalf("set len = %d", w.Set.Len())
	}
	if w.Set.Location() != 3 {
		t.Errorf("location = %d", w.Set.Location())
	}
	// Eq. (2) sizes every record from the historical average (mean
	// volume 5666.7 here), constant across periods: 2*5666.7 -> 16384.
	for i, b := range w.Set.Bitmaps() {
		if b.Size() != 16384 {
			t.Errorf("period %d size = %d, want 16384", i+1, b.Size())
		}
	}
	// Every common vehicle's bit is set in every record.
	for j, b := range w.Set.Bitmaps() {
		for _, v := range w.Common {
			if !b.Get(v.Index(3, b.Size())) {
				t.Fatalf("common vehicle missing in period %d", j+1)
			}
		}
	}
}

func TestPointWorkloadEstimates(t *testing.T) {
	g, err := NewGenerator(11, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := g.Point(PointConfig{
		Loc:     1,
		Volumes: []int{6000, 7000, 5000, 8000, 6500},
		NCommon: 1200,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.EstimatePoint(w.Set)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(res.Estimate-1200) / 1200; re > 0.12 {
		t.Errorf("estimate %v vs 1200: rel err %.3f", res.Estimate, re)
	}
}

func TestPointFixedM(t *testing.T) {
	g, err := NewGenerator(13, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := g.Point(PointConfig{
		Loc:     1,
		Volumes: []int{3000, 9000},
		NCommon: 100,
		FixedM:  4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Set.Bitmaps() {
		if b.Size() != 4096 {
			t.Errorf("size = %d, want FixedM 4096", b.Size())
		}
	}
}

func TestPointSizingModes(t *testing.T) {
	g, err := NewGenerator(31, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Explicit expectation overrides the mean.
	w, err := g.Point(PointConfig{Loc: 1, Volumes: []int{3000, 9000}, ExpectedVolume: 3000})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Set.Bitmaps() {
		if b.Size() != 8192 {
			t.Errorf("size = %d, want 8192 from ExpectedVolume", b.Size())
		}
	}
	// PerPeriodSizing (the documented deviation from Eq. 2) varies sizes.
	w, err = g.Point(PointConfig{Loc: 1, Volumes: []int{3000, 9000}, PerPeriodSizing: true})
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{w.Set.Bitmaps()[0].Size(), w.Set.Bitmaps()[1].Size()}
	if sizes[0] != 8192 || sizes[1] != 32768 {
		t.Errorf("per-period sizes = %v, want [8192 32768]", sizes)
	}
}

func TestPairExplicitExpectations(t *testing.T) {
	g, err := NewGenerator(37, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := g.Pair(PairConfig{
		LocA: 1, LocB: 2,
		VolumesA: []int{3000, 3500}, VolumesB: []int{9000, 9500},
		NCommon: 100, ExpectedA: 3000, ExpectedB: 16000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.SetA.Bitmaps()[0].Size(); got != 8192 {
		t.Errorf("A size = %d, want 8192", got)
	}
	if got := w.SetB.Bitmaps()[0].Size(); got != 32768 {
		t.Errorf("B size = %d, want 32768", got)
	}
}

func TestPointErrors(t *testing.T) {
	g, err := NewGenerator(17, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Point(PointConfig{Loc: 1}); !errors.Is(err, ErrBadPeriods) {
		t.Errorf("no volumes err = %v", err)
	}
	if _, err := g.Point(PointConfig{Loc: 1, Volumes: []int{100}, NCommon: 200}); !errors.Is(err, ErrCommonTooLarge) {
		t.Errorf("oversized common err = %v", err)
	}
}

func TestPairWorkload(t *testing.T) {
	g, err := NewGenerator(19, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := g.Pair(PairConfig{
		LocA: 1, LocB: 2,
		VolumesA: []int{4000, 5000, 4500, 5500, 4200},
		VolumesB: []int{8000, 9000, 8500, 9500, 8200},
		NCommon:  900,
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.SetA.Len() != 5 || w.SetB.Len() != 5 {
		t.Fatal("wrong period counts")
	}
	res, err := core.EstimatePointToPoint(w.SetA, w.SetB, 3)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(res.Estimate-900) / 900; re > 0.15 {
		t.Errorf("p2p estimate %v vs 900: rel err %.3f", res.Estimate, re)
	}
}

// TestPairSameSizeDegrades reproduces the rationale for Table I's last
// row: forcing m' = m (sized from the smaller location) degrades accuracy
// when the other location carries much more traffic.
func TestPairSameSizeDegrades(t *testing.T) {
	const nCommon = 400
	runCfg := func(same bool, seed uint64) float64 {
		g, err := NewGenerator(seed, 3)
		if err != nil {
			t.Fatal(err)
		}
		w, err := g.Pair(PairConfig{
			LocA: 1, LocB: 2,
			VolumesA: []int{3000, 3000, 3000, 3000, 3000},
			VolumesB: []int{48000, 48000, 48000, 48000, 48000},
			NCommon:  nCommon,
			SameSize: same,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.EstimatePointToPoint(w.SetA, w.SetB, 3)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(res.Estimate-nCommon) / nCommon
	}
	var properly, sameSize float64
	const runs = 5
	for seed := uint64(0); seed < runs; seed++ {
		properly += runCfg(false, 100+seed) / runs
		sameSize += runCfg(true, 200+seed) / runs
	}
	if sameSize <= properly*2 {
		t.Errorf("same-size error %.3f should far exceed proper sizing %.3f", sameSize, properly)
	}
}

func TestPairSameSizeForcesSizes(t *testing.T) {
	g, err := NewGenerator(23, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := g.Pair(PairConfig{
		LocA: 1, LocB: 2,
		VolumesA: []int{3000, 3000},
		VolumesB: []int{48000, 48000},
		NCommon:  100,
		SameSize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range w.SetB.Bitmaps() {
		if b.Size() != w.SetA.Bitmaps()[i].Size() {
			t.Errorf("period %d: sizes differ under SameSize", i+1)
		}
	}
}

func TestPairErrors(t *testing.T) {
	g, err := NewGenerator(29, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Pair(PairConfig{VolumesA: []int{100}, VolumesB: []int{100, 100}}); !errors.Is(err, ErrBadPeriods) {
		t.Errorf("mismatched periods err = %v", err)
	}
	if _, err := g.Pair(PairConfig{VolumesA: []int{100}, VolumesB: []int{100}, NCommon: 150}); !errors.Is(err, ErrCommonTooLarge) {
		t.Errorf("oversized common err = %v", err)
	}
}
