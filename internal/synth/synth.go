// Package synth generates the simulation workloads of Section VI: aligned
// record sets containing a configurable persistent (common-vehicle)
// population plus per-period transient traffic.
//
// Common vehicles are modeled with full vhash identities, because their
// cross-period and cross-location correlations are exactly what the
// persistent estimators measure. Transient vehicles appear in a single
// record only, and a fresh identity's index is uniform over the bitmap, so
// the generator sets a uniformly random bit instead of materializing an
// identity — statistically identical and orders of magnitude faster at the
// paper's traffic volumes (hundreds of thousands of vehicles per period).
package synth

import (
	"errors"
	"fmt"
	"math/rand"

	"ptm/internal/lpc"
	"ptm/internal/record"
	"ptm/internal/vhash"
)

// Paper defaults (Section VI).
const (
	DefaultS         = 3
	DefaultF         = 2.0
	DefaultVolumeMin = 2000  // exclusive, per Section VI-B "(2000, 10000]"
	DefaultVolumeMax = 10000 // inclusive
)

// Validation errors.
var (
	ErrBadVolumeRange = errors.New("synth: invalid volume range")
	ErrBadPeriods     = errors.New("synth: need at least one period")
	ErrCommonTooLarge = errors.New("synth: common vehicles exceed period volume")
)

// Generator produces workloads deterministically from a seed.
type Generator struct {
	rng    *rand.Rand
	seed   uint64
	s      int
	nextID uint64
}

// NewGenerator creates a generator with the given seed and representative-
// bit count s.
func NewGenerator(seed uint64, s int) (*Generator, error) {
	if s < vhash.MinS || s > vhash.MaxS {
		return nil, fmt.Errorf("synth: %w", vhash.ErrInvalidS)
	}
	return &Generator{
		rng:  rand.New(rand.NewSource(int64(seed))),
		seed: seed,
		s:    s,
	}, nil
}

// Identities draws n fresh common-vehicle identities.
func (g *Generator) Identities(n int) ([]*vhash.Identity, error) {
	out := make([]*vhash.Identity, n)
	for i := range out {
		v, err := vhash.NewSeededIdentity(vhash.VehicleID(g.nextID), g.s, g.seed)
		if err != nil {
			return nil, err
		}
		g.nextID++
		out[i] = v
	}
	return out, nil
}

// Volumes draws t per-period volumes uniformly from (min, max], the
// Section VI-B distribution.
func (g *Generator) Volumes(t, min, max int) ([]int, error) {
	if t < 1 {
		return nil, fmt.Errorf("%w: t=%d", ErrBadPeriods, t)
	}
	if min < 0 || max <= min {
		return nil, fmt.Errorf("%w: (%d, %d]", ErrBadVolumeRange, min, max)
	}
	out := make([]int, t)
	for i := range out {
		out[i] = min + 1 + g.rng.Intn(max-min)
	}
	return out, nil
}

// PointConfig describes a single-location workload.
type PointConfig struct {
	Loc     vhash.LocationID
	Volumes []int   // per-period total volumes (common + transient)
	NCommon int     // vehicles passing in every period
	F       float64 // load factor for Eq. (2) sizing
	// ExpectedVolume is the "historical average" of Eq. (2) used to size
	// every period's record; zero means the mean of Volumes. Per the
	// paper, an RSU's record size is constant across periods with a
	// stationary expectation.
	ExpectedVolume float64
	// FixedM forces every record to FixedM bits, bypassing Eq. (2);
	// zero means size normally.
	FixedM int
	// PerPeriodSizing sizes each record from its own period's volume
	// instead of the historical average. This deviates from Eq. (2) and
	// measurably biases the point persistent estimator (see the
	// BenchmarkAblationPerPeriodSizing ablation); it exists to
	// demonstrate that sensitivity.
	PerPeriodSizing bool
}

// PointWorkload is the generated single-location data: the record set and
// its ground truth.
type PointWorkload struct {
	Set     *record.Set
	NCommon int
	Common  []*vhash.Identity
}

// Point generates a single-location workload: NCommon persistent vehicles
// encoded in every period plus (volume - NCommon) transient encodings per
// period. Each record is sized by Eq. (2) from its period's volume (the
// "historical expectation" of the synthetic world) unless FixedM is set.
func (g *Generator) Point(cfg PointConfig) (*PointWorkload, error) {
	if len(cfg.Volumes) == 0 {
		return nil, ErrBadPeriods
	}
	f := cfg.F
	if f == 0 {
		f = DefaultF
	}
	common, err := g.Identities(cfg.NCommon)
	if err != nil {
		return nil, err
	}
	expected := cfg.ExpectedVolume
	if expected == 0 {
		expected = meanVolume(cfg.Volumes)
	}
	recs := make([]*record.Record, len(cfg.Volumes))
	for j, vol := range cfg.Volumes {
		if cfg.NCommon > vol {
			return nil, fmt.Errorf("%w: %d > %d in period %d", ErrCommonTooLarge, cfg.NCommon, vol, j+1)
		}
		m := cfg.FixedM
		if m == 0 {
			basis := expected
			if cfg.PerPeriodSizing {
				basis = float64(vol)
			}
			m, err = lpc.BitmapSize(basis, f)
			if err != nil {
				return nil, fmt.Errorf("synth: sizing period %d: %w", j+1, err)
			}
		}
		r, err := record.New(cfg.Loc, record.PeriodID(j+1), m)
		if err != nil {
			return nil, err
		}
		for _, v := range common {
			r.Bitmap.Set(v.Index(cfg.Loc, m))
		}
		for i := 0; i < vol-cfg.NCommon; i++ {
			r.Bitmap.Set(g.rng.Uint64())
		}
		recs[j] = r
	}
	set, err := record.NewSet(recs)
	if err != nil {
		return nil, err
	}
	return &PointWorkload{Set: set, NCommon: cfg.NCommon, Common: common}, nil
}

// PairConfig describes a two-location workload for point-to-point
// persistent measurement.
type PairConfig struct {
	LocA, LocB vhash.LocationID
	// VolumesA and VolumesB are per-period total volumes at each
	// location; they must have equal length t.
	VolumesA, VolumesB []int
	// NCommon vehicles pass BOTH locations in every period.
	NCommon int
	F       float64
	// ExpectedA and ExpectedB are the Eq. (2) historical averages used
	// to size each location's records (constant across periods); zero
	// means the mean of the respective volume vector.
	ExpectedA, ExpectedB float64
	// SameSize forces location B's records to location A's sizes — the
	// "same-size bitmaps" baseline of Table I's last row.
	SameSize bool
}

// PairWorkload is the generated two-location data.
type PairWorkload struct {
	SetA, SetB *record.Set
	NCommon    int
}

// Pair generates aligned record sets at two locations sharing NCommon
// persistent vehicles. Transient volumes are independent per location per
// period.
func (g *Generator) Pair(cfg PairConfig) (*PairWorkload, error) {
	if len(cfg.VolumesA) == 0 || len(cfg.VolumesA) != len(cfg.VolumesB) {
		return nil, fmt.Errorf("%w: %d vs %d periods", ErrBadPeriods, len(cfg.VolumesA), len(cfg.VolumesB))
	}
	f := cfg.F
	if f == 0 {
		f = DefaultF
	}
	common, err := g.Identities(cfg.NCommon)
	if err != nil {
		return nil, err
	}
	expectedA := cfg.ExpectedA
	if expectedA == 0 {
		expectedA = meanVolume(cfg.VolumesA)
	}
	expectedB := cfg.ExpectedB
	if expectedB == 0 {
		expectedB = meanVolume(cfg.VolumesB)
	}
	mA, err := lpc.BitmapSize(expectedA, f)
	if err != nil {
		return nil, fmt.Errorf("synth: sizing A: %w", err)
	}
	mB := mA
	if !cfg.SameSize {
		mB, err = lpc.BitmapSize(expectedB, f)
		if err != nil {
			return nil, fmt.Errorf("synth: sizing B: %w", err)
		}
	}
	t := len(cfg.VolumesA)
	recsA := make([]*record.Record, t)
	recsB := make([]*record.Record, t)
	for j := 0; j < t; j++ {
		volA, volB := cfg.VolumesA[j], cfg.VolumesB[j]
		if cfg.NCommon > volA || cfg.NCommon > volB {
			return nil, fmt.Errorf("%w: %d > min(%d, %d) in period %d", ErrCommonTooLarge, cfg.NCommon, volA, volB, j+1)
		}
		ra, err := record.New(cfg.LocA, record.PeriodID(j+1), mA)
		if err != nil {
			return nil, err
		}
		rb, err := record.New(cfg.LocB, record.PeriodID(j+1), mB)
		if err != nil {
			return nil, err
		}
		for _, v := range common {
			ra.Bitmap.Set(v.Index(cfg.LocA, mA))
			rb.Bitmap.Set(v.Index(cfg.LocB, mB))
		}
		for i := 0; i < volA-cfg.NCommon; i++ {
			ra.Bitmap.Set(g.rng.Uint64())
		}
		for i := 0; i < volB-cfg.NCommon; i++ {
			rb.Bitmap.Set(g.rng.Uint64())
		}
		recsA[j], recsB[j] = ra, rb
	}
	setA, err := record.NewSet(recsA)
	if err != nil {
		return nil, err
	}
	setB, err := record.NewSet(recsB)
	if err != nil {
		return nil, err
	}
	return &PairWorkload{SetA: setA, SetB: setB, NCommon: cfg.NCommon}, nil
}

// meanVolume returns the arithmetic mean of the per-period volumes, the
// stand-in for Eq. (2)'s historical expectation in synthetic worlds.
func meanVolume(vols []int) float64 {
	sum := 0
	for _, v := range vols {
		sum += v
	}
	return float64(sum) / float64(len(vols))
}
