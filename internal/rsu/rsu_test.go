package rsu

import (
	"errors"
	"math"
	"testing"
	"time"

	"ptm/internal/core"
	"ptm/internal/dsrc"
	"ptm/internal/pki"
	"ptm/internal/record"
	"ptm/internal/vehicle"
	"ptm/internal/vhash"
)

var t0 = time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC)

func fixedClock() time.Time { return t0 }

type world struct {
	authority *pki.Authority
	ch        *dsrc.Channel
	rsu       *RSU
}

func newWorld(t *testing.T, loc vhash.LocationID, cfg dsrc.Config) *world {
	t.Helper()
	a, err := pki.NewAuthority(t0, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := a.IssueRSU(loc, t0, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := dsrc.NewChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(cred, ch, 2, fixedClock)
	if err != nil {
		t.Fatal(err)
	}
	return &world{authority: a, ch: ch, rsu: r}
}

func (w *world) fleet(t *testing.T, n int, seed uint64) []*vehicle.Vehicle {
	t.Helper()
	out := make([]*vehicle.Vehicle, n)
	for i := range out {
		id, err := vhash.NewSeededIdentity(vhash.VehicleID(i), 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		v, err := vehicle.New(id, w.authority.TrustAnchor(), fixedClock)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = v
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, 2, nil); !errors.Is(err, ErrNilDep) {
		t.Errorf("err = %v, want ErrNilDep", err)
	}
	w := newWorld(t, 1, dsrc.Config{})
	cred, err := w.authority.IssueRSU(2, t0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cred, w.ch, 0, nil); err == nil {
		t.Error("f=0 accepted")
	}
}

func TestPeriodLifecycle(t *testing.T) {
	w := newWorld(t, 5, dsrc.Config{})
	if err := w.rsu.Beacon(); !errors.Is(err, ErrNoPeriod) {
		t.Errorf("Beacon before period err = %v", err)
	}
	if _, err := w.rsu.EndPeriod(); !errors.Is(err, ErrNoPeriod) {
		t.Errorf("EndPeriod before period err = %v", err)
	}
	if err := w.rsu.StartPeriod(1, 1000); err != nil {
		t.Fatal(err)
	}
	if err := w.rsu.StartPeriod(2, 1000); !errors.Is(err, ErrPeriodActive) {
		t.Errorf("double start err = %v", err)
	}
	st := w.rsu.Stats()
	if !st.Active || st.Period != 1 || st.BitmapSize != 2048 {
		t.Errorf("stats = %+v", st)
	}
	rec, err := w.rsu.EndPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Location != 5 || rec.Period != 1 || rec.Size() != 2048 {
		t.Errorf("record = %v", rec)
	}
	if err := w.rsu.StartPeriod(2, 1000); err != nil {
		t.Fatalf("restart after end: %v", err)
	}
}

func TestStartPeriodBadVolume(t *testing.T) {
	w := newWorld(t, 5, dsrc.Config{})
	if err := w.rsu.StartPeriod(1, 0); err == nil {
		t.Error("zero expected volume accepted")
	}
}

// TestFullProtocolRoundTrip drives the complete paper pipeline over the
// simulated radio: beacons -> verification -> reports -> bitmap -> record,
// for several periods, then estimates the persistent traffic.
func TestFullProtocolRoundTrip(t *testing.T) {
	const (
		loc        = vhash.LocationID(7)
		nCommon    = 300
		nTransient = 1200
		periods    = 4
	)
	w := newWorld(t, loc, dsrc.Config{})
	common := w.fleet(t, nCommon, 1)

	var recs []*record.Record
	transientID := vhash.VehicleID(1 << 20)
	for p := record.PeriodID(1); p <= periods; p++ {
		if err := w.rsu.StartPeriod(p, nCommon+nTransient); err != nil {
			t.Fatal(err)
		}
		// Common fleet drives through.
		var leaves []func()
		for _, v := range common {
			leave, err := v.PassThrough(w.ch)
			if err != nil {
				t.Fatal(err)
			}
			leaves = append(leaves, leave)
		}
		// Fresh transient vehicles this period.
		for i := 0; i < nTransient; i++ {
			id, err := vhash.NewSeededIdentity(transientID, 3, 99)
			if err != nil {
				t.Fatal(err)
			}
			transientID++
			tv, err := vehicle.New(id, w.authority.TrustAnchor(), fixedClock)
			if err != nil {
				t.Fatal(err)
			}
			leave, err := tv.PassThrough(w.ch)
			if err != nil {
				t.Fatal(err)
			}
			leaves = append(leaves, leave)
		}
		if err := w.rsu.Beacon(); err != nil {
			t.Fatal(err)
		}
		for _, leave := range leaves {
			leave()
		}
		st := w.rsu.Stats()
		if st.ReportsSeen != nCommon+nTransient {
			t.Fatalf("period %d: %d reports, want %d", p, st.ReportsSeen, nCommon+nTransient)
		}
		rec, err := w.rsu.EndPeriod()
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}

	set, err := record.NewSet(recs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.EstimatePoint(set)
	if err != nil {
		t.Fatal(err)
	}
	if re := math.Abs(res.Estimate-nCommon) / nCommon; re > 0.25 {
		t.Errorf("full-stack estimate %v vs %d: rel err %.3f", res.Estimate, nCommon, re)
	}
}

// TestRepeatedBeaconsDoNotInflate: beaconing many times per period (as a
// real RSU does every second) must not change the record — vehicles
// suppress duplicates.
func TestRepeatedBeaconsDoNotInflate(t *testing.T) {
	w := newWorld(t, 3, dsrc.Config{})
	fleet := w.fleet(t, 50, 5)
	if err := w.rsu.StartPeriod(1, 100); err != nil {
		t.Fatal(err)
	}
	for _, v := range fleet {
		if _, err := v.PassThrough(w.ch); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := w.rsu.Beacon(); err != nil {
			t.Fatal(err)
		}
	}
	st := w.rsu.Stats()
	if st.ReportsSeen != 50 {
		t.Errorf("reports = %d, want 50 (duplicates suppressed)", st.ReportsSeen)
	}
}

// TestBeaconLossRecoveredByRebeaconing: with beacon loss, a single beacon
// misses some vehicles, but repeated beacons (the per-second schedule)
// eventually reach everyone — the paper's "ensuring that each passing
// vehicle will be able to receive a beacon".
func TestBeaconLossRecoveredByRebeaconing(t *testing.T) {
	w := newWorld(t, 3, dsrc.Config{BeaconLoss: 0.5, Seed: 9})
	fleet := w.fleet(t, 200, 11)
	if err := w.rsu.StartPeriod(1, 400); err != nil {
		t.Fatal(err)
	}
	for _, v := range fleet {
		if _, err := v.PassThrough(w.ch); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ { // 20 beacons at 50% loss: miss prob ~ 1e-6
		if err := w.rsu.Beacon(); err != nil {
			t.Fatal(err)
		}
	}
	if st := w.rsu.Stats(); st.ReportsSeen != 200 {
		t.Errorf("reports = %d, want all 200 after re-beaconing", st.ReportsSeen)
	}
}

func TestStartPeriodAuto(t *testing.T) {
	w := newWorld(t, 4, dsrc.Config{})
	if err := w.rsu.StartPeriodAuto(1); !errors.Is(err, ErrNoHistory) {
		t.Errorf("no-history err = %v", err)
	}
	// Run one period with 900 vehicles.
	fleet := w.fleet(t, 900, 7)
	if err := w.rsu.StartPeriod(1, 1000); err != nil {
		t.Fatal(err)
	}
	for _, v := range fleet {
		if _, err := v.PassThrough(w.ch); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.rsu.Beacon(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.rsu.EndPeriod(); err != nil {
		t.Fatal(err)
	}
	// Auto-sized next period: Eq. (2) from 900 observed reports with
	// f=2 gives m = 2048.
	if err := w.rsu.StartPeriodAuto(2); err != nil {
		t.Fatal(err)
	}
	if st := w.rsu.Stats(); st.BitmapSize != 2048 {
		t.Errorf("auto-sized m = %d, want 2048", st.BitmapSize)
	}
}

func TestStaleReportsDropped(t *testing.T) {
	w := newWorld(t, 3, dsrc.Config{})
	if err := w.rsu.StartPeriod(2, 100); err != nil {
		t.Fatal(err)
	}
	// A report for period 1 arrives late.
	if err := w.ch.Send(dsrc.Report{Period: 1, Index: 5}); err != nil {
		t.Fatal(err)
	}
	st := w.rsu.Stats()
	if st.ReportsSeen != 0 || st.ReportsDrop != 1 {
		t.Errorf("stats = %+v, want 0 seen / 1 dropped", st)
	}
	rec, err := w.rsu.EndPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Bitmap.Ones() != 0 {
		t.Error("stale report contaminated the bitmap")
	}
}
