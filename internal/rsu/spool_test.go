package rsu

import (
	"errors"
	"testing"
	"time"

	"ptm/internal/record"
	"ptm/internal/transport"
	"ptm/internal/vhash"
)

func spoolRecord(t *testing.T, loc vhash.LocationID, p record.PeriodID) *record.Record {
	t.Helper()
	rec, err := record.New(loc, p, 64)
	if err != nil {
		t.Fatal(err)
	}
	rec.Bitmap.Set(uint64(p) % 64)
	return rec
}

func TestSpoolDrainDelivers(t *testing.T) {
	s, err := OpenSpool(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for p := 1; p <= 5; p++ {
		if err := s.Enqueue(spoolRecord(t, 9, record.PeriodID(p))); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Pending(); got != 5 {
		t.Fatalf("Pending = %d, want 5", got)
	}
	var got []*record.Record
	n, err := s.Drain(func(recs []*record.Record) (int, error) {
		got = recs
		return len(recs), nil
	})
	if err != nil || n != 5 {
		t.Fatalf("Drain = %d, %v", n, err)
	}
	for i, rec := range got {
		if rec.Location != 9 || rec.Period != record.PeriodID(i+1) {
			t.Fatalf("record %d = loc %d period %d; order lost", i, rec.Location, rec.Period)
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after full drain", s.Pending())
	}
	// Nothing left: the next drain must not call send at all.
	n, err = s.Drain(func([]*record.Record) (int, error) {
		t.Fatal("send called on empty spool")
		return 0, nil
	})
	if err != nil || n != 0 {
		t.Fatalf("empty Drain = %d, %v", n, err)
	}
}

func TestSpoolTransportFailureKeepsRecords(t *testing.T) {
	s, err := OpenSpool(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for p := 1; p <= 3; p++ {
		if err := s.Enqueue(spoolRecord(t, 4, record.PeriodID(p))); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("connection refused")
	if _, err := s.Drain(func([]*record.Record) (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("Drain err = %v, want %v", err, boom)
	}
	if s.Pending() != 3 {
		t.Fatalf("Pending = %d after failed drain, want 3", s.Pending())
	}
	n, err := s.Drain(func(recs []*record.Record) (int, error) { return len(recs), nil })
	if err != nil || n != 3 {
		t.Fatalf("retry Drain = %d, %v", n, err)
	}
}

func TestSpoolRemoteErrorCountsAsDelivered(t *testing.T) {
	s, err := OpenSpool(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Enqueue(spoolRecord(t, 4, 1)); err != nil {
		t.Fatal(err)
	}
	// The server says "duplicate": the record is already there, so the
	// spool must drop it rather than retry forever.
	n, err := s.Drain(func(recs []*record.Record) (int, error) {
		return 0, &transport.RemoteError{Msg: "central: duplicate record"}
	})
	if err != nil || n != 1 {
		t.Fatalf("Drain = %d, %v; RemoteError should count as delivered", n, err)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", s.Pending())
	}
}

func TestSpoolSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 4; p++ {
		if err := s.Enqueue(spoolRecord(t, 7, record.PeriodID(p))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got := reopened.Pending(); got != 4 {
		t.Fatalf("Pending after restart = %d, want 4", got)
	}
	var got []*record.Record
	n, err := reopened.Drain(func(recs []*record.Record) (int, error) {
		got = recs
		return len(recs), nil
	})
	if err != nil || n != 4 {
		t.Fatalf("Drain after restart = %d, %v", n, err)
	}
	for i, rec := range got {
		if rec.Period != record.PeriodID(i+1) {
			t.Fatalf("restart lost upload order: %v", got)
		}
	}
}

func TestSpoolEnqueueDuringDrainNotLost(t *testing.T) {
	s, err := OpenSpool(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Enqueue(spoolRecord(t, 2, 1)); err != nil {
		t.Fatal(err)
	}
	// Enqueue a second record while the first batch is mid-send: the
	// seal means it lands in a new segment and survives the drop.
	n, err := s.Drain(func(recs []*record.Record) (int, error) {
		if err := s.Enqueue(spoolRecord(t, 2, 2)); err != nil {
			t.Fatal(err)
		}
		return len(recs), nil
	})
	if err != nil || n != 1 {
		t.Fatalf("Drain = %d, %v", n, err)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want the mid-drain record", s.Pending())
	}
	n, err = s.Drain(func(recs []*record.Record) (int, error) { return len(recs), nil })
	if err != nil || n != 1 {
		t.Fatalf("second Drain = %d, %v", n, err)
	}
}

func TestBackoffDelaySchedule(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 800 * time.Millisecond}.withDefaults()
	b.Jitter = func(time.Duration) time.Duration { return 0 } // deterministic
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		800 * time.Millisecond, // capped
		800 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.delay(i); got != w {
			t.Errorf("delay(%d) = %v, want %v", i, got, w)
		}
	}
	// Jitter stays within half the base delay.
	j := Backoff{}.withDefaults()
	for i := 0; i < 100; i++ {
		d := j.delay(2)
		base := 4 * j.Base
		if d < base || d > base+base/2 {
			t.Fatalf("delay(2) = %v outside [%v, %v]", d, base, base+base/2)
		}
	}
}

func TestDrainWithRetryRecovers(t *testing.T) {
	s, err := OpenSpool(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for p := 1; p <= 3; p++ {
		if err := s.Enqueue(spoolRecord(t, 5, record.PeriodID(p))); err != nil {
			t.Fatal(err)
		}
	}
	var slept []time.Duration
	fails := 2
	n, err := s.DrainWithRetry(
		func(recs []*record.Record) (int, error) {
			if fails > 0 {
				fails--
				return 0, errors.New("central unreachable")
			}
			return len(recs), nil
		},
		Backoff{
			Base: time.Millisecond, Max: 4 * time.Millisecond, Attempts: 5,
			Sleep:  func(d time.Duration) { slept = append(slept, d) },
			Jitter: func(time.Duration) time.Duration { return 0 },
		},
	)
	if err != nil || n != 3 {
		t.Fatalf("DrainWithRetry = %d, %v", n, err)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %v, want exactly one backoff per failed attempt", slept)
	}
	if slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("backoff sequence %v not exponential", slept)
	}
}

func TestDrainWithRetryExhaustsBudget(t *testing.T) {
	s, err := OpenSpool(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Enqueue(spoolRecord(t, 5, 1)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("still down")
	n, err := s.DrainWithRetry(
		func([]*record.Record) (int, error) { return 0, boom },
		Backoff{Attempts: 3, Sleep: func(time.Duration) {}},
	)
	if n != 0 || !errors.Is(err, boom) {
		t.Fatalf("DrainWithRetry = %d, %v; want 0 and the transport error", n, err)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, record must survive for the next run", s.Pending())
	}
}
