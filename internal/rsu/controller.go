package rsu

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ptm/internal/record"
)

// Controller runs an RSU on a wall-clock schedule: it starts a new
// measurement period every PeriodLength, broadcasts a beacon every
// BeaconInterval ("once per second" in the paper), and at period end
// uploads the record to the central server, retrying with backoff on
// transient backhaul failures.
//
// Time is injected through the TickClock interface so deployments use the
// real clock and tests drive the schedule deterministically.

// TickClock abstracts time for the controller.
type TickClock interface {
	Now() time.Time
	// After behaves like time.After.
	After(d time.Duration) <-chan time.Time
}

// realClock implements TickClock with package time.
type realClock struct{}

var _ TickClock = realClock{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// RealClock returns the wall-clock TickClock.
func RealClock() TickClock { return realClock{} }

// UploadFunc delivers one finished record to the central server.
type UploadFunc func(*record.Record) error

// ExpectedVolumeFunc returns the Eq. (2) historical expectation for a
// period; deployments back it with per-weekday/per-season history.
type ExpectedVolumeFunc func(record.PeriodID) float64

// Schedule configures the controller's timing.
type Schedule struct {
	// PeriodLength is the measurement period (e.g. 24h).
	PeriodLength time.Duration
	// BeaconInterval is the beacon cadence (e.g. 1s).
	BeaconInterval time.Duration
	// FirstPeriod numbers the first measurement period.
	FirstPeriod record.PeriodID
	// UploadRetries bounds upload attempts per record (total tries =
	// UploadRetries + 1); UploadBackoff separates attempts.
	UploadRetries int
	UploadBackoff time.Duration
}

// Controller drives one RSU.
type Controller struct {
	rsu      *RSU
	sched    Schedule
	upload   UploadFunc
	expected ExpectedVolumeFunc
	clock    TickClock

	mu       sync.Mutex
	uploaded int
	dropped  int
}

// Controller configuration errors.
var (
	ErrBadSchedule = errors.New("rsu: beacon interval must be positive and shorter than the period")
	ErrNilUpload   = errors.New("rsu: nil upload or expected-volume function")
)

// NewController validates the schedule and assembles a controller. clock
// may be nil for the real clock.
func NewController(r *RSU, sched Schedule, upload UploadFunc, expected ExpectedVolumeFunc, clock TickClock) (*Controller, error) {
	if r == nil {
		return nil, ErrNilDep
	}
	if upload == nil || expected == nil {
		return nil, ErrNilUpload
	}
	if sched.BeaconInterval <= 0 || sched.PeriodLength <= 0 || sched.BeaconInterval >= sched.PeriodLength {
		return nil, fmt.Errorf("%w: beacon %v, period %v", ErrBadSchedule, sched.BeaconInterval, sched.PeriodLength)
	}
	if sched.UploadRetries < 0 {
		return nil, fmt.Errorf("rsu: negative retries")
	}
	if clock == nil {
		clock = RealClock()
	}
	return &Controller{rsu: r, sched: sched, upload: upload, expected: expected, clock: clock}, nil
}

// Run executes the period loop until ctx is canceled. The period active
// at cancellation is closed and uploaded before returning, so no measured
// traffic is lost on shutdown. Returns ctx.Err() after a clean shutdown.
func (c *Controller) Run(ctx context.Context) error {
	period := c.sched.FirstPeriod
	for {
		if err := c.rsu.StartPeriod(period, c.expected(period)); err != nil {
			return fmt.Errorf("rsu: starting period %d: %w", period, err)
		}
		deadline := c.clock.Now().Add(c.sched.PeriodLength)
		canceled := false
	beaconLoop:
		for c.clock.Now().Before(deadline) {
			select {
			case <-ctx.Done():
				canceled = true
				break beaconLoop
			case <-c.clock.After(c.sched.BeaconInterval):
				if err := c.rsu.Beacon(); err != nil {
					return fmt.Errorf("rsu: beaconing period %d: %w", period, err)
				}
			}
		}
		rec, err := c.rsu.EndPeriod()
		if err != nil {
			return fmt.Errorf("rsu: ending period %d: %w", period, err)
		}
		c.uploadWithRetry(ctx, rec)
		if canceled {
			return ctx.Err()
		}
		period++
	}
}

// uploadWithRetry attempts the upload with bounded retries; a record that
// still fails is counted as dropped (the estimation pipeline tolerates
// missing periods — queries simply name the periods that exist).
func (c *Controller) uploadWithRetry(ctx context.Context, rec *record.Record) {
	for attempt := 0; ; attempt++ {
		err := c.upload(rec)
		if err == nil {
			c.mu.Lock()
			c.uploaded++
			c.mu.Unlock()
			return
		}
		if attempt >= c.sched.UploadRetries {
			c.mu.Lock()
			c.dropped++
			c.mu.Unlock()
			return
		}
		select {
		case <-ctx.Done():
			// Shutting down: one final immediate attempt happens on the
			// next loop iteration; do not wait out the backoff.
		case <-c.clock.After(c.sched.UploadBackoff):
		}
	}
}

// Uploaded and Dropped report delivery counters.
func (c *Controller) Uploaded() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.uploaded
}

// Dropped reports records abandoned after exhausting retries.
func (c *Controller) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}
