package rsu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ptm/internal/dsrc"
	"ptm/internal/pki"
	"ptm/internal/record"
)

// mutexIngester replicates the pre-lock-free handleReport — one mutex
// serializing every report — as the benchmark baseline. Run with
// -cpu=1,4,8 to see the convoy form as fan-in grows.
type mutexIngester struct {
	mu      sync.Mutex
	cur     *record.Record
	seen    uint64
	dropped uint64
}

func (m *mutexIngester) handleReport(rep dsrc.Report) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cur == nil || rep.Period != m.cur.Period {
		m.dropped++
		return
	}
	m.cur.Bitmap.Set(rep.Index)
	m.seen++
}

// BenchmarkIngestMutex is the serialized baseline: all reports contend on
// one RSU-wide mutex.
func BenchmarkIngestMutex(b *testing.B) {
	rec, err := record.New(1, 1, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	ing := &mutexIngester{cur: rec}
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := next.Add(1) << 40
		for pb.Next() {
			ing.handleReport(dsrc.Report{Period: 1, Index: i * 0x9e3779b97f4a7c15})
			i++
		}
	})
}

// BenchmarkIngestAtomic is the lock-free path: the real RSU handleReport
// through the RCU period state and the atomic bitmap write.
func BenchmarkIngestAtomic(b *testing.B) {
	r := benchRSU(b)
	if err := r.StartPeriod(1, 1<<15); err != nil {
		b.Fatal(err)
	}
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := next.Add(1) << 40
		for pb.Next() {
			r.handleReport(dsrc.Report{Period: 1, Index: i * 0x9e3779b97f4a7c15})
			i++
		}
	})
}

// stats replicates the pre-lock-free Stats: the full-bitmap popcount
// scan ran under the same mutex as report ingest, so every observability
// scrape stalled the report path for the whole scan.
func (m *mutexIngester) stats() (seen uint64, ones float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seen, m.cur.Bitmap.FractionOne()
}

// BenchmarkIngestMutexObserved is the deployed shape of the baseline: a
// monitoring goroutine polls stats while reports storm in. Each poll
// holds the ingest mutex across a bitmap scan, convoying every reporter
// behind it.
func BenchmarkIngestMutexObserved(b *testing.B) {
	rec, err := record.New(1, 1, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	ing := &mutexIngester{cur: rec}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				_, _ = ing.stats()
			}
		}
	}()
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := next.Add(1) << 40
		for pb.Next() {
			ing.handleReport(dsrc.Report{Period: 1, Index: i * 0x9e3779b97f4a7c15})
			i++
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkIngestAtomicObserved is the same workload on the lock-free
// RSU: Stats snapshots the bitmap with atomic loads and never blocks the
// report path.
func BenchmarkIngestAtomicObserved(b *testing.B) {
	r := benchRSU(b)
	if err := r.StartPeriod(1, 1<<15); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Stats()
			}
		}
	}()
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := next.Add(1) << 40
		for pb.Next() {
			r.handleReport(dsrc.Report{Period: 1, Index: i * 0x9e3779b97f4a7c15})
			i++
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}

// benchRSU assembles a real RSU (credential, channel) for the benchmark.
func benchRSU(b *testing.B) *RSU {
	b.Helper()
	now := time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC)
	a, err := pki.NewAuthority(now, 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	cred, err := a.IssueRSU(1, now, 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := dsrc.NewChannel(dsrc.Config{})
	if err != nil {
		b.Fatal(err)
	}
	r, err := New(cred, ch, 2, func() time.Time { return now })
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkRotation measures period rotation (StartPeriod+EndPeriod)
// under a concurrent report storm, the RCU writer path.
func BenchmarkRotation(b *testing.B) {
	r := benchRSU(b)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := uint64(g) << 32
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.handleReport(dsrc.Report{Period: 1, Index: i})
				i++
			}
		}(g)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.StartPeriod(record.PeriodID(1), 256); err != nil {
			b.Fatal(err)
		}
		if _, err := r.EndPeriod(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
