package rsu

import (
	"errors"
	"sync"
	"testing"

	"ptm/internal/dsrc"
	"ptm/internal/record"
)

// TestConcurrentReportStorm: 8 goroutines hammer handleReport while
// Beacon and Stats run concurrently; every report for the active period
// must be either folded or counted dropped, and the final record must
// contain exactly the union of the folded indices.
func TestConcurrentReportStorm(t *testing.T) {
	const (
		workers = 8
		perW    = 4000
	)
	w := newWorld(t, 11, dsrc.Config{})
	if err := w.rsu.StartPeriod(1, 4096); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				w.rsu.handleReport(dsrc.Report{
					Period: 1,
					Index:  uint64(g*perW+i) * 0x9e3779b97f4a7c15,
				})
			}
		}(g)
	}
	// Observability runs concurrently with the storm.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if err := w.rsu.Beacon(); err != nil {
				t.Errorf("beacon during storm: %v", err)
				return
			}
			_ = w.rsu.Stats()
		}
	}()
	wg.Wait()
	<-done

	st := w.rsu.Stats()
	if st.ReportsSeen != workers*perW || st.ReportsDrop != 0 {
		t.Fatalf("stats = %+v, want %d seen / 0 dropped", st, workers*perW)
	}
	rec, err := w.rsu.EndPeriod()
	if err != nil {
		t.Fatal(err)
	}
	want := rec.Bitmap.Clone()
	want.Reset()
	for i := 0; i < workers*perW; i++ {
		want.Set(uint64(i) * 0x9e3779b97f4a7c15)
	}
	if !rec.Bitmap.Equal(want) {
		t.Fatal("concurrent ingest lost or invented bits")
	}
}

// TestReportsRaceRotation: reports racing EndPeriod/StartPeriod rotation
// must never corrupt a completed record (the record an EndPeriod returns
// is quiescent) and never crash. Reports that lose the race are dropped.
func TestReportsRaceRotation(t *testing.T) {
	const (
		workers = 4
		rounds  = 200
	)
	w := newWorld(t, 12, dsrc.Config{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := uint64(g) << 32
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Period 0 never matches; most carry the live period.
				w.rsu.handleReport(dsrc.Report{Period: record.PeriodID(1 + i%3), Index: i})
				i++
			}
		}(g)
	}
	for p := record.PeriodID(1); p <= rounds; p++ {
		if err := w.rsu.StartPeriod(p, 256); err != nil {
			t.Fatal(err)
		}
		rec, err := w.rsu.EndPeriod()
		if err != nil {
			t.Fatal(err)
		}
		// The returned record is quiescent: marshaling twice must be
		// byte-identical even while the storm continues.
		b1, err := rec.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		b2, err := rec.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Fatalf("period %d: record mutated after EndPeriod", p)
		}
	}
	close(stop)
	wg.Wait()
	if _, err := w.rsu.EndPeriod(); !errors.Is(err, ErrNoPeriod) {
		t.Errorf("EndPeriod after rotation loop = %v", err)
	}
}

// TestDifferentialAtomicVsSequential: for a fixed report set, concurrent
// atomic ingest must produce a record bit-identical to folding the same
// reports sequentially through the plain Set path.
func TestDifferentialAtomicVsSequential(t *testing.T) {
	const n = 20000
	reports := make([]dsrc.Report, n)
	for i := range reports {
		reports[i] = dsrc.Report{Period: 1, Index: uint64(i) * 0x9e3779b97f4a7c15}
	}

	// Reference: the pre-rotation sequential path.
	ref, err := record.New(13, 1, 8192)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		ref.Bitmap.Set(rep.Index)
	}

	w := newWorld(t, 13, dsrc.Config{})
	if err := w.rsu.StartPeriod(1, 4096); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers = 8
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += workers {
				w.rsu.handleReport(reports[i])
			}
		}(g)
	}
	wg.Wait()
	rec, err := w.rsu.EndPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Size() != ref.Size() {
		t.Fatalf("sizes differ: %d vs %d", rec.Size(), ref.Size())
	}
	if !rec.Bitmap.Equal(ref.Bitmap) {
		t.Fatal("atomic ingest diverges from sequential reference")
	}
}
