package rsu

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ptm/internal/dsrc"
	"ptm/internal/record"
)

// fakeClock is a deterministic TickClock: After registers a waiter and
// Advance fires the waiters whose deadlines have passed.
type fakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	c.waiters = append(c.waiters, fakeWaiter{at: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves time forward and fires due waiters.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var keep []fakeWaiter
	var fire []fakeWaiter
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			fire = append(fire, w)
		} else {
			keep = append(keep, w)
		}
	}
	c.waiters = keep
	now := c.now
	c.mu.Unlock()
	for _, w := range fire {
		w.ch <- now
	}
}

// BlockUntil polls until at least n waiters are registered.
func (c *fakeClock) BlockUntil(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		got := len(c.waiters)
		c.mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatal("timed out waiting for clock waiters")
}

type controllerFixture struct {
	w     *world
	clock *fakeClock
	ctl   *Controller

	mu       sync.Mutex
	uploads  []*record.Record
	failures int // uploads to fail before succeeding
}

func newControllerFixture(t *testing.T, sched Schedule) *controllerFixture {
	t.Helper()
	f := &controllerFixture{w: newWorld(t, 9, dsrc.Config{}), clock: newFakeClock()}
	upload := func(rec *record.Record) error {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.failures > 0 {
			f.failures--
			return errors.New("backhaul down")
		}
		f.uploads = append(f.uploads, rec)
		return nil
	}
	expected := func(record.PeriodID) float64 { return 100 }
	ctl, err := NewController(f.w.rsu, sched, upload, expected, f.clock)
	if err != nil {
		t.Fatal(err)
	}
	f.ctl = ctl
	return f
}

func (f *controllerFixture) uploadCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.uploads)
}

func TestNewControllerValidation(t *testing.T) {
	w := newWorld(t, 3, dsrc.Config{})
	up := func(*record.Record) error { return nil }
	ex := func(record.PeriodID) float64 { return 1 }
	good := Schedule{PeriodLength: time.Hour, BeaconInterval: time.Second}

	if _, err := NewController(nil, good, up, ex, nil); !errors.Is(err, ErrNilDep) {
		t.Errorf("nil rsu err = %v", err)
	}
	if _, err := NewController(w.rsu, good, nil, ex, nil); !errors.Is(err, ErrNilUpload) {
		t.Errorf("nil upload err = %v", err)
	}
	if _, err := NewController(w.rsu, good, up, nil, nil); !errors.Is(err, ErrNilUpload) {
		t.Errorf("nil expected err = %v", err)
	}
	for _, sched := range []Schedule{
		{PeriodLength: time.Hour, BeaconInterval: 0},
		{PeriodLength: 0, BeaconInterval: time.Second},
		{PeriodLength: time.Second, BeaconInterval: time.Second},
		{PeriodLength: time.Second, BeaconInterval: time.Minute},
	} {
		if _, err := NewController(w.rsu, sched, up, ex, nil); !errors.Is(err, ErrBadSchedule) {
			t.Errorf("sched %+v err = %v", sched, err)
		}
	}
	if _, err := NewController(w.rsu, Schedule{PeriodLength: time.Hour, BeaconInterval: time.Second, UploadRetries: -1}, up, ex, nil); err == nil {
		t.Error("negative retries accepted")
	}
}

func TestControllerPeriodsAndBeacons(t *testing.T) {
	sched := Schedule{
		PeriodLength:   10 * time.Second,
		BeaconInterval: time.Second,
		FirstPeriod:    1,
	}
	f := newControllerFixture(t, sched)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.ctl.Run(ctx) }()

	// Drive two full periods: 10 beacon ticks each.
	for tick := 0; tick < 20; tick++ {
		f.clock.BlockUntil(t, 1)
		f.clock.Advance(time.Second)
	}
	// After 2 periods, two records should have been uploaded.
	waitFor(t, func() bool { return f.uploadCount() == 2 })

	cancel()
	f.clock.BlockUntil(t, 1) // third period's first beacon wait
	f.clock.Advance(time.Second)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v", err)
	}
	// The period active at cancellation was closed and uploaded too.
	if got := f.uploadCount(); got != 3 {
		t.Errorf("uploads = %d, want 3 (two full + one partial)", got)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, rec := range f.uploads {
		if rec.Period != record.PeriodID(i+1) {
			t.Errorf("upload %d period = %d", i, rec.Period)
		}
		if rec.Location != 9 {
			t.Errorf("upload %d location = %d", i, rec.Location)
		}
	}
	if f.ctl.Uploaded() != 3 || f.ctl.Dropped() != 0 {
		t.Errorf("counters: uploaded=%d dropped=%d", f.ctl.Uploaded(), f.ctl.Dropped())
	}
}

func TestControllerUploadRetry(t *testing.T) {
	sched := Schedule{
		PeriodLength:   5 * time.Second,
		BeaconInterval: time.Second,
		FirstPeriod:    1,
		UploadRetries:  3,
		UploadBackoff:  2 * time.Second,
	}
	f := newControllerFixture(t, sched)
	f.failures = 2 // first two attempts fail, third succeeds

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.ctl.Run(ctx) }()

	// One period of beacons.
	for tick := 0; tick < 5; tick++ {
		f.clock.BlockUntil(t, 1)
		f.clock.Advance(time.Second)
	}
	// Two backoff waits, then success.
	f.clock.BlockUntil(t, 1)
	f.clock.Advance(2 * time.Second)
	f.clock.BlockUntil(t, 1)
	f.clock.Advance(2 * time.Second)
	waitFor(t, func() bool { return f.uploadCount() == 1 })
	if f.ctl.Uploaded() != 1 || f.ctl.Dropped() != 0 {
		t.Errorf("counters: uploaded=%d dropped=%d", f.ctl.Uploaded(), f.ctl.Dropped())
	}
	cancel()
	f.clock.BlockUntil(t, 1)
	f.clock.Advance(time.Second)
	<-done
}

func TestControllerUploadDropAfterRetries(t *testing.T) {
	sched := Schedule{
		PeriodLength:   5 * time.Second,
		BeaconInterval: time.Second,
		FirstPeriod:    1,
		UploadRetries:  1,
		UploadBackoff:  time.Second,
	}
	f := newControllerFixture(t, sched)
	f.failures = 10 // more than retries allow

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.ctl.Run(ctx) }()

	for tick := 0; tick < 5; tick++ {
		f.clock.BlockUntil(t, 1)
		f.clock.Advance(time.Second)
	}
	f.clock.BlockUntil(t, 1)
	f.clock.Advance(time.Second) // backoff before the one retry
	waitFor(t, func() bool { return f.ctl.Dropped() == 1 })
	if f.uploadCount() != 0 {
		t.Errorf("uploads = %d, want 0", f.uploadCount())
	}
	cancel()
	f.clock.BlockUntil(t, 1)
	f.clock.Advance(time.Second)
	<-done
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatal("condition not reached")
}
