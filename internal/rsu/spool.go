package rsu

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ptm/internal/record"
	"ptm/internal/transport"
	"ptm/internal/wal"
)

// Spool is an RSU's store-and-forward buffer: when the central server is
// unreachable, ended-period records are appended to an on-disk segmented
// log instead of being dropped, and delivered later. The log is the same
// WAL format the central server uses for durability, so a spooled record
// survives an rsud restart or power loss (the spool always opens its log
// with wal.SyncAlways — an Enqueue that returned is on disk).
//
// Delivery is at-least-once: a crash between a successful upload and the
// segment drop re-sends the batch on the next drain. The central server
// rejects the replays as duplicates, which the drainer treats as
// delivered — see Drain.
// Lock order: drainMu is taken before mu (Drain holds drainMu across
// the seal → send → drop cycle and briefly takes mu to adjust pending);
// mu is never held across I/O.
//
//ptm:lockorder drainMu<mu
type Spool struct {
	log *wal.Log

	drainMu sync.Mutex // serializes drains (seal → send → drop)

	mu      sync.Mutex // guards pending; never held across I/O
	pending int        //ptm:guardedby mu
}

// OpenSpool opens (or creates) the spool directory and counts any
// records left over from a previous run.
func OpenSpool(dir string) (*Spool, error) {
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		return nil, fmt.Errorf("rsu: opening spool: %w", err)
	}
	return &Spool{log: l, pending: int(l.Stats().Entries)}, nil
}

// Enqueue spools one record. A nil return means the record is on disk
// and will be delivered by a future Drain, even across restarts.
func (s *Spool) Enqueue(rec *record.Record) error {
	blob, err := rec.MarshalBinary()
	if err != nil {
		return err
	}
	if err := s.log.Append(blob); err != nil {
		return fmt.Errorf("rsu: spooling record: %w", err)
	}
	s.mu.Lock()
	s.pending++
	s.mu.Unlock()
	return nil
}

// Pending returns how many spooled records await delivery.
func (s *Spool) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// Drain makes one delivery attempt: it seals the log (so concurrent
// Enqueues land in a fresh segment), reads every sealed record, hands
// them to send in one batch, and drops the sealed segments once send
// reports success. It returns how many records were delivered.
//
// send is typically a transport.Client UploadBatch wrapper. A
// *transport.RemoteError counts as delivered: the server saw the batch
// and rejected individual records at the application level — almost
// always duplicates from a batch whose ack was lost — so retrying the
// same bytes can never succeed and would wedge the spool. Transport
// failures leave the segments in place for the next attempt.
func (s *Spool) Drain(send func([]*record.Record) (int, error)) (int, error) {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	sealed, err := s.log.Seal()
	if err != nil {
		return 0, fmt.Errorf("rsu: sealing spool: %w", err)
	}
	var recs []*record.Record
	err = s.log.ReplayThrough(sealed, func(payload []byte) error {
		rec, err := record.Unmarshal(payload)
		if err != nil {
			return fmt.Errorf("rsu: decoding spooled record: %w", err)
		}
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return 0, err
	}
	if len(recs) == 0 {
		return 0, nil
	}
	if _, err := send(recs); err != nil && !transport.IsRemote(err) {
		return 0, err
	}
	if err := s.log.DropThrough(sealed); err != nil {
		return 0, fmt.Errorf("rsu: dropping delivered segments: %w", err)
	}
	s.mu.Lock()
	if s.pending -= len(recs); s.pending < 0 {
		s.pending = 0
	}
	s.mu.Unlock()
	return len(recs), nil
}

// Backoff is a capped exponential backoff schedule with jitter for
// repeated drain attempts against an unreachable server.
type Backoff struct {
	// Base is the first delay (default 250ms).
	Base time.Duration
	// Max caps the exponential growth (default 10s).
	Max time.Duration
	// Attempts bounds how many drains one DrainWithRetry makes
	// (default 6).
	Attempts int
	// Sleep is called between attempts; nil means time.Sleep. Tests
	// inject a recorder.
	Sleep func(time.Duration)
	// Jitter adds a random fraction of the delay; nil means the shared
	// math/rand source. (Jitter de-synchronizes a fleet of RSUs that
	// all lost the same central server — crypto-quality randomness buys
	// nothing here.)
	Jitter func(time.Duration) time.Duration
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 250 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 10 * time.Second
	}
	if b.Attempts <= 0 {
		b.Attempts = 6
	}
	if b.Sleep == nil {
		b.Sleep = time.Sleep
	}
	if b.Jitter == nil {
		b.Jitter = func(d time.Duration) time.Duration {
			return time.Duration(rand.Int63n(int64(d)/2 + 1))
		}
	}
	return b
}

// delay returns the sleep before attempt i (0-based): Base<<i capped at
// Max, plus jitter.
func (b Backoff) delay(i int) time.Duration {
	d := b.Base
	for ; i > 0 && d < b.Max; i-- {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	return d + b.Jitter(d)
}

// DrainWithRetry drains until the spool is empty or the attempt budget
// runs out, sleeping with capped exponential backoff between failed
// attempts. It returns the total records delivered and the last
// transport error (nil once the spool is empty).
func (s *Spool) DrainWithRetry(send func([]*record.Record) (int, error), b Backoff) (int, error) {
	b = b.withDefaults()
	total := 0
	var lastErr error
	for attempt := 0; attempt < b.Attempts; attempt++ {
		if attempt > 0 {
			b.Sleep(b.delay(attempt - 1))
		}
		n, err := s.Drain(send)
		total += n
		if err == nil {
			if s.Pending() == 0 {
				return total, nil
			}
			continue // delivered a sealed prefix; newer records remain
		}
		lastErr = err
	}
	if lastErr == nil && s.Pending() > 0 {
		lastErr = fmt.Errorf("rsu: spool not drained after %d attempts", b.Attempts)
	}
	return total, lastErr
}

// Close flushes and closes the underlying log; pending records stay on
// disk for the next process.
func (s *Spool) Close() error { return s.log.Close() }
